package ensembleio

// Fault-injection tests: each labeled pathology from internal/faults
// is injected into an IOR run and the advisor must produce the
// matching diagnosis from the ensemble statistics (plus the per-OST
// counters for straggler localization) — and stay silent about every
// fault code on a clean baseline. The fault-to-signature table is
// DESIGN.md §9.

import (
	"strings"
	"testing"
)

// faultCodes are the advisor codes introduced by the fault-injection
// work; the clean baseline must produce none of them.
var faultCodes = []string{
	"straggler-ost", "slow-node", "intermittent-stall",
	"mds-brownout", "background-contention",
}

// stragglerRun: 256 tasks, file per process on a single stripe each,
// with OST 5 serving at 1% speed. Roughly 1/48 of the files (and so of
// the ranks) land on the degraded OST.
func stragglerRun() *Run {
	return cached("fault-straggler", func() *Run {
		return RunIOR(IORConfig{
			Machine:        Franklin(),
			Tasks:          256,
			BlockBytes:     192e6,
			TransferBytes:  32e6,
			Reps:           3,
			FilePerProcess: true,
			StripeCount:    1,
			Faults: &Scenario{Faults: []Fault{
				&SlowOST{OST: 5, Factor: 0.01},
			}},
			Seed: 7,
		})
	})
}

func TestStragglerOSTDiagnosedAndLocalized(t *testing.T) {
	findings := Diagnose(stragglerRun())
	var msg string
	for _, f := range findings {
		if f.Code == "straggler-ost" {
			msg = f.Message
		}
	}
	if msg == "" {
		t.Fatalf("advisor missed the straggler OST: %v", findings)
	}
	if !strings.Contains(msg, "OST 5") {
		t.Errorf("straggler diagnosis names the wrong OST: %q", msg)
	}
}

func TestSlowNodeDiagnosed(t *testing.T) {
	run := cached("fault-slow-node", func() *Run {
		return RunIOR(IORConfig{
			Machine:       Franklin(),
			Tasks:         256,
			BlockBytes:    128e6,
			TransferBytes: 32e6,
			Reps:          2,
			Faults: &Scenario{Faults: []Fault{
				&SlowNodeLink{Node: 3, Factor: 0.01},
			}},
			Seed: 7,
		})
	})
	findings := Diagnose(run)
	if !hasFinding(findings, "slow-node") {
		t.Fatalf("advisor missed the degraded node link: %v", findings)
	}
	for _, f := range findings {
		if f.Code == "slow-node" && !strings.Contains(f.Message, "node 3") {
			t.Errorf("slow-node diagnosis names the wrong node: %q", f.Message)
		}
	}
}

func TestIntermittentStallDiagnosed(t *testing.T) {
	// Shared file striped over all OSTs: during a stall window on OST 2
	// every in-window write is capped, so stalled phases go bimodal
	// while off-window phases stay clean.
	run := cached("fault-flaky", func() *Run {
		return RunIOR(IORConfig{
			Machine:       Franklin(),
			Tasks:         256,
			BlockBytes:    128e6,
			TransferBytes: 32e6,
			Reps:          6,
			Faults: &Scenario{Faults: []Fault{
				&FlakyOST{OST: 2, StartSec: 2, PeriodSec: 5, StallSec: 1.5},
			}},
			Seed: 7,
		})
	})
	if findings := Diagnose(run); !hasFinding(findings, "intermittent-stall") {
		t.Fatalf("advisor missed the intermittent stall: %v", findings)
	}
}

func TestMDSBrownoutDiagnosed(t *testing.T) {
	// File per process turns the open storm into 128 metadata ops
	// contending for the browned-out MDS's two slots.
	run := cached("fault-brownout", func() *Run {
		return RunIOR(IORConfig{
			Machine:        Franklin(),
			Tasks:          128,
			BlockBytes:     64e6,
			TransferBytes:  32e6,
			Reps:           2,
			FilePerProcess: true,
			Faults: &Scenario{Faults: []Fault{
				&MDSBrownout{Concurrency: 2, SlowProb: 0.35, SlowLoSec: 0.4, SlowHiSec: 1.6},
			}},
			Seed: 7,
		})
	})
	if findings := Diagnose(run); !hasFinding(findings, "mds-brownout") {
		t.Fatalf("advisor missed the MDS brownout: %v", findings)
	}
}

func TestBackgroundContentionDiagnosed(t *testing.T) {
	// Bursts consuming ~81% of the aggregate: phases covered by a burst
	// shift wholesale — lower quartile included — and later phases
	// recover once the burst ends.
	run := cached("fault-bursts", func() *Run {
		return RunIOR(IORConfig{
			Machine:       Franklin(),
			Tasks:         256,
			BlockBytes:    64e6,
			TransferBytes: 8e6,
			Reps:          8,
			Faults: &Scenario{Faults: []Fault{
				&BackgroundBursts{MBps: 13000, OnSec: 6, OffSec: 9, StartSec: 1.5},
			}},
			Seed: 7,
		})
	})
	if findings := Diagnose(run); !hasFinding(findings, "background-contention") {
		t.Fatalf("advisor missed the background contention: %v", findings)
	}
}

// TestCleanBaselineNoFaultDiagnoses: the fault detectors must not fire
// on healthy runs — neither the shared-file nor the file-per-process
// variant of the same workloads the injection tests use.
func TestCleanBaselineNoFaultDiagnoses(t *testing.T) {
	shared := cached("fault-clean-shared", func() *Run {
		return RunIOR(IORConfig{
			Machine:       Franklin(),
			Tasks:         256,
			BlockBytes:    128e6,
			TransferBytes: 32e6,
			Reps:          6,
			Seed:          7,
		})
	})
	fpp := cached("fault-clean-fpp", func() *Run {
		return RunIOR(IORConfig{
			Machine:        Franklin(),
			Tasks:          256,
			BlockBytes:     192e6,
			TransferBytes:  32e6,
			Reps:           3,
			FilePerProcess: true,
			StripeCount:    1,
			Seed:           7,
		})
	})
	for name, run := range map[string]*Run{"shared": shared, "fpp": fpp} {
		findings := Diagnose(run)
		for _, code := range faultCodes {
			if hasFinding(findings, code) {
				t.Errorf("%s clean baseline falsely diagnosed as %q: %v", name, code, findings)
			}
		}
	}
}

// TestFaultedRunsStayDeterministic: a faulted simulation remains
// bit-reproducible — same scenario and seed give identical walls and
// event counts; a different seed still produces a straggler diagnosis
// (the signature is a property of the fault, not of one lucky seed).
func TestFaultedRunStability(t *testing.T) {
	cfg := IORConfig{
		Machine:        Franklin(),
		Tasks:          64,
		BlockBytes:     64e6,
		TransferBytes:  32e6,
		Reps:           2,
		FilePerProcess: true,
		StripeCount:    1,
		Faults: &Scenario{Faults: []Fault{
			&SlowOST{OST: 5, Factor: 0.01},
			&MDSBrownout{Concurrency: 4, SlowProb: 0.2, SlowLoSec: 0.1, SlowHiSec: 0.4},
		}},
		Seed: 3,
	}
	a, b := RunIOR(cfg), RunIOR(cfg)
	if a.Wall != b.Wall || len(a.Collector.Events) != len(b.Collector.Events) {
		t.Errorf("faulted runs diverge: wall %v vs %v, %d vs %d events",
			a.Wall, b.Wall, len(a.Collector.Events), len(b.Collector.Events))
	}
}
