package ensembleio

// Golden pinning for the multi-tenant interference pipeline. The
// tenancy determinism test proves co-run artifacts are byte-identical
// across worker counts and fast-path settings *today*; these goldens
// pin the serialized bytes across time, so an engine, accounting, or
// analysis change that shifts any byte of any encoding — per-tenant
// traces, the merged telemetry snapshot, the span stream, the
// interference report — fails loudly. Golden files store sizes and
// SHA-256 digests; regenerate with:
//
//	go test -run TestInterferenceGolden -update .

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// goldenDuel is one pinned two-tenant co-run: the tenant specs with
// their stagger, the runtime knobs, and the digest of every artifact.
type goldenDuel struct {
	Specs   []string  `json:"specs"`
	Stagger []float64 `json:"stagger"`
	Machine string    `json:"machine"`
	Seed    int64     `json:"seed"`
	Faults  string    `json:"faults,omitempty"`

	Events    int                     `json:"events"`
	Findings  int                     `json:"findings"`
	Windows   int                     `json:"windows"`
	Artifacts map[string]goldenDigest `json:"artifacts"`
}

func goldenDuelCases() []goldenDuel {
	return []goldenDuel{
		{Specs: []string{"ior-shared", "gcrm-collective"}, Stagger: []float64{0, 1}, Machine: "franklin", Seed: 5},
		{Specs: []string{"ior-shared", "checkpoint-bursty"}, Stagger: []float64{0, 0}, Machine: "franklin", Seed: 7},
		{Specs: []string{"ior-shared", "gcrm-collective"}, Stagger: []float64{0, 1}, Machine: "franklin", Seed: 5,
			Faults: "testdata/scenarios/flaky-ost.json"},
	}
}

func (g *goldenDuel) label() string {
	l := g.Specs[0] + "-vs-" + g.Specs[1]
	if g.Faults != "" {
		l += "-faulted"
	}
	return fmt.Sprintf("%s-seed%d", l, g.Seed)
}

// measure runs the co-run plus the interference analysis and digests
// every artifact encoding.
func (g *goldenDuel) measure(t *testing.T) *goldenDuel {
	t.Helper()
	tenants := make([]Tenant, len(g.Specs))
	for i, name := range g.Specs {
		spec, err := LoadWorkload(filepath.Join("testdata", "scenarios", "workloads", name+".json"))
		if err != nil {
			t.Fatalf("LoadWorkload: %v", err)
		}
		tenants[i] = Tenant{Name: name, Spec: spec, StartSec: g.Stagger[i]}
	}
	var scenario *Scenario
	if g.Faults != "" {
		var err error
		if scenario, err = LoadScenario(g.Faults); err != nil {
			t.Fatalf("LoadScenario: %v", err)
		}
	}
	var prof Platform
	switch g.Machine {
	case "franklin":
		prof = Franklin()
	case "jaguar":
		prof = Jaguar()
	default:
		t.Fatalf("unknown machine %q", g.Machine)
	}
	cfg := TenancyConfig{Machine: prof, Seed: g.Seed, Faults: scenario, Telemetry: true}
	res, err := RunTenants(cfg, tenants)
	if err != nil {
		t.Fatalf("RunTenants: %v", err)
	}
	rep, err := AnalyzeInterference(cfg, tenants, res, InterferenceConfig{})
	if err != nil {
		t.Fatalf("AnalyzeInterference: %v", err)
	}

	arts := map[string][]byte{}
	events := 0
	for i := range res.Tenants {
		tr := &res.Tenants[i]
		events += len(tr.Run.Collector.Events)
		var bin bytes.Buffer
		if err := SaveTrace(&bin, tr.Run); err != nil {
			t.Fatalf("SaveTrace(%s): %v", tr.Name, err)
		}
		arts[tr.Name+".trace.bin"] = bin.Bytes()
	}
	var met, spans bytes.Buffer
	if err := SaveTelemetrySnapshot(&met, res.Telemetry); err != nil {
		t.Fatalf("SaveTelemetrySnapshot: %v", err)
	}
	if err := SaveSpanList(&spans, res.Spans); err != nil {
		t.Fatalf("SaveSpanList: %v", err)
	}
	arts["telemetry.json"] = met.Bytes()
	arts["spans.jsonl"] = spans.Bytes()
	repJSON, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	arts["interference.json"] = append(repJSON, '\n')

	got := *g
	got.Events = events
	got.Findings = len(rep.Ranking)
	got.Windows = len(rep.Windows)
	got.Artifacts = make(map[string]goldenDigest, len(arts))
	for name, b := range arts {
		if len(b) == 0 {
			t.Fatalf("%s: empty %s; the golden pin would be vacuous", g.label(), name)
		}
		sum := sha256.Sum256(b)
		got.Artifacts[name] = goldenDigest{Bytes: len(b), SHA256: hex.EncodeToString(sum[:])}
	}
	return &got
}

func TestInterferenceGolden(t *testing.T) {
	for _, gc := range goldenDuelCases() {
		t.Run(gc.label(), func(t *testing.T) {
			t.Parallel()
			path := filepath.Join("testdata", "golden", "interference", gc.label()+".json")
			got := gc.measure(t)

			if *updateGolden {
				b, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d artifacts, %d events, %d findings)", path, len(got.Artifacts), got.Events, got.Findings)
				return
			}

			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("no golden file %s — run `go test -run TestInterferenceGolden -update .` to create it (%v)", path, err)
			}
			var want goldenDuel
			if err := json.Unmarshal(raw, &want); err != nil {
				t.Fatalf("corrupt golden file %s: %v", path, err)
			}
			if got.Events != want.Events || got.Findings != want.Findings || got.Windows != want.Windows {
				t.Errorf("report shape drifted: got %d events / %d findings / %d windows, golden %d / %d / %d",
					got.Events, got.Findings, got.Windows, want.Events, want.Findings, want.Windows)
			}
			var names []string
			for name := range want.Artifacts {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				w, g := want.Artifacts[name], got.Artifacts[name]
				if g != w {
					t.Errorf("%s drifted: got %d bytes %s, golden %d bytes %s",
						name, g.Bytes, g.SHA256, w.Bytes, w.SHA256)
				}
			}
			if len(got.Artifacts) != len(want.Artifacts) {
				t.Errorf("artifact set drifted: got %d encodings, golden %d", len(got.Artifacts), len(want.Artifacts))
			}
		})
	}
}
