package ensembleio

// Experiment-level tests: one per reproduced figure/claim of the
// paper. Each asserts the SHAPE the paper reports (mode locations,
// orderings, speedup factors within bands), not absolute testbed
// numbers. EXPERIMENTS.md records paper-vs-measured values.

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"
)

// Shared run cache: several tests inspect the same simulation.
var (
	runMu    sync.Mutex
	runCache = map[string]*Run{}
)

func cached(key string, f func() *Run) *Run {
	runMu.Lock()
	defer runMu.Unlock()
	if r, ok := runCache[key]; ok {
		return r
	}
	r := f()
	runCache[key] = r
	return r
}

func iorRun(k int, seed int64) *Run {
	return cached(fmt.Sprintf("ior-k%d-s%d", k, seed), func() *Run {
		return RunIOR(IORConfig{
			Machine:       Franklin(),
			Tasks:         1024,
			Reps:          5,
			TransferBytes: 512e6 / int64(k),
			Seed:          seed,
		})
	})
}

func madbenchRun(platform string) *Run {
	return cached("madbench-"+platform, func() *Run {
		var m Platform
		switch platform {
		case "franklin":
			m = Franklin()
		case "patched":
			m = FranklinPatched()
		case "jaguar":
			m = Jaguar()
		}
		return RunMADbench(MADbenchConfig{Machine: m, Seed: 3})
	})
}

func gcrmRun(stage int) *Run {
	names := []string{"baseline", "collective", "aligned", "metaagg"}
	return cached("gcrm-"+names[stage], func() *Run {
		cfg := GCRMConfig{Machine: Franklin(), Seed: 1}
		if stage >= 1 {
			cfg.Aggregators = 80
		}
		if stage >= 2 {
			cfg.Align = true
		}
		if stage >= 3 {
			cfg.AggregateMetadata = true
		}
		return RunGCRM(cfg)
	})
}

// --- Figure 1 ---

// TestFig1cHarmonicModes: the completion-time histogram of 1024x512MB
// shared-file writes has three prominent modes: the fair-share time R
// and its second and fourth harmonics (2R and 4R in rate).
func TestFig1cHarmonicModes(t *testing.T) {
	writes := Durations(iorRun(1, 1), OpWrite)
	h := NewHistogram(LinearBins(0, writes.Max()*1.01, 100))
	h.AddAll(writes)
	modes := h.Modes(ModeOpts{SmoothRadius: 2, MinProminence: 0.1, MinMass: 0.04})
	if len(modes) < 3 {
		t.Fatalf("found %d modes, want >= 3 (R, 2R, 4R): %+v", len(modes), modes)
	}
	centers := make([]float64, len(modes))
	for i, m := range modes {
		centers[i] = m.Center
	}
	sort.Float64s(centers)
	slowest := centers[len(centers)-1]

	// R mode: the slowest prominent mode sits near the fair-share
	// time. Fair share of ~16 GB/s over 1024 tasks is ~16 MB/s, i.e.
	// 512 MB in 30-36 s (the paper reports 30-32 s).
	rateR := 512.0 / slowest
	if rateR < 13 || rateR > 20 {
		t.Errorf("R mode at %.1fs (%.1f MB/s), want fair-share band 13-20 MB/s", slowest, rateR)
	}
	// Harmonics: modes near R/2 and R/4 of the slowest mode's time.
	hasNear := func(want, tol float64) bool {
		for _, c := range centers {
			if math.Abs(c-want) <= tol {
				return true
			}
		}
		return false
	}
	if !hasNear(slowest/2, slowest*0.12) {
		t.Errorf("no 2nd-harmonic mode near %.1fs; centers=%v", slowest/2, centers)
	}
	if !hasNear(slowest/4, slowest*0.08) {
		t.Errorf("no 4th-harmonic mode near %.1fs; centers=%v", slowest/4, centers)
	}
}

// TestFig1cReproducibility: two runs of the same experiment produce
// traces that differ in detail but statistically indistinguishable
// ensembles — the paper's central stability claim.
func TestFig1cReproducibility(t *testing.T) {
	a := Durations(iorRun(1, 1), OpWrite)
	b := Durations(iorRun(1, 2), OpWrite)
	ks, ok := Reproducibility(a, b)
	if !ok {
		t.Errorf("ensembles not reproducible: KS = %.3f, want < 0.1", ks)
	}
	// The event-level traces DO differ: corresponding events have
	// different durations.
	same := 0
	av, bv := a.Values(), b.Values()
	n := len(av)
	if len(bv) < n {
		n = len(bv)
	}
	for i := 0; i < n; i++ {
		if av[i] == bv[i] {
			same++
		}
	}
	if float64(same)/float64(n) > 0.01 {
		t.Errorf("%d/%d events identical across runs; traces should differ in detail", same, n)
	}
}

// TestFig1bAggregateRatePlateaus: the aggregate write rate starts in a
// high cache-absorption burst well above the sustained plateau.
func TestFig1bAggregateRatePlateaus(t *testing.T) {
	run := iorRun(1, 1)
	s := RateSeries(run, OpWrite, 1.0)
	// Peak (cache absorption burst) far above the effective sustained
	// rate, which is itself near the fabric limit early on.
	peak := s.Peak()
	if peak < 25000 {
		t.Errorf("peak aggregate rate %.0f MB/s, want an absorption burst > 25 GB/s", peak)
	}
	if run.AggregateMBps() > 17000 {
		t.Errorf("sustained rate %.0f MB/s exceeds the fabric limit", run.AggregateMBps())
	}
}

// --- Figure 2 ---

// TestFig2SplittingSpeedsUpWorstCase: splitting each task's 512 MB
// into k = 2, 4, 8 calls raises the reported data rate monotonically,
// by a total in the paper's ~16% band, because per-task totals narrow
// (Law of Large Numbers).
func TestFig2SplittingSpeedsUpWorstCase(t *testing.T) {
	rates := map[int]float64{}
	for _, k := range []int{1, 2, 4, 8} {
		// Average five seeds to damp run-to-run noise.
		sum := 0.0
		for seed := int64(1); seed <= 5; seed++ {
			sum += iorRun(k, seed).AggregateMBps()
		}
		rates[k] = sum / 5
	}
	for _, pair := range [][2]int{{1, 2}, {2, 4}, {4, 8}} {
		if rates[pair[1]] < rates[pair[0]]*0.97 {
			t.Errorf("rate(k=%d)=%.0f dropped below rate(k=%d)=%.0f: want monotone improvement",
				pair[1], rates[pair[1]], pair[0], rates[pair[0]])
		}
	}
	gain := rates[8]/rates[1] - 1
	if gain < 0.05 || gain > 0.40 {
		t.Errorf("total k=1->8 gain %.1f%%, want the paper's band (5%%-40%%, paper: 16%%)", gain*100)
	}
}

// TestFig2DistributionsNarrowAndGaussianize: per-task phase totals
// have falling CV and approach a Gaussian as k grows.
func TestFig2DistributionsNarrowAndGaussianize(t *testing.T) {
	totals := func(k int) *Dataset {
		run := iorRun(k, 1)
		// Sum each rank's k writes per repetition.
		sums := map[[2]int]float64{}
		counts := map[int]int{}
		for _, e := range run.Collector.Events {
			if e.Op != OpWrite {
				continue
			}
			rep := counts[e.Rank] / k
			counts[e.Rank]++
			sums[[2]int{e.Rank, rep}] += float64(e.Dur)
		}
		d := NewDataset(nil)
		for _, v := range sums {
			d.Add(v)
		}
		return d
	}
	d1, d8 := totals(1), totals(8)
	if cv1, cv8 := d1.CV(), d8.CV(); cv8 > cv1*0.8 {
		t.Errorf("CV(k=8)=%.3f vs CV(k=1)=%.3f: want at least 20%% narrowing", cv8, cv1)
	}
	// "More Gaussian": assert it on the iid-sum construction of
	// §III-A (the Central Limit Theorem applied to the measured
	// single-call ensemble). The simulator's measured per-task totals
	// narrow but stay queue-correlated within a node, so the CLT
	// claim is checked where the paper makes it — on the t_k = sum of
	// k draws model. See EXPERIMENTS.md.
	single := Durations(iorRun(1, 1), OpWrite)
	h := NewHistogram(LinearBins(0, single.Max()*1.01, 256))
	h.AddAll(single)
	gauss := func(k int) float64 {
		sum := ConvolveK(h, k)
		// Kolmogorov distance of the binned sum to its moment-fitted
		// Gaussian, sampled at bin edges.
		mu, sigma := sum.Mean(), sum.Std()
		cdf := sum.CDF()
		maxd := 0.0
		for i, F := range cdf {
			z := (sum.Bins.Edges[i+1] - mu) / sigma
			phi := 0.5 * math.Erfc(-z/math.Sqrt2)
			if d := math.Abs(F - phi); d > maxd {
				maxd = d
			}
		}
		return maxd
	}
	prev := math.Inf(1)
	for _, k := range []int{1, 2, 4, 8} {
		g := gauss(k)
		if g >= prev {
			t.Errorf("GaussianKS of t_%d = %.3f did not fall (previous %.3f): sums should Gaussianize", k, g, prev)
		}
		prev = g
	}
}

// TestFig2OrderStatisticPrediction: the Eq.-1 predictor agrees with
// the mechanism — predicted slowest-task totals fall monotonically
// with k when fed the measured single-call ensemble.
func TestFig2OrderStatisticPrediction(t *testing.T) {
	single := Durations(iorRun(1, 1), OpWrite)
	prev := math.Inf(1)
	for _, k := range []int{1, 2, 4, 8} {
		pred := SplitPrediction(single, k, 1024)
		if pred >= prev {
			t.Errorf("SplitPrediction(k=%d)=%.1f not below k-smaller value %.1f", k, pred, prev)
		}
		prev = pred
	}
}

// --- Section V writer-count claim ---

// TestWriterSaturation: ~80 writers saturate the I/O subsystem; far
// fewer do not.
func TestWriterSaturation(t *testing.T) {
	// Fixed 2 TB volume (dwarfing page-cache absorption), varying
	// writer count: a count saturates when it completes the job nearly
	// as fast as the full machine. Walls averaged over two seeds.
	pts := IORWriterSweep(Franklin(), []int{16, 80, 1024}, 4096, 512e6, []int64{5, 6})
	w16, w80, best := pts[0].WallSec, pts[1].WallSec, pts[2].WallSec
	t.Logf("walls: 16 writers %.0fs, 80 writers %.0fs, 1024 writers %.0fs", w16, w80, best)
	if w80 > 1.5*best {
		t.Errorf("80 writers take %.0fs vs %.0fs at 1024: want near-saturation (<1.5x)", w80, best)
	}
	if w16 < 1.7*best {
		t.Errorf("16 writers take %.0fs vs %.0fs at 1024: should be link-limited (>1.7x)", w16, best)
	}
}

// --- Figure 4 ---

// TestFig4FranklinReadTail: on Franklin with the defect, read times
// acquire a heavy 30-900 s right tail absent from writes.
func TestFig4FranklinReadTail(t *testing.T) {
	run := madbenchRun("franklin")
	reads := Durations(run, OpRead)
	med, p99, max := reads.Quantile(0.5), reads.Quantile(0.99), reads.Max()
	if p99/med < 10 {
		t.Errorf("read p99/median = %.1f, want >= 10 (heavy tail)", p99/med)
	}
	if max < 100 || max > 1500 {
		t.Errorf("slowest read %.0fs, want the paper's order (hundreds of seconds)", max)
	}
	writes := Durations(run, OpWrite)
	if wp99 := writes.Quantile(0.99); wp99 > 60 {
		t.Errorf("write p99 %.0fs: the tail should be read-specific", wp99)
	}
}

// TestFig4JaguarNoTail: the same workload on Jaguar shows only modest
// read variability.
func TestFig4JaguarNoTail(t *testing.T) {
	reads := Durations(madbenchRun("jaguar"), OpRead)
	if p99 := reads.Quantile(0.99); p99 > 15 {
		t.Errorf("Jaguar read p99 = %.1fs, want modest (< 15s)", p99)
	}
}

// TestFig4WritesComparableAcrossPlatforms: write behaviour is similar
// on the two machines (the anomaly is in the read path).
func TestFig4WritesComparableAcrossPlatforms(t *testing.T) {
	wf := Durations(madbenchRun("franklin"), OpWrite).Quantile(0.5)
	wj := Durations(madbenchRun("jaguar"), OpWrite).Quantile(0.5)
	if ratio := wf / wj; ratio < 0.5 || ratio > 4 {
		t.Errorf("write median ratio franklin/jaguar = %.2f, want comparable (0.5-4x)", ratio)
	}
}

// --- Figure 5 ---

// TestFig5aProgressiveDeterioration: the slow reads are confined to
// the W phase's reads 4-8 and get progressively worse, the insight
// that localized the bug.
func TestFig5aProgressiveDeterioration(t *testing.T) {
	run := madbenchRun("franklin")
	phases := Phases(run)
	p95 := map[string]float64{}
	for _, ph := range phases {
		d := NewDataset(nil)
		for _, e := range ph.Events {
			if e.Op == OpRead {
				d.Add(float64(e.Dur))
			}
		}
		if d.Len() > 0 {
			p95[ph.Name] = d.Quantile(0.95)
		}
	}
	// Reads 1-3 of the W phase are normal...
	for m := 0; m < 3; m++ {
		name := fmt.Sprintf("W-rw-%d", m)
		if p95[name] > 15 {
			t.Errorf("phase %s read p95 %.1fs, want normal (<15s) before strided window arms", name, p95[name])
		}
	}
	// ...reads 4-8 are slow and strictly worsening (the Fig 5a CDFs
	// shift right phase over phase).
	prev := 15.0
	for m := 3; m < 8; m++ {
		name := fmt.Sprintf("W-rw-%d", m)
		if p95[name] <= prev {
			t.Errorf("phase %s read p95 %.1fs, want progressive deterioration (> %.1fs)", name, p95[name], prev)
		}
		prev = p95[name]
	}
	// The final C-phase reads show little of the pathology: no
	// interleaved writes, so the enlarged window is harmless.
	for m := 0; m < 8; m++ {
		name := fmt.Sprintf("C-read-%d", m)
		if p95[name] > 30 {
			t.Errorf("phase %s read p95 %.1fs, want clean final reads", name, p95[name])
		}
	}
}

// TestFig5bPatchRemovesTail: after the Lustre patch the read
// distribution loses its pathological right shoulder.
func TestFig5bPatchRemovesTail(t *testing.T) {
	before := Durations(madbenchRun("franklin"), OpRead)
	after := Durations(madbenchRun("patched"), OpRead)
	if p99 := after.Quantile(0.99); p99 > 15 {
		t.Errorf("patched read p99 = %.1fs, want < 15s", p99)
	}
	if before.Max() < 5*after.Max() {
		t.Errorf("slowest read before %.0fs vs after %.0fs: tail not removed", before.Max(), after.Max())
	}
}

// TestFig5cPatchSpeedup: the patch yields the paper's ~4.2x total
// runtime improvement. Individual seeds vary ~±20%, so the assertion
// averages two runs of the experiment (band: >= 3.2x mean).
func TestFig5cPatchSpeedup(t *testing.T) {
	ratio1 := float64(madbenchRun("franklin").Wall / madbenchRun("patched").Wall)
	bug2 := cached("madbench-franklin-s4", func() *Run {
		return RunMADbench(MADbenchConfig{Machine: Franklin(), Seed: 4})
	})
	patched2 := cached("madbench-patched-s4", func() *Run {
		return RunMADbench(MADbenchConfig{Machine: FranklinPatched(), Seed: 4})
	})
	ratio2 := float64(bug2.Wall / patched2.Wall)
	mean := (ratio1 + ratio2) / 2
	t.Logf("patch speedups: %.2fx, %.2fx (mean %.2fx; paper 4.2x)", ratio1, ratio2, mean)
	if mean < 3.2 {
		t.Errorf("mean patch speedup %.2fx, want >= 3.2x (paper: 4.2x)", mean)
	}
	// And the patched Franklin run becomes comparable to (but still
	// slower than) Jaguar.
	jaguar := madbenchRun("jaguar").Wall
	if ratio := float64(madbenchRun("patched").Wall / jaguar); ratio < 1.2 || ratio > 3.5 {
		t.Errorf("patched-franklin/jaguar = %.2f, want the paper's ~1.9 band", ratio)
	}
}

// TestMADbenchDiagnosis: the advisor isolates the signature from the
// trace alone — read tail plus constant-stride pattern.
func TestMADbenchDiagnosis(t *testing.T) {
	findings := Diagnose(madbenchRun("franklin"))
	if !hasFinding(findings, "read-tail") {
		t.Errorf("advisor missed the read tail: %v", findings)
	}
	if !hasFinding(findings, "strided-reads") {
		t.Errorf("advisor missed the strided pattern: %v", findings)
	}
	clean := Diagnose(madbenchRun("patched"))
	if hasFinding(clean, "read-tail") {
		t.Errorf("advisor reports a read tail after the patch: %v", clean)
	}
}

// --- Figure 6 ---

// TestFig6OptimizationLadder: the three optimizations yield the
// paper's progressive improvement, over 4x total.
func TestFig6OptimizationLadder(t *testing.T) {
	walls := make([]float64, 4)
	for i := range walls {
		walls[i] = float64(gcrmRun(i).Wall)
	}
	t.Logf("GCRM ladder: baseline=%.0fs collective=%.0fs aligned=%.0fs metaagg=%.0fs",
		walls[0], walls[1], walls[2], walls[3])
	for i := 1; i < 4; i++ {
		if walls[i] >= walls[i-1] {
			t.Errorf("stage %d (%.0fs) not faster than stage %d (%.0fs)", i, walls[i], i-1, walls[i-1])
		}
	}
	if r := walls[0] / walls[1]; r < 1.3 || r > 2.5 {
		t.Errorf("collective buffering speedup %.2fx, want ~1.6x band (1.3-2.5)", r)
	}
	if r := walls[0] / walls[3]; r < 4 {
		t.Errorf("total optimization speedup %.2fx, want > 4x", r)
	}
	// Baseline sustained rate ~1 GB/s (paper).
	if rate := gcrmRun(0).AggregateMBps(); rate < 600 || rate > 1800 {
		t.Errorf("baseline sustained %.0f MB/s, want the paper's ~1 GB/s band", rate)
	}
}

// TestFig6PerTaskRateDistributions: baseline per-task data rates peak
// below the 1.6 MB/s fair share (paper: broad peaks below 1 MB/s);
// collective buffering lifts the writer rate to the ~100 MB/s scale.
func TestFig6PerTaskRateDistributions(t *testing.T) {
	base := DataWrites(gcrmRun(0)) // sec/MB
	med := 1 / base.Quantile(0.5)  // median MB/s
	if med < 0.2 || med > 1.3 {
		t.Errorf("baseline median per-task rate %.2f MB/s, want below the 1.6 fair share (0.2-1.3)", med)
	}
	coll := DataWrites(gcrmRun(1))
	medC := 1 / coll.Quantile(0.5)
	if medC < 40 || medC > 200 {
		t.Errorf("collective median writer rate %.0f MB/s, want the paper's ~100 MB/s scale", medC)
	}
}

// TestFig6AlignmentRemovesBulge: the slow bulge (data writes under
// 10 MB/s among the 80 writers) shrinks dramatically with alignment.
func TestFig6AlignmentRemovesBulge(t *testing.T) {
	// Conflict-stalled records land well below 3 MB/s (the Fig 6f
	// bulge); luck-capped transfers stay above ~10 MB/s, so the count
	// below 3 MB/s isolates extent-lock conflicts.
	bulge := func(run *Run) int {
		d := DataWrites(run) // sec/MB
		slow := 0
		for _, v := range d.Values() {
			if 1/v < 3 {
				slow++
			}
		}
		return slow
	}
	b1, b2 := bulge(gcrmRun(1)), bulge(gcrmRun(2))
	if b1 < 5 {
		t.Errorf("collective run shows %d bulge records; expected a visible conflict population", b1)
	}
	if b2 > b1/3 {
		t.Errorf("aligned bulge count %d vs unaligned %d: alignment should remove most of it", b2, b1)
	}
}

// TestFig6MetadataDiagnosisAndRemoval: the advisor flags serialized
// metadata (and misalignment, and writer oversubscription) on the
// baseline; after aggregation the small-write stream is gone.
func TestFig6MetadataDiagnosisAndRemoval(t *testing.T) {
	findings := Diagnose(gcrmRun(0))
	for _, code := range []string{"serialized-metadata", "misaligned-writes", "writer-oversubscription"} {
		if !hasFinding(findings, code) {
			t.Errorf("advisor missed %q on the GCRM baseline: %v", code, findings)
		}
	}
	small := 0
	for _, e := range gcrmRun(3).Collector.Events {
		if e.Op == OpWrite && e.Bytes > 0 && e.Bytes <= 64<<10 {
			small++
		}
	}
	if small > 1 { // the superblock only
		t.Errorf("metadata-aggregated run still issues %d small writes", small)
	}
}

// TestIORDiagnosis: the advisor recognizes the Fig-1c multi-modal
// signature.
func TestIORDiagnosis(t *testing.T) {
	if findings := Diagnose(iorRun(1, 1)); !hasFinding(findings, "node-serialization") {
		t.Errorf("advisor missed node serialization on IOR: %v", findings)
	}
}

func hasFinding(fs []Finding, code string) bool {
	for _, f := range fs {
		if f.Code == code {
			return true
		}
	}
	return false
}
