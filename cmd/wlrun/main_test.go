package main

import (
	"testing"

	"ensembleio"
	"ensembleio/internal/wldsl"
)

// Regression: two distinct specs sharing a name in one batch used to
// produce identical NAME-seedS artifact basenames, so the second run's
// files silently overwrote the first's. The scenario-key prefix now
// keeps every batch entry's files distinct.
func TestArtifactBasenamesNeverCollide(t *testing.T) {
	a := wldsl.Generate(1)
	b := wldsl.Generate(2)
	b.Name = a.Name // two different workloads, one display name
	specs := []*ensembleio.WorkloadSpec{a, b}

	collide := collidingNames(specs)
	if !collide[a.Name] {
		t.Fatalf("collidingNames missed the shared name %q", a.Name)
	}

	prof := ensembleio.Franklin()
	seen := map[string]bool{}
	for _, spec := range specs {
		k, err := ensembleio.ScenarioCacheKey(spec, prof, nil, 7)
		if err != nil {
			t.Fatal(err)
		}
		base := artifactBase(spec.Name, k, 7, collide[spec.Name])
		if seen[base] {
			t.Fatalf("artifact basename %q collides across distinct specs", base)
		}
		seen[base] = true
	}
}

// The same spec at several seeds is not a collision: the familiar
// NAME-seedS names must survive.
func TestArtifactBasenamesStableWithoutCollision(t *testing.T) {
	a := wldsl.Generate(3)
	collide := collidingNames([]*ensembleio.WorkloadSpec{a, a})
	if collide[a.Name] {
		t.Fatalf("identical specs flagged as colliding")
	}
	k, err := ensembleio.ScenarioCacheKey(a, ensembleio.Franklin(), nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := artifactBase(a.Name, k, 4, false), a.Name+"-seed4"; got != want {
		t.Fatalf("base %q, want %q", got, want)
	}
}

func TestParseGen(t *testing.T) {
	cases := []struct {
		in      string
		lo, hi  int64
		isRange bool
		wantErr bool
	}{
		{in: "", lo: 0, hi: 0},
		{in: "5", lo: 5},
		{in: "0", lo: 0},
		{in: "3-7", lo: 3, hi: 7, isRange: true},
		{in: "7-3", wantErr: true},
		{in: "x", wantErr: true},
		{in: "-5", wantErr: true},
		{in: "1-", wantErr: true},
	}
	for _, c := range cases {
		lo, hi, isRange, err := parseGen(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("parseGen(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && (lo != c.lo || hi != c.hi || isRange != c.isRange) {
			t.Errorf("parseGen(%q) = (%d,%d,%v), want (%d,%d,%v)", c.in, lo, hi, isRange, c.lo, c.hi, c.isRange)
		}
	}
}
