// Command wlrun compiles and runs a declarative workload spec
// (internal/wldsl) on the simulated machine: spec in, artifacts out.
// It is the generic front end to the same engine the dedicated
// workload CLIs (iorbench, madbench, gcrmio) drive — any spec from
// testdata/scenarios/workloads/, or one you write, runs with the
// standard runtime knobs.
//
// Usage:
//
//	wlrun -spec FILE [-machine franklin|franklin-patched|jaguar]
//	      [-seed N] [-runs N] [-j N] [-faults scenario.json]
//	      [-analytic on|off] [-out DIR]
//	      [-trace FILE] [-traceformat binary|jsonl|chrome|spans]
//	      [-telemetry FILE] [-prof PREFIX] [-version]
//	wlrun -spec FILE -validate
//	wlrun -spec FILE -canonicalize
//	wlrun -gen SEED
//
// -runs N executes N seeded runs (seeds seed, seed+1, ...) on up to
// -j workers with an ordered reduction; artifacts land in -out as
// NAME-seedS.trace.bin (plus .telemetry.json / .spans.jsonl when
// telemetry is on). -validate checks the spec and prints its compiled
// footprint without running. -canonicalize rewrites the spec file in
// the canonical encoding. -gen prints the seeded generator's spec for
// that seed to stdout (the corpus families the determinism suite
// fuzzes).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ensembleio"
	"ensembleio/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wlrun: ")
	var (
		specPath = flag.String("spec", "", "workload spec (JSON)")
		machine  = flag.String("machine", "franklin", "platform profile: franklin, franklin-patched, jaguar")
		seed     = flag.Int64("seed", 1, "base run seed (vary to model run-to-run conditions)")
		runs     = flag.Int("runs", 1, "number of seeded runs (seeds seed..seed+runs-1)")
		workers  = flag.Int("j", 1, "max parallel runs (0 = all cores); results are identical at any value")
		scenario = flag.String("faults", "", "inject the fault scenario from this JSON file")
		analytic = cliutil.OnOff("analytic", true, "analytic fast path: on or off (off falls back to the pure event path; results are byte-identical)")
		outDir   = flag.String("out", "", "write per-run artifacts into this directory")
		trace    = flag.String("trace", "", "write the first run's trace to this file")
		format   = flag.String("traceformat", "binary", "trace encoding: binary, jsonl, chrome, spans (chrome/spans need telemetry)")
		telOut   = flag.String("telemetry", "", "write the first run's telemetry metric snapshot (JSON) to this file")
		validate = flag.Bool("validate", false, "validate and print the compiled footprint, don't run")
		canon    = flag.Bool("canonicalize", false, "rewrite -spec in the canonical encoding and exit")
		genSeed  = flag.Int64("gen", -1, "print the generated spec for this seed to stdout and exit")
		profOut  = flag.String("prof", "", "write wall-clock CPU/heap profiles to PREFIX.cpu.pprof / PREFIX.heap.pprof")
		version  = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	// A stray positional argument is always a mangled invocation
	// (e.g. a value-taking flag that swallowed the next flag name);
	// running with half the flags silently applied would mislead.
	if flag.NArg() > 0 {
		log.Fatalf("unexpected argument %q (all inputs are flags; check that value-taking flags like -telemetry FILE got their value)", flag.Arg(0))
	}
	if *version {
		fmt.Println(cliutil.Version())
		return
	}
	if *genSeed >= 0 {
		if err := ensembleio.EncodeWorkload(os.Stdout, ensembleio.GenerateWorkload(*genSeed)); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *specPath == "" {
		log.Fatal("-spec is required (or -gen SEED)")
	}
	spec, err := ensembleio.LoadWorkload(*specPath)
	if err != nil {
		log.Fatal(err)
	}
	if *canon {
		if err := rewriteCanonical(*specPath, spec); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s canonicalized\n", *specPath)
		return
	}
	prog, err := ensembleio.CompileWorkload(spec)
	if err != nil {
		log.Fatal(err)
	}
	if *validate {
		fmt.Printf("%s: valid\n", *specPath)
		fmt.Printf("  tasks: %d   ranks: %d\n", spec.Tasks, prog.Ranks())
		fmt.Printf("  trace events: ~%d\n", prog.Events())
		fmt.Printf("  logical bytes: %d (%.0f MB)\n", prog.TotalBytes(), float64(prog.TotalBytes())/1e6)
		return
	}

	stopProf, err := cliutil.StartProfiles(*profOut)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()
	switch *format {
	case "binary", "jsonl", "chrome", "spans":
	default:
		log.Fatalf("unknown -traceformat %q (want binary, jsonl, chrome, or spans)", *format)
	}
	prof, err := platform(*machine)
	if err != nil {
		log.Fatal(err)
	}
	prof.AnalyticOff = !*analytic
	fs, err := loadScenario(*scenario)
	if err != nil {
		log.Fatal(err)
	}
	withTel := *telOut != "" || *outDir != "" || *format == "chrome" || *format == "spans"

	if *runs < 1 {
		log.Fatalf("-runs %d: want at least 1", *runs)
	}
	seeds := make([]int64, *runs)
	for i := range seeds {
		seeds[i] = *seed + int64(i)
	}
	results := ensembleio.RunMany(*workers, seeds, func(s int64) *ensembleio.Run {
		return prog.Run(ensembleio.WorkloadRunConfig{
			Machine: prof, Seed: s, Faults: fs, Telemetry: withTel,
		})
	})

	fmt.Printf("%s on %s: %d tasks (%d ranks), %d run(s)\n",
		spec.Name, *machine, spec.Tasks, prog.Ranks(), *runs)
	if fs != nil {
		fmt.Printf("faults: %s\n", fs)
	}
	for i, run := range results {
		fmt.Printf("  seed %-4d wall %8.1f s   aggregate %8.0f MB/s\n",
			seeds[i], float64(run.Wall), run.AggregateMBps())
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
		for i, run := range results {
			if err := writeArtifacts(*outDir, spec.Name, seeds[i], run, *format); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("artifacts written to %s\n", *outDir)
	}
	if *trace != "" {
		if err := saveTrace(*trace, results[0], *format); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s (%s)\n", *trace, *format)
	}
	if *telOut != "" {
		if err := saveTelemetry(*telOut, results[0]); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("telemetry written to %s\n", *telOut)
	}
}

func platform(name string) (ensembleio.Platform, error) {
	switch name {
	case "franklin":
		return ensembleio.Franklin(), nil
	case "franklin-patched":
		return ensembleio.FranklinPatched(), nil
	case "jaguar":
		return ensembleio.Jaguar(), nil
	}
	return ensembleio.Platform{}, fmt.Errorf("unknown machine %q", name)
}

func loadScenario(path string) (*ensembleio.Scenario, error) {
	if path == "" {
		return nil, nil
	}
	return ensembleio.LoadScenario(path)
}

func rewriteCanonical(path string, spec *ensembleio.WorkloadSpec) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return ensembleio.EncodeWorkload(f, spec)
}

// writeArtifacts saves one run's trace (in the selected format) plus
// its telemetry snapshot and span log.
func writeArtifacts(dir, name string, seed int64, run *ensembleio.Run, format string) error {
	ext := map[string]string{"binary": "trace.bin", "jsonl": "trace.jsonl",
		"chrome": "chrome.json", "spans": "spans.jsonl"}[format]
	base := fmt.Sprintf("%s-seed%d", name, seed)
	if err := saveTrace(filepath.Join(dir, base+"."+ext), run, format); err != nil {
		return err
	}
	if err := saveTelemetry(filepath.Join(dir, base+".telemetry.json"), run); err != nil {
		return err
	}
	return saveSpans(filepath.Join(dir, base+".spans.jsonl"), run)
}

func saveTrace(path string, run *ensembleio.Run, format string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// Write errors can surface at close; a truncated trace must not
	// pass silently.
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	switch format {
	case "jsonl":
		return ensembleio.SaveTraceJSON(f, run)
	case "chrome":
		return ensembleio.SaveChromeTrace(f, run)
	case "spans":
		return ensembleio.SaveSpans(f, run)
	}
	return ensembleio.SaveTrace(f, run)
}

func saveTelemetry(path string, run *ensembleio.Run) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return ensembleio.SaveTelemetry(f, run)
}

func saveSpans(path string, run *ensembleio.Run) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return ensembleio.SaveSpans(f, run)
}
