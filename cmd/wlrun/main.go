// Command wlrun compiles and runs declarative workload specs
// (internal/wldsl) on the simulated machine: specs in, artifacts out.
// It is the generic front end to the same engine the dedicated
// workload CLIs (iorbench, madbench, gcrmio) drive — any spec from
// testdata/scenarios/workloads/, or one you write, runs with the
// standard runtime knobs.
//
// Usage:
//
//	wlrun -spec FILE [-spec FILE ...] [-gen LO-HI]
//	      [-machine franklin|franklin-patched|jaguar]
//	      [-seed N] [-runs N] [-j N] [-faults scenario.json]
//	      [-analytic on|off] [-cache DIR] [-cache-verify] [-out DIR]
//	      [-trace FILE] [-traceformat binary|jsonl|chrome|spans]
//	      [-telemetry FILE] [-prof PREFIX] [-version]
//	wlrun -spec FILE -validate
//	wlrun -spec FILE -canonicalize
//	wlrun -gen SEED
//
// The batch is every spec (repeated -spec files, plus the generated
// specs of a -gen LO-HI range) crossed with -runs seeds (seed,
// seed+1, ...), scheduled on up to -j workers with an ordered
// reduction; artifacts land in -out as NAME-seedS.trace.bin (plus
// .telemetry.json / .spans.jsonl). When two distinct specs in the
// batch share a name, their artifact basenames gain the scenario-key
// prefix (NAME-kXXXXXXXX-seedS) so they cannot collide.
//
// -cache DIR serves repeated scenarios from the content-addressed run
// cache (internal/cascache) instead of recomputing them; a hit is
// byte-identical to a fresh run, and -cache-verify recomputes every
// hit and proves it. -validate checks the spec and prints its
// compiled footprint without running. -canonicalize rewrites the spec
// file in the canonical encoding. A single-value -gen SEED prints the
// seeded generator's spec for that seed to stdout (the corpus
// families the determinism suite fuzzes).
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"ensembleio"
	"ensembleio/internal/cascache"
	"ensembleio/internal/cliutil"
	"ensembleio/internal/wldsl"
)

// specList accumulates repeated -spec flags.
type specList []string

func (s *specList) String() string     { return strings.Join(*s, ",") }
func (s *specList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	log.SetFlags(0)
	log.SetPrefix("wlrun: ")
	var specPaths specList
	flag.Var(&specPaths, "spec", "workload spec JSON (repeat to batch several specs)")
	var (
		machine  = flag.String("machine", "franklin", "platform profile: franklin, franklin-patched, jaguar")
		seed     = flag.Int64("seed", 1, "base run seed (vary to model run-to-run conditions)")
		runs     = flag.Int("runs", 1, "number of seeded runs per spec (seeds seed..seed+runs-1)")
		workers  = flag.Int("j", 1, "max parallel runs (0 = all cores); results are identical at any value")
		scenario = flag.String("faults", "", "inject the fault scenario from this JSON file")
		analytic = cliutil.OnOff("analytic", true, "analytic fast path: on or off (off falls back to the pure event path; results are byte-identical)")
		outDir   = flag.String("out", "", "write per-run artifacts into this directory")
		trace    = flag.String("trace", "", "write the first run's trace to this file")
		format   = flag.String("traceformat", "binary", "trace encoding: binary, jsonl, chrome, spans")
		telOut   = flag.String("telemetry", "", "write the first run's telemetry metric snapshot (JSON) to this file")
		validate = flag.Bool("validate", false, "validate and print the compiled footprint, don't run")
		canon    = flag.Bool("canonicalize", false, "rewrite -spec in the canonical encoding and exit")
		gen      = flag.String("gen", "", "SEED prints the generated spec and exits; LO-HI adds the generated specs of that seed range to the batch")
		profOut  = flag.String("prof", "", "write wall-clock CPU/heap profiles to PREFIX.cpu.pprof / PREFIX.heap.pprof")
		version  = flag.Bool("version", false, "print build version and exit")
	)
	cacheDir, cacheVerify := cliutil.CacheFlags()
	flag.Parse()
	// A stray positional argument is always a mangled invocation
	// (e.g. a value-taking flag that swallowed the next flag name);
	// running with half the flags silently applied would mislead.
	if flag.NArg() > 0 {
		log.Fatalf("unexpected argument %q (all inputs are flags; check that value-taking flags like -telemetry FILE got their value)", flag.Arg(0))
	}
	if *version {
		fmt.Println(cliutil.Version())
		return
	}

	genLo, genHi, genRange, err := parseGen(*gen)
	if err != nil {
		log.Fatal(err)
	}
	if *gen != "" && !genRange {
		// Single-value -gen keeps its print-and-exit contract.
		if err := ensembleio.EncodeWorkload(os.Stdout, ensembleio.GenerateWorkload(genLo)); err != nil {
			log.Fatal(err)
		}
		return
	}
	if len(specPaths) == 0 && !genRange {
		log.Fatal("-spec is required (or -gen SEED / -gen LO-HI)")
	}

	specs := make([]*ensembleio.WorkloadSpec, 0, len(specPaths))
	for _, path := range specPaths {
		spec, err := ensembleio.LoadWorkload(path)
		if err != nil {
			log.Fatal(err)
		}
		specs = append(specs, spec)
	}
	if *canon {
		if len(specPaths) != 1 {
			log.Fatal("-canonicalize wants exactly one -spec")
		}
		if err := rewriteCanonical(specPaths[0], specs[0]); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s canonicalized\n", specPaths[0])
		return
	}
	if genRange {
		for s := genLo; s <= genHi; s++ {
			specs = append(specs, ensembleio.GenerateWorkload(s))
		}
	}

	progs := make([]*ensembleio.WorkloadProgram, len(specs))
	for i, spec := range specs {
		if progs[i], err = ensembleio.CompileWorkload(spec); err != nil {
			log.Fatal(err)
		}
	}
	if *validate {
		if len(specPaths) != 1 || genRange {
			log.Fatal("-validate wants exactly one -spec")
		}
		fmt.Printf("%s: valid\n", specPaths[0])
		fmt.Printf("  tasks: %d   ranks: %d\n", specs[0].Tasks, progs[0].Ranks())
		fmt.Printf("  trace events: ~%d\n", progs[0].Events())
		fmt.Printf("  logical bytes: %d (%.0f MB)\n", progs[0].TotalBytes(), float64(progs[0].TotalBytes())/1e6)
		return
	}

	stopProf, err := cliutil.StartProfiles(*profOut)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()
	switch *format {
	case "binary", "jsonl", "chrome", "spans":
	default:
		log.Fatalf("unknown -traceformat %q (want binary, jsonl, chrome, or spans)", *format)
	}
	prof, err := platform(*machine)
	if err != nil {
		log.Fatal(err)
	}
	prof.AnalyticOff = !*analytic
	fs, err := loadScenario(*scenario)
	if err != nil {
		log.Fatal(err)
	}
	if *runs < 1 {
		log.Fatalf("-runs %d: want at least 1", *runs)
	}
	if *cacheVerify && *cacheDir == "" {
		log.Fatal("-cache-verify needs -cache DIR")
	}

	// The batch: specs crossed with seeds, spec-major, so output lines
	// group per spec in flag order.
	var entries []ensembleio.CampaignEntry
	var seeds []int64
	for _, spec := range specs {
		for r := 0; r < *runs; r++ {
			entries = append(entries, ensembleio.CampaignEntry{
				Name:     spec.Name,
				Spec:     spec,
				Platform: prof,
				Faults:   fs,
				Seed:     *seed + int64(r),
			})
			seeds = append(seeds, *seed+int64(r))
		}
	}

	var store *ensembleio.CacheStore
	if *cacheDir != "" {
		if store, err = ensembleio.OpenCache(*cacheDir); err != nil {
			log.Fatal(err)
		}
	}
	results, stats, err := ensembleio.RunCampaign(entries, ensembleio.CampaignOptions{
		Workers: *workers,
		Store:   store,
		Verify:  *cacheVerify,
	})
	if err != nil {
		log.Fatal(err)
	}

	i := 0
	for si, spec := range specs {
		fmt.Printf("%s on %s: %d tasks (%d ranks), %d run(s)\n",
			spec.Name, *machine, spec.Tasks, progs[si].Ranks(), *runs)
		if fs != nil && si == 0 {
			fmt.Printf("faults: %s\n", fs)
		}
		for r := 0; r < *runs; r++ {
			res := results[i]
			agg := 0.0
			if res.Meta.WallSec > 0 {
				agg = float64(res.Meta.TotalBytes) / 1e6 / res.Meta.WallSec
			}
			fmt.Printf("  seed %-4d wall %8.1f s   aggregate %8.0f MB/s\n",
				seeds[i], res.Meta.WallSec, agg)
			i++
		}
	}
	if store != nil {
		verified := ""
		if *cacheVerify {
			verified = ", verified"
		}
		fmt.Printf("cache: %d hit(s), %d miss(es), %d dup(s), %s served%s\n",
			stats.Hits, stats.Misses, stats.DupHits, fmtBytes(stats.BytesServed), verified)
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
		collide := collidingNames(specs)
		for i, res := range results {
			base := artifactBase(res.Name, res.Key, seeds[i], collide[res.Name])
			if err := writeArtifacts(*outDir, base, res, *format); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("artifacts written to %s\n", *outDir)
	}
	if *trace != "" {
		if err := writeServed(*trace, results[0], traceArtifact(*format)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s (%s)\n", *trace, *format)
	}
	if *telOut != "" {
		if err := writeServed(*telOut, results[0], cascache.ArtTelemetry); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("telemetry written to %s\n", *telOut)
	}
}

// parseGen interprets -gen: "" (unset), "SEED" (print-and-exit), or
// "LO-HI" (batch range, inclusive).
func parseGen(s string) (lo, hi int64, isRange bool, err error) {
	if s == "" {
		return 0, 0, false, nil
	}
	if i := strings.IndexByte(s, '-'); i > 0 { // "-5" is a single negative seed, not a range
		lo, errLo := strconv.ParseInt(s[:i], 10, 64)
		hi, errHi := strconv.ParseInt(s[i+1:], 10, 64)
		if errLo != nil || errHi != nil || lo > hi {
			return 0, 0, false, fmt.Errorf("-gen %q: want SEED or LO-HI with LO <= HI", s)
		}
		return lo, hi, true, nil
	}
	lo, err = strconv.ParseInt(s, 10, 64)
	if err != nil || lo < 0 {
		return 0, 0, false, fmt.Errorf("-gen %q: want a non-negative SEED or LO-HI", s)
	}
	return lo, 0, false, nil
}

// collidingNames reports the spec names claimed by two or more
// *distinct* specs (different canonical bytes) in the batch — the case
// where NAME-seedS artifact files would silently overwrite each other.
func collidingNames(specs []*ensembleio.WorkloadSpec) map[string]bool {
	digests := map[string][32]byte{}
	collide := map[string]bool{}
	for _, spec := range specs {
		canon, err := wldsl.CanonicalBytes(spec)
		if err != nil {
			continue // compile already validated; unreachable
		}
		d := sha256.Sum256(canon)
		if prev, ok := digests[spec.Name]; ok && prev != d {
			collide[spec.Name] = true
		}
		digests[spec.Name] = d
	}
	return collide
}

// artifactBase names one run's artifact files. When two distinct
// specs in the batch share a name, the scenario-key prefix keeps
// their files apart (NAME-seedS alone would silently overwrite).
func artifactBase(name string, key ensembleio.CacheKey, seed int64, collides bool) string {
	if collides {
		return fmt.Sprintf("%s-k%s-seed%d", name, key.Short(), seed)
	}
	return fmt.Sprintf("%s-seed%d", name, seed)
}

func traceArtifact(format string) string {
	return map[string]string{
		"binary": cascache.ArtTraceBin, "jsonl": cascache.ArtTraceJSON,
		"chrome": cascache.ArtChrome, "spans": cascache.ArtSpans,
	}[format]
}

func platform(name string) (ensembleio.Platform, error) {
	switch name {
	case "franklin":
		return ensembleio.Franklin(), nil
	case "franklin-patched":
		return ensembleio.FranklinPatched(), nil
	case "jaguar":
		return ensembleio.Jaguar(), nil
	}
	return ensembleio.Platform{}, fmt.Errorf("unknown machine %q", name)
}

func loadScenario(path string) (*ensembleio.Scenario, error) {
	if path == "" {
		return nil, nil
	}
	return ensembleio.LoadScenario(path)
}

func rewriteCanonical(path string, spec *ensembleio.WorkloadSpec) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return ensembleio.EncodeWorkload(f, spec)
}

// writeArtifacts saves one result's trace (in the selected format)
// plus its telemetry snapshot and span log.
func writeArtifacts(dir, base string, res ensembleio.CampaignResult, format string) error {
	ext := map[string]string{"binary": "trace.bin", "jsonl": "trace.jsonl",
		"chrome": "chrome.json", "spans": "spans.jsonl"}[format]
	if err := writeServed(filepath.Join(dir, base+"."+ext), res, traceArtifact(format)); err != nil {
		return err
	}
	if err := writeServed(filepath.Join(dir, base+".telemetry.json"), res, cascache.ArtTelemetry); err != nil {
		return err
	}
	return writeServed(filepath.Join(dir, base+".spans.jsonl"), res, cascache.ArtSpans)
}

// writeServed writes one named artifact of a result to path.
func writeServed(path string, res ensembleio.CampaignResult, name string) error {
	for _, a := range res.Artifacts {
		if a.Name == name {
			return os.WriteFile(path, a.Data, 0o644)
		}
	}
	return fmt.Errorf("%s: artifact %s missing from result", path, name)
}

func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
