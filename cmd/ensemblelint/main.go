// Command ensemblelint is the project's static-analysis multichecker.
// It enforces the determinism and statistical-correctness invariants
// the reproduction depends on (see DESIGN.md, "Determinism
// invariants"):
//
//	simpurity  no wall clock, global math/rand, or scheduler
//	           dependence inside the simulator packages
//	maporder   no map-iteration order leaking into output or
//	           statistics
//	floateq    no ==/!= between computed floats in statistics code
//	errclose   no silently dropped Close/Flush/Write errors in the
//	           persistence layer and CLIs
//	telwall    no wall-clock reads or global math/rand in the
//	           telemetry and trace-format packages (virtual time only)
//
// Usage:
//
//	ensemblelint [-run names] [-list] [packages]
//
// With no packages, ./... is checked. A finding can be suppressed
// with a justification comment on its line or the line above:
//
//	//lint:allow floateq sort comparator needs exact ordering
//
// Exit status is 1 when any finding is reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ensembleio/internal/cliutil"
	"ensembleio/internal/lint"
)

func main() {
	var (
		run     = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		list    = flag.Bool("list", false, "list analyzers and exit")
		version = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(cliutil.Version())
		return
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, strings.ReplaceAll(a.Doc, "\n", " "))
		}
		return
	}
	if *run != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "ensemblelint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ensemblelint: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ensemblelint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
