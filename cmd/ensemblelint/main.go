// Command ensemblelint is the project's static-analysis multichecker.
// It enforces the determinism and statistical-correctness invariants
// the reproduction depends on (see DESIGN.md, "Determinism
// invariants" and "Static-analysis architecture"):
//
//	simpurity  no wall clock, global math/rand, or scheduler
//	           dependence inside the simulator packages
//	maporder   no map-iteration order leaking into output or
//	           statistics
//	floateq    no ==/!= between computed floats in statistics code
//	errclose   no silently dropped Close/Flush/Write errors in the
//	           persistence layer and CLIs
//	telwall    no wall-clock reads or global math/rand in the
//	           telemetry and trace-format packages (virtual time only)
//	detflow    whole-program determinism dataflow: no nondeterminism
//	           laundered into a critical package through helper
//	           calls, reported with the full source→sink call chain
//	allowcheck (always on) no reasonless, unknown-target, or stale
//	           //lint:allow directives
//
// Usage:
//
//	ensemblelint [-run names] [-list] [-json|-sarif] [-o file]
//	             [-budget d] [packages]
//
// With no packages, ./... is checked. -json and -sarif switch the
// output to machine-readable findings (SARIF 2.1.0 renders as inline
// annotations on GitHub PRs). -budget fails the run if the analysis
// itself exceeds the given wall-clock duration — the CI guard that
// keeps `make lint` fast. A finding can be suppressed with a
// justification directive on its line or the line above:
//
//	//lint:allow(floateq) sort comparator needs exact ordering
//
// Exit status is 1 when any finding is reported, 3 when the budget is
// exceeded.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"ensembleio/internal/cliutil"
	"ensembleio/internal/lint"
	"ensembleio/internal/lint/detflow"
)

func main() {
	var (
		run     = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		list    = flag.Bool("list", false, "list analyzers and exit")
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array")
		sarif   = flag.Bool("sarif", false, "emit findings as SARIF 2.1.0 (for CI annotations)")
		outPath = flag.String("o", "", "write output to file instead of stdout")
		budget  = flag.Duration("budget", 0, "fail (exit 3) if the analysis takes longer than this")
		version = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(cliutil.Version())
		return
	}

	analyzers := append(lint.Analyzers(), detflow.Analyzer)
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, strings.ReplaceAll(a.Doc, "\n", " "))
		}
		fmt.Printf("%-10s %s\n", lint.AllowCheckName, "reject reasonless, unknown-target, and stale //lint:allow directives (always on)")
		return
	}
	if *run != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "ensemblelint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}
	if *jsonOut && *sarif {
		fmt.Fprintln(os.Stderr, "ensemblelint: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	start := time.Now()
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ensemblelint: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, analyzers)
	elapsed := time.Since(start)

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ensemblelint: %v\n", err)
			os.Exit(2)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "ensemblelint: closing %s: %v\n", *outPath, err)
				os.Exit(2)
			}
		}()
		out = f
	}

	baseDir, err := os.Getwd()
	if err != nil {
		baseDir = ""
	}
	switch {
	case *sarif:
		log := lint.BuildSARIF(diags, analyzers, baseDir, cliutil.Version())
		if err := lint.ValidateSARIF(log); err != nil {
			fmt.Fprintf(os.Stderr, "ensemblelint: internal error: %v\n", err)
			os.Exit(2)
		}
		if err := lint.WriteSARIF(out, log); err != nil {
			fmt.Fprintf(os.Stderr, "ensemblelint: %v\n", err)
			os.Exit(2)
		}
	case *jsonOut:
		if err := lint.WriteJSON(out, diags, baseDir); err != nil {
			fmt.Fprintf(os.Stderr, "ensemblelint: %v\n", err)
			os.Exit(2)
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(out, d)
		}
	}

	if *budget > 0 && elapsed > *budget {
		fmt.Fprintf(os.Stderr, "ensemblelint: analysis took %s, over the %s budget\n", elapsed.Round(time.Millisecond), *budget)
		os.Exit(3)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ensemblelint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
