// Command madbench runs the MADbench out-of-core I/O kernel (§IV) and
// prints the per-phase breakdown, the read/write duration histograms
// (log-binned, as in Figure 4c), and the advisor's findings — the
// workflow that isolated the Lustre strided read-ahead defect.
//
// Usage:
//
//	madbench [-machine franklin|franklin-patched|jaguar] [-tasks N]
//	         [-matrices N] [-seed N] [-faults scenario.json]
//	         [-trace FILE] [-json] [-traceformat binary|jsonl|chrome|spans]
//	         [-telemetry FILE] [-analytic on|off] [-prof PREFIX] [-version]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ensembleio"
	"ensembleio/internal/cliutil"
	"ensembleio/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("madbench: ")
	var (
		machine  = flag.String("machine", "franklin", "platform profile: franklin, franklin-patched, jaguar")
		tasks    = flag.Int("tasks", 256, "MPI tasks")
		matrices = flag.Int("matrices", 8, "matrices per task")
		seed     = flag.Int64("seed", 1, "run seed")
		scenario = flag.String("faults", "", "inject the fault scenario from this JSON file")
		trace    = flag.String("trace", "", "write the IPM-I/O trace to this file")
		jsonOut  = flag.Bool("json", false, "with -trace, write JSON lines instead of binary")
		format   = flag.String("traceformat", "", "trace encoding: binary, jsonl, chrome, spans (default binary; chrome/spans need telemetry)")
		telOut   = flag.String("telemetry", "", "write the telemetry metric snapshot (JSON) to this file")
		profOut  = flag.String("prof", "", "write wall-clock CPU/heap profiles to PREFIX.cpu.pprof / PREFIX.heap.pprof")
		analytic = cliutil.OnOff("analytic", true, "analytic fast path: on or off (off falls back to the pure event path; results are byte-identical)")
		version  = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(cliutil.Version())
		return
	}
	stopProf, err := cliutil.StartProfiles(*profOut)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()
	if *format == "" {
		*format = "binary"
		if *jsonOut {
			*format = "jsonl"
		}
	}
	switch *format {
	case "binary", "jsonl", "chrome", "spans":
	default:
		log.Fatalf("unknown -traceformat %q (want binary, jsonl, chrome, or spans)", *format)
	}
	withTel := *telOut != "" || *format == "chrome" || *format == "spans"

	var prof ensembleio.Platform
	switch *machine {
	case "franklin":
		prof = ensembleio.Franklin()
	case "franklin-patched":
		prof = ensembleio.FranklinPatched()
	case "jaguar":
		prof = ensembleio.Jaguar()
	default:
		log.Fatalf("unknown machine %q", *machine)
	}
	prof.AnalyticOff = !*analytic

	var fs *ensembleio.Scenario
	if *scenario != "" {
		var err error
		if fs, err = ensembleio.LoadScenario(*scenario); err != nil {
			log.Fatal(err)
		}
	}
	run := ensembleio.RunMADbench(ensembleio.MADbenchConfig{
		Machine:   prof,
		Tasks:     *tasks,
		Matrices:  *matrices,
		Faults:    fs,
		Seed:      *seed,
		Telemetry: withTel,
	})

	fmt.Printf("MADbench on %s: %d tasks, %d matrices\n", *machine, *tasks, *matrices)
	if fs != nil {
		fmt.Printf("faults: %s\n", fs)
	}
	fmt.Printf("run time: %.0f s   aggregate: %.0f MB/s\n\n", float64(run.Wall), run.AggregateMBps())

	rows := [][]string{{"phase", "duration (s)", "read med (s)", "read p95 (s)", "write med (s)"}}
	for _, ph := range ensembleio.Phases(run) {
		reads := ensembleio.NewDataset(nil)
		writes := ensembleio.NewDataset(nil)
		for _, e := range ph.Events {
			switch e.Op {
			case ensembleio.OpRead:
				reads.Add(float64(e.Dur))
			case ensembleio.OpWrite:
				writes.Add(float64(e.Dur))
			}
		}
		row := []string{ph.Name, report.F(float64(ph.EndT-ph.StartT), 1)}
		if reads.Len() > 0 {
			row = append(row, report.F(reads.Quantile(0.5), 1), report.F(reads.Quantile(0.95), 1))
		} else {
			row = append(row, "-", "-")
		}
		if writes.Len() > 0 {
			row = append(row, report.F(writes.Quantile(0.5), 1))
		} else {
			row = append(row, "-")
		}
		rows = append(rows, row)
	}
	report.Table(os.Stdout, rows)

	reads := ensembleio.Durations(run, ensembleio.OpRead)
	writes := ensembleio.Durations(run, ensembleio.OpWrite)
	hr := ensembleio.NewHistogram(ensembleio.LogBins(0.5, 1000, 4))
	hr.AddAll(reads)
	hw := ensembleio.NewHistogram(ensembleio.LogBins(0.5, 1000, 4))
	hw.AddAll(writes)
	fmt.Println()
	report.Histogram(os.Stdout, "read durations, log bins (s)", hr)
	fmt.Println()
	report.Histogram(os.Stdout, "write durations, log bins (s)", hw)

	if findings := ensembleio.Diagnose(run); len(findings) > 0 {
		fmt.Println("\nadvisor findings:")
		for _, f := range findings {
			fmt.Printf("  %s\n", f)
		}
	} else {
		fmt.Println("\nadvisor findings: none")
	}

	if *trace != "" {
		if err := saveTrace(*trace, run, *format); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntrace written to %s (%s)\n", *trace, *format)
	}
	if *telOut != "" {
		if err := saveTelemetry(*telOut, run); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("telemetry written to %s\n", *telOut)
	}
}

// saveTrace persists the run, surfacing write errors deferred to
// close time (a trace truncated by ENOSPC must not pass silently).
func saveTrace(path string, run *ensembleio.Run, format string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	switch format {
	case "jsonl":
		return ensembleio.SaveTraceJSON(f, run)
	case "chrome":
		return ensembleio.SaveChromeTrace(f, run)
	case "spans":
		return ensembleio.SaveSpans(f, run)
	}
	return ensembleio.SaveTrace(f, run)
}

func saveTelemetry(path string, run *ensembleio.Run) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return ensembleio.SaveTelemetry(f, run)
}
