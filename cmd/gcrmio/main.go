// Command gcrmio runs the GCRM I/O kernel (§V) in any of its four
// configurations — baseline, collective buffering, +alignment,
// +metadata aggregation — and prints the size-normalized per-task rate
// histogram (as in Figure 6c/f/i/l) and the advisor's findings.
//
// Usage:
//
//	gcrmio [-tasks N] [-aggregators N] [-twostage] [-align]
//	       [-metaagg] [-seed N] [-trace FILE] [-faults scenario.json]
//	       [-traceformat binary|jsonl|chrome|spans] [-telemetry FILE]
//	       [-analytic on|off] [-prof PREFIX] [-version]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ensembleio"
	"ensembleio/internal/cliutil"
	"ensembleio/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gcrmio: ")
	var (
		tasks    = flag.Int("tasks", 10240, "model tasks whose records are dumped")
		aggs     = flag.Int("aggregators", 0, "writer ranks (0 = every task writes; 80 = the paper's collective setting)")
		twoStage = flag.Bool("twostage", false, "run all tasks and gather to aggregators over MPI (stage one + two)")
		align    = flag.Bool("align", false, "pad records to 1 MB boundaries (Fig 6g)")
		metaagg  = flag.Bool("metaagg", false, "aggregate metadata into one deferred write at close (Fig 6j)")
		seed     = flag.Int64("seed", 1, "run seed")
		trace    = flag.String("trace", "", "write the IPM-I/O trace to this file")
		scenario = flag.String("faults", "", "inject the fault scenario from this JSON file")
		format   = flag.String("traceformat", "", "trace encoding: binary, jsonl, chrome, spans (default binary; chrome/spans need telemetry)")
		telOut   = flag.String("telemetry", "", "write the telemetry metric snapshot (JSON) to this file")
		profOut  = flag.String("prof", "", "write wall-clock CPU/heap profiles to PREFIX.cpu.pprof / PREFIX.heap.pprof")
		analytic = cliutil.OnOff("analytic", true, "analytic fast path: on or off (off falls back to the pure event path; results are byte-identical)")
		version  = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(cliutil.Version())
		return
	}
	stopProf, err := cliutil.StartProfiles(*profOut)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()
	if *format == "" {
		*format = "binary"
	}
	switch *format {
	case "binary", "jsonl", "chrome", "spans":
	default:
		log.Fatalf("unknown -traceformat %q (want binary, jsonl, chrome, or spans)", *format)
	}
	withTel := *telOut != "" || *format == "chrome" || *format == "spans"
	var fs *ensembleio.Scenario
	if *scenario != "" {
		if fs, err = ensembleio.LoadScenario(*scenario); err != nil {
			log.Fatal(err)
		}
	}

	machine := ensembleio.Franklin()
	machine.AnalyticOff = !*analytic
	run := ensembleio.RunGCRM(ensembleio.GCRMConfig{
		Machine:           machine,
		Tasks:             *tasks,
		Aggregators:       *aggs,
		TwoStage:          *twoStage,
		Align:             *align,
		AggregateMetadata: *metaagg,
		Faults:            fs,
		Seed:              *seed,
		Telemetry:         withTel,
	})

	fmt.Printf("GCRM %s: %d tasks", run.Name, *tasks)
	if *aggs > 0 {
		fmt.Printf(", %d aggregators", *aggs)
	}
	fmt.Println()
	fmt.Printf("run time: %.0f s   sustained: %.0f MB/s\n\n", float64(run.Wall), run.AggregateMBps())

	// Size-normalized per-task histogram: sec/MB for data and metadata
	// populations separately, the presentation of Figure 6.
	data := ensembleio.DataWrites(run)
	if data.Len() > 0 {
		h := ensembleio.NewHistogram(ensembleio.LogBins(1e-3, 1e3, 4))
		h.AddAll(data)
		report.Histogram(os.Stdout, "data writes, sec/MB (left = fast)", h)
		fmt.Printf("median per-task rate: %.2f MB/s\n\n", 1/data.Quantile(0.5))
	}
	meta := ensembleio.NewDataset(nil)
	for _, e := range run.Collector.Events {
		if e.Op == ensembleio.OpWrite && e.Bytes > 0 && e.Bytes <= 64<<10 && e.Dur > 0 {
			meta.Add(float64(e.Dur) / (float64(e.Bytes) / 1e6))
		}
	}
	if meta.Len() > 0 {
		h := ensembleio.NewHistogram(ensembleio.LogBins(1e-3, 1e5, 4))
		h.AddAll(meta)
		report.Histogram(os.Stdout, "metadata writes, sec/MB", h)
		fmt.Println()
	}

	if findings := ensembleio.Diagnose(run); len(findings) > 0 {
		fmt.Println("advisor findings:")
		for _, f := range findings {
			fmt.Printf("  %s\n", f)
		}
	} else {
		fmt.Println("advisor findings: none")
	}

	if *trace != "" {
		if err := saveTrace(*trace, run, *format); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntrace written to %s (%s)\n", *trace, *format)
	}
	if *telOut != "" {
		if err := saveTelemetry(*telOut, run); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("telemetry written to %s\n", *telOut)
	}
}

// saveTrace persists the run, surfacing write errors deferred to
// close time (a trace truncated by ENOSPC must not pass silently).
func saveTrace(path string, run *ensembleio.Run, format string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	switch format {
	case "jsonl":
		return ensembleio.SaveTraceJSON(f, run)
	case "chrome":
		return ensembleio.SaveChromeTrace(f, run)
	case "spans":
		return ensembleio.SaveSpans(f, run)
	}
	return ensembleio.SaveTrace(f, run)
}

func saveTelemetry(path string, run *ensembleio.Run) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return ensembleio.SaveTelemetry(f, run)
}
