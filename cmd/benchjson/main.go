// Command benchjson converts `go test -bench` text output (on stdin)
// into the repo's perf-baseline format: a JSON object mapping each
// benchmark to its metric name → values series (one value per -count
// repetition, in run order), plus the host context lines and the raw
// benchmark lines so benchstat can re-consume the measurement.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -count 3 ./... | benchjson > BENCH_ensembleio.json
//	go test -run '^$' -bench <guard set> ./... | benchjson -check BENCH_ensembleio.json -slack 2.0
//
// -check compares the run on stdin against a checked-in baseline
// instead of emitting JSON: for every benchmark present in both, the
// best (minimum) ns/op of the new run must be within -slack times the
// baseline's best, and the best allocs/op and B/op within -memslack
// times theirs (memory metrics are skipped when either side was run
// without -benchmem). Exit status 1 on regression — the CI guard that
// the hot paths stay within noise of the baseline and that allocation
// wins can't silently erode.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"ensembleio/internal/cliutil"
)

// baseline is the checked-in BENCH_ensembleio.json shape. Maps
// serialize with sorted keys, so regenerating the file produces a
// stable diff.
type baseline struct {
	// Context holds the goos/goarch/pkg/cpu lines the bench run
	// printed (pkg appears once per package with benchmarks).
	Context map[string][]string `json:"context"`
	// Benchmarks maps "BenchmarkName-P" → metric → values.
	Benchmarks map[string]map[string][]float64 `json:"benchmarks"`
	// Raw keeps the untouched benchmark lines: `benchstat
	// <(jq -r '.raw[]' BENCH_ensembleio.json) new.txt` compares a
	// fresh run against this baseline.
	Raw []string `json:"raw"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var (
		check    = flag.String("check", "", "compare stdin against this baseline JSON instead of emitting JSON")
		slack    = flag.Float64("slack", 2.0, "with -check, allowed ns/op ratio over the baseline best")
		memSlack = flag.Float64("memslack", 1.25, "with -check, allowed allocs/op and B/op ratio over the baseline best")
		version  = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(cliutil.Version())
		return
	}

	out := baseline{
		Context:    map[string][]string{},
		Benchmarks: map[string]map[string][]float64{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				out.Context[key] = append(out.Context[key], v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iteration count, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := fields[0]
		m := out.Benchmarks[name]
		if m == nil {
			m = map[string][]float64{}
			out.Benchmarks[name] = m
		}
		iters, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		m["iters"] = append(m["iters"], iters)
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			m[fields[i+1]] = append(m[fields[i+1]], v)
		}
		out.Raw = append(out.Raw, line)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(out.Benchmarks) == 0 {
		log.Fatal("no benchmark lines on stdin (pipe `go test -bench` output in)")
	}

	if *check != "" {
		if err := checkAgainst(out, *check, *slack, *memSlack); err != nil {
			log.Fatal(err)
		}
		return
	}

	// Encode straight to stdout: a write error (ENOSPC on a redirected
	// baseline file) must not pass silently.
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		log.Fatal(err)
	}
}

// gomaxprocsSuffix strips the trailing -P parallelism tag go test
// appends to benchmark names; baselines recorded on another machine
// carry a different suffix for the same benchmark.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// checkAgainst compares the parsed run against the baseline file and
// prints the per-benchmark report. Exit is via the returned error: nil
// means every overlapping benchmark passed every gated metric.
func checkAgainst(run baseline, path string, slack, memSlack float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	oks, failures, compared := checkRun(run, base, slack, memSlack)
	for _, line := range oks {
		fmt.Println(line)
	}
	if compared == 0 {
		return fmt.Errorf("no overlapping benchmarks between stdin and %s", path)
	}
	if len(failures) > 0 {
		return fmt.Errorf("perf regression against %s:\n  %s", path, strings.Join(failures, "\n  "))
	}
	fmt.Printf("%d benchmark(s) within x%.2f ns/op, x%.2f allocs/op+B/op of baseline\n", compared, slack, memSlack)
	return nil
}

// checkRun compares the run against the baseline: for every benchmark
// present in both, the new best (minimum) value of each gated metric
// must not exceed its slack times the baseline best — ns/op gated by
// slack, allocs/op and B/op gated by memSlack. Comparing minima
// (benchstat's summary of repetitions) filters scheduler noise; the
// generous time slack means only gross regressions — an accidentally-
// hot disabled path — trip the guard, while the tighter memory slack
// catches eroding allocation wins (allocs/op is nearly deterministic).
// Metrics absent on either side (e.g. a baseline recorded without
// -benchmem) are skipped. Returns the ok report lines (one per passing
// benchmark, with a column per compared metric), the failure lines,
// and the number of benchmarks compared on at least one metric.
func checkRun(run, base baseline, slack, memSlack float64) (oks, failures []string, compared int) {
	gates := []struct {
		metric string
		slack  float64
	}{
		{"ns/op", slack},
		{"allocs/op", memSlack},
		{"B/op", memSlack},
	}
	baseBest := map[string]map[string][]float64{}
	for name, metrics := range base.Benchmarks {
		baseBest[gomaxprocsSuffix.ReplaceAllString(name, "")] = metrics
	}
	names := make([]string, 0, len(run.Benchmarks))
	for name := range run.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		short := gomaxprocsSuffix.ReplaceAllString(name, "")
		bm, ok := baseBest[short]
		if !ok {
			continue
		}
		var cols []string
		failed := false
		for _, g := range gates {
			bv, okBase := best(bm[g.metric])
			nv, okRun := best(run.Benchmarks[name][g.metric])
			if !okBase || !okRun {
				continue
			}
			if bv <= 0 {
				// A ratio against zero is meaningless for time, but a
				// zero memory baseline is the strongest gate there is:
				// the path was allocation-free when recorded, so any
				// allocation at all is a regression.
				if g.metric == "ns/op" || nv <= 0 {
					continue
				}
				failed = true
				cols = append(cols, fmt.Sprintf("%.0f %s", nv, g.metric))
				failures = append(failures,
					fmt.Sprintf("%s: %.0f %s vs allocation-free baseline 0",
						short, nv, g.metric))
				continue
			}
			ratio := nv / bv
			cols = append(cols, fmt.Sprintf("%.0f %s x%.2f", nv, g.metric, ratio))
			if nv > g.slack*bv {
				failed = true
				failures = append(failures,
					fmt.Sprintf("%s: %.0f %s vs baseline %.0f (x%.2f > allowed x%.2f)",
						short, nv, g.metric, bv, ratio, g.slack))
			}
		}
		if len(cols) == 0 {
			continue
		}
		compared++
		if !failed {
			oks = append(oks, fmt.Sprintf("ok  %s: %s", short, strings.Join(cols, ", ")))
		}
	}
	return oks, failures, compared
}

// best returns the minimum of vs (the least-noise repetition).
func best(vs []float64) (float64, bool) {
	if len(vs) == 0 {
		return 0, false
	}
	m := vs[0]
	for _, v := range vs[1:] {
		if v < m {
			m = v
		}
	}
	return m, true
}
