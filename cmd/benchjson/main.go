// Command benchjson converts `go test -bench` text output (on stdin)
// into the repo's perf-baseline format: a JSON object mapping each
// benchmark to its metric name → values series (one value per -count
// repetition, in run order), plus the host context lines and the raw
// benchmark lines so benchstat can re-consume the measurement.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -count 3 ./... | benchjson > BENCH_ensembleio.json
//	go test -run '^$' -bench <guard set> ./... | benchjson -check BENCH_ensembleio.json -slack 2.0
//
// -check compares the run on stdin against a checked-in baseline
// instead of emitting JSON: for every benchmark present in both, the
// best (minimum) ns/op of the new run must be within slack times the
// baseline's best. Exit status 1 on regression — the CI guard that the
// disabled-telemetry path stays within noise of the baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"ensembleio/internal/cliutil"
)

// baseline is the checked-in BENCH_ensembleio.json shape. Maps
// serialize with sorted keys, so regenerating the file produces a
// stable diff.
type baseline struct {
	// Context holds the goos/goarch/pkg/cpu lines the bench run
	// printed (pkg appears once per package with benchmarks).
	Context map[string][]string `json:"context"`
	// Benchmarks maps "BenchmarkName-P" → metric → values.
	Benchmarks map[string]map[string][]float64 `json:"benchmarks"`
	// Raw keeps the untouched benchmark lines: `benchstat
	// <(jq -r '.raw[]' BENCH_ensembleio.json) new.txt` compares a
	// fresh run against this baseline.
	Raw []string `json:"raw"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var (
		check   = flag.String("check", "", "compare stdin against this baseline JSON instead of emitting JSON")
		slack   = flag.Float64("slack", 2.0, "with -check, allowed ns/op ratio over the baseline best")
		version = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(cliutil.Version())
		return
	}

	out := baseline{
		Context:    map[string][]string{},
		Benchmarks: map[string]map[string][]float64{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				out.Context[key] = append(out.Context[key], v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iteration count, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := fields[0]
		m := out.Benchmarks[name]
		if m == nil {
			m = map[string][]float64{}
			out.Benchmarks[name] = m
		}
		iters, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		m["iters"] = append(m["iters"], iters)
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			m[fields[i+1]] = append(m[fields[i+1]], v)
		}
		out.Raw = append(out.Raw, line)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(out.Benchmarks) == 0 {
		log.Fatal("no benchmark lines on stdin (pipe `go test -bench` output in)")
	}

	if *check != "" {
		if err := checkAgainst(out, *check, *slack); err != nil {
			log.Fatal(err)
		}
		return
	}

	// Encode straight to stdout: a write error (ENOSPC on a redirected
	// baseline file) must not pass silently.
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		log.Fatal(err)
	}
}

// gomaxprocsSuffix strips the trailing -P parallelism tag go test
// appends to benchmark names; baselines recorded on another machine
// carry a different suffix for the same benchmark.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// checkAgainst compares the parsed run against the baseline file: for
// every benchmark present in both, the new best ns/op must not exceed
// slack times the baseline best. Comparing minima (benchstat's summary
// of repetitions) filters scheduler noise; the generous default slack
// means only gross regressions — an accidentally-hot disabled path —
// trip the guard.
func checkAgainst(run baseline, path string, slack float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	baseBest := map[string]float64{}
	for name, metrics := range base.Benchmarks {
		if v, ok := best(metrics["ns/op"]); ok {
			baseBest[gomaxprocsSuffix.ReplaceAllString(name, "")] = v
		}
	}
	names := make([]string, 0, len(run.Benchmarks))
	for name := range run.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	compared := 0
	var failures []string
	for _, name := range names {
		short := gomaxprocsSuffix.ReplaceAllString(name, "")
		bv, ok := baseBest[short]
		if !ok {
			continue
		}
		nv, ok := best(run.Benchmarks[name]["ns/op"])
		if !ok {
			continue
		}
		compared++
		if nv > slack*bv {
			failures = append(failures,
				fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (x%.2f > allowed x%.2f)", short, nv, bv, nv/bv, slack))
		} else {
			fmt.Printf("ok  %s: %.0f ns/op vs baseline %.0f (x%.2f)\n", short, nv, bv, nv/bv)
		}
	}
	if compared == 0 {
		return fmt.Errorf("no overlapping benchmarks between stdin and %s", path)
	}
	if len(failures) > 0 {
		return fmt.Errorf("perf regression against %s:\n  %s", path, strings.Join(failures, "\n  "))
	}
	fmt.Printf("%d benchmark(s) within x%.2f of baseline\n", compared, slack)
	return nil
}

// best returns the minimum of vs (the least-noise repetition).
func best(vs []float64) (float64, bool) {
	if len(vs) == 0 {
		return 0, false
	}
	m := vs[0]
	for _, v := range vs[1:] {
		if v < m {
			m = v
		}
	}
	return m, true
}
