// Command benchjson converts `go test -bench` text output (on stdin)
// into the repo's perf-baseline format: a JSON object mapping each
// benchmark to its metric name → values series (one value per -count
// repetition, in run order), plus the host context lines and the raw
// benchmark lines so benchstat can re-consume the measurement.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -count 3 ./... | benchjson > BENCH_ensembleio.json
package main

import (
	"bufio"
	"encoding/json"
	"log"
	"os"
	"strconv"
	"strings"
)

// baseline is the checked-in BENCH_ensembleio.json shape. Maps
// serialize with sorted keys, so regenerating the file produces a
// stable diff.
type baseline struct {
	// Context holds the goos/goarch/pkg/cpu lines the bench run
	// printed (pkg appears once per package with benchmarks).
	Context map[string][]string `json:"context"`
	// Benchmarks maps "BenchmarkName-P" → metric → values.
	Benchmarks map[string]map[string][]float64 `json:"benchmarks"`
	// Raw keeps the untouched benchmark lines: `benchstat
	// <(jq -r '.raw[]' BENCH_ensembleio.json) new.txt` compares a
	// fresh run against this baseline.
	Raw []string `json:"raw"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")

	out := baseline{
		Context:    map[string][]string{},
		Benchmarks: map[string]map[string][]float64{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				out.Context[key] = append(out.Context[key], v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iteration count, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := fields[0]
		m := out.Benchmarks[name]
		if m == nil {
			m = map[string][]float64{}
			out.Benchmarks[name] = m
		}
		iters, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		m["iters"] = append(m["iters"], iters)
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			m[fields[i+1]] = append(m[fields[i+1]], v)
		}
		out.Raw = append(out.Raw, line)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(out.Benchmarks) == 0 {
		log.Fatal("no benchmark lines on stdin (pipe `go test -bench` output in)")
	}

	// Encode straight to stdout: a write error (ENOSPC on a redirected
	// baseline file) must not pass silently.
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		log.Fatal(err)
	}
}
