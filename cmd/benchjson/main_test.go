package main

import (
	"strings"
	"testing"
)

// bl builds a baseline with one benchmark holding the given metric
// series.
func bl(name string, metrics map[string][]float64) baseline {
	return baseline{Benchmarks: map[string]map[string][]float64{name: metrics}}
}

func TestCheckRunPassesWithinSlack(t *testing.T) {
	base := bl("BenchmarkX-8", map[string][]float64{
		"ns/op": {100, 110}, "allocs/op": {1000, 1000}, "B/op": {50000, 50000},
	})
	run := bl("BenchmarkX-4", map[string][]float64{
		"ns/op": {150}, "allocs/op": {1100}, "B/op": {55000},
	})
	oks, failures, compared := checkRun(run, base, 2.0, 1.25)
	if compared != 1 {
		t.Fatalf("compared = %d, want 1", compared)
	}
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
	if len(oks) != 1 || !strings.Contains(oks[0], "allocs/op") || !strings.Contains(oks[0], "B/op") {
		t.Fatalf("ok line should carry the alloc columns, got %v", oks)
	}
}

// TestCheckRunFlagsAllocRegression is the acceptance test for the
// memory gate: a synthetic allocs/op regression (time unchanged) must
// fail the check.
func TestCheckRunFlagsAllocRegression(t *testing.T) {
	base := bl("BenchmarkFig1_IOR512-8", map[string][]float64{
		"ns/op": {1e8}, "allocs/op": {33000}, "B/op": {4e6},
	})
	run := bl("BenchmarkFig1_IOR512-8", map[string][]float64{
		"ns/op": {1e8}, "allocs/op": {66000}, "B/op": {4e6},
	})
	_, failures, compared := checkRun(run, base, 2.0, 1.25)
	if compared != 1 {
		t.Fatalf("compared = %d, want 1", compared)
	}
	if len(failures) != 1 || !strings.Contains(failures[0], "allocs/op") {
		t.Fatalf("want exactly one allocs/op failure, got %v", failures)
	}
}

func TestCheckRunFlagsBytesRegression(t *testing.T) {
	base := bl("BenchmarkY", map[string][]float64{
		"ns/op": {100}, "allocs/op": {10}, "B/op": {1000},
	})
	run := bl("BenchmarkY", map[string][]float64{
		"ns/op": {100}, "allocs/op": {10}, "B/op": {2000},
	})
	_, failures, _ := checkRun(run, base, 2.0, 1.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "B/op") {
		t.Fatalf("want exactly one B/op failure, got %v", failures)
	}
}

func TestCheckRunFlagsTimeRegression(t *testing.T) {
	base := bl("BenchmarkZ", map[string][]float64{"ns/op": {100}})
	run := bl("BenchmarkZ", map[string][]float64{"ns/op": {500}})
	_, failures, _ := checkRun(run, base, 2.0, 1.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "ns/op") {
		t.Fatalf("want exactly one ns/op failure, got %v", failures)
	}
}

// A baseline recorded without -benchmem must still gate on time and
// skip the memory metrics rather than failing or crashing.
func TestCheckRunSkipsMissingMemoryMetrics(t *testing.T) {
	base := bl("BenchmarkW", map[string][]float64{"ns/op": {100}})
	run := bl("BenchmarkW", map[string][]float64{
		"ns/op": {120}, "allocs/op": {99999}, "B/op": {9e9},
	})
	oks, failures, compared := checkRun(run, base, 2.0, 1.25)
	if compared != 1 || len(failures) != 0 {
		t.Fatalf("compared=%d failures=%v, want 1 compared and none failed", compared, failures)
	}
	if len(oks) != 1 || strings.Contains(oks[0], "allocs/op") {
		t.Fatalf("memory columns should be absent, got %v", oks)
	}
}

// The -P GOMAXPROCS suffix differs across machines; benchmarks must
// still pair up after stripping it, and disjoint sets must report zero
// comparisons.
func TestCheckRunSuffixAndOverlap(t *testing.T) {
	base := bl("BenchmarkS-16", map[string][]float64{"ns/op": {100}})
	run := bl("BenchmarkS-2", map[string][]float64{"ns/op": {100}})
	if _, _, compared := checkRun(run, base, 2.0, 1.25); compared != 1 {
		t.Fatalf("suffix-stripped names should pair up, compared = %d", compared)
	}
	other := bl("BenchmarkT", map[string][]float64{"ns/op": {100}})
	if _, _, compared := checkRun(other, base, 2.0, 1.25); compared != 0 {
		t.Fatalf("disjoint benchmarks should not compare, compared = %d", compared)
	}
}

// TestCheckRunZeroAllocBaselineIsExact: a baseline recorded at zero
// allocs/op (the cache MRU hit path) admits no slack — the first
// allocation that creeps in fails the guard, while staying at zero
// keeps passing.
func TestCheckRunZeroAllocBaselineIsExact(t *testing.T) {
	base := bl("BenchmarkCacheHitMRU", map[string][]float64{
		"ns/op": {500}, "allocs/op": {0, 0, 0}, "B/op": {0, 0, 0},
	})
	still := bl("BenchmarkCacheHitMRU", map[string][]float64{
		"ns/op": {600}, "allocs/op": {0}, "B/op": {0},
	})
	if _, failures, compared := checkRun(still, base, 3.0, 1.25); len(failures) != 0 || compared != 1 {
		t.Fatalf("zero-alloc run against zero-alloc baseline: failures %v, compared %d", failures, compared)
	}
	grew := bl("BenchmarkCacheHitMRU", map[string][]float64{
		"ns/op": {600}, "allocs/op": {2}, "B/op": {64},
	})
	_, failures, _ := checkRun(grew, base, 3.0, 1.25)
	if len(failures) != 2 {
		t.Fatalf("want allocs/op and B/op failures against allocation-free baseline, got %v", failures)
	}
	for _, f := range failures {
		if !strings.Contains(f, "allocation-free baseline") {
			t.Errorf("failure %q should name the allocation-free baseline", f)
		}
	}
}
