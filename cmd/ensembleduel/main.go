// Command ensembleduel co-schedules two or more declarative workload
// specs on one shared simulated platform and reports LASSi-style
// interference metrics: per-tenant I/O-time shares, contention
// windows on the shared OSTs, and an overlap-weighted victim/
// aggressor ranking against automatically simulated solo baselines.
//
// Usage:
//
//	ensembleduel -spec a.json -spec b.json [-stagger 0,5]
//	    [-machine franklin|franklin-patched|jaguar] [-seed N]
//	    [-faults scenario.json] [-analytic on|off]
//	    [-cache DIR] [-cache-verify]
//	    [-telemetry FILE] [-spans FILE] [-report FILE] [-out DIR]
//	    [-binsec F] [-top N] [-json] [-prof PREFIX] [-version]
//
// Each -spec adds one tenant; its name defaults to the spec's name
// (sanitized to [A-Za-z0-9_-], deduplicated). -stagger gives the
// start offsets: a comma list assigns per-tenant offsets in order; a
// single value starts tenant i at i*value. -out writes the full
// artifact set — per-tenant traces, the merged telemetry snapshot and
// span stream, and the interference report JSON — every byte of which
// is identical across -j worker counts and -analytic on/off.
//
// -cache DIR memoizes the whole session — co-run plus the solo
// baselines — in the content-addressed run cache (internal/cascache),
// keyed on platform, faults, seed, bin width, and every tenant's spec,
// name, and start offset. A hit serves the full artifact set
// byte-identically; -cache-verify recomputes on every hit and fails on
// any difference.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"ensembleio"
	"ensembleio/internal/cascache"
	"ensembleio/internal/cliutil"
	"ensembleio/internal/report"
)

// specList accumulates repeated -spec flags.
type specList []string

func (s *specList) String() string     { return strings.Join(*s, ",") }
func (s *specList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	log.SetFlags(0)
	log.SetPrefix("ensembleduel: ")
	var specs specList
	flag.Var(&specs, "spec", "workload spec JSON (repeat once per tenant)")
	var (
		machine  = flag.String("machine", "franklin", "platform profile: franklin, franklin-patched, jaguar")
		seed     = flag.Int64("seed", 1, "session seed (tenant i's body draws use seed+i)")
		stagger  = flag.String("stagger", "", "start offsets: comma list per tenant, or one value meaning i*value")
		scenario = flag.String("faults", "", "inject the fault scenario from this JSON file (co-run AND solo baselines)")
		analytic = cliutil.OnOff("analytic", true, "analytic fast path: on or off (results are byte-identical)")
		binSec   = flag.Float64("binsec", 1, "interference activity-bin width in virtual seconds")
		top      = flag.Int("top", 10, "rows per report table")
		jsonOut  = flag.Bool("json", false, "print the interference report as JSON instead of tables")
		telOut   = flag.String("telemetry", "", "write the merged telemetry snapshot (JSON) to this file")
		spansOut = flag.String("spans", "", "write the merged span stream (JSONL) to this file")
		repOut   = flag.String("report", "", "write the interference report (JSON) to this file")
		outDir   = flag.String("out", "", "write the full artifact set into this directory")
		profOut  = flag.String("prof", "", "write CPU/heap profiles to PREFIX.{cpu,heap}.pprof")
		version  = flag.Bool("version", false, "print build version and exit")
	)
	cacheDir, cacheVerify := cliutil.CacheFlags()
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected argument %q (all inputs are flags)", flag.Arg(0))
	}
	if *version {
		fmt.Println(cliutil.Version())
		return
	}
	if len(specs) < 2 {
		log.Fatal("need at least two -spec files (one per tenant)")
	}

	stopProf, err := cliutil.StartProfiles(*profOut)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()

	prof, err := platform(*machine)
	if err != nil {
		log.Fatal(err)
	}
	prof.AnalyticOff = !*analytic
	var fs *ensembleio.Scenario
	if *scenario != "" {
		if fs, err = ensembleio.LoadScenario(*scenario); err != nil {
			log.Fatal(err)
		}
	}
	offsets, err := staggerOffsets(*stagger, len(specs))
	if err != nil {
		log.Fatal(err)
	}

	tenants := make([]ensembleio.Tenant, len(specs))
	for i, path := range specs {
		spec, err := ensembleio.LoadWorkload(path)
		if err != nil {
			log.Fatal(err)
		}
		tenants[i] = ensembleio.Tenant{
			Name:     tenantName(spec.Name, tenants[:i]),
			Spec:     spec,
			StartSec: offsets[i],
		}
	}

	if *cacheVerify && *cacheDir == "" {
		log.Fatal("-cache-verify needs -cache DIR")
	}
	cfg := ensembleio.TenancyConfig{
		Machine:   prof,
		Seed:      *seed,
		Faults:    fs,
		Telemetry: true,
	}
	// compute runs the session (co-run plus solo baselines) and
	// serializes the full artifact set.
	compute := func() []cascache.Artifact {
		res, err := ensembleio.RunTenants(cfg, tenants)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := ensembleio.AnalyzeInterference(cfg, tenants, res, ensembleio.InterferenceConfig{BinSec: *binSec})
		if err != nil {
			log.Fatal(err)
		}
		arts, err := captureDuel(res, rep)
		if err != nil {
			log.Fatal(err)
		}
		return arts
	}

	var arts []cascache.Artifact
	var store *cascache.Store
	if *cacheDir != "" {
		if store, err = cascache.Open(*cacheDir); err != nil {
			log.Fatal(err)
		}
		key, err := duelKey(prof, fs, *seed, *binSec, tenants)
		if err != nil {
			log.Fatal(err)
		}
		if ent, ok := store.Get(key); ok {
			arts = ent.Artifacts
			if *cacheVerify {
				if err := cascache.DiffArtifacts(arts, compute()); err != nil {
					log.Fatalf("cache verify: %v", err)
				}
			}
		} else {
			arts = compute()
			if err := store.Put(key, duelMeta(*seed, tenants, arts), arts); err != nil {
				log.Fatal(err)
			}
		}
	} else {
		arts = compute()
	}
	rep, totals, err := decodeDuel(arts)
	if err != nil {
		log.Fatal(err)
	}

	if *jsonOut {
		printJSON(rep)
	} else {
		printReport(totals, rep, *top)
		if store != nil {
			st := store.Stats()
			verified := ""
			if *cacheVerify {
				verified = ", verified"
			}
			fmt.Printf("cache: %d hit(s), %d miss(es)%s\n", st.Hits, st.Misses, verified)
		}
	}

	if *telOut != "" {
		writeArtifact(*telOut, arts, "session.telemetry.json")
	}
	if *spansOut != "" {
		writeArtifact(*spansOut, arts, "session.spans.jsonl")
	}
	if *repOut != "" {
		writeArtifact(*repOut, arts, "interference.json")
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, a := range arts {
			if a.Name == duelSummaryName {
				continue // internal to the cache entry
			}
			writeArtifact(filepath.Join(*outDir, a.Name), arts, a.Name)
		}
		fmt.Printf("artifacts written to %s\n", *outDir)
	}
}

func platform(name string) (ensembleio.Platform, error) {
	switch name {
	case "franklin":
		return ensembleio.Franklin(), nil
	case "franklin-patched":
		return ensembleio.FranklinPatched(), nil
	case "jaguar":
		return ensembleio.Jaguar(), nil
	}
	return ensembleio.Platform{}, fmt.Errorf("unknown machine %q", name)
}

// staggerOffsets parses -stagger: empty means all zero, one value v
// means tenant i starts at i*v, a comma list assigns offsets in order
// (missing trailing entries default to 0).
func staggerOffsets(s string, n int) ([]float64, error) {
	offsets := make([]float64, n)
	if s == "" {
		return offsets, nil
	}
	parts := strings.Split(s, ",")
	vals := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("-stagger %q: want non-negative seconds", p)
		}
		vals[i] = v
	}
	if len(vals) == 1 {
		for i := range offsets {
			offsets[i] = float64(i) * vals[0]
		}
		return offsets, nil
	}
	if len(vals) > n {
		return nil, fmt.Errorf("-stagger lists %d offsets for %d tenants", len(vals), n)
	}
	copy(offsets, vals)
	return offsets, nil
}

// tenantName sanitizes a spec name into a valid tenant tag and
// deduplicates it against the tenants already named.
func tenantName(name string, taken []ensembleio.Tenant) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	base := b.String()
	if base == "" {
		base = "tenant"
	}
	candidate := base
	for n := 2; ; n++ {
		clash := false
		for i := range taken {
			if taken[i].Name == candidate {
				clash = true
				break
			}
		}
		if !clash {
			return candidate
		}
		candidate = fmt.Sprintf("%s-%d", base, n)
	}
}

// writeReport serializes the interference report in its canonical
// encoding: indented JSON, struct field order, trailing newline.
func writeReport(f io.Writer, rep *ensembleio.InterferenceReport) error {
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func printJSON(rep *ensembleio.InterferenceReport) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
}

func writeFile(path string, save func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := save(f); err != nil {
		f.Close() //lint:allow(errclose) already failing; the save error wins
		log.Fatalf("%s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

// printReport renders the human-readable tables: tenants, contention
// windows, victim/aggressor ranking. totals carries each tenant's
// logical byte volume, in rep.Tenants order (it comes from the
// session summary so cache-served sessions print identically).
func printReport(totals []int64, rep *ensembleio.InterferenceReport, top int) {
	rows := [][]string{{"tenant", "start_s", "end_s", "dur_s", "solo_s", "slowdown", "io_share", "ost_share", "agg MB/s"}}
	for i, t := range rep.Tenants {
		agg := 0.0
		if i < len(totals) && t.DurationSec > 0 {
			agg = float64(totals[i]) / 1e6 / t.DurationSec
		}
		rows = append(rows, []string{
			t.Name,
			report.F(t.StartSec, 2), report.F(t.EndSec, 2), report.F(t.DurationSec, 2),
			report.F(t.SoloSec, 2), report.F(t.Slowdown, 3),
			report.F(t.IOTimeShare, 3), report.F(t.OSTBusyShare, 3),
			report.F(agg, 0),
		})
	}
	fmt.Println("tenants")
	report.Table(os.Stdout, rows)
	fmt.Println()

	if len(rep.Windows) > 0 {
		wins := rep.Windows
		if len(wins) > top {
			wins = wins[:top]
		}
		rows = [][]string{{"window", "start_s", "end_s", "tenants"}}
		for i, w := range wins {
			rows = append(rows, []string{
				fmt.Sprint(i), report.F(w.StartSec, 1), report.F(w.EndSec, 1),
				strings.Join(w.Tenants, "+"),
			})
		}
		fmt.Printf("contention windows (%d total)\n", len(rep.Windows))
		report.Table(os.Stdout, rows)
		fmt.Println()
	}

	if len(rep.Ranking) == 0 {
		fmt.Println("no interference findings (no tenant cleared the slowdown and overlap thresholds)")
		return
	}
	ranking := rep.Ranking
	if len(ranking) > top {
		ranking = ranking[:top]
	}
	rows = [][]string{{"victim", "aggressor", "slowdown", "overlap", "score", "shared OSTs"}}
	for _, p := range ranking {
		osts := make([]string, len(p.SharedOSTs))
		for i, o := range p.SharedOSTs {
			osts[i] = fmt.Sprintf("ost%03d", o)
		}
		rows = append(rows, []string{
			p.Victim, p.Aggressor,
			report.F(p.Slowdown, 3), report.F(p.OverlapFrac, 3), report.F(p.Score, 4),
			strings.Join(osts, " "),
		})
	}
	fmt.Println("victim/aggressor ranking")
	report.Table(os.Stdout, rows)
}

// Duel cache plumbing: the whole session (co-run plus solo baselines)
// is memoized under one content-addressed key. The artifact set is
// exactly the -out file set plus a small summary the tables need.

// duelSummaryName is the cache-internal artifact carrying per-tenant
// totals (it is not written by -out).
const duelSummaryName = "summary.json"

// duelSummary preserves the bits of the in-memory session the report
// tables need but the other artifacts don't carry directly.
type duelSummary struct {
	Tenants []duelTenantSummary `json:"tenants"`
}

type duelTenantSummary struct {
	Name       string `json:"name"`
	TotalBytes int64  `json:"total_bytes"`
}

// duelKey derives the session's canonical cache key. The bin width is
// included because it shapes the interference report artifact; -top
// and -json are presentation-only and excluded. Tenant names are
// included because they appear inside artifact bytes (trace file
// names, telemetry counter names).
func duelKey(prof ensembleio.Platform, fs *ensembleio.Scenario, seed int64, binSec float64, tenants []ensembleio.Tenant) (cascache.Key, error) {
	plat, err := cascache.CanonicalPlatform(prof)
	if err != nil {
		return cascache.Key{}, err
	}
	fb, err := ensembleio.CanonicalScenario(fs)
	if err != nil {
		return cascache.Key{}, err
	}
	b := cascache.NewBuilder().
		Section("kind", []byte("duel")).
		Section("platform", plat).
		Section("faults", fb).
		Int64("seed", seed).
		Float64("binsec", binSec)
	for _, t := range tenants {
		wl, err := ensembleio.CanonicalWorkloadBytes(t.Spec)
		if err != nil {
			return cascache.Key{}, err
		}
		b.Section("tenant.spec", wl).
			Section("tenant.name", []byte(t.Name)).
			Float64("tenant.start", t.StartSec)
	}
	return b.Key(), nil
}

// captureDuel serializes the session into its cache artifact set:
// the interference report, merged spans and telemetry, the summary,
// and one trace per tenant — each encoded exactly as the -out files.
func captureDuel(res *ensembleio.TenancyResult, rep *ensembleio.InterferenceReport) ([]cascache.Artifact, error) {
	var arts []cascache.Artifact
	add := func(name string, write func(io.Writer) error) error {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			return fmt.Errorf("capturing %s: %w", name, err)
		}
		arts = append(arts, cascache.Artifact{Name: name, Data: buf.Bytes()})
		return nil
	}
	if err := add("interference.json", func(w io.Writer) error { return writeReport(w, rep) }); err != nil {
		return nil, err
	}
	if err := add("session.spans.jsonl", func(w io.Writer) error {
		return ensembleio.SaveSpanList(w, res.Spans)
	}); err != nil {
		return nil, err
	}
	if err := add("session.telemetry.json", func(w io.Writer) error {
		return ensembleio.SaveTelemetrySnapshot(w, res.Telemetry)
	}); err != nil {
		return nil, err
	}
	sum := duelSummary{}
	for i := range res.Tenants {
		sum.Tenants = append(sum.Tenants, duelTenantSummary{
			Name:       res.Tenants[i].Name,
			TotalBytes: res.Tenants[i].Run.TotalBytes,
		})
	}
	if err := add(duelSummaryName, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(sum)
	}); err != nil {
		return nil, err
	}
	for i := range res.Tenants {
		t := &res.Tenants[i]
		if err := add(t.Name+".trace.bin", func(w io.Writer) error {
			return ensembleio.SaveTrace(w, t.Run)
		}); err != nil {
			return nil, err
		}
	}
	return arts, nil
}

// duelMeta summarizes the session for the cache index.
func duelMeta(seed int64, tenants []ensembleio.Tenant, arts []cascache.Artifact) cascache.Meta {
	names := make([]string, len(tenants))
	tasks := 0
	for i, t := range tenants {
		names[i] = t.Name
		tasks += t.Spec.Tasks
	}
	var total int64
	for _, a := range arts {
		if a.Name == duelSummaryName {
			var sum duelSummary
			if json.Unmarshal(a.Data, &sum) == nil {
				for _, t := range sum.Tenants {
					total += t.TotalBytes
				}
			}
		}
	}
	return cascache.Meta{
		Workload:   "duel:" + strings.Join(names, "+"),
		Seed:       seed,
		Tasks:      tasks,
		TotalBytes: total,
	}
}

// decodeDuel recovers the report and per-tenant totals from an
// artifact set, served or fresh.
func decodeDuel(arts []cascache.Artifact) (*ensembleio.InterferenceReport, []int64, error) {
	var rep *ensembleio.InterferenceReport
	var totals []int64
	for _, a := range arts {
		switch a.Name {
		case "interference.json":
			rep = &ensembleio.InterferenceReport{}
			if err := json.Unmarshal(a.Data, rep); err != nil {
				return nil, nil, fmt.Errorf("interference.json: %w", err)
			}
		case duelSummaryName:
			var sum duelSummary
			if err := json.Unmarshal(a.Data, &sum); err != nil {
				return nil, nil, fmt.Errorf("%s: %w", duelSummaryName, err)
			}
			for _, t := range sum.Tenants {
				totals = append(totals, t.TotalBytes)
			}
		}
	}
	if rep == nil {
		return nil, nil, fmt.Errorf("artifact set lacks interference.json")
	}
	return rep, totals, nil
}

// writeArtifact writes one named artifact of the set to path.
func writeArtifact(path string, arts []cascache.Artifact, name string) {
	for _, a := range arts {
		if a.Name == name {
			if err := os.WriteFile(path, a.Data, 0o644); err != nil {
				log.Fatal(err)
			}
			return
		}
	}
	log.Fatalf("%s: artifact %s missing from session", path, name)
}
