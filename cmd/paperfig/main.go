// Command paperfig regenerates every evaluation artifact of the paper
// — Figures 1, 2, 4, 5, 6 and the in-text writer-saturation claim —
// from fresh simulations. For each figure it writes an ASCII rendering
// (.txt) and the underlying series (.csv) into the output directory,
// and prints a paper-vs-measured summary line suitable for
// EXPERIMENTS.md.
//
// Usage:
//
//	paperfig [-out DIR] [-fig 1a|1b|1c|2|4|5a|5b|5c|6|writers|all] [-seed N] [-j N]
//	         [-faults scenario.json] [-progress] [-analytic on|off]
//	         [-prof PREFIX] [-version]
//
// -progress renders a live stderr meter (completed runs, rate, ETA)
// while the simulation pool drains. The meter observes only completion
// counts, so every artifact under -out stays byte-identical with or
// without it, at any -j.
//
// With -faults, every simulated run executes against the degraded
// machine — regenerating the figures under a labeled pathology shows
// which ensemble signatures each fault perturbs.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ensembleio"
	"ensembleio/internal/cliutil"
	"ensembleio/internal/report"
	"ensembleio/internal/runpool"
)

var (
	outDir   = flag.String("out", "out", "output directory")
	figSel   = flag.String("fig", "all", "figure to regenerate (1a 1b 1c 2 4 5a 5b 5c 6 writers all)")
	seed     = flag.Int64("seed", 1, "base run seed")
	jobs     = flag.Int("j", 0, "parallel simulation workers (0 = all cores; output is identical at any -j)")
	faults   = flag.String("faults", "", "inject the fault scenario from this JSON file into every run")
	progress = flag.Bool("progress", false, "render a live run-completion meter on stderr")
	analytic = cliutil.OnOff("analytic", true, "analytic fast path: on or off (off falls back to the pure event path; artifacts are byte-identical — the fastpath-ablation target diffs them)")
	prof     = flag.String("prof", "", "write CPU/heap profiles to PREFIX.{cpu,heap}.pprof")
	version  = flag.Bool("version", false, "print build version and exit")
)

// meter is the optional stderr progress reporter (nil when -progress
// is unset); prewarm and the writers sweep feed it run completions.
var meter runpool.Progress

// faultScenario is the -faults scenario, loaded once in main before
// any spec builds (nil when the flag is unset).
var faultScenario *ensembleio.Scenario

// runCache shares simulations between figures (1a/1b/1c use the same
// IOR run; 4 and 5 share the MADbench runs; the 6-series shares the
// GCRM ladder). It is filled by prewarm before any figure renders and
// only read afterwards, so figure generation itself stays sequential
// and byte-stable.
var runCache = map[string]*ensembleio.Run{}

// runSpec names one simulation a figure needs: a cache key plus a
// pure constructor (no cache access), so prewarm can execute specs on
// runpool workers and commit the results in submission order.
type runSpec struct {
	key   string
	build func() *ensembleio.Run
}

// machineFor constructs the named platform with the -analytic flag
// applied. Artifacts are byte-identical either way; the ablation
// target regenerates figures under both settings and diffs them.
func machineFor(name string) ensembleio.Platform {
	var m ensembleio.Platform
	switch name {
	case "franklin":
		m = ensembleio.Franklin()
	case "patched":
		m = ensembleio.FranklinPatched()
	case "jaguar":
		m = ensembleio.Jaguar()
	default:
		panic("unknown machine " + name)
	}
	m.AnalyticOff = !*analytic
	return m
}

func cachedRun(s runSpec) *ensembleio.Run {
	if r, ok := runCache[s.key]; ok {
		return r
	}
	r := s.build()
	runCache[s.key] = r
	return r
}

func iorSpec(k int, s int64) runSpec {
	return runSpec{fmt.Sprintf("ior-%d-%d", k, s), func() *ensembleio.Run {
		return ensembleio.RunIOR(ensembleio.IORConfig{
			Machine: machineFor("franklin"), Tasks: 1024, Reps: 5,
			TransferBytes: 512e6 / int64(k), Faults: faultScenario, Seed: s,
		})
	}}
}

func iorRun(k int, s int64) *ensembleio.Run { return cachedRun(iorSpec(k, s)) }

func madSpec(machine string) runSpec {
	return runSpec{"mad-" + machine, func() *ensembleio.Run {
		return ensembleio.RunMADbench(ensembleio.MADbenchConfig{Machine: machineFor(machine), Faults: faultScenario, Seed: *seed})
	}}
}

func madRun(machine string) *ensembleio.Run { return cachedRun(madSpec(machine)) }

func gcrmSpec(stage int) runSpec {
	names := []string{"baseline", "collective", "aligned", "metaagg"}
	return runSpec{"gcrm-" + names[stage], func() *ensembleio.Run {
		cfg := ensembleio.GCRMConfig{Machine: machineFor("franklin"), Faults: faultScenario, Seed: *seed}
		if stage >= 1 {
			cfg.Aggregators = 80
		}
		if stage >= 2 {
			cfg.Align = true
		}
		if stage >= 3 {
			cfg.AggregateMetadata = true
		}
		return ensembleio.RunGCRM(cfg)
	}}
}

func gcrmRun(stage int) *ensembleio.Run { return cachedRun(gcrmSpec(stage)) }

// specsFor lists the simulations one figure reads from the cache.
// (The writers sweep is not listed: IORWriterSweepJ parallelizes its
// own runs.)
func specsFor(id string) []runSpec {
	switch id {
	case "1a", "1b":
		return []runSpec{iorSpec(1, *seed)}
	case "5a":
		return []runSpec{madSpec("franklin")}
	case "1c":
		return []runSpec{iorSpec(1, *seed), iorSpec(1, *seed+1)}
	case "2":
		var specs []runSpec
		for _, k := range []int{1, 2, 4, 8} {
			for s := int64(0); s < 3; s++ {
				specs = append(specs, iorSpec(k, *seed+s))
			}
		}
		return specs
	case "4":
		return []runSpec{madSpec("franklin"), madSpec("jaguar")}
	case "5b":
		return []runSpec{madSpec("franklin"), madSpec("patched")}
	case "5c":
		return []runSpec{madSpec("franklin"), madSpec("patched"), madSpec("jaguar")}
	case "6":
		return []runSpec{gcrmSpec(0), gcrmSpec(1), gcrmSpec(2), gcrmSpec(3)}
	}
	return nil
}

// prewarm fans every simulation the selected figures need across the
// worker pool, then commits them to the cache in submission order.
// Every later cache hit is a pure read, so the rendered figures are
// byte-identical to a fully sequential regeneration.
func prewarm(ids []string) {
	var specs []runSpec
	seen := map[string]bool{}
	for _, id := range ids {
		for _, s := range specsFor(id) {
			if !seen[s.key] {
				seen[s.key] = true
				specs = append(specs, s)
			}
		}
	}
	runs := runpool.MapProgress(*jobs, specs, meter, func(_ int, s runSpec) *ensembleio.Run {
		return s.build()
	})
	for i, s := range specs {
		runCache[s.key] = runs[i]
	}
}

type figure struct {
	id   string
	desc string
	gen  func(txt, csv io.Writer) (summary string, err error)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperfig: ")
	flag.Parse()
	if *version {
		fmt.Println(cliutil.Version())
		return
	}
	stopProf, err := cliutil.StartProfiles(*prof)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()
	if *progress {
		meter = runpool.StderrProgress(os.Stderr, "paperfig")
	}

	if *faults != "" {
		s, err := ensembleio.LoadScenario(*faults)
		if err != nil {
			log.Fatal(err)
		}
		faultScenario = s
		fmt.Printf("injecting faults: %s\n", s)
	}

	figs := []figure{
		{"1a", "IOR trace diagram (5 synchronous write phases)", fig1a},
		{"1b", "IOR aggregate data rate vs time", fig1b},
		{"1c", "IOR write-time histogram: R, 2R, 4R modes; two file systems", fig1c},
		{"2", "transfer splitting k=1,2,4,8: rates and distribution narrowing", fig2},
		{"4", "MADbench on Franklin vs Jaguar: phases and read/write histograms", fig4},
		{"5a", "per-phase read completion CDFs, reads 4-8 deteriorate", fig5a},
		{"5b", "read histogram before vs after the Lustre patch", fig5b},
		{"5c", "trace and run time after the patch", fig5c},
		{"6", "GCRM baseline and three optimizations", fig6},
		{"writers", "writer-count saturation sweep (~80 writers saturate)", figWriters},
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	var selected []string
	for _, f := range figs {
		if *figSel == "all" || *figSel == f.id {
			selected = append(selected, f.id)
		}
	}
	prewarm(selected)
	ran := 0
	for _, f := range figs {
		if *figSel != "all" && *figSel != f.id {
			continue
		}
		ran++
		txtPath := filepath.Join(*outDir, "fig"+f.id+".txt")
		csvPath := filepath.Join(*outDir, "fig"+f.id+".csv")
		txt, err := os.Create(txtPath)
		if err != nil {
			log.Fatal(err)
		}
		csv, err := os.Create(csvPath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(txt, "Figure %s — %s\n\n", f.id, f.desc)
		summary, err := f.gen(txt, csv)
		// Close errors are write errors: a figure truncated by ENOSPC
		// must not be reported as regenerated.
		if cerr := txt.Close(); err == nil {
			err = cerr
		}
		if cerr := csv.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatalf("fig %s: %v", f.id, err)
		}
		fmt.Printf("fig %-7s %s\n         -> %s, %s\n", f.id, summary, txtPath, csvPath)
	}
	if ran == 0 {
		log.Fatalf("unknown figure %q", *figSel)
	}
}

func fig1a(txt, csv io.Writer) (string, error) {
	run := iorRun(1, *seed)
	fmt.Fprintln(txt, "W=write .=idle; rows are rank bands, columns are time")
	fmt.Fprint(txt, ensembleio.TraceDiagram(run, 110, 32))
	rows := [][]string{{"phase", "start_s", "end_s"}}
	for _, ph := range ensembleio.Phases(run) {
		rows = append(rows, []string{ph.Name, report.F(float64(ph.StartT), 2), report.F(float64(ph.EndT), 2)})
	}
	if err := report.CSV(csv, rows); err != nil {
		return "", err
	}
	return fmt.Sprintf("run %.0fs, 5 banded write phases (paper: banded phases)", float64(run.Wall)), nil
}

func fig1b(txt, csv io.Writer) (string, error) {
	run := iorRun(1, *seed)
	s := ensembleio.RateSeries(run, ensembleio.OpWrite, 1.0)
	report.Series(txt, "aggregate write rate (MB/s) vs time", float64(s.T0), float64(s.Dt), s.Values, 100)
	rows := [][]string{{"t_s", "MBps"}}
	for i, v := range s.Values {
		rows = append(rows, []string{report.F(float64(s.T0)+float64(i)*float64(s.Dt), 1), report.F(v, 0)})
	}
	if err := report.CSV(csv, rows); err != nil {
		return "", err
	}
	return fmt.Sprintf("peak %.0f MB/s burst then ~16 GB/s plateau and tail (paper: ~60 GB/s burst, plateaus)", s.Peak()), nil
}

func fig1c(txt, csv io.Writer) (string, error) {
	// Two runs of the same experiment: "scratch" and "scratch2".
	runs := []*ensembleio.Run{iorRun(1, *seed), iorRun(1, *seed+1)}
	names := []string{"scratch", "scratch2"}
	var hists []*ensembleio.Histogram
	var dsets []*ensembleio.Dataset
	max := 0.0
	for _, r := range runs {
		d := ensembleio.Durations(r, ensembleio.OpWrite)
		dsets = append(dsets, d)
		if d.Max() > max {
			max = d.Max()
		}
	}
	for i, d := range dsets {
		h := ensembleio.NewHistogram(ensembleio.LinearBins(0, max*1.01, 60))
		h.AddAll(d)
		hists = append(hists, h)
		report.Histogram(txt, names[i]+": write completion times (s)", h)
		fmt.Fprintln(txt)
	}
	modes := hists[0].Modes(ensembleio.ModeOpts{SmoothRadius: 2, MinProminence: 0.1, MinMass: 0.04})
	report.Table(txt, report.ModeTable(modes, "s"))
	ks, _ := ensembleio.Reproducibility(dsets[0], dsets[1])
	fmt.Fprintf(txt, "\nKS distance between the two runs: %.3f (reproducible ensembles)\n", ks)

	rows := [][]string{{"bin_lo_s", "bin_hi_s", "count_scratch", "count_scratch2"}}
	for i := 0; i < hists[0].Bins.N(); i++ {
		rows = append(rows, []string{
			report.F(hists[0].Bins.Edges[i], 2), report.F(hists[0].Bins.Edges[i+1], 2),
			report.F(hists[0].Counts()[i], 0), report.F(hists[1].Counts()[i], 0),
		})
	}
	if err := report.CSV(csv, rows); err != nil {
		return "", err
	}
	var centers []string
	for _, m := range modes {
		centers = append(centers, report.F(m.Center, 1)+"s")
	}
	sort.Strings(centers)
	return fmt.Sprintf("modes at %s, KS=%.3f (paper: peaks at R~31s, 2R, 4R; nearly identical across file systems)",
		strings.Join(centers, " "), ks), nil
}

func fig2(txt, csv io.Writer) (string, error) {
	rows := [][]string{{"k", "transfer_MB", "rate_MBps", "task_total_cv", "predicted_slowest_s"}}
	single := ensembleio.Durations(iorRun(1, *seed), ensembleio.OpWrite)
	var r1, r8 float64
	for _, k := range []int{1, 2, 4, 8} {
		sum := 0.0
		const seeds = 3
		for s := int64(0); s < seeds; s++ {
			sum += iorRun(k, *seed+s).AggregateMBps()
		}
		rate := sum / seeds
		if k == 1 {
			r1 = rate
		}
		if k == 8 {
			r8 = rate
		}
		// Per-task totals for the CV column.
		run := iorRun(k, *seed)
		sums := map[[2]int]float64{}
		counts := map[int]int{}
		for _, e := range run.Collector.Events {
			if e.Op != ensembleio.OpWrite {
				continue
			}
			rep := counts[e.Rank] / k
			counts[e.Rank]++
			sums[[2]int{e.Rank, rep}] += float64(e.Dur)
		}
		// Fold per-task totals in sorted (rank, rep) order so the
		// dataset — and every figure derived from it — is
		// byte-reproducible across runs.
		taskKeys := make([][2]int, 0, len(sums))
		for tk := range sums {
			taskKeys = append(taskKeys, tk)
		}
		sort.Slice(taskKeys, func(i, j int) bool {
			if taskKeys[i][0] != taskKeys[j][0] {
				return taskKeys[i][0] < taskKeys[j][0]
			}
			return taskKeys[i][1] < taskKeys[j][1]
		})
		d := ensembleio.NewDataset(nil)
		for _, tk := range taskKeys {
			d.Add(sums[tk])
		}
		h := ensembleio.NewHistogram(ensembleio.LinearBins(0, d.Max()*1.01, 60))
		h.AddAll(d)
		report.Histogram(txt, fmt.Sprintf("k=%d: per-task 512MB totals (s)", k), h)
		fmt.Fprintln(txt)
		rows = append(rows, []string{
			fmt.Sprint(k), fmt.Sprint(512 / k), report.F(rate, 0),
			report.F(d.CV(), 3), report.F(ensembleio.SplitPrediction(single, k, 1024), 1),
		})
	}
	report.Table(txt, rows)
	if err := report.CSV(csv, rows); err != nil {
		return "", err
	}
	return fmt.Sprintf("k=1: %.0f -> k=8: %.0f MB/s, +%.0f%% (paper: 11610 -> 13486, +16%%)",
		r1, r8, (r8/r1-1)*100), nil
}

func fig4(txt, csv io.Writer) (string, error) {
	rows := [][]string{{"platform", "wall_s", "read_med_s", "read_p95_s", "read_max_s", "write_med_s"}}
	for _, name := range []string{"franklin", "jaguar"} {
		run := madRun(name)
		reads := ensembleio.Durations(run, ensembleio.OpRead)
		writes := ensembleio.Durations(run, ensembleio.OpWrite)

		fmt.Fprintf(txt, "== %s: run %.0fs ==\n", name, float64(run.Wall))
		fmt.Fprint(txt, ensembleio.TraceDiagram(run, 110, 16))
		fmt.Fprintln(txt)
		hr := ensembleio.NewHistogram(ensembleio.LogBins(0.5, 1000, 4))
		hr.AddAll(reads)
		report.Histogram(txt, name+" reads (s), log bins", hr)
		fmt.Fprintln(txt)
		hw := ensembleio.NewHistogram(ensembleio.LogBins(0.5, 1000, 4))
		hw.AddAll(writes)
		report.Histogram(txt, name+" writes (s), log bins", hw)
		fmt.Fprintln(txt)

		rows = append(rows, []string{
			name, report.F(float64(run.Wall), 0),
			report.F(reads.Quantile(0.5), 1), report.F(reads.Quantile(0.95), 1),
			report.F(reads.Max(), 0), report.F(writes.Quantile(0.5), 1),
		})
	}
	if err := report.CSV(csv, rows); err != nil {
		return "", err
	}
	f, j := madRun("franklin"), madRun("jaguar")
	return fmt.Sprintf("franklin %.0fs vs jaguar %.0fs; franklin slowest read %.0fs (paper: 2200s vs 275s; reads 30-500s)",
		float64(f.Wall), float64(j.Wall), ensembleio.Durations(f, ensembleio.OpRead).Max()), nil
}

func fig5a(txt, csv io.Writer) (string, error) {
	run := madRun("franklin")
	rows := [][]string{{"t_s"}}
	var curves [][]float64
	var names []string
	for m := 3; m < 8; m++ {
		names = append(names, fmt.Sprintf("read%d", m+1))
		rows[0] = append(rows[0], names[len(names)-1]+"_frac_complete")
	}
	// Sample each phase's read-completion CDF on a common grid.
	const tMax, step = 600.0, 5.0
	grid := int(tMax/step) + 1
	for m := 3; m < 8; m++ {
		var durs []float64
		for _, ph := range ensembleio.Phases(run) {
			if ph.Name == fmt.Sprintf("W-rw-%d", m) {
				for _, e := range ph.Events {
					if e.Op == ensembleio.OpRead {
						durs = append(durs, float64(e.Dur))
					}
				}
			}
		}
		d := ensembleio.NewDataset(durs)
		ecdf := d.ECDF()
		curve := make([]float64, grid)
		for i := 0; i < grid; i++ {
			curve[i] = ecdf.Eval(float64(i) * step)
		}
		curves = append(curves, curve)
	}
	for i := 0; i < grid; i++ {
		row := []string{report.F(float64(i)*step, 0)}
		for _, c := range curves {
			row = append(row, report.F(c[i], 3))
		}
		rows = append(rows, row)
	}
	if err := report.CSV(csv, rows); err != nil {
		return "", err
	}
	fmt.Fprintln(txt, "fraction of reads complete vs time, per W phase (reads 4-8):")
	for i, c := range curves {
		t50 := "-"
		for j, v := range c {
			if v >= 0.5 {
				t50 = report.F(float64(j)*step, 0)
				break
			}
		}
		t95 := "-"
		for j, v := range c {
			if v >= 0.95 {
				t95 = report.F(float64(j)*step, 0)
				break
			}
		}
		fmt.Fprintf(txt, "  %s: 50%% complete by %ss, 95%% by %ss\n", names[i], t50, t95)
	}
	return "reads 4-8 CDFs shift right progressively (paper: progressive deterioration)", nil
}

func fig5b(txt, csv io.Writer) (string, error) {
	before := ensembleio.Durations(madRun("franklin"), ensembleio.OpRead)
	after := ensembleio.Durations(madRun("patched"), ensembleio.OpRead)
	hb := ensembleio.NewHistogram(ensembleio.LogBins(0.5, 1000, 4))
	hb.AddAll(before)
	ha := ensembleio.NewHistogram(ensembleio.LogBins(0.5, 1000, 4))
	ha.AddAll(after)
	report.Histogram(txt, "reads before patch (s), log bins", hb)
	fmt.Fprintln(txt)
	report.Histogram(txt, "reads after patch (s), log bins", ha)
	rows := [][]string{{"bin_lo_s", "bin_hi_s", "count_before", "count_after"}}
	for i := 0; i < hb.Bins.N(); i++ {
		rows = append(rows, []string{
			report.F(hb.Bins.Edges[i], 3), report.F(hb.Bins.Edges[i+1], 3),
			report.F(hb.Counts()[i], 0), report.F(ha.Counts()[i], 0),
		})
	}
	if err := report.CSV(csv, rows); err != nil {
		return "", err
	}
	return fmt.Sprintf("slowest read %.0fs -> %.0fs after patch (paper: 500s tail removed)", before.Max(), after.Max()), nil
}

func fig5c(txt, csv io.Writer) (string, error) {
	bug, patched := madRun("franklin"), madRun("patched")
	fmt.Fprintf(txt, "patched Franklin run: %.0fs (before: %.0fs)\n\n", float64(patched.Wall), float64(bug.Wall))
	fmt.Fprint(txt, ensembleio.TraceDiagram(patched, 110, 16))
	rows := [][]string{
		{"configuration", "wall_s"},
		{"franklin-bug", report.F(float64(bug.Wall), 0)},
		{"franklin-patched", report.F(float64(patched.Wall), 0)},
		{"jaguar", report.F(float64(madRun("jaguar").Wall), 0)},
	}
	if err := report.CSV(csv, rows); err != nil {
		return "", err
	}
	return fmt.Sprintf("%.0fs -> %.0fs, %.1fx (paper: 2200s -> 520s, 4.2x)",
		float64(bug.Wall), float64(patched.Wall), float64(bug.Wall/patched.Wall)), nil
}

func fig6(txt, csv io.Writer) (string, error) {
	rows := [][]string{{"configuration", "wall_s", "sustained_MBps", "data_med_MBps", "speedup_vs_baseline"}}
	base := float64(gcrmRun(0).Wall)
	for stage := 0; stage < 4; stage++ {
		run := gcrmRun(stage)
		data := ensembleio.DataWrites(run)
		fmt.Fprintf(txt, "== %s: %.0fs, sustained %.0f MB/s ==\n", run.Name, float64(run.Wall), run.AggregateMBps())
		h := ensembleio.NewHistogram(ensembleio.LogBins(1e-3, 1e3, 4))
		h.AddAll(data)
		report.Histogram(txt, "data writes, sec/MB (left = fast)", h)
		s := ensembleio.RateSeries(run, ensembleio.OpWrite, 1.0)
		report.Series(txt, "aggregate write rate (MB/s)", float64(s.T0), float64(s.Dt), s.Values, 100)
		fmt.Fprintln(txt)
		rows = append(rows, []string{
			run.Name, report.F(float64(run.Wall), 0), report.F(run.AggregateMBps(), 0),
			report.F(1/data.Quantile(0.5), 2), report.F(base/float64(run.Wall), 2),
		})
	}
	report.Table(txt, rows)
	if err := report.CSV(csv, rows); err != nil {
		return "", err
	}
	return fmt.Sprintf("%.0fs -> %.0fs -> %.0fs -> %.0fs (paper: 310 -> 190 -> 150 -> 75)",
		float64(gcrmRun(0).Wall), float64(gcrmRun(1).Wall), float64(gcrmRun(2).Wall), float64(gcrmRun(3).Wall)), nil
}

func figWriters(txt, csv io.Writer) (string, error) {
	// Fixed total volume (2 TB, large enough that page-cache absorption
	// is negligible at every writer count) in 512 MB transfers, varying
	// writer count, walls averaged over 3 seeds: a writer count
	// "saturates" when adding more writers no longer shortens the job.
	counts := []int{16, 32, 48, 80, 160, 320, 1024}
	pts := ensembleio.IORWriterSweepProgress(machineFor("franklin"), counts, 4096, 512e6,
		[]int64{*seed, *seed + 1, *seed + 2}, *jobs, meter)
	best := pts[len(pts)-1].WallSec
	for _, p := range pts {
		if p.WallSec < best {
			best = p.WallSec
		}
	}
	rows := [][]string{{"writers", "wall_s", "slowdown_vs_best"}}
	for _, p := range pts {
		rows = append(rows, []string{fmt.Sprint(p.Writers), report.F(p.WallSec, 0), report.F(p.WallSec/best, 2)})
	}
	report.Table(txt, rows)
	if err := report.CSV(csv, rows); err != nil {
		return "", err
	}
	sat, _ := ensembleio.SaturationPoint(pts, 1.5)
	return fmt.Sprintf("saturation (within 1.5x of best) from %d writers (paper: ~80 tasks saturate)", sat), nil
}
