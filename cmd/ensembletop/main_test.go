package main

import (
	"strings"
	"testing"

	"ensembleio/internal/telemetry"
)

func TestCacheEffectivenessLine(t *testing.T) {
	snap := &telemetry.Snapshot{Counters: []telemetry.CounterSnap{
		{Name: "cascache.bytes_computed", Value: 1024},
		{Name: "cascache.bytes_served", Value: 3 << 20},
		{Name: "cascache.dup_hits", Value: 2},
		{Name: "cascache.hits", Value: 5},
		{Name: "cascache.misses", Value: 3},
		{Name: "cascache.scenarios", Value: 10},
		{Name: "cascache.unique", Value: 8},
	}}
	line, ok := cacheEffectivenessLine(snap)
	if !ok {
		t.Fatal("cache counter family not recognized")
	}
	for _, want := range []string{"served 7 of 10", "70.0%", "5 hit(s)", "2 dup(s)", "3 miss(es)", "3.0 MB served", "1.0 KB computed"} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}

	// Snapshots without the family must print nothing.
	if _, ok := cacheEffectivenessLine(&telemetry.Snapshot{Counters: []telemetry.CounterSnap{
		{Name: "sim.virtual_seconds", Value: 100},
	}}); ok {
		t.Fatal("cache line emitted for a snapshot without cascache counters")
	}
}

// The per-OST table guard: tenant slices and the cascache family must
// never fold into the global per-OST rows.
func TestSkipOSTFamily(t *testing.T) {
	skip := []string{
		"tenant.a.ost001.mb",
		"tenant.a.lustre.ost001.mb",
		"cascache.hits",
		"cascache.ost001.bytes_served", // hypothetical per-OST cache metric: still campaign-level
	}
	keep := []string{
		"lustre.ost001.mb",
		"ost001.mb", // -tenant filter output
		"sim.virtual_seconds",
	}
	for _, name := range skip {
		if !skipOSTFamily(name) {
			t.Errorf("skipOSTFamily(%q) = false, want true", name)
		}
	}
	for _, name := range keep {
		if skipOSTFamily(name) {
			t.Errorf("skipOSTFamily(%q) = true, want false", name)
		}
	}
}
