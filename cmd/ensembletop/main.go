// Command ensembletop summarizes telemetry snapshots into hot-spot
// tables — the "where did the virtual time go" view over one run or an
// aggregate of many. Given snapshot files written with -telemetry, it
// prints the top counters, the gauges with their high-water marks,
// histogram summaries, and (when the run carried per-OST counters) an
// OST table sorted by injected stall time so a degraded server tops
// the list. With -spans it also breaks span wall time down by
// category.
//
// Usage:
//
//	ensembletop [-top N] [-spans run.spans.jsonl] [-tenant NAME]
//	            run.telemetry.json [more.json ...]
//
// Multiple snapshots aggregate: counters and histogram summaries sum,
// gauges keep their maximum — the natural reading for an ensemble of
// runs of the same experiment.
//
// Multi-tenant session snapshots (ensembleduel) carry a per-tenant
// counter family; each tenant then gets its own fast-forwarded-
// fraction line, and -tenant NAME restricts every table (and -spans)
// to that tenant's slice of the session.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"ensembleio/internal/cliutil"
	"ensembleio/internal/ensemble/campaign"
	"ensembleio/internal/report"
	"ensembleio/internal/telemetry"
	"ensembleio/internal/tracefmt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ensembletop: ")
	var (
		top     = flag.Int("top", 10, "rows per table")
		spans   = flag.String("spans", "", "also summarize this span JSONL file by category")
		tenant  = flag.String("tenant", "", "filter a multi-tenant session to one tenant (tenant.NAME.* counters, NAME/ spans)")
		prof    = flag.String("prof", "", "write CPU/heap profiles to PREFIX.{cpu,heap}.pprof")
		version = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(cliutil.Version())
		return
	}
	stopProf, err := cliutil.StartProfiles(*prof)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()
	if flag.NArg() == 0 && *spans == "" {
		log.Fatal("usage: ensembletop [-top N] [-spans FILE] snapshot.json ...")
	}

	agg := aggregate(flag.Args())
	if agg != nil {
		printFastForward(agg)
		printTenantFastForward(agg, *tenant)
		printCacheEffectiveness(agg)
		if *tenant != "" {
			agg = filterTenant(agg, *tenant)
		}
		printCounters(agg, *top)
		printGauges(agg)
		printHists(agg, *top)
		printOSTs(agg, *top)
	}
	if *spans != "" {
		printSpans(*spans, *top, *tenant)
	}
}

// aggregate folds every snapshot file into one: counters sum, gauges
// take the max, histogram summaries merge (bins are dropped — the
// per-decade layout is only meaningful within one run). Returns nil
// when no files were given.
func aggregate(paths []string) *telemetry.Snapshot {
	if len(paths) == 0 {
		return nil
	}
	counters := map[string]float64{}
	gauges := map[string]telemetry.GaugeSnap{}
	hists := map[string]telemetry.HistSnap{}
	for _, path := range paths {
		snap := loadSnapshot(path)
		for _, c := range snap.Counters {
			counters[c.Name] += c.Value
		}
		for _, g := range snap.Gauges {
			cur, ok := gauges[g.Name]
			if !ok {
				gauges[g.Name] = g
				continue
			}
			if g.Value > cur.Value {
				cur.Value = g.Value
			}
			if g.Max > cur.Max {
				cur.Max = g.Max
			}
			gauges[g.Name] = cur
		}
		for _, h := range snap.Hists {
			cur, ok := hists[h.Name]
			if !ok {
				h.Bins = nil
				hists[h.Name] = h
				continue
			}
			cur.Count += h.Count
			cur.Under += h.Under
			cur.Sum += h.Sum
			if h.Min < cur.Min {
				cur.Min = h.Min
			}
			if h.Max > cur.Max {
				cur.Max = h.Max
			}
			hists[h.Name] = cur
		}
	}
	out := &telemetry.Snapshot{}
	for _, name := range sortedKeys(counters) {
		out.Counters = append(out.Counters, telemetry.CounterSnap{Name: name, Value: counters[name]})
	}
	for _, name := range sortedKeys(gauges) {
		out.Gauges = append(out.Gauges, gauges[name])
	}
	for _, name := range sortedKeys(hists) {
		out.Hists = append(out.Hists, hists[name])
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func loadSnapshot(path string) *telemetry.Snapshot {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close() //lint:allow(errclose) file opened read-only
	snap, err := tracefmt.ReadMetrics(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return snap
}

// printFastForward reports how much of the aggregate's virtual time
// the fabric crossed in single analytic jumps — the headline for the
// fast path. Runs predating the sim.virtual_seconds counter (or with
// no fabric activity) print nothing.
func printFastForward(s *telemetry.Snapshot) {
	var total, ff, jumps float64
	for _, c := range s.Counters {
		switch c.Name {
		case "sim.virtual_seconds":
			total = c.Value
		case "sim.ff_seconds":
			ff = c.Value
		case "sim.ff_jumps":
			jumps = c.Value
		}
	}
	if total <= 0 {
		return
	}
	fmt.Printf("fast-forwarded %s of %s virtual seconds (%.1f%%) in %.0f jumps\n\n",
		report.F(ff, 1), report.F(total, 1), 100*ff/total, jumps)
}

// printTenantFastForward prints one fast-forward line per tenant of a
// multi-tenant session snapshot: the virtual seconds of the tenant's
// own window the fabric crossed in analytic jumps. With name set, only
// that tenant's line prints. Snapshots without tenant counters print
// nothing.
func printTenantFastForward(s *telemetry.Snapshot, name string) {
	type ffStat struct{ total, ff, jumps float64 }
	stats := map[string]*ffStat{}
	var order []string
	for _, c := range s.Counters {
		rest, ok := strings.CutPrefix(c.Name, "tenant.")
		if !ok {
			continue
		}
		tn, metric, ok := strings.Cut(rest, ".")
		if !ok || (name != "" && tn != name) {
			continue
		}
		st, ok := stats[tn]
		if !ok {
			st = &ffStat{}
			stats[tn] = st
			order = append(order, tn)
		}
		switch metric {
		case "virtual_seconds":
			st.total = c.Value
		case "ff_seconds":
			st.ff = c.Value
		case "ff_jumps":
			st.jumps = c.Value
		}
	}
	printed := false
	for _, tn := range order {
		st := stats[tn]
		if st.total <= 0 {
			continue
		}
		fmt.Printf("tenant %s: fast-forwarded %s of %s virtual seconds (%.1f%%) in %.0f jumps\n",
			tn, report.F(st.ff, 1), report.F(st.total, 1), 100*st.ff/st.total, st.jumps)
		printed = true
	}
	if printed {
		fmt.Println()
	}
}

// printCacheEffectiveness prints the one-line cache summary when the
// snapshot carries the cascache.* counter family (written by
// ensemblecampaign -telemetry; aggregates across files like any other
// counters). Snapshots without the family print nothing.
func printCacheEffectiveness(s *telemetry.Snapshot) {
	if line, ok := cacheEffectivenessLine(s); ok {
		fmt.Println(line)
		fmt.Println()
	}
}

func cacheEffectivenessLine(s *telemetry.Snapshot) (string, bool) {
	get := func(metric string) float64 { return s.Counter(campaign.CounterPrefix + metric) }
	scenarios := get("scenarios")
	if scenarios <= 0 {
		return "", false
	}
	hits, dups, misses := get("hits"), get("dup_hits"), get("misses")
	served := hits + dups
	return fmt.Sprintf("cache: served %.0f of %.0f scenario(s) (%.1f%%) — %.0f hit(s), %.0f dup(s), %.0f miss(es); %s served, %s computed",
		served, scenarios, 100*served/scenarios, hits, dups, misses,
		fmtBytes(get("bytes_served")), fmtBytes(get("bytes_computed"))), true
}

func fmtBytes(n float64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", n/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", n/(1<<10))
	}
	return fmt.Sprintf("%.0f B", n)
}

// filterTenant restricts a session snapshot to one tenant's counters,
// stripping the "tenant.NAME." prefix so the remaining tables read
// like a solo run's (per-OST counters become "ostNNN.*").
func filterTenant(s *telemetry.Snapshot, name string) *telemetry.Snapshot {
	prefix := "tenant." + name + "."
	out := &telemetry.Snapshot{}
	for _, c := range s.Counters {
		if rest, ok := strings.CutPrefix(c.Name, prefix); ok {
			c.Name = rest
			out.Counters = append(out.Counters, c)
		}
	}
	for _, g := range s.Gauges {
		if rest, ok := strings.CutPrefix(g.Name, prefix); ok {
			g.Name = rest
			out.Gauges = append(out.Gauges, g)
		}
	}
	for _, h := range s.Hists {
		if rest, ok := strings.CutPrefix(h.Name, prefix); ok {
			h.Name = rest
			out.Hists = append(out.Hists, h)
		}
	}
	return out
}

func printCounters(s *telemetry.Snapshot, top int) {
	// Per-OST counters get their own table; keep this one readable.
	var cs []telemetry.CounterSnap
	for _, c := range s.Counters {
		if ostIndex(c.Name) < 0 {
			cs = append(cs, c)
		}
	}
	if len(cs) == 0 {
		return
	}
	sort.SliceStable(cs, func(i, j int) bool { return cs[i].Value > cs[j].Value })
	if len(cs) > top {
		cs = cs[:top]
	}
	rows := [][]string{{"counter", "value"}}
	for _, c := range cs {
		rows = append(rows, []string{c.Name, report.F(c.Value, 2)})
	}
	fmt.Println("top counters")
	report.Table(os.Stdout, rows)
	fmt.Println()
}

func printGauges(s *telemetry.Snapshot) {
	if len(s.Gauges) == 0 {
		return
	}
	rows := [][]string{{"gauge", "final", "high-water"}}
	for _, g := range s.Gauges {
		rows = append(rows, []string{g.Name, report.F(g.Value, 2), report.F(g.Max, 2)})
	}
	fmt.Println("gauges")
	report.Table(os.Stdout, rows)
	fmt.Println()
}

func printHists(s *telemetry.Snapshot, top int) {
	if len(s.Hists) == 0 {
		return
	}
	hs := append([]telemetry.HistSnap(nil), s.Hists...)
	sort.SliceStable(hs, func(i, j int) bool { return hs[i].Count > hs[j].Count })
	if len(hs) > top {
		hs = hs[:top]
	}
	rows := [][]string{{"histogram", "n", "mean", "min", "max"}}
	for _, h := range hs {
		rows = append(rows, []string{
			h.Name, fmt.Sprint(h.Count),
			report.F(h.Mean(), 4), report.F(h.Min, 4), report.F(h.Max, 4),
		})
	}
	fmt.Println("histograms")
	report.Table(os.Stdout, rows)
	fmt.Println()
}

// ostStat collects the lustre.ostNNN.* counter family for one OST.
type ostStat struct {
	ost                     int
	streams, mb, sec, stall float64
}

// ostIndex parses the OST number out of a per-OST counter name —
// "lustre.ostNNN.<metric>", a tenant slice "tenant.X.ostNNN.<metric>",
// or the prefix-stripped "ostNNN.<metric>" a -tenant filter leaves —
// and returns -1 when the name is not per-OST.
func ostIndex(name string) int {
	rest, ok := strings.CutPrefix(name, "ost")
	if !ok {
		if i := strings.Index(name, ".ost"); i >= 0 {
			rest, ok = name[i+len(".ost"):], true
		}
	}
	if !ok {
		return -1
	}
	num, _, ok := strings.Cut(rest, ".")
	if !ok {
		return -1
	}
	n, err := strconv.Atoi(num)
	if err != nil {
		return -1
	}
	return n
}

// skipOSTFamily reports counter families the per-OST table must not
// fold in: tenant per-OST slices would double-count against the
// global family (the -tenant filter is the view onto those), and the
// cascache.* cache counters are campaign-level, never per-OST traffic.
func skipOSTFamily(name string) bool {
	return strings.HasPrefix(name, "tenant.") ||
		strings.HasPrefix(name, campaign.CounterPrefix)
}

// printOSTs renders the per-OST hot-spot table: the servers carrying
// the most traffic and — the diagnostic payoff — any with injected
// stall time, sorted so stalled then busiest OSTs lead.
func printOSTs(s *telemetry.Snapshot, top int) {
	stats := map[int]*ostStat{}
	for _, c := range s.Counters {
		if skipOSTFamily(c.Name) {
			continue
		}
		i := ostIndex(c.Name)
		if i < 0 {
			continue
		}
		st, ok := stats[i]
		if !ok {
			st = &ostStat{ost: i}
			stats[i] = st
		}
		switch c.Name[strings.LastIndexByte(c.Name, '.')+1:] {
		case "streams":
			st.streams = c.Value
		case "mb":
			st.mb = c.Value
		case "seconds":
			st.sec = c.Value
		case "stall_s":
			st.stall = c.Value
		}
	}
	if len(stats) == 0 {
		return
	}
	list := make([]*ostStat, 0, len(stats))
	for _, st := range stats {
		list = append(list, st)
	}
	sort.SliceStable(list, func(i, j int) bool {
		if list[i].stall != list[j].stall {
			return list[i].stall > list[j].stall
		}
		if list[i].sec != list[j].sec {
			return list[i].sec > list[j].sec
		}
		return list[i].ost < list[j].ost
	})
	if len(list) > top {
		list = list[:top]
	}
	rows := [][]string{{"ost", "streams", "MB", "busy_s", "stall_s", "MB/s"}}
	for _, st := range list {
		rate := 0.0
		if st.sec > 0 {
			rate = st.mb / st.sec
		}
		rows = append(rows, []string{
			fmt.Sprintf("ost%03d", st.ost),
			report.F(st.streams, 0), report.F(st.mb, 0),
			report.F(st.sec, 1), report.F(st.stall, 1), report.F(rate, 0),
		})
	}
	fmt.Println("per-OST hot spots (stalled first)")
	report.Table(os.Stdout, rows)
	fmt.Println()
}

// printSpans breaks a span file down by category: total virtual time,
// span count, and the longest single span with its name. With tenant
// set, only that tenant's spans count — its window span (cat
// "tenant") and the "NAME/"-prefixed phase and I/O spans a session
// fold emits.
func printSpans(path string, top int, tenant string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close() //lint:allow(errclose) file opened read-only
	spans, err := tracefmt.ReadSpans(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	if tenant != "" {
		kept := spans[:0]
		for _, sp := range spans {
			if sp.Cat == "tenant" && sp.Name == tenant ||
				strings.HasPrefix(sp.Name, tenant+"/") {
				kept = append(kept, sp)
			}
		}
		spans = kept
	}
	type catStat struct {
		cat          string
		n            int
		total        float64
		longest      float64
		longestLabel string
	}
	cats := map[string]*catStat{}
	for _, sp := range spans {
		c, ok := cats[sp.Cat]
		if !ok {
			c = &catStat{cat: sp.Cat}
			cats[sp.Cat] = c
		}
		d := sp.End - sp.Start
		c.n++
		c.total += d
		if d > c.longest {
			c.longest = d
			c.longestLabel = sp.Name
		}
	}
	list := make([]*catStat, 0, len(cats))
	for _, c := range cats {
		list = append(list, c)
	}
	sort.SliceStable(list, func(i, j int) bool {
		if list[i].total != list[j].total {
			return list[i].total > list[j].total
		}
		return list[i].cat < list[j].cat
	})
	if len(list) > top {
		list = list[:top]
	}
	rows := [][]string{{"category", "spans", "total_s", "longest_s", "longest span"}}
	for _, c := range list {
		rows = append(rows, []string{
			c.cat, fmt.Sprint(c.n),
			report.F(c.total, 2), report.F(c.longest, 2), c.longestLabel,
		})
	}
	fmt.Printf("span time by category (%d spans in %s)\n", len(spans), path)
	report.Table(os.Stdout, rows)
}
