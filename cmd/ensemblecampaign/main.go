// Command ensemblecampaign runs a batch campaign: a grid/list of
// workload scenarios, deduplicated against the content-addressed run
// cache (internal/cascache) so each distinct scenario is computed at
// most once — run once, serve millions.
//
// Usage:
//
//	ensemblecampaign -campaign FILE [-machine franklin|franklin-patched|jaguar]
//	    [-j N] [-cache DIR] [-cache-verify] [-out DIR]
//	    [-telemetry FILE] [-progress] [-prof PREFIX] [-version]
//
// The campaign file is JSON:
//
//	{
//	  "name": "readahead-sweep",
//	  "machine": "franklin",
//	  "seeds": [1, 2, 3],
//	  "entries": [
//	    {"gen": 7},
//	    {"spec": "workloads/ior-shared.json", "seeds": [5]},
//	    {"spec": "workloads/ior-shared.json", "machine": "jaguar",
//	     "faults": "flaky-ost.json"}
//	  ]
//	}
//
// Each entry names a workload — a spec file path (relative to the
// campaign file) or a generator seed ("gen") — and expands into one
// scenario per seed (the entry's "seeds", else the campaign's, else
// [1]); "machine" and "faults" likewise default from the campaign
// level. Duplicate scenarios are served from their first occurrence,
// cached scenarios from the store; only true misses are scheduled on
// the run pool (-j workers; results are byte-identical at any value).
//
// -out writes each scenario's artifact set as NAME-kXXXXXXXX-seedS.*
// (the scenario-key prefix makes names collision-free by
// construction). -telemetry writes the cache-effectiveness counter
// family (cascache.*) as a standard telemetry snapshot — feed it to
// ensembletop. -cache-verify recomputes every hit and fails on any
// byte difference.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ensembleio"
	"ensembleio/internal/cliutil"
)

// campaignFile is the on-disk campaign grid.
type campaignFile struct {
	Name    string          `json:"name"`
	Machine string          `json:"machine,omitempty"`
	Faults  string          `json:"faults,omitempty"`
	Seeds   []int64         `json:"seeds,omitempty"`
	Entries []campaignEntry `json:"entries"`
}

type campaignEntry struct {
	Name    string  `json:"name,omitempty"`
	Spec    string  `json:"spec,omitempty"`
	Gen     *int64  `json:"gen,omitempty"`
	Machine string  `json:"machine,omitempty"`
	Faults  string  `json:"faults,omitempty"`
	Seeds   []int64 `json:"seeds,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ensemblecampaign: ")
	var (
		campPath = flag.String("campaign", "", "campaign grid (JSON); see the package comment for the format")
		machine  = flag.String("machine", "franklin", "default platform profile: franklin, franklin-patched, jaguar")
		workers  = flag.Int("j", 0, "max parallel runs (0 = all cores); results are identical at any value")
		outDir   = flag.String("out", "", "write every scenario's artifact set into this directory")
		telOut   = flag.String("telemetry", "", "write the cache-effectiveness counters (telemetry snapshot JSON) to this file")
		progress = flag.Bool("progress", false, "render a live completion meter on stderr")
		profOut  = flag.String("prof", "", "write CPU/heap profiles to PREFIX.{cpu,heap}.pprof")
		version  = flag.Bool("version", false, "print build version and exit")
	)
	cacheDir, cacheVerify := cliutil.CacheFlags()
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected argument %q (all inputs are flags)", flag.Arg(0))
	}
	if *version {
		fmt.Println(cliutil.Version())
		return
	}
	if *campPath == "" {
		log.Fatal("-campaign FILE is required")
	}
	if *cacheVerify && *cacheDir == "" {
		log.Fatal("-cache-verify needs -cache DIR")
	}

	stopProf, err := cliutil.StartProfiles(*profOut)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()

	camp, err := loadCampaign(*campPath)
	if err != nil {
		log.Fatal(err)
	}
	entries, err := expand(camp, filepath.Dir(*campPath), *machine)
	if err != nil {
		log.Fatal(err)
	}
	if len(entries) == 0 {
		log.Fatal("campaign has no entries")
	}

	var store *ensembleio.CacheStore
	if *cacheDir != "" {
		if store, err = ensembleio.OpenCache(*cacheDir); err != nil {
			log.Fatal(err)
		}
	}
	var meter ensembleio.Progress
	if *progress {
		meter = ensembleio.StderrProgress(os.Stderr, "campaign")
	}
	results, stats, err := ensembleio.RunCampaign(entries, ensembleio.CampaignOptions{
		Workers:  *workers,
		Store:    store,
		Verify:   *cacheVerify,
		Progress: meter,
	})
	if err != nil {
		log.Fatal(err)
	}

	name := camp.Name
	if name == "" {
		name = filepath.Base(*campPath)
	}
	fmt.Printf("campaign %s: %d scenario(s), %d unique\n", name, stats.Scenarios, stats.Unique)
	for i, res := range results {
		agg := 0.0
		if res.Meta.WallSec > 0 {
			agg = float64(res.Meta.TotalBytes) / 1e6 / res.Meta.WallSec
		}
		fmt.Printf("  %-28s seed %-4d %-5s wall %8.1f s   aggregate %8.0f MB/s\n",
			res.Name, entries[i].Seed, res.Source, res.Meta.WallSec, agg)
	}
	verified := ""
	if *cacheVerify {
		verified = ", verified"
	}
	fmt.Printf("cache: %d hit(s), %d miss(es), %d dup(s), %s served, %s computed%s\n",
		stats.Hits, stats.Misses, stats.DupHits,
		fmtBytes(stats.BytesServed), fmtBytes(stats.BytesComputed), verified)

	if *telOut != "" {
		f, err := os.Create(*telOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := ensembleio.SaveTelemetrySnapshot(f, stats.Snapshot()); err != nil {
			f.Close() //lint:allow(errclose) already failing; the save error wins
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cache counters written to %s\n", *telOut)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
		for i, res := range results {
			base := fmt.Sprintf("%s-k%s-seed%d", res.Name, res.Key.Short(), entries[i].Seed)
			for _, a := range res.Artifacts {
				if err := os.WriteFile(filepath.Join(*outDir, base+"."+a.Name), a.Data, 0o644); err != nil {
					log.Fatal(err)
				}
			}
		}
		fmt.Printf("artifacts written to %s\n", *outDir)
	}
}

func loadCampaign(path string) (*campaignFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c campaignFile
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &c, nil
}

// expand turns the campaign grid into the flat scenario list, in file
// order: entries outer, seeds inner. Relative spec/faults paths
// resolve against the campaign file's directory.
func expand(c *campaignFile, baseDir, defaultMachine string) ([]ensembleio.CampaignEntry, error) {
	campMachine := c.Machine
	if campMachine == "" {
		campMachine = defaultMachine
	}
	campSeeds := c.Seeds
	if len(campSeeds) == 0 {
		campSeeds = []int64{1}
	}
	var out []ensembleio.CampaignEntry
	for i, e := range c.Entries {
		var spec *ensembleio.WorkloadSpec
		var err error
		switch {
		case e.Spec != "" && e.Gen != nil:
			return nil, fmt.Errorf("entry %d: give spec or gen, not both", i)
		case e.Spec != "":
			spec, err = ensembleio.LoadWorkload(resolve(baseDir, e.Spec))
			if err != nil {
				return nil, fmt.Errorf("entry %d: %w", i, err)
			}
		case e.Gen != nil:
			spec = ensembleio.GenerateWorkload(*e.Gen)
		default:
			return nil, fmt.Errorf("entry %d: needs a spec path or a gen seed", i)
		}

		machineName := e.Machine
		if machineName == "" {
			machineName = campMachine
		}
		prof, err := platform(machineName)
		if err != nil {
			return nil, fmt.Errorf("entry %d: %w", i, err)
		}

		faultsPath := e.Faults
		if faultsPath == "" {
			faultsPath = c.Faults
		}
		var sc *ensembleio.Scenario
		if faultsPath != "" {
			if sc, err = ensembleio.LoadScenario(resolve(baseDir, faultsPath)); err != nil {
				return nil, fmt.Errorf("entry %d: %w", i, err)
			}
		}

		name := e.Name
		if name == "" {
			name = spec.Name
		}
		seeds := e.Seeds
		if len(seeds) == 0 {
			seeds = campSeeds
		}
		for _, s := range seeds {
			out = append(out, ensembleio.CampaignEntry{
				Name: name, Spec: spec, Platform: prof, Faults: sc, Seed: s,
			})
		}
	}
	return out, nil
}

func resolve(baseDir, path string) string {
	if filepath.IsAbs(path) {
		return path
	}
	return filepath.Join(baseDir, path)
}

func platform(name string) (ensembleio.Platform, error) {
	switch name {
	case "franklin":
		return ensembleio.Franklin(), nil
	case "franklin-patched":
		return ensembleio.FranklinPatched(), nil
	case "jaguar":
		return ensembleio.Jaguar(), nil
	}
	return ensembleio.Platform{}, fmt.Errorf("unknown machine %q", name)
}

func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
