package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"ensembleio"
)

func TestExpandGrid(t *testing.T) {
	dir := t.TempDir()
	seven := int64(7)
	c := &campaignFile{
		Name:  "t",
		Seeds: []int64{1, 2},
		Entries: []campaignEntry{
			{Gen: &seven},
			{Gen: &seven, Seeds: []int64{9}, Machine: "jaguar"},
		},
	}
	entries, err := expand(c, dir, "franklin")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("expanded to %d entries, want 3 (2 default seeds + 1 override)", len(entries))
	}
	if entries[0].Seed != 1 || entries[1].Seed != 2 || entries[2].Seed != 9 {
		t.Fatalf("seeds %d,%d,%d", entries[0].Seed, entries[1].Seed, entries[2].Seed)
	}
	if entries[2].Platform.Name == entries[0].Platform.Name {
		t.Fatal("per-entry machine override ignored")
	}
}

func TestExpandErrors(t *testing.T) {
	seven := int64(7)
	cases := []campaignEntry{
		{},                            // neither spec nor gen
		{Spec: "x.json", Gen: &seven}, // both
		{Gen: &seven, Machine: "nope"},
	}
	for i, e := range cases {
		_, err := expand(&campaignFile{Entries: []campaignEntry{e}}, t.TempDir(), "franklin")
		if err == nil {
			t.Errorf("case %d: expand accepted invalid entry %+v", i, e)
		}
	}
}

func TestExpandRelativePaths(t *testing.T) {
	dir := t.TempDir()
	spec := ensembleio.GenerateWorkload(3)
	f, err := os.Create(filepath.Join(dir, "wl.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ensembleio.EncodeWorkload(f, spec); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := expand(&campaignFile{Entries: []campaignEntry{{Spec: "wl.json"}}}, dir, "franklin")
	if err != nil {
		t.Fatal(err)
	}
	if entries[0].Name != spec.Name {
		t.Fatalf("entry name %q, want %q", entries[0].Name, spec.Name)
	}
}

// benchGrid builds the headline shape: n scenarios with ~50%
// duplicates (each unique scenario submitted twice).
func benchGrid(n int) []ensembleio.CampaignEntry {
	entries := make([]ensembleio.CampaignEntry, 0, n)
	for i := 0; i < n; i++ {
		u := int64(i / 2) // i and i+1 share a scenario
		entries = append(entries, ensembleio.CampaignEntry{
			Name:     "grid",
			Spec:     ensembleio.GenerateWorkload(u % 25),
			Platform: ensembleio.Franklin(),
			Seed:     u / 25,
		})
	}
	return entries
}

// The acceptance gate in wall-clock form: a warm 100-scenario campaign
// with ~50% duplicates must beat the cold one by at least 2x (in
// practice it is orders of magnitude faster — the warm pass computes
// nothing). The checked-in BenchmarkCacheCampaign* numbers gate the
// same ratio in CI via bench-guard.
func TestWarmCampaignAtLeastTwiceAsFast(t *testing.T) {
	entries := benchGrid(100)
	store, err := ensembleio.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	coldStart := time.Now()
	cold, coldStats, err := ensembleio.RunCampaign(entries, ensembleio.CampaignOptions{Workers: 4, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	coldDur := time.Since(coldStart)
	if coldStats.Misses != coldStats.Unique || coldStats.Hits != 0 {
		t.Fatalf("cold stats %+v", coldStats)
	}

	warmStart := time.Now()
	warm, warmStats, err := ensembleio.RunCampaign(entries, ensembleio.CampaignOptions{Workers: 4, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	warmDur := time.Since(warmStart)
	if warmStats.Hits != warmStats.Unique || warmStats.Misses != 0 {
		t.Fatalf("warm stats %+v", warmStats)
	}

	for i := range entries {
		if err := ensembleio.DiffCacheArtifacts(cold[i].Artifacts, warm[i].Artifacts); err != nil {
			t.Fatalf("entry %d: warm bytes differ from cold: %v", i, err)
		}
	}
	if warmDur*2 > coldDur {
		t.Fatalf("warm campaign %v vs cold %v: want >=2x speedup", warmDur, coldDur)
	}
	t.Logf("cold %v, warm %v (%.0fx)", coldDur, warmDur, float64(coldDur)/float64(warmDur))
}
