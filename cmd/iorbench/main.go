// Command iorbench runs the IOR micro-benchmark (§III) on the
// simulated machine and prints the ensemble analysis: moments, the
// completion-time histogram with its detected modes, and the advisor's
// findings.
//
// Usage:
//
//	iorbench [-machine franklin|franklin-patched|jaguar] [-tasks N]
//	         [-block BYTES] [-transfer BYTES] [-reps N] [-seed N]
//	         [-fpp] [-stripes N] [-faults scenario.json]
//	         [-trace FILE] [-json] [-traceformat binary|jsonl|chrome|spans]
//	         [-telemetry FILE] [-analytic on|off] [-prof PREFIX] [-version]
//
// -traceformat chrome writes Chrome trace-event JSON loadable in
// Perfetto; spans writes the compact JSONL span format. Both require
// telemetry, which they enable implicitly (as does -telemetry).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ensembleio"
	"ensembleio/internal/cliutil"
	"ensembleio/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("iorbench: ")
	var (
		machine  = flag.String("machine", "franklin", "platform profile: franklin, franklin-patched, jaguar")
		tasks    = flag.Int("tasks", 1024, "MPI tasks")
		block    = flag.Int64("block", 512e6, "bytes written per task per repetition")
		transfer = flag.Int64("transfer", 0, "bytes per write call (default: whole block)")
		reps     = flag.Int("reps", 5, "synchronous repetitions")
		seed     = flag.Int64("seed", 1, "run seed (vary to model run-to-run conditions)")
		fpp      = flag.Bool("fpp", false, "file per process instead of one shared file")
		stripes  = flag.Int("stripes", 0, "stripe count for created files (0 = all OSTs)")
		scenario = flag.String("faults", "", "inject the fault scenario from this JSON file")
		trace    = flag.String("trace", "", "write the IPM-I/O trace to this file")
		jsonOut  = flag.Bool("json", false, "with -trace, write JSON lines instead of binary")
		format   = flag.String("traceformat", "", "trace encoding: binary, jsonl, chrome, spans (default binary; chrome/spans need telemetry)")
		telOut   = flag.String("telemetry", "", "write the telemetry metric snapshot (JSON) to this file")
		profOut  = flag.String("prof", "", "write wall-clock CPU/heap profiles to PREFIX.cpu.pprof / PREFIX.heap.pprof")
		analytic = cliutil.OnOff("analytic", true, "analytic fast path: on or off (off falls back to the pure event path; results are byte-identical)")
		version  = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(cliutil.Version())
		return
	}
	stopProf, err := cliutil.StartProfiles(*profOut)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()
	if *format == "" {
		*format = "binary"
		if *jsonOut {
			*format = "jsonl"
		}
	}
	switch *format {
	case "binary", "jsonl", "chrome", "spans":
	default:
		log.Fatalf("unknown -traceformat %q (want binary, jsonl, chrome, or spans)", *format)
	}
	// Chrome/span export and metric snapshots all need the run-scoped
	// telemetry sink.
	withTel := *telOut != "" || *format == "chrome" || *format == "spans"

	prof, err := platform(*machine)
	if err != nil {
		log.Fatal(err)
	}
	prof.AnalyticOff = !*analytic
	fs, err := loadScenario(*scenario)
	if err != nil {
		log.Fatal(err)
	}
	run := ensembleio.RunIOR(ensembleio.IORConfig{
		Machine:        prof,
		Tasks:          *tasks,
		BlockBytes:     *block,
		TransferBytes:  *transfer,
		Reps:           *reps,
		FilePerProcess: *fpp,
		StripeCount:    *stripes,
		Faults:         fs,
		Seed:           *seed,
		Telemetry:      withTel,
	})

	fmt.Printf("IOR %s: %d tasks x %d MB (transfer %d MB) x %d reps\n",
		*machine, *tasks, *block/1e6, effTransfer(*block, *transfer)/1e6, *reps)
	if fs != nil {
		fmt.Printf("faults: %s\n", fs)
	}
	fmt.Printf("run time: %.1f s   aggregate: %.0f MB/s\n\n", float64(run.Wall), run.AggregateMBps())

	writes := ensembleio.Durations(run, ensembleio.OpWrite)
	fmt.Println("write-call durations:", writes.Moments())
	h := ensembleio.NewHistogram(ensembleio.LinearBins(0, writes.Max()*1.01, 80))
	h.AddAll(writes)
	fmt.Println()
	report.Histogram(os.Stdout, "write completion times (s)", h)

	modes := h.Modes(ensembleio.ModeOpts{SmoothRadius: 2, MinProminence: 0.1, MinMass: 0.04})
	fmt.Println()
	report.Table(os.Stdout, report.ModeTable(modes, "s"))

	if findings := ensembleio.Diagnose(run); len(findings) > 0 {
		fmt.Println("\nadvisor findings:")
		for _, f := range findings {
			fmt.Printf("  %s\n", f)
		}
	}

	if *trace != "" {
		if err := saveTrace(*trace, run, *format); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntrace written to %s (%s)\n", *trace, *format)
	}
	if *telOut != "" {
		if err := saveTelemetry(*telOut, run); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("telemetry written to %s\n", *telOut)
	}
}

func platform(name string) (ensembleio.Platform, error) {
	switch name {
	case "franklin":
		return ensembleio.Franklin(), nil
	case "franklin-patched":
		return ensembleio.FranklinPatched(), nil
	case "jaguar":
		return ensembleio.Jaguar(), nil
	}
	return ensembleio.Platform{}, fmt.Errorf("unknown machine %q", name)
}

func loadScenario(path string) (*ensembleio.Scenario, error) {
	if path == "" {
		return nil, nil
	}
	return ensembleio.LoadScenario(path)
}

func effTransfer(block, transfer int64) int64 {
	if transfer == 0 {
		return block
	}
	return transfer
}

func saveTrace(path string, run *ensembleio.Run, format string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// Write errors can surface at close; a truncated trace must not
	// pass silently.
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	switch format {
	case "jsonl":
		return ensembleio.SaveTraceJSON(f, run)
	case "chrome":
		return ensembleio.SaveChromeTrace(f, run)
	case "spans":
		return ensembleio.SaveSpans(f, run)
	}
	return ensembleio.SaveTrace(f, run)
}

func saveTelemetry(path string, run *ensembleio.Run) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return ensembleio.SaveTelemetry(f, run)
}
