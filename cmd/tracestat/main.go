// Command tracestat analyses a saved IPM-I/O trace: per-operation
// moments, histograms (linear or log bins), detected modes, the trace
// diagram, and the advisor's findings. It auto-detects the binary and
// JSONL formats.
//
// Usage:
//
//	tracestat [-op read|write] [-log] [-diagram] [-ranks N] FILE
//	tracestat -validate-chrome FILE
//
// -validate-chrome schema-checks a Chrome trace-event export (the
// format iorbench -traceformat chrome writes) instead of analysing an
// IPM-I/O trace; CI's trace-smoke target runs it over exporter output.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"ensembleio"
	"ensembleio/internal/analysis"
	"ensembleio/internal/cliutil"
	"ensembleio/internal/ensemble"
	"ensembleio/internal/ipmio"
	"ensembleio/internal/report"
	"ensembleio/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracestat: ")
	var (
		opName  = flag.String("op", "", "restrict to one op: open, close, read, write, seek, fsync")
		logBins = flag.Bool("log", false, "log-binned histogram (for heavy-tailed traces)")
		diagram = flag.Bool("diagram", false, "render the trace diagram")
		ranks   = flag.Int("ranks", 0, "rank count for the diagram (default: max rank + 1)")
		chrome  = flag.Bool("validate-chrome", false, "validate FILE as Chrome trace-event JSON and exit")
		profOut = flag.String("prof", "", "write wall-clock CPU/heap profiles to PREFIX.cpu.pprof / PREFIX.heap.pprof")
		version = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(cliutil.Version())
		return
	}
	if flag.NArg() != 1 {
		log.Fatal("usage: tracestat [flags] FILE")
	}
	stopProf, err := cliutil.StartProfiles(*profOut)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()
	if *chrome {
		n, err := validateChrome(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: valid Chrome trace, %d events\n", flag.Arg(0), n)
		return
	}

	events, marks, err := load(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d events, %d phase marks\n\n", flag.Arg(0), len(events), len(marks))

	var filter func(ipmio.Event) bool
	if *opName != "" {
		op, ok := ipmio.ParseOp(*opName)
		if !ok {
			log.Fatalf("unknown op %q", *opName)
		}
		filter = analysis.IsOp(op)
	}

	// Per-op summary table.
	rows := [][]string{{"op", "n", "bytes (MB)", "med (s)", "p95 (s)", "max (s)"}}
	for op := ensembleio.OpOpen; op <= ensembleio.OpFsync; op++ {
		d := ensemble.NewDataset(nil)
		var bytes int64
		for _, e := range events {
			if e.Op == op {
				d.Add(float64(e.Dur))
				bytes += e.Bytes
			}
		}
		if d.Len() == 0 {
			continue
		}
		rows = append(rows, []string{
			op.String(), fmt.Sprint(d.Len()), report.F(float64(bytes)/1e6, 0),
			report.F(d.Quantile(0.5), 3), report.F(d.Quantile(0.95), 3), report.F(d.Max(), 3),
		})
	}
	report.Table(os.Stdout, rows)

	d := analysis.Durations(events, filter)
	if d.Len() > 0 {
		fmt.Println()
		var h *ensemble.Histogram
		if *logBins {
			lo := d.Min()
			if lo <= 0 {
				lo = 1e-6
			}
			h = ensemble.NewHistogram(ensemble.LogBins(lo, d.Max()*1.01, 4))
		} else {
			h = ensemble.NewHistogram(ensemble.LinearBins(0, d.Max()*1.01, 60))
		}
		h.AddAll(d)
		report.Histogram(os.Stdout, "durations (s)", h)
		modes := h.Modes(ensemble.ModeOpts{SmoothRadius: 2, MinProminence: 0.1, MinMass: 0.04})
		if len(modes) > 0 {
			fmt.Println()
			report.Table(os.Stdout, report.ModeTable(modes, "s"))
		}
	}

	if *diagram {
		n := *ranks
		end := sim.Time(0)
		for _, e := range events {
			if e.Rank+1 > n {
				n = e.Rank + 1
			}
			if e.Start+e.Dur > end {
				end = e.Start + e.Dur
			}
		}
		fmt.Println("\ntrace diagram (W=write R=read M=mixed .=idle):")
		fmt.Print(analysis.TraceDiagram(events, n, 100, 24, end))
	}

	// Online pattern classification per op — the hint stream a pattern-
	// aware file system would consume.
	pd := ipmio.NewPatternDetector()
	for _, e := range events {
		pd.Observe(e)
	}
	fmt.Println("\naccess patterns:")
	for _, op := range []ipmio.Op{ipmio.OpRead, ipmio.OpWrite} {
		if s := pd.Summarize(op); s.Streams > 0 {
			fmt.Printf("  %-5s %s\n", op, s)
		}
	}

	if findings := analysis.Diagnose(events, analysis.DiagnoseConfig{}); len(findings) > 0 {
		fmt.Println("\nadvisor findings:")
		for _, f := range findings {
			fmt.Printf("  %s\n", f)
		}
	}
}

// validateChrome schema-checks a Chrome trace-event JSON file.
func validateChrome(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close() //lint:allow(errclose) file opened read-only
	return ensembleio.ValidateChromeTrace(bufio.NewReader(f))
}

// load auto-detects the trace format by its first byte ('{' = JSONL).
func load(path string) ([]ipmio.Event, []ipmio.PhaseMark, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close() //lint:allow(errclose) file opened read-only
	br := bufio.NewReader(f)
	first, err := br.Peek(1)
	if err != nil {
		return nil, nil, fmt.Errorf("empty trace: %w", err)
	}
	if first[0] == '{' {
		return ensembleio.LoadTraceJSON(br)
	}
	return ensembleio.LoadTrace(br)
}
