// Command ensemblecmp compares the ensembles of two runs — the
// reproducibility check at the heart of the methodology. Given two
// trace files (or two profile files), it reports per-operation KS and
// Wasserstein distances, mode alignment, and a verdict: statistically
// the same experiment, or not.
//
// Usage:
//
//	ensemblecmp [-j N] A.trace B.trace
//	ensemblecmp [-j N] -profiles A.prof.json B.prof.json
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"ensembleio"
	"ensembleio/internal/analysis"
	"ensembleio/internal/cliutil"
	"ensembleio/internal/ensemble"
	"ensembleio/internal/ipmio"
	"ensembleio/internal/report"
	"ensembleio/internal/runpool"
	"ensembleio/internal/tracefmt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ensemblecmp: ")
	profiles := flag.Bool("profiles", false, "inputs are profile JSON files, not traces")
	ksFlag := flag.Float64("ks", 0, "KS verdict threshold (0 = adaptive: the alpha=0.001 two-sample critical value, at least 0.1)")
	jobs := flag.Int("j", 0, "parallel input loaders (0 = all cores)")
	prof := flag.String("prof", "", "write CPU/heap profiles to PREFIX.{cpu,heap}.pprof")
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *version {
		fmt.Println(cliutil.Version())
		return
	}
	stopProf, err := cliutil.StartProfiles(*prof)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()
	ksThreshold = *ksFlag
	if flag.NArg() != 2 {
		log.Fatal("usage: ensemblecmp [-profiles] [-j N] A B")
	}
	paths := []string{flag.Arg(0), flag.Arg(1)}

	if *profiles {
		// The two inputs decode independently; fan them across the pool.
		ps := runpool.Map(*jobs, paths, func(_ int, p string) *tracefmt.Profile {
			return loadProfile(p)
		})
		compareProfiles(ps[0], ps[1])
		return
	}
	evs := runpool.Map(*jobs, paths, func(_ int, p string) []ipmio.Event {
		return loadEvents(p)
	})
	compareTraces(paths[0], paths[1], evs[0], evs[1])
}

// ksThreshold is the fixed verdict threshold (0 = adaptive).
var ksThreshold float64

// ksLimit returns the verdict threshold for two samples of the given
// sizes: the fixed -ks value if set, otherwise the alpha=0.001
// two-sample Kolmogorov-Smirnov critical value (floored at 0.1) so
// that small ensembles are judged against their own sampling noise.
func ksLimit(nA, nB int) float64 {
	if ksThreshold > 0 {
		return ksThreshold
	}
	c := 1.95 * math.Sqrt(float64(nA+nB)/(float64(nA)*float64(nB)))
	if c < 0.1 {
		c = 0.1
	}
	return c
}

func compareTraces(pathA, pathB string, evA, evB []ipmio.Event) {
	fmt.Printf("%s: %d events   %s: %d events\n\n", pathA, len(evA), pathB, len(evB))

	rows := [][]string{{"op", "n(A)", "n(B)", "KS", "Wasserstein (s)", "verdict"}}
	reproducible := true
	compared := 0
	for op := ensembleio.OpOpen; op <= ensembleio.OpFsync; op++ {
		dA := analysis.Durations(evA, analysis.IsOp(op))
		dB := analysis.Durations(evB, analysis.IsOp(op))
		if dA.Len() < 20 || dB.Len() < 20 {
			continue
		}
		compared++
		ks := ensemble.KS(dA, dB)
		w := ensemble.Wasserstein(dA, dB)
		verdict := "same distribution"
		if ks >= ksLimit(dA.Len(), dB.Len()) {
			verdict = "DIFFERENT"
			reproducible = false
		}
		rows = append(rows, []string{
			op.String(), fmt.Sprint(dA.Len()), fmt.Sprint(dB.Len()),
			report.F(ks, 3), report.F(w, 3), verdict,
		})
	}
	report.Table(os.Stdout, rows)
	if compared == 0 {
		log.Fatal("no op type has enough events in both traces to compare")
	}

	// Mode alignment on the dominant op (the one with the most events).
	best := ensembleio.OpWrite
	bestN := 0
	for op := ensembleio.OpOpen; op <= ensembleio.OpFsync; op++ {
		if n := analysis.Durations(evA, analysis.IsOp(op)).Len(); n > bestN {
			best, bestN = op, n
		}
	}
	if bestN >= 50 {
		fmt.Printf("\nmode alignment (%s):\n", best)
		mA := modesOf(analysis.Durations(evA, analysis.IsOp(best)))
		mB := modesOf(analysis.Durations(evB, analysis.IsOp(best)))
		n := len(mA)
		if len(mB) < n {
			n = len(mB)
		}
		for i := 0; i < n; i++ {
			shift := math.Abs(mA[i]-mB[i]) / mA[i] * 100
			fmt.Printf("  mode %d: %.2fs vs %.2fs (%.1f%% shift)\n", i+1, mA[i], mB[i], shift)
		}
		if len(mA) != len(mB) {
			fmt.Printf("  mode count differs: %d vs %d\n", len(mA), len(mB))
		}
	}

	if reproducible {
		fmt.Println("\nverdict: ensembles statistically indistinguishable — same experiment, different run")
	} else {
		fmt.Println("\nverdict: ensembles DIFFER — not reproductions of the same conditions")
		os.Exit(1)
	}
}

func compareProfiles(pA, pB *tracefmt.Profile) {
	rows := [][]string{{"op", "mean(A)", "mean(B)", "p95(A)", "p95(B)", "verdict"}}
	bad := false
	for op := ensembleio.OpOpen; op <= ensembleio.OpFsync; op++ {
		hA, hB := pA.Duration(op), pB.Duration(op)
		if hA == nil || hB == nil || hA.Total() < 20 || hB.Total() < 20 {
			continue
		}
		verdict := "same"
		relMean := math.Abs(hA.Mean()-hB.Mean()) / hA.Mean()
		relP95 := math.Abs(hA.Quantile(0.95)-hB.Quantile(0.95)) / hA.Quantile(0.95)
		if relMean > 0.15 || relP95 > 0.25 {
			verdict = "DIFFERENT"
			bad = true
		}
		rows = append(rows, []string{
			op.String(),
			report.F(hA.Mean(), 3), report.F(hB.Mean(), 3),
			report.F(hA.Quantile(0.95), 3), report.F(hB.Quantile(0.95), 3),
			verdict,
		})
	}
	report.Table(os.Stdout, rows)
	if bad {
		fmt.Println("\nverdict: profiles DIFFER")
		os.Exit(1)
	}
	fmt.Println("\nverdict: profiles statistically indistinguishable")
}

func modesOf(d *ensemble.Dataset) []float64 {
	h := ensemble.NewHistogram(ensemble.LinearBins(0, d.Max()*1.01, 80))
	h.AddAll(d)
	var out []float64
	for _, m := range h.Modes(ensemble.ModeOpts{SmoothRadius: 2, MinProminence: 0.1, MinMass: 0.04}) {
		out = append(out, m.Center)
	}
	return out
}

func loadEvents(path string) []ipmio.Event {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close() //lint:allow(errclose) file opened read-only
	br := bufio.NewReader(f)
	first, err := br.Peek(1)
	if err != nil {
		log.Fatalf("%s: empty", path)
	}
	var events []ipmio.Event
	if first[0] == '{' {
		events, _, err = tracefmt.ReadJSONL(br)
	} else {
		events, _, err = tracefmt.ReadBinary(br)
	}
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return events
}

func loadProfile(path string) *tracefmt.Profile {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close() //lint:allow(errclose) file opened read-only
	p, err := tracefmt.ReadProfile(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return p
}
