package ensembleio

// Statistical regression harness: the reproduced figures' ensemble
// SHAPES — mode structure and quantile sketches — are pinned against
// golden JSON under testdata/golden/. The tests re-run Figures 1c, 2
// and 5b at reduced scale and assert mode count, mode locations
// (within one bin) and a KS-stability band against the golden
// distribution, so a simulator change that shifts a distribution
// fails with a readable got-vs-want diff instead of silently moving
// the reproduced figures. Regenerate after an intentional change with
//
//	go test -run TestFigureInvariants -update .
import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden figure-invariant files under testdata/golden")

// goldenFig pins one figure's ensemble shape.
type goldenFig struct {
	// Histogram binning the modes were detected under (fixed at update
	// time so mode bins stay comparable run over run).
	BinLo float64 `json:"bin_lo"`
	BinHi float64 `json:"bin_hi"`
	BinN  int     `json:"bin_n"`
	// Detected modes: bin index and center of each.
	ModeBins    []int     `json:"mode_bins"`
	ModeCenters []float64 `json:"mode_centers"`
	// 101 evenly spaced quantiles (p = 0.00 .. 1.00): the distribution
	// sketch the KS band is checked against.
	Quantiles []float64 `json:"quantiles"`
	// KSBand is the maximum tolerated KS distance between the current
	// ensemble and the golden sketch (the paper's reproducibility
	// threshold is 0.1).
	KSBand float64 `json:"ks_band"`
}

// figCase is one pinned figure: a name, its reduced-scale ensemble,
// and mode-detection options.
type figCase struct {
	name    string
	dataset func() *Dataset
	bins    int
	modes   ModeOpts
	ksBand  float64
}

func figInvariantCases() []figCase {
	modeOpts := ModeOpts{SmoothRadius: 2, MinProminence: 0.1, MinMass: 0.04}
	iorReduced := func(k int) func() *Dataset {
		return func() *Dataset {
			run := cached("figinv-ior-k"+string(rune('0'+k)), func() *Run {
				return RunIOR(IORConfig{
					Machine:       Franklin(),
					Tasks:         256,
					BlockBytes:    128e6,
					TransferBytes: 128e6 / int64(k),
					Reps:          3,
					Seed:          1,
				})
			})
			return Durations(run, OpWrite)
		}
	}
	madReads := func(platform string) func() *Dataset {
		return func() *Dataset {
			run := cached("figinv-mad-"+platform, func() *Run {
				m := Franklin()
				if platform == "patched" {
					m = FranklinPatched()
				}
				return RunMADbench(MADbenchConfig{Machine: m, Tasks: 64, Matrices: 6, Seed: 3})
			})
			return Durations(run, OpRead)
		}
	}
	return []figCase{
		// Figure 1c: the multi-modal shared-file write histogram.
		{"fig1c-ior-writes", iorReduced(1), 60, modeOpts, 0.1},
		// Figure 2: splitting k=2, k=4 narrows the distribution.
		{"fig2-ior-writes-k2", iorReduced(2), 60, modeOpts, 0.1},
		{"fig2-ior-writes-k4", iorReduced(4), 60, modeOpts, 0.1},
		// Figure 5b: MADbench reads before and after the Lustre patch.
		{"fig5b-madbench-reads", madReads("franklin"), 60, modeOpts, 0.1},
		{"fig5b-madbench-reads-patched", madReads("patched"), 60, modeOpts, 0.1},
	}
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".json")
}

func sketchQuantiles(d *Dataset) []float64 {
	qs := make([]float64, 101)
	for i := range qs {
		qs[i] = d.Quantile(float64(i) / 100)
	}
	return qs
}

// ksVsSketch approximates the KS distance between the dataset and the
// distribution the golden quantile sketch describes. Ensembles of
// simulated durations carry atoms (many identical values), so the
// comparison uses the CDF's jump interval [F(q-), F(q)] at each golden
// quantile — a point mass at q satisfies any p inside its jump.
func ksVsSketch(d *Dataset, qs []float64) float64 {
	sorted := d.Sorted()
	n := float64(len(sorted))
	maxDiff := 0.0
	for i, q := range qs {
		p := float64(i) / 100
		below := float64(sort.SearchFloat64s(sorted, q)) / n
		atOrBelow := float64(sort.Search(len(sorted), func(j int) bool { return sorted[j] > q })) / n
		var diff float64
		switch {
		case p < below:
			diff = below - p
		case p > atOrBelow:
			diff = p - atOrBelow
		}
		if diff > maxDiff {
			maxDiff = diff
		}
	}
	return maxDiff
}

func detectModes(d *Dataset, binLo, binHi float64, binN int, opts ModeOpts) (bins []int, centers []float64) {
	h := NewHistogram(LinearBins(binLo, binHi, binN))
	h.AddAll(d)
	width := (binHi - binLo) / float64(binN)
	for _, m := range h.Modes(opts) {
		bins = append(bins, int((m.Center-binLo)/width))
		centers = append(centers, m.Center)
	}
	sort.Ints(bins)
	sort.Float64s(centers)
	return bins, centers
}

func TestFigureInvariants(t *testing.T) {
	for _, fc := range figInvariantCases() {
		t.Run(fc.name, func(t *testing.T) {
			d := fc.dataset()
			if d.Len() == 0 {
				t.Fatal("figure produced an empty ensemble")
			}
			path := goldenPath(fc.name)

			if *updateGolden {
				g := goldenFig{
					BinLo:  0,
					BinHi:  d.Max() * 1.001,
					BinN:   fc.bins,
					KSBand: fc.ksBand,
				}
				g.ModeBins, g.ModeCenters = detectModes(d, g.BinLo, g.BinHi, g.BinN, fc.modes)
				g.Quantiles = sketchQuantiles(d)
				b, err := json.MarshalIndent(&g, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d modes, %d samples)", path, len(g.ModeBins), d.Len())
				return
			}

			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("no golden file %s — run `go test -run TestFigureInvariants -update .` to create it (%v)", path, err)
			}
			var g goldenFig
			if err := json.Unmarshal(raw, &g); err != nil {
				t.Fatalf("decoding %s: %v", path, err)
			}

			// Mode structure under the PINNED binning: same count, each
			// mode within one bin of its golden location.
			bins, centers := detectModes(d, g.BinLo, g.BinHi, g.BinN, fc.modes)
			if len(bins) != len(g.ModeBins) {
				t.Errorf("mode count changed: got %d modes at bins %v (centers %.2f), golden has %d at bins %v (centers %.2f)",
					len(bins), bins, centers, len(g.ModeBins), g.ModeBins, g.ModeCenters)
			} else {
				for i := range bins {
					if diff := bins[i] - g.ModeBins[i]; diff < -1 || diff > 1 {
						t.Errorf("mode %d moved: got bin %d (center %.2fs), golden bin %d (center %.2fs) — more than one bin apart",
							i, bins[i], centers[i], g.ModeBins[i], g.ModeCenters[i])
					}
				}
			}

			// Distribution stability: KS distance against the golden
			// quantile sketch stays inside the band.
			if ks := ksVsSketch(d, g.Quantiles); ks > g.KSBand {
				t.Errorf("distribution drifted: KS %.3f vs golden sketch exceeds the %.2f band (got median %.2fs p95 %.2fs, golden median %.2fs p95 %.2fs)",
					ks, g.KSBand, d.Quantile(0.5), d.Quantile(0.95), g.Quantiles[50], g.Quantiles[95])
			}
		})
	}
}
