package ensembleio_test

// Integration test for the telemetry tentpole: a faulted IOR run with
// the sink enabled must produce (a) fault spans that localize the
// injected flaky-OST stall windows at their exact virtual times, (b) a
// per-OST stall counter charging the stalled server and no other, and
// (c) a Chrome trace export that passes the schema validator — the
// "open it in Perfetto and see the fault" workflow, mechanized.

import (
	"bytes"
	"strings"
	"testing"

	"ensembleio"
)

func TestTelemetryLocalizesInjectedFault(t *testing.T) {
	const spec = `{
	  "faults": [
	    {"type": "flaky-ost", "ost": 1, "start_sec": 0.25, "period_sec": 1.5, "stall_sec": 0.5}
	  ]
	}`
	scenario, err := ensembleio.ParseScenario(strings.NewReader(spec))
	if err != nil {
		t.Fatalf("ParseScenario: %v", err)
	}
	run := ensembleio.RunIOR(ensembleio.IORConfig{
		Machine: ensembleio.Franklin(), Tasks: 32, Reps: 2,
		BlockBytes: 64e6, TransferBytes: 16e6,
		Faults: scenario, Seed: 11, Telemetry: true,
	})
	if run.Telemetry == nil {
		t.Fatal("telemetry requested but Run.Telemetry is nil")
	}

	// (a) Fault spans sit exactly on the injected windows: start_sec +
	// k*period_sec, each stall_sec long, clipped to the run.
	var faultSpans []ensembleio.Span
	for _, sp := range run.Spans {
		if sp.Cat == "fault" {
			faultSpans = append(faultSpans, sp)
		}
	}
	if len(faultSpans) == 0 {
		t.Fatal("no fault spans recorded for a faulted run")
	}
	wall := float64(run.Wall)
	for i, sp := range faultSpans {
		if sp.Name != "ost1-stall" {
			t.Errorf("fault span %d named %q, want ost1-stall", i, sp.Name)
		}
		wantStart := 0.25 + float64(i)*1.5
		if sp.Start != wantStart {
			t.Errorf("fault span %d starts at %v, want %v", i, sp.Start, wantStart)
		}
		wantEnd := wantStart + 0.5
		if wantEnd > wall {
			wantEnd = wall
		}
		if sp.End != wantEnd {
			t.Errorf("fault span %d ends at %v, want %v", i, sp.End, wantEnd)
		}
	}

	// (b) The stall time is charged to OST 1 and only OST 1.
	stall := run.Telemetry.Counter("lustre.ost001.stall_s")
	if stall <= 0 {
		t.Errorf("lustre.ost001.stall_s = %v, want > 0", stall)
	}
	var wantStall float64
	for _, sp := range faultSpans {
		wantStall += sp.End - sp.Start
	}
	if stall != wantStall {
		t.Errorf("lustre.ost001.stall_s = %v, fault spans total %v", stall, wantStall)
	}
	if v := run.Telemetry.Counter("lustre.ost000.stall_s"); v != 0 {
		t.Errorf("healthy OST 0 charged %v stall seconds", v)
	}

	// Workload phases and per-rank IO made it into the span stream too.
	var phases, io int
	for _, sp := range run.Spans {
		switch sp.Cat {
		case "phase":
			phases++
		case "io":
			io++
		}
	}
	if phases == 0 || io == 0 {
		t.Errorf("span stream missing categories: %d phase, %d io spans", phases, io)
	}

	// (c) The Perfetto export round-trips through the schema validator.
	var chrome bytes.Buffer
	if err := ensembleio.SaveChromeTrace(&chrome, run); err != nil {
		t.Fatalf("SaveChromeTrace: %v", err)
	}
	n, err := ensembleio.ValidateChromeTrace(bytes.NewReader(chrome.Bytes()))
	if err != nil {
		t.Fatalf("ValidateChromeTrace: %v", err)
	}
	if want := len(run.Spans) + 4; n != want { // 4 metadata events
		t.Errorf("chrome trace has %d events, want %d", n, want)
	}
}

// TestTelemetryDisabledByDefault pins the zero-cost contract's API
// side: without the Telemetry flag the run carries no snapshot and no
// spans, and the telemetry savers refuse rather than emit empty files.
func TestTelemetryDisabledByDefault(t *testing.T) {
	run := ensembleio.RunIOR(ensembleio.IORConfig{
		Machine: ensembleio.Franklin(), Tasks: 8, Reps: 1,
		BlockBytes: 16e6, TransferBytes: 8e6, Seed: 1,
	})
	if run.Telemetry != nil {
		t.Error("telemetry snapshot present without the Telemetry flag")
	}
	if len(run.Spans) != 0 {
		t.Errorf("%d spans recorded without the Telemetry flag", len(run.Spans))
	}
	if err := ensembleio.SaveTelemetry(&bytes.Buffer{}, run); err == nil {
		t.Error("SaveTelemetry succeeded on a run without telemetry")
	}
}
