package lustre

import (
	"fmt"
	"math"

	"ensembleio/internal/cluster"
	"ensembleio/internal/sim"
	"ensembleio/internal/telemetry"
)

// FS is one mounted parallel file system instance on a cluster. It
// owns the namespace, the per-node clients, the metadata service, and
// the shared-file contention state.
type FS struct {
	Cl      *cluster.Cluster
	files   map[string]*File
	clients []*Client

	mds sim.Semaphore // serializes metadata-path operations

	// activeWriteJobs counts write jobs that are queued or in flight
	// file-system-wide; it drives the writers-per-OST extent-lock
	// contention term.
	activeWriteJobs int

	rng   *sim.RNG
	stats Stats

	// Multi-tenant accounting (see RegisterTenant): tenantOf maps a
	// node ID to its tenant index (-1 = unattributed), tenantUsage
	// holds each tenant's slice of the server-side view. Both stay nil
	// on single-tenant mounts, costing the data path one length check.
	tenantOf    []int
	tenantUsage []TenantUsage

	// ostScratch backs Layout.ForEachOSTBuf in the per-stream
	// accounting paths (single-threaded under the lock-step engine, so
	// one FS-wide buffer is safe).
	ostScratch []int64

	// OnPathology, when set, is called for every read that takes the
	// degenerate page-read path (diagnostics and tests).
	OnPathology func(nodeID int, t sim.Time, dirtyMB float64)

	// DefaultStripeCount, when non-zero, is the stripe count assigned
	// to newly created files (0 = stripe over all OSTs) — the
	// `lfs setstripe -c` default of the mount. File-per-process fault
	// studies set 1 so each file is pinned to a single OST.
	DefaultStripeCount int

	// nextOST is the round-robin starting-OST assignment counter for
	// new files (Lustre's default allocator behaviour, modulo load
	// balancing).
	nextOST int

	// Injected degradations (see internal/faults). ostMul is a
	// per-OST permanent service-rate multiplier (nil = all clean);
	// ostStalls are periodic stall windows in virtual time; mdsDeg
	// elevates the lock-revocation tail on every metadata op.
	ostMul    []float64
	ostStalls []ostStall
	mdsDeg    *mdsDegrade

	// Telemetry handles, cached from the cluster's sink at mount (nil
	// handles no-op). Only the two hot-path signals are recorded live;
	// bulk per-OST accounting is folded from Stats when a run finishes.
	telStreamS   *telemetry.Hist
	telPathology *telemetry.Counter
}

// ostStall is one periodic stall window on one OST: from startSec on,
// the first stallSec of every periodSec the OST serves at factor times
// its rate.
type ostStall struct {
	ost       int
	startSec  float64
	periodSec float64
	stallSec  float64
	factor    float64
}

// mdsDegrade elevates the metadata path's lock-revocation tail: every
// MDS op stalls an extra Uniform(loSec, hiSec) with probability prob.
type mdsDegrade struct {
	prob, loSec, hiSec float64
}

// NewFS mounts a file system on the cluster with one client per node.
func NewFS(cl *cluster.Cluster) *FS {
	fs := &FS{
		Cl:           cl,
		files:        make(map[string]*File),
		rng:          cl.RNG.Fork(0x10f5),
		telStreamS:   cl.Tel.Hist("lustre.stream_service_s"),
		telPathology: cl.Tel.Counter("lustre.readahead_pathologies"),
	}
	conc := cl.Prof.MDSConcurrency
	if conc <= 0 {
		conc = 1
	}
	fs.mds = *sim.NewSemaphore(conc)
	if cl.Prof.OSTs > 0 {
		fs.stats.PerOST = make([]OSTStat, cl.Prof.OSTs)
	}
	for _, n := range cl.Nodes {
		fs.clients = append(fs.clients, newClient(fs, n))
	}
	return fs
}

// ScaleOST installs a permanent service-rate multiplier on one OST
// (fault injection; factors compose multiplicatively).
func (fs *FS) ScaleOST(ost int, factor float64) {
	fs.checkOST(ost)
	if fs.ostMul == nil {
		fs.ostMul = make([]float64, fs.Cl.Prof.OSTs)
		for i := range fs.ostMul {
			fs.ostMul[i] = 1
		}
	}
	fs.ostMul[ost] *= factor
}

// StallOST installs a periodic stall window on one OST: from startSec
// on, the OST serves at factor times its rate for the first stallSec
// of every periodSec. The window is a pure function of virtual time,
// so faulted runs stay exactly as reproducible as clean ones.
func (fs *FS) StallOST(ost int, startSec, periodSec, stallSec, factor float64) {
	fs.checkOST(ost)
	if periodSec <= 0 || stallSec <= 0 {
		panic("lustre: stall window needs a positive period and span")
	}
	fs.ostStalls = append(fs.ostStalls, ostStall{
		ost: ost, startSec: startSec, periodSec: periodSec, stallSec: stallSec, factor: factor,
	})
}

func (fs *FS) checkOST(ost int) {
	if ost < 0 || ost >= fs.Cl.Prof.OSTs {
		panic(fmt.Sprintf("lustre: OST %d out of range [0,%d)", ost, fs.Cl.Prof.OSTs))
	}
}

// SetMDSConcurrency rebuilds the metadata semaphore with n permits
// (fault injection; must be called before the workload launches).
func (fs *FS) SetMDSConcurrency(n int) {
	if n <= 0 {
		n = 1
	}
	fs.mds = *sim.NewSemaphore(n)
}

// DegradeMDS adds a lock-revocation stall tail to every metadata-path
// operation: with probability prob an op stalls an extra
// Uniform(loSec, hiSec) seconds while holding its service slot.
func (fs *FS) DegradeMDS(prob, loSec, hiSec float64) {
	fs.mdsDeg = &mdsDegrade{prob: prob, loSec: loSec, hiSec: hiSec}
}

// ostCapMBps returns the per-stream service-rate ceiling imposed by
// degraded OSTs on the extent [offset, offset+length) at time t: the
// minimum over touched OSTs of factor x OSTServiceMBps, or +Inf when
// every touched OST is clean. Healthy OSTs impose no cap — their
// service rate is already folded into the fabric's aggregate capacity.
func (fs *FS) ostCapMBps(f *File, offset, length int64, t sim.Time) float64 {
	if fs.ostMul == nil && len(fs.ostStalls) == 0 {
		return math.Inf(1)
	}
	cap := math.Inf(1)
	fs.ostScratch = f.Layout.ForEachOSTBuf(fs.ostScratch, offset, length, fs.Cl.Prof.OSTs, func(ost int, _ float64) {
		factor := 1.0
		if fs.ostMul != nil {
			factor = fs.ostMul[ost]
		}
		for _, s := range fs.ostStalls {
			if s.ost == ost && float64(t) >= s.startSec &&
				math.Mod(float64(t)-s.startSec, s.periodSec) < s.stallSec {
				factor *= s.factor
			}
		}
		if factor < 1 {
			if c := factor * fs.Cl.Prof.OSTServiceMBps; c < cap {
				cap = c
			}
		}
	})
	return cap
}

// noteOSTService attributes one completed data stream to the OSTs its
// extent touches, weighted by stripe share — the server-side per-OST
// observation surfaced through Stats.PerOST. nodeID identifies the
// issuing client's node, so a multi-tenant mount can attribute the
// same observation to the owning tenant's usage bucket.
func (fs *FS) noteOSTService(nodeID int, f *File, offset, length int64, demandMB float64, dur sim.Duration) {
	if len(fs.stats.PerOST) == 0 || dur <= 0 {
		return
	}
	fs.telStreamS.Observe(float64(dur))
	tu := fs.tenantUsageFor(nodeID)
	fs.ostScratch = f.Layout.ForEachOSTBuf(fs.ostScratch, offset, length, len(fs.stats.PerOST), func(ost int, frac float64) {
		st := &fs.stats.PerOST[ost]
		st.Streams++
		st.MB += demandMB * frac
		st.Seconds += float64(dur) * frac
		if tu != nil {
			ot := &tu.PerOST[ost]
			ot.Streams++
			ot.MB += demandMB * frac
			ot.Seconds += float64(dur) * frac
		}
	})
}

// File is a file in the simulated namespace. Contents are not stored;
// only the extent (size) matters to the model.
type File struct {
	Name   string
	Size   int64
	Layout Layout

	// activeWriters counts write jobs queued or in flight against
	// this file; extent-lock contention is a per-file phenomenon
	// (writers of different files never share locks).
	activeWriters int
}

// ActiveWriters reports this file's queued or in-flight write jobs.
func (f *File) ActiveWriters() int { return f.activeWriters }

// Create creates (or truncates) a file with the mount's default
// layout: 1 MB stripes over DefaultStripeCount OSTs (all of them when
// zero), starting from a round-robin-assigned OST.
func (fs *FS) Create(name string) *File {
	count := fs.DefaultStripeCount
	if count <= 0 || count > fs.Cl.Prof.OSTs {
		count = fs.Cl.Prof.OSTs
	}
	f := &File{
		Name: name,
		Layout: Layout{
			StripeBytes: int64(fs.Cl.Prof.StripeMB * 1e6),
			Count:       count,
			OSTOffset:   fs.nextOST,
		},
	}
	if fs.Cl.Prof.OSTs > 0 {
		fs.nextOST = (fs.nextOST + 1) % fs.Cl.Prof.OSTs
	}
	fs.files[name] = f
	return f
}

// Lookup returns the named file, or nil if it does not exist.
func (fs *FS) Lookup(name string) *File { return fs.files[name] }

// ClientFor returns the client on the given node.
func (fs *FS) ClientFor(n *cluster.Node) *Client { return fs.clients[n.ID] }

// AddExternalClient mounts a client on a node created after the file
// system — a competing tenant's injection node from
// cluster.NewExternalNode. The node must be the next unmounted one,
// so client and node IDs stay aligned.
func (fs *FS) AddExternalClient(n *cluster.Node) *Client {
	if n.ID != len(fs.clients) {
		panic(fmt.Sprintf("lustre: external client for node %d but %d clients mounted", n.ID, len(fs.clients)))
	}
	c := newClient(fs, n)
	fs.clients = append(fs.clients, c)
	return c
}

// ActiveWriters reports the file-system-wide count of queued or
// in-flight write jobs.
func (fs *FS) ActiveWriters() int { return fs.activeWriteJobs }

// writersPerOST is the contention density used by the extent-lock
// cap: the FILE's concurrent writers spread over its stripe targets.
// Writers of different files never contend for extent locks, so a
// file-per-process workload sees no penalty at any scale.
func (fs *FS) writersPerOST(f *File) float64 {
	osts := f.Layout.Count
	if osts <= 0 {
		osts = fs.Cl.Prof.OSTs
	}
	w := float64(f.activeWriters) / float64(osts)
	if w < 1 {
		return 1
	}
	return w
}

// writeCapMBps returns the per-stream rate cap for one write job of
// regionMB megabytes. Contention grows with concurrent writers per
// OST; small interleaved regions are penalized because their extent
// locks bounce between clients; unaligned writes additionally pay the
// partial-stripe penalty.
func (fs *FS) writeCapMBps(f *File, regionMB float64, aligned bool) float64 {
	prof := fs.Cl.Prof
	w := fs.writersPerOST(f)
	cap := prof.LockCapMBps * (regionMB / prof.StripeMB) / math.Pow(w, prof.LockGamma)
	if !aligned {
		cap /= prof.UnalignedPenalty
	}
	return cap
}

// conflictDelay draws the extent-lock conflict stall for a write with
// the given number of partial-stripe RPCs: zero for aligned writes,
// and usually zero otherwise; with the contention-scaled probability,
// a per-partial-RPC stall (the Figure 6(f) bulge).
func (fs *FS) conflictDelay(f *File, partialRPCs int) sim.Duration {
	if partialRPCs <= 0 {
		return 0
	}
	prof := fs.Cl.Prof
	w := fs.writersPerOST(f)
	p := minf(prof.ConflictProbMax, prof.ConflictProbPerWriterPerOST*w*w)
	if p <= 0 || !fs.rng.Bernoulli(p) {
		return 0
	}
	fs.stats.Conflicts++
	return sim.Duration(float64(partialRPCs) * fs.rng.Uniform(prof.ConflictDelayLoSec, prof.ConflictDelayHiSec))
}

// MDSOp performs one serialized metadata-path operation (file open,
// close, attribute update). Operations queue behind each other
// file-system-wide.
func (fs *FS) MDSOp(p *sim.Proc, payloadBytes int64) sim.Duration {
	return fs.mdsOp(p, payloadBytes, 0)
}

func (fs *FS) mdsOp(p *sim.Proc, payloadBytes int64, extraSlow sim.Duration) sim.Duration {
	fs.stats.MDSOps++
	if d := fs.mdsDeg; d != nil && d.prob > 0 && fs.rng.Bernoulli(d.prob) {
		// Brownout: the op holds its service slot through an elevated
		// lock-revocation stall, starving everything queued behind it.
		extraSlow += sim.Duration(fs.rng.Uniform(d.loSec, d.hiSec))
		fs.stats.MDSSlowOps++
	}
	start := p.Now()
	fs.mds.Acquire(p)
	prof := fs.Cl.Prof
	lat := prof.MDSBaseLatency
	if payloadBytes > 0 && prof.SmallIORateMBps > 0 {
		lat += sim.Duration(mb(payloadBytes) / prof.SmallIORateMBps)
	}
	lat *= sim.Duration(fs.Cl.RNG.Lognormal(0, 0.25))
	p.Sleep(lat + extraSlow)
	fs.mds.Release()
	return p.Now() - start
}

// SmallWrite writes payloadBytes at offset through the metadata/small-
// I/O path (serialized), extending the file. Used for sub-threshold
// writes such as HDF5 metadata. Beyond the base latency, the op can
// hit a slow lock-revocation stall; page-aligned metadata blocks
// (whole 4 kB pages at page offsets, as an alignment-tuned HDF5
// emits) avoid the read-modify-write lock bounce and see the stall
// probability and span damped by AlignedMetaRelief.
func (fs *FS) SmallWrite(p *sim.Proc, f *File, offset, payloadBytes int64) sim.Duration {
	const page = 4096
	prof := fs.Cl.Prof
	slowProb := prof.MDSSlowProb
	lo, hi := prof.MDSSlowLoSec, prof.MDSSlowHiSec
	if offset%page == 0 && payloadBytes%page == 0 && prof.AlignedMetaRelief > 0 {
		slowProb *= prof.AlignedMetaRelief
		hi = lo + (hi-lo)*prof.AlignedMetaRelief
	}
	var extra sim.Duration
	if slowProb > 0 && fs.rng.Bernoulli(slowProb) {
		extra = sim.Duration(fs.rng.Uniform(lo, hi))
		fs.stats.MDSSlowOps++
	}
	fs.stats.SmallWrites++
	d := fs.mdsOp(p, payloadBytes, extra)
	f.extend(offset + payloadBytes)
	return d
}

func (f *File) extend(to int64) {
	if to > f.Size {
		f.Size = to
	}
}

func (f *File) String() string {
	return fmt.Sprintf("%s(%d bytes, stripe=%d x %d)", f.Name, f.Size, f.Layout.StripeBytes, f.Layout.Count)
}
