package lustre

import (
	"fmt"
	"math"

	"ensembleio/internal/cluster"
	"ensembleio/internal/sim"
)

// FS is one mounted parallel file system instance on a cluster. It
// owns the namespace, the per-node clients, the metadata service, and
// the shared-file contention state.
type FS struct {
	Cl      *cluster.Cluster
	files   map[string]*File
	clients []*Client

	mds sim.Semaphore // serializes metadata-path operations

	// activeWriteJobs counts write jobs that are queued or in flight
	// file-system-wide; it drives the writers-per-OST extent-lock
	// contention term.
	activeWriteJobs int

	rng   *sim.RNG
	stats Stats

	// OnPathology, when set, is called for every read that takes the
	// degenerate page-read path (diagnostics and tests).
	OnPathology func(nodeID int, t sim.Time, dirtyMB float64)
}

// NewFS mounts a file system on the cluster with one client per node.
func NewFS(cl *cluster.Cluster) *FS {
	fs := &FS{
		Cl:    cl,
		files: make(map[string]*File),
		rng:   cl.RNG.Fork(0x10f5),
	}
	conc := cl.Prof.MDSConcurrency
	if conc <= 0 {
		conc = 1
	}
	fs.mds = *sim.NewSemaphore(conc)
	for _, n := range cl.Nodes {
		fs.clients = append(fs.clients, newClient(fs, n))
	}
	return fs
}

// File is a file in the simulated namespace. Contents are not stored;
// only the extent (size) matters to the model.
type File struct {
	Name   string
	Size   int64
	Layout Layout

	// activeWriters counts write jobs queued or in flight against
	// this file; extent-lock contention is a per-file phenomenon
	// (writers of different files never share locks).
	activeWriters int
}

// ActiveWriters reports this file's queued or in-flight write jobs.
func (f *File) ActiveWriters() int { return f.activeWriters }

// Create creates (or truncates) a file with the default layout:
// 1 MB stripes over all OSTs.
func (fs *FS) Create(name string) *File {
	f := &File{
		Name: name,
		Layout: Layout{
			StripeBytes: int64(fs.Cl.Prof.StripeMB * 1e6),
			Count:       fs.Cl.Prof.OSTs,
		},
	}
	fs.files[name] = f
	return f
}

// Lookup returns the named file, or nil if it does not exist.
func (fs *FS) Lookup(name string) *File { return fs.files[name] }

// ClientFor returns the client on the given node.
func (fs *FS) ClientFor(n *cluster.Node) *Client { return fs.clients[n.ID] }

// ActiveWriters reports the file-system-wide count of queued or
// in-flight write jobs.
func (fs *FS) ActiveWriters() int { return fs.activeWriteJobs }

// writersPerOST is the contention density used by the extent-lock
// cap: the FILE's concurrent writers spread over its stripe targets.
// Writers of different files never contend for extent locks, so a
// file-per-process workload sees no penalty at any scale.
func (fs *FS) writersPerOST(f *File) float64 {
	osts := f.Layout.Count
	if osts <= 0 {
		osts = fs.Cl.Prof.OSTs
	}
	w := float64(f.activeWriters) / float64(osts)
	if w < 1 {
		return 1
	}
	return w
}

// writeCapMBps returns the per-stream rate cap for one write job of
// regionMB megabytes. Contention grows with concurrent writers per
// OST; small interleaved regions are penalized because their extent
// locks bounce between clients; unaligned writes additionally pay the
// partial-stripe penalty.
func (fs *FS) writeCapMBps(f *File, regionMB float64, aligned bool) float64 {
	prof := fs.Cl.Prof
	w := fs.writersPerOST(f)
	cap := prof.LockCapMBps * (regionMB / prof.StripeMB) / math.Pow(w, prof.LockGamma)
	if !aligned {
		cap /= prof.UnalignedPenalty
	}
	return cap
}

// conflictDelay draws the extent-lock conflict stall for a write with
// the given number of partial-stripe RPCs: zero for aligned writes,
// and usually zero otherwise; with the contention-scaled probability,
// a per-partial-RPC stall (the Figure 6(f) bulge).
func (fs *FS) conflictDelay(f *File, partialRPCs int) sim.Duration {
	if partialRPCs <= 0 {
		return 0
	}
	prof := fs.Cl.Prof
	w := fs.writersPerOST(f)
	p := minf(prof.ConflictProbMax, prof.ConflictProbPerWriterPerOST*w*w)
	if p <= 0 || !fs.rng.Bernoulli(p) {
		return 0
	}
	fs.stats.Conflicts++
	return sim.Duration(float64(partialRPCs) * fs.rng.Uniform(prof.ConflictDelayLoSec, prof.ConflictDelayHiSec))
}

// MDSOp performs one serialized metadata-path operation (file open,
// close, attribute update). Operations queue behind each other
// file-system-wide.
func (fs *FS) MDSOp(p *sim.Proc, payloadBytes int64) sim.Duration {
	return fs.mdsOp(p, payloadBytes, 0)
}

func (fs *FS) mdsOp(p *sim.Proc, payloadBytes int64, extraSlow sim.Duration) sim.Duration {
	fs.stats.MDSOps++
	start := p.Now()
	fs.mds.Acquire(p)
	prof := fs.Cl.Prof
	lat := prof.MDSBaseLatency
	if payloadBytes > 0 && prof.SmallIORateMBps > 0 {
		lat += sim.Duration(mb(payloadBytes) / prof.SmallIORateMBps)
	}
	lat *= sim.Duration(fs.Cl.RNG.Lognormal(0, 0.25))
	p.Sleep(lat + extraSlow)
	fs.mds.Release()
	return p.Now() - start
}

// SmallWrite writes payloadBytes at offset through the metadata/small-
// I/O path (serialized), extending the file. Used for sub-threshold
// writes such as HDF5 metadata. Beyond the base latency, the op can
// hit a slow lock-revocation stall; page-aligned metadata blocks
// (whole 4 kB pages at page offsets, as an alignment-tuned HDF5
// emits) avoid the read-modify-write lock bounce and see the stall
// probability and span damped by AlignedMetaRelief.
func (fs *FS) SmallWrite(p *sim.Proc, f *File, offset, payloadBytes int64) sim.Duration {
	const page = 4096
	prof := fs.Cl.Prof
	slowProb := prof.MDSSlowProb
	lo, hi := prof.MDSSlowLoSec, prof.MDSSlowHiSec
	if offset%page == 0 && payloadBytes%page == 0 && prof.AlignedMetaRelief > 0 {
		slowProb *= prof.AlignedMetaRelief
		hi = lo + (hi-lo)*prof.AlignedMetaRelief
	}
	var extra sim.Duration
	if slowProb > 0 && fs.rng.Bernoulli(slowProb) {
		extra = sim.Duration(fs.rng.Uniform(lo, hi))
		fs.stats.MDSSlowOps++
	}
	fs.stats.SmallWrites++
	d := fs.mdsOp(p, payloadBytes, extra)
	f.extend(offset + payloadBytes)
	return d
}

func (f *File) extend(to int64) {
	if to > f.Size {
		f.Size = to
	}
}

func (f *File) String() string {
	return fmt.Sprintf("%s(%d bytes, stripe=%d x %d)", f.Name, f.Size, f.Layout.StripeBytes, f.Layout.Count)
}
