package lustre

import (
	"math"

	"ensembleio/internal/cluster"
	"ensembleio/internal/flownet"
	"ensembleio/internal/sim"
)

// Client is the per-node file-system client: it owns the node's share
// of the page cache, the write queue, and the flusher that schedules
// write-back streams onto the node's fabric port.
//
// The flusher is the mechanism behind the harmonic mode structure of
// Figure 1(c): each time the flusher wakes from idle it samples a
// stream budget of 1, 2, or unlimited concurrent streaming writes
// (weighted random, per cluster.Profile.SlotWeights) and keeps it for
// the burst. A task streaming alone receives the node's whole fabric
// share — the "4R" mode; a pair shares it — "2R"; a full complement
// produces the fair-share "R" mode. Admission picks queued jobs at
// random, so which task gets exclusive service re-randomizes every
// burst and no task is consistently fast or slow, exactly as observed
// in §III.
type Client struct {
	fs   *FS
	node *cluster.Node

	bigQ       []*writeJob // streaming writes awaiting a slot
	pumpSet    bool        // a pump event is scheduled
	slots      int         // admitted-stream budget (0 = resample)
	activeBig  int         // streaming writes in flight
	inflightW  int         // write streams currently on the fabric
	absorbing  int         // writes currently copying into the page cache
	drain      bool        // a cache write-back stream is in flight
	drainArmed bool        // a delayed drain is scheduled
	workGen    int         // bumped on every enqueue; cancels delayed drains
	rng        *sim.RNG

	// Allocation-free machinery: pumpFn is the one dispatch closure the
	// client ever schedules; freeJobs is the client-owned writeJob free
	// list (jobs are recycled in their own done handler, see DESIGN.md
	// §11); smallScratch backs the greedy lane across dispatch calls;
	// drainChunk/drainDoneFn serve the single in-flight drain stream.
	pumpFn       func()
	freeJobs     []*writeJob
	smallScratch []*writeJob
	drainChunk   float64
	drainDoneFn  func()
}

type writeJob struct {
	c        *Client
	file     *File
	offset   int64   // extent start (OST attribution and fault caps)
	length   int64   // extent length
	demandMB float64 // noise-adjusted bytes to move
	regionMB float64 // original call region size (drives the lock cap)
	aligned  bool
	partials int     // partial-stripe RPC count (conflict exposure)
	luckCap  float64 // OST-luck rate cap (+Inf for a normal draw)
	wake     func()
	slot     bool     // occupies a streaming slot (releases activeBig on completion)
	capMBps  float64  // admission-time rate cap (lock/luck), pre-OST ceiling
	launched sim.Time // actual stream start (set by startFn)
	startFn  func()   // pre-bound: sample OST ceiling and start the stream
	doneFn   func()   // pre-bound: completion accounting, wake, recycle
}

func newClient(fs *FS, n *cluster.Node) *Client {
	c := &Client{fs: fs, node: n, rng: fs.rng.Fork(int64(n.ID) + 1)}
	c.pumpFn = func() {
		c.pumpSet = false
		c.dispatch()
	}
	c.drainDoneFn = c.drainDone
	return c
}

// newJob returns a reset writeJob, reusing one from the client's free
// list when possible. The start/done closures are bound once per object
// and read the job's current fields on every reuse.
func (c *Client) newJob() *writeJob {
	if n := len(c.freeJobs); n > 0 {
		j := c.freeJobs[n-1]
		c.freeJobs[n-1] = nil
		c.freeJobs = c.freeJobs[:n-1]
		return j
	}
	j := &writeJob{c: c}
	j.startFn = j.start
	j.doneFn = j.done
	return j
}

// Node returns the compute node this client runs on.
func (c *Client) Node() *cluster.Node { return c.node }

// Write performs one POSIX-level write of length bytes at offset and
// returns the call duration. Large contiguous regions are absorbed
// into the page cache while room remains (write-back); the remainder
// — and all fine-grained shared-file writes — move synchronously
// through the flusher.
func (c *Client) Write(p *sim.Proc, f *File, offset, length int64) sim.Duration {
	start := p.Now()
	prof := c.fs.Cl.Prof
	sizeMB := mb(length)
	aligned := f.Layout.Aligned(offset, length)

	syncMB := sizeMB
	if sizeMB >= prof.CacheBypassBelowMB {
		// Each task's write absorbs into cache up to its per-task
		// dirty grant (the node budget split across cores), so
		// co-located tasks burst into cache concurrently.
		grant := prof.DirtyLimitMB
		if prof.CoresPerNode > 0 {
			grant /= float64(prof.CoresPerNode)
		}
		absorb := minf(grant, minf(c.node.DirtyRoomMB(), sizeMB))
		if absorb > 0 {
			c.fs.stats.AbsorbedMB += absorb
			c.node.DirtyMB += absorb
			if prof.AbsorbMBps > 0 {
				c.absorbing++
				p.Sleep(sim.Duration(absorb / prof.AbsorbMBps))
				c.absorbing--
			}
			syncMB -= absorb
		}
	}

	if syncMB > 1e-12 {
		job := c.newJob()
		job.file = f
		job.offset = offset
		job.length = length
		job.demandMB = syncMB * c.fs.Cl.ServiceNoise()
		job.regionMB = sizeMB
		job.aligned = aligned
		job.partials = f.Layout.PartialRPCs(offset, length)
		job.luckCap = c.fs.Cl.StreamLuck()
		job.wake = p.Block()
		c.fs.activeWriteJobs++
		f.activeWriters++
		c.fs.stats.WriteJobs++
		c.fs.stats.WriteMB += syncMB
		if tu := c.fs.tenantUsageFor(c.node.ID); tu != nil {
			tu.WriteJobs++
			tu.WriteMB += syncMB
		}
		if !math.IsInf(job.luckCap, 1) {
			c.fs.stats.LuckCapped++
		}
		c.workGen++
		c.bigQ = append(c.bigQ, job)
		c.pump()
		p.Park()
	}

	f.extend(offset + length)
	return p.Now() - start
}

// pump schedules the dispatch pass. Dispatch is deferred to a fresh
// event at the current time so that every same-instant enqueue (e.g.
// all ranks leaving a barrier) lands in the queue before admission
// decisions and contention counts are taken.
func (c *Client) pump() {
	if c.pumpSet {
		return
	}
	c.pumpSet = true
	c.fs.Cl.Eng.At(c.fs.Cl.Eng.Now(), c.pumpFn)
}

func (c *Client) dispatch() {
	prof := c.fs.Cl.Prof

	// Greedy lane: small writes are latency/lock-bound, not streaming-
	// bound, and luck-capped writes are stalled on a congested OST —
	// neither should hold a streaming slot.
	kept := c.bigQ[:0]
	small := c.smallScratch[:0]
	for _, j := range c.bigQ {
		if j.regionMB < prof.SlotMinMB || !math.IsInf(j.luckCap, 1) {
			small = append(small, j)
		} else {
			kept = append(kept, j)
		}
	}
	for i := len(kept); i < len(c.bigQ); i++ {
		c.bigQ[i] = nil
	}
	c.bigQ = kept
	for _, j := range small {
		c.launch(j)
	}
	for i := range small {
		small[i] = nil
	}
	c.smallScratch = small[:0]

	// Slot lane. The stream budget is resampled whenever the flusher
	// goes fully idle (in synchronous workloads: once per phase per
	// node); while work is pending, completed streams immediately
	// refill their slot with a randomly chosen queued job. Random
	// admission re-randomizes which task gets the exclusive-stream
	// service, so no task is consistently fast or slow.
	if len(c.bigQ) == 0 {
		if c.activeBig == 0 {
			c.slots = 0 // resample at next burst
			c.maybeDrain()
		}
		return
	}
	if c.slots == 0 {
		switch c.rng.Choose(prof.SlotWeights[:]) {
		case 0:
			c.slots = 1
		case 1:
			c.slots = 2
		default:
			c.slots = 1 << 30 // "all": pure fair share
		}
	}
	for c.activeBig < c.slots && len(c.bigQ) > 0 {
		i := c.rng.Intn(len(c.bigQ))
		j := c.bigQ[i]
		c.bigQ[i] = c.bigQ[len(c.bigQ)-1]
		c.bigQ[len(c.bigQ)-1] = nil
		c.bigQ = c.bigQ[:len(c.bigQ)-1]
		c.activeBig++
		j.slot = true
		c.launch(j)
	}
}

// launch starts the fabric stream for a write job. Jobs flagged with
// slot release their streaming slot on completion, in addition to
// waking the writer.
func (c *Client) launch(j *writeJob) {
	j.capMBps = minf(c.fs.writeCapMBps(j.file, j.regionMB, j.aligned), j.luckCap)
	c.inflightW++
	if delay := c.fs.conflictDelay(j.file, j.partials); delay > 0 {
		c.fs.Cl.Eng.After(delay, j.startFn)
	} else {
		j.start()
	}
}

// start samples the OST ceiling and opens the fabric stream. Degraded-
// OST ceilings are sampled at actual stream start so a stall window
// that opens mid-queue still catches the stream.
func (j *writeJob) start() {
	c := j.c
	j.launched = c.fs.Cl.Eng.Now()
	capMBps := minf(j.capMBps, c.fs.ostCapMBps(j.file, j.offset, j.length, j.launched))
	c.node.Port.Start(j.demandMB, flownet.StreamOpts{
		RateCap: capMBps,
		Done:    j.doneFn,
	})
}

// done is the stream-completion handler: accounting, writer wake, slot
// release, and recycling the job into the client's free list. After
// done returns the job may be reused by the next Write, so nothing may
// retain a reference past this point.
func (j *writeJob) done() {
	c := j.c
	c.fs.noteOSTService(c.node.ID, j.file, j.offset, j.length, j.demandMB, c.fs.Cl.Eng.Now()-j.launched)
	c.inflightW--
	c.fs.activeWriteJobs--
	j.file.activeWriters--
	j.wake()
	if j.slot {
		c.activeBig--
	}
	// Every completion pumps: a greedy-lane job may be the last writer,
	// and the idle drain must still arm.
	c.pump()
	j.file = nil
	j.wake = nil
	j.slot = false
	c.freeJobs = append(c.freeJobs, j)
}

// WriteBusy reports whether any application write is queued or in
// flight on this node — the interleaved-write condition that lets the
// strided read-ahead defect strike (cache write-back drains do not
// count; they release, not consume, memory).
func (c *Client) WriteBusy() bool {
	return len(c.bigQ) > 0 || c.inflightW > 0 || c.absorbing > 0
}

// maybeDrain arms a delayed write-back of dirty cache. Lustre clients
// keep dirty pages until a flush timer or memory pressure forces
// write-back, so short barrier waits between phases do NOT clean the
// cache — the persistence that keeps memory pressure high across the
// MADbench W phase. The drain starts only after the flusher has been
// idle for DrainIdleDelaySec; any new write cancels it.
func (c *Client) maybeDrain() {
	if c.drain || c.drainArmed || c.activeBig > 0 || len(c.bigQ) > 0 || c.node.DirtyMB <= 0 {
		return
	}
	c.drainArmed = true
	gen := c.workGen
	delay := sim.Duration(c.fs.Cl.Prof.DrainIdleDelaySec)
	c.fs.Cl.Eng.After(delay, func() {
		c.drainArmed = false
		if c.workGen == gen && c.activeBig == 0 && !c.drain && len(c.bigQ) == 0 {
			c.startDrain()
			return
		}
		// The idle window was interrupted. If the interrupting write
		// has already completed, restart the idle timer now —
		// otherwise its completion pump would find drainArmed still
		// set and the drain would never re-arm.
		c.maybeDrain()
	})
}

// startDrain immediately writes back one chunk of dirty cache.
func (c *Client) startDrain() {
	if c.drain || c.node.DirtyMB <= 0 {
		return
	}
	chunk := minf(c.node.DirtyMB, c.fs.Cl.Prof.DrainChunkMB)
	c.fs.stats.DrainChunks++
	c.drain = true
	// At most one drain stream is in flight (guarded by c.drain), so a
	// single chunk field plus the pre-bound done closure suffices.
	c.drainChunk = chunk
	c.node.Port.Start(chunk, flownet.StreamOpts{Done: c.drainDoneFn})
}

func (c *Client) drainDone() {
	c.node.DirtyMB -= c.drainChunk
	if c.node.DirtyMB < 0 {
		c.node.DirtyMB = 0
	}
	c.drain = false
	// Keep draining until work arrives or the cache is clean.
	if c.activeBig == 0 && len(c.bigQ) == 0 {
		c.startDrain()
	}
}

// Fsync blocks until the node's cache holds no dirty data and no write
// jobs remain queued or in flight for this client. Unlike the idle
// drain, fsync forces immediate write-back.
func (c *Client) Fsync(p *sim.Proc) sim.Duration {
	start := p.Now()
	for c.node.DirtyMB > 0 || len(c.bigQ) > 0 || c.activeBig > 0 || c.drain {
		if !c.drain && c.activeBig == 0 && len(c.bigQ) == 0 {
			c.startDrain()
		}
		p.Sleep(0.01)
	}
	return p.Now() - start
}
