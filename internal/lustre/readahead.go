package lustre

import (
	"math"

	"ensembleio/internal/flownet"
	"ensembleio/internal/sim"
)

// ReadState is the per-open-file read-ahead state machine kept by the
// client. It mirrors the Lustre behaviour isolated in §IV-C of the
// paper:
//
//   - Consecutive reads separated by a constant stride are recognized
//     as a strided pattern on the stride's third appearance; from the
//     fourth read onward the client applies an enlarged strided
//     read-ahead window.
//   - Defect: while sibling tasks' writes are in flight on the node,
//     dirty pages exhaust client memory; the enlarged-window
//     bookkeeping then miscomputes and the read degenerates to
//     page-sized (4 kB) RPCs. The degradation strikes mid-read, as
//     soon as interleaved writing begins, and is sticky for the rest
//     of the read; it worsens with every strided read (the window
//     state compounds), producing the progressive deterioration of
//     Figure 5(a). Reads that complete before any sibling write
//     starts stay fast — the fast initial segments of the Fig. 5(a)
//     CDFs.
//   - The patch (Profile.PatchStridedReadahead) removes strided
//     detection entirely, exactly as the production fix did.
type ReadState struct {
	started      bool
	lastOffset   int64
	lastEnd      int64
	lastStride   int64
	strideRepeat int
	severity     float64 // pathology multiplier; grows per strided read
}

// NewReadState returns the state for a freshly opened file.
func NewReadState() *ReadState { return &ReadState{severity: 1} }

// StridedActive reports whether the enlarged strided window is in
// effect (the stride has been seen at least three times).
func (rs *ReadState) StridedActive() bool { return rs.strideRepeat >= 3 }

// observe updates pattern detection for a read at [offset, offset+length).
func (rs *ReadState) observe(offset, length int64) {
	if rs.started && offset != rs.lastEnd {
		stride := offset - rs.lastOffset
		if stride != 0 && stride == rs.lastStride {
			rs.strideRepeat++
		} else {
			rs.lastStride = stride
			rs.strideRepeat = 1
		}
	}
	rs.started = true
	rs.lastOffset = offset
	rs.lastEnd = offset + length
}

// Read performs one POSIX-level read and returns the call duration.
// The rs state must belong to this (client, open file) pair.
//
// The read is served as ReadChunks successive segments so the strided
// defect can strike mid-read: before each segment the client checks
// whether writes are in flight on the node; if so — and the strided
// window is armed and the patch is absent — this and every later
// segment of the call degenerate to page-sized reads.
func (c *Client) Read(p *sim.Proc, f *File, rs *ReadState, offset, length int64) sim.Duration {
	prof := c.fs.Cl.Prof
	rs.observe(offset, length)
	start := p.Now()

	chunks := prof.ReadChunks
	if chunks <= 0 {
		chunks = 1
	}
	demand := mb(length) * c.fs.Cl.ServiceNoise()
	per := demand / float64(chunks)
	luck := c.fs.Cl.StreamLuck()
	if !math.IsInf(luck, 1) {
		c.fs.stats.LuckCapped++
	}
	normalCap := minf(prof.ReadCapMBps, luck)
	c.fs.stats.ReadCalls++
	c.fs.stats.ReadMB += demand
	if tu := c.fs.tenantUsageFor(c.node.ID); tu != nil {
		tu.ReadCalls++
		tu.ReadMB += demand
	}

	pathological := false
	for i := 0; i < chunks; i++ {
		capMBps := normalCap
		if !pathological &&
			!prof.PatchStridedReadahead &&
			rs.StridedActive() &&
			c.WriteBusy() {
			pathological = true
			c.fs.stats.PathologicalReads++
			c.fs.telPathology.Inc()
			if c.fs.OnPathology != nil {
				c.fs.OnPathology(c.node.ID, p.Now(), c.node.DirtyMB)
			}
		}
		if pathological {
			capMBps = prof.PathologyMBps / rs.severity
			if capMBps < prof.PathologyFloorMBps {
				capMBps = prof.PathologyFloorMBps
			}
		}
		// Degraded-OST ceilings are evaluated per chunk, so a stall
		// window opening mid-call slows the remaining segments only —
		// the within-call onset behind the flaky-OST signature.
		capMBps = minf(capMBps, c.fs.ostCapMBps(f, offset, length, p.Now()))
		c.node.Port.Transfer(p, per, flownet.StreamOpts{RateCap: capMBps})
	}
	if pathological {
		if grow := prof.PathologySeverityGrow; grow > 1 {
			rs.severity *= grow
		}
	}
	dur := p.Now() - start
	c.fs.noteOSTService(c.node.ID, f, offset, length, demand, dur)
	return dur
}
