// Package lustre simulates the behaviourally relevant parts of a
// Lustre-like striped parallel file system: a striped object store
// whose aggregate bandwidth is shared through the cluster fabric, a
// per-node client with write-back caching and a stream-scheduling
// flusher, an extent-lock contention model for shared-file writes, a
// metadata path that serializes small operations, and a read-ahead
// state machine that includes the strided-detection defect isolated in
// §IV of the paper (and the patch that removes it).
package lustre

import "math"

// Layout describes the striping of a file. StripeBytes is the stripe
// (and RPC) size; Count the number of OSTs the file is striped over.
// OSTOffset is the index of the OST holding stripe 0 (Lustre's
// starting-index assignment): stripe i lives on OST
// (OSTOffset + i mod Count) mod totalOSTs.
type Layout struct {
	StripeBytes int64
	Count       int
	OSTOffset   int
}

// ForEachOST calls fn once per distinct OST serving the extent
// [offset, offset+length), in ascending stripe-slot order, with the
// fraction of the extent's stripes that live on that OST. totalOSTs is
// the file system's OST population; a Count of 0 (or one exceeding the
// population) stripes over all OSTs.
func (l Layout) ForEachOST(offset, length int64, totalOSTs int, fn func(ost int, frac float64)) {
	l.ForEachOSTBuf(nil, offset, length, totalOSTs, fn)
}

// ForEachOSTBuf is ForEachOST with a caller-provided scratch buffer for
// the per-slot stripe counts, letting hot callers (the FS accounting
// paths run once per completed stream) amortize the allocation. It
// returns the possibly-grown buffer for reuse; the contents are
// meaningless afterwards.
func (l Layout) ForEachOSTBuf(buf []int64, offset, length int64, totalOSTs int, fn func(ost int, frac float64)) []int64 {
	if length <= 0 || totalOSTs <= 0 {
		return buf
	}
	count := l.Count
	if count <= 0 || count > totalOSTs {
		count = totalOSTs
	}
	if l.StripeBytes <= 0 || count == 1 {
		fn(l.OSTOffset%totalOSTs, 1)
		return buf
	}
	first := offset / l.StripeBytes
	last := (offset + length - 1) / l.StripeBytes
	n := last - first + 1
	if n >= int64(count) {
		// Every stripe slot is touched; the round-robin split is even
		// to within one stripe.
		for s := 0; s < count; s++ {
			fn((l.OSTOffset+s)%totalOSTs, 1/float64(count))
		}
		return buf
	}
	// Fewer stripes than slots: accumulate per-slot counts (slots may
	// wrap), then report in ascending slot order.
	if cap(buf) < count {
		buf = make([]int64, count)
	}
	counts := buf[:count]
	for i := range counts {
		counts[i] = 0
	}
	for i := int64(0); i < n; i++ {
		counts[(first+i)%int64(count)]++
	}
	for s, c := range counts {
		if c > 0 {
			fn((l.OSTOffset+s)%totalOSTs, float64(c)/float64(n))
		}
	}
	return buf
}

// Aligned reports whether a write of length bytes at the given offset
// is stripe-aligned: it starts on a stripe boundary and occupies whole
// stripes. Aligned writes map to full-stripe RPCs that never share an
// extent lock with a neighbouring client's region.
func (l Layout) Aligned(offset, length int64) bool {
	if l.StripeBytes <= 0 {
		return true
	}
	return offset%l.StripeBytes == 0 && length%l.StripeBytes == 0
}

// RPCs returns the number of stripe-sized RPCs needed to move length
// bytes starting at offset, counting partial leading/trailing stripes.
func (l Layout) RPCs(offset, length int64) int {
	if length <= 0 {
		return 0
	}
	if l.StripeBytes <= 0 {
		return 1
	}
	first := offset / l.StripeBytes
	last := (offset + length - 1) / l.StripeBytes
	return int(last - first + 1)
}

// PartialRPCs counts the partial-stripe RPCs of the extent (0, 1 or
// 2: a misaligned leading edge and/or a misaligned trailing edge).
func (l Layout) PartialRPCs(offset, length int64) int {
	if length <= 0 || l.StripeBytes <= 0 {
		return 0
	}
	n := l.RPCs(offset, length)
	partial := 0
	if offset%l.StripeBytes != 0 {
		partial++
	}
	if (offset+length)%l.StripeBytes != 0 {
		partial++
	}
	if partial > n {
		partial = n
	}
	return partial
}

// PartialRPCFraction returns the fraction of the RPCs for this extent
// that are partial-stripe (carry less than a full stripe of payload).
func (l Layout) PartialRPCFraction(offset, length int64) float64 {
	n := l.RPCs(offset, length)
	if n == 0 {
		return 0
	}
	partial := 0
	if offset%l.StripeBytes != 0 {
		partial++
	}
	if (offset+length)%l.StripeBytes != 0 {
		end := (offset + length - 1) / l.StripeBytes
		start := offset / l.StripeBytes
		// Only count the trailing stripe separately when it is a
		// different stripe from the leading one.
		if end != start || offset%l.StripeBytes == 0 {
			partial++
		}
	}
	if partial > n {
		partial = n
	}
	return float64(partial) / float64(n)
}

// mb converts bytes to megabytes (10^6-based MB to match the paper's
// MB/s reporting).
func mb(bytes int64) float64 { return float64(bytes) / 1e6 }

func minf(a, b float64) float64 { return math.Min(a, b) }
