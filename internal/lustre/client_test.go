package lustre

import (
	"math"
	"sort"
	"testing"

	"ensembleio/internal/cluster"
	"ensembleio/internal/sim"
)

// quietProfile returns a Franklin-like profile with all stochastic
// behaviour disabled so durations are exactly predictable.
func quietProfile() cluster.Profile {
	p := cluster.Franklin()
	p.NoiseSigma = 0
	p.StragglerProb = 0
	p.BackgroundMeanMBps = 0
	p.ConflictProbPerWriterPerOST = 0
	p.Quantum = 0.005
	return p
}

func run4Writers(t *testing.T, prof cluster.Profile, sizeMB float64) []float64 {
	t.Helper()
	eng := sim.NewEngine()
	cl := cluster.New(eng, prof, 1, 42)
	fs := NewFS(cl)
	f := fs.Create("/scratch/data")
	c := fs.ClientFor(cl.Nodes[0])
	durs := make([]float64, 4)
	for i := 0; i < 4; i++ {
		idx := i
		eng.Spawn("task", func(p *sim.Proc) {
			off := int64(idx) * int64(sizeMB*1e6)
			durs[idx] = float64(c.Write(p, f, off, int64(sizeMB*1e6)))
		})
	}
	eng.Run()
	return durs
}

func TestFlusherSerializedEpochsProduceHarmonics(t *testing.T) {
	prof := quietProfile()
	prof.SlotWeights = [3]float64{1, 0, 0} // always one stream per epoch
	prof.DirtyLimitMB = 0                  // no caching: pure streaming
	prof.AggregateMBps = 100
	prof.OSTs = 1
	prof.OSTServiceMBps = 100
	prof.NodeLinkMBps = 0
	durs := run4Writers(t, prof, 100) // 100 MB each at 100 MB/s exclusive
	sort.Float64s(durs)
	want := []float64{1, 2, 3, 4}
	for i, w := range want {
		if math.Abs(durs[i]-w) > 0.1 {
			t.Errorf("sorted duration[%d] = %.3f, want ~%.0f (serialized epochs)", i, durs[i], w)
		}
	}
}

func TestFlusherFairShareSingleMode(t *testing.T) {
	prof := quietProfile()
	prof.SlotWeights = [3]float64{0, 0, 1} // always admit all
	prof.DirtyLimitMB = 0
	prof.AggregateMBps = 100
	prof.OSTs = 1
	prof.OSTServiceMBps = 100
	prof.NodeLinkMBps = 0
	durs := run4Writers(t, prof, 100)
	for i, d := range durs {
		if math.Abs(d-4) > 0.1 {
			t.Errorf("duration[%d] = %.3f, want ~4 (fair share)", i, d)
		}
	}
}

func TestFlusherPairEpochs(t *testing.T) {
	prof := quietProfile()
	prof.SlotWeights = [3]float64{0, 1, 0} // pairs
	prof.DirtyLimitMB = 0
	prof.AggregateMBps = 100
	prof.OSTs = 1
	prof.OSTServiceMBps = 100
	prof.NodeLinkMBps = 0
	durs := run4Writers(t, prof, 100)
	sort.Float64s(durs)
	want := []float64{2, 2, 4, 4}
	for i, w := range want {
		if math.Abs(durs[i]-w) > 0.15 {
			t.Errorf("sorted duration[%d] = %.3f, want ~%.0f (pair epochs)", i, durs[i], w)
		}
	}
}

func TestCacheAbsorptionIsFastAndRaisesDirty(t *testing.T) {
	prof := quietProfile()
	eng := sim.NewEngine()
	cl := cluster.New(eng, prof, 1, 1)
	fs := NewFS(cl)
	f := fs.Create("/scratch/x")
	c := fs.ClientFor(cl.Nodes[0])
	var dur sim.Duration
	eng.Spawn("w", func(p *sim.Proc) {
		dur = c.Write(p, f, 0, 64e6) // 64 MB fits in the 256 MB dirty budget
	})
	eng.Run()
	wantAbsorb := 64.0 / prof.AbsorbMBps
	if math.Abs(float64(dur)-wantAbsorb) > 0.02 {
		t.Errorf("cached write took %v, want ~%.3fs (absorb only)", dur, wantAbsorb)
	}
	if cl.Nodes[0].DirtyMB < 1 {
		t.Errorf("dirty = %v MB after absorbed write, want > 0", cl.Nodes[0].DirtyMB)
	}
	if f.Size != 64e6 {
		t.Errorf("file size %d, want 64e6", f.Size)
	}
}

func TestSmallWritesBypassCacheAndSlots(t *testing.T) {
	prof := quietProfile()
	prof.AggregateMBps = 100
	prof.OSTs = 1
	prof.OSTServiceMBps = 100
	prof.NodeLinkMBps = 0
	prof.LockCapMBps = 1e9 // no lock cap effect
	eng := sim.NewEngine()
	cl := cluster.New(eng, prof, 1, 1)
	fs := NewFS(cl)
	f := fs.Create("/scratch/x")
	c := fs.ClientFor(cl.Nodes[0])
	var dur sim.Duration
	eng.Spawn("w", func(p *sim.Proc) {
		dur = c.Write(p, f, 0, int64(2e6)) // 2 MB < CacheBypassBelowMB
	})
	eng.Run()
	if cl.Nodes[0].DirtyMB != 0 {
		t.Errorf("small write dirtied the cache: %v MB", cl.Nodes[0].DirtyMB)
	}
	if float64(dur) < 2.0/100-0.001 {
		t.Errorf("small write duration %v, want at least transfer time 0.02s", dur)
	}
}

func TestFsyncDrainsDirty(t *testing.T) {
	prof := quietProfile()
	eng := sim.NewEngine()
	cl := cluster.New(eng, prof, 1, 1)
	fs := NewFS(cl)
	f := fs.Create("/scratch/x")
	c := fs.ClientFor(cl.Nodes[0])
	eng.Spawn("w", func(p *sim.Proc) {
		c.Write(p, f, 0, 128e6)
		if cl.Nodes[0].DirtyMB == 0 {
			t.Error("expected dirty data before fsync")
		}
		c.Fsync(p)
		if cl.Nodes[0].DirtyMB != 0 {
			t.Errorf("dirty = %v MB after fsync, want 0", cl.Nodes[0].DirtyMB)
		}
	})
	eng.Run()
}

func TestUnalignedSharedWritesSlowerThanAligned(t *testing.T) {
	prof := quietProfile()
	// Strong conflict exposure so the unaligned lane's stalls dominate.
	prof.ConflictProbPerWriterPerOST = 0.3
	prof.ConflictProbMax = 0.3
	prof.ConflictDelayLoSec = 0.5
	prof.ConflictDelayHiSec = 2
	prof.LockCapMBps = 20 // make the lock cap, not the fabric, dominate
	prof.Quantum = 0.001
	measure := func(aligned bool) float64 {
		eng := sim.NewEngine()
		cl := cluster.New(eng, prof, 8, 99)
		fs := NewFS(cl)
		f := fs.Create("/scratch/shared")
		total := 0.0
		for rank := 0; rank < 32; rank++ {
			node := cl.NodeForTask(rank)
			c := fs.ClientFor(node)
			r := rank
			eng.Spawn("t", func(p *sim.Proc) {
				var off, size int64
				if aligned {
					size = 2e6 // two whole (decimal-MB) stripes
					off = int64(r) * size
				} else {
					size = 1600000
					off = int64(r) * size
				}
				for i := 0; i < 4; i++ {
					total += float64(c.Write(p, f, off, size))
				}
			})
		}
		eng.Run()
		return total
	}
	al, un := measure(true), measure(false)
	if un <= al*1.2 {
		t.Errorf("unaligned total %.2fs not sufficiently slower than aligned %.2fs", un, al)
	}
}

func TestMDSOpsSerialize(t *testing.T) {
	prof := quietProfile()
	prof.MDSConcurrency = 1 // single service lane: ops fully serialize
	eng := sim.NewEngine()
	cl := cluster.New(eng, prof, 2, 1)
	fs := NewFS(cl)
	var solo sim.Duration
	eng.Spawn("a", func(p *sim.Proc) { solo = fs.MDSOp(p, 2048) })
	eng.Run()

	eng2 := sim.NewEngine()
	cl2 := cluster.New(eng2, prof, 2, 1)
	fs2 := NewFS(cl2)
	var maxEnd sim.Time
	for i := 0; i < 8; i++ {
		eng2.Spawn("m", func(p *sim.Proc) {
			fs2.MDSOp(p, 2048)
			if p.Now() > maxEnd {
				maxEnd = p.Now()
			}
		})
	}
	eng2.Run()
	if float64(maxEnd) < 6*float64(solo) {
		t.Errorf("8 concurrent MDS ops finished in %v; expected serialization (~8x %v)", maxEnd, solo)
	}
}

func TestMDSConcurrencyOverlapsIndependentClients(t *testing.T) {
	prof := quietProfile() // default concurrency 16
	eng := sim.NewEngine()
	cl := cluster.New(eng, prof, 2, 1)
	fs := NewFS(cl)
	var maxEnd sim.Time
	var solo sim.Duration
	eng.Spawn("solo", func(p *sim.Proc) { solo = fs.MDSOp(p, 0) })
	eng.Run()

	eng2 := sim.NewEngine()
	cl2 := cluster.New(eng2, prof, 2, 1)
	fs2 := NewFS(cl2)
	for i := 0; i < 8; i++ {
		eng2.Spawn("m", func(p *sim.Proc) {
			fs2.MDSOp(p, 0)
			if p.Now() > maxEnd {
				maxEnd = p.Now()
			}
		})
	}
	eng2.Run()
	// 8 ops within the 16-wide service window overlap: total well under
	// 8x a solo op.
	if float64(maxEnd) > 4*float64(solo) {
		t.Errorf("8 ops took %v with concurrency 16; want overlap (solo %v)", maxEnd, solo)
	}
}

func TestWriteCapContentionScalesWithWriters(t *testing.T) {
	prof := quietProfile()
	eng := sim.NewEngine()
	cl := cluster.New(eng, prof, 1, 1)
	fs := NewFS(cl)
	f := fs.Create("/scratch/shared")
	f.activeWriters = 80
	capFew := fs.writeCapMBps(f, 1.6, true)
	f.activeWriters = 10240
	capMany := fs.writeCapMBps(f, 1.6, true)
	if capMany >= capFew/50 {
		t.Errorf("cap with 10240 writers %.3f vs 80 writers %.3f: want >50x separation", capMany, capFew)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	prof := quietProfile()
	prof.NoiseSigma = 0.2 // determinism must hold even with noise on
	a := run4Writers(t, prof, 100)
	b := run4Writers(t, prof, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different durations: %v vs %v", a, b)
		}
	}
}

func TestStatsCounters(t *testing.T) {
	prof := quietProfile()
	eng := sim.NewEngine()
	cl := cluster.New(eng, prof, 1, 1)
	fs := NewFS(cl)
	f := fs.Create("/scratch/x")
	eng.Spawn("t", func(p *sim.Proc) {
		c := fs.ClientFor(cl.Nodes[0])
		c.Write(p, f, 0, 400e6)          // absorb + sync job
		fs.SmallWrite(p, f, 400e6, 2048) // MDS path
		rs := NewReadState()
		c.Read(p, f, rs, 0, 100e6)
	})
	eng.Run()
	s := fs.Stats()
	if s.WriteJobs != 1 {
		t.Errorf("WriteJobs = %d, want 1", s.WriteJobs)
	}
	if s.AbsorbedMB <= 0 {
		t.Errorf("AbsorbedMB = %v, want > 0", s.AbsorbedMB)
	}
	if s.WriteMB < 300 || s.WriteMB > 400 {
		t.Errorf("WriteMB = %v, want sync remainder ~336", s.WriteMB)
	}
	if s.SmallWrites != 1 || s.MDSOps != 1 {
		t.Errorf("small=%d mds=%d, want 1/1", s.SmallWrites, s.MDSOps)
	}
	if s.ReadCalls != 1 || s.ReadMB < 99 {
		t.Errorf("reads=%d MB=%v, want 1 call ~100MB", s.ReadCalls, s.ReadMB)
	}
	if s.PathologicalReads != 0 || s.Conflicts != 0 {
		t.Errorf("unexpected contention events: %+v", s)
	}
	if len(s.String()) == 0 {
		t.Error("empty stats string")
	}
}
