package lustre

import (
	"testing"

	"ensembleio/internal/cluster"
	"ensembleio/internal/sim"
)

func TestStrideDetectionThirdAppearance(t *testing.T) {
	rs := NewReadState()
	size, stride := int64(1e6), int64(300e6)
	for i := 0; i < 8; i++ {
		rs.observe(int64(i)*stride, size)
		// Strides appear between reads: after read 4 the stride has
		// been seen 3 times and the enlarged window applies.
		wantActive := i >= 3
		if got := rs.StridedActive(); got != wantActive {
			t.Errorf("after read %d: StridedActive = %v, want %v", i+1, got, wantActive)
		}
	}
}

func TestSequentialReadsDoNotTriggerStride(t *testing.T) {
	rs := NewReadState()
	size := int64(1e6)
	for i := 0; i < 10; i++ {
		rs.observe(int64(i)*size, size) // perfectly sequential
	}
	if rs.StridedActive() {
		t.Error("sequential reads must not be classified as strided")
	}
}

func TestChangingStrideResetsDetection(t *testing.T) {
	rs := NewReadState()
	rs.observe(0, 1e6)
	rs.observe(100e6, 1e6)
	rs.observe(200e6, 1e6)
	rs.observe(350e6, 1e6) // different stride
	if rs.StridedActive() {
		t.Error("stride change must reset detection")
	}
}

// readSeq performs n strided reads on one client. If interleave is
// true, a sibling task keeps issuing writes so the node is write-busy
// during the reads (the MADbench W-phase condition).
func readSeq(t *testing.T, prof cluster.Profile, n int, interleave bool) []float64 {
	t.Helper()
	eng := sim.NewEngine()
	cl := cluster.New(eng, prof, 1, 7)
	fs := NewFS(cl)
	f := fs.Create("/scratch/matrices")
	f.Size = 1 << 62 // pretend the data exists
	c := fs.ClientFor(cl.Nodes[0])
	durs := make([]float64, n)
	done := false
	eng.Spawn("reader", func(p *sim.Proc) {
		rs := NewReadState()
		for i := 0; i < n; i++ {
			durs[i] = float64(c.Read(p, f, rs, int64(i)*301e6, 300e6))
		}
		done = true
	})
	if interleave {
		eng.Spawn("writer", func(p *sim.Proc) {
			off := int64(1 << 50)
			for !done {
				c.Write(p, f, off, 64e6)
				off += 64e6
				p.Sleep(0.2)
			}
		})
	}
	eng.Run()
	return durs
}

func pathologyProfile() cluster.Profile {
	prof := quietProfile()
	prof.AggregateMBps = 4000
	prof.OSTs = 12
	prof.OSTServiceMBps = 350
	prof.NodeLinkMBps = 0
	prof.DirtyLimitMB = 0 // writes fully synchronous: node stays write-busy
	return prof
}

func TestPathologyHitsStridedReadsDuringWrites(t *testing.T) {
	durs := readSeq(t, pathologyProfile(), 8, true)
	// Reads 1-3: the strided window is not armed yet; fast even while
	// writes are in flight.
	for i := 0; i < 3; i++ {
		if durs[i] > 5 {
			t.Errorf("read %d took %.1fs, want fast before strided window arms", i+1, durs[i])
		}
	}
	// Reads 4-8: pathological. Exact durations depend on when the
	// interleaved write strikes within each read, so progression is
	// asserted on the growing severity scale rather than per read.
	for i := 3; i < 8; i++ {
		if durs[i] < 10 {
			t.Errorf("read %d took %.1fs, want pathological (>10s)", i+1, durs[i])
		}
	}
	early := maxOf(durs[3], durs[4])
	late := maxOf(durs[5], maxOf(durs[6], durs[7]))
	if late < 2*early {
		t.Errorf("late reads (max %.0fs) not clearly worse than early pathological reads (max %.0fs)", late, early)
	}
}

func TestNoPathologyWithoutInterleavedWrites(t *testing.T) {
	durs := readSeq(t, pathologyProfile(), 8, false)
	for i, d := range durs {
		if d > 5 {
			t.Errorf("read %d took %.1fs with no writes in flight, want fast", i+1, d)
		}
	}
}

func TestPatchRemovesPathology(t *testing.T) {
	prof := pathologyProfile()
	prof.PatchStridedReadahead = true
	durs := readSeq(t, prof, 8, true)
	for i, d := range durs {
		if d > 6 {
			t.Errorf("patched read %d took %.1fs, want fast", i+1, d)
		}
	}
}

func TestPathologyFloorBoundsSeverity(t *testing.T) {
	prof := pathologyProfile()
	prof.PathologySeverityGrow = 10 // explode severity quickly
	prof.PathologyFloorMBps = 2
	durs := readSeq(t, prof, 8, true)
	// Even at absurd severity the rate floor bounds each read at
	// ~300MB / 2MB/s = 150s (plus the clean prefix).
	for i, d := range durs {
		if d > 200 {
			t.Errorf("read %d took %.0fs, floor should bound it near 150s", i+1, d)
		}
	}
}

func TestWriteBusyReflectsQueue(t *testing.T) {
	prof := quietProfile()
	eng := sim.NewEngine()
	cl := cluster.New(eng, prof, 1, 1)
	fs := NewFS(cl)
	f := fs.Create("/x")
	c := fs.ClientFor(cl.Nodes[0])
	if c.WriteBusy() {
		t.Error("fresh client reports write-busy")
	}
	eng.Spawn("w", func(p *sim.Proc) {
		c.Write(p, f, 0, 400e6)
	})
	eng.Spawn("check", func(p *sim.Proc) {
		p.Sleep(0.5)
		if !c.WriteBusy() {
			t.Error("client not write-busy during a 400MB synchronous write")
		}
	})
	eng.Run()
	if c.WriteBusy() {
		t.Error("client still write-busy after the run drained")
	}
}

func maxOf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
