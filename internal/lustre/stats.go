package lustre

import "fmt"

// Stats is a snapshot of file-system-wide counters: what the servers
// saw, as opposed to what the application traced. Comparing the two
// views (e.g. pathological reads vs slow trace events) is how the
// paper's Lustre engineers confirmed the read-ahead diagnosis.
type Stats struct {
	// Data-path traffic.
	WriteJobs   int64   // write jobs dispatched (sync portions)
	WriteMB     float64 // megabytes moved by write jobs
	ReadCalls   int64   // read calls served
	ReadMB      float64 // megabytes moved by reads
	AbsorbedMB  float64 // megabytes absorbed into page caches
	DrainChunks int64   // background write-back chunks

	// Contention events.
	Conflicts         int64 // extent-lock conflict stalls
	PathologicalReads int64 // reads that degenerated to page RPCs
	LuckCapped        int64 // transfers pinned to a congested-OST rate

	// Metadata path.
	MDSOps      int64 // serialized metadata operations
	SmallWrites int64 // sub-threshold writes routed via the MDS
	MDSSlowOps  int64 // small writes that hit the lock-revocation stall

	// PerOST is the server-side view per object storage target: each
	// completed data stream's bytes and service time are attributed to
	// the OSTs its extent touches, weighted by stripe share. A
	// straggling OST shows up here as a depressed mean service rate —
	// the cross-check the straggler-OST diagnosis uses.
	PerOST []OSTStat
}

// OSTStat aggregates one OST's attributed service observations.
type OSTStat struct {
	Streams int64   // completed streams that touched this OST
	MB      float64 // megabytes attributed (stripe-share weighted)
	Seconds float64 // stream seconds attributed (stripe-share weighted)
}

// MeanMBps is the OST's byte-weighted mean per-stream service rate.
func (o OSTStat) MeanMBps() float64 {
	if o.Seconds <= 0 {
		return 0
	}
	return o.MB / o.Seconds
}

func (s Stats) String() string {
	return fmt.Sprintf(
		"writes=%d (%.0f MB, %.0f MB absorbed, %d drains) reads=%d (%.0f MB) conflicts=%d patho=%d luck=%d mds=%d small=%d slow=%d",
		s.WriteJobs, s.WriteMB, s.AbsorbedMB, s.DrainChunks,
		s.ReadCalls, s.ReadMB,
		s.Conflicts, s.PathologicalReads, s.LuckCapped,
		s.MDSOps, s.SmallWrites, s.MDSSlowOps)
}

// Stats returns the current counter snapshot. The per-OST slice is
// copied so the snapshot stays stable while the simulation advances.
func (fs *FS) Stats() Stats {
	s := fs.stats
	s.PerOST = append([]OSTStat(nil), fs.stats.PerOST...)
	return s
}
