package lustre

import "fmt"

// Stats is a snapshot of file-system-wide counters: what the servers
// saw, as opposed to what the application traced. Comparing the two
// views (e.g. pathological reads vs slow trace events) is how the
// paper's Lustre engineers confirmed the read-ahead diagnosis.
type Stats struct {
	// Data-path traffic.
	WriteJobs   int64   // write jobs dispatched (sync portions)
	WriteMB     float64 // megabytes moved by write jobs
	ReadCalls   int64   // read calls served
	ReadMB      float64 // megabytes moved by reads
	AbsorbedMB  float64 // megabytes absorbed into page caches
	DrainChunks int64   // background write-back chunks

	// Contention events.
	Conflicts         int64 // extent-lock conflict stalls
	PathologicalReads int64 // reads that degenerated to page RPCs
	LuckCapped        int64 // transfers pinned to a congested-OST rate

	// Metadata path.
	MDSOps      int64 // serialized metadata operations
	SmallWrites int64 // sub-threshold writes routed via the MDS
	MDSSlowOps  int64 // small writes that hit the lock-revocation stall
}

func (s Stats) String() string {
	return fmt.Sprintf(
		"writes=%d (%.0f MB, %.0f MB absorbed, %d drains) reads=%d (%.0f MB) conflicts=%d patho=%d luck=%d mds=%d small=%d slow=%d",
		s.WriteJobs, s.WriteMB, s.AbsorbedMB, s.DrainChunks,
		s.ReadCalls, s.ReadMB,
		s.Conflicts, s.PathologicalReads, s.LuckCapped,
		s.MDSOps, s.SmallWrites, s.MDSSlowOps)
}

// Stats returns the current counter snapshot.
func (fs *FS) Stats() Stats { return fs.stats }
