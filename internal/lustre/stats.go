package lustre

import "fmt"

// Stats is a snapshot of file-system-wide counters: what the servers
// saw, as opposed to what the application traced. Comparing the two
// views (e.g. pathological reads vs slow trace events) is how the
// paper's Lustre engineers confirmed the read-ahead diagnosis.
type Stats struct {
	// Data-path traffic.
	WriteJobs   int64   // write jobs dispatched (sync portions)
	WriteMB     float64 // megabytes moved by write jobs
	ReadCalls   int64   // read calls served
	ReadMB      float64 // megabytes moved by reads
	AbsorbedMB  float64 // megabytes absorbed into page caches
	DrainChunks int64   // background write-back chunks

	// Contention events.
	Conflicts         int64 // extent-lock conflict stalls
	PathologicalReads int64 // reads that degenerated to page RPCs
	LuckCapped        int64 // transfers pinned to a congested-OST rate

	// Metadata path.
	MDSOps      int64 // serialized metadata operations
	SmallWrites int64 // sub-threshold writes routed via the MDS
	MDSSlowOps  int64 // small writes that hit the lock-revocation stall

	// PerOST is the server-side view per object storage target: each
	// completed data stream's bytes and service time are attributed to
	// the OSTs its extent touches, weighted by stripe share. A
	// straggling OST shows up here as a depressed mean service rate —
	// the cross-check the straggler-OST diagnosis uses.
	PerOST []OSTStat
}

// OSTStat aggregates one OST's attributed service observations.
type OSTStat struct {
	Streams int64   // completed streams that touched this OST
	MB      float64 // megabytes attributed (stripe-share weighted)
	Seconds float64 // stream seconds attributed (stripe-share weighted)
}

// MeanMBps is the OST's byte-weighted mean per-stream service rate.
func (o OSTStat) MeanMBps() float64 {
	if o.Seconds <= 0 {
		return 0
	}
	return o.MB / o.Seconds
}

func (s Stats) String() string {
	return fmt.Sprintf(
		"writes=%d (%.0f MB, %.0f MB absorbed, %d drains) reads=%d (%.0f MB) conflicts=%d patho=%d luck=%d mds=%d small=%d slow=%d",
		s.WriteJobs, s.WriteMB, s.AbsorbedMB, s.DrainChunks,
		s.ReadCalls, s.ReadMB,
		s.Conflicts, s.PathologicalReads, s.LuckCapped,
		s.MDSOps, s.SmallWrites, s.MDSSlowOps)
}

// Stats returns the current counter snapshot. The per-OST slice is
// copied so the snapshot stays stable while the simulation advances.
func (fs *FS) Stats() Stats {
	s := fs.stats
	s.PerOST = append([]OSTStat(nil), fs.stats.PerOST...)
	return s
}

// TenantUsage is one tenant's slice of the server-side view on a
// shared mount: the same data-path and per-OST attribution Stats keeps
// file-system-wide, restricted to streams issued from the tenant's
// node range. It is the LASSi-style per-application accounting the
// interference analysis consumes — which application moved how much
// through which OST, regardless of what it reported client-side.
type TenantUsage struct {
	WriteJobs int64   // write jobs dispatched from the tenant's nodes
	WriteMB   float64 // megabytes moved by those jobs (sync portions)
	ReadCalls int64   // read calls served to the tenant's nodes
	ReadMB    float64 // megabytes moved by those reads
	PerOST    []OSTStat
}

// RegisterTenant assigns the node-ID range [nodeBase, nodeBase+nNodes)
// to a new tenant and returns its index. Ranges must not overlap;
// nodes outside every registered range (and external injection nodes
// added later) stay unattributed. Call before the workload launches.
func (fs *FS) RegisterTenant(nodeBase, nNodes int) int {
	if nodeBase < 0 || nNodes <= 0 || nodeBase+nNodes > len(fs.Cl.Nodes) {
		panic(fmt.Sprintf("lustre: tenant node range [%d,%d) outside cluster of %d nodes",
			nodeBase, nodeBase+nNodes, len(fs.Cl.Nodes)))
	}
	if fs.tenantOf == nil {
		fs.tenantOf = make([]int, len(fs.Cl.Nodes))
		for i := range fs.tenantOf {
			fs.tenantOf[i] = -1
		}
	}
	idx := len(fs.tenantUsage)
	for n := nodeBase; n < nodeBase+nNodes; n++ {
		if fs.tenantOf[n] >= 0 {
			panic(fmt.Sprintf("lustre: node %d already assigned to tenant %d", n, fs.tenantOf[n]))
		}
		fs.tenantOf[n] = idx
	}
	fs.tenantUsage = append(fs.tenantUsage, TenantUsage{PerOST: make([]OSTStat, fs.Cl.Prof.OSTs)})
	return idx
}

// TenantUsage returns a copy of tenant t's usage snapshot.
func (fs *FS) TenantUsage(t int) TenantUsage {
	u := fs.tenantUsage[t]
	u.PerOST = append([]OSTStat(nil), u.PerOST...)
	return u
}

// tenantUsageFor resolves the accounting bucket for streams issued
// from the given node, or nil when the node is unattributed (solo
// runs, external injection nodes).
func (fs *FS) tenantUsageFor(nodeID int) *TenantUsage {
	if nodeID >= len(fs.tenantOf) {
		return nil
	}
	t := fs.tenantOf[nodeID]
	if t < 0 {
		return nil
	}
	return &fs.tenantUsage[t]
}
