package lustre

import (
	"testing"
	"testing/quick"
)

func TestAligned(t *testing.T) {
	l := Layout{StripeBytes: 1 << 20, Count: 48}
	cases := []struct {
		off, len int64
		want     bool
	}{
		{0, 1 << 20, true},
		{0, 2 << 20, true},
		{1 << 20, 1 << 20, true},
		{0, 1600000, false},       // 1.6 MB record: not whole stripes
		{1600000, 1600000, false}, // unaligned offset
		{2 << 20, 1 << 19, false}, // half-stripe length
		{512, 1 << 20, false},     // unaligned start
		{0, 0, true},
	}
	for _, tc := range cases {
		if got := l.Aligned(tc.off, tc.len); got != tc.want {
			t.Errorf("Aligned(%d,%d) = %v, want %v", tc.off, tc.len, got, tc.want)
		}
	}
}

func TestRPCs(t *testing.T) {
	l := Layout{StripeBytes: 1 << 20, Count: 48}
	cases := []struct {
		off, len int64
		want     int
	}{
		{0, 1 << 20, 1},
		{0, 2 << 20, 2},
		{512, 1 << 20, 2},     // straddles one boundary
		{1600000, 1600000, 3}, // 1.6 MB at 1.6 MB offset straddles
		{0, 1, 1},
		{0, 0, 0},
	}
	for _, tc := range cases {
		if got := l.RPCs(tc.off, tc.len); got != tc.want {
			t.Errorf("RPCs(%d,%d) = %d, want %d", tc.off, tc.len, got, tc.want)
		}
	}
}

func TestPartialRPCFraction(t *testing.T) {
	l := Layout{StripeBytes: 1 << 20, Count: 48}
	if f := l.PartialRPCFraction(0, 4<<20); f != 0 {
		t.Errorf("aligned write partial fraction %v, want 0", f)
	}
	if f := l.PartialRPCFraction(512, 4<<20); f <= 0 {
		t.Errorf("unaligned write partial fraction %v, want > 0", f)
	}
	if f := l.PartialRPCFraction(512, 1024); f != 1 {
		t.Errorf("tiny interior write partial fraction %v, want 1", f)
	}
}

// Property: RPC count is consistent with the extent size — never fewer
// than ceil(len/stripe), never more than that plus one.
func TestRPCsProperty(t *testing.T) {
	l := Layout{StripeBytes: 1 << 20, Count: 48}
	f := func(off uint32, length uint32) bool {
		o, n := int64(off), int64(length)
		if n == 0 {
			return l.RPCs(o, n) == 0
		}
		got := int64(l.RPCs(o, n))
		min := (n + l.StripeBytes - 1) / l.StripeBytes
		return got >= min && got <= min+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
