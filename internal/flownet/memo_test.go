package flownet

import (
	"math"
	"testing"

	"ensembleio/internal/sim"
)

// memoPhase starts perPort uniform streams on each port (all the same
// demand and weight, rateCap as given per stream index), drains the
// engine, and returns the phase's completion instant. Uniform streams
// finish together, so each phase costs exactly one water-fill.
func memoPhase(eng *sim.Engine, ports []*Port, perPort int, rateCap func(i int) float64) sim.Time {
	var done sim.Time
	i := 0
	for _, p := range ports {
		for s := 0; s < perPort; s++ {
			p.Start(100, StreamOpts{RateCap: rateCap(i), Done: func() {
				if t := eng.Now(); t > done {
					done = t
				}
			}})
			i++
		}
	}
	eng.Run()
	return done
}

// TestMemoHitsOnRepeatedPhases pins epoch memoization end to end: a
// repeated identical phase (same ports, same ordered stream caps and
// weights — the fingerprint; demands are irrelevant to the fill) is
// served from the cache, and the replayed allocation reproduces the
// cold phase's completion schedule to the bit.
func TestMemoHitsOnRepeatedPhases(t *testing.T) {
	eng := sim.NewEngine()
	fab := New(eng, Config{AggregateMBps: 5000, Quantum: 0.05})
	ports := make([]*Port, 4)
	for i := range ports {
		ports[i] = fab.NewPort(2000)
	}
	uncapped := func(int) float64 { return 0 }

	start1 := eng.Now()
	end1 := memoPhase(eng, ports, 8, uncapped)
	if hits, misses := fab.MemoHits(), fab.MemoMisses(); hits != 0 || misses != 1 {
		t.Fatalf("cold phase: hits=%d misses=%d, want 0/1", hits, misses)
	}
	start2 := eng.Now()
	end2 := memoPhase(eng, ports, 8, uncapped)
	if hits := fab.MemoHits(); hits != 1 {
		t.Fatalf("repeated phase: hits=%d, want 1 (fingerprint failed to match an identical epoch)", hits)
	}
	d1, d2 := end1-start1, end2-start2
	if math.Float64bits(float64(d1)) != math.Float64bits(float64(d2)) {
		t.Fatalf("memoized replay duration %v differs from cold run %v", d2, d1)
	}
}

// TestMemoPoisonedFingerprint is the negative control: a phase in
// which a single stream's rate cap differs by one ulp must not hit
// the cache — the fingerprint comparison is exact, so a near-miss
// epoch runs the full water-fill. The poisoned cap is non-binding
// (far above the fair share), so the recomputed allocation, and with
// it the completion schedule, still matches the clean phase bitwise —
// the cache declines the hit without changing physics.
func TestMemoPoisonedFingerprint(t *testing.T) {
	eng := sim.NewEngine()
	fab := New(eng, Config{AggregateMBps: 5000, Quantum: 0.05})
	ports := make([]*Port, 4)
	for i := range ports {
		ports[i] = fab.NewPort(2000)
	}
	const cap = 1000.0 // fair share is 156.25 MB/s; never binds
	clean := func(int) float64 { return cap }
	poisoned := func(i int) float64 {
		if i == 17 {
			return math.Nextafter(cap, 2*cap)
		}
		return cap
	}

	start1 := eng.Now()
	end1 := memoPhase(eng, ports, 8, clean)
	start2 := eng.Now()
	end2 := memoPhase(eng, ports, 8, poisoned)
	if hits, misses := fab.MemoHits(), fab.MemoMisses(); hits != 0 || misses != 2 {
		t.Fatalf("poisoned phase: hits=%d misses=%d, want 0/2 (a one-ulp fingerprint difference must miss)", hits, misses)
	}
	d1, d2 := end1-start1, end2-start2
	if math.Float64bits(float64(d1)) != math.Float64bits(float64(d2)) {
		t.Fatalf("poisoned phase duration %v differs from clean %v (the miss should recompute identical rates)", d2, d1)
	}
	// And the clean fingerprint is still cached: a third, clean phase
	// hits even after the poisoned epoch was stored in front of it.
	memoPhase(eng, ports, 8, clean)
	if hits := fab.MemoHits(); hits != 1 {
		t.Fatalf("clean phase after poison: hits=%d, want 1", hits)
	}
}

// TestMemoDisabledOnEventPath pins the escape hatch: with AnalyticOff
// the cache is never probed or filled, so both counters stay zero and
// the schedule still matches the analytic fabric bit for bit (the
// workload-level byte-identity suite covers the latter at scale).
func TestMemoDisabledOnEventPath(t *testing.T) {
	eng := sim.NewEngine()
	fab := New(eng, Config{AggregateMBps: 5000, Quantum: 0.05, AnalyticOff: true})
	ports := make([]*Port, 4)
	for i := range ports {
		ports[i] = fab.NewPort(2000)
	}
	uncapped := func(int) float64 { return 0 }
	memoPhase(eng, ports, 8, uncapped)
	memoPhase(eng, ports, 8, uncapped)
	if hits, misses := fab.MemoHits(), fab.MemoMisses(); hits != 0 || misses != 0 {
		t.Fatalf("event path touched the memo cache: hits=%d misses=%d", hits, misses)
	}
	if fab.Analytic() {
		t.Fatal("AnalyticOff fabric reports Analytic() == true")
	}
}
