package flownet

import (
	"testing"

	"ensembleio/internal/sim"
)

// benchFabric starts streams across ports and returns after the poke
// event has populated rates, leaving the fabric mid-run.
func benchFabric(ports, streamsPerPort int, stagger sim.Duration) (*sim.Engine, *Fabric) {
	eng := sim.NewEngine()
	fab := New(eng, Config{AggregateMBps: 10_000, Quantum: 0.05})
	for p := 0; p < ports; p++ {
		port := fab.NewPort(2000)
		for s := 0; s < streamsPerPort; s++ {
			demand := 100 + float64((p*streamsPerPort+s)%7)*25
			if stagger > 0 {
				at := sim.Time(p*streamsPerPort+s) * stagger
				eng.At(at, func() { port.Start(demand, StreamOpts{}) })
			} else {
				port.Start(demand, StreamOpts{})
			}
		}
	}
	return eng, fab
}

// BenchmarkFlownetRefresh measures the full refresh machinery —
// advance, completion, incremental recompute, and next-wake scheduling
// — by running stream populations to completion through the engine.
func BenchmarkFlownetRefresh(b *testing.B) {
	cases := []struct {
		name           string
		ports, perPort int
		stagger        sim.Duration
	}{
		// Steady: every stream joins at t=0, so after one recompute the
		// refreshes are completion-driven with long unchanged stretches.
		{"steady256", 32, 8, 0},
		// Churn: staggered joins force a membership change (and a
		// recompute) on nearly every refresh.
		{"churn256", 32, 8, 0.002},
		// Beyond exactThreshold: quantum batching, no exact min-scan.
		{"quantum1024", 64, 16, 0},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng, fab := benchFabric(c.ports, c.perPort, c.stagger)
				eng.Run()
				if fab.ActiveStreams() != 0 {
					b.Fatalf("%d streams still active", fab.ActiveStreams())
				}
			}
		})
	}
}

// BenchmarkFlownetRecompute isolates one two-level water-fill pass
// over a steady population (the cost the dirty flag now skips on
// unchanged-membership refreshes).
func BenchmarkFlownetRecompute(b *testing.B) {
	eng, fab := benchFabric(32, 8, 0)
	// Process the poke so every stream is rated and listed.
	eng.RunUntil(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fab.recompute()
	}
}
