package flownet

import (
	"testing"

	"ensembleio/internal/sim"
)

// benchFabric starts streams across ports and returns after the poke
// event has populated rates, leaving the fabric mid-run.
func benchFabric(ports, streamsPerPort int, stagger sim.Duration) (*sim.Engine, *Fabric) {
	eng := sim.NewEngine()
	fab := New(eng, Config{AggregateMBps: 10_000, Quantum: 0.05})
	for p := 0; p < ports; p++ {
		port := fab.NewPort(2000)
		for s := 0; s < streamsPerPort; s++ {
			demand := 100 + float64((p*streamsPerPort+s)%7)*25
			if stagger > 0 {
				at := sim.Time(p*streamsPerPort+s) * stagger
				eng.At(at, func() { port.Start(demand, StreamOpts{}) })
			} else {
				port.Start(demand, StreamOpts{})
			}
		}
	}
	return eng, fab
}

// BenchmarkFlownetRefresh measures the full refresh machinery —
// advance, completion, incremental recompute, and next-wake scheduling
// — by running stream populations to completion through the engine.
func BenchmarkFlownetRefresh(b *testing.B) {
	cases := []struct {
		name           string
		ports, perPort int
		stagger        sim.Duration
	}{
		// Steady: every stream joins at t=0, so after one recompute the
		// refreshes are completion-driven with long unchanged stretches.
		{"steady256", 32, 8, 0},
		// Churn: staggered joins force a membership change (and a
		// recompute) on nearly every refresh.
		{"churn256", 32, 8, 0.002},
		// Beyond exactThreshold: quantum batching, no exact min-scan.
		{"quantum1024", 64, 16, 0},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng, fab := benchFabric(c.ports, c.perPort, c.stagger)
				eng.Run()
				if fab.ActiveStreams() != 0 {
					b.Fatalf("%d streams still active", fab.ActiveStreams())
				}
			}
		})
	}
}

// BenchmarkFlownetRecompute isolates one two-level water-fill pass
// over a steady population (the cost the dirty flag now skips on
// unchanged-membership refreshes).
func BenchmarkFlownetRecompute(b *testing.B) {
	eng, fab := benchFabric(32, 8, 0)
	// Process the poke so every stream is rated and listed.
	eng.RunUntil(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fab.recompute(eng.Now())
	}
}

// benchFabricOff mirrors benchFabric with the analytic fast path
// disabled — the pure event path reference side of the ablation.
func benchFabricCfg(ports, streamsPerPort int, stagger sim.Duration, analyticOff bool) (*sim.Engine, *Fabric) {
	eng := sim.NewEngine()
	fab := New(eng, Config{AggregateMBps: 10_000, Quantum: 0.05, AnalyticOff: analyticOff})
	for p := 0; p < ports; p++ {
		port := fab.NewPort(2000)
		for s := 0; s < streamsPerPort; s++ {
			demand := 100 + float64((p*streamsPerPort+s)%7)*25
			if stagger > 0 {
				at := sim.Time(p*streamsPerPort+s) * stagger
				eng.At(at, func() { port.Start(demand, StreamOpts{}) })
			} else {
				port.Start(demand, StreamOpts{})
			}
		}
	}
	return eng, fab
}

// BenchmarkFastForward measures the analytic fast path against the
// pure event path on the stretches the tentpole targets. The two
// sides trade differently per regime: the calendar wins when
// refreshes vastly outnumber rate changes (poked10k — the workload
// regime, where every wake-up otherwise rescans the population for
// its minimum deadline), while the scan side is competitive when
// every recompute re-rates the whole population anyway (steady10k's
// completion clusters, churn10k's constant joins). The workload-level
// BenchmarkFastForward in the repo root shows the end-to-end ratio.
func BenchmarkFastForward(b *testing.B) {
	cases := []struct {
		name           string
		ports, perPort int
		stagger        sim.Duration
		analyticOff    bool
	}{
		{"steady10k/analytic", 250, 40, 0, false},
		{"steady10k/event", 250, 40, 0, true},
		{"churn10k/analytic", 250, 40, 0.0005, false},
		{"churn10k/event", 250, 40, 0.0005, true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng, fab := benchFabricCfg(c.ports, c.perPort, c.stagger, c.analyticOff)
				eng.Run()
				if fab.ActiveStreams() != 0 {
					b.Fatalf("%d streams still active", fab.ActiveStreams())
				}
			}
		})
	}
	// poked10k: a steady uniform 10k-stream stretch whose fabric is
	// poked by an external event train (the flownet face of lustre's
	// metadata and drain traffic). Rates never change between pokes,
	// so each refresh is pure next-wake computation: calendar peek on
	// the fast path, full population rescan on the event path.
	for _, off := range []bool{false, true} {
		name := "poked10k/analytic"
		if off {
			name = "poked10k/event"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine()
				fab := New(eng, Config{AggregateMBps: 10_000, Quantum: 0.05, AnalyticOff: off})
				for p := 0; p < 250; p++ {
					port := fab.NewPort(2000)
					for s := 0; s < 40; s++ {
						port.Start(10, StreamOpts{})
					}
				}
				for k := 1; k <= 1000; k++ {
					eng.At(sim.Time(k)*0.01, fab.poke)
				}
				eng.Run()
				if fab.ActiveStreams() != 0 {
					b.Fatalf("%d streams still active", fab.ActiveStreams())
				}
			}
		})
	}
	for _, off := range []bool{false, true} {
		name := "memoized/analytic"
		if off {
			name = "memoized/event"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine()
				fab := New(eng, Config{AggregateMBps: 5000, Quantum: 0.05, AnalyticOff: off})
				ports := make([]*Port, 80)
				for j := range ports {
					ports[j] = fab.NewPort(2000)
				}
				for phase := 0; phase < 8; phase++ {
					memoPhase(eng, ports, 8, func(int) float64 { return 0 })
				}
				if !off && fab.MemoHits() < 7 {
					b.Fatalf("memo cache missed repeated phases: %d hits", fab.MemoHits())
				}
			}
		})
	}
}
