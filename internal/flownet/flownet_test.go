package flownet

import (
	"math"
	"testing"
	"testing/quick"

	"ensembleio/internal/sim"
)

const q = 0.01 // fine quantum for accuracy tests

func newFab(t *testing.T, agg float64) (*sim.Engine, *Fabric) {
	t.Helper()
	eng := sim.NewEngine()
	return eng, New(eng, Config{AggregateMBps: agg, Quantum: q})
}

func TestSingleStreamDuration(t *testing.T) {
	eng, fab := newFab(t, 100)
	port := fab.NewPort(0)
	var dur sim.Duration
	eng.Spawn("w", func(p *sim.Proc) {
		dur = port.Transfer(p, 500, StreamOpts{}) // 500 MB at 100 MB/s
	})
	eng.Run()
	if math.Abs(float64(dur)-5.0) > 2*q {
		t.Errorf("duration %v, want ~5s", dur)
	}
}

func TestEqualSharing(t *testing.T) {
	eng, fab := newFab(t, 100)
	durs := make([]sim.Duration, 4)
	for i := 0; i < 4; i++ {
		port := fab.NewPort(0)
		idx := i
		eng.Spawn("w", func(p *sim.Proc) {
			durs[idx] = port.Transfer(p, 100, StreamOpts{})
		})
	}
	eng.Run()
	// 4 equal streams on 4 ports, 100 MB each at 25 MB/s -> 4 s.
	for i, d := range durs {
		if math.Abs(float64(d)-4.0) > 3*q {
			t.Errorf("stream %d duration %v, want ~4s", i, d)
		}
	}
}

func TestPortCapBinds(t *testing.T) {
	eng, fab := newFab(t, 1000)
	slow := fab.NewPort(10) // local link 10 MB/s
	fast := fab.NewPort(0)
	var dSlow, dFast sim.Duration
	eng.Spawn("s", func(p *sim.Proc) { dSlow = slow.Transfer(p, 100, StreamOpts{}) })
	eng.Spawn("f", func(p *sim.Proc) { dFast = fast.Transfer(p, 100, StreamOpts{}) })
	eng.Run()
	if math.Abs(float64(dSlow)-10.0) > 5*q {
		t.Errorf("capped stream duration %v, want ~10s", dSlow)
	}
	// The fast port gets the residual 990 MB/s.
	if math.Abs(float64(dFast)-100.0/990.0) > 5*q {
		t.Errorf("uncapped stream duration %v, want ~0.101s", dFast)
	}
}

func TestStreamRateCap(t *testing.T) {
	eng, fab := newFab(t, 1000)
	port := fab.NewPort(0)
	var dur sim.Duration
	eng.Spawn("w", func(p *sim.Proc) {
		dur = port.Transfer(p, 50, StreamOpts{RateCap: 5})
	})
	eng.Run()
	if math.Abs(float64(dur)-10.0) > 5*q {
		t.Errorf("rate-capped duration %v, want ~10s", dur)
	}
}

func TestWithinPortFairness(t *testing.T) {
	eng, fab := newFab(t, 40)
	port := fab.NewPort(0)
	durs := make([]sim.Duration, 4)
	for i := 0; i < 4; i++ {
		idx := i
		eng.Spawn("w", func(p *sim.Proc) {
			durs[idx] = port.Transfer(p, 100, StreamOpts{})
		})
	}
	eng.Run()
	// 4 streams share one port at 40 MB/s -> 10 MB/s each -> 10 s.
	for i, d := range durs {
		if math.Abs(float64(d)-10.0) > 5*q {
			t.Errorf("stream %d duration %v, want ~10s", i, d)
		}
	}
}

func TestWeightedPorts(t *testing.T) {
	eng, fab := newFab(t, 100)
	heavy := fab.NewWeightedPort(0, 3)
	light := fab.NewWeightedPort(0, 1)
	var dHeavy, dLight sim.Duration
	eng.Spawn("h", func(p *sim.Proc) { dHeavy = heavy.Transfer(p, 300, StreamOpts{}) })
	eng.Spawn("l", func(p *sim.Proc) { dLight = light.Transfer(p, 100, StreamOpts{}) })
	eng.Run()
	// heavy gets 75 MB/s, light 25 MB/s -> both finish at 4 s.
	if math.Abs(float64(dHeavy)-4.0) > 5*q {
		t.Errorf("heavy duration %v, want ~4s", dHeavy)
	}
	if math.Abs(float64(dLight)-4.0) > 5*q {
		t.Errorf("light duration %v, want ~4s", dLight)
	}
}

func TestResidualRedistribution(t *testing.T) {
	eng, fab := newFab(t, 100)
	capped := fab.NewPort(0)
	free := fab.NewPort(0)
	var dFree sim.Duration
	eng.Spawn("c", func(p *sim.Proc) {
		capped.Transfer(p, 1000, StreamOpts{RateCap: 10})
	})
	eng.Spawn("f", func(p *sim.Proc) {
		dFree = free.Transfer(p, 90, StreamOpts{})
	})
	eng.Run()
	// capped stream uses 10 MB/s; free one should get ~90 MB/s -> 1 s.
	if math.Abs(float64(dFree)-1.0) > 5*q {
		t.Errorf("free duration %v, want ~1s", dFree)
	}
}

func TestSequentialTransfersAccumulate(t *testing.T) {
	eng, fab := newFab(t, 50)
	port := fab.NewPort(0)
	var total sim.Duration
	eng.Spawn("w", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			total += port.Transfer(p, 25, StreamOpts{}) // 0.5s each
		}
	})
	eng.Run()
	if math.Abs(float64(total)-2.0) > 10*q {
		t.Errorf("total %v, want ~2s", total)
	}
}

func TestZeroDemandCompletesImmediately(t *testing.T) {
	eng, fab := newFab(t, 10)
	port := fab.NewPort(0)
	var dur sim.Duration
	eng.Spawn("w", func(p *sim.Proc) {
		dur = port.Transfer(p, 0, StreamOpts{})
	})
	eng.Run()
	if dur != 0 {
		t.Errorf("zero-demand duration %v, want 0", dur)
	}
}

func TestLateJoinerShares(t *testing.T) {
	eng, fab := newFab(t, 100)
	a := fab.NewPort(0)
	b := fab.NewPort(0)
	var dA sim.Duration
	eng.Spawn("a", func(p *sim.Proc) {
		dA = a.Transfer(p, 150, StreamOpts{})
	})
	eng.Spawn("b", func(p *sim.Proc) {
		p.Sleep(1)
		b.Transfer(p, 1000, StreamOpts{})
	})
	eng.Run()
	// a runs alone at 100 MB/s for 1 s (100 MB), then shares at 50 MB/s
	// for the remaining 50 MB -> 1 s more. Total ~2 s.
	if math.Abs(float64(dA)-2.0) > 10*q {
		t.Errorf("duration %v, want ~2s", dA)
	}
}

// Conservation property: N streams of equal demand through one
// saturated fabric take ~ totalBytes/capacity regardless of port
// arrangement.
func TestConservationProperty(t *testing.T) {
	f := func(nPorts, perPort uint8) bool {
		np := int(nPorts%8) + 1
		pp := int(perPort%4) + 1
		eng := sim.NewEngine()
		fab := New(eng, Config{AggregateMBps: 200, Quantum: q})
		var last sim.Time
		for i := 0; i < np; i++ {
			port := fab.NewPort(0)
			for j := 0; j < pp; j++ {
				eng.Spawn("w", func(p *sim.Proc) {
					port.Transfer(p, 100, StreamOpts{})
					last = p.Now()
				})
			}
		}
		eng.Run()
		want := float64(np*pp) * 100 / 200
		return math.Abs(float64(last)-want) < want*0.05+5*q
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestWithinPortWeights(t *testing.T) {
	eng, fab := newFab(t, 100)
	port := fab.NewPort(0)
	var dHeavy, dLight sim.Duration
	eng.Spawn("h", func(p *sim.Proc) {
		dHeavy = port.Transfer(p, 75, StreamOpts{Weight: 3})
	})
	eng.Spawn("l", func(p *sim.Proc) {
		dLight = port.Transfer(p, 25, StreamOpts{Weight: 1})
	})
	eng.Run()
	// Weighted shares 75/25 MB/s: both finish at ~1 s.
	if math.Abs(float64(dHeavy)-1) > 5*q || math.Abs(float64(dLight)-1) > 5*q {
		t.Errorf("weighted durations %v/%v, want ~1s each", dHeavy, dLight)
	}
}

func TestManyStreamsBatchMode(t *testing.T) {
	// Push past the exact-scheduling threshold: 600 concurrent streams
	// across 150 ports must still conserve bytes.
	eng := sim.NewEngine()
	fab := New(eng, Config{AggregateMBps: 600, Quantum: 0.05})
	var last sim.Time
	for i := 0; i < 150; i++ {
		port := fab.NewPort(0)
		for j := 0; j < 4; j++ {
			eng.Spawn("w", func(p *sim.Proc) {
				port.Transfer(p, 10, StreamOpts{})
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
	}
	eng.Run()
	// 600 streams x 10 MB at 600 MB/s total -> ~10 s.
	if math.Abs(float64(last)-10) > 0.5 {
		t.Errorf("batch-mode makespan %v, want ~10s", last)
	}
	if fab.ActiveStreams() != 0 {
		t.Errorf("%d streams still active", fab.ActiveStreams())
	}
}

func TestStreamRateObservable(t *testing.T) {
	eng, fab := newFab(t, 100)
	port := fab.NewPort(0)
	var st *Stream
	eng.Spawn("w", func(p *sim.Proc) {
		wake := p.Block()
		st = port.Start(100, StreamOpts{Done: wake})
		p.Park()
	})
	eng.Spawn("check", func(p *sim.Proc) {
		p.Sleep(0.5)
		if r := st.Rate(); math.Abs(r-100) > 1 {
			t.Errorf("mid-flight rate %v, want ~100", r)
		}
	})
	eng.Run()
}
