package flownet

import (
	"math"

	"ensembleio/internal/sim"
)

// calEntry is one pending completion in the analytic calendar. Entries
// are immutable once pushed; a stream whose rate changes simply pushes
// a fresh entry, and stale ones are dropped lazily when they surface.
// An entry is current iff the stream it points at is still the same
// transfer (ids are monotone and never reused) and still carries the
// entry's deadline bits.
type calEntry struct {
	dl sim.Time
	id uint64
	s  *Stream
}

// valid reports whether the entry still describes its stream's live
// deadline. Reading a recycled *Stream is safe — the object is only
// ever reused for another transfer, which changes its id.
func (e calEntry) valid() bool {
	return e.s.id == e.id && !e.s.finished &&
		math.Float64bits(float64(e.s.deadline)) == math.Float64bits(float64(e.dl))
}

// calendar is a slice-backed binary min-heap of completion deadlines
// ordered by (deadline, stream id). The id tie-break makes the pop
// order of simultaneous completions identical to the event path's
// sorted scan, which is what keeps done-callback sequence numbers —
// and therefore every downstream RNG draw — byte-identical between
// the analytic and pure event paths.
type calendar struct {
	a []calEntry
}

func (c *calendar) less(i, j int) bool {
	if c.a[i].dl != c.a[j].dl {
		return c.a[i].dl < c.a[j].dl
	}
	return c.a[i].id < c.a[j].id
}

func (c *calendar) push(e calEntry) {
	c.a = append(c.a, e)
	i := len(c.a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !c.less(i, parent) {
			break
		}
		c.a[i], c.a[parent] = c.a[parent], c.a[i]
		i = parent
	}
}

// peek returns the minimum entry without removing it. The caller is
// responsible for lazily popping invalid entries.
func (c *calendar) peek() (calEntry, bool) {
	if len(c.a) == 0 {
		return calEntry{}, false
	}
	return c.a[0], true
}

func (c *calendar) pop() calEntry {
	top := c.a[0]
	n := len(c.a) - 1
	c.a[0] = c.a[n]
	// Clear the vacated slot so the entry's *Stream is collectable
	// even while the backing array lives on.
	c.a[n] = calEntry{}
	c.a = c.a[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && c.less(l, smallest) {
			smallest = l
		}
		if r < n && c.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		c.a[i], c.a[smallest] = c.a[smallest], c.a[i]
		i = smallest
	}
}

func (c *calendar) len() int { return len(c.a) }
