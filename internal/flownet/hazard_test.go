package flownet

import (
	"math"
	"testing"

	"ensembleio/internal/sim"
)

// TestNearFinishedStreamTerminates pins the zero-advance-refresh
// hazard: late in a run (large virtual now), a stream's residual
// duration remaining/rate can be smaller than one ulp of now, so the
// analytic deadline now + remaining/rate rounds back to exactly now.
// completeDue's deadline <= now comparison is what breaks the loop —
// the stream completes at the wake that assigned its rate — and this
// test constructs exactly that case and asserts the engine finishes
// the stream in a bounded number of events instead of spinning
// forever.
func TestNearFinishedStreamTerminates(t *testing.T) {
	eng := sim.NewEngine()
	fab := New(eng, Config{AggregateMBps: 100, Quantum: 0.05})
	port := fab.NewPort(0)

	// At t=1e9 the float64 spacing is ~1.2e-7 s. A 1e-6 MB demand at
	// 100 MB/s lasts 1e-8 s — far below half an ulp, so the scheduled
	// completion time rounds to exactly now and advance sees dt == 0.
	const bigT = sim.Time(1e9)
	done := false
	eng.At(bigT, func() {
		port.Start(1e-6, StreamOpts{Done: func() { done = true }})
	})
	eng.Run()

	if !done {
		t.Fatal("near-finished stream never completed")
	}
	if fab.ActiveStreams() != 0 {
		t.Fatalf("%d streams still active", fab.ActiveStreams())
	}
	if popped := eng.EventsPopped(); popped > 50 {
		t.Fatalf("engine needed %d events for one tiny stream — the zero-advance refresh loop is back", popped)
	}
}

// TestNearFinishedStreamAmongPeers is the same hazard with a healthy
// stream sharing the port, checking the deadline rounding completes
// only the vanishing stream and the survivor still finishes at its
// proper time.
func TestNearFinishedStreamAmongPeers(t *testing.T) {
	eng := sim.NewEngine()
	fab := New(eng, Config{AggregateMBps: 100, Quantum: 0.05})
	port := fab.NewPort(0)

	const bigT = sim.Time(1e9)
	var tinyAt, bulkAt sim.Time
	eng.At(bigT, func() {
		port.Start(1e-6, StreamOpts{Done: func() { tinyAt = eng.Now() }})
		port.Start(100, StreamOpts{Done: func() { bulkAt = eng.Now() }})
	})
	eng.Run()

	if tinyAt == 0 || bulkAt == 0 {
		t.Fatalf("streams did not complete: tiny=%v bulk=%v", tinyAt, bulkAt)
	}
	// The bulk stream moves 100 MB at 50-then-100 MB/s; with the tiny
	// stream vanishing within one event, its duration must stay ~1 s.
	if d := float64(bulkAt - bigT); d < 0.9 || d > 1.2 {
		t.Fatalf("bulk stream took %v s, want ~1 s", d)
	}
	if popped := eng.EventsPopped(); popped > 100 {
		t.Fatalf("engine needed %d events — zero-advance refresh loop", popped)
	}
}

// sameBits reports exact float64 identity — the determinism contract
// is bitwise, so the fast-path tests never compare with tolerances.
func sameBits(a, b sim.Time) bool {
	return math.Float64bits(float64(a)) == math.Float64bits(float64(b))
}

// TestNoQuantumLagAboveThreshold is the property test for the fast
// path's headline claim: above exactThreshold, the historical scheme
// detected completions with up to one quantum of lag, while the
// analytic path fires them at the exact closed-form deadline. 600
// uniform streams (> exactThreshold = 512) start at t=0; the deferred
// water-fill lands at exactly one quantum, and every completion must
// land at quantum + demand/fairRate to the bit — no rounding up to
// the next quantum boundary — on both the analytic and event paths.
func TestNoQuantumLagAboveThreshold(t *testing.T) {
	const (
		n       = 600
		cap     = 10_000.0
		demand  = 101.0
		quantum = sim.Duration(0.05)
	)
	run := func(analyticOff bool) []sim.Time {
		eng := sim.NewEngine()
		fab := New(eng, Config{AggregateMBps: cap, Quantum: quantum, AnalyticOff: analyticOff})
		port := fab.NewPort(0)
		times := make([]sim.Time, 0, n)
		for i := 0; i < n; i++ {
			port.Start(demand, StreamOpts{Done: func() { times = append(times, eng.Now()) }})
		}
		eng.Run()
		return times
	}
	on := run(false)
	if len(on) != n {
		t.Fatalf("%d of %d streams completed", len(on), n)
	}
	// The rate lands one quantum after the t=0 join (deferred
	// recompute); from there the completion is purely analytic. The
	// expectation reproduces the fabric's own float arithmetic: the
	// fair level is cap/n and the deadline demand/level later.
	want := sim.Time(quantum) + sim.Time(demand/(cap/n))
	for i, got := range on {
		if !sameBits(got, want) {
			t.Fatalf("stream %d completed at %v, want exact analytic deadline %v (quantum lag is back)", i, got, want)
		}
	}
	for i, got := range run(true) {
		if !sameBits(got, on[i]) {
			t.Fatalf("stream %d: analytic %v vs event path %v differ", i, on[i], got)
		}
	}
}

// TestFastForwardHonorsBurstBoundary pins the burst-boundary hazard:
// with 600 long uniform streams in flight the fabric's next deadline
// is tens of virtual seconds out, so the analytic path would love to
// jump straight there — but a background burst arriving mid-stretch
// is an engine event, and the engine never leaps over a queued event.
// The burst must re-divide bandwidth within one quantum of its
// arrival (the deferred-recompute bound), visibly slowing the bulk
// streams, and the analytic and event paths must agree to the bit.
func TestFastForwardHonorsBurstBoundary(t *testing.T) {
	const (
		ports    = 40
		perPort  = 15
		cap      = 10_000.0
		demand   = 1_000.0
		quantum  = sim.Duration(0.05)
		burstAt  = sim.Time(7.03) // off the quantum grid, mid-stretch
		burstMB  = 40_000.0
		preProbe = burstAt - 0.01
	)
	run := func(analyticOff, withBurst bool) (bulkDone sim.Time, preRate, postRate float64) {
		eng := sim.NewEngine()
		fab := New(eng, Config{AggregateMBps: cap, Quantum: quantum, AnalyticOff: analyticOff})
		var watch *Stream
		for p := 0; p < ports; p++ {
			port := fab.NewPort(2000)
			for i := 0; i < perPort; i++ {
				s := port.Start(demand, StreamOpts{Done: func() {
					if t := eng.Now(); t > bulkDone {
						bulkDone = t
					}
				}})
				if watch == nil {
					watch = s
				}
			}
		}
		if withBurst {
			bg := fab.NewWeightedPort(0, 8)
			eng.At(burstAt, func() { bg.Start(burstMB, StreamOpts{}) })
		}
		eng.At(preProbe, func() { preRate = watch.Rate() })
		// One quantum after the burst instant the deferred recompute
		// must have landed; probe just past it.
		eng.At(burstAt+sim.Time(quantum)+0.001, func() { postRate = watch.Rate() })
		eng.Run()
		return bulkDone, preRate, postRate
	}

	quietDone, _, _ := run(false, false)
	burstDone, pre, post := run(false, true)
	if !(burstDone > quietDone) {
		t.Fatalf("burst had no effect on the bulk makespan (%v vs %v): the fabric jumped past the burst boundary", burstDone, quietDone)
	}
	if !(post < pre) {
		t.Fatalf("bulk rate did not drop within one quantum of the burst (pre %.3f, post %.3f)", pre, post)
	}
	offDone, offPre, offPost := run(true, true)
	if !sameBits(burstDone, offDone) ||
		math.Float64bits(pre) != math.Float64bits(offPre) ||
		math.Float64bits(post) != math.Float64bits(offPost) {
		t.Fatalf("analytic vs event path diverge across the burst: done %v vs %v, rates (%.6f,%.6f) vs (%.6f,%.6f)",
			burstDone, offDone, pre, post, offPre, offPost)
	}
}

// TestFastForwardHonorsCapEdge is the fault-window flavor of the same
// hazard: a degraded-link edge (SetCapMBps, the hook fault injection
// drives) arriving while the fabric is deep in an uncontended stretch
// must take effect within one quantum — the wake generation counter
// invalidates the far-future deadline wake — and must produce
// bit-identical schedules on both paths.
func TestFastForwardHonorsCapEdge(t *testing.T) {
	const (
		ports   = 40
		perPort = 15
		cap     = 10_000.0
		demand  = 1_000.0
		quantum = sim.Duration(0.05)
		edgeAt  = sim.Time(3.21)
	)
	run := func(analyticOff bool) (victimDone, bulkDone sim.Time, postRate float64) {
		eng := sim.NewEngine()
		fab := New(eng, Config{AggregateMBps: cap, Quantum: quantum, AnalyticOff: analyticOff})
		var degraded *Port
		var watch *Stream
		for p := 0; p < ports; p++ {
			port := fab.NewPort(2000)
			if p == 0 {
				// The whole first port degrades; its streams count as
				// victims, every other port's as healthy bulk.
				degraded = port
				for i := 0; i < perPort; i++ {
					s := port.Start(demand, StreamOpts{Done: func() {
						if t := eng.Now(); t > victimDone {
							victimDone = t
						}
					}})
					if watch == nil {
						watch = s
					}
				}
				continue
			}
			for i := 0; i < perPort; i++ {
				port.Start(demand, StreamOpts{Done: func() {
					if t := eng.Now(); t > bulkDone {
						bulkDone = t
					}
				}})
			}
		}
		eng.At(edgeAt, func() { degraded.SetCapMBps(5) })
		eng.At(edgeAt+sim.Time(quantum)+0.001, func() { postRate = watch.Rate() })
		eng.Run()
		return victimDone, bulkDone, postRate
	}
	victim, bulk, post := run(false)
	if victim <= bulk {
		t.Fatalf("degraded port finished at %v, not after the healthy bulk at %v: the cap edge was jumped over", victim, bulk)
	}
	// 15 streams share a 5 MB/s port: within one quantum of the edge
	// each must be pinned at ~1/3 MB/s, far below any healthy share.
	if post > 1 {
		t.Fatalf("victim stream still at %.3f MB/s one quantum past the cap edge", post)
	}
	offVictim, offBulk, offPost := run(true)
	if !sameBits(victim, offVictim) || !sameBits(bulk, offBulk) ||
		math.Float64bits(post) != math.Float64bits(offPost) {
		t.Fatalf("analytic vs event path diverge across the cap edge: victim %v vs %v, bulk %v vs %v",
			victim, offVictim, bulk, offBulk)
	}
}
