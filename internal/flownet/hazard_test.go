package flownet

import (
	"testing"

	"ensembleio/internal/sim"
)

// TestNearFinishedStreamTerminates pins the zero-advance-refresh
// hazard: late in a run (large virtual now), a stream's residual
// duration remaining/rate can be smaller than one ulp of now, so the
// exact-mode wake time now + remaining/rate rounds back to now and the
// refresh advances nothing. completeFinished's rate-slack comparison
// (remaining <= rate*1e-6) is what breaks the loop — this test
// constructs exactly that case and asserts the engine finishes the
// stream in a bounded number of events instead of spinning forever.
func TestNearFinishedStreamTerminates(t *testing.T) {
	eng := sim.NewEngine()
	fab := New(eng, Config{AggregateMBps: 100, Quantum: 0.05})
	port := fab.NewPort(0)

	// At t=1e9 the float64 spacing is ~1.2e-7 s. A 1e-6 MB demand at
	// 100 MB/s lasts 1e-8 s — far below half an ulp, so the scheduled
	// completion time rounds to exactly now and advance sees dt == 0.
	const bigT = sim.Time(1e9)
	done := false
	eng.At(bigT, func() {
		port.Start(1e-6, StreamOpts{Done: func() { done = true }})
	})
	eng.Run()

	if !done {
		t.Fatal("near-finished stream never completed")
	}
	if fab.ActiveStreams() != 0 {
		t.Fatalf("%d streams still active", fab.ActiveStreams())
	}
	if popped := eng.EventsPopped(); popped > 50 {
		t.Fatalf("engine needed %d events for one tiny stream — the zero-advance refresh loop is back", popped)
	}
}

// TestNearFinishedStreamAmongPeers is the same hazard with a healthy
// stream sharing the port, checking the slack completes only the
// vanishing stream and the survivor still finishes at its proper time.
func TestNearFinishedStreamAmongPeers(t *testing.T) {
	eng := sim.NewEngine()
	fab := New(eng, Config{AggregateMBps: 100, Quantum: 0.05})
	port := fab.NewPort(0)

	const bigT = sim.Time(1e9)
	var tinyAt, bulkAt sim.Time
	eng.At(bigT, func() {
		port.Start(1e-6, StreamOpts{Done: func() { tinyAt = eng.Now() }})
		port.Start(100, StreamOpts{Done: func() { bulkAt = eng.Now() }})
	})
	eng.Run()

	if tinyAt == 0 || bulkAt == 0 {
		t.Fatalf("streams did not complete: tiny=%v bulk=%v", tinyAt, bulkAt)
	}
	// The bulk stream moves 100 MB at 50-then-100 MB/s; with the tiny
	// stream vanishing within one event, its duration must stay ~1 s.
	if d := float64(bulkAt - bigT); d < 0.9 || d > 1.2 {
		t.Fatalf("bulk stream took %v s, want ~1 s", d)
	}
	if popped := eng.EventsPopped(); popped > 100 {
		t.Fatalf("engine needed %d events — zero-advance refresh loop", popped)
	}
}
