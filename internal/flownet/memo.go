package flownet

import (
	"math"

	"ensembleio/internal/sim"
)

// Epoch memoization: the two-level water-fill is a pure function of
// the fabric capacity (fixed per fabric) and the ordered sequence of
// port and stream parameters — caps and weights; remaining bytes do
// not enter the allocation. A repeated phase (GCRM's uniform writer
// storms, IOR's per-transfer loops) therefore reproduces the same
// allocation exactly, and the fabric can replay the memoized rates
// bit-for-bit instead of re-running the iterative freezing.
//
// The fingerprint is the exact bit pattern of every input in
// iteration order, so a hit is a proof of input identity — there is
// no hashing and no collision unsoundness: a near-miss epoch in which
// even one stream differs by one ulp fails the comparison and runs
// the full fill. The flownet layer draws no RNG variates, so the
// fingerprint's recorded draw count is identically zero and replay
// advances no generator state (see DESIGN.md §13).
//
// The cache is deliberately map-free: a small MRU-ordered slice,
// scanned linearly with early-exit comparison. That keeps probe cost
// bounded, the eviction order deterministic, and the whole structure
// invisible to serialized artifacts — memoization is simulator-
// internal state, never observable output (the simpurity/detflow
// analyzers rely on there being no map iteration here).

// memoCap bounds the number of remembered epoch fingerprints. Repeated
// phases alternate among a handful of population shapes (storm, drain
// tail, background-only), so a small cache captures the hits while
// keeping a miss's probe cost at a few early-exit comparisons.
const memoCap = 8

// memoEntry is one memoized allocation: the fingerprint key and the
// positional outputs (per-port shares, per-stream rates flattened in
// port order).
type memoEntry struct {
	key    []uint64
	shares []float64
	rates  []float64
}

// memoCache is an MRU-ordered, fixed-capacity, map-free cache.
type memoCache struct {
	entries      []*memoEntry
	hits, misses uint64
}

// matches reports whether the entry's fingerprint equals the fabric's
// current population, comparing the live structure against the stored
// key without materializing a candidate key. Layout per entry:
//
//	nPorts, then per port: bits(cap), bits(weight), nStreams,
//	then per stream: bits(rateCap), bits(weight)
func (e *memoEntry) matches(f *Fabric) bool {
	k := e.key
	if len(k) == 0 || k[0] != uint64(len(f.actPorts)) {
		return false
	}
	i := 1
	for _, p := range f.actPorts {
		if i+3 > len(k) ||
			k[i] != math.Float64bits(p.cap) ||
			k[i+1] != math.Float64bits(p.weight) ||
			k[i+2] != uint64(len(p.streams)) {
			return false
		}
		i += 3
		for _, s := range p.streams {
			if i+2 > len(k) ||
				k[i] != math.Float64bits(s.rateCap) ||
				k[i+1] != math.Float64bits(s.weight) {
				return false
			}
			i += 2
		}
	}
	return i == len(k)
}

// apply probes the cache for the fabric's current fingerprint and, on
// a hit, replays the memoized allocation through setRate — the same
// assignment path the full fill uses, so anchors, deadlines and the
// calendar behave identically to a cold recompute.
func (m *memoCache) apply(f *Fabric, now sim.Time) bool {
	for idx, e := range m.entries {
		if !e.matches(f) {
			continue
		}
		m.hits++
		// Move-to-front keeps eviction MRU without any clock state.
		copy(m.entries[1:idx+1], m.entries[:idx])
		m.entries[0] = e
		j := 0
		for pi, p := range f.actPorts {
			p.share = e.shares[pi]
			for _, s := range p.streams {
				f.setRate(s, e.rates[j], now)
				j++
			}
		}
		return true
	}
	m.misses++
	return false
}

// store memoizes the allocation the fill just produced, evicting the
// least recently used fingerprint once the cache is full.
func (m *memoCache) store(f *Fabric) {
	var e *memoEntry
	if len(m.entries) < memoCap {
		e = &memoEntry{}
		m.entries = append(m.entries, e)
	} else {
		e = m.entries[memoCap-1]
		e.key = e.key[:0]
		e.shares = e.shares[:0]
		e.rates = e.rates[:0]
	}
	copy(m.entries[1:], m.entries[:len(m.entries)-1])
	m.entries[0] = e
	e.key = append(e.key, uint64(len(f.actPorts)))
	for _, p := range f.actPorts {
		e.key = append(e.key, math.Float64bits(p.cap), math.Float64bits(p.weight), uint64(len(p.streams)))
		e.shares = append(e.shares, p.share)
		for _, s := range p.streams {
			e.key = append(e.key, math.Float64bits(s.rateCap), math.Float64bits(s.weight))
			e.rates = append(e.rates, s.rate)
		}
	}
}
