// Package flownet models shared-bandwidth data movement as fluid flows
// through a two-level fabric: an aggregate capacity (the back-end I/O
// fabric, e.g. the path from compute nodes through the network to the
// storage servers) divided among ports (one per compute node client),
// each of which divides its share among its active streams.
//
// Rates are allocated max-min fairly (water-filling) with optional
// per-port weights/caps and per-stream weights/caps. To keep the event
// count proportional to the number of transfers rather than to bytes,
// rates are recomputed on a fixed virtual-time quantum instead of on
// every membership change; stream completion times are interpolated
// exactly within a quantum. The quantization error on any transfer
// duration is bounded by one quantum.
package flownet

import (
	"fmt"
	"math"

	"ensembleio/internal/sim"
	"ensembleio/internal/telemetry"
)

// Config parametrizes a Fabric.
type Config struct {
	// AggregateMBps is the total back-end bandwidth in MB/s shared by
	// all ports.
	AggregateMBps float64
	// Quantum is the rate-recomputation interval in virtual seconds.
	// Zero selects a default of 50 ms.
	Quantum sim.Duration
}

// Fabric is a shared bandwidth domain. Create one with New.
//
// Scheduling: while the active-stream population is at most
// exactThreshold, every membership change recomputes rates and the
// next completion is scheduled at its exact time. Beyond the
// threshold, the fabric falls back to quantum batching — rates are
// refreshed every Quantum and completions are detected with up to one
// quantum of lag — keeping the cost of huge fan-outs (10k+ streams)
// proportional to streams, not streams squared.
type Fabric struct {
	eng       *sim.Engine
	cap       float64
	quantum   sim.Duration
	ports     []*Port
	actPorts  []*Port // ports with at least one stream (may hold stale entries until refresh)
	flowPorts []*Port // ports with ≥1 nonzero-rate stream as of the last recompute
	active    int     // number of active streams across all ports
	lastMove  sim.Time
	pokeSet   bool
	gen       uint64 // invalidates scheduled refreshes
	dirty     bool   // membership or caps changed since the last recompute
	nextDur   float64
	free      []*Stream // engine-owned stream free list (see DESIGN.md §11)
	pokeFn    func()
	tickFn    func(uint64)

	// Telemetry handles cached by Instrument; nil handles no-op, so the
	// hot loops below pay a nil check and nothing else when disabled.
	telRefreshes  *telemetry.Counter
	telRecomputes *telemetry.Counter
	telMaxStreams *telemetry.Gauge
}

// exactThreshold is the active-stream population up to which exact
// completion scheduling is used.
const exactThreshold = 512

// New returns a fabric on the given engine.
func New(eng *sim.Engine, cfg Config) *Fabric {
	if cfg.AggregateMBps <= 0 {
		panic("flownet: aggregate capacity must be positive")
	}
	q := cfg.Quantum
	if q == 0 {
		q = 0.05
	}
	f := &Fabric{eng: eng, cap: cfg.AggregateMBps, quantum: q}
	// Both scheduling closures are allocated once here and reused for
	// every poke and refresh tick over the fabric's lifetime.
	f.pokeFn = func() {
		f.pokeSet = false
		f.refresh()
	}
	f.tickFn = func(gen uint64) {
		if f.gen == gen {
			f.refresh()
		}
	}
	return f
}

// AggregateMBps returns the configured aggregate capacity.
func (f *Fabric) AggregateMBps() float64 { return f.cap }

// Instrument attaches a telemetry sink (nil = disabled) and caches the
// fabric's metric handles.
func (f *Fabric) Instrument(tel *telemetry.Sink) {
	f.telRefreshes = tel.Counter("flownet.refreshes")
	f.telRecomputes = tel.Counter("flownet.recomputes")
	f.telMaxStreams = tel.Gauge("flownet.active_streams")
}

// Port is one client of the fabric (typically a compute node). Its
// active streams share the port's allocation.
type Port struct {
	fab     *Fabric
	cap     float64 // local link capacity, MB/s (0 = unlimited)
	weight  float64 // share weight at fabric level
	streams []*Stream
	share   float64 // current port allocation, MB/s
	listed  bool    // present in fab.actPorts
	maxUse  float64 // scratch: maximum useful rate this round
	frozen  bool    // scratch: water-fill freeze mark
	minDur  float64 // earliest completion among this port's streams, seconds from the last recompute
	flowing bool    // at least one stream got a nonzero rate at the last recompute
}

// NewPort adds a port with the given local link capacity in MB/s
// (0 means no local limit) and fabric-level weight 1.
func (f *Fabric) NewPort(capMBps float64) *Port {
	return f.NewWeightedPort(capMBps, 1)
}

// NewWeightedPort adds a port whose fabric-level share is proportional
// to weight. A background-load injector uses a weighted port.
func (f *Fabric) NewWeightedPort(capMBps, weight float64) *Port {
	if weight <= 0 {
		panic("flownet: port weight must be positive")
	}
	p := &Port{fab: f, cap: capMBps, weight: weight}
	f.ports = append(f.ports, p)
	return p
}

// SetCapMBps changes the port's local link capacity in MB/s (0 = no
// local limit). Degraded-link fault injection uses it; a change while
// streams are in flight takes effect at the next rate recomputation.
func (p *Port) SetCapMBps(capMBps float64) {
	p.cap = capMBps
	if p.listed {
		p.fab.dirty = true
		p.fab.poke()
	}
}

// CapMBps returns the port's local link capacity (0 = no local limit).
func (p *Port) CapMBps() float64 { return p.cap }

// StreamOpts tunes one transfer.
type StreamOpts struct {
	// RateCap limits this stream's rate in MB/s (0 = unlimited). Used
	// to model request-size/latency-limited transfers such as
	// degenerate page-sized read RPCs.
	RateCap float64
	// Weight sets the within-port share weight (default 1).
	Weight float64
	// Done is called at the stream's exact completion time.
	Done func()
}

// Stream is one in-flight transfer. A Stream is only valid until its
// completion: once Done has been scheduled the fabric recycles the
// object through its free list, so callers must not retain or inspect
// a Stream after its transfer finishes.
type Stream struct {
	port      *Port
	remaining float64 // MB
	rateCap   float64
	weight    float64
	rate      float64 // current allocation, MB/s
	joined    sim.Time
	done      func()
	finished  bool
	frozen    bool // scratch: water-fill freeze mark
}

// Rate returns the stream's current fluid rate in MB/s. Exposed for
// instrumentation and tests.
func (s *Stream) Rate() float64 { return s.rate }

// Start begins an asynchronous transfer of demandMB megabytes on the
// port. Zero-demand streams complete immediately.
func (p *Port) Start(demandMB float64, opts StreamOpts) *Stream {
	if demandMB < 0 {
		panic("flownet: negative demand")
	}
	w := opts.Weight
	if w == 0 {
		w = 1
	}
	f := p.fab
	if demandMB == 0 {
		// Zero-demand streams never enter a port, so they never reach
		// the completion path that feeds the free list; allocate fresh.
		if opts.Done != nil {
			f.eng.At(f.eng.Now(), opts.Done)
		}
		return &Stream{port: p, rateCap: opts.RateCap, weight: w, joined: f.eng.Now(), finished: true}
	}
	var s *Stream
	if n := len(f.free); n > 0 {
		s = f.free[n-1]
		f.free[n-1] = nil
		f.free = f.free[:n-1]
	} else {
		s = &Stream{}
	}
	*s = Stream{
		port:      p,
		remaining: demandMB,
		rateCap:   opts.RateCap,
		weight:    w,
		joined:    f.eng.Now(),
		done:      opts.Done,
	}
	p.streams = append(p.streams, s)
	if !p.listed {
		p.listed = true
		f.actPorts = append(f.actPorts, p)
	}
	f.active++
	f.telMaxStreams.Set(float64(f.active))
	f.dirty = true
	f.poke()
	return s
}

// Transfer moves demandMB megabytes synchronously on behalf of proc and
// returns the transfer duration.
func (p *Port) Transfer(proc *sim.Proc, demandMB float64, opts StreamOpts) sim.Duration {
	start := proc.Now()
	wake := proc.Block()
	if userDone := opts.Done; userDone != nil {
		opts.Done = func() {
			userDone()
			wake()
		}
	} else {
		// Common case: the wake is the whole completion action, and it
		// is the process's pre-allocated wake function — no closure.
		opts.Done = wake
	}
	p.Start(demandMB, opts)
	proc.Park()
	return proc.Now() - start
}

// poke schedules a refresh at the current instant, coalescing all
// same-instant membership changes (e.g. a whole barrier's worth of
// writes starting together) into one rate recomputation.
func (f *Fabric) poke() {
	if f.pokeSet {
		return
	}
	f.pokeSet = true
	f.eng.At(f.eng.Now(), f.pokeFn)
}

// refresh advances stream progress to now, completes finished streams,
// recomputes rates if membership or caps changed since the last
// recompute (unchanged populations keep their rates — the water-fill is
// a pure function of membership and caps, so skipping it is exact, not
// approximate), and schedules the next wake-up (exact completion time
// for small populations, quantum tick for large ones).
func (f *Fabric) refresh() {
	f.telRefreshes.Inc()
	now := f.eng.Now()
	f.advance(f.lastMove, now)
	f.lastMove = now
	f.completeFinished(now)
	f.gen++
	if f.active == 0 {
		return
	}
	recomputed := false
	if f.dirty {
		f.recompute()
		f.dirty = false
		recomputed = true
	}

	next := now + f.quantum
	if f.active <= exactThreshold {
		if recomputed {
			// The earliest completion was folded into nextDur as rates
			// were assigned; no scan needed.
			if t := now + sim.Time(f.nextDur); t < next {
				next = t
			}
		} else {
			// Rates are unchanged since the last recompute but the
			// streams have advanced; rescan the flowing ports so the
			// wake time matches the non-incremental schedule bit for
			// bit. This only happens on a quantum tick with no
			// membership change.
			for _, p := range f.flowPorts {
				for _, s := range p.streams {
					if s.rate > 0 {
						if t := now + sim.Time(s.remaining/s.rate); t < next {
							next = t
						}
					}
				}
			}
		}
	}
	f.eng.AtArg(next, f.tickFn, f.gen)
}

// completeFinished fires done callbacks for streams whose demand is
// met and removes them from their ports. A stream within one
// microsecond of finishing at its current rate counts as done: without
// that slack, float rounding of now + remaining/rate can schedule a
// zero-advance refresh loop.
func (f *Fabric) completeFinished(now sim.Time) {
	const eps = 1e-9
	keptPorts := f.actPorts[:0]
	for _, p := range f.actPorts {
		kept := p.streams[:0]
		for _, s := range p.streams {
			if s.remaining <= eps || (s.rate > 0 && s.remaining <= s.rate*1e-6) {
				s.finished = true
				f.active--
				f.dirty = true
				if s.done != nil {
					f.eng.At(now, s.done)
				}
				// The stream is out of its port and its done callback
				// holds no reference to it; recycle the object.
				s.done = nil
				s.port = nil
				f.free = append(f.free, s)
			} else {
				kept = append(kept, s)
			}
		}
		for i := len(kept); i < len(p.streams); i++ {
			p.streams[i] = nil
		}
		p.streams = kept
		if len(p.streams) > 0 {
			keptPorts = append(keptPorts, p)
		} else {
			p.listed = false
			p.share = 0
		}
	}
	for i := len(keptPorts); i < len(f.actPorts); i++ {
		f.actPorts[i] = nil
	}
	f.actPorts = keptPorts
}

// advance integrates each stream's progress over [t0, t1) at the rates
// assigned by the previous recompute. Only ports that received a
// nonzero rate at that recompute can have moving streams, so the walk
// covers the compact flowPorts list rather than every active port.
// Streams that joined mid-interval have had rate zero and are
// unaffected.
func (f *Fabric) advance(t0, t1 sim.Time) {
	dt := float64(t1 - t0)
	if dt <= 0 {
		return
	}
	for _, p := range f.flowPorts {
		for _, s := range p.streams {
			if s.rate > 0 {
				s.remaining -= s.rate * dt
			}
		}
	}
}

// recompute performs the two-level water-filling rate allocation over
// the active ports using iterative freezing (no sorting, no
// allocation): in each round the tentative fair level is computed and
// every port whose maximum useful rate falls below its weighted share
// is frozen there; the remainder is split by weight.
func (f *Fabric) recompute() {
	f.telRecomputes.Inc()
	totalW := 0.0
	for _, p := range f.actPorts {
		max := p.cap
		if max <= 0 {
			max = math.Inf(1)
		}
		capSum := 0.0
		allCapped := true
		for _, s := range p.streams {
			if s.rateCap <= 0 {
				allCapped = false
				break
			}
			capSum += s.rateCap
		}
		if allCapped && capSum < max {
			max = capSum
		}
		p.maxUse = max
		p.frozen = false
		totalW += p.weight
	}
	remaining := f.cap
	wRem := totalW
	for wRem > 0 {
		level := remaining / wRem
		froze := false
		for _, p := range f.actPorts {
			if !p.frozen && p.maxUse <= p.weight*level {
				p.frozen = true
				p.share = p.maxUse
				remaining -= p.maxUse
				wRem -= p.weight
				froze = true
			}
		}
		if !froze {
			for _, p := range f.actPorts {
				if !p.frozen {
					p.share = p.weight * level
				}
			}
			break
		}
	}
	for i := range f.flowPorts {
		f.flowPorts[i] = nil
	}
	f.flowPorts = f.flowPorts[:0]
	nextDur := math.Inf(1)
	for _, p := range f.actPorts {
		p.distribute()
		if p.minDur < nextDur {
			nextDur = p.minDur
		}
		if p.flowing {
			f.flowPorts = append(f.flowPorts, p)
		}
	}
	f.nextDur = nextDur
}

// distribute water-fills the port share across its streams with the
// same iterative-freezing scheme, honoring per-stream caps and weights.
// As each stream's rate becomes final (at freeze, or at the level fill)
// its completion duration is folded into p.minDur, so exact-mode
// scheduling never needs a separate min-scan after a recompute.
func (p *Port) distribute() {
	totalW := 0.0
	for _, s := range p.streams {
		s.frozen = false
		totalW += s.weight
	}
	minDur := math.Inf(1)
	flowing := false
	remaining := p.share
	wRem := totalW
	for wRem > 0 {
		level := remaining / wRem
		froze := false
		for _, s := range p.streams {
			if s.frozen {
				continue
			}
			max := s.rateCap
			if max <= 0 {
				max = math.Inf(1)
			}
			if max <= s.weight*level {
				s.frozen = true
				s.rate = max
				remaining -= max
				wRem -= s.weight
				froze = true
				if max > 0 {
					flowing = true
					if d := s.remaining / max; d < minDur {
						minDur = d
					}
				}
			}
		}
		if !froze {
			for _, s := range p.streams {
				if !s.frozen {
					s.rate = s.weight * level
					if s.rate > 0 {
						flowing = true
						if d := s.remaining / s.rate; d < minDur {
							minDur = d
						}
					}
				}
			}
			break
		}
	}
	p.minDur = minDur
	p.flowing = flowing
}

// ActiveStreams reports the number of in-flight streams fabric-wide.
func (f *Fabric) ActiveStreams() int { return f.active }

// String implements fmt.Stringer for diagnostics.
func (f *Fabric) String() string {
	return fmt.Sprintf("fabric(cap=%.0fMB/s ports=%d active=%d)", f.cap, len(f.ports), f.active)
}
