// Package flownet models shared-bandwidth data movement as fluid flows
// through a two-level fabric: an aggregate capacity (the back-end I/O
// fabric, e.g. the path from compute nodes through the network to the
// storage servers) divided among ports (one per compute node client),
// each of which divides its share among its active streams.
//
// Rates are allocated max-min fairly (water-filling) with optional
// per-port weights/caps and per-stream weights/caps. Every stream
// carries an anchored closed-form progress model — remaining bytes are
// a linear function of time between rate changes — so completions fire
// at their exact analytic deadline regardless of population size. To
// keep the event count proportional to the number of transfers rather
// than to bytes, rate *recomputation* above exactThreshold is batched:
// membership changes only mark the allocation dirty, and the water-fill
// reruns one quantum after the first unabsorbed change. The
// quantization error on any transfer duration is bounded by one
// quantum, and — unlike the historical quantum-tick scheme, which
// detected completions with up to one quantum of lag — the error now
// lives entirely in rate reassignment: completion times themselves are
// exact for the rates in force (see DESIGN.md §13).
package flownet

import (
	"fmt"
	"math"
	"sort"

	"ensembleio/internal/sim"
	"ensembleio/internal/telemetry"
)

// Config parametrizes a Fabric.
type Config struct {
	// AggregateMBps is the total back-end bandwidth in MB/s shared by
	// all ports.
	AggregateMBps float64
	// Quantum is the rate-recomputation interval in virtual seconds.
	// Zero selects a default of 50 ms.
	Quantum sim.Duration
	// AnalyticOff disables the analytic fast path (completion calendar
	// and water-fill memoization) and falls back to the pure event
	// path, which rescans every stream at each wake-up. The two paths
	// produce byte-identical artifacts — the flag exists as an escape
	// hatch and as the reference side of the ablation suite.
	AnalyticOff bool
}

// Fabric is a shared bandwidth domain. Create one with New.
//
// Scheduling: while the active-stream population is at most
// exactThreshold, every membership change recomputes rates
// immediately. Beyond the threshold, changes only mark the allocation
// dirty and the recompute is deferred to one quantum after the first
// unabsorbed change, coalescing whole barrier storms into a single
// water-fill. Completions are scheduled at their exact analytic
// deadlines in both regimes; between membership changes the fabric's
// single wake-up event jumps the virtual clock straight to the next
// deadline (or deferred recompute), fast-forwarding uncontended
// stretches in O(1) instead of ticking quanta through them.
type Fabric struct {
	eng        *sim.Engine
	cap        float64
	quantum    sim.Duration
	analytic   bool
	ports      []*Port
	actPorts   []*Port // ports with ≥1 stream (stale empties linger until the next recompute)
	active     int     // number of active streams across all ports
	pokeSet    bool
	gen        uint64    // invalidates scheduled wake-ups
	dirty      bool      // membership or caps changed since the last recompute
	dirtySince sim.Time  // instant dirty last flipped on; recompute lands at +quantum
	lastWake   sim.Time  // previous refresh instant (fast-forward accounting)
	nextID     uint64    // monotone stream ids; completion tie-break and calendar validity
	free       []*Stream // engine-owned stream free list (see DESIGN.md §11)
	due        []*Stream // scratch: streams completing at the current instant
	touched    []*Port   // scratch: ports needing compaction after completions
	cal        calendar  // analytic: pending completion deadlines, lazily invalidated
	memo       memoCache // analytic: water-fill memoization over epoch fingerprints
	pokeFn     func()
	tickFn     func(uint64)

	// Telemetry handles cached by Instrument; nil handles no-op, so the
	// hot loops below pay a nil check and nothing else when disabled.
	telRefreshes  *telemetry.Counter
	telRecomputes *telemetry.Counter
	telMaxStreams *telemetry.Gauge
}

// exactThreshold is the active-stream population up to which every
// membership change recomputes rates immediately; larger populations
// defer the water-fill by one quantum.
const exactThreshold = 512

// New returns a fabric on the given engine.
func New(eng *sim.Engine, cfg Config) *Fabric {
	if cfg.AggregateMBps <= 0 {
		panic("flownet: aggregate capacity must be positive")
	}
	q := cfg.Quantum
	if q == 0 {
		q = 0.05
	}
	f := &Fabric{eng: eng, cap: cfg.AggregateMBps, quantum: q, analytic: !cfg.AnalyticOff}
	// Both scheduling closures are allocated once here and reused for
	// every poke and wake-up over the fabric's lifetime.
	f.pokeFn = func() {
		f.pokeSet = false
		f.refresh()
	}
	f.tickFn = func(gen uint64) {
		if f.gen == gen {
			f.refresh()
		}
	}
	return f
}

// AggregateMBps returns the configured aggregate capacity.
func (f *Fabric) AggregateMBps() float64 { return f.cap }

// Analytic reports whether the analytic fast path is enabled.
func (f *Fabric) Analytic() bool { return f.analytic }

// MemoHits reports how many recomputes were served from the epoch
// memoization cache (always zero with the fast path off).
func (f *Fabric) MemoHits() uint64 { return f.memo.hits }

// MemoMisses reports how many recomputes probed the cache and ran the
// full water-fill (always zero with the fast path off).
func (f *Fabric) MemoMisses() uint64 { return f.memo.misses }

// Instrument attaches a telemetry sink (nil = disabled) and caches the
// fabric's metric handles.
func (f *Fabric) Instrument(tel *telemetry.Sink) {
	f.telRefreshes = tel.Counter("flownet.refreshes")
	f.telRecomputes = tel.Counter("flownet.recomputes")
	f.telMaxStreams = tel.Gauge("flownet.active_streams")
}

// Port is one client of the fabric (typically a compute node). Its
// active streams share the port's allocation.
type Port struct {
	fab     *Fabric
	cap     float64 // local link capacity, MB/s (0 = unlimited)
	weight  float64 // share weight at fabric level
	streams []*Stream
	share   float64 // current port allocation, MB/s
	listed  bool    // present in fab.actPorts (possibly as a stale empty)
	maxUse  float64 // scratch: maximum useful rate this round
	frozen  bool    // scratch: water-fill freeze mark
	touched bool    // scratch: has completions pending removal
}

// NewPort adds a port with the given local link capacity in MB/s
// (0 means no local limit) and fabric-level weight 1.
func (f *Fabric) NewPort(capMBps float64) *Port {
	return f.NewWeightedPort(capMBps, 1)
}

// NewWeightedPort adds a port whose fabric-level share is proportional
// to weight. A background-load injector uses a weighted port.
func (f *Fabric) NewWeightedPort(capMBps, weight float64) *Port {
	if weight <= 0 {
		panic("flownet: port weight must be positive")
	}
	p := &Port{fab: f, cap: capMBps, weight: weight}
	f.ports = append(f.ports, p)
	return p
}

// SetCapMBps changes the port's local link capacity in MB/s (0 = no
// local limit). Degraded-link fault injection uses it; a change while
// streams are in flight takes effect at the next rate recomputation.
func (p *Port) SetCapMBps(capMBps float64) {
	p.cap = capMBps
	if p.listed {
		f := p.fab
		f.markDirty(f.eng.Now())
		f.poke()
	}
}

// CapMBps returns the port's local link capacity (0 = no local limit).
func (p *Port) CapMBps() float64 { return p.cap }

// StreamOpts tunes one transfer.
type StreamOpts struct {
	// RateCap limits this stream's rate in MB/s (0 = unlimited). Used
	// to model request-size/latency-limited transfers such as
	// degenerate page-sized read RPCs.
	RateCap float64
	// Weight sets the within-port share weight (default 1).
	Weight float64
	// Done is called at the stream's exact completion time.
	Done func()
}

// Stream is one in-flight transfer. A Stream is only valid until its
// completion: once Done has been scheduled the fabric recycles the
// object through its free list, so callers must not retain or inspect
// a Stream after its transfer finishes.
//
// Progress is anchored closed-form: between rate changes, remaining
// bytes are anchorRem - rate*(t-anchorT), and the absolute completion
// deadline is a pure function of the anchor. The anchor moves only
// when the assigned rate actually changes (bitwise), so an unchanged
// allocation keeps every deadline bit-stable across recomputes — the
// invariant that makes the analytic calendar and the pure event path
// agree byte for byte.
type Stream struct {
	port      *Port
	id        uint64   // monotone per-fabric; completion tie-break
	anchorT   sim.Time // instant of the last rate change
	anchorRem float64  // MB remaining at anchorT
	rateCap   float64
	weight    float64
	rate      float64  // current allocation, MB/s
	deadline  sim.Time // absolute completion time at the current rate (Infinity while idle)
	calDl     sim.Time // deadline of the latest calendar entry pushed (-1 = none)
	joined    sim.Time
	done      func()
	finished  bool
	frozen    bool // scratch: water-fill freeze mark
}

// Rate returns the stream's current fluid rate in MB/s. Exposed for
// instrumentation and tests.
func (s *Stream) Rate() float64 { return s.rate }

// Deadline returns the stream's absolute analytic completion time at
// its current rate (Infinity while it awaits an allocation). Exposed
// for instrumentation and the hazard tests.
func (s *Stream) Deadline() sim.Time { return s.deadline }

// Start begins an asynchronous transfer of demandMB megabytes on the
// port. Zero-demand streams complete immediately.
func (p *Port) Start(demandMB float64, opts StreamOpts) *Stream {
	if demandMB < 0 {
		panic("flownet: negative demand")
	}
	w := opts.Weight
	if w == 0 {
		w = 1
	}
	f := p.fab
	now := f.eng.Now()
	if demandMB == 0 {
		// Zero-demand streams never enter a port, so they never reach
		// the completion path that feeds the free list; allocate fresh.
		if opts.Done != nil {
			f.eng.At(now, opts.Done)
		}
		return &Stream{port: p, rateCap: opts.RateCap, weight: w, joined: now, finished: true}
	}
	var s *Stream
	if n := len(f.free); n > 0 {
		s = f.free[n-1]
		f.free[n-1] = nil
		f.free = f.free[:n-1]
	} else {
		s = &Stream{}
	}
	f.nextID++
	*s = Stream{
		port:      p,
		id:        f.nextID,
		anchorT:   now,
		anchorRem: demandMB,
		rateCap:   opts.RateCap,
		weight:    w,
		deadline:  sim.Infinity,
		calDl:     -1,
		joined:    now,
		done:      opts.Done,
	}
	p.streams = append(p.streams, s)
	if !p.listed {
		p.listed = true
		f.actPorts = append(f.actPorts, p)
	}
	if f.active == 0 {
		f.lastWake = now // idle gaps are not fast-forwarded stretches
	}
	f.active++
	f.telMaxStreams.Set(float64(f.active))
	f.markDirty(now)
	f.poke()
	return s
}

// Transfer moves demandMB megabytes synchronously on behalf of proc and
// returns the transfer duration.
func (p *Port) Transfer(proc *sim.Proc, demandMB float64, opts StreamOpts) sim.Duration {
	start := proc.Now()
	wake := proc.Block()
	if userDone := opts.Done; userDone != nil {
		opts.Done = func() {
			userDone()
			wake()
		}
	} else {
		// Common case: the wake is the whole completion action, and it
		// is the process's pre-allocated wake function — no closure.
		opts.Done = wake
	}
	p.Start(demandMB, opts)
	proc.Park()
	return proc.Now() - start
}

// markDirty notes that membership or caps changed. The first change of
// a dirty episode pins dirtySince: in the quantized regime the
// recompute lands exactly one quantum later, absorbing every further
// change in between into the same water-fill.
func (f *Fabric) markDirty(now sim.Time) {
	if !f.dirty {
		f.dirty = true
		f.dirtySince = now
	}
}

// poke schedules a refresh at the current instant, coalescing all
// same-instant membership changes (e.g. a whole barrier's worth of
// writes starting together) into one wake-up.
func (f *Fabric) poke() {
	if f.pokeSet {
		return
	}
	f.pokeSet = true
	f.eng.At(f.eng.Now(), f.pokeFn)
}

// refresh is the fabric's single wake-up handler: complete streams
// whose deadlines have arrived, run the water-fill if it is due, and
// schedule the next wake at min(next deadline, deferred recompute).
// Because the wake jumps straight to the next interesting instant,
// long uncontended stretches cost one event regardless of length.
func (f *Fabric) refresh() {
	f.telRefreshes.Inc()
	now := f.eng.Now()
	if f.active > exactThreshold {
		if d := now - f.lastWake; d > f.quantum {
			// The historical quantum-tick scheme would have woken
			// ~d/quantum times across this stretch; account the jump.
			f.eng.NoteFastForward(float64(d))
		}
	}
	f.lastWake = now
	f.completeDue(now)
	f.gen++
	if f.active == 0 {
		f.dirty = false
		return
	}
	if f.dirty && (f.active <= exactThreshold || now >= f.dirtySince+f.quantum) {
		f.recompute(now)
		f.dirty = false
	}
	wake := sim.Infinity
	if f.dirty {
		wake = f.dirtySince + f.quantum
	}
	if dl := f.minDeadline(); dl < wake {
		wake = dl
	}
	if wake < sim.Infinity {
		f.eng.AtArg(wake, f.tickFn, f.gen)
	}
}

// completeDue fires done callbacks for streams whose analytic deadline
// has arrived and removes them from their ports. Both paths complete
// in (deadline, id) order — the analytic calendar pops in that order
// natively; the event path collects and sorts — so the done events'
// engine sequence numbers, and with them all downstream scheduling,
// are identical either way.
func (f *Fabric) completeDue(now sim.Time) {
	f.due = f.due[:0]
	if f.analytic {
		for {
			e, ok := f.cal.peek()
			if !ok || e.dl > now {
				break
			}
			f.cal.pop()
			if e.valid() {
				e.s.finished = true
				f.due = append(f.due, e.s)
			}
		}
	} else {
		for _, p := range f.actPorts {
			for _, s := range p.streams {
				if s.deadline <= now {
					s.finished = true
					f.due = append(f.due, s)
				}
			}
		}
		due := f.due
		sort.Slice(due, func(i, j int) bool {
			if due[i].deadline != due[j].deadline {
				return due[i].deadline < due[j].deadline
			}
			return due[i].id < due[j].id
		})
	}
	if len(f.due) == 0 {
		return
	}
	f.touched = f.touched[:0]
	for _, s := range f.due {
		f.active--
		f.markDirty(now)
		if s.done != nil {
			f.eng.At(now, s.done)
		}
		if p := s.port; !p.touched {
			p.touched = true
			f.touched = append(f.touched, p)
		}
	}
	for _, p := range f.touched {
		kept := p.streams[:0]
		for _, s := range p.streams {
			if !s.finished {
				kept = append(kept, s)
			}
		}
		for i := len(kept); i < len(p.streams); i++ {
			p.streams[i] = nil
		}
		p.streams = kept
		p.touched = false
		// Emptied ports stay listed in actPorts until the next
		// recompute compacts them — keeping membership bookkeeping
		// O(completions), not O(ports), on the fast path.
	}
	for _, s := range f.due {
		// The stream is out of its port and its done callback holds no
		// reference to it; recycle the object.
		s.done = nil
		s.port = nil
		f.free = append(f.free, s)
	}
}

// minDeadline returns the earliest pending completion deadline:
// calendar top on the fast path, full rescan on the event path.
func (f *Fabric) minDeadline() sim.Time {
	if f.analytic {
		for {
			e, ok := f.cal.peek()
			if !ok {
				return sim.Infinity
			}
			if e.valid() {
				return e.dl
			}
			f.cal.pop()
		}
	}
	min := sim.Infinity
	for _, p := range f.actPorts {
		for _, s := range p.streams {
			if s.deadline < min {
				min = s.deadline
			}
		}
	}
	return min
}

// setRate assigns a stream's water-fill allocation. When the rate is
// bitwise unchanged the anchor — and therefore the deadline — is left
// untouched, so stable allocations never churn the calendar and the
// deadline bits agree across recomputes on both paths. On a change the
// remaining bytes are materialized at now and the deadline re-derived.
func (f *Fabric) setRate(s *Stream, r float64, now sim.Time) {
	if math.Float64bits(r) == math.Float64bits(s.rate) {
		return
	}
	rem := s.anchorRem
	if s.rate > 0 {
		rem -= s.rate * float64(now-s.anchorT)
	}
	s.anchorT, s.anchorRem, s.rate = now, rem, r
	if r <= 0 {
		s.deadline = sim.Infinity
		return
	}
	if rem <= 0 {
		// Float rounding can materialize a non-positive residue just
		// before the old deadline; complete at the current instant.
		s.deadline = now
	} else {
		s.deadline = now + sim.Time(rem/r)
	}
	if f.analytic && math.Float64bits(float64(s.deadline)) != math.Float64bits(float64(s.calDl)) {
		f.cal.push(calEntry{dl: s.deadline, id: s.id, s: s})
		s.calDl = s.deadline
	}
}

// recompute performs the two-level water-filling rate allocation over
// the active ports using iterative freezing (no sorting, no
// allocation): in each round the tentative fair level is computed and
// every port whose maximum useful rate falls below its weighted share
// is frozen there; the remainder is split by weight. On the analytic
// path the whole allocation is first probed against the epoch
// memoization cache; a fingerprint hit replays the memoized rates
// bit-for-bit instead of re-running the fill.
func (f *Fabric) recompute(now sim.Time) {
	f.telRecomputes.Inc()
	// Compact ports that emptied since the last recompute, preserving
	// relative order (both paths run this same pass, so actPorts —
	// and with it water-fill iteration order — stays identical).
	kept := f.actPorts[:0]
	for _, p := range f.actPorts {
		if len(p.streams) == 0 {
			p.listed = false
			p.share = 0
			continue
		}
		kept = append(kept, p)
	}
	for i := len(kept); i < len(f.actPorts); i++ {
		f.actPorts[i] = nil
	}
	f.actPorts = kept
	if f.analytic && f.memo.apply(f, now) {
		return
	}
	totalW := 0.0
	for _, p := range f.actPorts {
		max := p.cap
		if max <= 0 {
			max = math.Inf(1)
		}
		capSum := 0.0
		allCapped := true
		for _, s := range p.streams {
			if s.rateCap <= 0 {
				allCapped = false
				break
			}
			capSum += s.rateCap
		}
		if allCapped && capSum < max {
			max = capSum
		}
		p.maxUse = max
		p.frozen = false
		totalW += p.weight
	}
	remaining := f.cap
	wRem := totalW
	for wRem > 0 {
		level := remaining / wRem
		froze := false
		for _, p := range f.actPorts {
			if !p.frozen && p.maxUse <= p.weight*level {
				p.frozen = true
				p.share = p.maxUse
				remaining -= p.maxUse
				wRem -= p.weight
				froze = true
			}
		}
		if !froze {
			for _, p := range f.actPorts {
				if !p.frozen {
					p.share = p.weight * level
				}
			}
			break
		}
	}
	for _, p := range f.actPorts {
		p.distribute(now)
	}
	if f.analytic {
		f.memo.store(f)
	}
}

// distribute water-fills the port share across its streams with the
// same iterative-freezing scheme, honoring per-stream caps and weights.
// Rates are assigned through setRate so anchors and deadlines move only
// on an actual change.
func (p *Port) distribute(now sim.Time) {
	f := p.fab
	totalW := 0.0
	for _, s := range p.streams {
		s.frozen = false
		totalW += s.weight
	}
	remaining := p.share
	wRem := totalW
	for wRem > 0 {
		level := remaining / wRem
		froze := false
		for _, s := range p.streams {
			if s.frozen {
				continue
			}
			max := s.rateCap
			if max <= 0 {
				max = math.Inf(1)
			}
			if max <= s.weight*level {
				s.frozen = true
				f.setRate(s, max, now)
				remaining -= max
				wRem -= s.weight
				froze = true
			}
		}
		if !froze {
			for _, s := range p.streams {
				if !s.frozen {
					f.setRate(s, s.weight*level, now)
				}
			}
			break
		}
	}
}

// ActiveStreams reports the number of in-flight streams fabric-wide.
func (f *Fabric) ActiveStreams() int { return f.active }

// String implements fmt.Stringer for diagnostics.
func (f *Fabric) String() string {
	return fmt.Sprintf("fabric(cap=%.0fMB/s ports=%d active=%d)", f.cap, len(f.ports), f.active)
}
