// Package telemetry is the run-scoped, deterministic observability
// sink: counters, gauges and log-binned histograms over *virtual* time,
// plus begin/end spans, all snapshotted into a run's output.
//
// Two invariants govern the design:
//
//   - Everything recorded here must be a pure function of the simulated
//     run. The package never reads the wall clock or any other ambient
//     state (enforced statically by ensemblelint's telwall analyzer),
//     so a snapshot is byte-identical across repeats, GOMAXPROCS and
//     runpool worker counts. Wall-clock self-observability (progress
//     bars, pprof profiles) lives in runpool and the CLIs, and never
//     enters serialized output.
//
//   - A disabled sink costs ~zero. A nil *Sink is the disabled sink:
//     every method on *Sink and on the handle types (*Counter, *Gauge,
//     *Hist) is nil-receiver safe, so instrumented hot paths pay one
//     nil-check branch and no allocation when telemetry is off.
//
// Handles returned by Counter/Gauge/Hist are stable for the life of the
// sink (registration is idempotent by name); hot paths should look
// them up once at construction time and hold the pointer.
package telemetry

import (
	"math"
	"sort"
)

// Sink collects one run's telemetry. The zero value is not usable;
// construct with New. A nil *Sink is the disabled sink: every method
// no-ops (and handle lookups return nil handles, whose methods also
// no-op).
//
// Sink is not safe for concurrent use — like the collector it sits
// beside, it relies on the simulation runtime's lock-step schedule
// (one process executes at a time). One run, one engine, one sink.
type Sink struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Hist
	spans    []Span
	open     []int // indices into spans with End unset, by SpanID
}

// New returns an empty, enabled sink.
func New() *Sink {
	return &Sink{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Hist),
	}
}

// Enabled reports whether the sink records anything.
func (s *Sink) Enabled() bool { return s != nil }

// Counter returns the named counter handle, registering it on first
// use. Returns nil (a valid, no-op handle) on a nil sink.
func (s *Sink) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	c := s.counters[name]
	if c == nil {
		c = &Counter{name: name}
		s.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge handle, registering it on first use.
func (s *Sink) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	g := s.gauges[name]
	if g == nil {
		g = &Gauge{name: name}
		s.gauges[name] = g
	}
	return g
}

// Hist returns the named log-binned histogram handle, registering it
// on first use.
func (s *Sink) Hist(name string) *Hist {
	if s == nil {
		return nil
	}
	h := s.hists[name]
	if h == nil {
		h = &Hist{name: name, counts: make(map[int]int64), min: math.Inf(1), max: math.Inf(-1)}
		s.hists[name] = h
	}
	return h
}

// Counter is a monotonically growing sum. The nil handle no-ops.
type Counter struct {
	name string
	v    float64
}

// Add folds delta into the counter.
func (c *Counter) Add(delta float64) {
	if c == nil {
		return
	}
	c.v += delta
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current sum (0 on the nil handle).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value-wins sample that also tracks its high-water
// mark. The nil handle no-ops.
type Gauge struct {
	name   string
	v, max float64
	set    bool
}

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
	if !g.set || v > g.max {
		g.max = v
	}
	g.set = true
}

// Value returns the last set value (0 if never set or nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Max returns the high-water mark (0 if never set or nil handle).
func (g *Gauge) Max() float64 {
	if g == nil {
		return 0
	}
	return g.max
}

// histPerDecade is the fixed log-binning resolution: 4 bins per decade
// of the observed value, enough to separate e.g. a 10 ms metadata op
// from a 30 ms one without per-histogram configuration.
const histPerDecade = 4

// Hist is a log-binned histogram with fixed power-of-ten binning.
// Observations at or below zero (and non-finite ones) land in a
// separate underflow count so the log bins stay well defined. The nil
// handle no-ops.
type Hist struct {
	name     string
	counts   map[int]int64 // bin index -> count; index = floor(log10(v)*perDecade)
	n, under int64
	sum      float64
	min, max float64
}

// Observe folds one observation into the histogram.
func (h *Hist) Observe(v float64) {
	if h == nil {
		return
	}
	h.n++
	if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
		h.under++
		return
	}
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[int(math.Floor(math.Log10(v)*histPerDecade))]++
}

// Count returns the number of observations (0 on the nil handle).
func (h *Hist) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Span is one closed interval of virtual time attributed to a
// category ("phase", "fault", "io"), a name, and optionally a rank
// (Rank < 0 for run-scoped spans such as phases and fault windows).
type Span struct {
	Cat   string  `json:"cat"`
	Name  string  `json:"name"`
	Rank  int     `json:"rank"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// SpanID identifies a span opened with Begin. The nil sink returns a
// negative id, which End ignores.
type SpanID int

// Begin opens a span at virtual time t. Close it with End.
func (s *Sink) Begin(cat, name string, rank int, t float64) SpanID {
	if s == nil {
		return -1
	}
	s.spans = append(s.spans, Span{Cat: cat, Name: name, Rank: rank, Start: t, End: t})
	s.open = append(s.open, len(s.spans)-1)
	return SpanID(len(s.open) - 1)
}

// End closes the span at virtual time t. Ending an already-ended span
// extends it; ending an invalid id no-ops.
func (s *Sink) End(id SpanID, t float64) {
	if s == nil || id < 0 || int(id) >= len(s.open) {
		return
	}
	sp := &s.spans[s.open[id]]
	if t > sp.End {
		sp.End = t
	}
}

// Span records an already-closed interval.
func (s *Sink) Span(cat, name string, rank int, start, end float64) {
	if s == nil {
		return
	}
	s.spans = append(s.spans, Span{Cat: cat, Name: name, Rank: rank, Start: start, End: end})
}

// Spans returns the recorded spans in recording order (the
// deterministic order instrumentation emitted them).
func (s *Sink) Spans() []Span {
	if s == nil {
		return nil
	}
	return append([]Span(nil), s.spans...)
}

// Snapshot is the serializable form of a sink's metrics. Every section
// is sorted by name, so encoding a snapshot is deterministic.
type Snapshot struct {
	Counters []CounterSnap `json:"counters,omitempty"`
	Gauges   []GaugeSnap   `json:"gauges,omitempty"`
	Hists    []HistSnap    `json:"hists,omitempty"`
}

// CounterSnap is one counter's final value.
type CounterSnap struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// GaugeSnap is one gauge's final value and high-water mark.
type GaugeSnap struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Max   float64 `json:"max"`
}

// HistSnap is one histogram's summary plus its non-empty bins in
// ascending value order.
type HistSnap struct {
	Name  string    `json:"name"`
	Count int64     `json:"count"`
	Under int64     `json:"under,omitempty"`
	Sum   float64   `json:"sum"`
	Min   float64   `json:"min"`
	Max   float64   `json:"max"`
	Bins  []BinSnap `json:"bins,omitempty"`
}

// Mean returns the histogram's mean positive observation.
func (h HistSnap) Mean() float64 {
	pos := h.Count - h.Under
	if pos <= 0 {
		return 0
	}
	return h.Sum / float64(pos)
}

// BinSnap is one histogram bin [Lo, Hi) and its count.
type BinSnap struct {
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Count int64   `json:"count"`
}

// Snapshot freezes the sink's metrics into their serializable form.
// Returns nil on a nil sink.
func (s *Sink) Snapshot() *Snapshot {
	if s == nil {
		return nil
	}
	snap := &Snapshot{}
	for name, c := range s.counters {
		snap.Counters = append(snap.Counters, CounterSnap{Name: name, Value: c.v})
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	for name, g := range s.gauges {
		snap.Gauges = append(snap.Gauges, GaugeSnap{Name: name, Value: g.v, Max: g.max})
	}
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	for name, h := range s.hists {
		hs := HistSnap{Name: name, Count: h.n, Under: h.under, Sum: h.sum}
		if h.n > h.under {
			hs.Min, hs.Max = h.min, h.max
		}
		idx := make([]int, 0, len(h.counts))
		for i := range h.counts {
			//lint:allow(maporder) collected keys are sort.Ints-ed on the next line
			idx = append(idx, i)
		}
		sort.Ints(idx)
		for _, i := range idx {
			hs.Bins = append(hs.Bins, BinSnap{
				Lo:    math.Pow(10, float64(i)/histPerDecade),
				Hi:    math.Pow(10, float64(i+1)/histPerDecade),
				Count: h.counts[i],
			})
		}
		snap.Hists = append(snap.Hists, hs)
	}
	sort.Slice(snap.Hists, func(i, j int) bool { return snap.Hists[i].Name < snap.Hists[j].Name })
	return snap
}

// Counter returns the named counter's snapshot value, or 0.
func (s *Snapshot) Counter(name string) float64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}
