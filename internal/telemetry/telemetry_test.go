package telemetry

import (
	"encoding/json"
	"math"
	"testing"
)

func TestNilSinkNoOps(t *testing.T) {
	var s *Sink
	if s.Enabled() {
		t.Fatal("nil sink reports enabled")
	}
	c := s.Counter("x")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	g := s.Gauge("x")
	g.Set(5)
	if g.Value() != 0 || g.Max() != 0 {
		t.Fatal("nil gauge accumulated")
	}
	h := s.Hist("x")
	h.Observe(1)
	if h.Count() != 0 {
		t.Fatal("nil hist accumulated")
	}
	id := s.Begin("cat", "n", 0, 0)
	s.End(id, 1)
	s.Span("cat", "n", 0, 0, 1)
	if s.Spans() != nil {
		t.Fatal("nil sink recorded spans")
	}
	if s.Snapshot() != nil {
		t.Fatal("nil sink produced snapshot")
	}
}

func TestCounterGaugeHist(t *testing.T) {
	s := New()
	c := s.Counter("events")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	if s.Counter("events") != c {
		t.Fatal("re-registration returned a different handle")
	}

	g := s.Gauge("heap")
	g.Set(10)
	g.Set(3)
	if g.Value() != 3 || g.Max() != 10 {
		t.Fatalf("gauge value/max = %v/%v, want 3/10", g.Value(), g.Max())
	}

	h := s.Hist("dur")
	for _, v := range []float64{0.5, 5, 50, 0, -1, math.NaN(), math.Inf(1)} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("hist count = %d, want 7", h.Count())
	}
	snap := s.Snapshot()
	if len(snap.Hists) != 1 {
		t.Fatalf("hists = %d, want 1", len(snap.Hists))
	}
	hs := snap.Hists[0]
	if hs.Under != 4 {
		t.Fatalf("underflow = %d, want 4 (zero, negative, NaN, Inf)", hs.Under)
	}
	if hs.Min != 0.5 || hs.Max != 50 {
		t.Fatalf("min/max = %v/%v, want 0.5/50", hs.Min, hs.Max)
	}
	if math.Abs(hs.Mean()-55.5/3) > 1e-12 {
		t.Fatalf("mean = %v, want %v", hs.Mean(), 55.5/3)
	}
	var total int64
	for _, b := range hs.Bins {
		if b.Lo >= b.Hi {
			t.Fatalf("bin edges out of order: [%v, %v)", b.Lo, b.Hi)
		}
		total += b.Count
	}
	if total != 3 {
		t.Fatalf("binned count = %d, want 3", total)
	}
}

func TestHistBinEdgesCoverObservation(t *testing.T) {
	s := New()
	h := s.Hist("x")
	vals := []float64{1e-6, 0.02, 0.9999, 1, 3.14, 1e9}
	for _, v := range vals {
		h.Observe(v)
	}
	snap := s.Snapshot()
	for _, v := range vals {
		found := false
		for _, b := range snap.Hists[0].Bins {
			// Edges are pow(10, i/4); allow for FP slop at exact edges.
			if v >= b.Lo*(1-1e-12) && v < b.Hi*(1+1e-12) && b.Count > 0 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("observation %v not covered by any non-empty bin", v)
		}
	}
}

func TestSpans(t *testing.T) {
	s := New()
	id := s.Begin("phase", "write", -1, 1.0)
	s.Span("io", "pwrite", 3, 1.5, 2.5)
	s.End(id, 4.0)
	s.End(id, 3.0) // later End with earlier time must not shrink the span
	s.End(SpanID(99), 10)
	s.End(SpanID(-1), 10)
	spans := s.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0] != (Span{Cat: "phase", Name: "write", Rank: -1, Start: 1, End: 4}) {
		t.Fatalf("phase span = %+v", spans[0])
	}
	if spans[1] != (Span{Cat: "io", Name: "pwrite", Rank: 3, Start: 1.5, End: 2.5}) {
		t.Fatalf("io span = %+v", spans[1])
	}
	// Spans() must return a copy.
	spans[0].Name = "mutated"
	if s.Spans()[0].Name != "write" {
		t.Fatal("Spans() aliases internal storage")
	}
}

// Snapshot serialization must not depend on registration or map order.
func TestSnapshotDeterministic(t *testing.T) {
	build := func(names []string) []byte {
		s := New()
		for _, n := range names {
			s.Counter(n).Inc()
			s.Gauge("g." + n).Set(float64(len(n)))
			s.Hist("h." + n).Observe(1.5)
		}
		b, err := json.Marshal(s.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := build([]string{"alpha", "beta", "gamma", "delta"})
	b := build([]string{"delta", "gamma", "beta", "alpha"})
	if string(a) != string(b) {
		t.Fatalf("snapshot depends on registration order:\n%s\n%s", a, b)
	}
}

func TestSnapshotCounterLookup(t *testing.T) {
	s := New()
	s.Counter("a").Add(7)
	snap := s.Snapshot()
	if got := snap.Counter("a"); got != 7 {
		t.Fatalf("Counter(a) = %v, want 7", got)
	}
	if got := snap.Counter("missing"); got != 0 {
		t.Fatalf("Counter(missing) = %v, want 0", got)
	}
}
