package report

import (
	"strings"
	"testing"

	"ensembleio/internal/ensemble"
)

func TestHistogramRendering(t *testing.T) {
	h := ensemble.NewHistogram(ensemble.LinearBins(0, 10, 5))
	for _, x := range []float64{1, 1, 1, 1, 5, 9} {
		h.Add(x)
	}
	var b strings.Builder
	Histogram(&b, "title", h)
	out := b.String()
	if !strings.Contains(out, "title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "n=6") {
		t.Errorf("missing count: %q", out)
	}
	// The dominant bin gets the longest bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	longest, idx := 0, -1
	for i, l := range lines {
		n := strings.Count(l, "#")
		if n > longest {
			longest, idx = n, i
		}
	}
	if idx < 0 || !strings.Contains(lines[idx], "4") {
		t.Errorf("dominant bar not on the 4-count bin: %q", out)
	}
	// Empty bins are skipped.
	if strings.Contains(out, "6.0-8.0") {
		t.Errorf("empty bin rendered: %q", out)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := ensemble.NewHistogram(ensemble.LinearBins(0, 10, 5))
	var b strings.Builder
	Histogram(&b, "t", h)
	if !strings.Contains(b.String(), "(empty)") {
		t.Error("empty histogram not flagged")
	}
}

func TestLogHistogramUsesLogBars(t *testing.T) {
	h := ensemble.NewHistogram(ensemble.LogBins(0.1, 100, 2))
	for i := 0; i < 1000; i++ {
		h.Add(1)
	}
	h.Add(50) // single event in a far bin
	var b strings.Builder
	Histogram(&b, "t", h)
	// With log bars, the single-count bin still shows a visible bar
	// relative to the 1000-count bin (not 0 of 50 chars).
	lines := strings.Split(b.String(), "\n")
	found := false
	for _, l := range lines {
		if strings.Contains(l, " 1 ") && strings.Contains(l, "#") {
			found = true
		}
	}
	if !found {
		t.Errorf("log-scale bar for rare bin missing:\n%s", b.String())
	}
}

func TestSeriesRendering(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	var b strings.Builder
	Series(&b, "ramp", 0, 1, vals, 50)
	out := b.String()
	if !strings.Contains(out, "ramp") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 1 title + 12 rows + 1 axis.
	if len(lines) != 14 {
		t.Errorf("%d lines, want 14", len(lines))
	}
	// A ramp fills more of the top-right than the top-left.
	top := lines[1]
	if strings.Count(top[:len(top)/2], "*") >= strings.Count(top[len(top)/2:], "*") {
		t.Errorf("ramp not rising: %q", top)
	}
}

func TestSeriesEmpty(t *testing.T) {
	var b strings.Builder
	Series(&b, "t", 0, 1, nil, 10)
	if !strings.Contains(b.String(), "(empty)") {
		t.Error("empty series not flagged")
	}
}

func TestTableAlignment(t *testing.T) {
	var b strings.Builder
	Table(&b, [][]string{
		{"name", "value"},
		{"a", "1"},
		{"longer-name", "22"},
	})
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines, want 4 (header, rule, 2 rows)", len(lines))
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Errorf("missing header rule: %q", lines[1])
	}
	// Columns align: "value" and "1" start at the same offset.
	hdr := strings.Index(lines[0], "value")
	row := strings.Index(lines[2], "1")
	if hdr != row {
		t.Errorf("column misaligned: header at %d, row at %d", hdr, row)
	}
}

func TestCSVEscaping(t *testing.T) {
	var b strings.Builder
	err := CSV(&b, [][]string{
		{"plain", `with,comma`, `with"quote`},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "plain,\"with,comma\",\"with\"\"quote\"\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestModeTable(t *testing.T) {
	rows := ModeTable([]ensemble.Mode{
		{Center: 32.1, Mass: 0.33, Prominence: 1.0},
		{Center: 16.4, Mass: 0.25, Prominence: 0.4},
	}, "s")
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	if rows[1][0] != "32.10" {
		t.Errorf("center cell %q", rows[1][0])
	}
}

func TestF(t *testing.T) {
	if F(3.14159, 2) != "3.14" {
		t.Errorf("F: %q", F(3.14159, 2))
	}
	if F(100, 0) != "100" {
		t.Errorf("F: %q", F(100, 0))
	}
}
