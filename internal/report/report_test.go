package report

import (
	encsv "encoding/csv"
	"math"
	"strings"
	"testing"

	"ensembleio/internal/ensemble"
)

func TestHistogramRendering(t *testing.T) {
	h := ensemble.NewHistogram(ensemble.LinearBins(0, 10, 5))
	for _, x := range []float64{1, 1, 1, 1, 5, 9} {
		h.Add(x)
	}
	var b strings.Builder
	Histogram(&b, "title", h)
	out := b.String()
	if !strings.Contains(out, "title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "n=6") {
		t.Errorf("missing count: %q", out)
	}
	// The dominant bin gets the longest bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	longest, idx := 0, -1
	for i, l := range lines {
		n := strings.Count(l, "#")
		if n > longest {
			longest, idx = n, i
		}
	}
	if idx < 0 || !strings.Contains(lines[idx], "4") {
		t.Errorf("dominant bar not on the 4-count bin: %q", out)
	}
	// Empty bins are skipped.
	if strings.Contains(out, "6.0-8.0") {
		t.Errorf("empty bin rendered: %q", out)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := ensemble.NewHistogram(ensemble.LinearBins(0, 10, 5))
	var b strings.Builder
	Histogram(&b, "t", h)
	if !strings.Contains(b.String(), "(empty)") {
		t.Error("empty histogram not flagged")
	}
}

func TestLogHistogramUsesLogBars(t *testing.T) {
	h := ensemble.NewHistogram(ensemble.LogBins(0.1, 100, 2))
	for i := 0; i < 1000; i++ {
		h.Add(1)
	}
	h.Add(50) // single event in a far bin
	var b strings.Builder
	Histogram(&b, "t", h)
	// With log bars, the single-count bin still shows a visible bar
	// relative to the 1000-count bin (not 0 of 50 chars).
	lines := strings.Split(b.String(), "\n")
	found := false
	for _, l := range lines {
		if strings.Contains(l, " 1 ") && strings.Contains(l, "#") {
			found = true
		}
	}
	if !found {
		t.Errorf("log-scale bar for rare bin missing:\n%s", b.String())
	}
}

func TestHistogramSingleBin(t *testing.T) {
	h := ensemble.NewHistogram(ensemble.LinearBins(0, 10, 1))
	h.Add(3)
	h.Add(7)
	var b strings.Builder
	Histogram(&b, "one bin", h)
	out := b.String()
	if !strings.Contains(out, "n=2") {
		t.Errorf("missing count: %q", out)
	}
	if !strings.Contains(out, "0-10") {
		t.Errorf("missing bin range: %q", out)
	}
	// The lone bin holds everything, so its bar fills the full width.
	if !strings.Contains(out, strings.Repeat("#", 50)) {
		t.Errorf("single bin bar not full-width: %q", out)
	}
}

func TestSeriesRendering(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	var b strings.Builder
	Series(&b, "ramp", 0, 1, vals, 50)
	out := b.String()
	if !strings.Contains(out, "ramp") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 1 title + 12 rows + 1 axis.
	if len(lines) != 14 {
		t.Errorf("%d lines, want 14", len(lines))
	}
	// A ramp fills more of the top-right than the top-left.
	top := lines[1]
	if strings.Count(top[:len(top)/2], "*") >= strings.Count(top[len(top)/2:], "*") {
		t.Errorf("ramp not rising: %q", top)
	}
}

func TestSeriesEmpty(t *testing.T) {
	var b strings.Builder
	Series(&b, "t", 0, 1, nil, 10)
	if !strings.Contains(b.String(), "(empty)") {
		t.Error("empty series not flagged")
	}
}

func TestSeriesZeroCols(t *testing.T) {
	// cols < 1 must not divide by zero; it clamps to one column.
	for _, cols := range []int{0, -3} {
		var b strings.Builder
		Series(&b, "clamped", 0, 1, []float64{1, 2, 3}, cols)
		if !strings.Contains(b.String(), "clamped") {
			t.Errorf("cols=%d: missing output", cols)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	var b strings.Builder
	Table(&b, [][]string{
		{"name", "value"},
		{"a", "1"},
		{"longer-name", "22"},
	})
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines, want 4 (header, rule, 2 rows)", len(lines))
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Errorf("missing header rule: %q", lines[1])
	}
	// Columns align: "value" and "1" start at the same offset.
	hdr := strings.Index(lines[0], "value")
	row := strings.Index(lines[2], "1")
	if hdr != row {
		t.Errorf("column misaligned: header at %d, row at %d", hdr, row)
	}
}

func TestCSVEscaping(t *testing.T) {
	var b strings.Builder
	err := CSV(&b, [][]string{
		{"plain", `with,comma`, `with"quote`},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "plain,\"with,comma\",\"with\"\"quote\"\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	// Everything CSV writes must come back unchanged through the
	// standard library's reader: the "RFC-4180-lite" quoting is the
	// real thing for commas, quotes, and embedded newlines.
	rows := [][]string{
		{"name", "value", "note"},
		{"plain", "1", "nothing special"},
		{"with,comma", "2", `say "hi"`},
		{"multi\nline", "3", `",",""` + "\n"},
		{"", "4", " leading and trailing "},
	}
	var b strings.Builder
	if err := CSV(&b, rows); err != nil {
		t.Fatal(err)
	}
	got, err := encsv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("stdlib reader rejected our CSV: %v\n%q", err, b.String())
	}
	if len(got) != len(rows) {
		t.Fatalf("%d rows back, want %d", len(got), len(rows))
	}
	for i := range rows {
		for j := range rows[i] {
			if got[i][j] != rows[i][j] {
				t.Errorf("row %d col %d: %q round-tripped to %q", i, j, rows[i][j], got[i][j])
			}
		}
	}
}

func TestFNonFinite(t *testing.T) {
	cases := map[float64]string{
		math.NaN():   "NaN",
		math.Inf(1):  "Inf",
		math.Inf(-1): "-Inf",
	}
	for v, want := range cases {
		if got := F(v, 2); got != want {
			t.Errorf("F(%v) = %q, want %q", v, got, want)
		}
	}
	// fmtNum feeds ranges and axis labels; same guards apply.
	if got := fmtRange(math.NaN(), math.Inf(1)); got != "NaN-Inf" {
		t.Errorf("fmtRange = %q", got)
	}
}

func TestModeTable(t *testing.T) {
	rows := ModeTable([]ensemble.Mode{
		{Center: 32.1, Mass: 0.33, Prominence: 1.0},
		{Center: 16.4, Mass: 0.25, Prominence: 0.4},
	}, "s")
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	if rows[1][0] != "32.10" {
		t.Errorf("center cell %q", rows[1][0])
	}
}

func TestF(t *testing.T) {
	if F(3.14159, 2) != "3.14" {
		t.Errorf("F: %q", F(3.14159, 2))
	}
	if F(100, 0) != "100" {
		t.Errorf("F: %q", F(100, 0))
	}
}
