// Package report renders the paper's tables and figures as terminal
// text and CSV: histograms (linear and log-log), rate-versus-time
// series, trace diagrams and aligned comparison tables. All figure
// regeneration in cmd/paperfig goes through this package.
package report

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"ensembleio/internal/ensemble"
)

// Bar renders one horizontal bar of width proportional to v/max.
func bar(v, max float64, width int) string {
	if max <= 0 || v <= 0 {
		return ""
	}
	n := int(v / max * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// Histogram renders h as an ASCII bar chart. Log-binned histograms get
// logarithmic bar lengths (the paper's log-log presentation), so that
// rare slow modes remain visible next to dominant fast ones.
func Histogram(w io.Writer, title string, h *ensemble.Histogram) {
	fmt.Fprintf(w, "%s  (n=%.0f, under=%.0f, over=%.0f)\n", title, h.Total(), h.Underflow(), h.Overflow())
	counts := h.Counts()
	max := 0.0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		fmt.Fprintln(w, "  (empty)")
		return
	}
	logScale := h.Bins.Log
	for i, c := range counts {
		if c == 0 {
			continue
		}
		v, m := c, max
		if logScale {
			v, m = math.Log10(1+c), math.Log10(1+max)
		}
		fmt.Fprintf(w, "  %12s  %6.0f %s\n", fmtRange(h.Bins.Edges[i], h.Bins.Edges[i+1]), c, bar(v, m, 50))
	}
}

func fmtRange(lo, hi float64) string {
	return fmt.Sprintf("%s-%s", fmtNum(lo), fmtNum(hi))
}

func fmtNum(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == 0:
		return "0"
	case math.Abs(v) >= 100:
		return strconv.FormatFloat(v, 'f', 0, 64)
	case math.Abs(v) >= 1:
		return strconv.FormatFloat(v, 'f', 1, 64)
	default:
		return strconv.FormatFloat(v, 'g', 2, 64)
	}
}

// Series renders a time series as a fixed-width ASCII strip chart.
func Series(w io.Writer, title string, t0 float64, dt float64, values []float64, cols int) {
	fmt.Fprintln(w, title)
	if len(values) == 0 {
		fmt.Fprintln(w, "  (empty)")
		return
	}
	if cols < 1 {
		cols = 1
	}
	// Downsample to cols columns by averaging.
	per := (len(values) + cols - 1) / cols
	var ds []float64
	for i := 0; i < len(values); i += per {
		end := i + per
		if end > len(values) {
			end = len(values)
		}
		s := 0.0
		for _, v := range values[i:end] {
			s += v
		}
		ds = append(ds, s/float64(end-i))
	}
	max := 0.0
	for _, v := range ds {
		if v > max {
			max = v
		}
	}
	const rows = 12
	for r := rows; r >= 1; r-- {
		thresh := max * float64(r-1) / float64(rows)
		line := make([]byte, len(ds))
		for i, v := range ds {
			if v > thresh && v > 0 {
				line[i] = '*'
			} else {
				line[i] = ' '
			}
		}
		label := ""
		if r == rows {
			label = fmtNum(max)
		} else if r == 1 {
			label = "0"
		}
		fmt.Fprintf(w, "  %8s |%s\n", label, string(line))
	}
	endT := t0 + dt*float64(len(values))
	fmt.Fprintf(w, "  %8s  %-s%*s\n", "", fmtNum(t0)+"s", len(ds)-len(fmtNum(t0)), fmtNum(endT)+"s")
}

// Table renders rows with aligned columns. The first row is treated as
// the header.
func Table(w io.Writer, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for ri, r := range rows {
		var b strings.Builder
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		if ri == 0 {
			var sep strings.Builder
			for i := range r {
				if i > 0 {
					sep.WriteString("  ")
				}
				sep.WriteString(strings.Repeat("-", widths[i]))
			}
			fmt.Fprintln(w, sep.String())
		}
	}
}

// CSV writes rows as comma-separated values (RFC-4180-lite: fields are
// quoted only when they contain a comma or quote).
func CSV(w io.Writer, rows [][]string) error {
	for _, r := range rows {
		for i, c := range r {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// F formats a float compactly for table cells. Non-finite values
// render as NaN/Inf/-Inf rather than strconv's default spelling, so a
// poisoned statistic is unmistakable in a report instead of blending
// into a numeric column.
func F(v float64, prec int) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmtNum(v)
	}
	return strconv.FormatFloat(v, 'f', prec, 64)
}

// ModeTable summarizes detected modes as table rows.
func ModeTable(modes []ensemble.Mode, unit string) [][]string {
	rows := [][]string{{"mode center (" + unit + ")", "mass", "prominence"}}
	for _, m := range modes {
		rows = append(rows, []string{F(m.Center, 2), F(m.Mass, 3), F(m.Prominence, 3)})
	}
	return rows
}
