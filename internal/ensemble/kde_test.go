package ensemble

import (
	"math"
	"testing"

	"ensembleio/internal/sim"
)

func TestKDEIntegratesToOne(t *testing.T) {
	g := sim.NewRNG(41)
	d := NewDataset(nil)
	for i := 0; i < 5000; i++ {
		d.Add(g.Normal(10, 2))
	}
	k := NewKDE(d, 0)
	integral := 0.0
	for x := 0.0; x < 20; x += 0.05 {
		integral += k.Eval(x) * 0.05
	}
	if math.Abs(integral-1) > 0.02 {
		t.Errorf("KDE integral %v, want ~1", integral)
	}
}

func TestKDEPeaksAtTrueMean(t *testing.T) {
	g := sim.NewRNG(42)
	d := NewDataset(nil)
	for i := 0; i < 5000; i++ {
		d.Add(g.Normal(7, 1))
	}
	k := NewKDE(d, 0)
	modes := k.Modes(400, 0.2)
	if len(modes) != 1 {
		t.Fatalf("%d modes, want 1", len(modes))
	}
	if math.Abs(modes[0].Center-7) > 0.3 {
		t.Errorf("mode at %v, want ~7", modes[0].Center)
	}
}

func TestKDEFindsHarmonicModes(t *testing.T) {
	g := sim.NewRNG(43)
	d := NewDataset(nil)
	for i := 0; i < 20000; i++ {
		switch {
		case g.Bernoulli(0.45):
			d.Add(g.Normal(32, 1.2))
		case g.Bernoulli(0.5):
			d.Add(g.Normal(16, 1.0))
		default:
			d.Add(g.Normal(8, 0.8))
		}
	}
	modes := NewKDE(d, 0).Modes(600, 0.1)
	if len(modes) != 3 {
		t.Fatalf("%d modes, want 3: %+v", len(modes), modes)
	}
	// Cross-validate: the histogram route agrees with the KDE route.
	h := NewHistogram(LinearBins(0, d.Max()*1.01, 100))
	h.AddAll(d)
	hModes := h.Modes(ModeOpts{})
	if len(hModes) != 3 {
		t.Fatalf("histogram route found %d modes, want 3", len(hModes))
	}
	for _, km := range modes {
		matched := false
		for _, hm := range hModes {
			if math.Abs(km.Center-hm.Center) < 2 {
				matched = true
			}
		}
		if !matched {
			t.Errorf("KDE mode at %v has no histogram counterpart %+v", km.Center, hModes)
		}
	}
	// Strongest first.
	for i := 1; i < len(modes); i++ {
		if modes[i].Height > modes[i-1].Height {
			t.Fatal("modes not sorted by height")
		}
	}
}

func TestKDEBandwidthOverride(t *testing.T) {
	d := NewDataset([]float64{1, 2, 3})
	k := NewKDE(d, 0.5)
	if k.Bandwidth != 0.5 {
		t.Errorf("bandwidth %v, want 0.5", k.Bandwidth)
	}
	// Huge bandwidth merges everything into one mode.
	if m := NewKDE(d, 10).Modes(200, 0.5); len(m) != 1 {
		t.Errorf("oversmoothed KDE has %d modes, want 1", len(m))
	}
}

func TestKDEEmpty(t *testing.T) {
	k := NewKDE(NewDataset(nil), 0)
	if k.Eval(1) != 0 {
		t.Error("empty KDE density non-zero")
	}
	if k.Modes(100, 0.1) != nil {
		t.Error("empty KDE produced modes")
	}
}
