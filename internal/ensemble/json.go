package ensemble

import (
	"encoding/json"
	"fmt"
	"math"
)

// bad reports whether a mass value is unusable (negative or
// non-finite).
func bad(v float64) bool {
	return math.IsNaN(v) || math.IsInf(v, 0) || v < 0
}

// JSON encoding for histograms: the paper's conclusion argues that it
// is usually unnecessary to store the bulk of the performance data —
// "just enough to define the distribution". A serialized histogram is
// that minimal artifact: bin edges, counts, and out-of-range mass.

type histJSON struct {
	Edges     []float64 `json:"edges"`
	Log       bool      `json:"log,omitempty"`
	Counts    []float64 `json:"counts"`
	Underflow float64   `json:"underflow,omitempty"`
	Overflow  float64   `json:"overflow,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histJSON{
		Edges:     h.Bins.Edges,
		Log:       h.Bins.Log,
		Counts:    h.counts,
		Underflow: h.underflow,
		Overflow:  h.overflow,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var raw histJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if len(raw.Edges) < 2 {
		return fmt.Errorf("ensemble: histogram needs at least 2 bin edges, got %d", len(raw.Edges))
	}
	if len(raw.Counts) != len(raw.Edges)-1 {
		return fmt.Errorf("ensemble: %d counts for %d bins", len(raw.Counts), len(raw.Edges)-1)
	}
	// NaN edges would slip past the ordering check below (every
	// comparison with NaN is false) and poison every statistic
	// computed from the histogram, so reject non-finite geometry and
	// negative mass outright.
	for i, e := range raw.Edges {
		if math.IsNaN(e) || math.IsInf(e, 0) {
			return fmt.Errorf("ensemble: non-finite bin edge at %d", i)
		}
	}
	for i := 1; i < len(raw.Edges); i++ {
		if raw.Edges[i] <= raw.Edges[i-1] {
			return fmt.Errorf("ensemble: bin edges not increasing at %d", i)
		}
	}
	for i, c := range raw.Counts {
		if math.IsNaN(c) || math.IsInf(c, 0) || c < 0 {
			return fmt.Errorf("ensemble: bad count %v at %d", c, i)
		}
	}
	if bad(raw.Underflow) || bad(raw.Overflow) {
		return fmt.Errorf("ensemble: bad under/overflow mass")
	}
	h.Bins = Bins{Edges: raw.Edges, Log: raw.Log}
	h.counts = raw.Counts
	h.underflow = raw.Underflow
	h.overflow = raw.Overflow
	h.total = raw.Underflow + raw.Overflow
	for _, c := range raw.Counts {
		h.total += c
	}
	return nil
}
