// Package ensemble is the statistical core of the methodology: it
// turns populations of per-event I/O measurements into the
// reproducible objects the paper analyses — histograms (linear, log,
// and rate-normalized), distribution moments, mode structure, order
// statistics for slowest-of-N phase behaviour, Law-of-Large-Numbers
// convolution predictions for transfer splitting, and two-sample
// distances for run-to-run reproducibility checks.
//
// The transition the paper advocates — from individual performance
// events to performance ensembles — is exactly the transition from a
// trace to a Dataset.
package ensemble

import (
	"fmt"
	"math"
	"sort"
)

// Dataset is an ensemble of scalar observations (typically I/O call
// durations in seconds, or size-normalized rates).
type Dataset struct {
	xs     []float64
	sorted []float64 // lazily computed
}

// NewDataset wraps the observations. The slice is not copied; callers
// must not mutate it afterwards.
func NewDataset(xs []float64) *Dataset { return &Dataset{xs: xs} }

// Add appends one observation.
func (d *Dataset) Add(x float64) {
	d.xs = append(d.xs, x)
	d.sorted = nil
}

// Values returns the raw observations (not a copy).
func (d *Dataset) Values() []float64 { return d.xs }

// Len reports the number of observations.
func (d *Dataset) Len() int { return len(d.xs) }

// Sorted returns the observations in ascending order (cached).
func (d *Dataset) Sorted() []float64 {
	if d.sorted == nil {
		d.sorted = append([]float64(nil), d.xs...)
		sort.Float64s(d.sorted)
	}
	return d.sorted
}

// Min returns the smallest observation (NaN when empty).
func (d *Dataset) Min() float64 {
	if len(d.xs) == 0 {
		return math.NaN()
	}
	return d.Sorted()[0]
}

// Max returns the largest observation — the Nth order statistic that
// dominates barrier-synchronized phase time (NaN when empty).
func (d *Dataset) Max() float64 {
	if len(d.xs) == 0 {
		return math.NaN()
	}
	return d.Sorted()[len(d.xs)-1]
}

// Mean returns the sample mean (NaN when empty).
func (d *Dataset) Mean() float64 {
	if len(d.xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range d.xs {
		s += x
	}
	return s / float64(len(d.xs))
}

// Sum returns the total of all observations.
func (d *Dataset) Sum() float64 {
	s := 0.0
	for _, x := range d.xs {
		s += x
	}
	return s
}

// Variance returns the unbiased sample variance (NaN for < 2 obs).
func (d *Dataset) Variance() float64 {
	n := len(d.xs)
	if n < 2 {
		return math.NaN()
	}
	m := d.Mean()
	s := 0.0
	for _, x := range d.xs {
		dx := x - m
		s += dx * dx
	}
	return s / float64(n-1)
}

// Std returns the sample standard deviation.
func (d *Dataset) Std() float64 { return math.Sqrt(d.Variance()) }

// CV returns the coefficient of variation std/mean — the paper's
// "narrowing" of distributions under transfer splitting is a falling
// CV.
func (d *Dataset) CV() float64 { return d.Std() / d.Mean() }

// Skewness returns the adjusted Fisher-Pearson sample skewness.
func (d *Dataset) Skewness() float64 {
	n := float64(len(d.xs))
	if n < 3 {
		return math.NaN()
	}
	m := d.Mean()
	s2, s3 := 0.0, 0.0
	for _, x := range d.xs {
		dx := x - m
		s2 += dx * dx
		s3 += dx * dx * dx
	}
	s2 /= n
	s3 /= n
	if s2 == 0 {
		return 0
	}
	g1 := s3 / math.Pow(s2, 1.5)
	return g1 * math.Sqrt(n*(n-1)) / (n - 2)
}

// Kurtosis returns the excess sample kurtosis (0 for a Gaussian).
func (d *Dataset) Kurtosis() float64 {
	n := float64(len(d.xs))
	if n < 4 {
		return math.NaN()
	}
	m := d.Mean()
	s2, s4 := 0.0, 0.0
	for _, x := range d.xs {
		dx := x - m
		s2 += dx * dx
		s4 += dx * dx * dx * dx
	}
	s2 /= n
	s4 /= n
	if s2 == 0 {
		return 0
	}
	return s4/(s2*s2) - 3
}

// Quantile returns the p-quantile (0 <= p <= 1) by linear
// interpolation of the order statistics.
func (d *Dataset) Quantile(p float64) float64 {
	s := d.Sorted()
	n := len(s)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[n-1]
	}
	pos := p * float64(n-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= n {
		return s[n-1]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}

// Moments bundles the ensemble's moment summary.
type Moments struct {
	N        int
	Mean     float64
	Std      float64
	CV       float64
	Skewness float64
	Kurtosis float64
	Min      float64
	Median   float64
	P95      float64
	P99      float64
	Max      float64
}

// Moments computes the full moment summary.
func (d *Dataset) Moments() Moments {
	return Moments{
		N:        d.Len(),
		Mean:     d.Mean(),
		Std:      d.Std(),
		CV:       d.CV(),
		Skewness: d.Skewness(),
		Kurtosis: d.Kurtosis(),
		Min:      d.Min(),
		Median:   d.Quantile(0.5),
		P95:      d.Quantile(0.95),
		P99:      d.Quantile(0.99),
		Max:      d.Max(),
	}
}

// String renders the moment summary on one line.
func (m Moments) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g cv=%.3f skew=%.3f kurt=%.3f min=%.4g med=%.4g p95=%.4g p99=%.4g max=%.4g",
		m.N, m.Mean, m.Std, m.CV, m.Skewness, m.Kurtosis, m.Min, m.Median, m.P95, m.P99, m.Max)
}
