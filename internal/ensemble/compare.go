package ensemble

import "math"

// ECDF is the empirical cumulative distribution of a dataset.
type ECDF struct {
	xs []float64 // sorted
}

// ECDF returns the dataset's empirical CDF.
func (d *Dataset) ECDF() *ECDF { return &ECDF{xs: d.Sorted()} }

// Eval returns F(x): the fraction of observations <= x.
func (e *ECDF) Eval(x float64) float64 {
	lo, hi := 0, len(e.xs)
	for lo < hi {
		mid := (lo + hi) / 2
		if e.xs[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return float64(lo) / float64(len(e.xs))
}

// Len reports the sample size.
func (e *ECDF) Len() int { return len(e.xs) }

// KS returns the two-sample Kolmogorov-Smirnov statistic
// sup |F_a - F_b|. Zero means identical empirical distributions; the
// paper's reproducibility claim is that KS between runs of the same
// experiment stays small even when the traces differ completely.
func KS(a, b *Dataset) float64 {
	xa, xb := a.Sorted(), b.Sorted()
	na, nb := len(xa), len(xb)
	if na == 0 || nb == 0 {
		return math.NaN()
	}
	i, j := 0, 0
	d := 0.0
	for i < na && j < nb {
		x := xa[i]
		if xb[j] < x {
			x = xb[j]
		}
		for i < na && xa[i] <= x {
			i++
		}
		for j < nb && xb[j] <= x {
			j++
		}
		diff := math.Abs(float64(i)/float64(na) - float64(j)/float64(nb))
		if diff > d {
			d = diff
		}
	}
	return d
}

// Wasserstein returns the 1-Wasserstein (earth mover's) distance
// between the two empirical distributions: the integral of
// |F_a - F_b| over the real line.
func Wasserstein(a, b *Dataset) float64 {
	xa, xb := a.Sorted(), b.Sorted()
	na, nb := len(xa), len(xb)
	if na == 0 || nb == 0 {
		return math.NaN()
	}
	// Merge the support points and integrate the CDF gap.
	i, j := 0, 0
	var prev float64
	first := true
	total := 0.0
	for i < na || j < nb {
		var x float64
		switch {
		case i >= na:
			x = xb[j]
		case j >= nb:
			x = xa[i]
		case xa[i] <= xb[j]:
			x = xa[i]
		default:
			x = xb[j]
		}
		if !first {
			fa := float64(i) / float64(na)
			fb := float64(j) / float64(nb)
			total += math.Abs(fa-fb) * (x - prev)
		}
		first = false
		prev = x
		for i < na && xa[i] <= x {
			i++
		}
		for j < nb && xb[j] <= x {
			j++
		}
	}
	return total
}

// GaussianKS returns the Kolmogorov distance between the sample and a
// Gaussian fitted by moments — a normality score. Smaller is more
// Gaussian; the Figure 2 distributions become "progressively narrower
// and more Gaussian" as k grows, i.e. this statistic falls.
func GaussianKS(d *Dataset) float64 {
	xs := d.Sorted()
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	mu, sigma := d.Mean(), d.Std()
	if sigma == 0 {
		return 0
	}
	maxd := 0.0
	for i, x := range xs {
		F := stdNormalCDF((x - mu) / sigma)
		lo := float64(i) / float64(n)
		hi := float64(i+1) / float64(n)
		if diff := math.Abs(F - lo); diff > maxd {
			maxd = diff
		}
		if diff := math.Abs(F - hi); diff > maxd {
			maxd = diff
		}
	}
	return maxd
}

func stdNormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}
