package ensemble

import (
	"fmt"
	"math"
)

// Bins defines a binning by its edges: bin i covers
// [edges[i], edges[i+1]). Values below edges[0] count as underflow,
// values at or above the last edge as overflow.
type Bins struct {
	Edges []float64
	// Log marks logarithmic binning (affects density normalization
	// presentation only; the edges already encode the geometry).
	Log bool

	// uniform marks equal-width binning built by LinearBins, enabling
	// the O(1) arithmetic Find below. Bins reconstructed from
	// serialized edges (or built by hand) leave it false and take the
	// general binary-search path; results are identical either way
	// (pinned by TestFindFastPathMatchesSearch).
	uniform bool
	lo      float64 // Edges[0]
	invW    float64 // bins per unit: N() / (Edges[N()] - Edges[0])
}

// LinearBins returns n equal-width bins spanning [lo, hi).
func LinearBins(lo, hi float64, n int) Bins {
	if n <= 0 || hi <= lo {
		panic("ensemble: bad linear binning")
	}
	edges := make([]float64, n+1)
	w := (hi - lo) / float64(n)
	for i := range edges {
		edges[i] = lo + float64(i)*w
	}
	edges[n] = hi
	return Bins{Edges: edges, uniform: true, lo: lo, invW: float64(n) / (hi - lo)}
}

// LogBins returns logarithmically spaced bins from lo to hi with
// perDecade bins per factor of ten. This is the binning of the
// paper's log-log histograms (Figures 4c, 4f, 6c...), which make the
// slowest modes visible.
func LogBins(lo, hi float64, perDecade int) Bins {
	if lo <= 0 || hi <= lo || perDecade <= 0 {
		panic("ensemble: bad log binning")
	}
	n := int(math.Ceil(math.Log10(hi/lo) * float64(perDecade)))
	edges := make([]float64, n+1)
	for i := range edges {
		edges[i] = lo * math.Pow(10, float64(i)/float64(perDecade))
	}
	return Bins{Edges: edges, Log: true}
}

// N reports the number of bins.
func (b Bins) N() int { return len(b.Edges) - 1 }

// Width returns the width of bin i.
func (b Bins) Width(i int) float64 { return b.Edges[i+1] - b.Edges[i] }

// Center returns the representative value of bin i (geometric mean
// for log bins, midpoint otherwise).
func (b Bins) Center(i int) float64 {
	if b.Log {
		return math.Sqrt(b.Edges[i] * b.Edges[i+1])
	}
	return (b.Edges[i] + b.Edges[i+1]) / 2
}

// Find returns the bin index for x, or -1 (underflow) / N() (overflow).
func (b Bins) Find(x float64) int {
	if x < b.Edges[0] {
		return -1
	}
	if x >= b.Edges[len(b.Edges)-1] {
		return b.N()
	}
	if b.uniform {
		// Arithmetic index for equal-width bins. The stored edges are
		// the authority on bin membership ([Edges[i], Edges[i+1])):
		// float rounding in the multiply can land the raw index one
		// bin off when x sits exactly on (or within an ulp of) an
		// edge, so nudge until the edge invariant holds.
		i := int((x - b.lo) * b.invW)
		if i > b.N()-1 {
			i = b.N() - 1
		}
		for i > 0 && x < b.Edges[i] {
			i--
		}
		for x >= b.Edges[i+1] {
			i++
		}
		return i
	}
	// Binary search over edges.
	lo, hi := 0, len(b.Edges)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if x < b.Edges[mid] {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo
}

// Histogram is a streaming-capable binned distribution. It is the
// profiling-mode data structure: events can be folded in online
// without retaining the trace.
type Histogram struct {
	Bins      Bins
	counts    []float64
	total     float64
	underflow float64
	overflow  float64
}

// NewHistogram returns an empty histogram over the binning.
func NewHistogram(b Bins) *Histogram {
	return &Histogram{Bins: b, counts: make([]float64, b.N())}
}

// Add folds in one observation with weight 1.
func (h *Histogram) Add(x float64) { h.AddW(x, 1) }

// AddW folds in one observation with the given weight.
func (h *Histogram) AddW(x, w float64) {
	i := h.Bins.Find(x)
	switch {
	case i < 0:
		h.underflow += w
	case i >= h.Bins.N():
		h.overflow += w
	default:
		h.counts[i] += w
	}
	h.total += w
}

// AddAll folds in a dataset.
func (h *Histogram) AddAll(d *Dataset) {
	for _, x := range d.Values() {
		h.Add(x)
	}
}

// Merge adds another histogram with identical binning.
func (h *Histogram) Merge(o *Histogram) {
	if len(h.counts) != len(o.counts) {
		panic("ensemble: merging histograms with different binnings")
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.underflow += o.underflow
	h.overflow += o.overflow
	h.total += o.total
}

// Counts returns the per-bin counts (not a copy).
func (h *Histogram) Counts() []float64 { return h.counts }

// Total returns the total folded weight including under/overflow.
func (h *Histogram) Total() float64 { return h.total }

// Underflow and Overflow report out-of-range weight.
func (h *Histogram) Underflow() float64 { return h.underflow }
func (h *Histogram) Overflow() float64  { return h.overflow }

// PDF returns the density estimate: count / (total * binWidth).
func (h *Histogram) PDF() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.counts {
		out[i] = c / (h.total * h.Bins.Width(i))
	}
	return out
}

// CDF returns the cumulative distribution evaluated at each bin's
// upper edge (underflow included, overflow excluded until the end).
func (h *Histogram) CDF() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		return out
	}
	run := h.underflow
	for i, c := range h.counts {
		run += c
		out[i] = run / h.total
	}
	return out
}

// Mean estimates the distribution mean from bin centers.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return math.NaN()
	}
	inRange := h.total - h.underflow - h.overflow
	if inRange == 0 {
		return math.NaN()
	}
	s := 0.0
	for i, c := range h.counts {
		s += c * h.Bins.Center(i)
	}
	return s / inRange
}

// Variance estimates the distribution variance from bin centers.
func (h *Histogram) Variance() float64 {
	inRange := h.total - h.underflow - h.overflow
	if inRange == 0 {
		return math.NaN()
	}
	m := h.Mean()
	s := 0.0
	for i, c := range h.counts {
		dx := h.Bins.Center(i) - m
		s += c * dx * dx
	}
	return s / inRange
}

// Std estimates the distribution standard deviation.
func (h *Histogram) Std() float64 { return math.Sqrt(h.Variance()) }

// Quantile estimates the p-quantile from the binned mass.
func (h *Histogram) Quantile(p float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	target := p * h.total
	run := h.underflow
	for i, c := range h.counts {
		if run+c >= target && c > 0 {
			frac := (target - run) / c
			return h.Bins.Edges[i] + frac*h.Bins.Width(i)
		}
		run += c
	}
	return h.Bins.Edges[len(h.Bins.Edges)-1]
}

func (h *Histogram) String() string {
	return fmt.Sprintf("hist(bins=%d total=%.0f under=%.0f over=%.0f)",
		h.Bins.N(), h.total, h.underflow, h.overflow)
}
