package ensemble

import (
	"math"
	"testing"
	"testing/quick"

	"ensembleio/internal/sim"
)

func normalDataset(seed int64, n int, mu, sigma float64) *Dataset {
	g := sim.NewRNG(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = g.Normal(mu, sigma)
	}
	return NewDataset(xs)
}

func TestECDFEval(t *testing.T) {
	d := NewDataset([]float64{1, 2, 3, 4})
	e := d.ECDF()
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {9, 1},
	}
	for _, tc := range cases {
		if got := e.Eval(tc.x); !almostEq(got, tc.want, 1e-12) {
			t.Errorf("F(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestKSIdenticalIsZero(t *testing.T) {
	d := normalDataset(1, 1000, 5, 2)
	if ks := KS(d, d); ks != 0 {
		t.Errorf("KS(d,d) = %v, want 0", ks)
	}
}

func TestKSSameDistributionSmallDifferentLarge(t *testing.T) {
	a := normalDataset(1, 5000, 5, 2)
	b := normalDataset(2, 5000, 5, 2)
	c := normalDataset(3, 5000, 9, 2)
	same := KS(a, b)
	diff := KS(a, c)
	if same > 0.05 {
		t.Errorf("KS between same-distribution samples %v, want small", same)
	}
	if diff < 0.5 {
		t.Errorf("KS between shifted distributions %v, want large", diff)
	}
}

func TestWassersteinShiftEqualsDelta(t *testing.T) {
	a := normalDataset(4, 20000, 0, 1)
	shifted := NewDataset(nil)
	for _, x := range a.Values() {
		shifted.Add(x + 3)
	}
	w := Wasserstein(a, shifted)
	if math.Abs(w-3) > 0.05 {
		t.Errorf("Wasserstein of 3-shift = %v, want ~3", w)
	}
}

func TestWassersteinSymmetric(t *testing.T) {
	a := normalDataset(5, 3000, 0, 1)
	b := normalDataset(6, 2500, 1, 2)
	if !almostEq(Wasserstein(a, b), Wasserstein(b, a), 1e-9) {
		t.Error("Wasserstein not symmetric")
	}
}

func TestGaussianKSDiscriminates(t *testing.T) {
	gauss := normalDataset(7, 10000, 10, 2)
	g := sim.NewRNG(8)
	bimodal := NewDataset(nil)
	for i := 0; i < 10000; i++ {
		if g.Bernoulli(0.5) {
			bimodal.Add(g.Normal(5, 0.5))
		} else {
			bimodal.Add(g.Normal(15, 0.5))
		}
	}
	kg, kb := GaussianKS(gauss), GaussianKS(bimodal)
	if kg > 0.02 {
		t.Errorf("GaussianKS of a Gaussian sample = %v, want < 0.02", kg)
	}
	if kb < 0.1 {
		t.Errorf("GaussianKS of a bimodal sample = %v, want > 0.1", kb)
	}
	if kb <= kg {
		t.Error("normality score failed to discriminate")
	}
}

// Properties: KS in [0,1]; KS symmetric; Wasserstein >= 0 and zero on
// identical samples.
func TestCompareProperties(t *testing.T) {
	f := func(rawA, rawB []uint8) bool {
		if len(rawA) == 0 || len(rawB) == 0 {
			return true
		}
		mk := func(raw []uint8) *Dataset {
			xs := make([]float64, len(raw))
			for i, r := range raw {
				xs[i] = float64(r)
			}
			return NewDataset(xs)
		}
		a, b := mk(rawA), mk(rawB)
		ks := KS(a, b)
		if ks < 0 || ks > 1 {
			return false
		}
		if !almostEq(ks, KS(b, a), 1e-12) {
			return false
		}
		if Wasserstein(a, b) < 0 {
			return false
		}
		return almostEq(Wasserstein(a, a), 0, 1e-12) && KS(a, a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
