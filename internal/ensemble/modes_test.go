package ensemble

import (
	"math"
	"testing"

	"ensembleio/internal/sim"
)

// trimodal builds the Fig-1c-like synthetic: three Gaussian modes at
// the fair-share time and its half and quarter (harmonics in rate).
func trimodal(seed int64, n int) *Histogram {
	g := sim.NewRNG(seed)
	h := NewHistogram(LinearBins(0, 50, 100))
	for i := 0; i < n; i++ {
		var x float64
		switch {
		case g.Bernoulli(0.45):
			x = g.Normal(32, 1.5)
		case g.Bernoulli(0.5):
			x = g.Normal(16, 1.2)
		default:
			x = g.Normal(8, 1.0)
		}
		h.Add(x)
	}
	return h
}

func TestModesFindsThreePeaks(t *testing.T) {
	h := trimodal(1, 30000)
	modes := h.Modes(ModeOpts{})
	if len(modes) != 3 {
		t.Fatalf("found %d modes, want 3: %+v", len(modes), modes)
	}
	centers := []float64{modes[0].Center, modes[1].Center, modes[2].Center}
	found := func(want float64) bool {
		for _, c := range centers {
			if math.Abs(c-want) < 2.5 {
				return true
			}
		}
		return false
	}
	for _, want := range []float64{8, 16, 32} {
		if !found(want) {
			t.Errorf("no mode near %v; centers = %v", want, centers)
		}
	}
}

func TestModesUnimodal(t *testing.T) {
	g := sim.NewRNG(2)
	h := NewHistogram(LinearBins(0, 20, 80))
	for i := 0; i < 20000; i++ {
		h.Add(g.Normal(10, 1.5))
	}
	modes := h.Modes(ModeOpts{})
	if len(modes) != 1 {
		t.Fatalf("found %d modes, want 1", len(modes))
	}
	if math.Abs(modes[0].Center-10) > 1 {
		t.Errorf("mode at %v, want ~10", modes[0].Center)
	}
	if modes[0].Mass < 0.9 {
		t.Errorf("unimodal mass %v, want ~1", modes[0].Mass)
	}
}

func TestModesOrderedByHeight(t *testing.T) {
	h := trimodal(3, 30000)
	modes := h.Modes(ModeOpts{})
	for i := 1; i < len(modes); i++ {
		if modes[i].Height > modes[i-1].Height {
			t.Fatal("modes not sorted by height")
		}
	}
}

func TestProminenceFilterSuppressesNoisePeaks(t *testing.T) {
	g := sim.NewRNG(4)
	h := NewHistogram(LinearBins(0, 20, 200)) // narrow bins: noisy
	for i := 0; i < 3000; i++ {
		h.Add(g.Normal(10, 2))
	}
	loose := h.Modes(ModeOpts{SmoothRadius: 1, MinProminence: 1e-9, MinMass: 1e-9})
	strict := h.Modes(ModeOpts{SmoothRadius: 2, MinProminence: 0.2, MinMass: 0.05})
	if len(strict) > len(loose) {
		t.Error("stricter options produced more modes")
	}
	if len(strict) != 1 {
		t.Errorf("strict detection found %d modes, want 1", len(strict))
	}
}

func TestMaxModesCap(t *testing.T) {
	h := trimodal(5, 30000)
	modes := h.Modes(ModeOpts{MaxModes: 2})
	if len(modes) != 2 {
		t.Errorf("MaxModes=2 returned %d", len(modes))
	}
}

func TestModesEmptyHistogram(t *testing.T) {
	h := NewHistogram(LinearBins(0, 10, 10))
	if modes := h.Modes(ModeOpts{}); modes != nil {
		t.Errorf("empty histogram produced modes: %v", modes)
	}
}
