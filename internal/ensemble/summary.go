package ensemble

import (
	"fmt"
	"strings"
)

// Summary is the one-call ensemble characterization: moments, the
// histogram's mode structure (with harmonic analysis), tail indices,
// and a normality score. It is what an analyst reads first when
// transitioning from events to ensembles.
type Summary struct {
	Moments Moments
	// Modes of the linear-binned histogram, strongest first.
	Modes []Mode
	// HarmonicBase and Harmonics describe a detected R/2R/4R-style
	// structure (HarmonicOK false when none).
	HarmonicBase float64
	Harmonics    []int
	HarmonicOK   bool
	// TailIndexP99 is p99/median — the paper's heavy-tail signal.
	TailIndexP99 float64
	// GaussKS scores distance from a fitted Gaussian.
	GaussKS float64
	// Hist is the histogram the modes were detected on.
	Hist *Histogram
}

// SummaryOpts tunes Summarize.
type SummaryOpts struct {
	// Bins for the linear histogram (default 100).
	Bins int
	// Mode detection options.
	Modes ModeOpts
	// HarmonicTol is the relative tolerance for harmonic matching
	// (default 0.15).
	HarmonicTol float64
}

// Summarize computes the full ensemble characterization of a dataset.
func Summarize(d *Dataset, opts SummaryOpts) Summary {
	if opts.Bins <= 0 {
		opts.Bins = 100
	}
	if opts.HarmonicTol == 0 {
		opts.HarmonicTol = 0.15
	}
	s := Summary{Moments: d.Moments()}
	if d.Len() == 0 {
		return s
	}
	hi := d.Max() * 1.01
	if hi <= 0 {
		hi = 1
	}
	s.Hist = NewHistogram(LinearBins(0, hi, opts.Bins))
	s.Hist.AddAll(d)
	s.Modes = s.Hist.Modes(opts.Modes)
	s.HarmonicBase, s.Harmonics, s.HarmonicOK = HarmonicStructure(s.Modes, opts.HarmonicTol)
	if med := d.Quantile(0.5); med > 0 {
		s.TailIndexP99 = d.Quantile(0.99) / med
	}
	s.GaussKS = GaussianKS(d)
	return s
}

// String renders the summary as a short multi-line report.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.Moments)
	if len(s.Modes) > 0 {
		fmt.Fprintf(&b, "modes:")
		for _, m := range s.Modes {
			fmt.Fprintf(&b, " %.3g (mass %.0f%%)", m.Center, m.Mass*100)
		}
		fmt.Fprintln(&b)
	}
	if s.HarmonicOK {
		fmt.Fprintf(&b, "harmonic structure: base %.3g with harmonics %v\n", s.HarmonicBase, s.Harmonics)
	}
	fmt.Fprintf(&b, "tail p99/med=%.1f gaussKS=%.3f", s.TailIndexP99, s.GaussKS)
	return b.String()
}
