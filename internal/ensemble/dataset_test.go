package ensemble

import (
	"math"
	"testing"
	"testing/quick"

	"ensembleio/internal/sim"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMomentsKnownValues(t *testing.T) {
	d := NewDataset([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m := d.Mean(); !almostEq(m, 5, 1e-12) {
		t.Errorf("mean %v, want 5", m)
	}
	// Unbiased variance of this classic sample: 32/7.
	if v := d.Variance(); !almostEq(v, 32.0/7.0, 1e-12) {
		t.Errorf("variance %v, want %v", v, 32.0/7.0)
	}
	if mn, mx := d.Min(), d.Max(); mn != 2 || mx != 9 {
		t.Errorf("min/max = %v/%v, want 2/9", mn, mx)
	}
	if md := d.Quantile(0.5); !almostEq(md, 4.5, 1e-12) {
		t.Errorf("median %v, want 4.5", md)
	}
}

func TestEmptyDatasetIsNaN(t *testing.T) {
	d := NewDataset(nil)
	for name, v := range map[string]float64{
		"mean": d.Mean(), "min": d.Min(), "max": d.Max(), "q": d.Quantile(0.5),
	} {
		if !math.IsNaN(v) {
			t.Errorf("%s of empty dataset = %v, want NaN", name, v)
		}
	}
}

func TestSkewnessSign(t *testing.T) {
	right := NewDataset([]float64{1, 1, 1, 1, 2, 2, 3, 10})
	if s := right.Skewness(); s <= 0 {
		t.Errorf("right-tailed skewness %v, want > 0", s)
	}
	left := NewDataset([]float64{-10, -3, -2, -2, -1, -1, -1, -1})
	if s := left.Skewness(); s >= 0 {
		t.Errorf("left-tailed skewness %v, want < 0", s)
	}
}

func TestKurtosisGaussianNearZero(t *testing.T) {
	g := sim.NewRNG(1)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = g.Normal(0, 1)
	}
	d := NewDataset(xs)
	if k := d.Kurtosis(); math.Abs(k) > 0.15 {
		t.Errorf("Gaussian excess kurtosis %v, want ~0", k)
	}
	if s := d.Skewness(); math.Abs(s) > 0.1 {
		t.Errorf("Gaussian skewness %v, want ~0", s)
	}
}

func TestQuantileEndpointsAndMonotone(t *testing.T) {
	d := NewDataset([]float64{5, 1, 3, 2, 4})
	if q := d.Quantile(0); q != 1 {
		t.Errorf("Q(0) = %v, want 1", q)
	}
	if q := d.Quantile(1); q != 5 {
		t.Errorf("Q(1) = %v, want 5", q)
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 1.0; p += 0.05 {
		q := d.Quantile(p)
		if q < prev {
			t.Fatalf("quantile not monotone at p=%v", p)
		}
		prev = q
	}
}

func TestAddInvalidatesSortCache(t *testing.T) {
	d := NewDataset([]float64{3, 1})
	if d.Max() != 3 {
		t.Fatal("bad max")
	}
	d.Add(10)
	if d.Max() != 10 {
		t.Error("Add did not invalidate the sorted cache")
	}
}

// Properties: mean within [min,max]; variance non-negative; CV of a
// scaled dataset is scale-invariant.
func TestMomentProperties(t *testing.T) {
	f := func(raw []uint16, scale uint8) bool {
		if len(raw) < 4 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) + 1
		}
		d := NewDataset(xs)
		if d.Variance() < 0 {
			return false
		}
		if d.Mean() < d.Min()-1e-9 || d.Mean() > d.Max()+1e-9 {
			return false
		}
		k := float64(scale%7) + 2
		ys := make([]float64, len(xs))
		for i := range xs {
			ys[i] = xs[i] * k
		}
		d2 := NewDataset(ys)
		if d.Std() == 0 {
			return true
		}
		return almostEq(d.CV(), d2.CV(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
