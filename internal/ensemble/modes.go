package ensemble

import "sort"

// Mode is one detected peak of a histogram: a distinct mode of I/O
// behaviour (e.g. the fair-share rate R and its harmonics in Fig 1c).
type Mode struct {
	// Center is the representative value of the peak bin.
	Center float64
	// Height is the peak's smoothed count.
	Height float64
	// Mass is the fraction of total weight attributed to the peak's
	// basin (between the surrounding minima).
	Mass float64
	// Prominence is the peak height minus the higher of the two
	// bounding saddle points, as a fraction of the tallest peak.
	Prominence float64
	// Bin is the peak's bin index.
	Bin int
}

// ModeOpts tunes peak detection.
type ModeOpts struct {
	// SmoothRadius is the moving-average half-width in bins
	// (default 1).
	SmoothRadius int
	// MinProminence discards peaks whose prominence is below this
	// fraction of the tallest peak's height (default 0.05).
	MinProminence float64
	// MinMass discards peaks whose basin carries less than this
	// fraction of total weight (default 0.01).
	MinMass float64
	// MaxModes caps the number of returned modes (0 = no cap).
	MaxModes int
}

func (o *ModeOpts) defaults() {
	if o.SmoothRadius == 0 {
		o.SmoothRadius = 1
	}
	if o.MinProminence == 0 {
		o.MinProminence = 0.05
	}
	if o.MinMass == 0 {
		o.MinMass = 0.01
	}
}

// Modes detects the peaks of the histogram, strongest first.
func (h *Histogram) Modes(opts ModeOpts) []Mode {
	opts.defaults()
	n := h.Bins.N()
	if n == 0 || h.total == 0 {
		return nil
	}
	s := smooth(h.counts, opts.SmoothRadius)

	// Local maxima (plateau-tolerant: first bin of a plateau wins).
	var peaks []int
	for i := 0; i < n; i++ {
		leftLower := i == 0 || s[i-1] < s[i]
		rightNotHigher := true
		for j := i + 1; j < n; j++ {
			if s[j] > s[i] {
				rightNotHigher = false
				break
			}
			if s[j] < s[i] {
				break
			}
		}
		if leftLower && rightNotHigher && s[i] > 0 {
			peaks = append(peaks, i)
		}
	}
	if len(peaks) == 0 {
		return nil
	}

	tallest := 0.0
	for _, p := range peaks {
		if s[p] > tallest {
			tallest = s[p]
		}
	}

	var modes []Mode
	for _, p := range peaks {
		// Basin: walk to the bounding minima.
		lo := p
		for lo > 0 && s[lo-1] <= s[lo] {
			lo--
		}
		hi := p
		for hi < n-1 && s[hi+1] <= s[hi] {
			hi++
		}
		// Saddle heights toward higher peaks on each side.
		leftSaddle := saddle(s, p, -1)
		rightSaddle := saddle(s, p, +1)
		base := leftSaddle
		if rightSaddle > base {
			base = rightSaddle
		}
		prom := (s[p] - base) / tallest
		mass := 0.0
		for i := lo; i <= hi; i++ {
			mass += h.counts[i]
		}
		mass /= h.total
		if prom < opts.MinProminence || mass < opts.MinMass {
			continue
		}
		modes = append(modes, Mode{
			Center:     h.Bins.Center(p),
			Height:     s[p],
			Mass:       mass,
			Prominence: prom,
			Bin:        p,
		})
	}
	sort.Slice(modes, func(i, j int) bool { return modes[i].Height > modes[j].Height })
	if opts.MaxModes > 0 && len(modes) > opts.MaxModes {
		modes = modes[:opts.MaxModes]
	}
	return modes
}

// saddle walks from peak p in direction dir and returns the lowest
// level crossed before reaching a strictly higher bin (or the boundary,
// in which case the walk's minimum is returned — the peak is a
// boundary-dominant one).
func saddle(s []float64, p, dir int) float64 {
	min := s[p]
	for i := p + dir; i >= 0 && i < len(s); i += dir {
		if s[i] > s[p] {
			return min
		}
		if s[i] < min {
			min = s[i]
		}
	}
	// No higher peak this way: prominence measured from the walk's
	// minimum, but a boundary peak should keep full prominence.
	return min
}

// smooth applies a moving average of half-width r.
func smooth(xs []float64, r int) []float64 {
	if r <= 0 {
		return append([]float64(nil), xs...)
	}
	out := make([]float64, len(xs))
	for i := range xs {
		lo, hi := i-r, i+r
		if lo < 0 {
			lo = 0
		}
		if hi >= len(xs) {
			hi = len(xs) - 1
		}
		s := 0.0
		for j := lo; j <= hi; j++ {
			s += xs[j]
		}
		out[i] = s / float64(hi-lo+1)
	}
	return out
}
