package ensemble

import (
	"fmt"
	"math"
	"testing"
)

// Property tests for the order-statistics machinery (Eq. 1 of the
// paper): the invariants must hold for ANY parent distribution, so
// each property is checked across a family of randomized seeded
// ensembles — unimodal, bimodal, heavy-tailed — not one hand-picked
// fixture.

// propRNG is a tiny deterministic generator (xorshift64*) so the
// randomized distributions are reproducible without importing
// math/rand into the package's test surface.
type propRNG uint64

func (r *propRNG) next() float64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = propRNG(x)
	return float64(x*0x2545F4914F6CDD1D>>11) / float64(1<<53)
}

// propDatasets builds the randomized distribution family for one seed.
func propDatasets(seed uint64, n int) []*Dataset {
	r := propRNG(seed | 1)
	uni := make([]float64, n)
	bim := make([]float64, n)
	tail := make([]float64, n)
	for i := 0; i < n; i++ {
		uni[i] = 0.5 + 4*r.next()
		// Bimodal: fast mode near 1, slow mode near 6.
		if r.next() < 0.7 {
			bim[i] = 1 + 0.3*r.next()
		} else {
			bim[i] = 6 + 0.8*r.next()
		}
		// Heavy right tail: exponential via inversion.
		tail[i] = 0.2 - 2*math.Log(1-0.9999*r.next())
	}
	return []*Dataset{NewDataset(uni), NewDataset(bim), NewDataset(tail)}
}

func histOf(d *Dataset, bins int) *Histogram {
	h := NewHistogram(LinearBins(0, d.Max()*1.001, bins))
	h.AddAll(d)
	return h
}

// TestMaxOrderPDFIntegratesToOne: f_N is a density — its bin masses
// must sum to 1 for every parent distribution and every N.
func TestMaxOrderPDFIntegratesToOne(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		for di, d := range propDatasets(seed*7919, 400) {
			h := histOf(d, 64)
			for _, n := range []int{1, 2, 5, 32, 512} {
				pdf := MaxOrderPDF(h, n)
				mass := 0.0
				for i, p := range pdf {
					mass += p * h.Bins.Width(i)
				}
				if math.Abs(mass-1) > 1e-9 {
					t.Errorf("seed %d dist %d n=%d: MaxOrderPDF mass = %.12f, want 1", seed, di, n, mass)
				}
			}
		}
	}
}

// TestExpectedMaxHistMonotoneInN: the binned estimate of the expected
// slowest of N draws cannot decrease as the population grows, starts
// at the mean (N=1), and never escapes the distribution's support.
func TestExpectedMaxHistMonotoneInN(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		for di, d := range propDatasets(seed*104729, 400) {
			h := histOf(d, 64)
			if e1, mean := ExpectedMax(h, 1), h.Mean(); math.Abs(e1-mean) > 0.05*mean {
				t.Errorf("seed %d dist %d: ExpectedMax(h,1) = %.4f, want the mean %.4f", seed, di, e1, mean)
			}
			prev := math.Inf(-1)
			for n := 1; n <= 1024; n *= 2 {
				e := ExpectedMax(h, n)
				if e < prev-1e-12 {
					t.Errorf("seed %d dist %d: ExpectedMax not monotone: E[max of %d] = %.6f < E[max of %d] = %.6f",
						seed, di, n, e, n/2, prev)
				}
				prev = e
			}
			if top := h.Bins.Edges[len(h.Bins.Edges)-1]; prev > top {
				t.Errorf("seed %d dist %d: E[max of 1024] = %.4f exceeds the support's top edge %.4f", seed, di, prev, top)
			}
		}
	}
}

// TestKthOfNMatchesMax: the k=N order statistic IS the maximum, so the
// general-k machinery must agree with the dedicated maximum estimator
// on every distribution.
func TestKthOfNMatchesMax(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		for di, d := range propDatasets(seed*31337, 400) {
			for _, n := range []int{1, 2, 8, 64} {
				kth := d.ExpectedKthOfN(n, n)
				direct := d.ExpectedMaxOfN(n)
				if direct <= 0 {
					t.Fatalf("seed %d dist %d: non-positive ExpectedMaxOfN %.4f", seed, di, direct)
				}
				// Both estimators are numerical (beta-weight quadrature
				// vs empirical-CDF differencing); at large n on a heavy
				// tail they legitimately differ by a few percent.
				if rel := math.Abs(kth-direct) / direct; rel > 0.06 {
					t.Errorf("seed %d dist %d n=%d: ExpectedKthOfN(n,n) = %.4f vs ExpectedMaxOfN = %.4f (%.1f%% apart)",
						seed, di, n, kth, direct, rel*100)
				}
			}
		}
	}
}

// TestOrderStatCDFClosedForms: the k=n and k=1 order statistics have
// closed-form CDFs (F^n and 1-(1-F)^n); the incomplete-beta evaluation
// must reproduce them over the whole domain.
func TestOrderStatCDFClosedForms(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 100} {
		for i := 0; i <= 50; i++ {
			F := float64(i) / 50
			if got, want := OrderStatCDF(F, n, n), math.Pow(F, float64(n)); math.Abs(got-want) > 1e-10 {
				t.Errorf("OrderStatCDF(%.2f, %d, %d) = %.12f, want F^n = %.12f", F, n, n, got, want)
			}
			if got, want := OrderStatCDF(F, 1, n), 1-math.Pow(1-F, float64(n)); math.Abs(got-want) > 1e-10 {
				t.Errorf("OrderStatCDF(%.2f, 1, %d) = %.12f, want 1-(1-F)^n = %.12f", F, n, got, want)
			}
		}
	}
}

// TestOrderStatCDFMonotone: for fixed F and n, the CDF must decrease
// in k (the k-th smallest grows with k), and for fixed k it must
// increase in F.
func TestOrderStatCDFMonotone(t *testing.T) {
	const n = 12
	for i := 1; i < 20; i++ {
		F := float64(i) / 20
		prev := math.Inf(1)
		for k := 1; k <= n; k++ {
			c := OrderStatCDF(F, k, n)
			if c > prev+1e-12 {
				t.Errorf("OrderStatCDF(%.2f, k, %d) increased from k=%d to k=%d: %.6f -> %.6f", F, n, k-1, k, prev, c)
			}
			prev = c
		}
	}
}

func ExampleMaxOrderPDF() {
	// A uniform parent on [0,1): the slowest of 8 draws concentrates
	// near 1 (density 8*F^7).
	h := NewHistogram(LinearBins(0, 1, 4))
	for i := 0; i < 4000; i++ {
		h.Add((float64(i) + 0.5) / 4000)
	}
	pdf := MaxOrderPDF(h, 8)
	fmt.Printf("top-bin mass %.2f\n", pdf[3]*h.Bins.Width(3))
	// Output:
	// top-bin mass 0.90
}
