package ensemble

import "math"

// Kernel density estimation: a smooth alternative to histogram
// binning for locating modes. Bin-width choices can split or merge
// the paper's harmonic peaks; a Gaussian KDE with Silverman's
// bandwidth gives a binning-free second opinion, and the two mode
// lists cross-validate each other.

// KDE is a Gaussian kernel density estimate over a dataset.
type KDE struct {
	xs        []float64 // sorted observations
	Bandwidth float64
}

// NewKDE builds the estimate. A bandwidth of 0 selects Silverman's
// rule of thumb: 0.9 * min(std, IQR/1.34) * n^(-1/5).
func NewKDE(d *Dataset, bandwidth float64) *KDE {
	xs := d.Sorted()
	if bandwidth <= 0 && len(xs) > 1 {
		iqr := d.Quantile(0.75) - d.Quantile(0.25)
		scale := d.Std()
		if iqr > 0 && iqr/1.34 < scale {
			scale = iqr / 1.34
		}
		bandwidth = 0.9 * scale * math.Pow(float64(len(xs)), -0.2)
	}
	if bandwidth <= 0 {
		bandwidth = 1
	}
	return &KDE{xs: xs, Bandwidth: bandwidth}
}

// Eval returns the density estimate at x. Observations beyond five
// bandwidths contribute negligibly and are skipped via binary search.
func (k *KDE) Eval(x float64) float64 {
	n := len(k.xs)
	if n == 0 {
		return 0
	}
	lo := searchFloat(k.xs, x-5*k.Bandwidth)
	hi := searchFloat(k.xs, x+5*k.Bandwidth)
	sum := 0.0
	inv := 1 / k.Bandwidth
	for _, xi := range k.xs[lo:hi] {
		z := (x - xi) * inv
		sum += math.Exp(-0.5 * z * z)
	}
	return sum * inv / (float64(n) * math.Sqrt(2*math.Pi))
}

// searchFloat returns the first index with xs[i] >= v.
func searchFloat(xs []float64, v float64) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := (lo + hi) / 2
		if xs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Modes locates the local maxima of the density on a grid of the
// given resolution over the data range, discarding peaks below
// minDensity times the global maximum. Results are strongest first.
func (k *KDE) Modes(gridPoints int, minDensity float64) []Mode {
	if len(k.xs) == 0 || gridPoints < 3 {
		return nil
	}
	lo := k.xs[0] - 2*k.Bandwidth
	hi := k.xs[len(k.xs)-1] + 2*k.Bandwidth
	step := (hi - lo) / float64(gridPoints-1)
	dens := make([]float64, gridPoints)
	peakMax := 0.0
	for i := range dens {
		dens[i] = k.Eval(lo + float64(i)*step)
		if dens[i] > peakMax {
			peakMax = dens[i]
		}
	}
	var modes []Mode
	for i := 1; i < gridPoints-1; i++ {
		if dens[i] >= dens[i-1] && dens[i] > dens[i+1] && dens[i] >= minDensity*peakMax {
			modes = append(modes, Mode{
				Center:     lo + float64(i)*step,
				Height:     dens[i],
				Prominence: dens[i] / peakMax,
			})
		}
	}
	// Strongest first.
	for i := 0; i < len(modes); i++ {
		for j := i + 1; j < len(modes); j++ {
			if modes[j].Height > modes[i].Height {
				modes[i], modes[j] = modes[j], modes[i]
			}
		}
	}
	return modes
}
