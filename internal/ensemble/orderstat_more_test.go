package ensemble

import (
	"math"
	"testing"

	"ensembleio/internal/sim"
)

func TestOrderStatCDFBounds(t *testing.T) {
	// For the maximum (k=n), P = F^n; for the minimum, P = 1-(1-F)^n.
	for _, F := range []float64{0, 0.2, 0.5, 0.9, 1} {
		n := 7
		if got, want := OrderStatCDF(F, n, n), math.Pow(F, float64(n)); math.Abs(got-want) > 1e-9 {
			t.Errorf("max CDF at F=%v: %v, want %v", F, got, want)
		}
		if got, want := OrderStatCDF(F, 1, n), 1-math.Pow(1-F, float64(n)); math.Abs(got-want) > 1e-9 {
			t.Errorf("min CDF at F=%v: %v, want %v", F, got, want)
		}
	}
}

func TestOrderStatCDFMonotoneInK(t *testing.T) {
	// Higher order statistics are stochastically larger: their CDF at
	// fixed t is smaller.
	F := 0.6
	n := 10
	prev := 1.1
	for k := 1; k <= n; k++ {
		p := OrderStatCDF(F, k, n)
		if p > prev+1e-12 {
			t.Fatalf("CDF not decreasing in k at k=%d: %v > %v", k, p, prev)
		}
		prev = p
	}
}

func TestOrderStatCDFPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	OrderStatCDF(0.5, 0, 5)
}

func TestExpectedKthOfNUniform(t *testing.T) {
	// For U(0,1): E[X_(k) of n] = k/(n+1).
	d := uniformDataset(31, 60000)
	for _, tc := range []struct{ k, n int }{{1, 9}, {5, 9}, {9, 9}, {50, 99}} {
		got := d.ExpectedKthOfN(tc.k, tc.n)
		want := float64(tc.k) / float64(tc.n+1)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("E[X_(%d) of %d] = %v, want %v", tc.k, tc.n, got, want)
		}
	}
}

func TestExpectedMedianBelowExpectedMax(t *testing.T) {
	d := uniformDataset(32, 20000)
	n := 101
	med := d.ExpectedMedianOfN(n)
	max := d.ExpectedMaxOfN(n)
	if med >= max {
		t.Errorf("E[median]=%v >= E[max]=%v", med, max)
	}
	if math.Abs(med-0.5) > 0.03 {
		t.Errorf("expected median of uniform draws %v, want ~0.5", med)
	}
}

func TestBootstrapCICoversTruth(t *testing.T) {
	g := sim.NewRNG(33)
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = g.Normal(10, 2)
	}
	d := NewDataset(xs)
	r := sim.NewRNG(34)
	lo, hi := d.BootstrapCI(func(dd *Dataset) float64 { return dd.Mean() }, 500, 0.95, r.Float64)
	if lo > 10 || hi < 10 {
		t.Errorf("95%% CI [%v, %v] misses the true mean 10", lo, hi)
	}
	if hi-lo > 1.0 {
		t.Errorf("CI width %v implausibly wide for n=400, sigma=2", hi-lo)
	}
	if lo >= hi {
		t.Errorf("degenerate CI [%v, %v]", lo, hi)
	}
}

func TestBootstrapEmptyDataset(t *testing.T) {
	d := NewDataset(nil)
	r := sim.NewRNG(1)
	if b := d.Bootstrap(func(dd *Dataset) float64 { return dd.Mean() }, 10, r.Float64); b.Len() != 0 {
		t.Error("bootstrap of empty dataset produced samples")
	}
}

func TestHarmonicStructureDetectsR2R4R(t *testing.T) {
	modes := []Mode{
		{Center: 32.5, Height: 10},
		{Center: 16.4, Height: 7},
		{Center: 8.2, Height: 4},
	}
	base, harmonics, ok := HarmonicStructure(modes, 0.15)
	if !ok {
		t.Fatal("harmonic structure not detected")
	}
	if math.Abs(base-32.5) > 1e-9 {
		t.Errorf("base %v, want 32.5", base)
	}
	want := []int{1, 2, 4}
	for i, h := range harmonics {
		if h != want[i] {
			t.Errorf("harmonics = %v, want %v", harmonics, want)
			break
		}
	}
}

func TestHarmonicStructureRejectsUnrelatedModes(t *testing.T) {
	modes := []Mode{
		{Center: 30, Height: 10},
		{Center: 23, Height: 7}, // not a harmonic of 30
	}
	if _, _, ok := HarmonicStructure(modes, 0.1); ok {
		t.Error("unrelated modes reported as harmonic")
	}
	if _, _, ok := HarmonicStructure(modes[:1], 0.1); ok {
		t.Error("single mode reported as harmonic")
	}
}

func TestSummarizeTrimodal(t *testing.T) {
	g := sim.NewRNG(35)
	d := NewDataset(nil)
	for i := 0; i < 30000; i++ {
		switch {
		case g.Bernoulli(0.45):
			d.Add(g.Normal(32, 1.2))
		case g.Bernoulli(0.5):
			d.Add(g.Normal(16, 1.0))
		default:
			d.Add(g.Normal(8, 0.8))
		}
	}
	s := Summarize(d, SummaryOpts{})
	if len(s.Modes) != 3 {
		t.Fatalf("summary found %d modes, want 3", len(s.Modes))
	}
	if !s.HarmonicOK {
		t.Error("summary missed the harmonic structure")
	}
	if math.Abs(s.HarmonicBase-32) > 2 {
		t.Errorf("harmonic base %v, want ~32", s.HarmonicBase)
	}
	if s.GaussKS < 0.05 {
		t.Errorf("trimodal GaussKS %v, want clearly non-Gaussian", s.GaussKS)
	}
	if s.Moments.N != 30000 {
		t.Errorf("summary N = %d", s.Moments.N)
	}
	if out := s.String(); len(out) == 0 {
		t.Error("empty summary string")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(NewDataset(nil), SummaryOpts{})
	if s.Hist != nil || len(s.Modes) != 0 {
		t.Error("empty dataset should produce an empty summary")
	}
}
