package ensemble

import "math"

// This file implements §III-A of the paper: the two statistical
// observations that drive the methodology.
//
// Order statistics: for N iid observations with density f and CDF F,
// the largest observation has density
//
//	f_N(t) = N * F(t)^(N-1) * f(t)                          (Eq. 1)
//
// Because synchronous phases end when the last task finishes, f_N —
// not f — governs application-visible performance, and as N grows
// F^(N-1) picks out the extreme right tail of f.
//
// Law of Large Numbers: when a task's transfer is split into k
// successive calls with iid durations, the total is a sum of k draws;
// its distribution narrows relative to its mean (CV falls like
// 1/sqrt(k)), so the slowest task gets faster even though total bytes
// are unchanged — the Figure 2 effect.

// MaxOrderPDF evaluates f_N over the histogram's bins: the density of
// the slowest of n draws from the binned distribution. The result is
// a density aligned with h's bin centers.
func MaxOrderPDF(h *Histogram, n int) []float64 {
	cdf := h.CDF()
	out := make([]float64, h.Bins.N())
	prev := 0.0
	for i := range out {
		// Exact per-bin mass of the maximum: F_hi^n - F_lo^n. This is
		// the integral of Eq. 1 over the bin, immune to the rapid
		// variation of F^(n-1) inside a bin at large n.
		Fn := math.Pow(cdf[i], float64(n))
		out[i] = (Fn - prev) / h.Bins.Width(i)
		prev = Fn
	}
	return out
}

// ExpectedMax estimates E[max of n draws] from the binned
// distribution via E[max] = sum x * d(F^n).
func ExpectedMax(h *Histogram, n int) float64 {
	cdf := h.CDF()
	prev := 0.0
	s := 0.0
	for i := range cdf {
		Fn := math.Pow(cdf[i], float64(n))
		s += h.Bins.Center(i) * (Fn - prev)
		prev = Fn
	}
	// Any overflow mass is attributed to the top edge.
	if h.total > 0 && prev < 1 {
		s += h.Bins.Edges[len(h.Bins.Edges)-1] * (1 - prev)
	}
	return s
}

// ExpectedMaxOfN estimates E[max of n draws] directly from a sample
// using the empirical CDF: E[max] = sum x_(i) * (F_i^n - F_(i-1)^n).
func (d *Dataset) ExpectedMaxOfN(n int) float64 {
	s := d.Sorted()
	m := len(s)
	if m == 0 {
		return math.NaN()
	}
	prev := 0.0
	out := 0.0
	for i, x := range s {
		F := float64(i+1) / float64(m)
		Fn := math.Pow(F, float64(n))
		out += x * (Fn - prev)
		prev = Fn
	}
	return out
}

// ConvolveK returns the distribution of the sum of k iid draws from
// h, computed by repeated discrete convolution of the binned PDF.
// h must be linearly binned starting at a finite edge; the result has
// the same bin width spanning k times the range.
func ConvolveK(h *Histogram, k int) *Histogram {
	if k < 1 {
		panic("ensemble: ConvolveK requires k >= 1")
	}
	if h.Bins.Log {
		panic("ensemble: ConvolveK requires linear bins")
	}
	n := h.Bins.N()
	w := h.Bins.Width(0)
	lo := h.Bins.Edges[0]

	// Probability mass per bin (ignore under/overflow).
	inRange := h.total - h.underflow - h.overflow
	base := make([]float64, n)
	if inRange > 0 {
		for i, c := range h.counts {
			base[i] = c / inRange
		}
	}

	cur := append([]float64(nil), base...)
	for step := 1; step < k; step++ {
		next := make([]float64, len(cur)+n-1)
		for i, a := range cur {
			if a == 0 {
				continue
			}
			for j, b := range base {
				next[i+j] += a * b
			}
		}
		cur = next
	}

	edges := make([]float64, len(cur)+1)
	for i := range edges {
		edges[i] = lo*float64(k) + float64(i)*w
	}
	out := NewHistogram(Bins{Edges: edges})
	for i, p := range cur {
		out.counts[i] = p
		out.total += p
	}
	return out
}

// SplitPrediction predicts the effect of splitting one transfer into k
// equal calls, assuming per-call durations scale like the observed
// single-call distribution divided by k. It returns the predicted
// expected slowest-task total (the phase time) for a population of
// nTasks.
func SplitPrediction(single *Dataset, k, nTasks int) float64 {
	if k < 1 || single.Len() == 0 {
		return math.NaN()
	}
	// Build a linear histogram of per-call durations (single / k).
	max := single.Max()
	h := NewHistogram(LinearBins(0, max/float64(k)*1.0001+1e-12, 512))
	for _, x := range single.Values() {
		h.Add(x / float64(k))
	}
	sum := ConvolveK(h, k)
	return ExpectedMax(sum, nTasks)
}
