package ensemble

import (
	"math"
	"sort"
)

// General order statistics beyond the maximum: the k-th smallest of n
// iid draws has CDF P(X_(k) <= t) = sum_{j=k..n} C(n,j) F^j (1-F)^(n-j),
// the regularized incomplete beta function I_F(k, n-k+1). These are
// the curves of Figure 5(a) read the other way: "the fraction of I/Os
// complete by time t" for a population of n is the expectation of the
// empirical CDF, and its quantile bands come from order statistics.

// OrderStatCDF returns P(k-th smallest of n draws <= t) given the
// parent CDF value F = F(t).
func OrderStatCDF(F float64, k, n int) float64 {
	if k < 1 || k > n {
		panic("ensemble: order statistic index out of range")
	}
	return betaInc(float64(k), float64(n-k+1), F)
}

// ExpectedKthOfN estimates E[k-th smallest of n draws] from the sample
// via the probability-integral transform on the empirical quantile
// function.
func (d *Dataset) ExpectedKthOfN(k, n int) float64 {
	if d.Len() == 0 {
		return math.NaN()
	}
	if k < 1 || k > n {
		panic("ensemble: order statistic index out of range")
	}
	// E[X_(k)] = integral over u in (0,1) of Q(u) dBeta(u; k, n-k+1).
	// Numerically integrate with the beta density on a uniform grid.
	const steps = 2048
	a, b := float64(k), float64(n-k+1)
	sum, wsum := 0.0, 0.0
	for i := 0; i < steps; i++ {
		u := (float64(i) + 0.5) / steps
		w := math.Exp((a-1)*math.Log(u) + (b-1)*math.Log(1-u) - logBeta(a, b))
		sum += w * d.Quantile(u)
		wsum += w
	}
	return sum / wsum
}

// ExpectedMedianOfN estimates the expected median of n draws.
func (d *Dataset) ExpectedMedianOfN(n int) float64 {
	return d.ExpectedKthOfN((n+1)/2, n)
}

// betaInc is the regularized incomplete beta function I_x(a, b) via
// the continued-fraction expansion (Numerical-Recipes style).
func betaInc(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	ln := a*math.Log(x) + b*math.Log(1-x) - logBeta(a, b)
	front := math.Exp(ln)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func logBeta(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// Bootstrap resamples the dataset nBoot times and returns the given
// statistic's bootstrap distribution, for confidence intervals on
// ensemble summaries (how stable is this mode/median/p99 across
// hypothetical re-runs?). The rng function must return uniform
// variates in [0,1); pass a seeded generator for reproducibility.
func (d *Dataset) Bootstrap(stat func(*Dataset) float64, nBoot int, rng func() float64) *Dataset {
	n := d.Len()
	if n == 0 || nBoot <= 0 {
		return NewDataset(nil)
	}
	src := d.Values()
	out := make([]float64, nBoot)
	buf := make([]float64, n)
	for b := 0; b < nBoot; b++ {
		for i := range buf {
			buf[i] = src[int(rng()*float64(n))]
		}
		out[b] = stat(NewDataset(append([]float64(nil), buf...)))
	}
	return NewDataset(out)
}

// BootstrapCI returns the (lo, hi) percentile bootstrap confidence
// interval at the given level (e.g. 0.95) for the statistic.
func (d *Dataset) BootstrapCI(stat func(*Dataset) float64, nBoot int, level float64, rng func() float64) (lo, hi float64) {
	bd := d.Bootstrap(stat, nBoot, rng)
	alpha := (1 - level) / 2
	return bd.Quantile(alpha), bd.Quantile(1 - alpha)
}

// HarmonicStructure tests whether mode centers form the paper's
// harmonic pattern: a base mode at time T with other modes near T/h
// for small integer harmonics h. It returns the base (slowest) center
// and the harmonic number matched for each mode (1 for the base), or
// ok=false when fewer than two modes fit the pattern within tol
// (relative tolerance on the center, e.g. 0.15).
func HarmonicStructure(modes []Mode, tol float64) (base float64, harmonics []int, ok bool) {
	if len(modes) < 2 {
		return 0, nil, false
	}
	centers := make([]float64, len(modes))
	for i, m := range modes {
		centers[i] = m.Center
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(centers)))
	base = centers[0]
	harmonics = make([]int, 0, len(centers))
	matched := 0
	for _, c := range centers {
		h := int(math.Round(base / c))
		if h < 1 {
			h = 1
		}
		if h <= 8 && math.Abs(c-base/float64(h)) <= tol*base/float64(h) {
			harmonics = append(harmonics, h)
			matched++
		} else {
			harmonics = append(harmonics, 0) // no harmonic fit
		}
	}
	return base, harmonics, matched >= 2
}
