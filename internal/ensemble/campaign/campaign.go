// Package campaign is the batch campaign runner: it takes a list of
// scenario specs (typically a duplicate-heavy what-if grid), dedups
// them against the content-addressed cache (internal/cascache), runs
// only the misses on runpool, and returns submission-order-stable
// results — every entry's artifact set, whether computed, served from
// the store, or shared with an identical earlier entry.
//
// Because every run is a pure function of its scenario key, the three
// sources are byte-identical by construction; Verify mode recomputes
// on every hit and diffs to prove it.
package campaign

import (
	"fmt"

	"ensembleio/internal/cascache"
	"ensembleio/internal/cluster"
	"ensembleio/internal/faults"
	"ensembleio/internal/ipmio"
	"ensembleio/internal/runpool"
	"ensembleio/internal/wldsl"
)

// Entry is one scenario of a campaign: the full pure-function input of
// a run. Name is display-only and never reaches the key.
type Entry struct {
	Name     string
	Spec     *wldsl.Spec
	Platform cluster.Profile
	Faults   *faults.Scenario
	Seed     int64
}

// Options configures a campaign.
type Options struct {
	// Workers bounds the runpool fan-out (0 = all cores). Results are
	// identical at any value.
	Workers int
	// Store, when non-nil, serves hits and receives every computed
	// artifact set. A nil store computes everything (cold mode).
	Store *cascache.Store
	// Verify recomputes every cache hit and diffs it against the
	// served bytes — the paranoid mode behind -cache-verify.
	Verify bool
	// Progress, when non-nil, is called after each computed run.
	Progress runpool.Progress
}

// Source says where a result's artifacts came from.
type Source string

const (
	SourceRun   Source = "run"   // computed this campaign
	SourceCache Source = "cache" // served by the store
	SourceDup   Source = "dup"   // identical to an earlier entry of this campaign
)

// Result is one entry's outcome, in submission order.
type Result struct {
	Name      string
	Key       cascache.Key
	Meta      cascache.Meta
	Artifacts []cascache.Artifact
	Source    Source
}

// Stats summarizes a campaign's cache effectiveness.
type Stats struct {
	Scenarios     int    // entries submitted
	Unique        int    // distinct scenario keys
	Hits          int    // unique keys served by the store
	Misses        int    // unique keys computed
	DupHits       int    // entries sharing an earlier entry's key
	BytesServed   uint64 // artifact bytes delivered without compute (store hits + dups)
	BytesComputed uint64 // artifact bytes of computed runs
}

// computed is one scheduled miss's outcome.
type computed struct {
	arts []cascache.Artifact
	meta cascache.Meta
	err  error
}

// runOne executes one scenario under the capture contract — full
// trace+profile collection with telemetry on — so the resulting
// artifact set serves every later request shape.
func runOne(e Entry) computed {
	prog, err := wldsl.Compile(e.Spec)
	if err != nil {
		return computed{err: fmt.Errorf("campaign: %s: %w", e.Name, err)}
	}
	run := prog.Run(wldsl.RunConfig{
		Machine:   e.Platform,
		Seed:      e.Seed,
		Mode:      ipmio.TraceMode | ipmio.ProfileMode,
		Faults:    e.Faults,
		Telemetry: true,
	})
	arts, meta, err := cascache.CaptureRun(run, e.Seed)
	if err != nil {
		return computed{err: fmt.Errorf("campaign: %s: %w", e.Name, err)}
	}
	return computed{arts: arts, meta: meta}
}

// Run executes the campaign. Results are indexed like entries;
// duplicates share the first occurrence's artifact slices (no copy).
func Run(entries []Entry, opts Options) ([]Result, Stats, error) {
	results := make([]Result, len(entries))
	stats := Stats{Scenarios: len(entries)}

	// Dedup by canonical scenario key, preserving submission order of
	// first occurrences. The map is lookup-only (never ranged), so
	// iteration order cannot reach the results.
	firstOf := make(map[cascache.Key]int, len(entries))
	var uniques []int
	for i, e := range entries {
		k, err := cascache.ScenarioKey(e.Spec, e.Platform, e.Faults, e.Seed)
		if err != nil {
			return nil, stats, fmt.Errorf("campaign: %s: %w", e.Name, err)
		}
		results[i].Name = e.Name
		results[i].Key = k
		if _, ok := firstOf[k]; ok {
			results[i].Source = SourceDup
			continue
		}
		firstOf[k] = i
		uniques = append(uniques, i)
	}
	stats.Unique = len(uniques)
	stats.DupHits = len(entries) - len(uniques)

	// Probe the store; misses (and, in Verify mode, hits too) get
	// scheduled. toRun holds entry indices, submission order.
	var toRun []int
	for _, i := range uniques {
		if opts.Store != nil {
			if ent, ok := opts.Store.Get(results[i].Key); ok {
				results[i].Source = SourceCache
				results[i].Meta = ent.Meta
				results[i].Artifacts = ent.Artifacts
				stats.Hits++
				if opts.Verify {
					toRun = append(toRun, i)
				}
				continue
			}
		}
		results[i].Source = SourceRun
		toRun = append(toRun, i)
	}

	outs := runpool.MapProgress(opts.Workers, toRun, opts.Progress, func(_ int, i int) computed {
		return runOne(entries[i])
	})
	for j, out := range outs {
		i := toRun[j]
		if out.err != nil {
			return nil, stats, out.err
		}
		if results[i].Source == SourceCache {
			// Verify mode: the served bytes must equal the fresh run.
			if err := cascache.DiffArtifacts(results[i].Artifacts, out.arts); err != nil {
				return nil, stats, fmt.Errorf("campaign: %s: cache verify failed: %w", results[i].Name, err)
			}
			continue
		}
		results[i].Meta = out.meta
		results[i].Artifacts = out.arts
		stats.Misses++
		for _, a := range out.arts {
			stats.BytesComputed += uint64(len(a.Data))
		}
		if opts.Store != nil {
			if err := opts.Store.Put(results[i].Key, out.meta, out.arts); err != nil {
				return nil, stats, err
			}
		}
	}

	// Resolve duplicates against their first occurrence and settle the
	// served-bytes accounting.
	for i := range results {
		switch results[i].Source {
		case SourceDup:
			first := results[firstOf[results[i].Key]]
			results[i].Meta = first.Meta
			results[i].Artifacts = first.Artifacts
			for _, a := range first.Artifacts {
				stats.BytesServed += uint64(len(a.Data))
			}
		case SourceCache:
			for _, a := range results[i].Artifacts {
				stats.BytesServed += uint64(len(a.Data))
			}
		}
	}
	return results, stats, nil
}
