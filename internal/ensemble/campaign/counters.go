package campaign

import "ensembleio/internal/telemetry"

// CounterPrefix names the cache-effectiveness counter family. The
// counters ride the standard telemetry snapshot format, so
// ensembletop renders them with the same machinery as a run's engine
// counters (and its per-OST table knows to skip the family).
const CounterPrefix = "cascache."

// Snapshot exports the campaign stats as a telemetry counter
// snapshot, names pre-sorted as the format requires.
func (s Stats) Snapshot() *telemetry.Snapshot {
	return &telemetry.Snapshot{Counters: []telemetry.CounterSnap{
		{Name: CounterPrefix + "bytes_computed", Value: float64(s.BytesComputed)},
		{Name: CounterPrefix + "bytes_served", Value: float64(s.BytesServed)},
		{Name: CounterPrefix + "dup_hits", Value: float64(s.DupHits)},
		{Name: CounterPrefix + "hits", Value: float64(s.Hits)},
		{Name: CounterPrefix + "misses", Value: float64(s.Misses)},
		{Name: CounterPrefix + "scenarios", Value: float64(s.Scenarios)},
		{Name: CounterPrefix + "unique", Value: float64(s.Unique)},
	}}
}
