package campaign

import (
	"fmt"
	"testing"

	"ensembleio/internal/cascache"
	"ensembleio/internal/cluster"
	"ensembleio/internal/faults"
	"ensembleio/internal/wldsl"
)

// testEntries builds a duplicate-heavy grid: nUnique distinct
// scenarios, each submitted dups times, interleaved.
func testEntries(nUnique, dups int) []Entry {
	var out []Entry
	for d := 0; d < dups; d++ {
		for u := 0; u < nUnique; u++ {
			seed := int64(u + 1)
			out = append(out, Entry{
				Name:     fmt.Sprintf("gen%d-seed%d", u, seed),
				Spec:     wldsl.Generate(int64(u)),
				Platform: cluster.Franklin(),
				Seed:     seed,
			})
		}
	}
	return out
}

func TestCampaignDedupAndByteIdentity(t *testing.T) {
	entries := testEntries(3, 2) // 6 entries, 3 unique

	cold, coldStats, err := Run(entries, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if coldStats.Unique != 3 || coldStats.Misses != 3 || coldStats.DupHits != 3 || coldStats.Hits != 0 {
		t.Fatalf("cold stats %+v", coldStats)
	}

	store, err := cascache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	warm1, s1, err := Run(entries, Options{Workers: 1, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Misses != 3 || s1.Hits != 0 {
		t.Fatalf("first warm pass stats %+v", s1)
	}
	warm2, s2, err := Run(entries, Options{Workers: 4, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Hits != 3 || s2.Misses != 0 || s2.DupHits != 3 {
		t.Fatalf("second warm pass stats %+v", s2)
	}
	if s2.BytesServed == 0 || s2.BytesComputed != 0 {
		t.Fatalf("second warm pass byte accounting %+v", s2)
	}

	// Byte identity across cold, computed-warm, and cache-served-warm,
	// at different worker counts.
	for i := range entries {
		if cold[i].Key != warm1[i].Key || cold[i].Key != warm2[i].Key {
			t.Fatalf("entry %d: keys differ across passes", i)
		}
		if err := cascache.DiffArtifacts(cold[i].Artifacts, warm1[i].Artifacts); err != nil {
			t.Fatalf("entry %d: cold vs computed-warm: %v", i, err)
		}
		if err := cascache.DiffArtifacts(cold[i].Artifacts, warm2[i].Artifacts); err != nil {
			t.Fatalf("entry %d: cold vs cache-served: %v", i, err)
		}
	}

	// Sources land as documented.
	if warm2[0].Source != SourceCache || warm2[3].Source != SourceDup {
		t.Fatalf("sources %q / %q, want cache / dup", warm2[0].Source, warm2[3].Source)
	}

	// Verify mode recomputes every hit and must find them identical.
	if _, _, err := Run(entries, Options{Workers: 2, Store: store, Verify: true}); err != nil {
		t.Fatalf("verify pass: %v", err)
	}
}

// The analytic fast path and the pure event path share keys and bytes:
// a run cached under one serves the other (the sim-path-irrelevance
// half of the cache contract, end to end).
func TestCampaignCrossSimPathHit(t *testing.T) {
	store, err := cascache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	on := cluster.Franklin()
	off := cluster.Franklin()
	off.AnalyticOff = true
	spec := wldsl.Generate(4)

	resOn, _, err := Run([]Entry{{Name: "on", Spec: spec, Platform: on, Seed: 9}}, Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	resOff, stats, err := Run([]Entry{{Name: "off", Spec: spec, Platform: off, Seed: 9}},
		Options{Store: store, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hits != 1 {
		t.Fatalf("event-path request missed the analytic-path entry: %+v", stats)
	}
	if err := cascache.DiffArtifacts(resOn[0].Artifacts, resOff[0].Artifacts); err != nil {
		t.Fatalf("cross-sim-path artifacts differ: %v", err)
	}
}

func TestCampaignWithFaults(t *testing.T) {
	store, err := cascache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sc := &faults.Scenario{Name: "slow7", Faults: []faults.Fault{&faults.SlowOST{OST: 0, Factor: 0.5}}}
	mk := func() []Entry {
		return []Entry{
			{Name: "plain", Spec: wldsl.Generate(5), Platform: cluster.Franklin(), Seed: 3},
			{Name: "faulty", Spec: wldsl.Generate(5), Platform: cluster.Franklin(), Faults: sc, Seed: 3},
		}
	}
	first, s1, err := Run(mk(), Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Unique != 2 {
		t.Fatalf("fault scenario did not split the key: %+v", s1)
	}
	second, s2, err := Run(mk(), Options{Store: store, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Hits != 2 {
		t.Fatalf("warm faulted campaign stats %+v", s2)
	}
	for i := range first {
		if err := cascache.DiffArtifacts(first[i].Artifacts, second[i].Artifacts); err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
	}
}

func TestStatsSnapshot(t *testing.T) {
	s := Stats{Scenarios: 6, Unique: 3, Hits: 2, Misses: 1, DupHits: 3, BytesServed: 100, BytesComputed: 50}
	snap := s.Snapshot()
	if got := snap.Counter("cascache.hits"); got != 2 {
		t.Fatalf("cascache.hits = %v", got)
	}
	if got := snap.Counter("cascache.bytes_served"); got != 100 {
		t.Fatalf("cascache.bytes_served = %v", got)
	}
	for i := 1; i < len(snap.Counters); i++ {
		if snap.Counters[i-1].Name >= snap.Counters[i].Name {
			t.Fatalf("counters not sorted: %q before %q", snap.Counters[i-1].Name, snap.Counters[i].Name)
		}
	}
}
