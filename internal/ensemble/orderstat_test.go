package ensemble

import (
	"math"
	"testing"

	"ensembleio/internal/sim"
)

func uniformDataset(seed int64, n int) *Dataset {
	g := sim.NewRNG(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = g.Float64()
	}
	return NewDataset(xs)
}

func TestExpectedMaxUniformAnalytic(t *testing.T) {
	d := uniformDataset(1, 50000)
	for _, n := range []int{1, 2, 5, 10, 100} {
		got := d.ExpectedMaxOfN(n)
		want := float64(n) / float64(n+1) // E[max of n U(0,1)]
		if math.Abs(got-want) > 0.01 {
			t.Errorf("ExpectedMaxOfN(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestExpectedMaxMonotoneInN(t *testing.T) {
	d := uniformDataset(2, 20000)
	prev := 0.0
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256, 1024} {
		e := d.ExpectedMaxOfN(n)
		if e < prev {
			t.Fatalf("E[max of %d] = %v < previous %v", n, e, prev)
		}
		prev = e
	}
}

func TestExpectedMaxHistogramAgreesWithSample(t *testing.T) {
	d := uniformDataset(3, 50000)
	h := NewHistogram(LinearBins(0, 1, 200))
	h.AddAll(d)
	for _, n := range []int{4, 64} {
		a, b := ExpectedMax(h, n), d.ExpectedMaxOfN(n)
		if math.Abs(a-b) > 0.02 {
			t.Errorf("n=%d: hist %v vs sample %v", n, a, b)
		}
	}
}

func TestMaxOrderPDFIsADensityPeakedRight(t *testing.T) {
	d := uniformDataset(4, 50000)
	h := NewHistogram(LinearBins(0, 1, 100))
	h.AddAll(d)
	fn := MaxOrderPDF(h, 50)
	integral := 0.0
	argmax, best := 0, 0.0
	for i, f := range fn {
		integral += f * h.Bins.Width(i)
		if f > best {
			best, argmax = f, i
		}
	}
	if math.Abs(integral-1) > 0.05 {
		t.Errorf("f_N integral %v, want ~1", integral)
	}
	if c := h.Bins.Center(argmax); c < 0.9 {
		t.Errorf("f_50 peaks at %v, want in the right tail (>0.9)", c)
	}
}

func TestConvolveKMeanAndVarianceAdditive(t *testing.T) {
	g := sim.NewRNG(5)
	h := NewHistogram(LinearBins(0, 4, 200))
	d := NewDataset(nil)
	for i := 0; i < 40000; i++ {
		x := g.Uniform(0.5, 3.5)
		h.Add(x)
		d.Add(x)
	}
	k := 4
	sum := ConvolveK(h, k)
	wantMean := float64(k) * d.Mean()
	if math.Abs(sum.Mean()-wantMean) > 0.1 {
		t.Errorf("sum mean %v, want %v", sum.Mean(), wantMean)
	}
	// Variance via quantile spread: std of sum ~ sqrt(k) * std.
	spread := sum.Quantile(0.84) - sum.Quantile(0.16)
	wantSpread := 2 * math.Sqrt(float64(k)) * d.Std()
	if math.Abs(spread-wantSpread)/wantSpread > 0.15 {
		t.Errorf("sum spread %v, want ~%v", spread, wantSpread)
	}
}

func TestConvolveKRejectsLogBins(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for log bins")
		}
	}()
	ConvolveK(NewHistogram(LogBins(0.1, 10, 4)), 2)
}

func TestSplitPredictionImprovesWorstCase(t *testing.T) {
	// Heavy-ish tailed single-call distribution: splitting narrows the
	// per-task total and the predicted slowest-of-1024 falls with k.
	g := sim.NewRNG(6)
	xs := make([]float64, 4000)
	for i := range xs {
		xs[i] = 30 * g.Lognormal(0, 0.35)
	}
	d := NewDataset(xs)
	prev := math.Inf(1)
	for _, k := range []int{1, 2, 4, 8} {
		pred := SplitPrediction(d, k, 1024)
		if pred >= prev {
			t.Errorf("k=%d predicted slowest %v, want < %v (LLN narrowing)", k, pred, prev)
		}
		prev = pred
	}
}

func TestCVFallsLikeSqrtK(t *testing.T) {
	// Direct check of the LLN narrowing on the convolved distribution.
	g := sim.NewRNG(7)
	h := NewHistogram(LinearBins(0, 10, 400))
	for i := 0; i < 50000; i++ {
		h.Add(g.Uniform(1, 9))
	}
	cv := func(hh *Histogram) float64 { return hh.Std() / hh.Mean() }
	base := cv(h)
	k4 := cv(ConvolveK(h, 4))
	ratio := base / k4
	if math.Abs(ratio-2) > 0.1 { // sqrt(4) = 2
		t.Errorf("CV ratio for k=4 is %v, want ~2", ratio)
	}
}
