package ensemble

import (
	"math"
	"math/rand"
	"testing"
)

// generalFind strips the fast-path flag so Find takes the reference
// binary-search route over the same edges.
func generalFind(b Bins, x float64) int {
	return Bins{Edges: b.Edges, Log: b.Log}.Find(x)
}

// TestFindFastPathMatchesSearch is the property test for the O(1)
// linear-bin index: on random binnings and random probes — including
// values exactly on bin boundaries, underflow, and overflow — the
// arithmetic index must agree with the general search.
func TestFindFastPathMatchesSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		lo := rng.Float64()*200 - 100
		hi := lo + math.Exp(rng.Float64()*12-4) // spans ~1e-2 .. 1e3 widths
		n := 1 + rng.Intn(300)
		b := LinearBins(lo, hi, n)

		check := func(x float64) {
			t.Helper()
			got, want := b.Find(x), generalFind(b, x)
			if got != want {
				t.Fatalf("trial %d (lo=%v hi=%v n=%d): Find(%v) = %d, search says %d",
					trial, lo, hi, n, x, got, want)
			}
		}

		// Random interior, underflow and overflow probes.
		for i := 0; i < 50; i++ {
			check(lo + (hi-lo)*(rng.Float64()*1.2-0.1))
		}
		// Every edge exactly: x == Edges[i] must land in bin i (or
		// overflow for the last edge), the half-open [lo, hi) contract.
		for i, e := range b.Edges {
			check(e)
			// One ulp either side of the edge, where the arithmetic
			// index is most likely to round the wrong way.
			check(math.Nextafter(e, math.Inf(-1)))
			check(math.Nextafter(e, math.Inf(1)))
			if want := i; i < b.N() {
				if got := b.Find(e); got != want {
					t.Fatalf("trial %d: edge %d: Find(%v) = %d, want %d", trial, i, e, got, want)
				}
			}
		}
		// Far out-of-range values.
		check(lo - 1e6)
		check(hi + 1e6)
		if b.Find(lo-1e6) != -1 {
			t.Fatalf("trial %d: deep underflow not -1", trial)
		}
		if b.Find(hi+1e6) != b.N() {
			t.Fatalf("trial %d: deep overflow not N()", trial)
		}
	}
}

// TestFindLogBinsUnaffected pins that non-uniform binnings still take
// the general path and behave as before.
func TestFindLogBinsUnaffected(t *testing.T) {
	b := LogBins(1, 1000, 4)
	for i, e := range b.Edges[:b.N()] {
		if got := b.Find(e); got != i {
			t.Fatalf("log edge %d: Find(%v) = %d, want %d", i, e, got, i)
		}
	}
	if b.Find(0.5) != -1 || b.Find(b.Edges[b.N()]) != b.N() {
		t.Fatal("log bins under/overflow broken")
	}
}

func BenchmarkBinsFindLinear(b *testing.B) {
	bins := LinearBins(0, 50, 200)
	b.Run("fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bins.Find(float64(i%55) - 2)
		}
	})
	general := Bins{Edges: bins.Edges}
	b.Run("search", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			general.Find(float64(i%55) - 2)
		}
	})
}
