package ensemble

import (
	"math"
	"testing"
	"testing/quick"

	"ensembleio/internal/sim"
)

func TestLinearBinsGeometry(t *testing.T) {
	b := LinearBins(0, 10, 5)
	if b.N() != 5 {
		t.Fatalf("N = %d, want 5", b.N())
	}
	if b.Width(0) != 2 || b.Center(0) != 1 || b.Center(4) != 9 {
		t.Errorf("geometry wrong: w0=%v c0=%v c4=%v", b.Width(0), b.Center(0), b.Center(4))
	}
}

func TestLogBinsGeometry(t *testing.T) {
	b := LogBins(0.001, 1000, 4) // 6 decades x 4
	if b.N() != 24 {
		t.Fatalf("N = %d, want 24", b.N())
	}
	// Ratio between consecutive edges is constant.
	r := b.Edges[1] / b.Edges[0]
	for i := 1; i < b.N(); i++ {
		if !almostEq(b.Edges[i+1]/b.Edges[i], r, 1e-9) {
			t.Fatalf("edge ratio not constant at %d", i)
		}
	}
	if !almostEq(b.Center(0), math.Sqrt(b.Edges[0]*b.Edges[1]), 1e-12) {
		t.Error("log bin center is not the geometric mean")
	}
}

func TestFindEdgesAndOutOfRange(t *testing.T) {
	b := LinearBins(0, 10, 5)
	cases := []struct {
		x    float64
		want int
	}{
		{-0.1, -1}, {0, 0}, {1.99, 0}, {2, 1}, {9.99, 4}, {10, 5}, {11, 5},
	}
	for _, tc := range cases {
		if got := b.Find(tc.x); got != tc.want {
			t.Errorf("Find(%v) = %d, want %d", tc.x, got, tc.want)
		}
	}
}

func TestHistogramAddAndOverflow(t *testing.T) {
	h := NewHistogram(LinearBins(0, 10, 5))
	for _, x := range []float64{1, 3, 3, 5, 42, -1} {
		h.Add(x)
	}
	if h.Total() != 6 {
		t.Errorf("total %v, want 6", h.Total())
	}
	if h.Overflow() != 1 || h.Underflow() != 1 {
		t.Errorf("overflow/underflow = %v/%v, want 1/1", h.Overflow(), h.Underflow())
	}
	if h.Counts()[1] != 2 {
		t.Errorf("bin1 count %v, want 2 (two 3s)", h.Counts()[1])
	}
}

func TestPDFIntegratesToInRangeMass(t *testing.T) {
	g := sim.NewRNG(2)
	h := NewHistogram(LinearBins(0, 1, 50))
	n := 10000
	for i := 0; i < n; i++ {
		h.Add(g.Float64())
	}
	pdf := h.PDF()
	integral := 0.0
	for i, p := range pdf {
		integral += p * h.Bins.Width(i)
	}
	if !almostEq(integral, 1, 1e-9) {
		t.Errorf("PDF integral %v, want 1", integral)
	}
}

func TestCDFMonotoneEndsAtOne(t *testing.T) {
	g := sim.NewRNG(3)
	h := NewHistogram(LinearBins(0, 1, 20))
	for i := 0; i < 5000; i++ {
		h.Add(g.Float64())
	}
	cdf := h.CDF()
	prev := 0.0
	for i, c := range cdf {
		if c < prev {
			t.Fatalf("CDF not monotone at bin %d", i)
		}
		prev = c
	}
	if !almostEq(cdf[len(cdf)-1], 1, 1e-9) {
		t.Errorf("CDF end %v, want 1", cdf[len(cdf)-1])
	}
}

func TestHistogramMeanMatchesSample(t *testing.T) {
	g := sim.NewRNG(4)
	h := NewHistogram(LinearBins(0, 2, 200))
	d := NewDataset(nil)
	for i := 0; i < 20000; i++ {
		x := g.Uniform(0.2, 1.8)
		h.Add(x)
		d.Add(x)
	}
	if !almostEq(h.Mean(), d.Mean(), 0.01) {
		t.Errorf("hist mean %v vs sample mean %v", h.Mean(), d.Mean())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(LinearBins(0, 100, 100))
	for i := 0; i < 100; i++ {
		h.Add(float64(i) + 0.5)
	}
	if q := h.Quantile(0.5); math.Abs(q-50) > 1.5 {
		t.Errorf("median %v, want ~50", q)
	}
	if q := h.Quantile(0.9); math.Abs(q-90) > 1.5 {
		t.Errorf("P90 %v, want ~90", q)
	}
}

func TestMergeAddsCounts(t *testing.T) {
	a := NewHistogram(LinearBins(0, 10, 5))
	b := NewHistogram(LinearBins(0, 10, 5))
	a.Add(1)
	b.Add(1)
	b.Add(9)
	b.Add(99) // overflow
	a.Merge(b)
	if a.Total() != 4 || a.Counts()[0] != 2 || a.Overflow() != 1 {
		t.Errorf("merge wrong: total=%v c0=%v over=%v", a.Total(), a.Counts()[0], a.Overflow())
	}
}

func TestMergeBinningMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewHistogram(LinearBins(0, 10, 5)).Merge(NewHistogram(LinearBins(0, 10, 6)))
}

// Property: Find returns the bin whose edges bracket the value.
func TestFindProperty(t *testing.T) {
	b := LogBins(0.01, 100, 7)
	f := func(raw uint16) bool {
		x := 0.01 + float64(raw)/655.36 // 0.01 .. ~100
		i := b.Find(x)
		if i < 0 || i >= b.N() {
			return x < b.Edges[0] || x >= b.Edges[len(b.Edges)-1]
		}
		return b.Edges[i] <= x && x < b.Edges[i+1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
