package tenancy

import (
	"strings"
	"testing"

	"ensembleio/internal/analysis"
	"ensembleio/internal/cluster"
	"ensembleio/internal/wldsl"
)

// writerSpec builds an N-to-1 bursty writer: reps cycles of
// barrier-fenced strided pwrites, the IOR shape the corpus uses.
func writerSpec(name string, tasks, reps int, transfer int64) *wldsl.Spec {
	block := transfer * 4
	return &wldsl.Spec{
		Name:  name,
		Tasks: tasks,
		Phases: []wldsl.Phase{
			{Ops: []wldsl.Op{{Op: "open"}}},
			{
				Name:   "rep%d",
				Repeat: reps,
				Ops: []wldsl.Op{
					{Op: "barrier"},
					{Op: "pwrite", Bytes: transfer, Count: 4,
						Offset: &wldsl.Offset{PerRank: block, PerIter: transfer, PerPhase: block * int64(tasks)}},
					{Op: "barrier"},
				},
			},
			{Ops: []wldsl.Op{{Op: "close"}}},
		},
	}
}

// TestVictimAggressorRanking: a wide bursty writer co-scheduled on top
// of a smaller tenant must surface as the aggressor in the ranking,
// with the contended OSTs attributed. This is the load-bearing
// observability claim: the report localizes interference to a
// victim/aggressor pair and the shared devices, not just "things got
// slower".
func TestVictimAggressorRanking(t *testing.T) {
	cfg := Config{Machine: cluster.Franklin(), Seed: 11, Telemetry: true}
	tenants := []Tenant{
		{Name: "victim", Spec: writerSpec("victim", 16, 8, 16e6), StartSec: 0},
		{Name: "aggressor", Spec: writerSpec("aggressor", 64, 8, 16e6), StartSec: 0},
	}
	res, err := RunTenants(cfg, tenants)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(cfg, tenants, res, analysis.InterferenceConfig{})
	if err != nil {
		t.Fatal(err)
	}

	for _, tm := range rep.Tenants {
		t.Logf("%s: [%.2f %.2f] solo=%.2f slowdown=%.3f ioShare=%.3f", tm.Name, tm.StartSec, tm.EndSec, tm.SoloSec, tm.Slowdown, tm.IOTimeShare)
	}
	if len(rep.Ranking) == 0 {
		t.Fatal("fully overlapped co-run produced no victim/aggressor findings")
	}
	var hit *analysis.InterferencePair
	for i := range rep.Ranking {
		p := &rep.Ranking[i]
		if p.Victim == "victim" && p.Aggressor == "aggressor" {
			hit = p
			break
		}
	}
	if hit == nil {
		t.Fatalf("ranking %+v does not pair victim <- aggressor", rep.Ranking)
	}
	if hit.Slowdown <= 1 {
		t.Errorf("victim slowdown %.3f, want > 1", hit.Slowdown)
	}
	if hit.OverlapFrac <= 0 {
		t.Errorf("overlap fraction %.3f, want > 0", hit.OverlapFrac)
	}
	if len(hit.SharedOSTs) == 0 {
		t.Error("finding names no contended OSTs; attribution is vacuous")
	}
	if len(rep.Windows) == 0 {
		t.Error("overlapping tenants produced no contention windows")
	}
}

// TestCleanCoRunNoFindings: two tenants whose windows never overlap
// must produce an empty ranking and no contention windows — run-to-run
// platform noise alone (the shared background-traffic realization
// shifts when a neighbor is added) must not be reported as
// interference.
func TestCleanCoRunNoFindings(t *testing.T) {
	cfg := Config{Machine: cluster.Franklin(), Seed: 11}
	tenants := []Tenant{
		{Name: "early", Spec: writerSpec("early", 16, 2, 8e6), StartSec: 0},
		{Name: "late", Spec: writerSpec("late", 16, 2, 8e6), StartSec: 900},
	}
	res, err := RunTenants(cfg, tenants)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tenants[0].EndSec >= tenants[1].StartSec {
		t.Fatalf("test premise broken: early tenant runs to %.1fs, into late's window (start %.1fs)",
			res.Tenants[0].EndSec, tenants[1].StartSec)
	}
	rep, err := Analyze(cfg, tenants, res, analysis.InterferenceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Ranking) != 0 {
		t.Errorf("clean co-run reported findings: %+v", rep.Ranking)
	}
	if len(rep.Windows) != 0 {
		t.Errorf("clean co-run reported contention windows: %+v", rep.Windows)
	}
	for _, tm := range rep.Tenants {
		if tm.SoloSec <= 0 {
			t.Errorf("tenant %s: non-positive solo baseline %.3f", tm.Name, tm.SoloSec)
		}
	}
}

// TestPerTenantAccounting: the merged telemetry stream carries a
// namespaced counter family per tenant, and the per-tenant attributed
// write volume matches the tenant's own collector view.
func TestPerTenantAccounting(t *testing.T) {
	cfg := Config{Machine: cluster.Franklin(), Seed: 3, Telemetry: true}
	tenants := []Tenant{
		{Name: "a", Spec: writerSpec("a", 16, 2, 8e6), StartSec: 0},
		{Name: "b", Spec: writerSpec("b", 16, 2, 8e6), StartSec: 1},
	}
	res, err := RunTenants(cfg, tenants)
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry == nil {
		t.Fatal("telemetry requested but snapshot is nil")
	}
	seen := map[string]bool{}
	for _, c := range res.Telemetry.Counters {
		if rest, ok := strings.CutPrefix(c.Name, "tenant."); ok {
			name, _, _ := strings.Cut(rest, ".")
			seen[name] = true
		}
	}
	for _, tn := range tenants {
		if !seen[tn.Name] {
			t.Errorf("no tenant.%s.* counters in the merged stream", tn.Name)
		}
	}
	var tagged int
	for _, sp := range res.Spans {
		if sp.Cat == "tenant" {
			tagged++
		}
	}
	if tagged != len(tenants) {
		t.Errorf("got %d tenant window spans, want %d", tagged, len(tenants))
	}
	for i := range res.Tenants {
		tr := &res.Tenants[i]
		if tr.EndSec <= tr.StartSec {
			t.Errorf("tenant %s: empty window [%.2f, %.2f]", tr.Name, tr.StartSec, tr.EndSec)
		}
		if len(tr.Run.Collector.Events) == 0 {
			t.Errorf("tenant %s: no trace events", tr.Name)
		}
	}
}

// TestTenantValidation: the compile step rejects the configurations
// that would silently corrupt attribution.
func TestTenantValidation(t *testing.T) {
	good := writerSpec("ok", 4, 1, 2e6)
	cases := map[string][]Tenant{
		"empty list":     {},
		"bad name":       {{Name: "a b", Spec: good}},
		"empty name":     {{Name: "", Spec: good}},
		"duplicate name": {{Name: "a", Spec: good}, {Name: "a", Spec: good}},
		"nil spec":       {{Name: "a", Spec: good}, {Name: "b"}},
		"negative start": {{Name: "a", Spec: good, StartSec: -1}},
	}
	for label, tenants := range cases {
		if _, err := RunTenants(Config{Machine: cluster.Franklin(), Seed: 1}, tenants); err == nil {
			t.Errorf("%s: RunTenants accepted invalid tenant list", label)
		}
	}
}
