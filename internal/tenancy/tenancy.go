// Package tenancy co-schedules several declarative workloads — tenants
// — on one shared simulated platform: one engine, one fabric, one
// lustre mount, one metadata service. Each tenant gets a disjoint node
// block, its own namespaced file tree, a staggered start offset, and a
// per-tenant accounting bucket on the mount, so the merged telemetry
// stream and the per-tenant usage snapshots attribute every byte and
// busy second to the tenant that caused it.
//
// On top of the co-run, Analyze computes LASSi-style interference
// metrics (internal/analysis.Interference): each tenant's solo
// baseline is re-simulated on an identical private platform with the
// same seed and fault scenario, and the co-run/solo slowdown is
// overlap-weighted into a victim/aggressor ranking with shared-OST
// attribution. Both the co-run and the analysis are pure functions of
// the configuration, so every artifact — traces, merged telemetry,
// spans, the interference report JSON — is byte-identical across
// worker counts and the analytic fast path.
package tenancy

import (
	"fmt"

	"ensembleio/internal/analysis"
	"ensembleio/internal/cluster"
	"ensembleio/internal/faults"
	"ensembleio/internal/ipmio"
	"ensembleio/internal/lustre"
	"ensembleio/internal/telemetry"
	"ensembleio/internal/wldsl"
	"ensembleio/internal/workloads"
)

// Tenant is one co-scheduled workload instance.
type Tenant struct {
	// Name tags the tenant's counters ("tenant.<name>.*"), spans
	// ("<name>/..."), and report entries. Restricted to
	// [A-Za-z0-9_-]+ so the tags parse unambiguously.
	Name string `json:"name"`
	// Spec is the tenant's declarative workload (internal/wldsl).
	Spec *wldsl.Spec `json:"spec"`
	// StartSec staggers the tenant's launch in virtual time.
	StartSec float64 `json:"start_sec,omitempty"`
}

// Config carries the session-wide runtime knobs.
type Config struct {
	Machine cluster.Profile
	// Seed drives the shared platform; tenant i's workload-body draws
	// (and its solo baseline) use Seed+i, so baselines reproduce the
	// co-run's per-tenant randomness exactly.
	Seed int64
	// Faults, when non-nil, is the degradation scenario injected into
	// the shared machine — and into every solo baseline, so slowdowns
	// isolate tenant interference from injected degradation.
	Faults *faults.Scenario
	// Mode selects trace and/or profile collection per tenant
	// (default ipmio.TraceMode; the interference activity bins need
	// traces).
	Mode ipmio.Mode
	// Telemetry enables the merged session metric/span sink.
	Telemetry bool
}

// TenantResult is one tenant's share of a finished co-run.
type TenantResult struct {
	Name string
	// StartSec/EndSec delimit the tenant's window in the co-run's
	// virtual time.
	StartSec float64
	EndSec   float64
	// Run is the tenant's run artifact (collector, absolute last-rank
	// finish as Wall, shared-mount stats; no per-tenant telemetry —
	// the session folds one merged stream).
	Run *workloads.Run
	// Usage is the tenant's attributed slice of the server-side view.
	Usage lustre.TenantUsage
}

// Result is a finished co-run.
type Result struct {
	Tenants []TenantResult
	// Telemetry/Spans are the merged session stream (nil unless
	// Config.Telemetry).
	Telemetry *telemetry.Snapshot
	Spans     []telemetry.Span
}

// tenantSeed decorrelates the tenants' workload-body randomness while
// keeping each tenant's draws a pure function of (session seed, tenant
// index) — the property the solo-baseline protocol relies on.
func tenantSeed(seed int64, i int) int64 { return seed + int64(i) }

// validName reports whether a tenant name parses unambiguously in
// counter ("tenant.<name>.") and span ("<name>/") tags.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// compile validates the tenant list and compiles each spec with its
// file tree moved under /tenants/<name>, so tenants sharing a default
// path never collide on the shared mount.
func compile(tenants []Tenant) ([]*wldsl.Program, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("tenancy: need at least one tenant")
	}
	progs := make([]*wldsl.Program, len(tenants))
	for i := range tenants {
		t := &tenants[i]
		if !validName(t.Name) {
			return nil, fmt.Errorf("tenancy: tenant %d: name %q must be non-empty [A-Za-z0-9_-]+", i, t.Name)
		}
		for j := 0; j < i; j++ {
			if tenants[j].Name == t.Name {
				return nil, fmt.Errorf("tenancy: duplicate tenant name %q", t.Name)
			}
		}
		if t.Spec == nil {
			return nil, fmt.Errorf("tenancy: tenant %q: nil spec", t.Name)
		}
		if t.StartSec < 0 {
			return nil, fmt.Errorf("tenancy: tenant %q: negative start offset %g", t.Name, t.StartSec)
		}
		spec := *t.Spec
		base := spec.Path
		if base == "" {
			base = "/scratch/wl.dat"
			if spec.H5 != nil {
				base = "/scratch/wl.h5"
			}
		}
		if base[0] != '/' {
			base = "/" + base
		}
		spec.Path = "/tenants/" + t.Name + base
		p, err := wldsl.Compile(&spec)
		if err != nil {
			return nil, fmt.Errorf("tenancy: tenant %q: %w", t.Name, err)
		}
		progs[i] = p
	}
	return progs, nil
}

// sharedStripeCount picks the mount-wide default stripe count: the
// tenants' common value when they agree, otherwise 0 (stripe over all
// OSTs) — the mount is shared, so striping cannot vary per tenant.
func sharedStripeCount(progs []*wldsl.Program) int {
	sc := progs[0].Spec().StripeCount
	for _, p := range progs[1:] {
		if p.Spec().StripeCount != sc {
			return 0
		}
	}
	return sc
}

// launch builds a session for the tenant list and runs it. With
// only < 0 every tenant is attached (the co-run); with only = i just
// tenant i runs — but on a platform of the SAME total node count, with
// the same platform seed, the same node block, and the same start
// offset as the co-run. That is the solo-baseline protocol: the one
// machine sample the co-run used, with the neighbors removed, so the
// makespan difference is attributable to the neighbors and nothing
// else (fault windows even land at the same virtual times, because the
// stagger is kept).
func launch(cfg Config, tenants []Tenant, progs []*wldsl.Program, only int, mode ipmio.Mode, withTel bool) (*workloads.Session, []*workloads.Job) {
	cores := cfg.Machine.CoresPerNode
	bases := make([]int, len(progs))
	total := 0
	for i, p := range progs {
		bases[i] = total
		total += (p.Ranks() + cores - 1) / cores
	}

	sess := workloads.NewSession(workloads.SessionConfig{
		Machine:     cfg.Machine,
		Nodes:       total,
		Seed:        cfg.Seed,
		Faults:      cfg.Faults,
		Telemetry:   withTel,
		StripeCount: sharedStripeCount(progs),
	})

	jobs := make([]*workloads.Job, len(progs))
	for i, p := range progs {
		if only >= 0 && i != only {
			continue
		}
		jobs[i] = sess.AddJob(workloads.TenantJobConfig{
			Name:          tenants[i].Name,
			Tasks:         p.Ranks(),
			NodeBase:      bases[i],
			StartSec:      tenants[i].StartSec,
			Mode:          mode,
			ReserveEvents: p.Events(),
		})
	}
	// Bodies are prepared (communicators, imbalance draws) in tenant
	// order before any spawn, then all spawns are registered and one
	// engine run drives the whole session. Tenant i's body draws use
	// tenantSeed(i) in the baseline exactly as in the co-run.
	for i, p := range progs {
		if jobs[i] == nil {
			continue
		}
		jobs[i].Spawn(p.Body(jobs[i], tenantSeed(cfg.Seed, i)))
	}
	sess.Run()
	return sess, jobs
}

// RunTenants executes the co-run: every tenant on the shared platform,
// staggered per its StartSec, driven by one engine run.
func RunTenants(cfg Config, tenants []Tenant) (*Result, error) {
	progs, err := compile(tenants)
	if err != nil {
		return nil, err
	}
	mode := cfg.Mode
	if mode == 0 {
		mode = ipmio.TraceMode
	}
	sess, jobs := launch(cfg, tenants, progs, -1, mode, cfg.Telemetry)

	res := &Result{}
	for i, p := range progs {
		J := jobs[i]
		s := p.Spec()
		res.Tenants = append(res.Tenants, TenantResult{
			Name:     tenants[i].Name,
			StartSec: J.StartSec(),
			EndSec:   J.EndSec(),
			Run:      J.FinishTenant(s.Name, s.Tasks, p.TotalBytes()),
			Usage:    J.Usage(),
		})
	}
	res.Telemetry, res.Spans = sess.Fold(jobs)
	return res, nil
}

// SoloBaselines re-simulates each tenant alone under the solo-baseline
// protocol (see launch) and returns each tenant's solo makespan in
// seconds. Baselines run sequentially in tenant order — the function
// is a pure, memo-friendly function of cfg and tenants.
func SoloBaselines(cfg Config, tenants []Tenant) ([]float64, error) {
	progs, err := compile(tenants)
	if err != nil {
		return nil, err
	}
	solo := make([]float64, len(progs))
	for i := range progs {
		_, jobs := launch(cfg, tenants, progs, i, ipmio.ProfileMode, false)
		solo[i] = jobs[i].EndSec() - jobs[i].StartSec()
	}
	return solo, nil
}

// Analyze runs the solo baselines and computes the LASSi-style
// interference report for a finished co-run.
func Analyze(cfg Config, tenants []Tenant, res *Result, icfg analysis.InterferenceConfig) (*analysis.InterferenceReport, error) {
	solo, err := SoloBaselines(cfg, tenants)
	if err != nil {
		return nil, err
	}
	obs := make([]analysis.TenantObs, len(res.Tenants))
	for i := range res.Tenants {
		t := &res.Tenants[i]
		o := analysis.TenantObs{
			Name:     t.Name,
			StartSec: t.StartSec,
			EndSec:   t.EndSec,
			SoloSec:  solo[i],
			Events:   t.Run.Collector.Events,
		}
		per := t.Usage.PerOST
		o.OSTSeconds = make([]float64, len(per))
		o.OSTMB = make([]float64, len(per))
		for j := range per {
			o.OSTSeconds[j] = per[j].Seconds
			o.OSTMB[j] = per[j].MB
		}
		obs[i] = o
	}
	return analysis.Interference(obs, icfg), nil
}
