// Package mpi provides a simulated MPI-like runtime on the virtual
// clock: ranks as lock-step processes placed on cluster nodes, plus
// the synchronization and data-movement primitives the workloads need
// (Barrier, Send/Recv, Gather) with simple latency/bandwidth costs.
//
// Only ordering semantics and rough communication costs matter to the
// I/O ensembles under study; message payloads are carried for program
// logic but never byte-copied.
package mpi

import (
	"fmt"
	"math"

	"ensembleio/internal/cluster"
	"ensembleio/internal/sim"
	"ensembleio/internal/telemetry"
)

// Config sets the communication cost model and the world's placement
// on a shared cluster.
type Config struct {
	// LatencySec is the per-hop message latency (default 2 us).
	LatencySec float64
	// LinkMBps is the per-node MPI bandwidth (default 1600 MB/s).
	LinkMBps float64
	// NodeBase shifts the world's block placement: rank i lands on
	// cluster node NodeBase + i/CoresPerNode. Multi-tenant sessions
	// give each tenant's world a disjoint node range; the zero value
	// is the single-tenant layout.
	NodeBase int
	// TelPrefix prefixes the world's telemetry metric names
	// ("tenant.<name>." on a multi-tenant session), so each tenant's
	// barrier counters stay separable in the merged snapshot. Empty
	// means the bare "mpi.*" names.
	TelPrefix string
}

// World is a set of ranks with MPI_COMM_WORLD semantics.
type World struct {
	Eng  *sim.Engine
	Cl   *cluster.Cluster
	cfg  Config
	size int

	ranks []*Rank
	world *Comm

	// Telemetry handles, cached from the cluster's sink at construction
	// (nil handles no-op when telemetry is disabled).
	telBarriers    *telemetry.Counter
	telBarrierWait *telemetry.Hist
}

// Rank is one MPI task: a simulated process bound to a node.
type Rank struct {
	ID   int
	W    *World
	P    *sim.Proc
	Node *cluster.Node

	inbox   map[msgKey][]*message
	waiting map[msgKey]*sim.WaitQueue
}

type msgKey struct {
	from, tag int
}

type message struct {
	bytes   int64
	payload interface{}
}

// NewWorld creates a world of size ranks block-placed on the cluster
// (CoresPerNode ranks per node). The cluster must be large enough.
func NewWorld(eng *sim.Engine, cl *cluster.Cluster, size int, cfg Config) *World {
	if cfg.LatencySec == 0 {
		cfg.LatencySec = 2e-6
	}
	if cfg.LinkMBps == 0 {
		cfg.LinkMBps = 1600
	}
	w := &World{Eng: eng, Cl: cl, cfg: cfg, size: size}
	w.telBarriers = cl.Tel.Counter(cfg.TelPrefix + "mpi.barriers")
	w.telBarrierWait = cl.Tel.Hist(cfg.TelPrefix + "mpi.barrier_wait_s")
	for i := 0; i < size; i++ {
		w.ranks = append(w.ranks, &Rank{
			ID:      i,
			W:       w,
			Node:    cl.NodeForTask(cfg.NodeBase*cl.Prof.CoresPerNode + i),
			inbox:   make(map[msgKey][]*message),
			waiting: make(map[msgKey]*sim.WaitQueue),
		})
	}
	all := make([]int, size)
	for i := range all {
		all[i] = i
	}
	w.world = w.NewComm(all)
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Rank returns rank i (for inspection; its process is set by Launch).
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// Launch spawns every rank's process running body. The caller then
// drives the engine (eng.Run).
func (w *World) Launch(body func(r *Rank)) {
	for _, r := range w.ranks {
		rr := r
		w.Eng.Spawn(fmt.Sprintf("rank%d", rr.ID), func(p *sim.Proc) {
			rr.P = p
			body(rr)
		})
	}
}

// Barrier blocks until every rank in the world arrives.
func (r *Rank) Barrier() { r.W.world.Barrier(r) }

// Send transmits n logical bytes (and an optional payload pointer) to
// rank `to` with the given tag. The sender pays latency plus
// serialization time; delivery is asynchronous.
func (r *Rank) Send(to, tag int, n int64, payload interface{}) {
	cost := sim.Duration(r.W.cfg.LatencySec + float64(n)/1e6/r.W.cfg.LinkMBps)
	r.P.Sleep(cost)
	dst := r.W.ranks[to]
	k := msgKey{from: r.ID, tag: tag}
	dst.inbox[k] = append(dst.inbox[k], &message{bytes: n, payload: payload})
	if q := dst.waiting[k]; q != nil {
		q.WakeOne()
	}
}

// Recv blocks until a message with the given source and tag arrives
// and returns its size and payload.
func (r *Rank) Recv(from, tag int) (int64, interface{}) {
	k := msgKey{from: from, tag: tag}
	for len(r.inbox[k]) == 0 {
		q := r.waiting[k]
		if q == nil {
			q = &sim.WaitQueue{}
			r.waiting[k] = q
		}
		q.Wait(r.P)
	}
	m := r.inbox[k][0]
	r.inbox[k] = r.inbox[k][1:]
	return m.bytes, m.payload
}

// Comm is a communicator over a subset of world ranks.
type Comm struct {
	w     *World
	ranks []int       // world rank ids, in comm-rank order
	index map[int]int // world rank -> comm rank

	barGen   int
	barCount int
	barQ     sim.WaitQueue

	collSt *collState
}

// NewComm builds a communicator from world rank ids.
func (w *World) NewComm(worldRanks []int) *Comm {
	c := &Comm{w: w, ranks: append([]int(nil), worldRanks...), index: make(map[int]int)}
	for i, wr := range c.ranks {
		c.index[wr] = i
	}
	return c
}

// Size returns the communicator size.
func (c *Comm) Size() int { return len(c.ranks) }

// CommRank returns r's rank within the communicator; it panics if r is
// not a member.
func (c *Comm) CommRank(r *Rank) int {
	i, ok := c.index[r.ID]
	if !ok {
		panic(fmt.Sprintf("mpi: rank %d not in communicator", r.ID))
	}
	return i
}

// Barrier blocks until all communicator members arrive. Release costs
// a log2(n) latency tree.
func (c *Comm) Barrier(r *Rank) {
	c.CommRank(r) // membership check
	t0 := r.P.Now()
	gen := c.barGen
	c.barCount++
	if c.barCount < len(c.ranks) {
		for c.barGen == gen {
			c.barQ.Wait(r.P)
		}
	} else {
		c.barCount = 0
		c.barGen++
		c.barQ.WakeAll()
		// One count per completed barrier, charged to the last arriver.
		c.w.telBarriers.Inc()
	}
	r.P.Sleep(c.treeLatency())
	// Each rank's wait: arrival to release, the load-imbalance cost the
	// paper's phase analysis attributes to synchronization.
	c.w.telBarrierWait.Observe(float64(r.P.Now() - t0))
}

func (c *Comm) treeLatency() sim.Duration {
	n := len(c.ranks)
	if n <= 1 {
		return 0
	}
	return sim.Duration(math.Ceil(math.Log2(float64(n))) * c.w.cfg.LatencySec)
}

// Gather collects n bytes (with payload) from every member at the
// communicator's root (comm rank 0). Non-roots return once their
// contribution is sent; the root returns every payload in comm-rank
// order after paying the serialization cost of the full volume over
// its link.
func (c *Comm) Gather(r *Rank, n int64, payload interface{}) []interface{} {
	const gatherTag = -7717
	me := c.CommRank(r)
	rootWorld := c.ranks[0]
	if me != 0 {
		r.Send(rootWorld, gatherTag, n, payload)
		return nil
	}
	out := make([]interface{}, len(c.ranks))
	out[0] = payload
	total := int64(0)
	for i := 1; i < len(c.ranks); i++ {
		b, pl := r.Recv(c.ranks[i], gatherTag)
		out[i] = pl
		total += b
	}
	// Root-side drain of the incast volume.
	r.P.Sleep(sim.Duration(float64(total) / 1e6 / c.w.cfg.LinkMBps))
	r.P.Sleep(c.treeLatency())
	return out
}

// Bcast releases all members once the root arrives; members pay the
// tree latency plus serialization of n bytes.
func (c *Comm) Bcast(r *Rank, root int, n int64) {
	// Implemented as a barrier plus cost: adequate for the workloads,
	// which use Bcast only to distribute small configuration data.
	c.Barrier(r)
	r.P.Sleep(sim.Duration(float64(n) / 1e6 / c.w.cfg.LinkMBps))
}
