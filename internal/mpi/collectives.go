package mpi

import (
	"fmt"

	"ensembleio/internal/sim"
)

// Additional collectives beyond Barrier/Gather: reductions, allgather
// and scatter, with log-tree latency plus bandwidth cost models. These
// round out the runtime for workloads beyond the paper's three (e.g.
// aggregating statistics inside a simulated application).

// collState is the rendezvous scratch for one in-flight collective on
// a communicator. Collectives on one communicator must not interleave
// (as in MPI, where collective calls are ordered per communicator).
type collState struct {
	count  int
	vals   []interface{}
	result interface{}
	gen    int
	q      sim.WaitQueue
}

func (c *Comm) coll() *collState {
	if c.collSt == nil {
		c.collSt = &collState{vals: make([]interface{}, len(c.ranks))}
	}
	return c.collSt
}

// runCollective deposits this rank's value, blocks until all members
// have arrived, lets `combine` run once on the full slot array, and
// returns the combined result to every member.
func (c *Comm) runCollective(r *Rank, value interface{}, combine func(vals []interface{}) interface{}) interface{} {
	me := c.CommRank(r)
	st := c.coll()
	gen := st.gen
	st.vals[me] = value
	st.count++
	if st.count == len(c.ranks) {
		st.result = combine(st.vals)
		st.count = 0
		st.gen++
		st.q.WakeAll()
	} else {
		for st.gen == gen {
			st.q.Wait(r.P)
		}
	}
	return st.result
}

// ReduceOp combines two float64 contributions.
type ReduceOp func(a, b float64) float64

// Standard reduction operators.
var (
	OpSum ReduceOp = func(a, b float64) float64 { return a + b }
	OpMax ReduceOp = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	OpMin ReduceOp = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
)

// Allreduce combines every member's value with op and returns the
// result to all members. n is the per-member payload size used for
// the cost model.
func (c *Comm) Allreduce(r *Rank, n int64, value float64, op ReduceOp) float64 {
	res := c.runCollective(r, value, func(vals []interface{}) interface{} {
		acc := vals[0].(float64)
		for _, v := range vals[1:] {
			acc = op(acc, v.(float64))
		}
		return acc
	})
	// Reduce + broadcast trees.
	r.P.Sleep(2 * c.treeLatency())
	r.P.Sleep(sim.Duration(float64(n) / 1e6 / c.w.cfg.LinkMBps))
	return res.(float64)
}

// Reduce combines every member's value at the communicator root (comm
// rank 0); only the root receives the result (ok=true at the root).
func (c *Comm) Reduce(r *Rank, n int64, value float64, op ReduceOp) (result float64, ok bool) {
	res := c.runCollective(r, value, func(vals []interface{}) interface{} {
		acc := vals[0].(float64)
		for _, v := range vals[1:] {
			acc = op(acc, v.(float64))
		}
		return acc
	})
	r.P.Sleep(c.treeLatency())
	r.P.Sleep(sim.Duration(float64(n) / 1e6 / c.w.cfg.LinkMBps))
	if c.CommRank(r) == 0 {
		return res.(float64), true
	}
	return 0, false
}

// Allgather returns every member's payload, in comm-rank order, to
// every member. n is the per-member payload size.
func (c *Comm) Allgather(r *Rank, n int64, payload interface{}) []interface{} {
	res := c.runCollective(r, payload, func(vals []interface{}) interface{} {
		return append([]interface{}(nil), vals...)
	})
	// Each member ships n and receives (size-1)*n.
	total := float64(n) * float64(len(c.ranks)-1)
	r.P.Sleep(c.treeLatency())
	r.P.Sleep(sim.Duration(total / 1e6 / c.w.cfg.LinkMBps))
	return res.([]interface{})
}

// Scatter distributes the root's per-member slices: the root (comm
// rank 0) passes values (one per member, in comm-rank order) and every
// member receives its element. n is the per-member payload size.
func (c *Comm) Scatter(r *Rank, n int64, values []interface{}) interface{} {
	me := c.CommRank(r)
	if me == 0 && len(values) != len(c.ranks) {
		panic(fmt.Sprintf("mpi: Scatter root provided %d values for %d members", len(values), len(c.ranks)))
	}
	var in interface{}
	if me == 0 {
		in = values
	}
	res := c.runCollective(r, in, func(vals []interface{}) interface{} {
		return vals[0] // the root's slice
	})
	r.P.Sleep(c.treeLatency())
	r.P.Sleep(sim.Duration(float64(n) / 1e6 / c.w.cfg.LinkMBps))
	return res.([]interface{})[me]
}
