package mpi

import (
	"testing"

	"ensembleio/internal/cluster"
	"ensembleio/internal/sim"
)

func testWorld(t *testing.T, size int) (*sim.Engine, *World) {
	t.Helper()
	eng := sim.NewEngine()
	prof := cluster.Franklin()
	prof.BackgroundMeanMBps = 0
	nodes := (size + prof.CoresPerNode - 1) / prof.CoresPerNode
	cl := cluster.New(eng, prof, nodes, 1)
	return eng, NewWorld(eng, cl, size, Config{})
}

func TestBarrierSynchronizes(t *testing.T) {
	eng, w := testWorld(t, 8)
	var releases []sim.Time
	w.Launch(func(r *Rank) {
		r.P.Sleep(sim.Time(r.ID)) // staggered arrivals 0..7s
		r.Barrier()
		releases = append(releases, r.P.Now())
	})
	eng.Run()
	if len(releases) != 8 {
		t.Fatalf("%d ranks released, want 8", len(releases))
	}
	for _, ts := range releases {
		if ts < 7 || ts > 7.001 {
			t.Errorf("release at %v, want ~7s (last arrival)", ts)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	eng, w := testWorld(t, 4)
	count := 0
	w.Launch(func(r *Rank) {
		for i := 0; i < 5; i++ {
			r.P.Sleep(sim.Time(r.ID) * 0.1)
			r.Barrier()
		}
		count++
	})
	eng.Run()
	if count != 4 {
		t.Errorf("%d ranks completed 5 barriers, want 4", count)
	}
}

func TestSendRecvDeliversPayloadInOrder(t *testing.T) {
	eng, w := testWorld(t, 2)
	var got []int
	w.Launch(func(r *Rank) {
		if r.ID == 0 {
			for i := 0; i < 3; i++ {
				r.Send(1, 5, 1000, i)
			}
		} else {
			for i := 0; i < 3; i++ {
				_, pl := r.Recv(0, 5)
				got = append(got, pl.(int))
			}
		}
	})
	eng.Run()
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("received %v, want [0 1 2]", got)
	}
}

func TestRecvBlocksUntilSend(t *testing.T) {
	eng, w := testWorld(t, 2)
	var recvAt sim.Time
	w.Launch(func(r *Rank) {
		if r.ID == 0 {
			r.P.Sleep(2)
			r.Send(1, 1, 10, "x")
		} else {
			r.Recv(0, 1)
			recvAt = r.P.Now()
		}
	})
	eng.Run()
	if recvAt < 2 {
		t.Errorf("recv completed at %v, want >= 2 (after send)", recvAt)
	}
}

func TestSendCostScalesWithBytes(t *testing.T) {
	eng, w := testWorld(t, 2)
	var sendDur sim.Duration
	w.Launch(func(r *Rank) {
		if r.ID == 0 {
			start := r.P.Now()
			r.Send(1, 2, 1600e6, nil) // 1600 MB over a 1600 MB/s link ~ 1s
			sendDur = r.P.Now() - start
		} else {
			r.Recv(0, 2)
		}
	})
	eng.Run()
	if sendDur < 0.9 || sendDur > 1.1 {
		t.Errorf("1600MB send took %v, want ~1s", sendDur)
	}
}

func TestGatherCollectsInCommOrder(t *testing.T) {
	eng, w := testWorld(t, 8)
	comm := w.NewComm([]int{4, 5, 6, 7}) // root is world rank 4
	var got []interface{}
	w.Launch(func(r *Rank) {
		if r.ID < 4 {
			return
		}
		res := comm.Gather(r, 1000, r.ID*10)
		if comm.CommRank(r) == 0 {
			got = res
		} else if res != nil {
			t.Errorf("non-root got non-nil gather result")
		}
	})
	eng.Run()
	if len(got) != 4 {
		t.Fatalf("gather result len %d, want 4", len(got))
	}
	for i, v := range got {
		if v.(int) != (i+4)*10 {
			t.Errorf("gather[%d] = %v, want %d", i, v, (i+4)*10)
		}
	}
}

func TestSubCommBarrierIndependent(t *testing.T) {
	eng, w := testWorld(t, 8)
	evens := w.NewComm([]int{0, 2, 4, 6})
	done := 0
	w.Launch(func(r *Rank) {
		if r.ID%2 == 0 {
			evens.Barrier(r)
			done++
		}
		// Odd ranks never arrive; the even barrier must not hang.
	})
	eng.Run()
	if done != 4 {
		t.Errorf("%d even ranks passed the sub-barrier, want 4", done)
	}
}

func TestCommRankPanicsForNonMember(t *testing.T) {
	eng, w := testWorld(t, 4)
	comm := w.NewComm([]int{0, 1})
	w.Launch(func(r *Rank) {
		if r.ID == 3 {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for non-member CommRank")
				}
			}()
			comm.CommRank(r)
		}
	})
	eng.Run()
}

func TestRankPlacement(t *testing.T) {
	_, w := testWorld(t, 8)
	if w.Rank(0).Node.ID != 0 || w.Rank(3).Node.ID != 0 || w.Rank(4).Node.ID != 1 {
		t.Errorf("block placement wrong: ranks 0,3 -> node %d,%d; rank 4 -> node %d",
			w.Rank(0).Node.ID, w.Rank(3).Node.ID, w.Rank(4).Node.ID)
	}
}

func TestAllreduce(t *testing.T) {
	eng, w := testWorld(t, 8)
	comm := w.NewComm([]int{0, 1, 2, 3, 4, 5, 6, 7})
	results := make([]float64, 8)
	w.Launch(func(r *Rank) {
		results[r.ID] = comm.Allreduce(r, 8, float64(r.ID), OpSum)
	})
	eng.Run()
	for i, v := range results {
		if v != 28 { // 0+1+...+7
			t.Errorf("rank %d allreduce = %v, want 28", i, v)
		}
	}
}

func TestReduceOnlyRootGetsResult(t *testing.T) {
	eng, w := testWorld(t, 4)
	comm := w.NewComm([]int{0, 1, 2, 3})
	var rootVal float64
	roots := 0
	w.Launch(func(r *Rank) {
		v, ok := comm.Reduce(r, 8, float64(r.ID+1), OpMax)
		if ok {
			roots++
			rootVal = v
		}
	})
	eng.Run()
	if roots != 1 {
		t.Fatalf("%d roots got a result, want 1", roots)
	}
	if rootVal != 4 {
		t.Errorf("max reduce = %v, want 4", rootVal)
	}
}

func TestAllgatherOrder(t *testing.T) {
	eng, w := testWorld(t, 4)
	comm := w.NewComm([]int{3, 2, 1, 0}) // reversed comm order
	var got []interface{}
	w.Launch(func(r *Rank) {
		res := comm.Allgather(r, 8, r.ID*100)
		if r.ID == 0 {
			got = res
		}
	})
	eng.Run()
	want := []int{300, 200, 100, 0} // comm-rank order
	for i, v := range got {
		if v.(int) != want[i] {
			t.Errorf("allgather[%d] = %v, want %d", i, v, want[i])
		}
	}
}

func TestScatterDistributes(t *testing.T) {
	eng, w := testWorld(t, 4)
	comm := w.NewComm([]int{0, 1, 2, 3})
	results := make([]int, 4)
	w.Launch(func(r *Rank) {
		var vals []interface{}
		if r.ID == 0 {
			vals = []interface{}{10, 11, 12, 13}
		}
		results[r.ID] = comm.Scatter(r, 8, vals).(int)
	})
	eng.Run()
	for i, v := range results {
		if v != 10+i {
			t.Errorf("rank %d scatter = %d, want %d", i, v, 10+i)
		}
	}
}

func TestCollectivesReusable(t *testing.T) {
	eng, w := testWorld(t, 4)
	comm := w.NewComm([]int{0, 1, 2, 3})
	sums := make([]float64, 4)
	w.Launch(func(r *Rank) {
		for round := 0; round < 5; round++ {
			sums[r.ID] += comm.Allreduce(r, 8, 1, OpSum)
		}
	})
	eng.Run()
	for i, v := range sums {
		if v != 20 { // 5 rounds x sum(1x4)
			t.Errorf("rank %d accumulated %v, want 20", i, v)
		}
	}
}

func TestReduceOps(t *testing.T) {
	if OpSum(2, 3) != 5 || OpMax(2, 3) != 3 || OpMin(2, 3) != 2 {
		t.Error("reduce op definitions wrong")
	}
}

func TestBcastReleasesAll(t *testing.T) {
	eng, w := testWorld(t, 4)
	comm := w.NewComm([]int{0, 1, 2, 3})
	var done int
	w.Launch(func(r *Rank) {
		r.P.Sleep(sim.Time(r.ID)) // staggered arrival
		comm.Bcast(r, 0, 1024)
		if r.P.Now() < 3 {
			t.Errorf("rank %d released at %v before last arrival", r.ID, r.P.Now())
		}
		done++
	})
	eng.Run()
	if done != 4 {
		t.Errorf("%d ranks completed bcast, want 4", done)
	}
}

func TestGatherVolumeCostsRootTime(t *testing.T) {
	eng, w := testWorld(t, 4)
	comm := w.NewComm([]int{0, 1, 2, 3})
	var rootDur sim.Duration
	w.Launch(func(r *Rank) {
		start := r.P.Now()
		comm.Gather(r, 1600e6, nil) // 1.6 GB per member
		if comm.CommRank(r) == 0 {
			rootDur = r.P.Now() - start
		}
	})
	eng.Run()
	// Root drains 3 x 1.6 GB at 1600 MB/s: >= 3 s.
	if rootDur < 3 {
		t.Errorf("root gather took %v, want >= 3s of incast drain", rootDur)
	}
}
