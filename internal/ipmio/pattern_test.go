package ipmio

import (
	"testing"
	"testing/quick"
)

func feed(pd *PatternDetector, rank, fd int, op Op, offsets []int64, size int64) {
	for _, off := range offsets {
		pd.Observe(Event{Rank: rank, Op: op, FD: fd, Offset: off, Bytes: size})
	}
}

func TestPatternSequential(t *testing.T) {
	pd := NewPatternDetector()
	offs := make([]int64, 10)
	for i := range offs {
		offs[i] = int64(i) * 1e6
	}
	feed(pd, 0, 3, OpRead, offs, 1e6)
	p, _ := pd.StreamPattern(0, 3, OpRead)
	if p != PatternSequential {
		t.Errorf("pattern = %v, want sequential", p)
	}
}

func TestPatternStridedWithDominantStride(t *testing.T) {
	pd := NewPatternDetector()
	offs := make([]int64, 8)
	for i := range offs {
		offs[i] = int64(i) * 301e6 // the MADbench stride
	}
	feed(pd, 2, 4, OpRead, offs, 300e6)
	p, stride := pd.StreamPattern(2, 4, OpRead)
	if p != PatternStrided {
		t.Fatalf("pattern = %v, want strided", p)
	}
	if stride != 301e6 {
		t.Errorf("stride = %d, want 301e6", stride)
	}
}

func TestPatternRandom(t *testing.T) {
	pd := NewPatternDetector()
	feed(pd, 0, 3, OpWrite, []int64{0, 700e6, 30e6, 400e6, 90e6, 650e6}, 1e6)
	p, _ := pd.StreamPattern(0, 3, OpWrite)
	if p != PatternRandom {
		t.Errorf("pattern = %v, want random", p)
	}
}

func TestPatternUnknownForShortStreams(t *testing.T) {
	pd := NewPatternDetector()
	feed(pd, 0, 3, OpRead, []int64{0, 10e6}, 1e6)
	if p, _ := pd.StreamPattern(0, 3, OpRead); p != PatternUnknown {
		t.Errorf("pattern after 2 accesses = %v, want unknown", p)
	}
	if p, _ := pd.StreamPattern(9, 9, OpRead); p != PatternUnknown {
		t.Errorf("pattern of unseen stream = %v, want unknown", p)
	}
}

func TestPatternStreamsIndependent(t *testing.T) {
	pd := NewPatternDetector()
	// Same fd number on different ranks; different ops on same fd.
	seq := []int64{0, 1e6, 2e6, 3e6, 4e6}
	str := []int64{0, 301e6, 602e6, 903e6, 1204e6}
	feed(pd, 0, 3, OpRead, seq, 1e6)
	feed(pd, 1, 3, OpRead, str, 1e6)
	feed(pd, 0, 3, OpWrite, str, 1e6)
	if p, _ := pd.StreamPattern(0, 3, OpRead); p != PatternSequential {
		t.Errorf("rank0 reads = %v, want sequential", p)
	}
	if p, _ := pd.StreamPattern(1, 3, OpRead); p != PatternStrided {
		t.Errorf("rank1 reads = %v, want strided", p)
	}
	if p, _ := pd.StreamPattern(0, 3, OpWrite); p != PatternStrided {
		t.Errorf("rank0 writes = %v, want strided", p)
	}
}

func TestPatternSummarize(t *testing.T) {
	pd := NewPatternDetector()
	for rank := 0; rank < 6; rank++ {
		offs := make([]int64, 8)
		for i := range offs {
			if rank < 4 {
				offs[i] = int64(i) * 301e6 // strided
			} else {
				offs[i] = int64(i) * 1e6 // sequential
			}
		}
		feed(pd, rank, 3, OpRead, offs, 1e6)
	}
	s := pd.Summarize(OpRead)
	if s.Streams != 6 || s.Strided != 4 || s.Sequential != 2 {
		t.Errorf("summary = %+v, want 6 streams, 4 strided, 2 sequential", s)
	}
	if s.DominantStride != 301e6 {
		t.Errorf("dominant stride %d, want 301e6", s.DominantStride)
	}
	if w := pd.Summarize(OpWrite); w.Streams != 0 {
		t.Errorf("write summary has %d streams, want 0", w.Streams)
	}
}

func TestPatternIgnoresUnsizedOps(t *testing.T) {
	pd := NewPatternDetector()
	pd.Observe(Event{Rank: 0, Op: OpSeek, FD: 3, Offset: 5e6})
	pd.Observe(Event{Rank: 0, Op: OpOpen, FD: 3})
	if s := pd.Summarize(OpRead); s.Streams != 0 {
		t.Error("unsized ops created streams")
	}
}

func TestCollectorPatternMode(t *testing.T) {
	c := NewCollector(PatternMode)
	for i := 0; i < 8; i++ {
		c.Record(Event{Rank: 0, Op: OpRead, FD: 3, Offset: int64(i) * 301e6, Bytes: 300e6})
	}
	if c.Patterns() == nil {
		t.Fatal("PatternMode collector has no detector")
	}
	if len(c.Events) != 0 {
		t.Error("PatternMode alone retained events")
	}
	p, stride := c.Patterns().StreamPattern(0, 3, OpRead)
	if p != PatternStrided || stride != 301e6 {
		t.Errorf("collector pattern = %v/%d, want strided/301e6", p, stride)
	}
	if NewCollector(TraceMode).Patterns() != nil {
		t.Error("TraceMode collector unexpectedly has a detector")
	}
}

// Property: the classifier never returns strided with a zero stride,
// and stream counts always sum to Streams.
func TestPatternSummaryConsistency(t *testing.T) {
	f := func(raw []uint16) bool {
		pd := NewPatternDetector()
		for i, r := range raw {
			pd.Observe(Event{
				Rank: i % 3, Op: OpRead, FD: 3,
				Offset: int64(r) * 4096, Bytes: 4096,
			})
		}
		s := pd.Summarize(OpRead)
		if s.Sequential+s.Strided+s.Random+s.Unknown != s.Streams {
			return false
		}
		for rank := 0; rank < 3; rank++ {
			if p, stride := pd.StreamPattern(rank, 3, OpRead); p == PatternStrided && stride == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
