package ipmio

import (
	"fmt"
	"sort"
)

// This file implements the paper's stated future work (§VI): extending
// the IPM-I/O framework "to detect an application's I/O patterns; thus
// providing key information to the underlying file system". The
// detector runs online — like profile mode, it retains no trace — and
// classifies each (rank, fd) stream as sequential, strided, or random,
// exactly the categories the file system's read-ahead logic cares
// about.

// Pattern classifies an access stream.
type Pattern uint8

// Stream classifications.
const (
	PatternUnknown    Pattern = iota // fewer than two accesses observed
	PatternSequential                // each access begins where the last ended
	PatternStrided                   // constant non-zero gap between accesses
	PatternRandom                    // no stable structure
)

var patternNames = [...]string{"unknown", "sequential", "strided", "random"}

func (p Pattern) String() string {
	if int(p) < len(patternNames) {
		return patternNames[p]
	}
	return fmt.Sprintf("pattern(%d)", uint8(p))
}

type streamKey struct {
	rank, fd int
	op       Op
}

type streamState struct {
	n          int // accesses observed
	lastOffset int64
	lastEnd    int64
	lastStride int64

	sequential int
	strided    int
	random     int
	// dominant stride bookkeeping
	strideOf   int64
	strideHits int
}

// PatternDetector classifies access streams online from the event
// feed. The zero value is not usable; construct with
// NewPatternDetector.
type PatternDetector struct {
	streams map[streamKey]*streamState
}

// NewPatternDetector returns an empty detector.
func NewPatternDetector() *PatternDetector {
	return &PatternDetector{streams: make(map[streamKey]*streamState)}
}

// Observe folds in one event. Only sized reads and writes participate.
func (pd *PatternDetector) Observe(ev Event) {
	if ev.Bytes <= 0 || (ev.Op != OpRead && ev.Op != OpWrite) {
		return
	}
	k := streamKey{rank: ev.Rank, fd: ev.FD, op: ev.Op}
	st := pd.streams[k]
	if st == nil {
		st = &streamState{}
		pd.streams[k] = st
	}
	if st.n > 0 {
		switch {
		case ev.Offset == st.lastEnd:
			st.sequential++
		default:
			stride := ev.Offset - st.lastOffset
			if stride != 0 && stride == st.lastStride {
				st.strided++
				if stride == st.strideOf {
					st.strideHits++
				} else {
					st.strideOf = stride
					st.strideHits = 1
				}
			} else {
				st.random++
			}
			st.lastStride = stride
		}
	}
	st.n++
	st.lastOffset = ev.Offset
	st.lastEnd = ev.Offset + ev.Bytes
}

// StreamPattern classifies one stream and, for strided streams,
// returns the dominant stride in bytes.
func (pd *PatternDetector) StreamPattern(rank, fd int, op Op) (Pattern, int64) {
	st := pd.streams[streamKey{rank: rank, fd: fd, op: op}]
	if st == nil {
		return PatternUnknown, 0
	}
	return st.classify()
}

func (st *streamState) classify() (Pattern, int64) {
	moves := st.sequential + st.strided + st.random
	if moves < 2 {
		return PatternUnknown, 0
	}
	switch {
	case float64(st.sequential)/float64(moves) >= 0.7:
		return PatternSequential, 0
	case float64(st.strided)/float64(moves) >= 0.5:
		return PatternStrided, st.strideOf
	default:
		return PatternRandom, 0
	}
}

// Summary aggregates stream classifications for one op type.
type PatternSummary struct {
	Streams    int
	Sequential int
	Strided    int
	Random     int
	Unknown    int
	// DominantStride is the most common stride among strided streams
	// (0 if none).
	DominantStride int64
}

func (s PatternSummary) String() string {
	return fmt.Sprintf("%d streams: %d sequential, %d strided (stride %d), %d random, %d unknown",
		s.Streams, s.Sequential, s.Strided, s.DominantStride, s.Random, s.Unknown)
}

// Summarize classifies every observed stream of the given op.
func (pd *PatternDetector) Summarize(op Op) PatternSummary {
	out := PatternSummary{}
	strides := make(map[int64]int)
	for k, st := range pd.streams {
		if k.op != op {
			continue
		}
		out.Streams++
		p, stride := st.classify()
		switch p {
		case PatternSequential:
			out.Sequential++
		case PatternStrided:
			out.Strided++
			strides[stride]++
		case PatternRandom:
			out.Random++
		default:
			out.Unknown++
		}
	}
	// Pick the dominant stride over sorted keys so ties break toward
	// the smallest stride deterministically instead of by map order.
	strideKeys := make([]int64, 0, len(strides))
	for s := range strides {
		strideKeys = append(strideKeys, s)
	}
	sort.Slice(strideKeys, func(i, j int) bool { return strideKeys[i] < strideKeys[j] })
	best := 0
	for _, s := range strideKeys {
		if n := strides[s]; n > best {
			best, out.DominantStride = n, s
		}
	}
	return out
}
