// Package ipmio is the simulated IPM-I/O layer: it intercepts every
// POSIX-level I/O call of a task (the stand-in for the GNU linker
// -wrap interposition on libc), producing timestamped trace events —
// the call, its arguments, and its duration — with an fd-to-file
// lookup table, exactly as described in §II-B of the paper.
//
// Two collection modes are supported. Trace mode retains every event.
// Profile mode folds events into online per-operation histograms
// without retaining the trace — the paper's "future work" transition
// from an I/O tracing paradigm to an I/O profiling paradigm, which
// scales the way program-counter profiling does. Both can be active
// at once, which is how the test suite proves they agree.
//
// The simulation runtime is lock-step (one process executes at a
// time), so a Collector needs no internal locking.
package ipmio

import (
	"fmt"

	"ensembleio/internal/ensemble"
	"ensembleio/internal/posixio"
	"ensembleio/internal/sim"
)

// Op identifies the intercepted call.
type Op uint8

// Intercepted operations.
const (
	OpOpen Op = iota
	OpClose
	OpRead
	OpWrite
	OpSeek
	OpFsync
	opCount
)

var opNames = [...]string{"open", "close", "read", "write", "seek", "fsync"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// ParseOp is the inverse of Op.String.
func ParseOp(s string) (Op, bool) {
	for i, n := range opNames {
		if n == s {
			return Op(i), true
		}
	}
	return 0, false
}

// Event is one trace record.
type Event struct {
	Rank   int
	Op     Op
	FD     int
	File   string
	Offset int64 // offset at which the op began
	Bytes  int64 // bytes moved (0 for open/close/seek/fsync)
	Start  sim.Time
	Dur    sim.Duration
}

// RateMBps returns the event's observed data rate, or 0 for unsized or
// instantaneous events.
func (e Event) RateMBps() float64 {
	if e.Bytes == 0 || e.Dur <= 0 {
		return 0
	}
	return float64(e.Bytes) / 1e6 / float64(e.Dur)
}

// Mode selects what a Collector retains.
type Mode uint8

// Collection modes.
const (
	TraceMode   Mode = 1 << iota // retain every event
	ProfileMode                  // fold events into online histograms
	PatternMode                  // classify access patterns online
)

// PhaseMark labels a point in time (typically a barrier) so analysis
// can slice the run into synchronous phases.
type PhaseMark struct {
	Name string
	T    sim.Time
}

// Collector aggregates events for a whole job (all ranks).
type Collector struct {
	mode   Mode
	Events []Event
	Marks  []PhaseMark

	durHist  [opCount]*ensemble.Histogram // seconds
	rateHist [opCount]*ensemble.Histogram // seconds per MB (sized ops)

	patterns *PatternDetector // PatternMode only
}

// NewCollector returns a collector in the given mode(s).
func NewCollector(mode Mode) *Collector {
	c := &Collector{mode: mode}
	if mode&ProfileMode != 0 {
		for i := range c.durHist {
			c.durHist[i] = ensemble.NewHistogram(ensemble.LogBins(1e-5, 1e4, 10))
			c.rateHist[i] = ensemble.NewHistogram(ensemble.LogBins(1e-6, 1e4, 10))
		}
	}
	if mode&PatternMode != 0 {
		c.patterns = NewPatternDetector()
	}
	return c
}

// Reserve pre-sizes the trace-mode event buffer for n further events.
// Workloads know their op count up front and call this once per run so
// the per-event Record path never grows the slice. n is a capacity
// floor, not a limit; recording past it just falls back to append
// growth.
func (c *Collector) Reserve(n int) {
	if c.mode&TraceMode == 0 || n <= 0 {
		return
	}
	if need := len(c.Events) + n; need > cap(c.Events) {
		ev := make([]Event, len(c.Events), need)
		copy(ev, c.Events)
		c.Events = ev
	}
}

// Record folds in one event.
func (c *Collector) Record(ev Event) {
	if c.mode&TraceMode != 0 {
		c.Events = append(c.Events, ev)
	}
	if c.mode&ProfileMode != 0 {
		c.durHist[ev.Op].Add(float64(ev.Dur))
		if ev.Bytes > 0 && ev.Dur > 0 {
			c.rateHist[ev.Op].Add(float64(ev.Dur) / (float64(ev.Bytes) / 1e6))
		}
	}
	if c.patterns != nil {
		c.patterns.Observe(ev)
	}
}

// Patterns returns the online pattern detector (PatternMode only; nil
// otherwise).
func (c *Collector) Patterns() *PatternDetector { return c.patterns }

// Mark records a phase boundary.
func (c *Collector) Mark(name string, t sim.Time) {
	c.Marks = append(c.Marks, PhaseMark{Name: name, T: t})
}

// DurProfile returns the online duration histogram for op (profile
// mode only; nil otherwise).
func (c *Collector) DurProfile(op Op) *ensemble.Histogram {
	if c.mode&ProfileMode == 0 {
		return nil
	}
	return c.durHist[op]
}

// RateProfile returns the online sec-per-MB histogram for op (profile
// mode only; nil otherwise).
func (c *Collector) RateProfile(op Op) *ensemble.Histogram {
	if c.mode&ProfileMode == 0 {
		return nil
	}
	return c.rateHist[op]
}

// Dataset extracts the durations of the traced events accepted by the
// filter (nil accepts all) as an ensemble.
func (c *Collector) Dataset(filter func(Event) bool) *ensemble.Dataset {
	d := ensemble.NewDataset(nil)
	for _, ev := range c.Events {
		if filter == nil || filter(ev) {
			d.Add(float64(ev.Dur))
		}
	}
	return d
}

// OpEvents returns the traced events of one op type.
func (c *Collector) OpEvents(op Op) []Event {
	var out []Event
	for _, ev := range c.Events {
		if ev.Op == op {
			out = append(out, ev)
		}
	}
	return out
}

// Tracer wraps one rank's posixio.Task, recording an event per call.
type Tracer struct {
	Task *posixio.Task
	C    *Collector
}

// NewTracer wraps task, reporting to c.
func NewTracer(task *posixio.Task, c *Collector) *Tracer {
	return &Tracer{Task: task, C: c}
}

func (tr *Tracer) record(p *sim.Proc, op Op, fd int, offset, bytes int64, start sim.Time) {
	path, _ := tr.Task.Path(fd)
	tr.C.Record(Event{
		Rank:   tr.Task.Rank,
		Op:     op,
		FD:     fd,
		File:   path,
		Offset: offset,
		Bytes:  bytes,
		Start:  start,
		Dur:    p.Now() - start,
	})
}

// Open intercepts posixio.Task.Open.
func (tr *Tracer) Open(p *sim.Proc, path string, flags int) (int, error) {
	start := p.Now()
	fd, err := tr.Task.Open(p, path, flags)
	if err == nil {
		tr.record(p, OpOpen, fd, 0, 0, start)
	}
	return fd, err
}

// Close intercepts posixio.Task.Close.
func (tr *Tracer) Close(p *sim.Proc, fd int) error {
	start := p.Now()
	path, _ := tr.Task.Path(fd)
	err := tr.Task.Close(p, fd)
	if err == nil {
		tr.C.Record(Event{Rank: tr.Task.Rank, Op: OpClose, FD: fd, File: path, Start: start, Dur: p.Now() - start})
	}
	return err
}

// Read intercepts posixio.Task.Read.
func (tr *Tracer) Read(p *sim.Proc, fd int, n int64) (int64, error) {
	start := p.Now()
	off, _ := tr.Task.Offset(fd)
	got, err := tr.Task.Read(p, fd, n)
	if err == nil {
		tr.record(p, OpRead, fd, off, got, start)
	}
	return got, err
}

// Write intercepts posixio.Task.Write.
func (tr *Tracer) Write(p *sim.Proc, fd int, n int64) (int64, error) {
	start := p.Now()
	off, _ := tr.Task.Offset(fd)
	got, err := tr.Task.Write(p, fd, n)
	if err == nil {
		tr.record(p, OpWrite, fd, off, got, start)
	}
	return got, err
}

// Pread intercepts posixio.Task.Pread.
func (tr *Tracer) Pread(p *sim.Proc, fd int, offset, n int64) (int64, error) {
	start := p.Now()
	got, err := tr.Task.Pread(p, fd, offset, n)
	if err == nil {
		tr.record(p, OpRead, fd, offset, got, start)
	}
	return got, err
}

// Pwrite intercepts posixio.Task.Pwrite.
func (tr *Tracer) Pwrite(p *sim.Proc, fd int, offset, n int64) (int64, error) {
	start := p.Now()
	got, err := tr.Task.Pwrite(p, fd, offset, n)
	if err == nil {
		tr.record(p, OpWrite, fd, offset, got, start)
	}
	return got, err
}

// Seek intercepts posixio.Task.Seek (zero-duration, still traced: the
// access pattern matters to diagnosis).
func (tr *Tracer) Seek(p *sim.Proc, fd int, offset int64, whence int) (int64, error) {
	start := p.Now()
	pos, err := tr.Task.Seek(fd, offset, whence)
	if err == nil {
		tr.record(p, OpSeek, fd, pos, 0, start)
	}
	return pos, err
}

// Fsync intercepts posixio.Task.Fsync.
func (tr *Tracer) Fsync(p *sim.Proc, fd int) error {
	start := p.Now()
	off, _ := tr.Task.Offset(fd)
	err := tr.Task.Fsync(p, fd)
	if err == nil {
		tr.record(p, OpFsync, fd, off, 0, start)
	}
	return err
}
