package ipmio

import (
	"math"
	"testing"

	"ensembleio/internal/cluster"
	"ensembleio/internal/lustre"
	"ensembleio/internal/posixio"
	"ensembleio/internal/sim"
)

func tracedTask(mode Mode) (*sim.Engine, *Tracer, *Collector) {
	eng := sim.NewEngine()
	prof := cluster.Franklin()
	prof.NoiseSigma = 0
	prof.StragglerProb = 0
	prof.BackgroundMeanMBps = 0
	prof.ConflictProbPerWriterPerOST = 0
	cl := cluster.New(eng, prof, 1, 21)
	sys := posixio.NewSystem(lustre.NewFS(cl))
	col := NewCollector(mode)
	tr := NewTracer(sys.NewTask(0, cl.Nodes[0]), col)
	return eng, tr, col
}

func TestTraceRecordsEveryCall(t *testing.T) {
	eng, tr, col := tracedTask(TraceMode)
	eng.Spawn("t", func(p *sim.Proc) {
		fd, _ := tr.Open(p, "/scratch/f", posixio.OCreat|posixio.ORdwr)
		tr.Write(p, fd, 30e6)
		tr.Seek(p, fd, 0, posixio.SeekSet)
		tr.Read(p, fd, 10e6)
		tr.Fsync(p, fd)
		tr.Close(p, fd)
	})
	eng.Run()
	wantOps := []Op{OpOpen, OpWrite, OpSeek, OpRead, OpFsync, OpClose}
	if len(col.Events) != len(wantOps) {
		t.Fatalf("%d events, want %d: %+v", len(col.Events), len(wantOps), col.Events)
	}
	for i, want := range wantOps {
		if col.Events[i].Op != want {
			t.Errorf("event %d op %v, want %v", i, col.Events[i].Op, want)
		}
	}
	w := col.Events[1]
	if w.Bytes != 30e6 || w.File != "/scratch/f" || w.Offset != 0 || w.Dur <= 0 {
		t.Errorf("write event wrong: %+v", w)
	}
	r := col.Events[3]
	if r.Bytes != 10e6 || r.Offset != 0 {
		t.Errorf("read event wrong: %+v", r)
	}
	// Events are in start order and timestamps are consistent.
	for i := 1; i < len(col.Events); i++ {
		if col.Events[i].Start < col.Events[i-1].Start {
			t.Error("events out of order")
		}
	}
}

func TestFailedCallsNotRecorded(t *testing.T) {
	eng, tr, col := tracedTask(TraceMode)
	eng.Spawn("t", func(p *sim.Proc) {
		if _, err := tr.Open(p, "/scratch/missing", posixio.ORdonly); err == nil {
			t.Error("expected open failure")
		}
		if _, err := tr.Read(p, 99, 10); err == nil {
			t.Error("expected read failure")
		}
	})
	eng.Run()
	if len(col.Events) != 0 {
		t.Errorf("%d events recorded for failed calls, want 0", len(col.Events))
	}
}

func TestProfileModeAgreesWithTraceMode(t *testing.T) {
	eng, tr, col := tracedTask(TraceMode | ProfileMode)
	eng.Spawn("t", func(p *sim.Proc) {
		fd, _ := tr.Open(p, "/scratch/f", posixio.OCreat|posixio.ORdwr)
		for i := 0; i < 20; i++ {
			tr.Write(p, fd, 20e6)
		}
		tr.Close(p, fd)
	})
	eng.Run()

	writes := col.Dataset(func(e Event) bool { return e.Op == OpWrite })
	if writes.Len() != 20 {
		t.Fatalf("traced %d writes, want 20", writes.Len())
	}
	prof := col.DurProfile(OpWrite)
	if prof.Total() != 20 {
		t.Fatalf("profiled %d writes, want 20", int(prof.Total()))
	}
	// The online histogram's mean must match the trace-derived mean —
	// the paper's claim that the profile captures what tracing does.
	if math.Abs(prof.Mean()-writes.Mean())/writes.Mean() > 0.15 {
		t.Errorf("profile mean %v vs trace mean %v", prof.Mean(), writes.Mean())
	}
}

func TestProfileOnlyRetainsNoEvents(t *testing.T) {
	eng, tr, col := tracedTask(ProfileMode)
	eng.Spawn("t", func(p *sim.Proc) {
		fd, _ := tr.Open(p, "/scratch/f", posixio.OCreat|posixio.OWronly)
		tr.Write(p, fd, 20e6)
	})
	eng.Run()
	if len(col.Events) != 0 {
		t.Error("profile-only collector retained events")
	}
	if col.DurProfile(OpWrite).Total() != 1 {
		t.Error("profile-only collector missed the write")
	}
}

func TestRateMBps(t *testing.T) {
	e := Event{Bytes: 100e6, Dur: 2}
	if r := e.RateMBps(); math.Abs(r-50) > 1e-9 {
		t.Errorf("rate %v, want 50", r)
	}
	if (Event{Bytes: 0, Dur: 2}).RateMBps() != 0 {
		t.Error("unsized event should have rate 0")
	}
}

func TestMarksAndOpEvents(t *testing.T) {
	eng, tr, col := tracedTask(TraceMode)
	eng.Spawn("t", func(p *sim.Proc) {
		col.Mark("phase1", p.Now())
		fd, _ := tr.Open(p, "/scratch/f", posixio.OCreat|posixio.OWronly)
		tr.Write(p, fd, 20e6)
		col.Mark("phase2", p.Now())
		tr.Write(p, fd, 20e6)
	})
	eng.Run()
	if len(col.Marks) != 2 || col.Marks[0].Name != "phase1" {
		t.Errorf("marks wrong: %+v", col.Marks)
	}
	if got := len(col.OpEvents(OpWrite)); got != 2 {
		t.Errorf("OpEvents(write) = %d, want 2", got)
	}
}

func TestParseOpRoundTrip(t *testing.T) {
	for op := OpOpen; op < opCount; op++ {
		got, ok := ParseOp(op.String())
		if !ok || got != op {
			t.Errorf("ParseOp(%q) = %v,%v", op.String(), got, ok)
		}
	}
	if _, ok := ParseOp("bogus"); ok {
		t.Error("ParseOp accepted bogus")
	}
}
