package wldsl

import "bytes"

// CanonicalBytes returns the spec's canonical encoding — the exact
// bytes Encode writes — as a slice. This is the content-addressed
// cache's identity for a workload (internal/cascache): two specs with
// the same canonical bytes are the same workload, whatever JSON field
// order or whitespace they were read from, because Encode∘Parse is a
// fixpoint. The spec must be valid (Parse and Generate only hand out
// valid specs).
func CanonicalBytes(s *Spec) ([]byte, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
