package wldsl

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ensembleio/internal/cluster"
	"ensembleio/internal/ipmio"
	"ensembleio/internal/tracefmt"
	"ensembleio/internal/workloads"
)

const corpusDir = "../../testdata/scenarios/workloads"

func loadSpec(t *testing.T, name string) *Spec {
	t.Helper()
	s, err := Load(filepath.Join(corpusDir, name))
	if err != nil {
		t.Fatalf("Load(%s): %v", name, err)
	}
	return s
}

// serialize renders every persistent encoding of a run: binary and
// JSONL traces always, telemetry metrics and spans when the run
// carries them.
func serialize(t *testing.T, run *workloads.Run) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	var bin, jsonl bytes.Buffer
	if err := tracefmt.WriteBinary(&bin, run.Collector.Events, run.Collector.Marks); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	if err := tracefmt.WriteJSONL(&jsonl, run.Collector.Events, run.Collector.Marks); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	out["trace.bin"] = bin.Bytes()
	out["trace.jsonl"] = jsonl.Bytes()
	out["wall"] = []byte(fmt.Sprintf("%v", run.Wall))
	if run.Telemetry != nil {
		var met, spans bytes.Buffer
		if err := tracefmt.WriteMetrics(&met, run.Telemetry); err != nil {
			t.Fatalf("WriteMetrics: %v", err)
		}
		if err := tracefmt.WriteSpans(&spans, run.Spans); err != nil {
			t.Fatalf("WriteSpans: %v", err)
		}
		out["telemetry.json"] = met.Bytes()
		out["spans.jsonl"] = spans.Bytes()
	}
	return out
}

func assertSame(t *testing.T, label string, want, got map[string][]byte) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: artifact sets differ: %d vs %d", label, len(want), len(got))
	}
	for name, w := range want {
		g := got[name]
		if !bytes.Equal(w, g) {
			i := 0
			for i < len(w) && i < len(g) && w[i] == g[i] {
				i++
			}
			t.Errorf("%s: %s differs (len %d vs %d, first divergence at byte %d)",
				label, name, len(w), len(g), i)
		}
	}
	if len(want["trace.bin"]) == 0 {
		t.Fatalf("%s: empty binary trace; identity check is vacuous", label)
	}
}

// TestPortsMatchHandCoded is the DSL's core contract: a spec port of
// each paper workload produces byte-identical serialized artifacts to
// the hand-coded runner it models — same trace events, same marks,
// same virtual wall, same telemetry when enabled.
func TestPortsMatchHandCoded(t *testing.T) {
	const seed = 7
	cases := []struct {
		spec      string
		telemetry bool
		hand      func(telemetry bool) *workloads.Run
	}{
		{"ior-shared.json", false, func(tel bool) *workloads.Run {
			return workloads.RunIOR(workloads.IORConfig{
				Machine: cluster.Franklin(), Tasks: 16, Reps: 2,
				BlockBytes: 32e6, TransferBytes: 8e6, Seed: seed, Telemetry: tel,
			})
		}},
		{"ior-shared.json", true, func(tel bool) *workloads.Run {
			return workloads.RunIOR(workloads.IORConfig{
				Machine: cluster.Franklin(), Tasks: 16, Reps: 2,
				BlockBytes: 32e6, TransferBytes: 8e6, Seed: seed, Telemetry: tel,
			})
		}},
		{"ior-fpp.json", false, func(tel bool) *workloads.Run {
			return workloads.RunIOR(workloads.IORConfig{
				Machine: cluster.Franklin(), Tasks: 16, Reps: 2,
				BlockBytes: 32e6, TransferBytes: 8e6, Seed: seed, Telemetry: tel,
				FilePerProcess: true, StripeCount: 1,
			})
		}},
		{"madbench.json", false, func(tel bool) *workloads.Run {
			return workloads.RunMADbench(workloads.MADbenchConfig{
				Machine: cluster.Jaguar(), Tasks: 36, Matrices: 2,
				Seed: seed, Telemetry: tel,
			})
		}},
		{"gcrm-baseline.json", false, func(tel bool) *workloads.Run {
			return workloads.RunGCRM(workloads.GCRMConfig{
				Machine: cluster.Franklin(), Tasks: 640, Seed: seed, Telemetry: tel,
			})
		}},
		{"gcrm-collective.json", true, func(tel bool) *workloads.Run {
			return workloads.RunGCRM(workloads.GCRMConfig{
				Machine: cluster.Franklin(), Tasks: 640, Aggregators: 80,
				Seed: seed, Telemetry: tel,
			})
		}},
		{"gcrm-twostage.json", false, func(tel bool) *workloads.Run {
			return workloads.RunGCRM(workloads.GCRMConfig{
				Machine: cluster.Franklin(), Tasks: 128, Aggregators: 16,
				TwoStage: true, Seed: seed, Telemetry: tel,
			})
		}},
		{"gcrm-aligned.json", false, func(tel bool) *workloads.Run {
			return workloads.RunGCRM(workloads.GCRMConfig{
				Machine: cluster.Franklin(), Tasks: 640, Aggregators: 80,
				Align: true, Seed: seed, Telemetry: tel,
			})
		}},
		{"gcrm-metaagg.json", false, func(tel bool) *workloads.Run {
			return workloads.RunGCRM(workloads.GCRMConfig{
				Machine: cluster.Franklin(), Tasks: 640, Aggregators: 80,
				Align: true, AggregateMetadata: true, Seed: seed, Telemetry: tel,
			})
		}},
	}
	for _, tc := range cases {
		name := strings.TrimSuffix(tc.spec, ".json")
		if tc.telemetry {
			name += "-telemetry"
		}
		t.Run(name, func(t *testing.T) {
			spec := loadSpec(t, tc.spec)
			machine := cluster.Franklin()
			if strings.HasPrefix(tc.spec, "madbench") {
				machine = cluster.Jaguar()
			}
			run, err := Run(spec, RunConfig{Machine: machine, Seed: seed, Telemetry: tc.telemetry})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			hand := tc.hand(tc.telemetry)
			assertSame(t, name, serialize(t, hand), serialize(t, run))
		})
	}
}

// TestProfileModeMatchesHandCoded pins the other collection mode: the
// DSL port profiles identically to the hand-coded runner.
func TestProfileModeMatchesHandCoded(t *testing.T) {
	spec := loadSpec(t, "ior-shared.json")
	run, err := Run(spec, RunConfig{Machine: cluster.Franklin(), Seed: 3, Mode: ipmio.ProfileMode})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	hand := workloads.RunIOR(workloads.IORConfig{
		Machine: cluster.Franklin(), Tasks: 16, Reps: 2,
		BlockBytes: 32e6, TransferBytes: 8e6, Seed: 3, Mode: ipmio.ProfileMode,
	})
	var a, b bytes.Buffer
	pa, err := tracefmt.ProfileOf(run.Collector)
	if err != nil {
		t.Fatalf("ProfileOf(dsl): %v", err)
	}
	pb, err := tracefmt.ProfileOf(hand.Collector)
	if err != nil {
		t.Fatalf("ProfileOf(hand): %v", err)
	}
	if err := tracefmt.WriteProfile(&a, pa); err != nil {
		t.Fatalf("WriteProfile: %v", err)
	}
	if err := tracefmt.WriteProfile(&b, pb); err != nil {
		t.Fatalf("WriteProfile: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) || a.Len() == 0 {
		t.Errorf("profile JSON differs (dsl %d bytes, hand %d bytes)", a.Len(), b.Len())
	}
}

// TestCorpusCompiles keeps every checked-in scenario spec loadable,
// valid, and compilable, and pins the corpus's minimum breadth.
func TestCorpusCompiles(t *testing.T) {
	names, err := filepath.Glob(filepath.Join(corpusDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 8 {
		t.Fatalf("scenario corpus has %d specs, want >= 8", len(names))
	}
	for _, path := range names {
		s, err := Load(path)
		if err != nil {
			t.Errorf("%s: %v", filepath.Base(path), err)
			continue
		}
		p, err := Compile(s)
		if err != nil {
			t.Errorf("%s: %v", filepath.Base(path), err)
			continue
		}
		if p.Events() == 0 || p.TotalBytes() == 0 || p.Ranks() == 0 {
			t.Errorf("%s: degenerate program (events=%d bytes=%d ranks=%d)",
				filepath.Base(path), p.Events(), p.TotalBytes(), p.Ranks())
		}
	}
}

// TestEncodeParseFixpoint: Encode(Parse(Encode(s))) == Encode(s) for
// the whole corpus — the canonical encoding is a decode/encode
// fixpoint (the property FuzzSpecDecode hammers on arbitrary input).
func TestEncodeParseFixpoint(t *testing.T) {
	names, _ := filepath.Glob(filepath.Join(corpusDir, "*.json"))
	for _, path := range names {
		s, err := Load(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		var enc1 bytes.Buffer
		if err := Encode(&enc1, s); err != nil {
			t.Fatalf("%s: Encode: %v", path, err)
		}
		s2, err := Parse(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("%s: reparse of canonical encoding: %v", path, err)
		}
		var enc2 bytes.Buffer
		if err := Encode(&enc2, s2); err != nil {
			t.Fatalf("%s: re-encode: %v", path, err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Errorf("%s: encode/parse/encode is not a fixpoint", filepath.Base(path))
		}
	}
}

// mutate applies fn to a deep copy of a known-good spec and expects
// validation to reject the result.
func rejects(t *testing.T, label string, fn func(s *Spec)) {
	t.Helper()
	s := loadSpec(t, "ior-shared.json")
	fn(s)
	if err := s.Validate(); err == nil {
		t.Errorf("%s: validation accepted an invalid spec", label)
	}
}

func TestValidateRejects(t *testing.T) {
	rejects(t, "no tasks", func(s *Spec) { s.Tasks = 0 })
	rejects(t, "negative bytes", func(s *Spec) { s.Phases[1].Ops[0].Bytes = -1 })
	rejects(t, "nan seconds", func(s *Spec) {
		s.Phases[1].Ops = append(s.Phases[1].Ops, Op{Op: "compute", Seconds: nan()})
	})
	rejects(t, "second open", func(s *Spec) {
		s.Phases[2].Ops = append(s.Phases[2].Ops, Op{Op: "open"})
	})
	rejects(t, "open in repeated phase", func(s *Spec) {
		s.Phases[0].Repeat = 2
		s.Phases[0].Name = "reopen-%d"
	})
	rejects(t, "repeated phase without %d", func(s *Spec) { s.Phases[1].Name = "write-phase" })
	rejects(t, "unknown op", func(s *Spec) { s.Phases[1].Ops[0].Op = "pwrite9" })
	rejects(t, "dataset op in posix mode", func(s *Spec) {
		s.Phases[1].Ops[0] = Op{Op: "write-records", Dataset: "x"}
	})
	rejects(t, "bad name charset", func(s *Spec) { s.Name = "a b" })
	rejects(t, "unresolved offset reach", func(s *Spec) {
		s.Phases[1].Ops[0].Offset.PerRank = maxOffsetCoeff
	})
}

func nan() float64 {
	z := 0.0
	return z / z
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"unknown field":  `{"name":"x","tasks":2,"bogus":1,"phases":[{"ops":[{"op":"open"}]}]}`,
		"trailing data":  `{"name":"x","tasks":2,"phases":[{"ops":[{"op":"open"}]}]} {"x":1}`,
		"not an object":  `[1,2,3]`,
		"negative tasks": `{"name":"x","tasks":-4,"phases":[{"ops":[{"op":"open"}]}]}`,
	}
	for label, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: Parse accepted malformed input", label)
		}
	}
}

// TestGenerateDeterministicAndValid: the seeded generator is a pure
// function of its seed, and everything it emits survives validation
// and compilation.
func TestGenerateDeterministicAndValid(t *testing.T) {
	families := make(map[string]bool)
	for seed := int64(0); seed < 64; seed++ {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: Generate is not deterministic", seed)
		}
		if _, err := Compile(a); err != nil {
			t.Errorf("seed %d (%s): generated spec does not compile: %v", seed, a.Name, err)
		}
		fam, _, _ := strings.Cut(strings.TrimPrefix(a.Name, "gen-"), "-")
		families[fam] = true
	}
	if len(families) < 6 {
		t.Errorf("64 seeds hit only %d generator families, want all 6: %v", len(families), families)
	}
}

// TestCorpusIsCanonical keeps the checked-in specs in the canonical
// encoding so diffs stay minimal and the fuzz corpus seeds are exact
// fixpoints. Regenerate a file with:
//
//	go run ./cmd/wlrun -spec <file> -canonicalize
func TestCorpusIsCanonical(t *testing.T) {
	names, _ := filepath.Glob(filepath.Join(corpusDir, "*.json"))
	for _, path := range names {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Parse(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		var enc bytes.Buffer
		if err := Encode(&enc, s); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, enc.Bytes()) {
			t.Errorf("%s: not in canonical encoding (run wlrun -canonicalize)", filepath.Base(path))
		}
	}
}
