package wldsl

import (
	"fmt"

	"ensembleio/internal/cluster"
	"ensembleio/internal/faults"
	"ensembleio/internal/h5lite"
	"ensembleio/internal/ipmio"
	"ensembleio/internal/mpi"
	"ensembleio/internal/posixio"
	"ensembleio/internal/sim"
	"ensembleio/internal/workloads"
)

// computeSeedSalt decorrelates the compute-imbalance stream from every
// other consumer of the run seed (the cluster's background injector,
// the fault scenario, ...).
const computeSeedSalt = 0x57ee1d51

// opKind is the compiled operation discriminator.
type opKind uint8

const (
	kOpen opKind = iota
	kClose
	kBarrier
	kMark
	kCompute
	kSeek
	kRead
	kWrite
	kPread
	kPwrite
	kRecords
	kMeta
	kGather
)

var kindOf = map[string]opKind{
	"open": kOpen, "close": kClose, "barrier": kBarrier, "mark": kMark,
	"compute": kCompute, "seek": kSeek, "read": kRead, "write": kWrite,
	"pread": kPread, "pwrite": kPwrite, "write-records": kRecords,
	"metadata": kMeta, "gather": kGather,
}

// cop is one compiled op. Loop bounds, offsets, dataset indices, and
// expanded mark labels are all resolved here so the per-rank
// interpreter does no parsing, no formatting, and no map lookups.
type cop struct {
	kind  opKind
	bytes int64
	count int
	off   Offset
	ds    int      // dataset index (kRecords/kMeta/kGather)
	marks []string // kMark: label per phase repetition
	// kCompute: mean seconds and the index of this op's per-rank
	// imbalance row.
	seconds float64
	sigma   float64
	compute int
}

// cphase is one compiled phase: its op list runs repeat times.
type cphase struct {
	repeat int
	ops    []cop
}

// Program is a compiled spec, ready to run any number of times.
type Program struct {
	spec   *Spec
	path   string
	flags  int // posix open flags
	h5     bool
	phases []cphase

	// Rank geometry. In posix mode every task is a rank and a writer.
	// In h5 collective mode writers own perWriter tasks each, and with
	// two-stage buffering the non-writer ranks exist solely to ship
	// records to their aggregator.
	ranks     int
	writers   int
	perWriter int
	twoStage  bool

	nCompute int   // number of compute ops (imbalance rows to draw)
	events   int   // trace events per run (Collector.Reserve floor)
	total    int64 // logical data bytes (Run.TotalBytes)
}

// Compile validates the spec and resolves it into a Program.
func Compile(s *Spec) (*Program, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	p := &Program{spec: s, h5: s.H5 != nil}

	p.path = s.Path
	if p.path == "" {
		p.path = "/scratch/wl.dat"
		if p.h5 {
			p.path = "/scratch/wl.h5"
		}
	}

	p.ranks, p.writers, p.perWriter = s.Tasks, s.Tasks, 1
	if c := s.Collective; c != nil {
		p.writers = c.Aggregators
		p.perWriter = s.Tasks / c.Aggregators
		p.twoStage = c.TwoStage
		p.ranks = p.writers
		if c.TwoStage {
			p.ranks = s.Tasks
		}
	}

	// Readers need a read-capable descriptor; pure writers open
	// write-only, as IOR does.
	p.flags = posixio.OCreat | posixio.OWronly
	for _, ph := range s.Phases {
		for _, op := range ph.Ops {
			if op.Op == "read" || op.Op == "pread" {
				p.flags = posixio.OCreat | posixio.ORdwr
			}
		}
	}

	dsIndex := make(map[string]int, len(s.Datasets))
	for i, d := range s.Datasets {
		dsIndex[d.Name] = i
	}

	for pi := range s.Phases {
		ph := &s.Phases[pi]
		repeat := ph.Repeat
		if repeat == 0 {
			repeat = 1
		}
		cp := cphase{repeat: repeat}
		if ph.Name != "" {
			cp.ops = append(cp.ops, cop{kind: kMark, marks: expandMarks(ph.Name, repeat)})
		}
		for oi := range ph.Ops {
			op := &ph.Ops[oi]
			c := cop{kind: kindOf[op.Op], bytes: op.Bytes, ds: -1}
			c.count = op.Count
			if c.count == 0 {
				c.count = 1
			}
			if op.Offset != nil {
				c.off = *op.Offset
			}
			switch c.kind {
			case kMark:
				c.marks = expandMarks(op.Name, repeat)
			case kCompute:
				c.seconds, c.sigma = op.Seconds, op.Sigma
				c.compute = p.nCompute
				p.nCompute++
			case kRecords, kMeta, kGather:
				c.ds = dsIndex[op.Dataset]
			}
			cp.ops = append(cp.ops, c)
		}
		p.phases = append(p.phases, cp)
	}
	// Accounting runs after every phase is compiled: the aggregated-
	// metadata estimate at a close op needs the whole program's flush
	// list.
	for i := range p.phases {
		p.account(&p.phases[i])
	}
	if p.events > maxEvents {
		return nil, fmt.Errorf("wldsl: %s: spec implies ~%d trace events, beyond %d", s.Name, p.events, maxEvents)
	}
	return p, nil
}

// expandMarks pre-formats a mark label for every repetition.
func expandMarks(name string, repeat int) []string {
	marks := make([]string, repeat)
	for rep := range marks {
		if _, hasVerb := validMark(name); hasVerb {
			marks[rep] = fmt.Sprintf(name, rep)
		} else {
			marks[rep] = name
		}
	}
	return marks
}

// account folds one compiled phase into the program's trace-event and
// logical-byte totals. Event counts are a close floor (aggregated-
// metadata close writes are estimated), byte totals are exact and
// match the hand-coded workloads' conventions: sized data ops count
// their requested bytes, record writes count logical record bytes
// (padding excluded), metadata and gather traffic count nothing.
func (p *Program) account(cp *cphase) {
	s := p.spec
	repeat := cp.repeat
	for i := range cp.ops {
		op := &cp.ops[i]
		switch op.kind {
		case kOpen:
			p.events += p.ranksTouchingFile()
			if p.h5 {
				p.events++ // rank 0's superblock write
			}
		case kClose:
			p.events += p.ranksTouchingFile()
			if p.h5 && s.H5.AggregateMetadata {
				p.events += p.aggregatedMetaWrites()
			}
		case kSeek:
			p.events += p.ranks * repeat
		case kRead, kPread:
			p.events += p.ranks * op.count * repeat
			p.total += int64(p.ranks) * int64(op.count) * op.bytes * int64(repeat)
		case kWrite, kPwrite:
			p.events += p.ranks * op.count * repeat
			p.total += int64(p.ranks) * int64(op.count) * op.bytes * int64(repeat)
		case kRecords:
			d := &s.Datasets[op.ds]
			recs := s.Tasks * d.RecordsPerTask
			p.events += recs * repeat
			p.total += int64(recs) * d.RecordBytes * int64(repeat)
		case kMeta:
			if !s.H5.AggregateMetadata {
				p.events += s.Datasets[op.ds].MetaOps * repeat
			}
		}
	}
}

// ranksTouchingFile is how many ranks hold a descriptor: all of them
// in posix mode, only the writers in h5 mode.
func (p *Program) ranksTouchingFile() int {
	if p.h5 {
		return p.writers
	}
	return p.ranks
}

// aggregatedMetaWrites estimates the 1 MB close-time writes of
// aggregated-metadata mode (the whole run's metadata, all flushes).
func (p *Program) aggregatedMetaWrites() int {
	opts := h5lite.FileOpts{Alignment: p.spec.H5.AlignBytes}
	// Mirror h5lite's option defaulting to get the effective per-op
	// size (page-padded when aligned).
	metaOp := int64(2048)
	if opts.Alignment > 0 {
		const page = 4096
		metaOp = (metaOp + page - 1) / page * page
	}
	var pending int64
	for _, cp := range p.phases {
		for _, op := range cp.ops {
			if op.kind == kMeta {
				pending += int64(p.spec.Datasets[op.ds].MetaOps) * metaOp * int64(cp.repeat)
			}
		}
	}
	const chunk = 1e6
	return int((pending + chunk - 1) / chunk)
}

// Ranks is the MPI world size the program launches.
func (p *Program) Ranks() int { return p.ranks }

// Spec returns the compiled spec (read-only: mutating it does not
// recompile).
func (p *Program) Spec() *Spec { return p.spec }

// Events is the compiled trace-event estimate (a Reserve floor).
func (p *Program) Events() int { return p.events }

// TotalBytes is the program's logical data volume per run.
func (p *Program) TotalBytes() int64 { return p.total }

// RunConfig carries the runtime knobs a spec deliberately does not:
// which machine, which seed, which degradation scenario, what to
// collect. It mirrors the hand-coded workload configs field for
// field.
type RunConfig struct {
	Machine cluster.Profile
	Seed    int64
	// Mode selects trace and/or profile collection (default
	// ipmio.TraceMode).
	Mode ipmio.Mode
	// Faults, when non-nil, is injected into the machine before the
	// run (see internal/faults).
	Faults *faults.Scenario
	// Telemetry enables the run's deterministic metric/span sink.
	Telemetry bool
}

// Run executes the compiled program once and returns its artifact.
func (p *Program) Run(cfg RunConfig) *workloads.Run {
	J := workloads.NewCustomJob(workloads.CustomConfig{
		Machine:       cfg.Machine,
		Tasks:         p.ranks,
		Seed:          cfg.Seed,
		Mode:          cfg.Mode,
		Faults:        cfg.Faults,
		Telemetry:     cfg.Telemetry,
		StripeCount:   p.spec.StripeCount,
		ReserveEvents: p.events,
	})
	J.Launch(p.Body(J, cfg.Seed))
	return J.Finish(p.spec.Name, p.spec.Tasks, p.total)
}

// Body prepares the program to run on an externally built job — a
// tenant of a shared-platform session (internal/tenancy) or the solo
// job Run builds — and returns the per-rank interpreter body for
// Launch/Spawn. Pre-launch setup happens here, in a deterministic
// order: the stage-one shipping groups on J's world, then the
// compute-imbalance draws from the seed's dedicated stream (a solo
// baseline passing the same seed reproduces the same compute times).
func (p *Program) Body(J *workloads.Job, seed int64) func(r *mpi.Rank, tr *ipmio.Tracer) {
	// Stage-one shipping groups: aggregator g's group is the perWriter
	// consecutive ranks starting at g*perWriter, created pre-launch in
	// writer order (the same deterministic order the hand-coded GCRM
	// uses).
	var groups []*mpi.Comm
	if p.twoStage {
		for g := 0; g < p.writers; g++ {
			members := make([]int, p.perWriter)
			for i := range members {
				members[i] = g*p.perWriter + i
			}
			groups = append(groups, J.World().NewComm(members))
		}
	}

	factors := p.drawImbalance(seed)

	return func(r *mpi.Rank, tr *ipmio.Tracer) {
		ex := executor{p: p, J: J, r: r, tr: tr, fd: -1, factors: factors}
		ex.writer, ex.w = p.writerOf(r.ID)
		if groups != nil {
			ex.group = groups[r.ID/p.perWriter]
		}
		for pi := range p.phases {
			ph := &p.phases[pi]
			for rep := 0; rep < ph.repeat; rep++ {
				for oi := range ph.ops {
					ex.exec(&ph.ops[oi], rep)
				}
			}
		}
	}
}

// writerOf maps a world rank to its writer role. Without two-stage
// buffering every rank is a writer (of perWriter tasks); with it,
// writer g is world rank g*perWriter and the rest only ship.
func (p *Program) writerOf(rank int) (isWriter bool, w int) {
	if !p.twoStage {
		return true, rank
	}
	if rank%p.perWriter == 0 {
		return true, rank / p.perWriter
	}
	return false, -1
}

// drawImbalance pre-draws every compute op's per-rank lognormal
// imbalance factor from a dedicated seeded stream, in (op, rank)
// order — a pure function of the seed and the program.
func (p *Program) drawImbalance(seed int64) [][]float64 {
	if p.nCompute == 0 {
		return nil
	}
	rng := sim.NewRNG(seed ^ computeSeedSalt)
	factors := make([][]float64, p.nCompute)
	ci := 0
	for _, cp := range p.phases {
		for _, op := range cp.ops {
			if op.kind != kCompute {
				continue
			}
			row := make([]float64, p.ranks)
			for rank := range row {
				row[rank] = rng.Lognormal(0, op.sigma)
			}
			factors[ci] = row
			ci++
		}
	}
	return factors
}

// executor is one rank's interpreter state.
type executor struct {
	p       *Program
	J       *workloads.Job
	r       *mpi.Rank
	tr      *ipmio.Tracer
	factors [][]float64

	writer bool
	w      int
	group  *mpi.Comm

	fd       int
	file     *h5lite.File
	datasets []*h5lite.Dataset
}

// exec runs one compiled op for the rank. I/O errors panic, exactly
// as the hand-coded workload bodies treat them: inside the simulation
// an I/O error is a workload bug, not an environmental condition.
func (ex *executor) exec(op *cop, rep int) {
	p, r, tr := ex.p, ex.r, ex.tr
	switch op.kind {
	case kOpen:
		if p.h5 {
			ex.h5Open()
			return
		}
		path := p.path
		if p.spec.FilePerProcess {
			path = fmt.Sprintf("%s.%05d", p.path, r.ID)
		}
		fd, err := tr.Open(r.P, path, p.flags)
		if err != nil {
			panic(err)
		}
		ex.fd = fd
	case kClose:
		if p.h5 {
			if ex.writer {
				if err := ex.file.Close(r.P); err != nil {
					panic(err)
				}
			}
			return
		}
		if err := tr.Close(r.P, ex.fd); err != nil {
			panic(err)
		}
	case kBarrier:
		r.Barrier()
	case kMark:
		ex.J.Mark(r, op.marks[rep])
	case kCompute:
		r.P.Sleep(sim.Duration(op.seconds * ex.factors[op.compute][r.ID]))
	case kSeek:
		if _, err := tr.Seek(r.P, ex.fd, op.off.at(r.ID, 0, rep), posixio.SeekSet); err != nil {
			panic(err)
		}
	case kRead:
		for i := 0; i < op.count; i++ {
			if _, err := tr.Read(r.P, ex.fd, op.bytes); err != nil {
				panic(err)
			}
		}
	case kWrite:
		for i := 0; i < op.count; i++ {
			if _, err := tr.Write(r.P, ex.fd, op.bytes); err != nil {
				panic(err)
			}
		}
	case kPread:
		for i := 0; i < op.count; i++ {
			if _, err := tr.Pread(r.P, ex.fd, op.off.at(r.ID, i, rep), op.bytes); err != nil {
				panic(err)
			}
		}
	case kPwrite:
		for i := 0; i < op.count; i++ {
			if _, err := tr.Pwrite(r.P, ex.fd, op.off.at(r.ID, i, rep), op.bytes); err != nil {
				panic(err)
			}
		}
	case kRecords:
		if !ex.writer {
			return
		}
		ds := ex.datasets[op.ds]
		rpt := p.spec.Datasets[op.ds].RecordsPerTask
		for tsk := ex.w * p.perWriter; tsk < (ex.w+1)*p.perWriter; tsk++ {
			for rec := 0; rec < rpt; rec++ {
				if err := ds.WriteRecord(r.P, tsk*rpt+rec); err != nil {
					panic(err)
				}
			}
		}
	case kMeta:
		if !ex.writer {
			return
		}
		if err := ex.datasets[op.ds].FlushMetadata(r.P); err != nil {
			panic(err)
		}
	case kGather:
		// Stage one of collective buffering: ship this rank's records
		// for the variable to its aggregator. A no-op outside
		// two-stage mode, so the same phase list serves every rung of
		// the optimization ladder.
		if ex.group != nil {
			d := &p.spec.Datasets[op.ds]
			ex.group.Gather(r, d.RecordBytes*int64(d.RecordsPerTask), r.ID)
		}
	}
}

// h5Open creates the file and declares every dataset, on writer ranks
// only (stage-one shippers never touch the file system).
func (ex *executor) h5Open() {
	p, r := ex.p, ex.r
	if !ex.writer {
		return
	}
	f, err := h5lite.Create(r.P, ex.tr, p.path, h5lite.FileOpts{
		Alignment:         p.spec.H5.AlignBytes,
		AggregateMetadata: p.spec.H5.AggregateMetadata,
		MetadataWriter:    r.ID == 0,
	})
	if err != nil {
		panic(err)
	}
	ex.file = f
	for _, d := range p.spec.Datasets {
		ex.datasets = append(ex.datasets,
			f.CreateDataset(d.Name, d.RecordBytes, p.spec.Tasks*d.RecordsPerTask, d.MetaOps))
	}
}

// at evaluates the offset expression.
func (o *Offset) at(rank, iter, rep int) int64 {
	return o.Base + o.PerRank*int64(rank) + o.PerIter*int64(iter) + o.PerPhase*int64(rep)
}

// Run compiles and executes a spec in one step.
func Run(s *Spec, cfg RunConfig) (*workloads.Run, error) {
	p, err := Compile(s)
	if err != nil {
		return nil, err
	}
	return p.Run(cfg), nil
}
