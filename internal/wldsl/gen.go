package wldsl

import (
	"fmt"

	"ensembleio/internal/sim"
)

// genSeedSalt decorrelates the generator's stream from the run seeds
// the generated specs are later executed under.
const genSeedSalt = 0x9e3d5c1

// Generate returns a pseudo-random valid workload spec, drawn from
// the scenario families the checked-in corpus covers: N-to-1 shared-
// file writes, N-to-N file-per-process writes, bursty checkpoint
// cycles, mixed write/read-back phases, collective-buffered h5
// dumps, and adversarial tiny-transfer floods. The same seed always
// yields the same spec, and every generated spec Validates, Compiles,
// and runs in well under a second — they exist to be pushed through
// the determinism suite in bulk (see TestGeneratedSpecsDeterministic).
//
// Reads are only ever generated against extents a preceding phase
// wrote, so a generated workload can never fault on missing data.
func Generate(seed int64) *Spec {
	rng := sim.NewRNG(seed ^ genSeedSalt)
	switch rng.Intn(6) {
	case 0:
		return genShared(seed, rng)
	case 1:
		return genFPP(seed, rng)
	case 2:
		return genCheckpoint(seed, rng)
	case 3:
		return genMixed(seed, rng)
	case 4:
		return genH5(seed, rng)
	default:
		return genAdversarial(seed, rng)
	}
}

// GenerateAdversarial returns a seeded spec from the adversarial
// family directly: many ranks issuing tiny transfers that straddle the
// platforms' small-I/O threshold (64 KiB), the access shape the
// paper's IPM traces flag as pathological. Useful as a co-tenant when
// stress-testing interference attribution — a flood of small strided
// writes from a wide communicator is the canonical noisy neighbor.
func GenerateAdversarial(seed int64) *Spec {
	return genAdversarial(seed, sim.NewRNG(seed^genSeedSalt))
}

// geometry shared by the posix families.
func genGeom(rng *sim.RNG) (tasks int, transfer int64, k, reps int) {
	tasks = 2 << rng.Intn(3)              // 2, 4, 8
	transfer = int64(1+rng.Intn(4)) * 2e6 // 2-8 MB
	k = 1 + rng.Intn(4)                   // transfers per phase
	reps = 1 + rng.Intn(3)                // phase repetitions
	return
}

func genShared(seed int64, rng *sim.RNG) *Spec {
	tasks, transfer, k, reps := genGeom(rng)
	block := transfer * int64(k)
	return &Spec{
		Name:  fmt.Sprintf("gen-shared-%d", seed),
		Tasks: tasks,
		Phases: []Phase{
			{Ops: []Op{{Op: "open"}, {Op: "barrier"}}},
			{Name: "write-phase-%d", Repeat: reps, Ops: []Op{
				{Op: "pwrite", Bytes: transfer, Count: k,
					Offset: &Offset{PerRank: block, PerIter: transfer}},
				{Op: "barrier"},
			}},
			{Ops: []Op{{Op: "close"}}},
		},
	}
}

func genFPP(seed int64, rng *sim.RNG) *Spec {
	tasks, transfer, k, reps := genGeom(rng)
	return &Spec{
		Name:           fmt.Sprintf("gen-fpp-%d", seed),
		Tasks:          tasks,
		FilePerProcess: true,
		StripeCount:    1 + rng.Intn(2),
		Phases: []Phase{
			{Ops: []Op{{Op: "open"}, {Op: "barrier"}}},
			{Name: "write-phase-%d", Repeat: reps, Ops: []Op{
				{Op: "pwrite", Bytes: transfer, Count: k,
					Offset: &Offset{PerIter: transfer}},
				{Op: "barrier"},
			}},
			{Ops: []Op{{Op: "close"}}},
		},
	}
}

func genCheckpoint(seed int64, rng *sim.RNG) *Spec {
	tasks, transfer, k, steps := genGeom(rng)
	state := transfer * int64(k)
	return &Spec{
		Name:  fmt.Sprintf("gen-checkpoint-%d", seed),
		Tasks: tasks,
		Phases: []Phase{
			{Ops: []Op{{Op: "open"}, {Op: "barrier"}}},
			{Repeat: steps + 1, Ops: []Op{
				{Op: "compute", Seconds: 1 + 4*rng.Float64(), Sigma: 0.05},
				{Op: "barrier"},
				{Op: "mark", Name: "checkpoint-%d"},
				{Op: "pwrite", Bytes: transfer, Count: k,
					Offset: &Offset{PerRank: state, PerIter: transfer}},
				{Op: "barrier"},
			}},
			{Ops: []Op{{Op: "close"}}},
		},
	}
}

func genMixed(seed int64, rng *sim.RNG) *Spec {
	tasks, transfer, k, _ := genGeom(rng)
	block := transfer * int64(k)
	// Read back at a (possibly) different granularity that still
	// tiles the written block exactly.
	rk := k * (1 + rng.Intn(2))
	rt := block / int64(rk)
	return &Spec{
		Name:  fmt.Sprintf("gen-mixed-%d", seed),
		Tasks: tasks,
		Phases: []Phase{
			{Ops: []Op{{Op: "open"}, {Op: "barrier"}}},
			{Name: "write-phase", Ops: []Op{
				{Op: "pwrite", Bytes: transfer, Count: k,
					Offset: &Offset{PerRank: block, PerIter: transfer}},
				{Op: "barrier"},
			}},
			{Name: "read-phase", Ops: []Op{
				{Op: "pread", Bytes: rt, Count: rk,
					Offset: &Offset{PerRank: block, PerIter: rt}},
				{Op: "barrier"},
			}},
			{Ops: []Op{{Op: "close"}}},
		},
	}
}

// genAdversarial emits the tiny-transfer/high-rank-count family:
// 32-64 ranks, per-op sizes drawn from 4 KiB to 256 KiB — a spread
// that deliberately straddles the 64 KiB SmallIOBytes threshold, so
// some generated specs ride the metadata-class path and some sit just
// above it. Op counts stay modest; the pathology is width and
// granularity, not volume.
func genAdversarial(seed int64, rng *sim.RNG) *Spec {
	tasks := 32 << rng.Intn(2)              // 32, 64
	transfer := int64(4<<10) << rng.Intn(7) // 4K .. 256K
	k := 4 + rng.Intn(5)                    // 4-8 tiny transfers per phase
	reps := 1 + rng.Intn(2)                 // 1-2 phase repetitions
	block := transfer * int64(k)
	return &Spec{
		Name:  fmt.Sprintf("gen-adversarial-%d", seed),
		Tasks: tasks,
		Phases: []Phase{
			{Ops: []Op{{Op: "open"}, {Op: "barrier"}}},
			{Name: "flood-phase-%d", Repeat: reps, Ops: []Op{
				{Op: "pwrite", Bytes: transfer, Count: k,
					Offset: &Offset{PerRank: block, PerIter: transfer, PerPhase: block * int64(tasks)}},
				{Op: "barrier"},
			}},
			{Ops: []Op{{Op: "close"}}},
		},
	}
}

func genH5(seed int64, rng *sim.RNG) *Spec {
	tasks := 8 << rng.Intn(2) // 8, 16
	h5 := &H5{}
	if rng.Bernoulli(0.5) {
		h5.AlignBytes = 1e6
	}
	if rng.Bernoulli(0.3) {
		h5.AggregateMetadata = true
	}
	var coll *Collective
	if rng.Bernoulli(0.7) {
		coll = &Collective{
			Aggregators: tasks / (2 << rng.Intn(2)), // tasks/2 or tasks/4
			TwoStage:    rng.Bernoulli(0.5),
		}
	}
	nds := 1 + rng.Intn(2)
	spec := &Spec{
		Name:       fmt.Sprintf("gen-h5-%d", seed),
		Tasks:      tasks,
		H5:         h5,
		Collective: coll,
		Phases:     []Phase{{Ops: []Op{{Op: "open"}, {Op: "barrier"}}}},
	}
	for v := 0; v < nds; v++ {
		name := fmt.Sprintf("var_%d", v)
		spec.Datasets = append(spec.Datasets, Dataset{
			Name:           name,
			RecordBytes:    int64(1+rng.Intn(4)) * 4e5,
			RecordsPerTask: 1 + rng.Intn(3),
			MetaOps:        4 + rng.Intn(13),
		})
		spec.Phases = append(spec.Phases, Phase{
			Name: fmt.Sprintf("var-%d", v),
			Ops: []Op{
				{Op: "gather", Dataset: name},
				{Op: "write-records", Dataset: name},
				{Op: "metadata", Dataset: name},
				{Op: "barrier"},
			},
		})
	}
	spec.Phases = append(spec.Phases, Phase{Name: "close", Ops: []Op{{Op: "close"}}})
	return spec
}
