// Package wldsl is the declarative workload DSL: a JSON grammar over
// phases, per-rank loops, and operation sequences (write / read /
// seek / barrier / metadata / ...) with size, stride, alignment, and
// collective-buffering parameters, compiled into deterministic
// simulated processes on the existing cluster / lustre / mpi /
// flownet stack. A spec is the workload's *shape*; everything about a
// particular execution — machine profile, seed, fault scenario,
// telemetry, collection mode — stays a runtime knob (RunConfig), just
// as with the hand-coded configs in internal/workloads.
//
// The grammar is rich enough to express the paper's three studied
// workloads exactly: the repo's golden suite proves that the spec
// ports of IOR (§III), MADbench (§IV), and GCRM (§V) serialize
// byte-identical traces, telemetry, and figure inputs to the
// hand-coded paths. New workloads are therefore data, not code — see
// testdata/scenarios/workloads/ for the scenario corpus and cmd/wlrun
// for the spec-in, artifacts-out driver.
//
// Spec compilation and interpretation run inside the per-run
// simulation, so this package lives in the simulator determinism
// domain: no wall clock, no global rand, no goroutines, no
// scheduler-visible state (see DESIGN.md §14).
//
//detflow:domain sim
package wldsl

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
)

// Spec is one declarative workload.
type Spec struct {
	// Name labels the workload; it becomes Run.Name and prefixes
	// artifact file names, so it is restricted to [A-Za-z0-9._-].
	Name string `json:"name"`
	// Tasks is the logical task count. In posix mode every task is an
	// MPI rank; in h5 collective mode the rank count follows from the
	// Collective section (aggregator writers, optional stage-one
	// shipper ranks).
	Tasks int `json:"tasks"`
	// Path of the shared file (default /scratch/wl.dat, or
	// /scratch/wl.h5 in h5 mode).
	Path string `json:"path,omitempty"`
	// FilePerProcess gives each rank its own file, path.%05d (IOR -F:
	// the N-to-N pattern; default is one shared file, N-to-1). Posix
	// mode only.
	FilePerProcess bool `json:"file_per_process,omitempty"`
	// StripeCount overrides the stripe count of created files
	// (0 = stripe over all OSTs).
	StripeCount int `json:"stripe_count,omitempty"`
	// H5 selects the hierarchical-format model: Datasets plus the
	// write-records / metadata ops, instead of raw posix ops.
	H5 *H5 `json:"h5,omitempty"`
	// Collective configures collective buffering (h5 mode only).
	Collective *Collective `json:"collective,omitempty"`
	// Datasets declares the h5 datasets, in creation order.
	Datasets []Dataset `json:"datasets,omitempty"`
	// Phases execute in order on every rank.
	Phases []Phase `json:"phases"`
}

// H5 configures the hierarchical file model (see internal/h5lite).
type H5 struct {
	// AlignBytes pads dataset bases and record strides to this
	// boundary (0 = packed; the GCRM alignment optimization uses 1e6).
	AlignBytes int64 `json:"align_bytes,omitempty"`
	// AggregateMetadata defers all metadata into one large write at
	// close (the GCRM stage-three optimization).
	AggregateMetadata bool `json:"aggregate_metadata,omitempty"`
}

// Collective configures collective buffering: Aggregators writer
// ranks each own Tasks/Aggregators tasks' records. With TwoStage all
// Tasks ranks run and ship their records to their aggregator over MPI
// first (stage one + two); without it only the writers run.
type Collective struct {
	Aggregators int  `json:"aggregators"`
	TwoStage    bool `json:"two_stage,omitempty"`
}

// Dataset declares one h5 dataset of fixed-size records; each task
// owns RecordsPerTask of them.
type Dataset struct {
	Name        string `json:"name"`
	RecordBytes int64  `json:"record_bytes"`
	// RecordsPerTask is the records each logical task contributes
	// (the dataset holds Tasks*RecordsPerTask records).
	RecordsPerTask int `json:"records_per_task"`
	// MetaOps is the number of small metadata writes one metadata
	// flush on this dataset costs (chunk index scale).
	MetaOps int `json:"meta_ops,omitempty"`
}

// Phase is a named, optionally repeated op sequence. A non-empty Name
// records a phase mark at the start of every repetition; a single %d
// verb in the name expands to the repetition index.
type Phase struct {
	Name   string `json:"name,omitempty"`
	Repeat int    `json:"repeat,omitempty"` // default 1
	Ops    []Op   `json:"ops"`
}

// Op is one operation in a phase. Which parameter fields are legal
// depends on the kind; Validate rejects mismatches.
type Op struct {
	// Op is the operation kind: open, close, barrier, mark, compute,
	// seek, read, write, pread, pwrite (posix mode), write-records,
	// metadata, gather (h5 mode).
	Op string `json:"op"`
	// Bytes per call, for the sized posix ops.
	Bytes int64 `json:"bytes,omitempty"`
	// Count repeats a sized posix op as an inner per-rank loop
	// (default 1); the loop index is the offset expression's iter
	// term.
	Count int `json:"count,omitempty"`
	// Offset positions pread/pwrite/seek.
	Offset *Offset `json:"offset,omitempty"`
	// Dataset names the target of write-records, metadata, gather.
	Dataset string `json:"dataset,omitempty"`
	// Name is the mark label (mark op; %d expands to the phase
	// repetition index).
	Name string `json:"name,omitempty"`
	// Seconds is the mean simulated compute time (compute op), with
	// per-rank lognormal imbalance of shape Sigma.
	Seconds float64 `json:"seconds,omitempty"`
	Sigma   float64 `json:"sigma,omitempty"`
}

// Offset is the linear offset expression
//
//	base + per_rank*rank + per_iter*i + per_phase*rep
//
// where rank is the MPI rank, i the op's Count loop index, and rep
// the phase repetition index. All coefficients are non-negative, so
// every computed offset is too.
type Offset struct {
	Base     int64 `json:"base,omitempty"`
	PerRank  int64 `json:"per_rank,omitempty"`
	PerIter  int64 `json:"per_iter,omitempty"`
	PerPhase int64 `json:"per_phase,omitempty"`
}

// Grammar bounds. They keep any Validate-accepted spec cheap enough
// to simulate (the fuzz and generator suites run accepted specs) and
// its artifacts bounded.
const (
	// MaxSpecBytes bounds the encoded spec a parser will read.
	MaxSpecBytes = 1 << 20
	// MaxNameLen bounds every name and path string in a spec.
	MaxNameLen = 256

	maxTasks       = 1 << 17
	maxPhases      = 256
	maxOpsPerPhase = 256
	maxRepeat      = 4096
	maxCount       = 1 << 20
	maxBytes       = int64(1) << 40
	maxOffsetCoeff = int64(1) << 42
	maxOffset      = int64(1) << 44
	maxDatasets    = 64
	maxRecsPerTask = 1 << 12
	maxMetaOps     = 1 << 12
	maxAlign       = int64(1) << 30
	maxStripes     = 1024
	maxSeconds     = 1e6
	maxSigma       = 4.0
	// maxEvents bounds the whole spec's estimated trace-event count —
	// the real guard against pathological-but-valid specs.
	maxEvents = 1 << 24
)

// Parse decodes a spec from r. Unknown fields are rejected (a typo in
// a workload spec must fail loudly, not silently change the
// workload), inputs beyond MaxSpecBytes are rejected, and the decoded
// spec is validated.
func Parse(r io.Reader) (*Spec, error) {
	data, err := io.ReadAll(io.LimitReader(r, MaxSpecBytes+1))
	if err != nil {
		return nil, fmt.Errorf("wldsl: reading spec: %w", err)
	}
	if len(data) > MaxSpecBytes {
		return nil, fmt.Errorf("wldsl: spec exceeds %d bytes", MaxSpecBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("wldsl: decoding spec: %w", err)
	}
	// A spec is one JSON document; trailing garbage is a malformed
	// file, not an ensemble.
	if dec.More() {
		return nil, fmt.Errorf("wldsl: trailing data after spec")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and validates the spec file at path.
func Load(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // read-only descriptor; close errors carry no data loss
	s, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Encode writes the spec in its canonical form: two-space indented
// JSON in struct field order, trailing newline. Encode∘Parse is a
// fixpoint (pinned by FuzzSpecDecode).
func Encode(w io.Writer, s *Spec) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("wldsl: encoding spec: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// opParams describes which Op fields an op kind uses: a validation
// table, so a spec cannot smuggle (and silently lose) parameters on
// an op that ignores them.
type opParams struct {
	sized   bool // Bytes, Count
	offset  bool // Offset
	dataset bool // Dataset
	mark    bool // Name
	compute bool // Seconds, Sigma
	posix   bool // legal in posix mode
	h5      bool // legal in h5 mode
}

var opKinds = map[string]opParams{
	"open":          {posix: true, h5: true},
	"close":         {posix: true, h5: true},
	"barrier":       {posix: true, h5: true},
	"mark":          {mark: true, posix: true, h5: true},
	"compute":       {compute: true, posix: true, h5: true},
	"seek":          {offset: true, posix: true},
	"read":          {sized: true, posix: true},
	"write":         {sized: true, posix: true},
	"pread":         {sized: true, offset: true, posix: true},
	"pwrite":        {sized: true, offset: true, posix: true},
	"write-records": {dataset: true, h5: true},
	"metadata":      {dataset: true, h5: true},
	"gather":        {dataset: true, h5: true},
}

// validName reports whether s is a legal workload/dataset name:
// non-empty, bounded, and safe as an artifact-file prefix.
func validName(s string) bool {
	if s == "" || len(s) > MaxNameLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// validMark reports whether s is a legal mark label: bounded,
// printable ASCII, and its only format verbs are at most one %d (the
// repetition index).
func validMark(s string) (ok, hasVerb bool) {
	if len(s) > MaxNameLen {
		return false, false
	}
	verbs := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c > 0x7e {
			return false, false
		}
		if c != '%' {
			continue
		}
		if i+1 >= len(s) || s[i+1] != 'd' {
			return false, false
		}
		verbs++
		i++
	}
	return verbs <= 1, verbs == 1
}

// Validate checks the spec against the grammar: every structural,
// range, and cross-reference rule a spec must satisfy to compile.
// Validate accepts exactly the specs Compile accepts.
func (s *Spec) Validate() error {
	_, err := Compile(s)
	return err
}

// validate is the structural half of compilation.
func (s *Spec) validate() error {
	if !validName(s.Name) {
		return fmt.Errorf("wldsl: invalid workload name %q (want 1-%d chars of [A-Za-z0-9._-])", s.Name, MaxNameLen)
	}
	if s.Tasks < 1 || s.Tasks > maxTasks {
		return fmt.Errorf("wldsl: %s: tasks %d out of range [1, %d]", s.Name, s.Tasks, maxTasks)
	}
	if len(s.Path) > MaxNameLen {
		return fmt.Errorf("wldsl: %s: path longer than %d bytes", s.Name, MaxNameLen)
	}
	if strings.ContainsRune(s.Path, 0) {
		return fmt.Errorf("wldsl: %s: path contains NUL", s.Name)
	}
	if s.StripeCount < 0 || s.StripeCount > maxStripes {
		return fmt.Errorf("wldsl: %s: stripe_count %d out of range [0, %d]", s.Name, s.StripeCount, maxStripes)
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("wldsl: %s: no phases", s.Name)
	}
	if len(s.Phases) > maxPhases {
		return fmt.Errorf("wldsl: %s: %d phases exceed %d", s.Name, len(s.Phases), maxPhases)
	}

	h5 := s.H5 != nil
	if !h5 {
		if len(s.Datasets) > 0 {
			return fmt.Errorf("wldsl: %s: datasets require the h5 file model", s.Name)
		}
		if s.Collective != nil {
			return fmt.Errorf("wldsl: %s: collective buffering requires the h5 file model", s.Name)
		}
	} else {
		if s.FilePerProcess {
			return fmt.Errorf("wldsl: %s: file_per_process is a posix-mode option", s.Name)
		}
		if s.H5.AlignBytes < 0 || s.H5.AlignBytes > maxAlign {
			return fmt.Errorf("wldsl: %s: h5 align_bytes %d out of range [0, %d]", s.Name, s.H5.AlignBytes, maxAlign)
		}
		if len(s.Datasets) == 0 {
			return fmt.Errorf("wldsl: %s: h5 mode declares no datasets", s.Name)
		}
		if len(s.Datasets) > maxDatasets {
			return fmt.Errorf("wldsl: %s: %d datasets exceed %d", s.Name, len(s.Datasets), maxDatasets)
		}
	}
	if c := s.Collective; c != nil {
		if c.Aggregators < 1 || c.Aggregators > s.Tasks {
			return fmt.Errorf("wldsl: %s: aggregators %d out of range [1, tasks=%d]", s.Name, c.Aggregators, s.Tasks)
		}
		if s.Tasks%c.Aggregators != 0 {
			return fmt.Errorf("wldsl: %s: tasks %d must divide evenly among %d aggregators", s.Name, s.Tasks, c.Aggregators)
		}
	}

	seen := make(map[string]bool, len(s.Datasets))
	for i, d := range s.Datasets {
		if !validName(d.Name) {
			return fmt.Errorf("wldsl: %s: dataset %d has invalid name %q", s.Name, i, d.Name)
		}
		if seen[d.Name] {
			return fmt.Errorf("wldsl: %s: duplicate dataset %q", s.Name, d.Name)
		}
		seen[d.Name] = true
		if d.RecordBytes < 1 || d.RecordBytes > maxBytes {
			return fmt.Errorf("wldsl: %s: dataset %q record_bytes %d out of range [1, %d]", s.Name, d.Name, d.RecordBytes, maxBytes)
		}
		if d.RecordsPerTask < 1 || d.RecordsPerTask > maxRecsPerTask {
			return fmt.Errorf("wldsl: %s: dataset %q records_per_task %d out of range [1, %d]", s.Name, d.Name, d.RecordsPerTask, maxRecsPerTask)
		}
		if d.MetaOps < 0 || d.MetaOps > maxMetaOps {
			return fmt.Errorf("wldsl: %s: dataset %q meta_ops %d out of range [0, %d]", s.Name, d.Name, d.MetaOps, maxMetaOps)
		}
	}

	opens := 0
	for pi := range s.Phases {
		ph := &s.Phases[pi]
		if ph.Repeat < 0 || ph.Repeat > maxRepeat {
			return fmt.Errorf("wldsl: %s: phase %d repeat %d out of range [0, %d]", s.Name, pi, ph.Repeat, maxRepeat)
		}
		repeat := ph.Repeat
		if repeat == 0 {
			repeat = 1
		}
		if ph.Name != "" {
			ok, hasVerb := validMark(ph.Name)
			if !ok {
				return fmt.Errorf("wldsl: %s: phase %d has invalid name %q", s.Name, pi, ph.Name)
			}
			if repeat > 1 && !hasVerb {
				return fmt.Errorf("wldsl: %s: phase %d repeats %d times but name %q has no %%d verb (marks would collide)", s.Name, pi, repeat, ph.Name)
			}
		}
		if len(ph.Ops) == 0 {
			return fmt.Errorf("wldsl: %s: phase %d has no ops", s.Name, pi)
		}
		if len(ph.Ops) > maxOpsPerPhase {
			return fmt.Errorf("wldsl: %s: phase %d has %d ops, exceeding %d", s.Name, pi, len(ph.Ops), maxOpsPerPhase)
		}
		for oi := range ph.Ops {
			op := &ph.Ops[oi]
			if err := s.validateOp(pi, oi, op, h5, repeat); err != nil {
				return err
			}
			if op.Op == "open" {
				opens++
				if repeat > 1 {
					return fmt.Errorf("wldsl: %s: phase %d repeats but contains an open op", s.Name, pi)
				}
			}
		}
	}
	if opens != 1 {
		return fmt.Errorf("wldsl: %s: want exactly one open op, have %d", s.Name, opens)
	}
	return nil
}

func (s *Spec) validateOp(pi, oi int, op *Op, h5 bool, repeat int) error {
	at := func(format string, args ...interface{}) error {
		return fmt.Errorf("wldsl: %s: phase %d op %d (%s): %s", s.Name, pi, oi, op.Op, fmt.Sprintf(format, args...))
	}
	params, ok := opKinds[op.Op]
	if !ok {
		return fmt.Errorf("wldsl: %s: phase %d op %d: unknown op %q", s.Name, pi, oi, op.Op)
	}
	if h5 && !params.h5 {
		return at("not legal in h5 mode")
	}
	if !h5 && !params.posix {
		return at("requires the h5 file model")
	}

	if !params.sized {
		if op.Bytes != 0 {
			return at("bytes is not a parameter of this op")
		}
		if op.Count != 0 {
			return at("count is not a parameter of this op")
		}
	} else {
		if op.Bytes < 1 || op.Bytes > maxBytes {
			return at("bytes %d out of range [1, %d]", op.Bytes, maxBytes)
		}
		if op.Count < 0 || op.Count > maxCount {
			return at("count %d out of range [0, %d]", op.Count, maxCount)
		}
	}
	if !params.offset && op.Offset != nil {
		return at("offset is not a parameter of this op")
	}
	if off := op.Offset; off != nil {
		count := op.Count
		if count == 0 {
			count = 1
		}
		for _, c := range []struct {
			name string
			v    int64
		}{{"base", off.Base}, {"per_rank", off.PerRank}, {"per_iter", off.PerIter}, {"per_phase", off.PerPhase}} {
			if c.v < 0 || c.v > maxOffsetCoeff {
				return at("offset %s %d out of range [0, %d] (negative offsets and sizes are rejected)", c.name, c.v, maxOffsetCoeff)
			}
		}
		// The largest offset the expression can reach; coefficients
		// are bounded well below overflow so this sum is exact.
		reach := off.Base + off.PerRank*int64(s.Tasks-1) +
			off.PerIter*int64(count-1) + off.PerPhase*int64(repeat-1)
		if reach+op.Bytes > maxOffset {
			return at("offset expression reaches %d, beyond %d", reach+op.Bytes, maxOffset)
		}
	}
	if !params.dataset {
		if op.Dataset != "" {
			return at("dataset is not a parameter of this op")
		}
	} else {
		found := false
		for _, d := range s.Datasets {
			if d.Name == op.Dataset {
				found = true
				break
			}
		}
		if !found {
			return at("unknown dataset %q", op.Dataset)
		}
	}
	if !params.mark {
		if op.Name != "" {
			return at("name is not a parameter of this op")
		}
	} else {
		ok, hasVerb := validMark(op.Name)
		if !ok || op.Name == "" {
			return at("invalid mark name %q", op.Name)
		}
		if repeat > 1 && !hasVerb {
			return at("phase repeats %d times but mark %q has no %%d verb", repeat, op.Name)
		}
	}
	if !params.compute {
		if op.Seconds != 0 || op.Sigma != 0 {
			return at("seconds/sigma are not parameters of this op")
		}
	} else {
		if math.IsNaN(op.Seconds) || math.IsInf(op.Seconds, 0) || op.Seconds < 0 || op.Seconds > maxSeconds {
			return at("seconds %v out of range [0, %v] (NaN/Inf rejected)", op.Seconds, float64(maxSeconds))
		}
		if math.IsNaN(op.Sigma) || math.IsInf(op.Sigma, 0) || op.Sigma < 0 || op.Sigma > maxSigma {
			return at("sigma %v out of range [0, %v] (NaN/Inf rejected)", op.Sigma, maxSigma)
		}
	}
	return nil
}
