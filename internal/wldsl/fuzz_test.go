package wldsl

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzSpecDecode hammers the spec parser with arbitrary bytes. The
// parser must never panic, and anything it accepts must satisfy the
// grammar's hard bounds — name lengths, non-negative sizes and
// offsets, finite floats — and re-encode to a canonical fixpoint
// (Encode∘Parse∘Encode = Encode). Accepted specs must also compile:
// Validate and Compile accept exactly the same language.
func FuzzSpecDecode(f *testing.F) {
	// One checked-in spec per scenario family seeds the corpus: N-to-1
	// shared-file, N-to-N file-per-process, strided read/modify/write,
	// collective-buffered h5, bursty checkpoint, mixed read/write.
	for _, name := range []string{
		"ior-shared.json", "ior-fpp.json", "madbench.json",
		"gcrm-collective.json", "gcrm-twostage.json",
		"checkpoint-bursty.json", "mixed-rw.json",
	} {
		raw, err := os.ReadFile(filepath.Join(corpusDir, name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	// Near-misses the validator must reject without panicking.
	f.Add([]byte(`{"name":"x","tasks":2,"phases":[{"ops":[{"op":"open"},{"op":"pwrite","bytes":-5}]}]}`))
	f.Add([]byte(`{"name":"x","tasks":2,"phases":[{"ops":[{"op":"open"},{"op":"compute","seconds":1e999}]}]}`))
	f.Add([]byte(`{"name":"` + strings.Repeat("a", MaxNameLen+1) + `","tasks":2,"phases":[{"ops":[{"op":"open"}]}]}`))
	f.Add([]byte(`{"name":"x","tasks":2,"phases":[{"ops":[{"op":"open"}]}]}{"trailing":1}`))
	f.Add([]byte(`{`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(bytes.NewReader(data))
		if err != nil {
			return // rejecting bad input is fine; panicking is not
		}
		checkBounds(t, s)
		if _, err := Compile(s); err != nil {
			t.Fatalf("Parse accepted a spec Compile rejects: %v", err)
		}

		var once bytes.Buffer
		if err := Encode(&once, s); err != nil {
			t.Fatalf("re-encoding accepted spec: %v", err)
		}
		s2, err := Parse(bytes.NewReader(once.Bytes()))
		if err != nil {
			t.Fatalf("decoding own encoding: %v", err)
		}
		var twice bytes.Buffer
		if err := Encode(&twice, s2); err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(once.Bytes(), twice.Bytes()) {
			t.Fatalf("encode∘parse is not a fixpoint: %d vs %d bytes", once.Len(), twice.Len())
		}
	})
}

// checkBounds asserts the hard grammar bounds directly on an accepted
// spec — a belt-and-suspenders cross-check of Validate, phrased
// independently of its implementation.
func checkBounds(t *testing.T, s *Spec) {
	t.Helper()
	if s.Name == "" || len(s.Name) > MaxNameLen {
		t.Fatalf("accepted name length %d outside [1, %d]", len(s.Name), MaxNameLen)
	}
	if len(s.Path) > MaxNameLen {
		t.Fatalf("accepted path length %d beyond %d", len(s.Path), MaxNameLen)
	}
	if s.Tasks < 1 {
		t.Fatalf("accepted non-positive tasks %d", s.Tasks)
	}
	for _, d := range s.Datasets {
		if len(d.Name) > MaxNameLen || d.RecordBytes < 1 || d.RecordsPerTask < 1 || d.MetaOps < 0 {
			t.Fatalf("accepted out-of-bounds dataset %+v", d)
		}
	}
	for _, ph := range s.Phases {
		if len(ph.Name) > MaxNameLen || ph.Repeat < 0 {
			t.Fatalf("accepted out-of-bounds phase %q repeat=%d", ph.Name, ph.Repeat)
		}
		for _, op := range ph.Ops {
			if op.Bytes < 0 || op.Count < 0 || len(op.Name) > MaxNameLen {
				t.Fatalf("accepted out-of-bounds op %+v", op)
			}
			if math.IsNaN(op.Seconds) || math.IsInf(op.Seconds, 0) || op.Seconds < 0 ||
				math.IsNaN(op.Sigma) || math.IsInf(op.Sigma, 0) || op.Sigma < 0 {
				t.Fatalf("accepted non-finite or negative compute params %+v", op)
			}
			if off := op.Offset; off != nil {
				if off.Base < 0 || off.PerRank < 0 || off.PerIter < 0 || off.PerPhase < 0 {
					t.Fatalf("accepted negative offset coefficient %+v", off)
				}
			}
		}
	}
}
