package cascache

// mruCache is the in-process layer: a fixed-capacity move-to-front
// slice, scanned linearly — the map-free deterministic cache shape of
// flownet's memo. Capacity is small (DefaultMRUCap), so a miss costs a
// handful of 32-byte key comparisons and a hit is allocation-free.
// The caller (Store) holds the lock.
type mruCache struct {
	entries []*mruEntry
	cap     int
}

type mruEntry struct {
	key       Key
	meta      Meta
	artifacts []Artifact
	bytes     uint64
}

// get returns the entry for k, moving it to the front, or nil.
func (m *mruCache) get(k Key) *mruEntry {
	for idx, e := range m.entries {
		if e.key == k {
			copy(m.entries[1:idx+1], m.entries[:idx])
			m.entries[0] = e
			return e
		}
	}
	return nil
}

// put inserts (or refreshes) k at the front, evicting the
// least-recently-used entry when full.
func (m *mruCache) put(k Key, meta Meta, artifacts []Artifact, bytes uint64) {
	if m.cap <= 0 {
		return
	}
	if e := m.get(k); e != nil {
		return // already cached, and get moved it to the front
	}
	e := &mruEntry{key: k, meta: meta, artifacts: artifacts, bytes: bytes}
	if len(m.entries) < m.cap {
		m.entries = append(m.entries, nil)
	}
	copy(m.entries[1:], m.entries)
	m.entries[0] = e
}
