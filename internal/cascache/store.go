package cascache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// Artifact is one named byte blob of a cached run's artifact set
// (trace.bin, trace.jsonl, profile.json, telemetry.json, spans.jsonl,
// chrome.json). Served artifacts are shared, read-only slices: callers
// write them out or compare them, never mutate them.
type Artifact struct {
	Name string
	Data []byte
}

// Meta is the human-facing summary stored alongside an entry, enough
// for a CLI to print its usual per-run line without decoding any
// artifact. It never participates in the key.
type Meta struct {
	Workload   string  `json:"workload,omitempty"`
	Seed       int64   `json:"seed"`
	Tasks      int     `json:"tasks,omitempty"`
	WallSec    float64 `json:"wall_sec,omitempty"`
	TotalBytes int64   `json:"total_bytes,omitempty"`
}

// Entry is one served cache entry.
type Entry struct {
	Key       Key
	Meta      Meta
	Artifacts []Artifact
}

// Stats is a snapshot of the store's counters. Hits counts every
// served entry (MRUHits of them straight from memory); BytesServed is
// the artifact bytes of served entries, BytesWritten the artifact
// bytes of published ones. Corrupt counts entries that failed the
// digest re-check on read and were evicted instead of served.
type Stats struct {
	Hits, MRUHits, Misses, Puts, Corrupt uint64
	BytesServed, BytesWritten            uint64
}

// Store is an on-disk content-addressed artifact store plus an
// in-process MRU layer. Safe for concurrent use: campaign workers
// publish and probe from the runpool. Which worker wins a racy publish
// is scheduler-dependent, but harmless by construction — entries are
// content-addressed, so every candidate body for a key is
// byte-identical.
type Store struct {
	root string // <dir>/v<SchemaEpoch>

	mu  sync.Mutex
	mru mruCache

	hits, mruHits, misses, puts, corrupt atomic.Uint64
	bytesServed, bytesWritten            atomic.Uint64
}

// DefaultMRUCap bounds the in-process layer. Campaign grids repeat a
// handful of hot scenarios; a small cache captures those while keeping
// a miss's probe cost at a few 32-byte comparisons (the flownet memo
// shape).
const DefaultMRUCap = 16

// Open prepares the store rooted at dir, creating the epoch directory
// if needed. Entries of other epochs are invisible by construction.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("cascache: empty cache directory")
	}
	root := filepath.Join(dir, fmt.Sprintf("v%d", SchemaEpoch))
	if err := os.MkdirAll(filepath.Join(root, "tmp"), 0o755); err != nil {
		return nil, fmt.Errorf("cascache: %w", err)
	}
	return &Store{root: root, mru: mruCache{cap: DefaultMRUCap}}, nil
}

// Dir returns the store's epoch root directory.
func (s *Store) Dir() string { return s.root }

// SetMRUCap resizes the in-process layer (0 disables it). Not for the
// hot path; call it right after Open.
func (s *Store) SetMRUCap(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mru.cap = n
	if n < len(s.mru.entries) {
		s.mru.entries = s.mru.entries[:n]
	}
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:         s.hits.Load(),
		MRUHits:      s.mruHits.Load(),
		Misses:       s.misses.Load(),
		Puts:         s.puts.Load(),
		Corrupt:      s.corrupt.Load(),
		BytesServed:  s.bytesServed.Load(),
		BytesWritten: s.bytesWritten.Load(),
	}
}

func (s *Store) entryDir(k Key) string {
	h := k.Hex()
	return filepath.Join(s.root, h[:2], h)
}

// manifest is the per-entry integrity record: every artifact's size
// and SHA-256, written last inside the temp dir so a published entry
// always carries its own digests.
type manifest struct {
	Epoch     int           `json:"epoch"`
	Key       string        `json:"key"`
	Meta      Meta          `json:"meta"`
	Artifacts []manifestArt `json:"artifacts"`
}

type manifestArt struct {
	Name   string `json:"name"`
	Bytes  int64  `json:"bytes"`
	SHA256 string `json:"sha256"`
}

const manifestName = "manifest.json"

// validArtifactName keeps artifact names safe as file names inside the
// entry directory: no separators, no leading dot, bounded charset.
func validArtifactName(name string) bool {
	if name == "" || name == manifestName || name[0] == '.' || len(name) > 128 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// Get probes the MRU layer, then the disk. A disk hit re-checks every
// artifact's size and SHA-256 against the entry's manifest; any
// mismatch means the blob was corrupted after publication, so the
// entry is evicted from disk and reported as a miss — a poisoned store
// can cost recomputation, never wrong bytes.
func (s *Store) Get(k Key) (Entry, bool) {
	s.mu.Lock()
	if e := s.mru.get(k); e != nil {
		s.mu.Unlock()
		s.hits.Add(1)
		s.mruHits.Add(1)
		s.bytesServed.Add(e.bytes)
		return Entry{Key: k, Meta: e.meta, Artifacts: e.artifacts}, true
	}
	s.mu.Unlock()

	ent, n, err := s.readEntry(k)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			// Present but unreadable or failing its digests: evict so a
			// later Put can heal the slot.
			s.corrupt.Add(1)
			os.RemoveAll(s.entryDir(k))
		}
		s.misses.Add(1)
		return Entry{}, false
	}
	s.mu.Lock()
	s.mru.put(k, ent.Meta, ent.Artifacts, n)
	s.mu.Unlock()
	s.hits.Add(1)
	s.bytesServed.Add(n)
	return ent, true
}

// readEntry loads and verifies one on-disk entry. fs.ErrNotExist means
// a clean miss; any other error means a damaged entry.
func (s *Store) readEntry(k Key) (Entry, uint64, error) {
	dir := s.entryDir(k)
	mb, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return Entry{}, 0, err
	}
	var m manifest
	if err := json.Unmarshal(mb, &m); err != nil {
		return Entry{}, 0, fmt.Errorf("cascache: %s: manifest: %w", k.Short(), err)
	}
	if m.Epoch != SchemaEpoch || m.Key != k.Hex() {
		return Entry{}, 0, fmt.Errorf("cascache: %s: manifest identity mismatch", k.Short())
	}
	ent := Entry{Key: k, Meta: m.Meta, Artifacts: make([]Artifact, 0, len(m.Artifacts))}
	var total uint64
	for _, a := range m.Artifacts {
		if !validArtifactName(a.Name) {
			return Entry{}, 0, fmt.Errorf("cascache: %s: illegal artifact name %q", k.Short(), a.Name)
		}
		data, err := os.ReadFile(filepath.Join(dir, a.Name))
		if err != nil {
			return Entry{}, 0, fmt.Errorf("cascache: %s: %s: %w", k.Short(), a.Name, err)
		}
		if int64(len(data)) != a.Bytes {
			return Entry{}, 0, fmt.Errorf("cascache: %s: %s: %d bytes, manifest says %d", k.Short(), a.Name, len(data), a.Bytes)
		}
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:]) != a.SHA256 {
			return Entry{}, 0, fmt.Errorf("cascache: %s: %s: digest mismatch", k.Short(), a.Name)
		}
		ent.Artifacts = append(ent.Artifacts, Artifact{Name: a.Name, Data: data})
		total += uint64(len(data))
	}
	return ent, total, nil
}

// Put publishes an artifact set under its key: artifacts and manifest
// are written into a fresh temp directory, fsync-free, then the whole
// directory is renamed into place — readers observe either nothing or
// the complete entry. If another writer published the key first the
// candidate is discarded; content addressing makes the two bodies
// byte-identical, so first-wins is not a race on content.
func (s *Store) Put(k Key, meta Meta, artifacts []Artifact) error {
	if len(artifacts) == 0 {
		return errors.New("cascache: refusing to publish an empty artifact set")
	}
	m := manifest{Epoch: SchemaEpoch, Key: k.Hex(), Meta: meta}
	var total uint64
	for _, a := range artifacts {
		if !validArtifactName(a.Name) {
			return fmt.Errorf("cascache: illegal artifact name %q", a.Name)
		}
		sum := sha256.Sum256(a.Data)
		m.Artifacts = append(m.Artifacts, manifestArt{
			Name: a.Name, Bytes: int64(len(a.Data)), SHA256: hex.EncodeToString(sum[:]),
		})
		total += uint64(len(a.Data))
	}

	tmp, err := os.MkdirTemp(filepath.Join(s.root, "tmp"), k.Short()+"-")
	if err != nil {
		return fmt.Errorf("cascache: %w", err)
	}
	defer os.RemoveAll(tmp) // no-op after a successful rename
	for _, a := range artifacts {
		if err := os.WriteFile(filepath.Join(tmp, a.Name), a.Data, 0o644); err != nil {
			return fmt.Errorf("cascache: %w", err)
		}
	}
	mb, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("cascache: manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(tmp, manifestName), append(mb, '\n'), 0o644); err != nil {
		return fmt.Errorf("cascache: %w", err)
	}

	dst := s.entryDir(k)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("cascache: %w", err)
	}
	if err := os.Rename(tmp, dst); err != nil {
		if _, statErr := os.Stat(filepath.Join(dst, manifestName)); statErr == nil {
			// Lost the publish race; the winner's bytes are ours.
			return nil
		}
		return fmt.Errorf("cascache: publishing %s: %w", k.Short(), err)
	}
	s.puts.Add(1)
	s.bytesWritten.Add(total)
	if err := s.appendIndex(k, meta, total, len(artifacts)); err != nil {
		return err
	}
	s.mu.Lock()
	s.mru.put(k, meta, artifacts, total)
	s.mu.Unlock()
	return nil
}

// IndexEntry is one line of the store's append-only index file — an
// advisory catalog for browsing and campaign planning. Reads never
// trust it: Get always verifies the entry's own manifest.
type IndexEntry struct {
	Key       string `json:"key"`
	Workload  string `json:"workload,omitempty"`
	Seed      int64  `json:"seed"`
	Bytes     uint64 `json:"bytes"`
	Artifacts int    `json:"artifacts"`
}

const indexName = "index.jsonl"

// appendIndex appends one catalog line. A single O_APPEND write keeps
// concurrent publishers from interleaving partial lines.
func (s *Store) appendIndex(k Key, meta Meta, total uint64, n int) error {
	line, err := json.Marshal(IndexEntry{
		Key: k.Hex(), Workload: meta.Workload, Seed: meta.Seed, Bytes: total, Artifacts: n,
	})
	if err != nil {
		return fmt.Errorf("cascache: index: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(s.root, indexName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("cascache: index: %w", err)
	}
	_, werr := f.Write(append(line, '\n'))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("cascache: index: %w", werr)
	}
	return nil
}

// Index reads the catalog. Malformed lines (a crash mid-append) are
// skipped, not fatal — the index is an accelerator, the manifests are
// the truth.
func (s *Store) Index() ([]IndexEntry, error) {
	data, err := os.ReadFile(filepath.Join(s.root, indexName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("cascache: index: %w", err)
	}
	var out []IndexEntry
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var e IndexEntry
		if err := json.Unmarshal(line, &e); err != nil {
			continue
		}
		out = append(out, e)
	}
	return out, nil
}

// RebuildIndex rewrites the catalog from the entry manifests, in
// lexical key order (deterministic), and returns the entry count. Use
// it after manual pruning or a crash left the advisory index behind
// the truth.
func (s *Store) RebuildIndex() (int, error) {
	var entries []IndexEntry
	shards, err := os.ReadDir(s.root)
	if err != nil {
		return 0, fmt.Errorf("cascache: %w", err)
	}
	for _, shard := range shards {
		if !shard.IsDir() || len(shard.Name()) != 2 {
			continue
		}
		dirs, err := os.ReadDir(filepath.Join(s.root, shard.Name()))
		if err != nil {
			return 0, fmt.Errorf("cascache: %w", err)
		}
		for _, d := range dirs {
			mb, err := os.ReadFile(filepath.Join(s.root, shard.Name(), d.Name(), manifestName))
			if err != nil {
				continue
			}
			var m manifest
			if err := json.Unmarshal(mb, &m); err != nil || m.Epoch != SchemaEpoch {
				continue
			}
			var total uint64
			for _, a := range m.Artifacts {
				total += uint64(a.Bytes)
			}
			entries = append(entries, IndexEntry{
				Key: m.Key, Workload: m.Meta.Workload, Seed: m.Meta.Seed,
				Bytes: total, Artifacts: len(m.Artifacts),
			})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	var buf bytes.Buffer
	for _, e := range entries {
		line, err := json.Marshal(e)
		if err != nil {
			return 0, fmt.Errorf("cascache: index: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	tmp := filepath.Join(s.root, indexName+".tmp")
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return 0, fmt.Errorf("cascache: index: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.root, indexName)); err != nil {
		return 0, fmt.Errorf("cascache: index: %w", err)
	}
	return len(entries), nil
}

// DiffArtifacts compares two artifact sets byte for byte and reports
// the first divergence — the paranoid -cache-verify check that a
// served entry equals a fresh recomputation.
func DiffArtifacts(served, fresh []Artifact) error {
	if len(served) != len(fresh) {
		return fmt.Errorf("cascache: artifact sets differ: %d served vs %d fresh", len(served), len(fresh))
	}
	for i := range served {
		a, b := served[i], fresh[i]
		if a.Name != b.Name {
			return fmt.Errorf("cascache: artifact %d name %q served vs %q fresh", i, a.Name, b.Name)
		}
		if !bytes.Equal(a.Data, b.Data) {
			j := 0
			for j < len(a.Data) && j < len(b.Data) && a.Data[j] == b.Data[j] {
				j++
			}
			return fmt.Errorf("cascache: %s: served %d bytes vs fresh %d, first divergence at byte %d",
				a.Name, len(a.Data), len(b.Data), j)
		}
	}
	return nil
}
