package cascache

import (
	"bytes"
	"fmt"

	"ensembleio/internal/tracefmt"
	"ensembleio/internal/workloads"
)

// The capture contract: a cached run is executed once with full
// collection (Mode = TraceMode|ProfileMode, Telemetry on) and its
// complete artifact set is stored. Collection mode and telemetry
// select which artifacts a CLI *writes*, never what their bytes are —
// so one full capture serves every request shape, including later
// invocations that asked for less.
const (
	ArtTraceBin  = "trace.bin"
	ArtTraceJSON = "trace.jsonl"
	ArtProfile   = "profile.json"
	ArtTelemetry = "telemetry.json"
	ArtSpans     = "spans.jsonl"
	ArtChrome    = "chrome.json"
)

// Artifact returns the named artifact's bytes from a served entry.
func (e Entry) Artifact(name string) ([]byte, bool) {
	for _, a := range e.Artifacts {
		if a.Name == name {
			return a.Data, true
		}
	}
	return nil, false
}

// CaptureRun encodes one fully-collected run into the canonical
// artifact set (sorted by name) plus its Meta summary. The run must
// have been executed under the capture contract — trace and profile
// collection with telemetry on — or the capture fails rather than
// publish a partial entry.
func CaptureRun(run *workloads.Run, seed int64) ([]Artifact, Meta, error) {
	if run.Telemetry == nil || run.Spans == nil {
		return nil, Meta{}, fmt.Errorf("cascache: capture of %q: run lacks telemetry (capture contract requires Telemetry: true)", run.Name)
	}
	prof, err := tracefmt.ProfileOf(run.Collector)
	if err != nil {
		return nil, Meta{}, fmt.Errorf("cascache: capture of %q: %w", run.Name, err)
	}

	var arts []Artifact
	add := func(name string, write func(*bytes.Buffer) error) error {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			return fmt.Errorf("cascache: capture of %q: %s: %w", run.Name, name, err)
		}
		arts = append(arts, Artifact{Name: name, Data: buf.Bytes()})
		return nil
	}
	// Alphabetical by artifact name, matching DiffArtifacts' positional
	// comparison and keeping manifests deterministic.
	steps := []struct {
		name  string
		write func(*bytes.Buffer) error
	}{
		{ArtChrome, func(b *bytes.Buffer) error { return tracefmt.WriteChromeTrace(b, run.Spans) }},
		{ArtProfile, func(b *bytes.Buffer) error { return tracefmt.WriteProfile(b, prof) }},
		{ArtSpans, func(b *bytes.Buffer) error { return tracefmt.WriteSpans(b, run.Spans) }},
		{ArtTelemetry, func(b *bytes.Buffer) error { return tracefmt.WriteMetrics(b, run.Telemetry) }},
		{ArtTraceBin, func(b *bytes.Buffer) error { return tracefmt.WriteBinary(b, run.Collector.Events, run.Collector.Marks) }},
		{ArtTraceJSON, func(b *bytes.Buffer) error { return tracefmt.WriteJSONL(b, run.Collector.Events, run.Collector.Marks) }},
	}
	for _, st := range steps {
		if err := add(st.name, st.write); err != nil {
			return nil, Meta{}, err
		}
	}
	meta := Meta{
		Workload:   run.Name,
		Seed:       seed,
		Tasks:      run.Tasks,
		WallSec:    float64(run.Wall),
		TotalBytes: run.TotalBytes,
	}
	return arts, meta, nil
}
