package cascache

import (
	"os"
	"path/filepath"
	"testing"

	"ensembleio/internal/cluster"
	"ensembleio/internal/faults"
	"ensembleio/internal/wldsl"
)

func testArtifacts() []Artifact {
	return []Artifact{
		{Name: "profile.json", Data: []byte(`{"p":1}`)},
		{Name: "trace.bin", Data: []byte{0x45, 0x49, 0x4f, 0x00, 1, 2, 3}},
	}
}

func testKey(t *testing.T, seed int64) Key {
	t.Helper()
	k, err := ScenarioKey(wldsl.Generate(seed), cluster.Franklin(), nil, seed)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(t, 1)
	if _, ok := s.Get(k); ok {
		t.Fatal("hit on an empty store")
	}
	meta := Meta{Workload: "w", Seed: 1, Tasks: 4, WallSec: 2.5, TotalBytes: 99}
	if err := s.Put(k, meta, testArtifacts()); err != nil {
		t.Fatal(err)
	}
	ent, ok := s.Get(k)
	if !ok {
		t.Fatal("miss after Put")
	}
	if ent.Meta != meta {
		t.Fatalf("meta %+v, want %+v", ent.Meta, meta)
	}
	if err := DiffArtifacts(ent.Artifacts, testArtifacts()); err != nil {
		t.Fatalf("served artifacts differ: %v", err)
	}

	// A fresh store over the same directory must hit from disk.
	s2, err := Open(filepath.Dir(s.Dir()))
	if err != nil {
		t.Fatal(err)
	}
	ent2, ok := s2.Get(k)
	if !ok {
		t.Fatal("miss from a fresh store over the same directory")
	}
	if err := DiffArtifacts(ent2.Artifacts, testArtifacts()); err != nil {
		t.Fatalf("disk-served artifacts differ: %v", err)
	}
	st := s2.Stats()
	if st.Hits != 1 || st.MRUHits != 0 || st.Misses != 0 {
		t.Fatalf("stats %+v, want one disk hit", st)
	}
	// Second Get is an MRU hit.
	if _, ok := s2.Get(k); !ok {
		t.Fatal("second Get missed")
	}
	if st := s2.Stats(); st.MRUHits != 1 {
		t.Fatalf("stats %+v, want one MRU hit", st)
	}
}

// TestStorePoisonedEntry is the satellite guarantee: a corrupted blob
// is detected by the digest re-check on read, treated as a miss, and
// never served — then the slot heals on the next Put.
func TestStorePoisonedEntry(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(t, 2)
	if err := s.Put(k, Meta{Seed: 2}, testArtifacts()); err != nil {
		t.Fatal(err)
	}

	// Flip one byte of a published artifact on disk.
	path := filepath.Join(s.entryDir(k), "trace.bin")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	fresh, err := Open(dir) // bypass the MRU copy
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.Get(k); ok {
		t.Fatal("poisoned entry was served")
	}
	st := fresh.Stats()
	if st.Corrupt != 1 || st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("stats %+v, want corrupt=1 miss=1 hit=0", st)
	}
	// The poisoned entry must have been evicted so publication heals it.
	if _, err := os.Stat(s.entryDir(k)); !os.IsNotExist(err) {
		t.Fatalf("poisoned entry dir still present (err=%v)", err)
	}
	if err := fresh.Put(k, Meta{Seed: 2}, testArtifacts()); err != nil {
		t.Fatalf("healing Put failed: %v", err)
	}
	reread, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reread.Get(k); !ok {
		t.Fatal("healed entry not served")
	}
}

// Truncating an artifact (size mismatch, digest never reached) and
// mangling the manifest itself must also read as misses.
func TestStoreTruncatedAndBadManifest(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(t, 3)
	if err := s.Put(k, Meta{Seed: 3}, testArtifacts()); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(filepath.Join(s.entryDir(k), "trace.bin"), 2); err != nil {
		t.Fatal(err)
	}
	fresh, _ := Open(dir)
	if _, ok := fresh.Get(k); ok {
		t.Fatal("truncated entry was served")
	}

	if err := s.Put(k, Meta{Seed: 3}, testArtifacts()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.entryDir(k), manifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	fresh2, _ := Open(dir)
	if _, ok := fresh2.Get(k); ok {
		t.Fatal("entry with mangled manifest was served")
	}
	if st := fresh2.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats %+v, want corrupt=1", st)
	}
}

func TestStoreDuplicatePutAndIndex(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := testKey(t, 4), testKey(t, 5)
	if err := s.Put(k1, Meta{Workload: "a", Seed: 4}, testArtifacts()); err != nil {
		t.Fatal(err)
	}
	// Re-publishing the same key is a no-op win for the first writer.
	if err := s.Put(k1, Meta{Workload: "a", Seed: 4}, testArtifacts()); err != nil {
		t.Fatalf("duplicate Put: %v", err)
	}
	if err := s.Put(k2, Meta{Workload: "b", Seed: 5}, testArtifacts()); err != nil {
		t.Fatal(err)
	}
	idx, err := s.Index()
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 2 {
		t.Fatalf("index has %d entries, want 2 (duplicate Put must not append)", len(idx))
	}
	n, err := s.RebuildIndex()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("RebuildIndex found %d entries, want 2", n)
	}
	idx2, err := s.Index()
	if err != nil {
		t.Fatal(err)
	}
	if len(idx2) != 2 || idx2[0].Key >= idx2[1].Key {
		t.Fatalf("rebuilt index not sorted: %+v", idx2)
	}
}

func TestStoreRejectsBadArtifactNames(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", ".", "..", ".hidden", "a/b", "a\\b", manifestName, "sp ace"} {
		err := s.Put(testKey(t, 6), Meta{}, []Artifact{{Name: bad, Data: []byte("x")}})
		if err == nil {
			t.Errorf("Put accepted illegal artifact name %q", bad)
		}
	}
	if err := s.Put(testKey(t, 6), Meta{}, nil); err == nil {
		t.Error("Put accepted an empty artifact set")
	}
}

func TestMRUEvictionOrder(t *testing.T) {
	m := mruCache{cap: 2}
	keys := []Key{testKey(t, 10), testKey(t, 11), testKey(t, 12)}
	arts := testArtifacts()
	m.put(keys[0], Meta{}, arts, 1)
	m.put(keys[1], Meta{}, arts, 1)
	if m.get(keys[0]) == nil {
		t.Fatal("key 0 evicted while cache not full")
	}
	// key0 is now most recent; inserting key2 must evict key1.
	m.put(keys[2], Meta{}, arts, 1)
	if m.get(keys[1]) != nil {
		t.Fatal("LRU entry (key 1) survived eviction")
	}
	if m.get(keys[0]) == nil || m.get(keys[2]) == nil {
		t.Fatal("recently used entries were evicted")
	}
}

func TestDiffArtifacts(t *testing.T) {
	a := testArtifacts()
	if err := DiffArtifacts(a, testArtifacts()); err != nil {
		t.Fatalf("identical sets diff: %v", err)
	}
	b := testArtifacts()
	b[1].Data = append([]byte(nil), b[1].Data...)
	b[1].Data[3] = 0x7f
	if err := DiffArtifacts(a, b); err == nil {
		t.Fatal("divergent sets did not diff")
	}
	if err := DiffArtifacts(a, a[:1]); err == nil {
		t.Fatal("sets of different length did not diff")
	}
}

// The platform section excludes AnalyticOff: a run cached under either
// sim path serves both. Every other profile field must change the key.
func TestScenarioKeySimPathIrrelevance(t *testing.T) {
	spec := wldsl.Generate(1)
	on := cluster.Franklin()
	off := cluster.Franklin()
	off.AnalyticOff = true
	kOn, err := ScenarioKey(spec, on, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	kOff, err := ScenarioKey(spec, off, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if kOn != kOff {
		t.Fatal("AnalyticOff changed the scenario key (sim-path-irrelevant fields must be excluded)")
	}
	patched := cluster.Franklin()
	patched.PatchStridedReadahead = true
	kPatched, err := ScenarioKey(spec, patched, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if kPatched == kOn {
		t.Fatal("distinct platforms collided")
	}
	sc := &faults.Scenario{Name: "s", Faults: []faults.Fault{&faults.SlowOST{OST: 1, Factor: 0.5}}}
	kF, err := ScenarioKey(spec, on, sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if kF == kOn {
		t.Fatal("fault scenario did not change the key")
	}
}
