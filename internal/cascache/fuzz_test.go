package cascache

import (
	"bytes"
	"encoding/json"
	"testing"

	"ensembleio/internal/cluster"
	"ensembleio/internal/faults"
	"ensembleio/internal/wldsl"
)

// reorderSpecJSON re-encodes a spec's canonical JSON through
// map[string]any and json.Marshal, which emits object keys in sorted
// order — a different field order (and whitespace) than the canonical
// struct-order encoding. Parsing it back must yield the same key.
func reorderSpecJSON(t testing.TB, canonical []byte) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(canonical, &m); err != nil {
		t.Fatalf("canonical spec not JSON: %v", err)
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func franklinPatched() cluster.Profile {
	p := cluster.Franklin()
	p.PatchStridedReadahead = true
	return p
}

var fuzzPlatforms = []cluster.Profile{cluster.Franklin(), franklinPatched(), cluster.Jaguar()}

func fuzzScenario(which uint8) *faults.Scenario {
	switch which % 3 {
	case 1:
		return &faults.Scenario{Name: "slow", Faults: []faults.Fault{&faults.SlowOST{OST: 3, Factor: 0.25}}}
	case 2:
		return &faults.Scenario{Name: "bursts", Faults: []faults.Fault{
			&faults.BackgroundBursts{MBps: 9000, OnSec: 3, OffSec: 5},
		}}
	}
	return nil
}

// FuzzScenarioKey pins the two key-derivation properties the cache
// stands on: the key is stable under non-canonical input encodings
// (JSON field reordering), and distinct seeds / platforms / fault
// scenarios never collide.
func FuzzScenarioKey(f *testing.F) {
	f.Add(int64(1), int64(1), uint8(0), uint8(0))
	f.Add(int64(7), int64(42), uint8(1), uint8(1))
	f.Add(int64(123), int64(-5), uint8(2), uint8(2))
	f.Add(int64(999), int64(0), uint8(0), uint8(1))
	f.Fuzz(func(t *testing.T, genSeed, runSeed int64, platIdx, faultIdx uint8) {
		spec := wldsl.Generate(genSeed)
		prof := fuzzPlatforms[int(platIdx)%len(fuzzPlatforms)]
		sc := fuzzScenario(faultIdx % 3)

		k1, err := ScenarioKey(spec, prof, sc, runSeed)
		if err != nil {
			t.Fatal(err)
		}

		// Stability: a reordered, re-whitespaced encoding of the same
		// spec parses to the same key.
		canon, err := wldsl.CanonicalBytes(spec)
		if err != nil {
			t.Fatal(err)
		}
		reparsed, err := wldsl.Parse(bytes.NewReader(reorderSpecJSON(t, canon)))
		if err != nil {
			t.Fatalf("reordered spec did not parse: %v", err)
		}
		k2, err := ScenarioKey(reparsed, prof, sc, runSeed)
		if err != nil {
			t.Fatal(err)
		}
		if k1 != k2 {
			t.Fatalf("key unstable under JSON field reordering: %s vs %s", k1.Short(), k2.Short())
		}

		// Distinctness: perturbing any one input component changes the key.
		if kSeed, _ := ScenarioKey(spec, prof, sc, runSeed+1); kSeed == k1 {
			t.Fatal("distinct seeds collided")
		}
		other := fuzzPlatforms[(int(platIdx)+1)%len(fuzzPlatforms)]
		if kPlat, _ := ScenarioKey(spec, other, sc, runSeed); kPlat == k1 {
			t.Fatal("distinct platforms collided")
		}
		otherSc := fuzzScenario((faultIdx%3 + 1) % 3)
		if kFault, _ := ScenarioKey(spec, prof, otherSc, runSeed); kFault == k1 {
			t.Fatal("distinct fault scenarios collided")
		}
	})
}
