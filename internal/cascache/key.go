// Package cascache is the content-addressed ensemble cache: run once,
// serve millions. PRs 1-9 made every simulated run a pure function of
// (workload spec, platform, faults, seed) with byte-identical
// artifacts at any worker count and on both sim paths — so the run's
// full artifact set can be memoized under a canonical scenario key and
// replayed instead of recomputed.
//
// The package has three layers:
//
//   - the key (this file): SHA-256 over length-framed canonical
//     sections — the wldsl canonical encoding, the platform profile
//     with sim-path-irrelevant fields excluded, the fault scenario's
//     canonical bytes, and the seed — versioned with SchemaEpoch so a
//     format change invalidates every old entry cleanly;
//   - the on-disk store (store.go): one directory per key holding the
//     artifact files plus a digest manifest, published by
//     write-tempdir-then-rename so readers never observe a partial
//     entry, with an append-only index file;
//   - the in-process MRU layer (mru.go): a small map-free
//     move-to-front slice in the shape of flownet's memo cache, so a
//     campaign's repeated scenarios are served without touching disk.
//
// The contract is the strong one ROADMAP names: a cache hit is
// byte-identical to a fresh run. Every artifact is digest-checked on
// read, so a corrupted blob is detected and treated as a miss, never
// served (make cache-golden and the poisoned-store tests pin both
// halves).
//
// cascache is host-side plumbing — it lives strictly above the sim
// layer, next to runpool, and nothing in it can reach a run's bytes
// except by storing and returning them verbatim.
package cascache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"math"

	"ensembleio/internal/cluster"
	"ensembleio/internal/faults"
	"ensembleio/internal/wldsl"
)

// SchemaEpoch versions the whole cache format: the key derivation
// rules, the artifact set a capture produces, and the on-disk layout.
// Bump it whenever any of those change — old entries then live under a
// different epoch directory and can never be served to a new binary.
const SchemaEpoch = 1

// Key is a canonical scenario identity: the SHA-256 of the scenario's
// framed canonical sections. Two scenarios share a key if and only if
// they are the same pure-function input to the simulator (modulo the
// deliberately excluded sim-path-irrelevant fields, which cannot reach
// the artifacts' bytes).
type Key [sha256.Size]byte

// Hex returns the key's full lowercase hex form (the on-disk entry
// directory name).
func (k Key) Hex() string { return hex.EncodeToString(k[:]) }

// Short returns the key's first 8 hex digits — enough to disambiguate
// artifact file names within one batch, short enough to read.
func (k Key) Short() string { return hex.EncodeToString(k[:4]) }

// Builder accumulates named, length-framed sections into a Key.
// Framing (uvarint name length, name, uvarint data length, data)
// makes the preimage unambiguous: no concatenation of sections can
// collide with a different section split.
type Builder struct {
	h       hash.Hash
	scratch [binary.MaxVarintLen64]byte
}

// NewBuilder returns a Builder seeded with the cache magic and the
// schema epoch, so keys from different epochs never collide.
func NewBuilder() *Builder {
	b := &Builder{h: sha256.New()}
	b.h.Write([]byte("ensembleio/cascache\x00"))
	b.writeUvarint(SchemaEpoch)
	return b
}

func (b *Builder) writeUvarint(v uint64) {
	n := binary.PutUvarint(b.scratch[:], v)
	b.h.Write(b.scratch[:n])
}

// Section feeds one named byte section into the key.
func (b *Builder) Section(name string, data []byte) *Builder {
	b.writeUvarint(uint64(len(name)))
	b.h.Write([]byte(name))
	b.writeUvarint(uint64(len(data)))
	b.h.Write(data)
	return b
}

// Int64 feeds a named integer section (decimal encoding, so the
// preimage is readable in principle).
func (b *Builder) Int64(name string, v int64) *Builder {
	return b.Section(name, []byte(fmt.Sprintf("%d", v)))
}

// Float64 feeds a named float section by exact bit pattern — one ulp
// of difference is a different key, mirroring the fingerprint
// discipline of flownet's memo cache.
func (b *Builder) Float64(name string, v float64) *Builder {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], math.Float64bits(v))
	return b.Section(name, buf[:])
}

// Key finalizes the builder.
func (b *Builder) Key() Key {
	var k Key
	b.h.Sum(k[:0])
	return k
}

// CanonicalPlatform returns the platform profile's canonical bytes
// for key derivation: the profile JSON in struct field order, with the
// sim-path-irrelevant fields excluded. AnalyticOff is the one such
// field — the analytic fast path and the pure event path produce
// byte-identical artifacts (enforced by make fastpath-ablation), so a
// run cached under either setting serves both.
func CanonicalPlatform(prof cluster.Profile) ([]byte, error) {
	prof.AnalyticOff = false
	return json.Marshal(prof)
}

// ScenarioKey derives the canonical key of one solo workload run: the
// spec's canonical wldsl encoding, the platform, the fault scenario's
// canonical bytes, and the seed. Collection mode and telemetry are
// deliberately absent — they select which artifacts get *written*,
// never what their bytes are (the capture contract records the full
// set regardless).
func ScenarioKey(spec *wldsl.Spec, prof cluster.Profile, sc *faults.Scenario, seed int64) (Key, error) {
	wl, err := wldsl.CanonicalBytes(spec)
	if err != nil {
		return Key{}, fmt.Errorf("cascache: workload section: %w", err)
	}
	plat, err := CanonicalPlatform(prof)
	if err != nil {
		return Key{}, fmt.Errorf("cascache: platform section: %w", err)
	}
	fb, err := faults.Canonical(sc)
	if err != nil {
		return Key{}, fmt.Errorf("cascache: faults section: %w", err)
	}
	return NewBuilder().
		Section("workload", wl).
		Section("platform", plat).
		Section("faults", fb).
		Int64("seed", seed).
		Key(), nil
}
