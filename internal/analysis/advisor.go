package analysis

import (
	"fmt"
	"math"
	"sort"

	"ensembleio/internal/ensemble"
	"ensembleio/internal/ipmio"
	"ensembleio/internal/sim"
)

// Severity ranks a finding.
type Severity int

// Severity levels.
const (
	Info Severity = iota
	Warning
	Critical
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Critical:
		return "critical"
	}
	return "unknown"
}

// Finding is one diagnosis produced by the advisor.
type Finding struct {
	Code     string // stable identifier, e.g. "node-serialization"
	Severity Severity
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("[%s] %s: %s", f.Severity, f.Code, f.Message)
}

// DiagnoseConfig parametrizes the advisor.
type DiagnoseConfig struct {
	// StripeBytes for alignment checks (default 1e6).
	StripeBytes int64
	// SmallIOBytes: writes at or below this are metadata-class
	// (default 64 KiB).
	SmallIOBytes int64
	// SaturationWriters: the number of concurrent writers known to
	// saturate the I/O subsystem (default 80, the Franklin figure
	// quoted in §V).
	SaturationWriters int
	// CoresPerNode maps ranks to nodes under block assignment, for
	// node-local signatures (default 4).
	CoresPerNode int
	// Marks are the run's phase boundaries. The phase-correlated
	// detectors (intermittent-stall, background-contention) stay
	// silent without them.
	Marks []ipmio.PhaseMark
	// Wall bounds the final phase (0 = inferred from the last event).
	Wall sim.Duration
	// OSTRates is the server-side per-OST view from lustre.Stats;
	// straggler-OST localization cross-checks the trace ensemble
	// against it and stays silent without it.
	OSTRates []OSTRate
}

// OSTRate is one OST's server-side service observation.
type OSTRate struct {
	MBps float64 // mean observed per-stream service rate
	MB   float64 // megabytes served
}

func (c *DiagnoseConfig) defaults() {
	if c.StripeBytes == 0 {
		c.StripeBytes = 1e6
	}
	if c.SmallIOBytes == 0 {
		c.SmallIOBytes = 64 << 10
	}
	if c.SaturationWriters == 0 {
		c.SaturationWriters = 80
	}
	if c.CoresPerNode == 0 {
		c.CoresPerNode = 4
	}
}

// Diagnose inspects a merged trace for the bottleneck signatures of
// the paper's case studies and returns its findings, most severe
// first.
func Diagnose(events []ipmio.Event, cfg DiagnoseConfig) []Finding {
	cfg.defaults()
	var out []Finding
	if f, ok := diagnoseMultiModalWrites(events); ok {
		out = append(out, f)
	}
	if f, ok := diagnoseReadTail(events); ok {
		out = append(out, f)
	}
	if f, ok := diagnoseStridedReads(events); ok {
		out = append(out, f)
	}
	if f, ok := diagnoseSerializedMetadata(events, cfg); ok {
		out = append(out, f)
	}
	if f, ok := diagnoseMisalignment(events, cfg); ok {
		out = append(out, f)
	}
	if f, ok := diagnoseWriterOversubscription(events, cfg); ok {
		out = append(out, f)
	}
	if f, ok := diagnoseSingleRankSerializer(events); ok {
		out = append(out, f)
	}
	if f, ok := diagnoseStragglerOST(events, cfg); ok {
		out = append(out, f)
	}
	if f, ok := diagnoseSlowNode(events, cfg); ok {
		out = append(out, f)
	}
	if f, ok := diagnoseIntermittentStall(events, cfg); ok {
		out = append(out, f)
	}
	if f, ok := diagnoseMDSBrownout(events); ok {
		out = append(out, f)
	}
	if f, ok := diagnoseBackgroundContention(events, cfg); ok {
		out = append(out, f)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Severity > out[j].Severity })
	return out
}

// diagnoseMultiModalWrites flags the Figure-1c signature: several
// well-separated modes in the large-write duration distribution,
// indicating node-level serialization of client write-back.
func diagnoseMultiModalWrites(events []ipmio.Event) (Finding, bool) {
	d := Durations(events, func(e ipmio.Event) bool {
		return e.Op == ipmio.OpWrite && e.Bytes >= 16e6
	})
	if d.Len() < 50 {
		return Finding{}, false
	}
	h := ensemble.NewHistogram(ensemble.LinearBins(0, d.Max()*1.001, 80))
	h.AddAll(d)
	modes := h.Modes(ensemble.ModeOpts{MinProminence: 0.12, MinMass: 0.05})
	if len(modes) < 2 {
		return Finding{}, false
	}
	return Finding{
		Code:     "node-serialization",
		Severity: Warning,
		Message: fmt.Sprintf("write durations are %d-modal (strongest modes at %.1fs and %.1fs): node-level client scheduling serializes task streams; splitting transfers into more, smaller calls averages tasks toward fair share (Law of Large Numbers)",
			len(modes), modes[0].Center, modes[1].Center),
	}, true
}

// diagnoseReadTail flags a heavy right tail in read durations — the
// MADbench-on-Franklin signature.
func diagnoseReadTail(events []ipmio.Event) (Finding, bool) {
	d := Durations(events, IsOp(ipmio.OpRead))
	if d.Len() < 20 {
		return Finding{}, false
	}
	med, p99 := d.Quantile(0.5), d.Quantile(0.99)
	if med <= 0 || p99/med < 8 {
		return Finding{}, false
	}
	return Finding{
		Code:     "read-tail",
		Severity: Critical,
		Message: fmt.Sprintf("read durations have a heavy right tail (p99 %.1fs vs median %.1fs, %.0fx): a subset of reads is pathologically slow; inspect per-phase CDFs for progressive deterioration",
			p99, med, p99/med),
	}, true
}

// diagnoseStridedReads detects the constant-stride read pattern that
// arms Lustre's strided read-ahead detection.
func diagnoseStridedReads(events []ipmio.Event) (Finding, bool) {
	// Per (rank, fd): check successive read offsets for constant
	// non-sequential stride.
	type key struct{ rank, fd int }
	last := make(map[key][2]int64) // last offset, last stride
	matched := 0
	total := 0
	for _, e := range events {
		if e.Op != ipmio.OpRead || e.Bytes <= 0 {
			continue
		}
		k := key{e.Rank, e.FD}
		prev, ok := last[k]
		if ok {
			stride := e.Offset - prev[0]
			if stride != 0 && stride != e.Bytes { // non-sequential
				total++
				if stride == prev[1] {
					matched++
				}
			}
			last[k] = [2]int64{e.Offset, stride}
		} else {
			last[k] = [2]int64{e.Offset, 0}
		}
	}
	if total < 10 || float64(matched)/float64(total) < 0.6 {
		return Finding{}, false
	}
	return Finding{
		Code:     "strided-reads",
		Severity: Warning,
		Message: fmt.Sprintf("reads follow a constant-stride pattern (%d/%d strides match): this arms strided read-ahead detection in the file system; combined with memory pressure from interleaved writes it can degenerate to page-sized reads",
			matched, total),
	}, true
}

// diagnoseSerializedMetadata flags many small writes concentrated on
// few ranks — the GCRM baseline signature.
func diagnoseSerializedMetadata(events []ipmio.Event, cfg DiagnoseConfig) (Finding, bool) {
	small := 0
	smallTime := 0.0
	ranks := make(map[int]int)
	var minStart, maxEnd float64
	first := true
	for _, e := range events {
		if e.Op != ipmio.OpWrite {
			continue
		}
		s, en := float64(e.Start), float64(e.Start+e.Dur)
		if first || s < minStart {
			minStart = s
		}
		if first || en > maxEnd {
			maxEnd = en
		}
		first = false
		if e.Bytes > 0 && e.Bytes <= cfg.SmallIOBytes {
			small++
			smallTime += float64(e.Dur)
			ranks[e.Rank]++
		}
	}
	span := maxEnd - minStart
	if small < 50 || span <= 0 {
		return Finding{}, false
	}
	// Small writes funneled through few ranks serialize, so their
	// cumulative time is paid in wall-clock; compare against the span
	// of all write activity.
	frac := smallTime / span
	if frac < 0.15 || len(ranks) > 4 {
		return Finding{}, false
	}
	return Finding{
		Code:     "serialized-metadata",
		Severity: Critical,
		Message: fmt.Sprintf("%d sub-%dKB writes from %d rank(s) consume ~%.0f%% of the write-activity span: aggregate metadata into one large deferred write at close",
			small, cfg.SmallIOBytes>>10, len(ranks), frac*100),
	}, true
}

// diagnoseMisalignment flags sized transfers that are not stripe
// aligned.
func diagnoseMisalignment(events []ipmio.Event, cfg DiagnoseConfig) (Finding, bool) {
	mis, total := 0, 0
	for _, e := range events {
		if e.Op != ipmio.OpWrite || e.Bytes <= cfg.SmallIOBytes {
			continue
		}
		total++
		if e.Offset%cfg.StripeBytes != 0 || e.Bytes%cfg.StripeBytes != 0 {
			mis++
		}
	}
	if total < 20 {
		return Finding{}, false
	}
	frac := float64(mis) / float64(total)
	if frac < 0.5 {
		return Finding{}, false
	}
	return Finding{
		Code:     "misaligned-writes",
		Severity: Warning,
		Message: fmt.Sprintf("%.0f%% of data writes are not aligned to the %d-byte stripe: partial-stripe RPCs bounce extent locks between clients; pad and align records to stripe boundaries",
			frac*100, cfg.StripeBytes),
	}, true
}

// diagnoseWriterOversubscription flags far more concurrent writers
// than the I/O subsystem needs for saturation.
func diagnoseWriterOversubscription(events []ipmio.Event, cfg DiagnoseConfig) (Finding, bool) {
	writers := make(map[int]bool)
	for _, e := range events {
		if e.Op == ipmio.OpWrite && e.Bytes > cfg.SmallIOBytes {
			writers[e.Rank] = true
		}
	}
	n := len(writers)
	if n < cfg.SaturationWriters*8 {
		return Finding{}, false
	}
	return Finding{
		Code:     "writer-oversubscription",
		Severity: Warning,
		Message: fmt.Sprintf("%d ranks write concurrently but ~%d writers saturate the I/O subsystem: aggregate data to a writer subset (collective buffering, ~%dx fewer writers)",
			n, cfg.SaturationWriters, int(math.Max(1, float64(n/cfg.SaturationWriters)))),
	}, true
}

// diagnoseSingleRankSerializer flags runs whose span is dominated by
// periods where exactly one rank is doing I/O while every other rank
// idles — the Figure 6(g) signature, independent of what the solo
// rank is writing.
func diagnoseSingleRankSerializer(events []ipmio.Event) (Finding, bool) {
	rank, frac, ok := Serializer(events, 0.25)
	if !ok {
		return Finding{}, false
	}
	return Finding{
		Code:     "single-rank-serialization",
		Severity: Critical,
		Message: fmt.Sprintf("rank %d is the only rank doing I/O for %.0f%% of the run span: its serial work gates every barrier; parallelize or defer it",
			rank, frac*100),
	}, true
}

// Reproducibility quantifies the paper's central stability claim for
// two runs of the same experiment: the KS distance between their
// ensembles. Below 0.1 the ensembles are operationally identical.
func Reproducibility(a, b *ensemble.Dataset) (ks float64, reproducible bool) {
	ks = ensemble.KS(a, b)
	return ks, ks < 0.1
}
