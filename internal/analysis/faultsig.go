package analysis

import (
	"fmt"
	"sort"
	"strings"

	"ensembleio/internal/ipmio"
)

// This file holds the fault-signature detectors: diagnoses for the
// degradations internal/faults can inject, driven purely by ensemble
// statistics of the trace (cross-checked, where available, against the
// server-side per-OST view). Each detector is the recognition half of
// a labeled fixture — DESIGN.md §9 tabulates fault → signature.

// dataOp selects sized data operations (reads and writes above the
// metadata-class threshold).
func dataOp(smallIO int64) func(ipmio.Event) bool {
	return func(e ipmio.Event) bool {
		return (e.Op == ipmio.OpWrite || e.Op == ipmio.OpRead) && e.Bytes > smallIO
	}
}

// rankMedians returns each rank's median sized-data-op duration. Ranks
// are returned sorted ascending so map iteration order never reaches
// the caller.
func rankMedians(events []ipmio.Event, smallIO int64) (ranks []int, med map[int]float64) {
	byRank := make(map[int][]float64)
	keep := dataOp(smallIO)
	for _, e := range events {
		if keep(e) {
			byRank[e.Rank] = append(byRank[e.Rank], float64(e.Dur))
		}
	}
	med = make(map[int]float64, len(byRank))
	for r, ds := range byRank {
		ranks = append(ranks, r)
		sort.Float64s(ds)
		med[r] = ds[len(ds)/2]
	}
	sort.Ints(ranks)
	return ranks, med
}

// slowRanks partitions ranks into those whose median sized-op duration
// is at least thresh times the global median of rank medians.
func slowRanks(ranks []int, med map[int]float64, thresh float64) (slow []int, global float64) {
	all := make([]float64, 0, len(ranks))
	for _, r := range ranks {
		all = append(all, med[r])
	}
	sort.Float64s(all)
	global = all[len(all)/2]
	if global <= 0 {
		return nil, global
	}
	for _, r := range ranks {
		if med[r] >= thresh*global {
			slow = append(slow, r)
		}
	}
	return slow, global
}

// diagnoseStragglerOST recognizes a degraded object storage target
// from the two-sided evidence the paper's methodology prescribes: the
// trace ensemble shows a heavy right mode whose population fraction
// matches the fraction of bytes striped onto one OST, and the
// server-side per-OST statistics confirm that exactly that OST serves
// far below the median rate. Localization names the OST index.
func diagnoseStragglerOST(events []ipmio.Event, cfg DiagnoseConfig) (Finding, bool) {
	if len(cfg.OSTRates) < 2 {
		return Finding{}, false
	}
	ranks, med := rankMedians(events, cfg.SmallIOBytes)
	if len(ranks) < 16 {
		return Finding{}, false
	}
	slow, _ := slowRanks(ranks, med, 3)
	frac := float64(len(slow)) / float64(len(ranks))
	if len(slow) == 0 || frac > 0.5 {
		return Finding{}, false
	}

	// Server-side cross-check: one OST's mean service rate is far
	// below the median OST's.
	var rates []float64
	totalMB := 0.0
	for _, o := range cfg.OSTRates {
		if o.MB > 0 {
			rates = append(rates, o.MBps)
			totalMB += o.MB
		}
	}
	if len(rates) < 2 || totalMB <= 0 {
		return Finding{}, false
	}
	sort.Float64s(rates)
	medRate := rates[len(rates)/2]
	minIdx, minRate := -1, medRate
	for i, o := range cfg.OSTRates {
		if o.MB > 0 && o.MBps < minRate {
			minIdx, minRate = i, o.MBps
		}
	}
	if minIdx < 0 || minRate > 0.5*medRate {
		return Finding{}, false
	}

	// Mass check: the slow subpopulation's size must match the bytes
	// striped onto the straggler (within a factor of 3 — stripe-count
	// 1 makes it exact, wider stripes blur it).
	share := cfg.OSTRates[minIdx].MB / totalMB
	if share <= 0 || frac/share < 1.0/3 || frac/share > 3 {
		return Finding{}, false
	}
	return Finding{
		Code:     "straggler-ost",
		Severity: Critical,
		Message: fmt.Sprintf("OST %d serves at %.0f MB/s against a %.0f MB/s median OST, and the %.1f%% of ranks running >=3x slower than the median match its %.1f%% byte share: a straggler OST; migrate or deactivate OST %d",
			minIdx, minRate, medRate, frac*100, share*100, minIdx),
	}, true
}

// diagnoseSlowNode recognizes a degraded node link: the slow-rank
// subpopulation maps exactly onto one compute node's ranks (a striping
// straggler scatters slow ranks across nodes instead).
func diagnoseSlowNode(events []ipmio.Event, cfg DiagnoseConfig) (Finding, bool) {
	ranks, med := rankMedians(events, cfg.SmallIOBytes)
	if len(ranks) < 16 || cfg.CoresPerNode <= 0 {
		return Finding{}, false
	}
	slow, _ := slowRanks(ranks, med, 3)
	if len(slow) == 0 || len(slow) > cfg.CoresPerNode ||
		float64(len(slow))/float64(len(ranks)) > 0.25 {
		return Finding{}, false
	}
	node := slow[0] / cfg.CoresPerNode
	for _, r := range slow[1:] {
		if r/cfg.CoresPerNode != node {
			return Finding{}, false
		}
	}
	// Every active rank of that node must be slow — one slow rank on a
	// healthy node is an application imbalance, not a link fault.
	onNode := 0
	for _, r := range ranks {
		if r/cfg.CoresPerNode == node {
			onNode++
		}
	}
	if onNode < 2 || len(slow) != onNode {
		return Finding{}, false
	}
	return Finding{
		Code:     "slow-node",
		Severity: Critical,
		Message: fmt.Sprintf("all %d ranks of node %d (ranks %d-%d) run >=3x slower than the median while every other node is healthy: a degraded node link; drain the node or reroute its traffic",
			onNode, node, node*cfg.CoresPerNode, node*cfg.CoresPerNode+cfg.CoresPerNode-1),
	}, true
}

// phaseDurations returns, per phase, the sized-data-op durations.
func phaseDurations(events []ipmio.Event, cfg DiagnoseConfig, keep func(ipmio.Event) bool) []struct {
	name string
	durs []float64
} {
	wall := cfg.Wall
	for _, e := range events {
		if end := e.Start + e.Dur; end > wall {
			wall = end
		}
	}
	phases := Phases(events, cfg.Marks, wall)
	out := make([]struct {
		name string
		durs []float64
	}, 0, len(phases))
	for _, ph := range phases {
		var ds []float64
		for _, e := range ph.Events {
			if keep(e) {
				ds = append(ds, float64(e.Dur))
			}
		}
		sort.Float64s(ds)
		out = append(out, struct {
			name string
			durs []float64
		}{ph.Name, ds})
	}
	return out
}

func quantileSorted(ds []float64, q float64) float64 {
	if len(ds) == 0 {
		return 0
	}
	i := int(q * float64(len(ds)-1))
	return ds[i]
}

// diagnoseIntermittentStall recognizes a flaky resource from a bimodal
// per-phase ensemble with phase-correlated onset: some phases carry a
// minority tail of calls several times the phase median while other
// phases are clean, and the tail magnitude does not grow phase over
// phase (progressive growth is the read-ahead defect's signature, not
// a stall window's).
func diagnoseIntermittentStall(events []ipmio.Event, cfg DiagnoseConfig) (Finding, bool) {
	if len(cfg.Marks) < 3 {
		return Finding{}, false
	}
	// A heavy global read tail is the §IV read-ahead pathology, whose
	// per-phase deterioration mimics stall windows; let the dominant
	// diagnosis speak alone.
	if reads := Durations(events, IsOp(ipmio.OpRead)); reads.Len() >= 20 {
		if med := reads.Quantile(0.5); med > 0 && reads.Quantile(0.99)/med >= 8 {
			return Finding{}, false
		}
	}
	phases := phaseDurations(events, cfg, dataOp(cfg.SmallIOBytes))
	var stalledNames []string
	var tailMeds []float64
	clean := 0
	for _, ph := range phases {
		n := len(ph.durs)
		if n < 8 {
			continue
		}
		med := ph.durs[n/2]
		if med <= 0 {
			continue
		}
		tailStart := sort.SearchFloat64s(ph.durs, 3*med)
		tail := ph.durs[tailStart:]
		frac := float64(len(tail)) / float64(n)
		if frac < 0.05 {
			clean++
			continue
		}
		// A stalled phase carries a substantial minority tail far above
		// its own median (>=5x keeps partially burst-covered phases,
		// whose tails sit near 3-4x, from qualifying).
		if frac >= 0.1 && frac <= 0.5 {
			tailMed := tail[len(tail)/2]
			if tailMed >= 5*med {
				stalledNames = append(stalledNames, ph.name)
				tailMeds = append(tailMeds, tailMed)
			}
		}
	}
	if len(stalledNames) == 0 || clean == 0 {
		return Finding{}, false
	}
	// Non-progressive gate: across stalled phases the tail magnitude
	// stays within 4x — a stall window revisits the same severity.
	lo, hi := tailMeds[0], tailMeds[0]
	for _, t := range tailMeds[1:] {
		if t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	if lo <= 0 || hi/lo >= 4 {
		return Finding{}, false
	}
	return Finding{
		Code:     "intermittent-stall",
		Severity: Warning,
		Message: fmt.Sprintf("phases %s carry a minority tail of calls >=3x the phase median while %d phase(s) stay clean, at stable tail magnitude: an intermittently stalling resource (flaky OST or controller); correlate the stall windows with storage health logs",
			strings.Join(stalledNames, ", "), clean),
	}, true
}

// diagnoseMDSBrownout recognizes a browned-out metadata service from
// the open/close ensemble alone: metadata operations at seconds scale.
// Queue drain in a healthy open storm stays well under this (16-wide
// service at ~1 ms/op), so the threshold is absolute.
func diagnoseMDSBrownout(events []ipmio.Event) (Finding, bool) {
	d := Durations(events, func(e ipmio.Event) bool {
		return e.Op == ipmio.OpOpen || e.Op == ipmio.OpClose
	})
	if d.Len() < 16 {
		return Finding{}, false
	}
	med, p95 := d.Quantile(0.5), d.Quantile(0.95)
	if med < 2.0 && !(p95 >= 5 && med > 0 && p95/med >= 10) {
		return Finding{}, false
	}
	return Finding{
		Code:     "mds-brownout",
		Severity: Critical,
		Message: fmt.Sprintf("metadata operations run at seconds scale (median %.1fs, p95 %.1fs across %d ops): the metadata service is browned out (reduced concurrency and/or lock-revocation storms); reduce open/close pressure and check MDS health",
			med, p95, d.Len()),
	}, true
}

// diagnoseBackgroundContention recognizes competing external load:
// whole phases slow down together — the entire distribution shifts,
// lower quartile included — and later phases recover. A flaky OST
// instead leaves the lower quartile in place and a read-ahead defect
// never recovers.
func diagnoseBackgroundContention(events []ipmio.Event, cfg DiagnoseConfig) (Finding, bool) {
	if len(cfg.Marks) < 3 {
		return Finding{}, false
	}
	// A heavy read tail (the §IV pathology) confounds per-phase write
	// medians; let the dominant diagnosis speak alone.
	if reads := Durations(events, IsOp(ipmio.OpRead)); reads.Len() >= 20 {
		if med := reads.Quantile(0.5); med > 0 && reads.Quantile(0.99)/med >= 8 {
			return Finding{}, false
		}
	}
	phases := phaseDurations(events, cfg, func(e ipmio.Event) bool {
		return e.Op == ipmio.OpWrite && e.Bytes > cfg.SmallIOBytes
	})
	type phStat struct {
		name     string
		med, p25 float64
	}
	var stats []phStat
	for _, ph := range phases {
		if len(ph.durs) < 8 {
			continue
		}
		stats = append(stats, phStat{ph.name, ph.durs[len(ph.durs)/2], quantileSorted(ph.durs, 0.25)})
	}
	if len(stats) < 3 {
		return Finding{}, false
	}
	// Reference the median of phase medians, not the minimum: write-back
	// cache absorption makes the very first phase unrepresentatively
	// fast, and a minimum reference would compare every later phase
	// against that warmup artifact.
	refMeds := make([]float64, 0, len(stats))
	refP25s := make([]float64, 0, len(stats))
	for _, s := range stats {
		refMeds = append(refMeds, s.med)
		refP25s = append(refP25s, s.p25)
	}
	sort.Float64s(refMeds)
	sort.Float64s(refP25s)
	refMed := quantileSorted(refMeds, 0.5)
	refP25 := quantileSorted(refP25s, 0.5)
	if refMed <= 0 || refP25 <= 0 {
		return Finding{}, false
	}
	var slowNames []string
	lastSlow, lastClean := -1, -1
	for i, s := range stats {
		switch {
		case s.med >= 2*refMed && s.p25 >= 1.3*refP25:
			slowNames = append(slowNames, s.name)
			lastSlow = i
		case s.med <= 1.3*refMed:
			lastClean = i
		}
	}
	// Contention comes and goes: require a recovery after a slow phase.
	if len(slowNames) == 0 || lastClean < lastSlow {
		return Finding{}, false
	}
	return Finding{
		Code:     "background-contention",
		Severity: Warning,
		Message: fmt.Sprintf("phases %s are uniformly slowed (median >=2x and lower quartile >=1.3x the typical phase) and later phases recover: competing external load on the shared file system; check co-scheduled jobs before blaming the application",
			strings.Join(slowNames, ", ")),
	}, true
}
