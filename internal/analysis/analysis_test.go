package analysis

import (
	"math"
	"strings"
	"testing"

	"ensembleio/internal/ensemble"
	"ensembleio/internal/ipmio"
	"ensembleio/internal/sim"
)

func TestPhasesAssignEvents(t *testing.T) {
	events := []ipmio.Event{
		{Op: ipmio.OpWrite, Start: 1},
		{Op: ipmio.OpWrite, Start: 5},
		{Op: ipmio.OpWrite, Start: 12},
	}
	marks := []ipmio.PhaseMark{{Name: "w1", T: 0}, {Name: "w2", T: 4}, {Name: "w3", T: 10}}
	ph := Phases(events, marks, 20)
	if len(ph) != 3 {
		t.Fatalf("%d phases, want 3", len(ph))
	}
	for i, want := range []int{1, 1, 1} {
		if len(ph[i].Events) != want {
			t.Errorf("phase %d has %d events, want %d", i, len(ph[i].Events), want)
		}
	}
	if ph[1].StartT != 4 || ph[1].EndT != 10 {
		t.Errorf("phase 1 bounds [%v,%v), want [4,10)", ph[1].StartT, ph[1].EndT)
	}
}

func TestPhasesNoMarks(t *testing.T) {
	events := []ipmio.Event{{Start: 1}, {Start: 2}}
	ph := Phases(events, nil, 5)
	if len(ph) != 1 || len(ph[0].Events) != 2 {
		t.Errorf("no-mark phases wrong: %+v", ph)
	}
}

func TestPhasesPrePhase(t *testing.T) {
	events := []ipmio.Event{{Start: 0.5}, {Start: 2}}
	marks := []ipmio.PhaseMark{{Name: "main", T: 1}}
	ph := Phases(events, marks, 5)
	if len(ph) != 2 || ph[0].Name != "pre" || len(ph[0].Events) != 1 {
		t.Errorf("pre-phase handling wrong: %+v", ph)
	}
}

func TestRateSeriesConservesBytes(t *testing.T) {
	events := []ipmio.Event{
		{Op: ipmio.OpWrite, Bytes: 100e6, Start: 0, Dur: 2},
		{Op: ipmio.OpWrite, Bytes: 50e6, Start: 1, Dur: 1},
	}
	s := RateSeries(events, nil, 0.5, 4)
	totalMB := 0.0
	for _, v := range s.Values {
		totalMB += v * float64(s.Dt)
	}
	if math.Abs(totalMB-150) > 1 {
		t.Errorf("series carries %.1f MB, want 150", totalMB)
	}
	// Peak during the overlap second: 50 + 50 = 100 MB/s.
	if math.Abs(s.Peak()-100) > 5 {
		t.Errorf("peak %.1f MB/s, want ~100", s.Peak())
	}
}

func TestRateSeriesFilter(t *testing.T) {
	events := []ipmio.Event{
		{Op: ipmio.OpWrite, Bytes: 100e6, Start: 0, Dur: 1},
		{Op: ipmio.OpRead, Bytes: 400e6, Start: 0, Dur: 1},
	}
	s := RateSeries(events, IsOp(ipmio.OpRead), 0.5, 2)
	if math.Abs(s.Peak()-400) > 10 {
		t.Errorf("filtered peak %.1f, want ~400 (reads only)", s.Peak())
	}
}

func TestSecPerMB(t *testing.T) {
	events := []ipmio.Event{
		{Op: ipmio.OpWrite, Bytes: 2e6, Dur: 4},  // 2 s/MB
		{Op: ipmio.OpWrite, Bytes: 10e6, Dur: 1}, // 0.1 s/MB
		{Op: ipmio.OpWrite, Bytes: 0, Dur: 1},    // unsized: skipped
	}
	d := SecPerMB(events, nil)
	if d.Len() != 2 {
		t.Fatalf("len %d, want 2", d.Len())
	}
	if math.Abs(d.Max()-2) > 1e-9 || math.Abs(d.Min()-0.1) > 1e-9 {
		t.Errorf("sec/MB values wrong: %v", d.Values())
	}
}

func TestTraceDiagramShape(t *testing.T) {
	events := []ipmio.Event{
		{Rank: 0, Op: ipmio.OpWrite, Bytes: 1e6, Start: 0, Dur: 5},
		{Rank: 3, Op: ipmio.OpRead, Bytes: 1e6, Start: 5, Dur: 5},
	}
	dia := TraceDiagram(events, 4, 10, 4, 10)
	lines := strings.Split(strings.TrimRight(dia, "\n"), "\n")
	if len(lines) != 4 || len(lines[0]) != 10 {
		t.Fatalf("diagram shape %dx%d, want 4x10", len(lines), len(lines[0]))
	}
	if lines[0][0] != 'W' {
		t.Errorf("rank 0 early cells = %q, want 'W'", lines[0][0])
	}
	if lines[3][7] != 'R' {
		t.Errorf("rank 3 late cells = %q, want 'R'", lines[3][7])
	}
	if lines[1][0] != '.' {
		t.Errorf("idle cell = %q, want '.'", lines[1][0])
	}
}

// Synthetic trace builders for advisor tests.

func multiModalWrites(n int) []ipmio.Event {
	g := sim.NewRNG(1)
	var out []ipmio.Event
	for i := 0; i < n; i++ {
		var d float64
		switch i % 3 {
		case 0:
			d = g.Normal(8, 0.4)
		case 1:
			d = g.Normal(16, 0.6)
		default:
			d = g.Normal(32, 1.0)
		}
		out = append(out, ipmio.Event{Rank: i, Op: ipmio.OpWrite, Bytes: 512e6, Offset: int64(i) * 512e6, Start: 0, Dur: sim.Duration(d)})
	}
	return out
}

func TestDiagnoseNodeSerialization(t *testing.T) {
	f := Diagnose(multiModalWrites(600), DiagnoseConfig{})
	if !hasCode(f, "node-serialization") {
		t.Errorf("multi-modal writes not diagnosed: %v", f)
	}
}

func TestDiagnoseReadTailAndStride(t *testing.T) {
	g := sim.NewRNG(2)
	var events []ipmio.Event
	for rank := 0; rank < 16; rank++ {
		for i := 0; i < 8; i++ {
			d := g.Normal(5, 0.3)
			if i >= 4 {
				d = 60 * float64(i-3) * g.Lognormal(0, 0.1)
			}
			events = append(events, ipmio.Event{
				Rank: rank, FD: 3, Op: ipmio.OpRead, Bytes: 300e6,
				Offset: int64(i) * 301e6, Start: sim.Time(i * 10), Dur: sim.Duration(d),
			})
		}
	}
	f := Diagnose(events, DiagnoseConfig{})
	if !hasCode(f, "read-tail") {
		t.Errorf("heavy read tail not diagnosed: %v", f)
	}
	if !hasCode(f, "strided-reads") {
		t.Errorf("strided pattern not diagnosed: %v", f)
	}
	// Critical findings sort first.
	if len(f) > 1 && f[0].Severity < f[1].Severity {
		t.Error("findings not sorted by severity")
	}
}

func TestDiagnoseSerializedMetadataAndMisalignmentAndOversubscription(t *testing.T) {
	g := sim.NewRNG(3)
	var events []ipmio.Event
	// 2000 data writers, all unaligned.
	for rank := 0; rank < 2000; rank++ {
		events = append(events, ipmio.Event{
			Rank: rank, Op: ipmio.OpWrite, Bytes: 1600000,
			Offset: int64(rank) * 1600000, Start: 0, Dur: sim.Duration(g.Lognormal(0, 0.2) * 2),
		})
	}
	// Rank 0 spews small metadata writes that dominate time.
	for i := 0; i < 500; i++ {
		events = append(events, ipmio.Event{
			Rank: 0, Op: ipmio.OpWrite, Bytes: 2048,
			Offset: int64(i) * 2048, Start: sim.Time(10 + i), Dur: 5,
		})
	}
	f := Diagnose(events, DiagnoseConfig{})
	for _, code := range []string{"serialized-metadata", "misaligned-writes", "writer-oversubscription"} {
		if !hasCode(f, code) {
			t.Errorf("missing finding %q in %v", code, f)
		}
	}
}

func TestDiagnoseCleanTraceQuiet(t *testing.T) {
	g := sim.NewRNG(4)
	var events []ipmio.Event
	for rank := 0; rank < 64; rank++ {
		events = append(events, ipmio.Event{
			Rank: rank, Op: ipmio.OpWrite, Bytes: 64e6,
			Offset: int64(rank) * 64e6, Start: 0, Dur: sim.Duration(g.Normal(4, 0.2)),
		})
	}
	if f := Diagnose(events, DiagnoseConfig{}); len(f) != 0 {
		t.Errorf("clean trace produced findings: %v", f)
	}
}

func TestReproducibility(t *testing.T) {
	g := sim.NewRNG(5)
	mk := func(shift float64) *ensemble.Dataset {
		d := ensemble.NewDataset(nil)
		for i := 0; i < 3000; i++ {
			d.Add(g.Normal(10+shift, 2))
		}
		return d
	}
	if _, ok := Reproducibility(mk(0), mk(0)); !ok {
		t.Error("same distribution judged not reproducible")
	}
	if _, ok := Reproducibility(mk(0), mk(5)); ok {
		t.Error("shifted distribution judged reproducible")
	}
}

func hasCode(fs []Finding, code string) bool {
	for _, f := range fs {
		if f.Code == code {
			return true
		}
	}
	return false
}
