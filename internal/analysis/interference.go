package analysis

import (
	"sort"

	"ensembleio/internal/ipmio"
)

// This file holds the LASSi-style interference metrics for multi-tenant
// co-scheduled runs (internal/tenancy): per-tenant I/O-time shares,
// contention-attribution windows over the shared OSTs, overlap-weighted
// slowdown against each tenant's solo baseline, and the victim/
// aggressor ranking built from all three. Everything here is a pure
// function of its inputs — fixed-order slice iteration, no maps in
// output paths, no wall-clock — so a report serializes byte-identically
// across schedulers and the analytic fast path.

// TenantObs is one tenant's observation bundle, assembled by the
// session driver (internal/tenancy) from the co-run and the tenant's
// solo baseline.
type TenantObs struct {
	// Name is the tenant's label in the report.
	Name string
	// StartSec / EndSec delimit the tenant's window in the co-run's
	// virtual time (staggered start to last-rank finish).
	StartSec float64
	EndSec   float64
	// SoloSec is the tenant's solo makespan on the same machine, seed,
	// and fault scenario — the slowdown denominator.
	SoloSec float64
	// Events is the tenant's co-run trace (absolute virtual-time
	// starts). Optional: with no trace the tenant counts as active over
	// its whole window.
	Events []ipmio.Event
	// IOSeconds is the tenant's total traced I/O time (sum of event
	// durations); derived from Events when they are present.
	IOSeconds float64
	// OSTSeconds / OSTMB are the tenant's attributed per-OST busy
	// seconds and bytes from the shared mount's tenant accounting
	// (lustre.TenantUsage.PerOST). Optional; used for shared-OST
	// attribution.
	OSTSeconds []float64
	OSTMB      []float64
}

// InterferenceConfig tunes the metric thresholds. The zero value
// selects the defaults.
type InterferenceConfig struct {
	// BinSec is the activity-histogram bin width (default 1s of
	// virtual time).
	BinSec float64
	// SlowdownMin is the minimum co-run/solo slowdown for a tenant to
	// be reported as a victim (default 1.15).
	SlowdownMin float64
	// OverlapMin is the minimum fraction of the victim's active bins
	// the aggressor must overlap (default 0.05).
	OverlapMin float64
	// TopOSTs caps the shared-OST attribution list per pair
	// (default 4).
	TopOSTs int
}

func (c InterferenceConfig) withDefaults() InterferenceConfig {
	if c.BinSec <= 0 {
		c.BinSec = 1
	}
	if c.SlowdownMin <= 0 {
		c.SlowdownMin = 1.15
	}
	if c.OverlapMin <= 0 {
		c.OverlapMin = 0.05
	}
	if c.TopOSTs <= 0 {
		c.TopOSTs = 4
	}
	return c
}

// TenantMetrics is one tenant's share of the co-run.
type TenantMetrics struct {
	Name string `json:"name"`
	// StartSec/EndSec echo the tenant's co-run window.
	StartSec float64 `json:"start_sec"`
	EndSec   float64 `json:"end_sec"`
	// DurationSec is the tenant's co-run makespan (end - start).
	DurationSec float64 `json:"duration_sec"`
	// SoloSec is the solo-baseline makespan; Slowdown is
	// DurationSec/SoloSec (1.0 = no interference effect, 0 when no
	// baseline was provided).
	SoloSec  float64 `json:"solo_sec"`
	Slowdown float64 `json:"slowdown"`
	// IOSeconds is the tenant's total traced I/O time; IOTimeShare is
	// its fraction of all tenants' I/O time — the LASSi-style
	// "who is driving the file system" share.
	IOSeconds   float64 `json:"io_seconds"`
	IOTimeShare float64 `json:"io_time_share"`
	// OSTBusyShare is the tenant's fraction of all attributed per-OST
	// busy seconds (0 when no OST accounting was provided).
	OSTBusyShare float64 `json:"ost_busy_share"`
}

// ContentionWindow is a maximal span of virtual time during which at
// least two tenants were concurrently active.
type ContentionWindow struct {
	StartSec float64 `json:"start_sec"`
	EndSec   float64 `json:"end_sec"`
	// Tenants lists the tenants active anywhere in the window, in
	// observation order.
	Tenants []string `json:"tenants"`
}

// InterferencePair is one ranked victim/aggressor finding.
type InterferencePair struct {
	Victim    string `json:"victim"`
	Aggressor string `json:"aggressor"`
	// Slowdown is the victim's co-run/solo ratio; OverlapFrac is the
	// fraction of the victim's active time the aggressor was also
	// active. Score = (Slowdown-1) * OverlapFrac ranks the pairs.
	Slowdown    float64 `json:"slowdown"`
	OverlapFrac float64 `json:"overlap_frac"`
	Score       float64 `json:"score"`
	// SharedOSTs lists the OSTs both tenants drove hardest, ranked by
	// the smaller of the two busy-second attributions (the contended
	// capacity), capped at TopOSTs.
	SharedOSTs []int `json:"shared_osts,omitempty"`
}

// InterferenceReport is the full LASSi-style analysis artifact.
type InterferenceReport struct {
	Tenants []TenantMetrics    `json:"tenants"`
	Windows []ContentionWindow `json:"contention_windows,omitempty"`
	Ranking []InterferencePair `json:"ranking,omitempty"`
}

// Interference computes the report from per-tenant observations. The
// observation order fixes every output order (tenant metrics, window
// tenant lists); the ranking is sorted by score descending with
// victim/aggressor names as the tie-break.
func Interference(obs []TenantObs, cfg InterferenceConfig) *InterferenceReport {
	cfg = cfg.withDefaults()
	rep := &InterferenceReport{}
	if len(obs) == 0 {
		return rep
	}

	// Activity histogram: for each tenant, the fraction of each BinSec
	// bin covered by traced I/O (or by the whole window when no trace
	// was provided).
	end := 0.0
	for i := range obs {
		if obs[i].EndSec > end {
			end = obs[i].EndSec
		}
	}
	nBins := int(end/cfg.BinSec) + 1
	activity := make([][]float64, len(obs))
	for i := range obs {
		activity[i] = tenantActivity(&obs[i], nBins, cfg.BinSec)
	}

	// Per-tenant metrics.
	totalIO, totalBusy := 0.0, 0.0
	busy := make([]float64, len(obs))
	for i := range obs {
		o := &obs[i]
		if o.Events != nil {
			o.IOSeconds = 0
			for j := range o.Events {
				o.IOSeconds += float64(o.Events[j].Dur)
			}
		}
		totalIO += o.IOSeconds
		for _, s := range o.OSTSeconds {
			busy[i] += s
		}
		totalBusy += busy[i]
	}
	for i := range obs {
		o := &obs[i]
		m := TenantMetrics{
			Name:        o.Name,
			StartSec:    o.StartSec,
			EndSec:      o.EndSec,
			DurationSec: o.EndSec - o.StartSec,
			SoloSec:     o.SoloSec,
			IOSeconds:   o.IOSeconds,
		}
		if o.SoloSec > 0 {
			m.Slowdown = m.DurationSec / o.SoloSec
		}
		if totalIO > 0 {
			m.IOTimeShare = o.IOSeconds / totalIO
		}
		if totalBusy > 0 {
			m.OSTBusyShare = busy[i] / totalBusy
		}
		rep.Tenants = append(rep.Tenants, m)
	}

	rep.Windows = contentionWindows(obs, activity, cfg.BinSec)
	rep.Ranking = rankPairs(obs, activity, cfg)
	return rep
}

// tenantActivity fills the tenant's per-bin active fraction: traced
// event durations smeared over the bins they cover, clamped to 1 per
// bin; a traceless tenant is fully active over [StartSec, EndSec).
func tenantActivity(o *TenantObs, nBins int, binSec float64) []float64 {
	act := make([]float64, nBins)
	if len(o.Events) == 0 {
		smear(act, o.StartSec, o.EndSec, binSec)
	} else {
		for i := range o.Events {
			e := &o.Events[i]
			smear(act, float64(e.Start), float64(e.Start+e.Dur), binSec)
		}
	}
	for i := range act {
		if act[i] > 1 {
			act[i] = 1
		}
	}
	return act
}

// smear adds the [t0, t1) interval's coverage fraction into each bin it
// touches.
func smear(act []float64, t0, t1, binSec float64) {
	if t1 <= t0 {
		return
	}
	b0, b1 := int(t0/binSec), int(t1/binSec)
	if b0 >= len(act) {
		return
	}
	if b1 >= len(act) {
		b1 = len(act) - 1
	}
	for b := b0; b <= b1; b++ {
		lo, hi := float64(b)*binSec, float64(b+1)*binSec
		if t0 > lo {
			lo = t0
		}
		if t1 < hi {
			hi = t1
		}
		if hi > lo {
			act[b] += (hi - lo) / binSec
		}
	}
}

// active reports whether a tenant meaningfully used the bin: at least
// 1% coverage, so a single microscopic close op does not count a
// tenant into a contention window.
func active(frac float64) bool { return frac >= 0.01 }

// contentionWindows merges consecutive bins with >= 2 active tenants
// into maximal windows, tagging each with the union of tenants active
// anywhere inside it (observation order).
func contentionWindows(obs []TenantObs, activity [][]float64, binSec float64) []ContentionWindow {
	var wins []ContentionWindow
	nBins := 0
	if len(activity) > 0 {
		nBins = len(activity[0])
	}
	inWin := false
	var start int
	var present []bool
	flush := func(endBin int) {
		w := ContentionWindow{StartSec: float64(start) * binSec, EndSec: float64(endBin) * binSec}
		for i := range obs {
			if present[i] {
				w.Tenants = append(w.Tenants, obs[i].Name)
			}
		}
		wins = append(wins, w)
	}
	for b := 0; b < nBins; b++ {
		n := 0
		for i := range activity {
			if active(activity[i][b]) {
				n++
			}
		}
		if n >= 2 {
			if !inWin {
				inWin = true
				start = b
				present = make([]bool, len(obs))
			}
			for i := range activity {
				if active(activity[i][b]) {
					present[i] = true
				}
			}
		} else if inWin {
			inWin = false
			flush(b)
		}
	}
	if inWin {
		flush(nBins)
	}
	return wins
}

// rankPairs scores every ordered (victim, aggressor) pair and keeps
// those clearing both thresholds, sorted by score descending (names
// break ties).
func rankPairs(obs []TenantObs, activity [][]float64, cfg InterferenceConfig) []InterferencePair {
	var pairs []InterferencePair
	for v := range obs {
		if obs[v].SoloSec <= 0 {
			continue
		}
		slowdown := (obs[v].EndSec - obs[v].StartSec) / obs[v].SoloSec
		if slowdown < cfg.SlowdownMin {
			continue
		}
		vAct := activity[v]
		vBins := 0
		for _, f := range vAct {
			if active(f) {
				vBins++
			}
		}
		if vBins == 0 {
			continue
		}
		for a := range obs {
			if a == v {
				continue
			}
			both := 0
			for b := range vAct {
				if active(vAct[b]) && active(activity[a][b]) {
					both++
				}
			}
			overlap := float64(both) / float64(vBins)
			if overlap < cfg.OverlapMin {
				continue
			}
			pairs = append(pairs, InterferencePair{
				Victim:      obs[v].Name,
				Aggressor:   obs[a].Name,
				Slowdown:    slowdown,
				OverlapFrac: overlap,
				Score:       (slowdown - 1) * overlap,
				SharedOSTs:  sharedOSTs(&obs[v], &obs[a], cfg.TopOSTs),
			})
		}
	}
	sort.SliceStable(pairs, func(i, j int) bool {
		if pairs[i].Score != pairs[j].Score { //lint:allow(floateq) sort comparator needs exact ordering for determinism
			return pairs[i].Score > pairs[j].Score
		}
		if pairs[i].Victim != pairs[j].Victim {
			return pairs[i].Victim < pairs[j].Victim
		}
		return pairs[i].Aggressor < pairs[j].Aggressor
	})
	return pairs
}

// sharedOSTs ranks the OSTs both tenants drove, by the smaller of the
// two busy-second attributions (the capacity genuinely contended),
// descending, OST index ascending on ties, capped at top.
func sharedOSTs(v, a *TenantObs, top int) []int {
	n := len(v.OSTSeconds)
	if len(a.OSTSeconds) < n {
		n = len(a.OSTSeconds)
	}
	type cand struct {
		ost int
		min float64
	}
	var cands []cand
	for i := 0; i < n; i++ {
		m := v.OSTSeconds[i]
		if a.OSTSeconds[i] < m {
			m = a.OSTSeconds[i]
		}
		if m > 0 {
			cands = append(cands, cand{ost: i, min: m})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].min != cands[j].min { //lint:allow(floateq) sort comparator needs exact ordering for determinism
			return cands[i].min > cands[j].min
		}
		return cands[i].ost < cands[j].ost
	})
	if len(cands) > top {
		cands = cands[:top]
	}
	osts := make([]int, len(cands))
	for i, c := range cands {
		osts[i] = c.ost
	}
	return osts
}
