// Package analysis applies the ensemble methodology to IPM-I/O
// traces: slicing runs into barrier-delimited phases, computing the
// aggregate-rate time series and trace diagrams of the paper's
// figures, and diagnosing the bottleneck signatures the case studies
// isolate (node-serialized write scheduling, strided read-ahead
// pathology, serialized metadata, misalignment, writer over-
// subscription).
package analysis

import (
	"ensembleio/internal/ensemble"
	"ensembleio/internal/ipmio"
	"ensembleio/internal/sim"
)

// Phase is one slice of a run between consecutive phase marks.
type Phase struct {
	Name   string
	StartT sim.Time
	EndT   sim.Time
	Events []ipmio.Event
}

// Phases splits events into the intervals delimited by marks (which
// must be in time order); end closes the final phase. Events are
// assigned by start time. Events before the first mark are grouped
// into a synthetic "pre" phase if any exist.
func Phases(events []ipmio.Event, marks []ipmio.PhaseMark, end sim.Time) []Phase {
	var phases []Phase
	if len(marks) == 0 {
		return []Phase{{Name: "all", StartT: 0, EndT: end, Events: events}}
	}
	if len(events) > 0 && events[0].Start < marks[0].T {
		phases = append(phases, Phase{Name: "pre", StartT: 0, EndT: marks[0].T})
	}
	for i, m := range marks {
		e := end
		if i+1 < len(marks) {
			e = marks[i+1].T
		}
		phases = append(phases, Phase{Name: m.Name, StartT: m.T, EndT: e})
	}
	for _, ev := range events {
		for i := range phases {
			if ev.Start >= phases[i].StartT && (ev.Start < phases[i].EndT || i == len(phases)-1) {
				phases[i].Events = append(phases[i].Events, ev)
				break
			}
		}
	}
	return phases
}

// Durations extracts the durations of events matching the filter (nil
// accepts all) as an ensemble dataset.
func Durations(events []ipmio.Event, filter func(ipmio.Event) bool) *ensemble.Dataset {
	d := ensemble.NewDataset(nil)
	for _, ev := range events {
		if filter == nil || filter(ev) {
			d.Add(float64(ev.Dur))
		}
	}
	return d
}

// SecPerMB extracts size-normalized durations (seconds per MB) of
// sized events matching the filter — the normalization of the GCRM
// histograms, which mix record and metadata transfer sizes.
func SecPerMB(events []ipmio.Event, filter func(ipmio.Event) bool) *ensemble.Dataset {
	d := ensemble.NewDataset(nil)
	for _, ev := range events {
		if ev.Bytes <= 0 || ev.Dur <= 0 {
			continue
		}
		if filter == nil || filter(ev) {
			d.Add(float64(ev.Dur) / (float64(ev.Bytes) / 1e6))
		}
	}
	return d
}

// IsOp returns a filter selecting one op type.
func IsOp(op ipmio.Op) func(ipmio.Event) bool {
	return func(e ipmio.Event) bool { return e.Op == op }
}
