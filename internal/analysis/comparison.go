package analysis

import (
	"fmt"
	"math"

	"ensembleio/internal/ensemble"
	"ensembleio/internal/ipmio"
)

// Run comparison: the reproducibility methodology as a library call.
// Two runs of the same experiment should have per-operation duration
// ensembles that agree within sampling noise, even though their traces
// differ event by event.

// OpComparison is the distance between two runs' ensembles for one op.
type OpComparison struct {
	Op          ipmio.Op
	NA, NB      int
	KS          float64
	Wasserstein float64
	// Threshold is the KS limit this pair was judged against.
	Threshold float64
	Same      bool
}

func (o OpComparison) String() string {
	verdict := "same"
	if !o.Same {
		verdict = "DIFFERENT"
	}
	return fmt.Sprintf("%s: n=%d/%d KS=%.3f (limit %.3f) W=%.3f -> %s",
		o.Op, o.NA, o.NB, o.KS, o.Threshold, o.Wasserstein, verdict)
}

// Comparison aggregates per-op comparisons into a verdict.
type Comparison struct {
	Ops []OpComparison
	// Reproducible is true when every compared op's ensembles are
	// statistically indistinguishable.
	Reproducible bool
}

// KSCriticalValue returns the two-sample Kolmogorov-Smirnov critical
// value at significance alpha for sample sizes nA, nB:
// c(alpha) * sqrt((nA+nB)/(nA*nB)) with c = sqrt(-ln(alpha/2)/2).
func KSCriticalValue(alpha float64, nA, nB int) float64 {
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	return c * math.Sqrt(float64(nA+nB)/(float64(nA)*float64(nB)))
}

// CompareEvents compares two traces op by op. ksThreshold fixes the
// verdict limit; pass 0 for the adaptive alpha=0.001 critical value
// (floored at 0.1). Ops with fewer than minEvents samples on either
// side are skipped (minEvents <= 0 selects 20).
func CompareEvents(a, b []ipmio.Event, ksThreshold float64, minEvents int) Comparison {
	if minEvents <= 0 {
		minEvents = 20
	}
	out := Comparison{Reproducible: true}
	for op := ipmio.OpOpen; op <= ipmio.OpFsync; op++ {
		dA := Durations(a, IsOp(op))
		dB := Durations(b, IsOp(op))
		if dA.Len() < minEvents || dB.Len() < minEvents {
			continue
		}
		limit := ksThreshold
		if limit <= 0 {
			limit = KSCriticalValue(0.001, dA.Len(), dB.Len())
			if limit < 0.1 {
				limit = 0.1
			}
		}
		ks := ensemble.KS(dA, dB)
		oc := OpComparison{
			Op: op, NA: dA.Len(), NB: dB.Len(),
			KS: ks, Wasserstein: ensemble.Wasserstein(dA, dB),
			Threshold: limit, Same: ks < limit,
		}
		if !oc.Same {
			out.Reproducible = false
		}
		out.Ops = append(out.Ops, oc)
	}
	return out
}
