package analysis

import (
	"sort"

	"ensembleio/internal/ipmio"
	"ensembleio/internal/sim"
)

// Gap analysis: the white space of a trace diagram, quantified. In
// Figure 6(g) the decisive observation is that "the total run time was
// dominated by the serialized metadata operations on task 0" — i.e.
// long periods where a single rank is busy while every other rank
// idles. This file computes per-rank activity, idle gaps, and the
// exclusive-activity attribution that names such a serializer.

// RankActivity summarizes one rank's share of the run.
type RankActivity struct {
	Rank   int
	Events int
	// Busy is the union length of the rank's event intervals.
	Busy sim.Duration
	// Exclusive is the length of time this rank was the ONLY busy
	// rank in the whole job.
	Exclusive sim.Duration
}

// Gap is one idle interval of a rank between consecutive events.
type Gap struct {
	Rank  int
	Start sim.Time
	End   sim.Time
}

// Dur returns the gap length.
func (g Gap) Dur() sim.Duration { return g.End - g.Start }

// Gaps returns each rank's idle intervals longer than minGap, between
// its first and last event.
func Gaps(events []ipmio.Event, minGap sim.Duration) []Gap {
	byRank := make(map[int][]ipmio.Event)
	for _, e := range events {
		byRank[e.Rank] = append(byRank[e.Rank], e)
	}
	var out []Gap
	for _, rank := range sortedRanks(byRank) {
		evs := byRank[rank]
		sort.Slice(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })
		var lastEnd sim.Time
		first := true
		for _, e := range evs {
			if !first && e.Start-lastEnd > minGap {
				out = append(out, Gap{Rank: rank, Start: lastEnd, End: e.Start})
			}
			if end := e.Start + e.Dur; first || end > lastEnd {
				lastEnd = end
			}
			first = false
		}
	}
	sort.Slice(out, func(i, j int) bool {
		//lint:allow(floateq) sort comparators need exact ordering for determinism
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

// sortedRanks returns the map's keys in increasing order, so
// iteration over per-rank aggregates is deterministic.
func sortedRanks[V any](m map[int]V) []int {
	ranks := make([]int, 0, len(m))
	for r := range m {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	return ranks
}

// RankActivities computes per-rank busy and exclusive-busy time with a
// single boundary sweep over all event intervals.
func RankActivities(events []ipmio.Event) []RankActivity {
	if len(events) == 0 {
		return nil
	}
	type boundary struct {
		t     sim.Time
		rank  int
		delta int
	}
	var bounds []boundary
	counts := make(map[int]int) // events per rank
	for _, e := range events {
		counts[e.Rank]++
		if e.Dur <= 0 {
			continue
		}
		bounds = append(bounds, boundary{t: e.Start, rank: e.Rank, delta: +1})
		bounds = append(bounds, boundary{t: e.Start + e.Dur, rank: e.Rank, delta: -1})
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i].t < bounds[j].t })

	depth := make(map[int]int) // per-rank overlap depth
	since := make(map[int]sim.Time)
	active := make(map[int]struct{})
	busy := make(map[int]sim.Duration)
	exclusive := make(map[int]sim.Duration)
	soloRank := -1
	var soloSince sim.Time
	for i := 0; i < len(bounds); {
		t := bounds[i].t
		// Apply all boundaries at this instant; account per-rank busy
		// time and job-wide exclusive time only at transitions.
		//lint:allow(floateq) grouping boundaries at the bit-identical instant is intended
		for i < len(bounds) && bounds[i].t == t {
			b := bounds[i]
			was := depth[b.rank]
			depth[b.rank] = was + b.delta
			now := depth[b.rank]
			if was == 0 && now > 0 {
				since[b.rank] = t
				active[b.rank] = struct{}{}
			}
			if was > 0 && now == 0 {
				busy[b.rank] += t - since[b.rank]
				delete(active, b.rank)
			}
			i++
		}
		// Exclusive tracking: close any ended solo period, open a new
		// one when exactly one rank remains busy.
		if soloRank >= 0 && (len(active) != 1 || depth[soloRank] == 0) {
			exclusive[soloRank] += t - soloSince
			soloRank = -1
		}
		if soloRank < 0 && len(active) == 1 {
			for r := range active {
				soloRank = r //lint:allow(maporder) active holds exactly one rank here
			}
			soloSince = t
		}
	}

	var out []RankActivity
	for _, rank := range sortedRanks(counts) {
		out = append(out, RankActivity{
			Rank:      rank,
			Events:    counts[rank],
			Busy:      busy[rank],
			Exclusive: exclusive[rank],
		})
	}
	return out
}

// Serializer names the rank whose exclusive activity dominates the
// run: the single-rank bottleneck of Figure 6(g). It returns the rank,
// the fraction of the event span it held exclusively, and ok=true when
// that fraction exceeds threshold (e.g. 0.25).
func Serializer(events []ipmio.Event, threshold float64) (rank int, frac float64, ok bool) {
	acts := RankActivities(events)
	if len(acts) < 2 {
		return 0, 0, false
	}
	var minStart, maxEnd sim.Time
	first := true
	for _, e := range events {
		if first || e.Start < minStart {
			minStart = e.Start
		}
		if end := e.Start + e.Dur; first || end > maxEnd {
			maxEnd = end
		}
		first = false
	}
	span := maxEnd - minStart
	if span <= 0 {
		return 0, 0, false
	}
	best := acts[0]
	for _, a := range acts[1:] {
		if a.Exclusive > best.Exclusive {
			best = a
		}
	}
	frac = float64(best.Exclusive / span)
	return best.Rank, frac, frac >= threshold
}
