package analysis

import (
	"testing"

	"ensembleio/internal/ipmio"
	"ensembleio/internal/sim"
)

func syntheticEvents(seed int64, n int, mean float64) []ipmio.Event {
	g := sim.NewRNG(seed)
	out := make([]ipmio.Event, n)
	for i := range out {
		out[i] = ipmio.Event{
			Rank: i % 32, Op: ipmio.OpWrite, Bytes: 1e6,
			Start: sim.Time(i), Dur: sim.Duration(g.Lognormal(0, 0.3) * mean),
		}
	}
	return out
}

func TestCompareEventsSameDistribution(t *testing.T) {
	a := syntheticEvents(1, 2000, 5)
	b := syntheticEvents(2, 2000, 5)
	c := CompareEvents(a, b, 0, 0)
	if !c.Reproducible {
		t.Errorf("same-distribution traces judged different: %+v", c.Ops)
	}
	if len(c.Ops) != 1 || c.Ops[0].Op != ipmio.OpWrite {
		t.Fatalf("ops compared: %+v", c.Ops)
	}
	if c.Ops[0].KS >= c.Ops[0].Threshold {
		t.Errorf("KS %v above threshold %v", c.Ops[0].KS, c.Ops[0].Threshold)
	}
}

func TestCompareEventsShiftedDistribution(t *testing.T) {
	a := syntheticEvents(1, 2000, 5)
	b := syntheticEvents(2, 2000, 8) // 60% slower
	c := CompareEvents(a, b, 0, 0)
	if c.Reproducible {
		t.Error("shifted traces judged reproducible")
	}
}

func TestCompareEventsSkipsSparseOps(t *testing.T) {
	a := syntheticEvents(1, 2000, 5)
	b := syntheticEvents(2, 2000, 5)
	// A handful of reads on one side only: must be skipped, not judged.
	a = append(a, ipmio.Event{Op: ipmio.OpRead, Bytes: 1e6, Dur: 1})
	c := CompareEvents(a, b, 0, 0)
	for _, oc := range c.Ops {
		if oc.Op == ipmio.OpRead {
			t.Error("sparse op compared")
		}
	}
}

func TestCompareEventsFixedThreshold(t *testing.T) {
	a := syntheticEvents(1, 100, 5)
	b := syntheticEvents(2, 100, 5)
	c := CompareEvents(a, b, 0.9999, 0) // absurdly lax: everything same
	if !c.Reproducible {
		t.Error("lax threshold still judged different")
	}
	c = CompareEvents(a, b, 1e-9, 0) // absurdly strict: everything differs
	if c.Reproducible {
		t.Error("strict threshold judged same")
	}
}

func TestKSCriticalValueShrinksWithN(t *testing.T) {
	small := KSCriticalValue(0.001, 100, 100)
	big := KSCriticalValue(0.001, 10000, 10000)
	if big >= small {
		t.Errorf("critical value %v at n=10000 not below %v at n=100", big, small)
	}
	if small < 0.1 || small > 0.5 {
		t.Errorf("critical value at n=100 = %v, implausible", small)
	}
}
