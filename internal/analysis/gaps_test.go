package analysis

import (
	"testing"

	"ensembleio/internal/ipmio"
	"ensembleio/internal/sim"
)

func ev(rank int, start, dur float64) ipmio.Event {
	return ipmio.Event{Rank: rank, Op: ipmio.OpWrite, Bytes: 1e6,
		Start: sim.Time(start), Dur: sim.Duration(dur)}
}

func TestGapsFindsIdleIntervals(t *testing.T) {
	events := []ipmio.Event{
		ev(0, 0, 1),
		ev(0, 5, 1), // gap [1,5]
		ev(0, 6.2, 1),
		ev(1, 0, 7), // no gap
	}
	gaps := Gaps(events, 2)
	if len(gaps) != 1 {
		t.Fatalf("%d gaps, want 1: %+v", len(gaps), gaps)
	}
	g := gaps[0]
	if g.Rank != 0 || g.Start != 1 || g.End != 5 || g.Dur() != 4 {
		t.Errorf("gap = %+v, want rank0 [1,5]", g)
	}
	// Smaller threshold reveals the 0.2s gap too... minGap 0.1:
	if got := len(Gaps(events, 0.1)); got != 2 {
		t.Errorf("minGap=0.1 found %d gaps, want 2", got)
	}
}

func TestRankActivitiesBusyUnion(t *testing.T) {
	events := []ipmio.Event{
		ev(0, 0, 2),
		ev(0, 1, 2), // overlaps: union [0,3] = 3
		ev(1, 10, 1),
	}
	acts := RankActivities(events)
	if len(acts) != 2 {
		t.Fatalf("%d activities, want 2", len(acts))
	}
	if acts[0].Rank != 0 || acts[0].Busy != 3 || acts[0].Events != 2 {
		t.Errorf("rank0 activity = %+v, want busy 3 from 2 events", acts[0])
	}
	if acts[1].Busy != 1 {
		t.Errorf("rank1 busy = %v, want 1", acts[1].Busy)
	}
}

func TestRankActivitiesExclusive(t *testing.T) {
	// ranks 0-3 busy [0,10]; rank 0 alone busy [10,40].
	events := []ipmio.Event{
		ev(0, 0, 10), ev(1, 0, 10), ev(2, 0, 10), ev(3, 0, 10),
		ev(0, 10, 30),
	}
	acts := RankActivities(events)
	for _, a := range acts {
		switch a.Rank {
		case 0:
			if a.Exclusive != 30 {
				t.Errorf("rank0 exclusive = %v, want 30", a.Exclusive)
			}
		default:
			if a.Exclusive != 0 {
				t.Errorf("rank%d exclusive = %v, want 0", a.Rank, a.Exclusive)
			}
		}
	}
}

func TestSerializerDetection(t *testing.T) {
	// The Fig-6g shape: bursts of parallel work, long rank-0 solos.
	var events []ipmio.Event
	tt := 0.0
	for phase := 0; phase < 3; phase++ {
		for rank := 0; rank < 8; rank++ {
			events = append(events, ev(rank, tt, 2))
		}
		tt += 2
		events = append(events, ev(0, tt, 10)) // serialized metadata
		tt += 10
	}
	rank, frac, ok := Serializer(events, 0.25)
	if !ok {
		t.Fatalf("serializer not detected (frac=%v)", frac)
	}
	if rank != 0 {
		t.Errorf("serializer rank %d, want 0", rank)
	}
	if frac < 0.5 { // 30 of 36 seconds are rank-0 solos
		t.Errorf("exclusive fraction %v, want > 0.5", frac)
	}
}

func TestSerializerAbsentInParallelWork(t *testing.T) {
	var events []ipmio.Event
	for rank := 0; rank < 8; rank++ {
		for i := 0; i < 5; i++ {
			events = append(events, ev(rank, float64(i)*2, 2))
		}
	}
	if _, frac, ok := Serializer(events, 0.25); ok {
		t.Errorf("parallel work flagged as serialized (frac=%v)", frac)
	}
}

func TestSerializerDegenerateInputs(t *testing.T) {
	if _, _, ok := Serializer(nil, 0.25); ok {
		t.Error("empty trace flagged")
	}
	if _, _, ok := Serializer([]ipmio.Event{ev(0, 0, 1)}, 0.25); ok {
		t.Error("single-rank trace flagged")
	}
}

func TestRankActivitiesHandlesSoloHandoff(t *testing.T) {
	// Rank 0 solo [0,5), rank 1 solo [5,9) with the handoff at t=5.
	events := []ipmio.Event{ev(0, 0, 5), ev(1, 5, 4)}
	acts := RankActivities(events)
	if acts[0].Exclusive != 5 || acts[1].Exclusive != 4 {
		t.Errorf("handoff exclusives = %v/%v, want 5/4", acts[0].Exclusive, acts[1].Exclusive)
	}
}
