package analysis

import (
	"strings"

	"ensembleio/internal/ipmio"
	"ensembleio/internal/sim"
)

// Series is a regularly sampled time series (e.g. aggregate MB/s).
type Series struct {
	T0     sim.Time
	Dt     sim.Duration
	Values []float64
}

// End returns the time at the end of the last bin.
func (s Series) End() sim.Time { return s.T0 + sim.Time(float64(s.Dt)*float64(len(s.Values))) }

// Peak returns the maximum value.
func (s Series) Peak() float64 {
	m := 0.0
	for _, v := range s.Values {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the average value over the series.
func (s Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// RateSeries computes the instantaneous aggregate data rate across
// all tasks (Figure 1b, 4b/e, 6b/e/h/k): each sized event's bytes are
// spread uniformly over its duration and accumulated into dt-wide
// bins; values are MB/s.
func RateSeries(events []ipmio.Event, filter func(ipmio.Event) bool, dt sim.Duration, end sim.Time) Series {
	if dt <= 0 {
		panic("analysis: RateSeries requires dt > 0")
	}
	n := int(float64(end)/float64(dt)) + 1
	vals := make([]float64, n)
	for _, ev := range events {
		if ev.Bytes <= 0 {
			continue
		}
		if filter != nil && !filter(ev) {
			continue
		}
		dur := float64(ev.Dur)
		if dur <= 0 {
			dur = float64(dt) / 100 // instantaneous: deposit in one bin
		}
		rate := float64(ev.Bytes) / 1e6 / dur // MB/s while active
		t0, t1 := float64(ev.Start), float64(ev.Start)+dur
		i0 := int(t0 / float64(dt))
		i1 := int(t1 / float64(dt))
		for i := i0; i <= i1 && i < n; i++ {
			if i < 0 {
				continue
			}
			binLo := float64(i) * float64(dt)
			binHi := binLo + float64(dt)
			overlap := minF(t1, binHi) - maxF(t0, binLo)
			if overlap > 0 {
				vals[i] += rate * overlap / float64(dt)
			}
		}
	}
	return Series{T0: 0, Dt: dt, Values: vals}
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// TraceDiagram renders the Figure 1a/4a-style trace raster as ASCII:
// one row per band of ranks, one column per time slice. Write
// activity renders 'W' (or 'w' when under half the band is writing),
// reads 'R'/'r', mixed 'M', idle '.'. The diagram is the event-level
// view the ensemble approach complements.
func TraceDiagram(events []ipmio.Event, nRanks, width, height int, end sim.Time) string {
	if width <= 0 || height <= 0 || nRanks <= 0 || end <= 0 {
		return ""
	}
	if height > nRanks {
		height = nRanks
	}
	ranksPerRow := (nRanks + height - 1) / height
	colDt := float64(end) / float64(width)

	// busy[row][col][0]=write fraction accumulator, [1]=read
	busy := make([][][2]float64, height)
	for i := range busy {
		busy[i] = make([][2]float64, width)
	}
	for _, ev := range events {
		if ev.Dur <= 0 || (ev.Op != ipmio.OpRead && ev.Op != ipmio.OpWrite) {
			continue
		}
		row := ev.Rank / ranksPerRow
		if row >= height {
			row = height - 1
		}
		kind := 0
		if ev.Op == ipmio.OpRead {
			kind = 1
		}
		t0, t1 := float64(ev.Start), float64(ev.Start+ev.Dur)
		c0, c1 := int(t0/colDt), int(t1/colDt)
		for c := c0; c <= c1 && c < width; c++ {
			if c < 0 {
				continue
			}
			lo, hi := float64(c)*colDt, float64(c+1)*colDt
			overlap := minF(t1, hi) - maxF(t0, lo)
			if overlap > 0 {
				busy[row][c][kind] += overlap / (colDt * float64(ranksPerRow))
			}
		}
	}

	var b strings.Builder
	for r := 0; r < height; r++ {
		for c := 0; c < width; c++ {
			w, rd := busy[r][c][0], busy[r][c][1]
			switch {
			case w > 0.05 && rd > 0.05:
				b.WriteByte('M')
			case w >= 0.5:
				b.WriteByte('W')
			case w > 0.05:
				b.WriteByte('w')
			case rd >= 0.5:
				b.WriteByte('R')
			case rd > 0.05:
				b.WriteByte('r')
			default:
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
