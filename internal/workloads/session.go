package workloads

import (
	"fmt"

	"ensembleio/internal/cluster"
	"ensembleio/internal/faults"
	"ensembleio/internal/ipmio"
	"ensembleio/internal/lustre"
	"ensembleio/internal/mpi"
	"ensembleio/internal/sim"
	"ensembleio/internal/telemetry"
)

// Session is the multi-tenant face of the platform wiring: one shared
// engine/cluster/lustre/fabric instance that several jobs — tenants —
// run on concurrently with staggered starts. internal/tenancy drives
// it; it lives here so tenants reuse the exact job plumbing (tracer
// construction, makespan tracking, fold conventions) the solo path
// uses.
type Session struct {
	pl *platform
}

// SessionConfig sizes and seeds the shared platform.
type SessionConfig struct {
	Machine cluster.Profile
	// Nodes is the total node count, at least the sum of every
	// tenant's node range.
	Nodes int
	Seed  int64
	// Faults, when non-nil, is the degradation scenario injected into
	// the shared machine before any tenant launches.
	Faults *faults.Scenario
	// Telemetry enables the session's merged metric/span sink.
	Telemetry bool
	// StripeCount is the mount-wide default stripe count for newly
	// created files (0 = stripe over all OSTs). The mount is shared,
	// so striping cannot vary per tenant.
	StripeCount int
}

// NewSession builds the shared platform and applies the fault
// scenario. Add tenants with AddJob, spawn their bodies, then Run.
func NewSession(cfg SessionConfig) *Session {
	pl := newPlatform(cfg.Machine, cfg.Nodes, cfg.Seed, cfg.Telemetry)
	pl.fs.DefaultStripeCount = cfg.StripeCount
	pl.applyFaults(cfg.Faults)
	return &Session{pl: pl}
}

// TenantJobConfig wires one tenant onto the session.
type TenantJobConfig struct {
	// Name tags the tenant's spans ("<name>/...") and counters
	// ("tenant.<name>.*") in the merged telemetry.
	Name string
	// Tasks is the tenant's MPI world size.
	Tasks int
	// NodeBase is the first cluster node of the tenant's block: rank i
	// lands on node NodeBase + i/CoresPerNode. Tenants get disjoint
	// node ranges.
	NodeBase int
	// StartSec is the tenant's staggered start offset in virtual time.
	StartSec float64
	// Mode selects trace and/or profile collection (default TraceMode).
	Mode ipmio.Mode
	// ReserveEvents pre-sizes the tenant's trace buffer (0 skips).
	ReserveEvents int
}

// AddJob attaches a tenant job to the session: a world block-placed on
// the tenant's node range, a fresh collector, and a lustre accounting
// bucket. Call in a fixed order (tenant index order) — world
// construction draws nothing, but span and counter fold order follows
// attachment order.
func (s *Session) AddJob(cfg TenantJobConfig) *Job {
	if cfg.Mode == 0 {
		cfg.Mode = ipmio.TraceMode
	}
	nNodes := (cfg.Tasks + s.pl.cl.Prof.CoresPerNode - 1) / s.pl.cl.Prof.CoresPerNode
	idx := s.pl.fs.RegisterTenant(cfg.NodeBase, nNodes)
	j := s.pl.attach(cfg.Tasks, cfg.Mode, mpi.Config{
		NodeBase:  cfg.NodeBase,
		TelPrefix: "tenant." + cfg.Name + ".",
	})
	j.tenant = cfg.Name
	j.tenantIdx = idx
	j.startAt = sim.Time(cfg.StartSec)
	j.col.Reserve(cfg.ReserveEvents)
	return &Job{j: j}
}

// Run drives the shared engine until every tenant's event activity
// drains. Spawn every tenant first.
func (s *Session) Run() { s.pl.eng.Run() }

// FS exposes the shared mount (per-tenant usage snapshots).
func (s *Session) FS() *lustre.FS { return s.pl.fs }

// Telemetry exposes the session's merged sink (nil-safe no-op when
// telemetry is disabled).
func (s *Session) Telemetry() *telemetry.Sink { return s.pl.tel }

// Fold assembles the session's merged telemetry after Run: the global
// engine/lustre/per-OST sections exactly as a solo run folds them,
// then a per-tenant section for each job in attachment order —
// window, fast-forward share, data-path totals, per-OST byte/stall/
// busy counters — and the span stream in a fixed order: tenant
// windows, per-tenant phases, fault windows, per-tenant I/O calls.
// Every piece is a pure function of the simulated run, so the merged
// snapshot is byte-stable across GOMAXPROCS and the analytic flag.
func (s *Session) Fold(jobs []*Job) (*telemetry.Snapshot, []telemetry.Span) {
	tel := s.pl.tel
	if !tel.Enabled() {
		return nil, nil
	}

	// Session wall: the last tenant's finish.
	wall := 0.0
	for _, J := range jobs {
		if e := float64(J.j.wall); e > wall {
			wall = e
		}
	}

	tel.Counter("sim.events_popped").Add(float64(s.pl.eng.EventsPopped()))
	tel.Counter("sim.events_scheduled").Add(float64(s.pl.eng.EventsScheduled()))
	tel.Gauge("sim.heap_high_water").Set(float64(s.pl.eng.HeapHighWater()))
	tel.Counter("sim.virtual_seconds").Add(wall)
	if ff := s.pl.eng.FastForwardSeconds(); ff > 0 {
		tel.Counter("sim.ff_seconds").Add(ff)
		tel.Counter("sim.ff_jumps").Add(float64(s.pl.eng.FastForwardJumps()))
	}

	st := s.pl.fs.Stats()
	foldLustreCounters(tel, &st)
	stalls := s.pl.scenario.StallSeconds(wall, len(st.PerOST))
	foldPerOST(tel, "lustre.", st.PerOST, stalls)

	for _, J := range jobs {
		j := J.j
		prefix := "tenant." + j.tenant + "."
		start, end := float64(j.started), float64(j.wall)
		tel.Counter(prefix + "start_s").Add(start)
		tel.Counter(prefix + "virtual_seconds").Add(end - start)
		if ff := j.ffEnd - j.ffStart; ff > 0 {
			tel.Counter(prefix + "ff_seconds").Add(ff)
			tel.Counter(prefix + "ff_jumps").Add(float64(j.jumpsEnd - j.jumpsStart))
		}
		u := s.pl.fs.TenantUsage(j.tenantIdx)
		for _, c := range []struct {
			name string
			v    float64
		}{
			{"write_jobs", float64(u.WriteJobs)},
			{"write_mb", u.WriteMB},
			{"read_calls", float64(u.ReadCalls)},
			{"read_mb", u.ReadMB},
		} {
			if c.v != 0 {
				tel.Counter(prefix + c.name).Add(c.v)
			}
		}
		// Per-tenant stall exposure: only the stall seconds inside the
		// tenant's own window count against it.
		var tenantStalls []float64
		if endStalls := s.pl.scenario.StallSeconds(end, len(u.PerOST)); endStalls != nil {
			tenantStalls = endStalls
			if startStalls := s.pl.scenario.StallSeconds(start, len(u.PerOST)); startStalls != nil {
				for i := range tenantStalls {
					tenantStalls[i] -= startStalls[i]
				}
			}
		}
		foldPerOST(tel, prefix, u.PerOST, tenantStalls)
	}

	for _, J := range jobs {
		tel.Span("tenant", J.j.tenant, -1, float64(J.j.started), float64(J.j.wall))
	}
	for _, J := range jobs {
		j := J.j
		marks := j.col.Marks
		for i, m := range marks {
			end := float64(j.wall)
			if i+1 < len(marks) {
				end = float64(marks[i+1].T)
			}
			tel.Span("phase", j.tenant+"/"+m.Name, -1, float64(m.T), end)
		}
	}
	for _, w := range s.pl.scenario.Windows(wall) {
		tel.Span("fault", w.Label, -1, w.T0, w.T1)
	}
	for _, J := range jobs {
		j := J.j
		for i := range j.col.Events {
			e := &j.col.Events[i]
			tel.Span("io", j.tenant+"/"+e.Op.String(), e.Rank, float64(e.Start), float64(e.Start+e.Dur))
		}
	}

	return tel.Snapshot(), tel.Spans()
}

// foldLustreCounters folds the file-system-wide counters, skipping
// zeros (shared with the solo fold).
func foldLustreCounters(tel *telemetry.Sink, st *lustre.Stats) {
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"lustre.write_jobs", float64(st.WriteJobs)},
		{"lustre.write_mb", st.WriteMB},
		{"lustre.read_calls", float64(st.ReadCalls)},
		{"lustre.read_mb", st.ReadMB},
		{"lustre.absorbed_mb", st.AbsorbedMB},
		{"lustre.drain_chunks", float64(st.DrainChunks)},
		{"lustre.conflicts", float64(st.Conflicts)},
		{"lustre.luck_capped", float64(st.LuckCapped)},
		{"lustre.mds_ops", float64(st.MDSOps)},
		{"lustre.mds_slow_ops", float64(st.MDSSlowOps)},
		{"lustre.small_writes", float64(st.SmallWrites)},
	} {
		if c.v != 0 {
			tel.Counter(c.name).Add(c.v)
		}
	}
}

// foldPerOST folds one per-OST stat block under the given name prefix,
// skipping OSTs with no streams and no stall exposure.
func foldPerOST(tel *telemetry.Sink, prefix string, per []lustre.OSTStat, stalls []float64) {
	for i := range per {
		o := &per[i]
		stall := 0.0
		if stalls != nil {
			stall = stalls[i]
		}
		if o.Streams == 0 && stall == 0 {
			continue
		}
		ostPrefix := fmt.Sprintf("%sost%03d.", prefix, i)
		tel.Counter(ostPrefix + "streams").Add(float64(o.Streams))
		tel.Counter(ostPrefix + "mb").Add(o.MB)
		tel.Counter(ostPrefix + "seconds").Add(o.Seconds)
		if stall > 0 {
			tel.Counter(ostPrefix + "stall_s").Add(stall)
		}
	}
}
