package workloads

import (
	"fmt"

	"ensembleio/internal/cluster"
	"ensembleio/internal/faults"
	"ensembleio/internal/ipmio"
	"ensembleio/internal/posixio"
)

// IORConfig parametrizes the Interleaved-Or-Random micro-benchmark as
// used in §III: every task writes BlockBytes to its unique offset in a
// shared file, in BlockBytes/TransferBytes successive write calls,
// followed by a barrier; the whole phase repeats Reps times.
type IORConfig struct {
	Machine cluster.Profile
	Tasks   int
	// BlockBytes per task per repetition (paper: 512 MB).
	BlockBytes int64
	// TransferBytes per write call (512, 256, 128, 64 MB in Fig 1-2).
	TransferBytes int64
	// Reps is the number of synchronous phases (paper: 5).
	Reps int
	// ReadBack adds a final phase in which every task reads its block
	// back in the same transfer sizes (IOR's read test).
	ReadBack bool
	// FilePerProcess gives each task its own file instead of a unique
	// region of one shared file (IOR's -F mode). File-per-process
	// avoids all shared-file extent-lock contention at the cost of a
	// metadata storm and N files to manage.
	FilePerProcess bool
	// StripeCount overrides the stripe count of newly created files
	// (0 = stripe over all OSTs). File-per-process straggler studies
	// use 1 to pin each task's file to a single OST.
	StripeCount int
	// Faults, when non-nil, is the degradation scenario injected into
	// the machine before the run (see internal/faults).
	Faults *faults.Scenario
	// Seed selects the run (different seeds = different runs of the
	// same experiment).
	Seed int64
	// Mode selects trace and/or profile collection.
	Mode ipmio.Mode
	// Path of the shared file.
	Path string
	// Telemetry enables the run's deterministic metric/span sink
	// (Run.Telemetry, Run.Spans).
	Telemetry bool
}

func (c *IORConfig) defaults() {
	if c.BlockBytes == 0 {
		c.BlockBytes = 512e6
	}
	if c.TransferBytes == 0 {
		c.TransferBytes = c.BlockBytes
	}
	if c.Reps == 0 {
		c.Reps = 1
	}
	if c.Mode == 0 {
		c.Mode = ipmio.TraceMode
	}
	if c.Path == "" {
		c.Path = "/scratch/ior.dat"
	}
	if c.Tasks == 0 {
		c.Tasks = 1024
	}
}

// RunIOR executes the benchmark and returns its artifact.
func RunIOR(cfg IORConfig) *Run {
	cfg.defaults()
	if cfg.BlockBytes%cfg.TransferBytes != 0 {
		panic("workloads: IOR block must be a multiple of the transfer size")
	}
	k := int(cfg.BlockBytes / cfg.TransferBytes)

	flags := posixio.OCreat | posixio.OWronly
	if cfg.ReadBack {
		flags = posixio.OCreat | posixio.ORdwr
	}
	j := newJob(cfg.Machine, cfg.Tasks, cfg.Seed, cfg.Mode, cfg.Telemetry)
	j.fs.DefaultStripeCount = cfg.StripeCount
	j.applyFaults(cfg.Faults)
	// Every rank records one open, Reps*k writes, k reads when reading
	// back, and one close; pre-size the trace buffer to the full run.
	perRank := 2 + cfg.Reps*k
	if cfg.ReadBack {
		perRank += k
	}
	j.col.Reserve(cfg.Tasks * perRank)
	j.launch(func(r *mpiRank, tr *tracer) {
		path := cfg.Path
		base := int64(r.ID) * cfg.BlockBytes
		if cfg.FilePerProcess {
			path = fmt.Sprintf("%s.%05d", cfg.Path, r.ID)
			base = 0
		}
		fd, err := tr.Open(r.P, path, flags)
		if err != nil {
			panic(err)
		}
		// Synchronize after the open storm so phase marks precede all
		// phase I/O (IOR also barriers before its timed section).
		r.Barrier()
		for rep := 0; rep < cfg.Reps; rep++ {
			j.mark(r, fmt.Sprintf("write-phase-%d", rep))
			for i := 0; i < k; i++ {
				off := base + int64(i)*cfg.TransferBytes
				if _, err := tr.Pwrite(r.P, fd, off, cfg.TransferBytes); err != nil {
					panic(err)
				}
			}
			r.Barrier()
		}
		if cfg.ReadBack {
			j.mark(r, "read-phase")
			for i := 0; i < k; i++ {
				off := base + int64(i)*cfg.TransferBytes
				if n, err := tr.Pread(r.P, fd, off, cfg.TransferBytes); err != nil || n != cfg.TransferBytes {
					panic(fmt.Sprintf("ior readback: n=%d err=%v", n, err))
				}
			}
			r.Barrier()
		}
		if err := tr.Close(r.P, fd); err != nil {
			panic(err)
		}
	})

	total := int64(cfg.Tasks) * cfg.BlockBytes * int64(cfg.Reps)
	if cfg.ReadBack {
		total += int64(cfg.Tasks) * cfg.BlockBytes
	}
	name := fmt.Sprintf("ior-%dx%dMB-t%dMB", cfg.Tasks, cfg.BlockBytes/1e6, cfg.TransferBytes/1e6)
	if cfg.FilePerProcess {
		name += "-fpp"
	}
	return j.finish(&Run{
		Name:       name,
		Tasks:      cfg.Tasks,
		Collector:  j.col,
		Wall:       j.wall,
		TotalBytes: total,
	})
}
