// Package workloads implements the paper's three studied I/O
// workloads against the simulated stack: the IOR parametrized
// micro-benchmark (§III), the MADbench out-of-core CMB solver I/O
// kernel (§IV), and the GCRM climate-model I/O kernel with its three
// progressive optimizations (§V). Each run produces an IPM-I/O
// collector ready for ensemble analysis.
package workloads

import (
	"ensembleio/internal/cluster"
	"ensembleio/internal/faults"
	"ensembleio/internal/ipmio"
	"ensembleio/internal/lustre"
	"ensembleio/internal/mpi"
	"ensembleio/internal/posixio"
	"ensembleio/internal/sim"
)

// Type aliases keep the per-workload files terse.
type (
	mpiRank = mpi.Rank
	mpiComm = mpi.Comm
	tracer  = ipmio.Tracer
)

// Run is the artifact of one workload execution.
type Run struct {
	Name      string
	Tasks     int
	Collector *ipmio.Collector
	// Wall is the makespan: the virtual time at which the last rank
	// finished the workload body.
	Wall sim.Duration
	// TotalBytes is the logical data volume moved by the workload's
	// sized operations (writes + reads), excluding metadata.
	TotalBytes int64
	// FSStats is the file system's server-side counter snapshot at the
	// end of the run — the second observation channel the advisor's
	// straggler-OST cross-check uses.
	FSStats lustre.Stats
	// CoresPerNode records the machine's rank-to-node block factor so
	// analysis can map ranks to nodes without the profile in hand.
	CoresPerNode int
}

// AggregateMBps is the job-level rate the paper reports: total data
// moved divided by wall time.
func (r *Run) AggregateMBps() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.TotalBytes) / 1e6 / float64(r.Wall)
}

// job wires up one simulated job: engine, cluster, file system, MPI
// world, and a collector.
type job struct {
	eng *sim.Engine
	cl  *cluster.Cluster
	fs  *lustre.FS
	sys *posixio.System
	w   *mpi.World
	col *ipmio.Collector

	finished int
	wall     sim.Time
}

func newJob(prof cluster.Profile, tasks int, seed int64, mode ipmio.Mode) *job {
	eng := sim.NewEngine()
	nodes := (tasks + prof.CoresPerNode - 1) / prof.CoresPerNode
	cl := cluster.New(eng, prof, nodes, seed)
	fs := lustre.NewFS(cl)
	return &job{
		eng: eng,
		cl:  cl,
		fs:  fs,
		sys: posixio.NewSystem(fs),
		w:   mpi.NewWorld(eng, cl, tasks, mpi.Config{}),
		col: ipmio.NewCollector(mode),
	}
}

// applyFaults installs a degradation scenario (if any) on the freshly
// built machine and mounted file system, before launch.
func (j *job) applyFaults(s *faults.Scenario) {
	if s == nil {
		return
	}
	if err := s.Apply(j.cl, j.fs); err != nil {
		panic(err)
	}
}

// finish snapshots the per-run server-side state into the artifact.
func (j *job) finish(r *Run) *Run {
	r.FSStats = j.fs.Stats()
	r.CoresPerNode = j.cl.Prof.CoresPerNode
	return r
}

// launch runs body on every rank, tracking the makespan and stopping
// the background-load injector when the last rank completes.
func (j *job) launch(body func(r *mpi.Rank, tr *ipmio.Tracer)) {
	j.w.Launch(func(r *mpi.Rank) {
		tr := ipmio.NewTracer(j.sys.NewTask(r.ID, r.Node), j.col)
		body(r, tr)
		j.finished++
		if r.P.Now() > j.wall {
			j.wall = r.P.Now()
		}
		if j.finished == j.w.Size() {
			j.cl.StopBackground()
		}
	})
	j.eng.Run()
}

// mark records a phase boundary once (from rank 0).
func (j *job) mark(r *mpi.Rank, name string) {
	if r.ID == 0 {
		j.col.Mark(name, r.P.Now())
	}
}
