// Package workloads implements the paper's three studied I/O
// workloads against the simulated stack: the IOR parametrized
// micro-benchmark (§III), the MADbench out-of-core CMB solver I/O
// kernel (§IV), and the GCRM climate-model I/O kernel with its three
// progressive optimizations (§V). Each run produces an IPM-I/O
// collector ready for ensemble analysis.
package workloads

import (
	"fmt"

	"ensembleio/internal/cluster"
	"ensembleio/internal/faults"
	"ensembleio/internal/ipmio"
	"ensembleio/internal/lustre"
	"ensembleio/internal/mpi"
	"ensembleio/internal/posixio"
	"ensembleio/internal/sim"
	"ensembleio/internal/telemetry"
)

// Type aliases keep the per-workload files terse.
type (
	mpiRank = mpi.Rank
	mpiComm = mpi.Comm
	tracer  = ipmio.Tracer
)

// Run is the artifact of one workload execution.
type Run struct {
	Name      string
	Tasks     int
	Collector *ipmio.Collector
	// Wall is the makespan: the virtual time at which the last rank
	// finished the workload body.
	Wall sim.Duration
	// TotalBytes is the logical data volume moved by the workload's
	// sized operations (writes + reads), excluding metadata.
	TotalBytes int64
	// FSStats is the file system's server-side counter snapshot at the
	// end of the run — the second observation channel the advisor's
	// straggler-OST cross-check uses.
	FSStats lustre.Stats
	// CoresPerNode records the machine's rank-to-node block factor so
	// analysis can map ranks to nodes without the profile in hand.
	CoresPerNode int
	// Telemetry is the run's deterministic metric snapshot — engine,
	// fabric, lustre, and MPI counters over virtual time. Nil unless
	// the workload config set Telemetry: true.
	Telemetry *telemetry.Snapshot
	// Spans are the run's virtual-time spans: workload phases, fault
	// windows, and (in trace mode) per-rank I/O calls. Nil unless
	// telemetry was enabled.
	Spans []telemetry.Span
}

// AggregateMBps is the job-level rate the paper reports: total data
// moved divided by wall time.
func (r *Run) AggregateMBps() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.TotalBytes) / 1e6 / float64(r.Wall)
}

// job wires up one simulated job: engine, cluster, file system, MPI
// world, and a collector.
type job struct {
	eng *sim.Engine
	cl  *cluster.Cluster
	fs  *lustre.FS
	sys *posixio.System
	w   *mpi.World
	col *ipmio.Collector
	tel *telemetry.Sink

	scenario *faults.Scenario

	finished int
	wall     sim.Time
}

func newJob(prof cluster.Profile, tasks int, seed int64, mode ipmio.Mode, withTel bool) *job {
	eng := sim.NewEngine()
	nodes := (tasks + prof.CoresPerNode - 1) / prof.CoresPerNode
	cl := cluster.New(eng, prof, nodes, seed)
	var tel *telemetry.Sink
	if withTel {
		tel = telemetry.New()
	}
	// Instrument before mounting lustre and building the MPI world:
	// both cache their metric handles from cl.Tel at construction. A
	// nil sink hands out nil handles, which no-op.
	cl.Instrument(tel)
	fs := lustre.NewFS(cl)
	return &job{
		eng: eng,
		cl:  cl,
		fs:  fs,
		sys: posixio.NewSystem(fs),
		w:   mpi.NewWorld(eng, cl, tasks, mpi.Config{}),
		col: ipmio.NewCollector(mode),
		tel: tel,
	}
}

// applyFaults installs a degradation scenario (if any) on the freshly
// built machine and mounted file system, before launch. The scenario
// is retained so telemetry can derive its fault windows at finish.
func (j *job) applyFaults(s *faults.Scenario) {
	if s == nil {
		return
	}
	if err := s.Apply(j.cl, j.fs); err != nil {
		panic(err)
	}
	j.scenario = s
}

// finish snapshots the per-run server-side state into the artifact.
func (j *job) finish(r *Run) *Run {
	r.FSStats = j.fs.Stats()
	r.CoresPerNode = j.cl.Prof.CoresPerNode
	j.foldTelemetry(r)
	return r
}

// foldTelemetry turns the sink plus end-of-run state into the run's
// serialized telemetry: engine and lustre counters are folded in bulk
// here (zero hot-path cost), and the span list is assembled in a fixed
// order — workload phases, fault windows, then per-rank I/O calls —
// every piece a pure function of the simulated run.
func (j *job) foldTelemetry(r *Run) {
	tel := j.tel
	if !tel.Enabled() {
		return
	}
	wall := float64(j.wall)

	tel.Counter("sim.events_popped").Add(float64(j.eng.EventsPopped()))
	tel.Counter("sim.events_scheduled").Add(float64(j.eng.EventsScheduled()))
	tel.Gauge("sim.heap_high_water").Set(float64(j.eng.HeapHighWater()))

	// Fast-forward accounting: virtual seconds the fabric crossed in
	// single analytic jumps. Both fabric paths take identical jumps —
	// the -analytic flag changes how wake-ups are computed, never when
	// they land — so these counters are safe to serialize and
	// ensembletop can print the ratio against sim.virtual_seconds.
	tel.Counter("sim.virtual_seconds").Add(wall)
	if ff := j.eng.FastForwardSeconds(); ff > 0 {
		tel.Counter("sim.ff_seconds").Add(ff)
		tel.Counter("sim.ff_jumps").Add(float64(j.eng.FastForwardJumps()))
	}

	st := &r.FSStats
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"lustre.write_jobs", float64(st.WriteJobs)},
		{"lustre.write_mb", st.WriteMB},
		{"lustre.read_calls", float64(st.ReadCalls)},
		{"lustre.read_mb", st.ReadMB},
		{"lustre.absorbed_mb", st.AbsorbedMB},
		{"lustre.drain_chunks", float64(st.DrainChunks)},
		{"lustre.conflicts", float64(st.Conflicts)},
		{"lustre.luck_capped", float64(st.LuckCapped)},
		{"lustre.mds_ops", float64(st.MDSOps)},
		{"lustre.mds_slow_ops", float64(st.MDSSlowOps)},
		{"lustre.small_writes", float64(st.SmallWrites)},
	} {
		if c.v != 0 {
			tel.Counter(c.name).Add(c.v)
		}
	}

	// Per-OST accounting, including injected stall exposure derived
	// from the fault scenario's windows (nil scenario -> no stalls).
	stalls := j.scenario.StallSeconds(wall, len(st.PerOST))
	for i := range st.PerOST {
		o := &st.PerOST[i]
		stall := 0.0
		if stalls != nil {
			stall = stalls[i]
		}
		if o.Streams == 0 && stall == 0 {
			continue
		}
		prefix := fmt.Sprintf("lustre.ost%03d.", i)
		tel.Counter(prefix + "streams").Add(float64(o.Streams))
		tel.Counter(prefix + "mb").Add(o.MB)
		tel.Counter(prefix + "seconds").Add(o.Seconds)
		if stall > 0 {
			tel.Counter(prefix + "stall_s").Add(stall)
		}
	}

	marks := j.col.Marks
	for i, m := range marks {
		end := wall
		if i+1 < len(marks) {
			end = float64(marks[i+1].T)
		}
		tel.Span("phase", m.Name, -1, float64(m.T), end)
	}
	for _, w := range j.scenario.Windows(wall) {
		tel.Span("fault", w.Label, -1, w.T0, w.T1)
	}
	for i := range j.col.Events {
		e := &j.col.Events[i]
		tel.Span("io", e.Op.String(), e.Rank, float64(e.Start), float64(e.Start+e.Dur))
	}

	r.Telemetry = tel.Snapshot()
	r.Spans = tel.Spans()
}

// launch runs body on every rank, tracking the makespan and stopping
// the background-load injector when the last rank completes.
func (j *job) launch(body func(r *mpi.Rank, tr *ipmio.Tracer)) {
	j.w.Launch(func(r *mpi.Rank) {
		tr := ipmio.NewTracer(j.sys.NewTask(r.ID, r.Node), j.col)
		body(r, tr)
		j.finished++
		if r.P.Now() > j.wall {
			j.wall = r.P.Now()
		}
		if j.finished == j.w.Size() {
			j.cl.StopBackground()
		}
	})
	j.eng.Run()
}

// mark records a phase boundary once (from rank 0).
func (j *job) mark(r *mpi.Rank, name string) {
	if r.ID == 0 {
		j.col.Mark(name, r.P.Now())
	}
}
