// Package workloads implements the paper's three studied I/O
// workloads against the simulated stack: the IOR parametrized
// micro-benchmark (§III), the MADbench out-of-core CMB solver I/O
// kernel (§IV), and the GCRM climate-model I/O kernel with its three
// progressive optimizations (§V). Each run produces an IPM-I/O
// collector ready for ensemble analysis.
package workloads

import (
	"ensembleio/internal/cluster"
	"ensembleio/internal/faults"
	"ensembleio/internal/ipmio"
	"ensembleio/internal/lustre"
	"ensembleio/internal/mpi"
	"ensembleio/internal/posixio"
	"ensembleio/internal/sim"
	"ensembleio/internal/telemetry"
)

// Type aliases keep the per-workload files terse.
type (
	mpiRank = mpi.Rank
	mpiComm = mpi.Comm
	tracer  = ipmio.Tracer
)

// Run is the artifact of one workload execution.
type Run struct {
	Name      string
	Tasks     int
	Collector *ipmio.Collector
	// Wall is the makespan: the virtual time at which the last rank
	// finished the workload body.
	Wall sim.Duration
	// TotalBytes is the logical data volume moved by the workload's
	// sized operations (writes + reads), excluding metadata.
	TotalBytes int64
	// FSStats is the file system's server-side counter snapshot at the
	// end of the run — the second observation channel the advisor's
	// straggler-OST cross-check uses.
	FSStats lustre.Stats
	// CoresPerNode records the machine's rank-to-node block factor so
	// analysis can map ranks to nodes without the profile in hand.
	CoresPerNode int
	// Telemetry is the run's deterministic metric snapshot — engine,
	// fabric, lustre, and MPI counters over virtual time. Nil unless
	// the workload config set Telemetry: true.
	Telemetry *telemetry.Snapshot
	// Spans are the run's virtual-time spans: workload phases, fault
	// windows, and (in trace mode) per-rank I/O calls. Nil unless
	// telemetry was enabled.
	Spans []telemetry.Span
}

// AggregateMBps is the job-level rate the paper reports: total data
// moved divided by wall time.
func (r *Run) AggregateMBps() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.TotalBytes) / 1e6 / float64(r.Wall)
}

// platform is the shared substrate jobs run on: engine, cluster,
// fabric, file system, POSIX layer, and the telemetry sink. A solo run
// builds a platform per job (newJob); a multi-tenant session
// (internal/tenancy) builds one platform and attaches several jobs
// with staggered starts, so every tenant contends for the same fabric,
// OSTs, and metadata service.
type platform struct {
	eng *sim.Engine
	cl  *cluster.Cluster
	fs  *lustre.FS
	sys *posixio.System
	tel *telemetry.Sink

	scenario *faults.Scenario

	// pending counts attached jobs whose ranks have not all finished;
	// the background-load injector stops only when it reaches zero, so
	// a tenant finishing early does not silence the contention its
	// neighbors still see.
	pending int
}

func newPlatform(prof cluster.Profile, nNodes int, seed int64, withTel bool) *platform {
	eng := sim.NewEngine()
	cl := cluster.New(eng, prof, nNodes, seed)
	var tel *telemetry.Sink
	if withTel {
		tel = telemetry.New()
	}
	// Instrument before mounting lustre and building the MPI worlds:
	// both cache their metric handles from cl.Tel at construction. A
	// nil sink hands out nil handles, which no-op.
	cl.Instrument(tel)
	fs := lustre.NewFS(cl)
	return &platform{eng: eng, cl: cl, fs: fs, sys: posixio.NewSystem(fs), tel: tel}
}

// applyFaults installs a degradation scenario (if any) on the freshly
// built machine and mounted file system, before launch. The scenario
// is retained so telemetry can derive its fault windows at finish.
func (pl *platform) applyFaults(s *faults.Scenario) {
	if s == nil {
		return
	}
	if err := s.Apply(pl.cl, pl.fs); err != nil {
		panic(err)
	}
	pl.scenario = s
}

// jobDone records one attached job's completion (its last rank
// finished) and stops the background-load injectors once every
// attached job is done, so the event queue can drain.
func (pl *platform) jobDone() {
	pl.pending--
	if pl.pending == 0 {
		pl.cl.StopBackground()
	}
}

// job wires up one simulated job on a platform: an MPI world, a
// collector, and (on multi-tenant sessions) a tenant identity plus a
// virtual-time start offset.
type job struct {
	plat *platform
	eng  *sim.Engine
	cl   *cluster.Cluster
	fs   *lustre.FS
	sys  *posixio.System
	w    *mpi.World
	col  *ipmio.Collector
	tel  *telemetry.Sink

	// Tenant identity on a shared platform: name tags the job's spans
	// and counters, tenantIdx is its lustre accounting bucket, startAt
	// is its staggered start. All zero on solo runs.
	tenant    string
	tenantIdx int
	startAt   sim.Time

	finished int
	started  sim.Time
	wall     sim.Time

	// Fast-forward window samples at the job's start and last-rank
	// finish, so a session can report per-tenant fast-forwarded
	// fractions rather than only the global one.
	ffStart, ffEnd       float64
	jumpsStart, jumpsEnd uint64
}

// attach builds a job on the platform: an MPI world placed per mcfg
// and a fresh collector. Construction order matches what the solo path
// always did (world after fs/sys), so solo artifacts stay byte-stable.
func (pl *platform) attach(tasks int, mode ipmio.Mode, mcfg mpi.Config) *job {
	pl.pending++
	return &job{
		plat: pl,
		eng:  pl.eng,
		cl:   pl.cl,
		fs:   pl.fs,
		sys:  pl.sys,
		w:    mpi.NewWorld(pl.eng, pl.cl, tasks, mcfg),
		col:  ipmio.NewCollector(mode),
		tel:  pl.tel,
	}
}

func newJob(prof cluster.Profile, tasks int, seed int64, mode ipmio.Mode, withTel bool) *job {
	nodes := (tasks + prof.CoresPerNode - 1) / prof.CoresPerNode
	pl := newPlatform(prof, nodes, seed, withTel)
	return pl.attach(tasks, mode, mpi.Config{})
}

func (j *job) applyFaults(s *faults.Scenario) { j.plat.applyFaults(s) }

// finish snapshots the per-run server-side state into the artifact.
func (j *job) finish(r *Run) *Run {
	r.FSStats = j.fs.Stats()
	r.CoresPerNode = j.cl.Prof.CoresPerNode
	j.foldTelemetry(r)
	return r
}

// foldTelemetry turns the sink plus end-of-run state into the run's
// serialized telemetry: engine and lustre counters are folded in bulk
// here (zero hot-path cost), and the span list is assembled in a fixed
// order — workload phases, fault windows, then per-rank I/O calls —
// every piece a pure function of the simulated run.
func (j *job) foldTelemetry(r *Run) {
	tel := j.tel
	if !tel.Enabled() {
		return
	}
	wall := float64(j.wall)

	tel.Counter("sim.events_popped").Add(float64(j.eng.EventsPopped()))
	tel.Counter("sim.events_scheduled").Add(float64(j.eng.EventsScheduled()))
	tel.Gauge("sim.heap_high_water").Set(float64(j.eng.HeapHighWater()))

	// Fast-forward accounting: virtual seconds the fabric crossed in
	// single analytic jumps. Both fabric paths take identical jumps —
	// the -analytic flag changes how wake-ups are computed, never when
	// they land — so these counters are safe to serialize and
	// ensembletop can print the ratio against sim.virtual_seconds.
	tel.Counter("sim.virtual_seconds").Add(wall)
	if ff := j.eng.FastForwardSeconds(); ff > 0 {
		tel.Counter("sim.ff_seconds").Add(ff)
		tel.Counter("sim.ff_jumps").Add(float64(j.eng.FastForwardJumps()))
	}

	st := &r.FSStats
	foldLustreCounters(tel, st)

	// Per-OST accounting, including injected stall exposure derived
	// from the fault scenario's windows (nil scenario -> no stalls).
	stalls := j.plat.scenario.StallSeconds(wall, len(st.PerOST))
	foldPerOST(tel, "lustre.", st.PerOST, stalls)

	marks := j.col.Marks
	for i, m := range marks {
		end := wall
		if i+1 < len(marks) {
			end = float64(marks[i+1].T)
		}
		tel.Span("phase", m.Name, -1, float64(m.T), end)
	}
	for _, w := range j.plat.scenario.Windows(wall) {
		tel.Span("fault", w.Label, -1, w.T0, w.T1)
	}
	for i := range j.col.Events {
		e := &j.col.Events[i]
		tel.Span("io", e.Op.String(), e.Rank, float64(e.Start), float64(e.Start+e.Dur))
	}

	r.Telemetry = tel.Snapshot()
	r.Spans = tel.Spans()
}

// spawn launches body on every rank at the job's start offset without
// driving the engine — a multi-tenant session spawns every tenant,
// then runs the shared engine once. The makespan and the per-job
// fast-forward window are tracked here; the platform is notified when
// the last rank completes.
func (j *job) spawn(body func(r *mpi.Rank, tr *ipmio.Tracer)) {
	run := func() {
		j.started = j.eng.Now()
		j.ffStart = j.eng.FastForwardSeconds()
		j.jumpsStart = j.eng.FastForwardJumps()
		j.w.Launch(func(r *mpi.Rank) {
			tr := ipmio.NewTracer(j.sys.NewTask(r.ID, r.Node), j.col)
			body(r, tr)
			j.finished++
			if r.P.Now() > j.wall {
				j.wall = r.P.Now()
			}
			if j.finished == j.w.Size() {
				j.ffEnd = j.eng.FastForwardSeconds()
				j.jumpsEnd = j.eng.FastForwardJumps()
				j.plat.jobDone()
			}
		})
	}
	if j.startAt > 0 {
		j.eng.At(j.startAt, run)
	} else {
		run()
	}
}

// launch runs body on every rank and drives the engine to completion
// (the solo-run path).
func (j *job) launch(body func(r *mpi.Rank, tr *ipmio.Tracer)) {
	j.spawn(body)
	j.eng.Run()
}

// mark records a phase boundary once (from rank 0).
func (j *job) mark(r *mpi.Rank, name string) {
	if r.ID == 0 {
		j.col.Mark(name, r.P.Now())
	}
}
