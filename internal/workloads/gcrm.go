package workloads

import (
	"fmt"

	"ensembleio/internal/cluster"
	"ensembleio/internal/faults"
	"ensembleio/internal/h5lite"
	"ensembleio/internal/ipmio"
)

// GCRMConfig parametrizes the Global Cloud Resolving Model I/O kernel
// of §V: an H5Part-style dump of model variables to one shared file.
// The baseline pattern (per the paper) is three single-record
// variables, each followed by a barrier, then three six-record
// variables, followed by another barrier; records are 1.6 MB.
//
// The three progressive optimizations map to fields:
//
//	Figure 6d-f: Aggregators = 80   (collective buffering, stage two)
//	Figure 6g-i: + Align = true     (pad records to 1 MB boundaries)
//	Figure 6j-l: + AggregateMetadata = true (one deferred 1 MB write)
type GCRMConfig struct {
	Machine cluster.Profile
	// Tasks is the number of model tasks whose records are dumped
	// (paper: 10,240). Record ownership is defined at this
	// granularity regardless of how many ranks do the writing.
	Tasks int
	// Aggregators, when non-zero, runs the kernel with that many
	// writer ranks, each writing Tasks/Aggregators tasks' records
	// (the paper tested collective buffering "stage two only" by
	// running the kernel with 80 tasks and 128x the write calls).
	// When TwoStage is also set, all Tasks ranks run and ship their
	// records to the aggregators over MPI first (stage one + two).
	Aggregators int
	TwoStage    bool
	// Align pads records to 1 MB boundaries via the HDF5 alignment
	// property.
	Align bool
	// AggregateMetadata defers metadata into one large write at close.
	AggregateMetadata bool

	// RecordBytes per record (paper: 1.6 MB).
	RecordBytes int64
	// SingleVars and MultiVars describe the dump shape.
	SingleVars int // variables with 1 record per task (paper: 3)
	MultiVars  int // variables with MultiRecs records per task (paper: 3)
	MultiRecs  int // records per task per multi variable (paper: 6)
	// MetaOpsPerVar is the number of small metadata writes flushed
	// after each variable (chunk index scale; ~80 ops x 2 KB x 6 vars
	// ~= 1 MB total, matching the paper's aggregated single 1 MB).
	MetaOpsPerVar int

	// Faults, when non-nil, is the degradation scenario injected into
	// the machine before the run (see internal/faults).
	Faults *faults.Scenario
	Seed   int64
	Mode   ipmio.Mode
	Path   string
	// Telemetry enables the run's deterministic metric/span sink
	// (Run.Telemetry, Run.Spans).
	Telemetry bool
}

func (c *GCRMConfig) defaults() {
	if c.Tasks == 0 {
		c.Tasks = 10240
	}
	if c.RecordBytes == 0 {
		c.RecordBytes = 1600000
	}
	if c.SingleVars == 0 {
		c.SingleVars = 3
	}
	if c.MultiVars == 0 {
		c.MultiVars = 3
	}
	if c.MultiRecs == 0 {
		c.MultiRecs = 6
	}
	if c.MetaOpsPerVar == 0 {
		c.MetaOpsPerVar = 80
	}
	if c.Mode == 0 {
		c.Mode = ipmio.TraceMode
	}
	if c.Path == "" {
		c.Path = "/scratch/gcrm.h5"
	}
}

// TotalRecords returns the number of records in one dump.
func (c *GCRMConfig) TotalRecords() int {
	return c.Tasks * (c.SingleVars + c.MultiVars*c.MultiRecs)
}

// RunGCRM executes the kernel and returns its artifact.
func RunGCRM(cfg GCRMConfig) *Run {
	cfg.defaults()

	writers := cfg.Tasks
	perWriter := 1 // tasks' records handled per writer rank
	if cfg.Aggregators > 0 {
		if cfg.Tasks%cfg.Aggregators != 0 {
			panic("workloads: GCRM tasks must divide evenly among aggregators")
		}
		writers = cfg.Aggregators
		perWriter = cfg.Tasks / cfg.Aggregators
	}

	ranks := writers
	if cfg.TwoStage && cfg.Aggregators > 0 {
		ranks = cfg.Tasks
	}

	var align int64
	if cfg.Align {
		align = 1e6
	}

	j := newJob(cfg.Machine, ranks, cfg.Seed, cfg.Mode, cfg.Telemetry)
	j.applyFaults(cfg.Faults)
	// Per writer: open + close and one write per record it owns; the
	// per-variable metadata flushes come from the single metadata-writer
	// rank — pre-size the trace buffer to the full run (a floor;
	// aggregated-metadata close writes ride on top).
	recsPerWriter := perWriter * (cfg.SingleVars + cfg.MultiVars*cfg.MultiRecs)
	metaOps := (cfg.SingleVars + cfg.MultiVars) * cfg.MetaOpsPerVar
	j.col.Reserve(writers*(2+recsPerWriter) + metaOps + 4)

	// In two-stage mode, writer w is world rank w*perWriter (spreading
	// aggregators across nodes); its group is the perWriter ranks
	// starting there. In single-stage mode every rank is a writer.
	writerIdx := func(worldRank int) (int, bool) {
		if !cfg.TwoStage || cfg.Aggregators == 0 {
			return worldRank, true
		}
		if worldRank%perWriter == 0 {
			return worldRank / perWriter, true
		}
		return -1, false
	}
	var groups []*mpiComm
	if cfg.TwoStage && cfg.Aggregators > 0 {
		for g := 0; g < writers; g++ {
			members := make([]int, perWriter)
			for i := range members {
				members[i] = g*perWriter + i
			}
			groups = append(groups, j.w.NewComm(members))
		}
	}

	// Dataset and phase-mark names are shared across ranks; format them
	// once here instead of once per rank inside the launch body.
	singleNames := make([]string, cfg.SingleVars)
	singleMarks := make([]string, cfg.SingleVars)
	for v := range singleNames {
		singleNames[v] = fmt.Sprintf("var1_%d", v)
		singleMarks[v] = fmt.Sprintf("single-var-%d", v)
	}
	multiNames := make([]string, cfg.MultiVars)
	multiMarks := make([]string, cfg.MultiVars)
	for v := range multiNames {
		multiNames[v] = fmt.Sprintf("var%d_%d", cfg.MultiRecs, v)
		multiMarks[v] = fmt.Sprintf("multi-var-%d", v)
	}

	j.launch(func(r *mpiRank, tr *tracer) {
		w, isWriter := writerIdx(r.ID)
		var group *mpiComm
		if groups != nil {
			group = groups[r.ID/perWriter]
		}

		// Non-writer ranks in two-stage mode only ship data.
		var f *h5lite.File
		var singles, multis []*h5lite.Dataset
		if isWriter {
			var err error
			f, err = h5lite.Create(r.P, tr, cfg.Path, h5lite.FileOpts{
				Alignment:         align,
				AggregateMetadata: cfg.AggregateMetadata,
				MetadataWriter:    r.ID == 0,
			})
			if err != nil {
				panic(err)
			}
			for v := 0; v < cfg.SingleVars; v++ {
				singles = append(singles, f.CreateDataset(
					singleNames[v], cfg.RecordBytes, cfg.Tasks, cfg.MetaOpsPerVar))
			}
			for v := 0; v < cfg.MultiVars; v++ {
				multis = append(multis, f.CreateDataset(
					multiNames[v], cfg.RecordBytes, cfg.Tasks*cfg.MultiRecs, cfg.MetaOpsPerVar))
			}
		}

		r.Barrier() // synchronize after file create / open storm

		writeVar := func(ds *h5lite.Dataset, recsPerTask int, name string) {
			j.mark(r, name)
			if group != nil {
				// Stage one: ship records to the aggregator.
				n := cfg.RecordBytes * int64(recsPerTask)
				group.Gather(r, n, r.ID)
			}
			if isWriter {
				// Stage two: the writer emits its tasks' records.
				for tsk := w * perWriter; tsk < (w+1)*perWriter; tsk++ {
					t := tsk
					if cfg.Aggregators == 0 {
						t = w // every rank is its own task
					}
					for rec := 0; rec < recsPerTask; rec++ {
						if err := ds.WriteRecord(r.P, t*recsPerTask+rec); err != nil {
							panic(err)
						}
					}
				}
				if err := ds.FlushMetadata(r.P); err != nil {
					panic(err)
				}
			}
			r.Barrier()
		}

		for v := 0; v < cfg.SingleVars; v++ {
			var ds *h5lite.Dataset
			if isWriter {
				ds = singles[v]
			}
			writeVar(ds, 1, singleMarks[v])
		}
		for v := 0; v < cfg.MultiVars; v++ {
			var ds *h5lite.Dataset
			if isWriter {
				ds = multis[v]
			}
			writeVar(ds, cfg.MultiRecs, multiMarks[v])
		}
		if isWriter {
			j.mark(r, "close")
			if err := f.Close(r.P); err != nil {
				panic(err)
			}
		}
	})

	name := "gcrm-baseline"
	switch {
	case cfg.AggregateMetadata:
		name = "gcrm-metaagg"
	case cfg.Align:
		name = "gcrm-aligned"
	case cfg.Aggregators > 0:
		name = "gcrm-collective"
	}
	return j.finish(&Run{
		Name:       name,
		Tasks:      cfg.Tasks,
		Collector:  j.col,
		Wall:       j.wall,
		TotalBytes: int64(cfg.TotalRecords()) * cfg.RecordBytes,
	})
}
