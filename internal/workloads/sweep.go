package workloads

import (
	"ensembleio/internal/cluster"
	//lint:allow(simpurity) runpool fans whole independent seeded runs; parallelism stays above the per-run sim layer
	"ensembleio/internal/runpool"
)

// Parameter sweeps: the experiment shapes the paper iterates — the
// Figure 2 transfer-size sweep and the §V writer-count sweep — as
// reusable drivers. cmd/paperfig and the benchmarks build on these.
//
// Each sweep point averages several independent seeded runs; the runs
// are fanned across runpool workers and reduced in submission order,
// so the output (down to the serialized bytes of every trace) is
// identical at any worker count. See DESIGN.md §"Parallel execution
// model".

// TransferPoint is one point of a transfer-size sweep.
type TransferPoint struct {
	K             int   // calls per block
	TransferBytes int64 // bytes per call
	// MeanRateMBps averages the job-level rate over the seeds.
	MeanRateMBps float64
	// Runs holds one run per seed (for deeper analysis).
	Runs []*Run
}

// IORTransferSweep runs the Figure 2 experiment: the base
// configuration with its block split into each k of ks, averaged over
// the given seeds. The base's TransferBytes is ignored. All (k, seed)
// runs execute in parallel on all cores; use IORTransferSweepJ to
// bound the worker count.
func IORTransferSweep(base IORConfig, ks []int, seeds []int64) []TransferPoint {
	return IORTransferSweepJ(base, ks, seeds, 0)
}

// IORTransferSweepJ is IORTransferSweep on at most workers OS workers
// (workers <= 0 means all cores, 1 means sequential).
func IORTransferSweepJ(base IORConfig, ks []int, seeds []int64, workers int) []TransferPoint {
	return IORTransferSweepProgress(base, ks, seeds, workers, nil)
}

// IORTransferSweepProgress is IORTransferSweepJ with live completion
// reporting (see runpool.Progress; nil disables). Progress observes
// only run *counts*, so the sweep's results and serialized artifacts
// stay byte-identical with or without it.
func IORTransferSweepProgress(base IORConfig, ks []int, seeds []int64, workers int, progress runpool.Progress) []TransferPoint {
	base.defaults()
	type job struct {
		k    int
		seed int64
	}
	jobs := make([]job, 0, len(ks)*len(seeds))
	for _, k := range ks {
		for _, seed := range seeds {
			jobs = append(jobs, job{k, seed})
		}
	}
	//lint:allow(detflow) runpool fans whole independent seeded runs; each run stays on its own lock-step schedule, so worker count and scheduling cannot reach the artifacts
	runs := runpool.MapProgress(workers, jobs, progress, func(_ int, j job) *Run {
		cfg := base
		cfg.TransferBytes = base.BlockBytes / int64(j.k)
		cfg.Seed = j.seed
		return RunIOR(cfg)
	})

	// Ordered reduction: fold results by job index, exactly the
	// sequence the sequential loop produced.
	var out []TransferPoint
	i := 0
	for _, k := range ks {
		pt := TransferPoint{K: k, TransferBytes: base.BlockBytes / int64(k)}
		sum := 0.0
		for range seeds {
			run := runs[i]
			i++
			pt.Runs = append(pt.Runs, run)
			sum += run.AggregateMBps()
		}
		if len(seeds) > 0 {
			pt.MeanRateMBps = sum / float64(len(seeds))
		}
		out = append(out, pt)
	}
	return out
}

// WriterPoint is one point of a writer-count sweep.
type WriterPoint struct {
	Writers int
	// WallSec is the time to move the (fixed) total volume, averaged
	// over the sweep's seeds (a single run's wall is hostage to one
	// unlucky straggler).
	WallSec float64
	Runs    []*Run
}

// IORWriterSweep runs the §V saturation experiment: a fixed total
// volume (totalTransfers x transferBytes) divided among each writer
// count, each task issuing whole transfers and walls averaged over the
// seeds. Counts that do not divide the work evenly get the rounded-up
// share. All (count, seed) runs execute in parallel on all cores; use
// IORWriterSweepJ to bound the worker count.
func IORWriterSweep(prof cluster.Profile, counts []int, totalTransfers int, transferBytes int64, seeds []int64) []WriterPoint {
	return IORWriterSweepJ(prof, counts, totalTransfers, transferBytes, seeds, 0)
}

// IORWriterSweepJ is IORWriterSweep on at most workers OS workers
// (workers <= 0 means all cores, 1 means sequential).
func IORWriterSweepJ(prof cluster.Profile, counts []int, totalTransfers int, transferBytes int64, seeds []int64, workers int) []WriterPoint {
	return IORWriterSweepProgress(prof, counts, totalTransfers, transferBytes, seeds, workers, nil)
}

// IORWriterSweepProgress is IORWriterSweepJ with live completion
// reporting (see runpool.Progress; nil disables).
func IORWriterSweepProgress(prof cluster.Profile, counts []int, totalTransfers int, transferBytes int64, seeds []int64, workers int, progress runpool.Progress) []WriterPoint {
	type job struct {
		writers int
		seed    int64
	}
	jobs := make([]job, 0, len(counts)*len(seeds))
	for _, n := range counts {
		for _, seed := range seeds {
			jobs = append(jobs, job{n, seed})
		}
	}
	//lint:allow(detflow) runpool fans whole independent seeded runs; each run stays on its own lock-step schedule, so worker count and scheduling cannot reach the artifacts
	runs := runpool.MapProgress(workers, jobs, progress, func(_ int, j job) *Run {
		per := (totalTransfers + j.writers - 1) / j.writers
		return RunIOR(IORConfig{
			Machine:       prof,
			Tasks:         j.writers,
			BlockBytes:    int64(per) * transferBytes,
			TransferBytes: transferBytes,
			Reps:          1,
			Seed:          j.seed,
		})
	})

	var out []WriterPoint
	i := 0
	for _, n := range counts {
		pt := WriterPoint{Writers: n}
		sum := 0.0
		for range seeds {
			run := runs[i]
			i++
			pt.Runs = append(pt.Runs, run)
			sum += float64(run.Wall)
		}
		if len(seeds) > 0 {
			pt.WallSec = sum / float64(len(seeds))
		}
		out = append(out, pt)
	}
	return out
}

// SaturationPoint returns the smallest writer count whose wall time is
// within slack (e.g. 1.5) of the best point's, and that best wall.
func SaturationPoint(points []WriterPoint, slack float64) (writers int, bestWall float64) {
	if len(points) == 0 {
		return 0, 0
	}
	best := points[0].WallSec
	for _, p := range points[1:] {
		if p.WallSec < best {
			best = p.WallSec
		}
	}
	for _, p := range points {
		if p.WallSec <= slack*best {
			return p.Writers, best
		}
	}
	return points[len(points)-1].Writers, best
}
