package workloads

import (
	"ensembleio/internal/cluster"
)

// Parameter sweeps: the experiment shapes the paper iterates — the
// Figure 2 transfer-size sweep and the §V writer-count sweep — as
// reusable drivers. cmd/paperfig and the benchmarks build on these.

// TransferPoint is one point of a transfer-size sweep.
type TransferPoint struct {
	K             int   // calls per block
	TransferBytes int64 // bytes per call
	// MeanRateMBps averages the job-level rate over the seeds.
	MeanRateMBps float64
	// Runs holds one run per seed (for deeper analysis).
	Runs []*Run
}

// IORTransferSweep runs the Figure 2 experiment: the base
// configuration with its block split into each k of ks, averaged over
// the given seeds. The base's TransferBytes is ignored.
func IORTransferSweep(base IORConfig, ks []int, seeds []int64) []TransferPoint {
	base.defaults()
	var out []TransferPoint
	for _, k := range ks {
		pt := TransferPoint{K: k, TransferBytes: base.BlockBytes / int64(k)}
		sum := 0.0
		for _, seed := range seeds {
			cfg := base
			cfg.TransferBytes = pt.TransferBytes
			cfg.Seed = seed
			run := RunIOR(cfg)
			pt.Runs = append(pt.Runs, run)
			sum += run.AggregateMBps()
		}
		if len(seeds) > 0 {
			pt.MeanRateMBps = sum / float64(len(seeds))
		}
		out = append(out, pt)
	}
	return out
}

// WriterPoint is one point of a writer-count sweep.
type WriterPoint struct {
	Writers int
	// WallSec is the time to move the (fixed) total volume, averaged
	// over the sweep's seeds (a single run's wall is hostage to one
	// unlucky straggler).
	WallSec float64
	Runs    []*Run
}

// IORWriterSweep runs the §V saturation experiment: a fixed total
// volume (totalTransfers x transferBytes) divided among each writer
// count, each task issuing whole transfers and walls averaged over the
// seeds. Counts that do not divide the work evenly get the rounded-up
// share.
func IORWriterSweep(prof cluster.Profile, counts []int, totalTransfers int, transferBytes int64, seeds []int64) []WriterPoint {
	var out []WriterPoint
	for _, n := range counts {
		per := (totalTransfers + n - 1) / n
		pt := WriterPoint{Writers: n}
		sum := 0.0
		for _, seed := range seeds {
			run := RunIOR(IORConfig{
				Machine:       prof,
				Tasks:         n,
				BlockBytes:    int64(per) * transferBytes,
				TransferBytes: transferBytes,
				Reps:          1,
				Seed:          seed,
			})
			pt.Runs = append(pt.Runs, run)
			sum += float64(run.Wall)
		}
		if len(seeds) > 0 {
			pt.WallSec = sum / float64(len(seeds))
		}
		out = append(out, pt)
	}
	return out
}

// SaturationPoint returns the smallest writer count whose wall time is
// within slack (e.g. 1.5) of the best point's, and that best wall.
func SaturationPoint(points []WriterPoint, slack float64) (writers int, bestWall float64) {
	if len(points) == 0 {
		return 0, 0
	}
	best := points[0].WallSec
	for _, p := range points[1:] {
		if p.WallSec < best {
			best = p.WallSec
		}
	}
	for _, p := range points {
		if p.WallSec <= slack*best {
			return p.Writers, best
		}
	}
	return points[len(points)-1].Writers, best
}
