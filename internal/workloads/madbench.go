package workloads

import (
	"fmt"

	"ensembleio/internal/cluster"
	"ensembleio/internal/faults"
	"ensembleio/internal/ipmio"
	"ensembleio/internal/lustre"
	"ensembleio/internal/posixio"
)

// MADbenchConfig parametrizes the MADbench I/O kernel of §IV with
// computation and communication turned off, leaving the pure I/O
// pattern of the out-of-core CMB solver:
//
//	S phase: 8 x ( write matrix, barrier )
//	W phase: 8 x ( seek, read matrix, seek, write matrix, barrier )
//	C phase: 8 x ( read matrix, barrier )
//
// Each task owns a contiguous region of the shared file holding its
// Matrices matrices, each padded to the alignment boundary — the
// padding gap is what turns the W-phase reads into a constant-stride
// pattern that arms the file system's strided read-ahead detection.
type MADbenchConfig struct {
	Machine cluster.Profile
	Tasks   int
	// Matrices per task (paper: 8).
	Matrices int
	// MatrixBytes per matrix (paper: ~300 MB; deliberately not a
	// whole number of stripes, as a real pixel-matrix size is not).
	MatrixBytes int64
	// AlignBytes pads each matrix slot (paper: 1 MB).
	AlignBytes int64
	// Faults, when non-nil, is the degradation scenario injected into
	// the machine before the run (see internal/faults).
	Faults *faults.Scenario
	Seed   int64
	Mode   ipmio.Mode
	Path   string
	// Telemetry enables the run's deterministic metric/span sink
	// (Run.Telemetry, Run.Spans).
	Telemetry bool
	// Instrument, when set, receives the mounted file system before
	// launch (diagnostic hooks, e.g. lustre.FS.OnPathology).
	Instrument func(fs *lustre.FS)
}

func (c *MADbenchConfig) defaults() {
	if c.Tasks == 0 {
		c.Tasks = 256
	}
	if c.Matrices == 0 {
		c.Matrices = 8
	}
	if c.MatrixBytes == 0 {
		c.MatrixBytes = 300_400_000 // pads to 301 MB slots at 1 MB alignment
	}
	if c.AlignBytes == 0 {
		c.AlignBytes = 1e6
	}
	if c.Mode == 0 {
		c.Mode = ipmio.TraceMode
	}
	if c.Path == "" {
		c.Path = "/scratch/madbench.dat"
	}
}

// Stride returns the aligned matrix slot size (after defaulting, so it
// is safe to call on a not-yet-run config).
func (c *MADbenchConfig) Stride() int64 {
	cc := *c
	cc.defaults()
	return (cc.MatrixBytes + cc.AlignBytes - 1) / cc.AlignBytes * cc.AlignBytes
}

// RunMADbench executes the kernel and returns its artifact.
func RunMADbench(cfg MADbenchConfig) *Run {
	cfg.defaults()
	stride := cfg.Stride()

	j := newJob(cfg.Machine, cfg.Tasks, cfg.Seed, cfg.Mode, cfg.Telemetry)
	j.applyFaults(cfg.Faults)
	if cfg.Instrument != nil {
		cfg.Instrument(j.fs)
	}
	// Per rank: open, S write, W seek+read+seek+write, C seek+read per
	// matrix, close — pre-size the trace buffer to the full run.
	j.col.Reserve(cfg.Tasks * (2 + cfg.Matrices*7))
	j.launch(func(r *mpiRank, tr *tracer) {
		fd, err := tr.Open(r.P, cfg.Path, posixio.OCreat|posixio.ORdwr)
		if err != nil {
			panic(err)
		}
		r.Barrier() // synchronize after the open storm
		base := int64(r.ID) * int64(cfg.Matrices) * stride
		slot := func(m int) int64 { return base + int64(m)*stride }

		// S: generate and write each matrix.
		for m := 0; m < cfg.Matrices; m++ {
			j.mark(r, fmt.Sprintf("S-write-%d", m))
			mustW(tr.Pwrite(r.P, fd, slot(m), cfg.MatrixBytes))
			r.Barrier()
		}
		// W: read each matrix back, multiply (elided), write result.
		for m := 0; m < cfg.Matrices; m++ {
			j.mark(r, fmt.Sprintf("W-rw-%d", m))
			must(tr.Seek(r.P, fd, slot(m), posixio.SeekSet))
			mustW(tr.Read(r.P, fd, cfg.MatrixBytes))
			must(tr.Seek(r.P, fd, slot(m), posixio.SeekSet))
			mustW(tr.Write(r.P, fd, cfg.MatrixBytes))
			r.Barrier()
		}
		// C: read the results and accumulate the trace (elided).
		for m := 0; m < cfg.Matrices; m++ {
			j.mark(r, fmt.Sprintf("C-read-%d", m))
			must(tr.Seek(r.P, fd, slot(m), posixio.SeekSet))
			mustW(tr.Read(r.P, fd, cfg.MatrixBytes))
			r.Barrier()
		}
		if err := tr.Close(r.P, fd); err != nil {
			panic(err)
		}
	})

	perTask := int64(cfg.Matrices) * cfg.MatrixBytes
	return j.finish(&Run{
		Name:      fmt.Sprintf("madbench-%d-%s", cfg.Tasks, cfg.Machine.Name),
		Tasks:     cfg.Tasks,
		Collector: j.col,
		Wall:      j.wall,
		// S writes + W reads + W writes + C reads.
		TotalBytes: int64(cfg.Tasks) * perTask * 4,
	})
}

func must(_ int64, err error) {
	if err != nil {
		panic(err)
	}
}

func mustW(n int64, err error) {
	if err != nil {
		panic(err)
	}
	if n == 0 {
		panic("workloads: zero-length transfer")
	}
}
