package workloads

import (
	"ensembleio/internal/cluster"
	"ensembleio/internal/faults"
	"ensembleio/internal/ipmio"
	"ensembleio/internal/lustre"
	"ensembleio/internal/mpi"
	"ensembleio/internal/telemetry"
)

// CustomConfig wires a job for an externally defined workload body —
// the declarative-spec interpreter (internal/wldsl) and any future
// programmatic workload. It carries exactly the runtime knobs the
// hand-coded configs share: machine, seed, collection mode, fault
// scenario, and the telemetry toggle.
type CustomConfig struct {
	Machine cluster.Profile
	// Tasks is the number of MPI ranks to launch (the world size, not
	// necessarily the workload's logical task count — a collective-
	// buffering job may run fewer writer ranks than tasks).
	Tasks int
	Seed  int64
	// Mode selects trace and/or profile collection (default TraceMode).
	Mode ipmio.Mode
	// Faults, when non-nil, is the degradation scenario injected into
	// the machine before the run (see internal/faults).
	Faults *faults.Scenario
	// Telemetry enables the run's deterministic metric/span sink.
	Telemetry bool
	// StripeCount overrides the stripe count of newly created files
	// (0 = stripe over all OSTs).
	StripeCount int
	// ReserveEvents pre-sizes the trace buffer (a capacity floor; see
	// ipmio.Collector.Reserve). Zero skips pre-sizing.
	ReserveEvents int
}

// Job is the exported face of the per-run wiring (engine, cluster,
// file system, MPI world, collector, telemetry sink) that the
// hand-coded workloads build through newJob. It exists so workload
// bodies defined outside this package run through the exact same
// plumbing — in particular the same telemetry fold — and therefore
// serialize byte-identically to an equivalent hand-coded run.
type Job struct {
	j *job
}

// NewCustomJob builds the simulated machine and support structure for
// one run.
func NewCustomJob(cfg CustomConfig) *Job {
	if cfg.Mode == 0 {
		cfg.Mode = ipmio.TraceMode
	}
	j := newJob(cfg.Machine, cfg.Tasks, cfg.Seed, cfg.Mode, cfg.Telemetry)
	j.fs.DefaultStripeCount = cfg.StripeCount
	j.applyFaults(cfg.Faults)
	j.col.Reserve(cfg.ReserveEvents)
	return &Job{j: j}
}

// World exposes the MPI world, for pre-launch communicator setup
// (collective-buffering groups must be created before Launch, in a
// deterministic order).
func (J *Job) World() *mpi.World { return J.j.w }

// FS exposes the mounted file system (diagnostic hooks).
func (J *Job) FS() *lustre.FS { return J.j.fs }

// Mark records a phase boundary once (from rank 0).
func (J *Job) Mark(r *mpi.Rank, name string) { J.j.mark(r, name) }

// Launch runs body on every rank and drives the engine to completion.
func (J *Job) Launch(body func(r *mpi.Rank, tr *ipmio.Tracer)) { J.j.launch(body) }

// Finish assembles the run artifact: collector, makespan, file-system
// stats, and (when enabled) the folded telemetry — identical to what
// the hand-coded workloads produce. tasks is the workload's logical
// task count and totalBytes its logical data volume (sized data ops,
// excluding metadata and padding).
func (J *Job) Finish(name string, tasks int, totalBytes int64) *Run {
	return J.j.finish(&Run{
		Name:       name,
		Tasks:      tasks,
		Collector:  J.j.col,
		Wall:       J.j.wall,
		TotalBytes: totalBytes,
	})
}

// Telemetry exposes the job's sink (nil-safe no-op when telemetry is
// disabled), for workload-level gauges.
func (J *Job) Telemetry() *telemetry.Sink { return J.j.tel }

// Spawn launches body on every rank at the job's start offset WITHOUT
// driving the engine — the multi-tenant path. The session spawns every
// tenant, then calls Session.Run once.
func (J *Job) Spawn(body func(r *mpi.Rank, tr *ipmio.Tracer)) { J.j.spawn(body) }

// FinishTenant assembles a tenant's run artifact after Session.Run:
// collector, absolute last-rank finish time (Wall), and the shared
// mount's final stats. Unlike Finish it folds no telemetry — the
// session folds one merged stream for all tenants (Session.Fold).
func (J *Job) FinishTenant(name string, tasks int, totalBytes int64) *Run {
	return &Run{
		Name:         name,
		Tasks:        tasks,
		Collector:    J.j.col,
		Wall:         J.j.wall,
		TotalBytes:   totalBytes,
		FSStats:      J.j.fs.Stats(),
		CoresPerNode: J.j.cl.Prof.CoresPerNode,
	}
}

// StartSec is the virtual time the job's ranks actually launched (its
// staggered start offset; 0 on solo runs).
func (J *Job) StartSec() float64 { return float64(J.j.started) }

// EndSec is the virtual time the job's last rank finished.
func (J *Job) EndSec() float64 { return float64(J.j.wall) }

// Usage snapshots the job's per-tenant slice of the server-side view
// (meaningful only on session-attached jobs).
func (J *Job) Usage() lustre.TenantUsage { return J.j.fs.TenantUsage(J.j.tenantIdx) }
