package workloads

import (
	"fmt"

	"ensembleio/internal/cluster"
	"ensembleio/internal/ipmio"
	"ensembleio/internal/posixio"
	"ensembleio/internal/sim"
)

// CheckpointConfig parametrizes the generic checkpoint/restart cycle
// that motivates the paper's introduction: "HPC I/O in this
// environment frequently involves large-scale data movement, such as
// check-pointing the state of the running application". Each step the
// application computes, then every task dumps its state and waits at a
// barrier — so checkpoint time is governed by the slowest task's
// write, exactly the slowest-of-N order statistic the ensemble
// methodology targets.
type CheckpointConfig struct {
	Machine cluster.Profile
	Tasks   int
	// StateBytes is each task's checkpoint size (default 256 MB).
	StateBytes int64
	// TransferBytes per write call (default: whole state; smaller
	// values exercise the Figure 2 splitting optimization).
	TransferBytes int64
	// Steps is the number of compute+checkpoint cycles (default 4).
	Steps int
	// ComputeSec is the mean simulated compute time per step (with
	// per-task lognormal imbalance); default 20 s.
	ComputeSec float64
	// FilePerProcess writes per-task checkpoint files instead of a
	// unique region of one shared file per step.
	FilePerProcess bool

	Seed int64
	Mode ipmio.Mode
	Path string
	// Telemetry enables the run's deterministic metric/span sink
	// (Run.Telemetry, Run.Spans).
	Telemetry bool
}

func (c *CheckpointConfig) defaults() {
	if c.Tasks == 0 {
		c.Tasks = 256
	}
	if c.StateBytes == 0 {
		c.StateBytes = 256e6
	}
	if c.TransferBytes == 0 {
		c.TransferBytes = c.StateBytes
	}
	if c.Steps == 0 {
		c.Steps = 4
	}
	if c.ComputeSec == 0 {
		c.ComputeSec = 20
	}
	if c.Mode == 0 {
		c.Mode = ipmio.TraceMode
	}
	if c.Path == "" {
		c.Path = "/scratch/ckpt"
	}
}

// CheckpointResult extends Run with the per-step I/O cost breakdown.
type CheckpointResult struct {
	*Run
	// StepIOSec is the wall time of each checkpoint phase (barrier to
	// barrier, compute excluded).
	StepIOSec []float64
	// ComputeSecTotal is the simulated compute time (per task mean).
	ComputeSecTotal float64
}

// IOFraction is the share of the run spent checkpointing.
func (r *CheckpointResult) IOFraction() float64 {
	io := 0.0
	for _, s := range r.StepIOSec {
		io += s
	}
	if r.Wall <= 0 {
		return 0
	}
	return io / float64(r.Wall)
}

// RunCheckpoint executes the cycle and returns its artifact.
func RunCheckpoint(cfg CheckpointConfig) *CheckpointResult {
	cfg.defaults()
	if cfg.StateBytes%cfg.TransferBytes != 0 {
		panic("workloads: checkpoint state must be a multiple of the transfer size")
	}
	k := int(cfg.StateBytes / cfg.TransferBytes)

	j := newJob(cfg.Machine, cfg.Tasks, cfg.Seed, cfg.Mode, cfg.Telemetry)
	rng := sim.NewRNG(cfg.Seed ^ 0xc4e9)
	imbalance := make([]float64, cfg.Tasks)
	for i := range imbalance {
		imbalance[i] = rng.Lognormal(0, 0.05)
	}

	stepStart := make([]sim.Time, cfg.Steps)
	stepEnd := make([]sim.Time, cfg.Steps)

	j.launch(func(r *mpiRank, tr *tracer) {
		var fd int
		var err error
		if !cfg.FilePerProcess {
			fd, err = tr.Open(r.P, cfg.Path, posixio.OCreat|posixio.OWronly)
			if err != nil {
				panic(err)
			}
		}
		r.Barrier()
		for step := 0; step < cfg.Steps; step++ {
			// Compute phase: per-task imbalance makes some tasks reach
			// the checkpoint late, as real solvers do.
			r.P.Sleep(sim.Duration(cfg.ComputeSec * imbalance[r.ID]))
			r.Barrier()
			j.mark(r, fmt.Sprintf("checkpoint-%d", step))
			if r.ID == 0 {
				stepStart[step] = r.P.Now()
			}
			f := fd
			if cfg.FilePerProcess {
				f, err = tr.Open(r.P, fmt.Sprintf("%s.%d.%05d", cfg.Path, step, r.ID), posixio.OCreat|posixio.OWronly)
				if err != nil {
					panic(err)
				}
			}
			base := int64(r.ID) * cfg.StateBytes
			if cfg.FilePerProcess {
				base = 0
			}
			for i := 0; i < k; i++ {
				if _, err := tr.Pwrite(r.P, f, base+int64(i)*cfg.TransferBytes, cfg.TransferBytes); err != nil {
					panic(err)
				}
			}
			if cfg.FilePerProcess {
				if err := tr.Close(r.P, f); err != nil {
					panic(err)
				}
			}
			r.Barrier()
			if r.ID == 0 {
				stepEnd[step] = r.P.Now()
			}
		}
		if !cfg.FilePerProcess {
			if err := tr.Close(r.P, fd); err != nil {
				panic(err)
			}
		}
	})

	res := &CheckpointResult{
		Run: &Run{
			Name:       fmt.Sprintf("checkpoint-%dx%dMB-k%d", cfg.Tasks, cfg.StateBytes/1e6, k),
			Tasks:      cfg.Tasks,
			Collector:  j.col,
			Wall:       j.wall,
			TotalBytes: int64(cfg.Tasks) * cfg.StateBytes * int64(cfg.Steps),
		},
		ComputeSecTotal: cfg.ComputeSec * float64(cfg.Steps),
	}
	for step := 0; step < cfg.Steps; step++ {
		res.StepIOSec = append(res.StepIOSec, float64(stepEnd[step]-stepStart[step]))
	}
	return res
}
