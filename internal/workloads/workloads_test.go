package workloads

import (
	"testing"

	"ensembleio/internal/analysis"
	"ensembleio/internal/cluster"
	"ensembleio/internal/ensemble"
	"ensembleio/internal/ipmio"
)

// quiet returns a small, deterministic Franklin variant for mechanics
// tests (stochastics off, no background load).
func quiet() cluster.Profile {
	p := cluster.Franklin()
	p.NoiseSigma = 0
	p.SlowLuckProb = 0
	p.BackgroundMeanMBps = 0
	p.ConflictProbPerWriterPerOST = 0
	p.MDSSlowProb = 0
	return p
}

func TestIORSmokeEventAccounting(t *testing.T) {
	tasks, reps, k := 16, 2, 4
	r := RunIOR(IORConfig{
		Machine: quiet(), Tasks: tasks, Reps: reps,
		BlockBytes: 64e6, TransferBytes: 16e6, Seed: 1,
	})
	if r.Wall <= 0 {
		t.Fatal("zero wall time")
	}
	writes := r.Collector.OpEvents(ipmio.OpWrite)
	if want := tasks * reps * k; len(writes) != want {
		t.Errorf("%d write events, want %d", len(writes), want)
	}
	opens := r.Collector.OpEvents(ipmio.OpOpen)
	if len(opens) != tasks {
		t.Errorf("%d opens, want %d", len(opens), tasks)
	}
	if want := int64(tasks) * 64e6 * int64(reps); r.TotalBytes != want {
		t.Errorf("TotalBytes = %d, want %d", r.TotalBytes, want)
	}
	// Every write carries the right size and a positive duration.
	for _, e := range writes {
		if e.Bytes != 16e6 {
			t.Fatalf("write size %d, want 16e6", e.Bytes)
		}
		if e.Dur <= 0 {
			t.Fatalf("write with non-positive duration: %+v", e)
		}
	}
	// Phase marks: one per repetition.
	if len(r.Collector.Marks) != reps {
		t.Errorf("%d marks, want %d", len(r.Collector.Marks), reps)
	}
}

func TestIORUniqueOffsets(t *testing.T) {
	r := RunIOR(IORConfig{Machine: quiet(), Tasks: 8, Reps: 1, BlockBytes: 32e6, TransferBytes: 32e6, Seed: 1})
	seen := map[int64]int{}
	for _, e := range r.Collector.OpEvents(ipmio.OpWrite) {
		seen[e.Offset]++
	}
	if len(seen) != 8 {
		t.Errorf("%d distinct offsets, want 8 (one region per task)", len(seen))
	}
}

func TestIORRejectsUnevenSplit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-divisible transfer size")
		}
	}()
	RunIOR(IORConfig{Machine: quiet(), Tasks: 4, BlockBytes: 10e6, TransferBytes: 3e6})
}

func TestMADbenchPatternStructure(t *testing.T) {
	cfg := MADbenchConfig{Machine: quiet(), Tasks: 8, Matrices: 3, Seed: 2}
	r := RunMADbench(cfg)
	reads := r.Collector.OpEvents(ipmio.OpRead)
	writes := r.Collector.OpEvents(ipmio.OpWrite)
	// Per task: 3 S writes + 3 W writes; 3 W reads + 3 C reads.
	if want := 8 * 6; len(writes) != want {
		t.Errorf("%d writes, want %d", len(writes), want)
	}
	if want := 8 * 6; len(reads) != want {
		t.Errorf("%d reads, want %d", len(reads), want)
	}
	// Matrix slots are aligned to 1 MB and strided.
	stride := cfg.Stride()
	if stride != 301e6 {
		t.Errorf("stride %d, want 301e6 for a 300.4 MB matrix", stride)
	}
	for _, e := range writes {
		if e.Offset%1e6 != 0 {
			t.Errorf("write offset %d not 1MB aligned", e.Offset)
		}
	}
	// Seeks are traced (the access pattern is part of diagnosis).
	if len(r.Collector.OpEvents(ipmio.OpSeek)) == 0 {
		t.Error("no seek events traced")
	}
	// Phases: 3 S + 3 W + 3 C marks.
	if len(r.Collector.Marks) != 9 {
		t.Errorf("%d marks, want 9", len(r.Collector.Marks))
	}
}

func TestMADbenchTotalBytes(t *testing.T) {
	cfg := MADbenchConfig{Machine: quiet(), Tasks: 4, Matrices: 2, Seed: 1}
	r := RunMADbench(cfg)
	// 4 tasks x 2 matrices x 300.4 MB x 4 passes (S write, W read,
	// W write, C read).
	if want := int64(4) * 2 * 300_400_000 * 4; r.TotalBytes != want {
		t.Errorf("TotalBytes = %d, want %d", r.TotalBytes, want)
	}
}

func TestGCRMSmallScaleStructure(t *testing.T) {
	cfg := GCRMConfig{Machine: quiet(), Tasks: 32, Seed: 1, MetaOpsPerVar: 5}
	r := RunGCRM(cfg)
	writes := r.Collector.OpEvents(ipmio.OpWrite)
	var data, meta int
	for _, e := range writes {
		if e.Bytes > 64<<10 {
			data++
		} else {
			meta++
		}
	}
	// 32 tasks x (3 + 3*6) records.
	if want := 32 * 21; data != want {
		t.Errorf("%d data writes, want %d", data, want)
	}
	// Superblock + 6 variables x 5 ops, all from rank 0.
	if want := 1 + 6*5; meta != want {
		t.Errorf("%d metadata writes, want %d", meta, want)
	}
	for _, e := range writes {
		if e.Bytes <= 64<<10 && e.Rank != 0 {
			t.Fatalf("metadata write from rank %d, want only rank 0", e.Rank)
		}
	}
	if want := int64(32*21) * 1600000; r.TotalBytes != want {
		t.Errorf("TotalBytes = %d, want %d", r.TotalBytes, want)
	}
}

func TestGCRMAggregatorsWriteAllRecords(t *testing.T) {
	cfg := GCRMConfig{Machine: quiet(), Tasks: 32, Aggregators: 4, Seed: 1, MetaOpsPerVar: 2}
	r := RunGCRM(cfg)
	var data int
	writers := map[int]bool{}
	offsets := map[int64]bool{}
	for _, e := range r.Collector.OpEvents(ipmio.OpWrite) {
		if e.Bytes > 64<<10 {
			data++
			writers[e.Rank] = true
			offsets[e.Offset] = true
		}
	}
	if want := 32 * 21; data != want {
		t.Errorf("%d data writes, want %d (all tasks' records)", data, want)
	}
	if len(writers) != 4 {
		t.Errorf("%d writer ranks, want 4 aggregators", len(writers))
	}
	if len(offsets) != data {
		t.Errorf("%d distinct offsets for %d records: overlapping writes", len(offsets), data)
	}
}

func TestGCRMTwoStageGatherDeliversSameRecords(t *testing.T) {
	cfg := GCRMConfig{Machine: quiet(), Tasks: 32, Aggregators: 4, TwoStage: true, Seed: 1, MetaOpsPerVar: 2}
	r := RunGCRM(cfg)
	var data int
	writers := map[int]bool{}
	for _, e := range r.Collector.OpEvents(ipmio.OpWrite) {
		if e.Bytes > 64<<10 {
			data++
			writers[e.Rank] = true
		}
	}
	if want := 32 * 21; data != want {
		t.Errorf("two-stage wrote %d records, want %d", data, want)
	}
	// Aggregators are world ranks 0, 8, 16, 24.
	for w := range writers {
		if w%8 != 0 {
			t.Errorf("unexpected writer rank %d", w)
		}
	}
}

func TestGCRMAlignmentPadsWrites(t *testing.T) {
	cfg := GCRMConfig{Machine: quiet(), Tasks: 16, Align: true, Seed: 1, MetaOpsPerVar: 2}
	r := RunGCRM(cfg)
	for _, e := range r.Collector.OpEvents(ipmio.OpWrite) {
		if e.Bytes <= 64<<10 {
			continue
		}
		if e.Offset%1e6 != 0 || e.Bytes != 2e6 {
			t.Fatalf("aligned run has unaligned data write off=%d n=%d", e.Offset, e.Bytes)
		}
	}
}

func TestGCRMMetaAggregationDefersToClose(t *testing.T) {
	cfg := GCRMConfig{Machine: quiet(), Tasks: 16, AggregateMetadata: true, Seed: 1, MetaOpsPerVar: 50}
	r := RunGCRM(cfg)
	small, big := 0, 0
	for _, e := range r.Collector.OpEvents(ipmio.OpWrite) {
		if e.Bytes > 64<<10 && e.Bytes != 1600000 {
			big++ // aggregated metadata chunk
		} else if e.Bytes <= 64<<10 {
			small++
		}
	}
	if small != 1 { // only the superblock
		t.Errorf("%d small writes with aggregation, want 1 (superblock)", small)
	}
	if big == 0 {
		t.Error("no aggregated metadata chunk written at close")
	}
}

func TestRunAggregateRate(t *testing.T) {
	r := &Run{Wall: 10, TotalBytes: 500e6}
	if got := r.AggregateMBps(); got != 50 {
		t.Errorf("AggregateMBps = %v, want 50", got)
	}
	if (&Run{Wall: 0}).AggregateMBps() != 0 {
		t.Error("zero wall should give zero rate")
	}
}

func TestPhaseMarksSliceCleanly(t *testing.T) {
	r := RunIOR(IORConfig{Machine: quiet(), Tasks: 8, Reps: 3, BlockBytes: 32e6, TransferBytes: 32e6, Seed: 1})
	phases := analysis.Phases(r.Collector.Events, r.Collector.Marks, r.Wall)
	dataPhases := 0
	for _, ph := range phases {
		n := 0
		for _, e := range ph.Events {
			if e.Op == ipmio.OpWrite {
				n++
			}
		}
		if n > 0 {
			dataPhases++
			if n != 8 {
				t.Errorf("phase %s has %d writes, want 8", ph.Name, n)
			}
		}
	}
	if dataPhases != 3 {
		t.Errorf("%d write phases, want 3", dataPhases)
	}
}

func ensembleDurations(events []ipmio.Event) *ensemble.Dataset {
	d := ensemble.NewDataset(nil)
	for _, e := range events {
		d.Add(float64(e.Dur))
	}
	return d
}

func TestIORReadBack(t *testing.T) {
	r := RunIOR(IORConfig{
		Machine: quiet(), Tasks: 8, Reps: 1,
		BlockBytes: 64e6, TransferBytes: 16e6, ReadBack: true, Seed: 1,
	})
	reads := r.Collector.OpEvents(ipmio.OpRead)
	if want := 8 * 4; len(reads) != want {
		t.Fatalf("%d read events, want %d", len(reads), want)
	}
	for _, e := range reads {
		if e.Bytes != 16e6 {
			t.Fatalf("read size %d, want 16e6", e.Bytes)
		}
	}
	// Reads of a task's own block are sequential: no strided pathology
	// even on the unpatched profile.
	d := ensembleDurations(reads)
	if d.Max() > 10*d.Quantile(0.5) {
		t.Errorf("read-back tail max=%.1f med=%.1f: sequential reads must not degenerate", d.Max(), d.Quantile(0.5))
	}
	// Accounting: reads add one block per task.
	if want := int64(8)*64e6 + int64(8)*64e6; r.TotalBytes != want {
		t.Errorf("TotalBytes = %d, want %d", r.TotalBytes, want)
	}
}

func TestIORFilePerProcess(t *testing.T) {
	r := RunIOR(IORConfig{
		Machine: quiet(), Tasks: 8, Reps: 1,
		BlockBytes: 32e6, TransferBytes: 32e6, FilePerProcess: true, Seed: 1,
	})
	files := map[string]bool{}
	for _, e := range r.Collector.OpEvents(ipmio.OpWrite) {
		files[e.File] = true
		if e.Offset != 0 {
			t.Errorf("FPP write at offset %d, want 0 (own file)", e.Offset)
		}
	}
	if len(files) != 8 {
		t.Errorf("%d distinct files, want 8", len(files))
	}
}

func TestFilePerProcessAvoidsSharedContention(t *testing.T) {
	// Many small unaligned writers: shared-file mode suffers the
	// extent-lock cap; file-per-process does not.
	prof := cluster.Franklin()
	prof.BackgroundMeanMBps = 0
	prof.NoiseSigma = 0
	prof.SlowLuckProb = 0
	run := func(fpp bool) float64 {
		r := RunIOR(IORConfig{
			// Reps > 1: phases after the first start from a barrier,
			// so all 512 writers hit the file system simultaneously.
			Machine: prof, Tasks: 512, Reps: 4,
			BlockBytes: 1600000, TransferBytes: 1600000,
			FilePerProcess: fpp, Seed: 6,
		})
		d := r.Collector.Dataset(func(e ipmio.Event) bool { return e.Op == ipmio.OpWrite })
		return d.Quantile(0.5)
	}
	shared := run(false)
	fpp := run(true)
	if fpp >= shared {
		t.Errorf("FPP median write %.3fs not faster than shared-file %.3fs: per-file contention model broken", fpp, shared)
	}
}

func TestIORTransferSweep(t *testing.T) {
	pts := IORTransferSweep(IORConfig{
		Machine: quiet(), Tasks: 16, Reps: 1, BlockBytes: 64e6,
	}, []int{1, 2, 4}, []int64{1, 2})
	if len(pts) != 3 {
		t.Fatalf("%d points, want 3", len(pts))
	}
	for i, k := range []int{1, 2, 4} {
		if pts[i].K != k || pts[i].TransferBytes != 64e6/int64(k) {
			t.Errorf("point %d: %+v", i, pts[i])
		}
		if len(pts[i].Runs) != 2 {
			t.Errorf("point %d has %d runs, want 2", i, len(pts[i].Runs))
		}
		if pts[i].MeanRateMBps <= 0 {
			t.Errorf("point %d has rate %v", i, pts[i].MeanRateMBps)
		}
		if want := 16 * k; len(pts[i].Runs[0].Collector.OpEvents(ipmio.OpWrite)) != want {
			t.Errorf("point %d run has wrong write count", i)
		}
	}
}

func TestIORWriterSweepAndSaturation(t *testing.T) {
	prof := quiet()
	pts := IORWriterSweep(prof, []int{4, 16, 64}, 64, 32e6, []int64{1, 2})
	if len(pts) != 3 {
		t.Fatalf("%d points, want 3", len(pts))
	}
	// Fixed volume: more writers should not be slower (quiet profile).
	if pts[2].WallSec > pts[0].WallSec {
		t.Errorf("64 writers (%.1fs) slower than 4 (%.1fs)", pts[2].WallSec, pts[0].WallSec)
	}
	w, best := SaturationPoint(pts, 1.5)
	if best <= 0 {
		t.Fatal("zero best wall")
	}
	if w != 4 && w != 16 && w != 64 {
		t.Errorf("saturation point %d not among the sweep", w)
	}
	if _, b := SaturationPoint(nil, 1.5); b != 0 {
		t.Error("empty sweep should return zero")
	}
}

func TestCheckpointStructure(t *testing.T) {
	res := RunCheckpoint(CheckpointConfig{
		Machine: quiet(), Tasks: 16, Steps: 3,
		StateBytes: 64e6, TransferBytes: 16e6, ComputeSec: 5, Seed: 1,
	})
	writes := res.Collector.OpEvents(ipmio.OpWrite)
	if want := 16 * 3 * 4; len(writes) != want {
		t.Errorf("%d writes, want %d", len(writes), want)
	}
	if len(res.StepIOSec) != 3 {
		t.Fatalf("%d step costs, want 3", len(res.StepIOSec))
	}
	for i, s := range res.StepIOSec {
		if s <= 0 {
			t.Errorf("step %d I/O cost %v, want > 0", i, s)
		}
	}
	frac := res.IOFraction()
	if frac <= 0 || frac >= 1 {
		t.Errorf("I/O fraction %v, want in (0,1)", frac)
	}
	// Wall covers compute + checkpoints.
	if float64(res.Wall) < res.ComputeSecTotal {
		t.Errorf("wall %.1f below total compute %.1f", float64(res.Wall), res.ComputeSecTotal)
	}
}

func TestCheckpointFilePerProcess(t *testing.T) {
	res := RunCheckpoint(CheckpointConfig{
		Machine: quiet(), Tasks: 8, Steps: 2,
		StateBytes: 32e6, ComputeSec: 1, FilePerProcess: true, Seed: 1,
	})
	files := map[string]bool{}
	for _, e := range res.Collector.OpEvents(ipmio.OpWrite) {
		files[e.File] = true
	}
	if want := 8 * 2; len(files) != want {
		t.Errorf("%d checkpoint files, want %d (per task per step)", len(files), want)
	}
}

func TestCheckpointRejectsUnevenTransfer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	RunCheckpoint(CheckpointConfig{Machine: quiet(), Tasks: 2, StateBytes: 10e6, TransferBytes: 3e6})
}
