package tracefmt

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"ensembleio/internal/ipmio"
	"ensembleio/internal/sim"
)

func sampleTrace() ([]ipmio.Event, []ipmio.PhaseMark) {
	events := []ipmio.Event{
		{Rank: 0, Op: ipmio.OpOpen, FD: 3, File: "/scratch/a", Start: 0.5, Dur: 0.001},
		{Rank: 0, Op: ipmio.OpWrite, FD: 3, File: "/scratch/a", Offset: 0, Bytes: 512e6, Start: 1, Dur: 30.25},
		{Rank: 7, Op: ipmio.OpWrite, FD: 3, File: "/scratch/a", Offset: 512e6, Bytes: 512e6, Start: 1, Dur: 8.5},
		{Rank: 7, Op: ipmio.OpSeek, FD: 3, File: "/scratch/a", Offset: 0, Start: 10, Dur: 0},
		{Rank: 7, Op: ipmio.OpRead, FD: 4, File: "/scratch/b", Offset: -1, Bytes: 1600000, Start: 12, Dur: 2.25},
		{Rank: 7, Op: ipmio.OpClose, FD: 4, File: "/scratch/b", Start: 15, Dur: 0.002},
	}
	marks := []ipmio.PhaseMark{
		{Name: "phase0", T: 0},
		{Name: "phase1", T: 11.5},
	}
	return events, marks
}

func TestJSONLRoundTrip(t *testing.T) {
	events, marks := sampleTrace()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events, marks); err != nil {
		t.Fatalf("write: %v", err)
	}
	ev2, mk2, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !reflect.DeepEqual(events, ev2) {
		t.Errorf("events round trip mismatch:\n got %+v\nwant %+v", ev2, events)
	}
	if !reflect.DeepEqual(marks, mk2) {
		t.Errorf("marks round trip mismatch: %+v vs %+v", mk2, marks)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	events, marks := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, events, marks); err != nil {
		t.Fatalf("write: %v", err)
	}
	ev2, mk2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !reflect.DeepEqual(events, ev2) {
		t.Errorf("events round trip mismatch:\n got %+v\nwant %+v", ev2, events)
	}
	if !reflect.DeepEqual(marks, mk2) {
		t.Errorf("marks mismatch: %+v vs %+v", mk2, marks)
	}
}

func TestBinarySmallerThanJSON(t *testing.T) {
	events, marks := sampleTrace()
	// Amplify to a realistic volume.
	var big []ipmio.Event
	for i := 0; i < 500; i++ {
		big = append(big, events...)
	}
	var jb, bb bytes.Buffer
	if err := WriteJSONL(&jb, big, marks); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bb, big, marks); err != nil {
		t.Fatal(err)
	}
	if bb.Len() >= jb.Len()/2 {
		t.Errorf("binary %d bytes not <2x smaller than JSON %d bytes", bb.Len(), jb.Len())
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, _, err := ReadBinary(strings.NewReader("NOTIT\nxxxx")); err == nil {
		t.Error("expected bad-magic error")
	}
}

func TestJSONLBadOp(t *testing.T) {
	if _, _, err := ReadJSONL(strings.NewReader(`{"op":"teleport","t":1}` + "\n")); err == nil {
		t.Error("expected unknown-op error")
	}
}

func TestMergeOrdersByStart(t *testing.T) {
	a := []ipmio.Event{
		{Rank: 0, Op: ipmio.OpWrite, Start: 5},
		{Rank: 0, Op: ipmio.OpWrite, Start: 1},
	}
	b := []ipmio.Event{
		{Rank: 1, Op: ipmio.OpWrite, Start: 3},
	}
	m := Merge(a, b)
	if len(m) != 3 {
		t.Fatalf("merged %d, want 3", len(m))
	}
	var prev sim.Time = -1
	for _, e := range m {
		if e.Start < prev {
			t.Fatal("merge not ordered")
		}
		prev = e.Start
	}
}

func TestEmptyTraceRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	ev, mk, err := ReadBinary(&buf)
	if err != nil || len(ev) != 0 || len(mk) != 0 {
		t.Errorf("empty round trip: ev=%v mk=%v err=%v", ev, mk, err)
	}
}
