package tracefmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"ensembleio/internal/telemetry"
)

// ---- Compact span JSONL ----
//
// One span per line, the same wire shape as telemetry.Span. Like the
// event decoder, the reader is hardened against hostile input: bounded
// string lengths, finite times, End >= Start.

// WriteSpans encodes spans as one JSON object per line, in order.
func WriteSpans(w io.Writer, spans []telemetry.Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, sp := range spans {
		if err := enc.Encode(sp); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSpans decodes a span JSONL stream, validating each record.
func ReadSpans(r io.Reader) ([]telemetry.Span, error) {
	var spans []telemetry.Span
	dec := json.NewDecoder(r)
	for {
		var sp telemetry.Span
		if err := dec.Decode(&sp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("tracefmt: bad span record: %w", err)
		}
		if err := validateSpan(sp); err != nil {
			return nil, err
		}
		spans = append(spans, sp)
	}
	return spans, nil
}

func validateSpan(sp telemetry.Span) error {
	if len(sp.Cat) > maxStringLen || len(sp.Name) > maxStringLen {
		return fmt.Errorf("tracefmt: span string exceeds %d bytes", maxStringLen)
	}
	if sp.Name == "" {
		return fmt.Errorf("tracefmt: span with empty name")
	}
	if !finite(sp.Start) || !finite(sp.End) {
		return fmt.Errorf("tracefmt: span %q has non-finite time", sp.Name)
	}
	if sp.End < sp.Start {
		return fmt.Errorf("tracefmt: span %q ends (%v) before it starts (%v)", sp.Name, sp.End, sp.Start)
	}
	return nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
