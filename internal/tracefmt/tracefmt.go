// Package tracefmt persists IPM-I/O traces. Two encodings are
// provided: a line-oriented JSON form for interoperability and
// eyeballing, and a compact binary form (varint fields plus a file-
// path interning table) for the full traces of large runs, where a
// 10,240-task trace in JSON would be needlessly bulky.
package tracefmt

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"ensembleio/internal/ipmio"
	"ensembleio/internal/sim"
)

// ---- JSONL ----

type jsonRecord struct {
	Type string  `json:"type,omitempty"` // "", "mark"
	Rank int     `json:"r"`
	Op   string  `json:"op,omitempty"`
	FD   int     `json:"fd,omitempty"`
	File string  `json:"f,omitempty"`
	Off  int64   `json:"o,omitempty"`
	N    int64   `json:"n,omitempty"`
	T    float64 `json:"t"`
	D    float64 `json:"d,omitempty"`
	Name string  `json:"name,omitempty"`
}

// WriteJSONL encodes events and phase marks as one JSON object per
// line, in the order given.
func WriteJSONL(w io.Writer, events []ipmio.Event, marks []ipmio.PhaseMark) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, m := range marks {
		if err := enc.Encode(jsonRecord{Type: "mark", Name: m.Name, T: float64(m.T)}); err != nil {
			return err
		}
	}
	for _, e := range events {
		rec := jsonRecord{
			Rank: e.Rank, Op: e.Op.String(), FD: e.FD, File: e.File,
			Off: e.Offset, N: e.Bytes, T: float64(e.Start), D: float64(e.Dur),
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL decodes a JSONL trace.
func ReadJSONL(r io.Reader) ([]ipmio.Event, []ipmio.PhaseMark, error) {
	var events []ipmio.Event
	var marks []ipmio.PhaseMark
	dec := json.NewDecoder(r)
	for {
		var rec jsonRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("tracefmt: bad JSONL record: %w", err)
		}
		if rec.Type == "mark" {
			marks = append(marks, ipmio.PhaseMark{Name: rec.Name, T: sim.Time(rec.T)})
			continue
		}
		op, ok := ipmio.ParseOp(rec.Op)
		if !ok {
			return nil, nil, fmt.Errorf("tracefmt: unknown op %q", rec.Op)
		}
		events = append(events, ipmio.Event{
			Rank: rec.Rank, Op: op, FD: rec.FD, File: rec.File,
			Offset: rec.Off, Bytes: rec.N, Start: sim.Time(rec.T), Dur: sim.Duration(rec.D),
		})
	}
	return events, marks, nil
}

// ---- Binary ----

const binMagic = "IPMB1\n"

// maxStringLen bounds decoded path and mark names: well past any real
// file path, small enough that a corrupt length field cannot force a
// huge allocation.
const maxStringLen = 1 << 20

const (
	kindEvent = 0
	kindMark  = 1
	kindPath  = 2
)

// WriteBinary encodes a trace compactly. File paths are interned: the
// first reference to a path emits a definition record, later events
// carry only its id.
func WriteBinary(w io.Writer, events []ipmio.Event, marks []ipmio.PhaseMark) error {
	// The whole trace is encoded into one buffer and written with a
	// single call: the initial size estimate (~40 bytes per event)
	// covers typical traces, so the buffer grows at most a handful of
	// times per run instead of flushing thousands of small writes.
	buf := make([]byte, 0, len(binMagic)+40*len(events)+48*len(marks)+64)
	buf = append(buf, binMagic...)
	var vb [binary.MaxVarintLen64]byte
	putUv := func(v uint64) {
		n := binary.PutUvarint(vb[:], v)
		buf = append(buf, vb[:n]...)
	}
	putIv := func(v int64) {
		n := binary.PutVarint(vb[:], v)
		buf = append(buf, vb[:n]...)
	}
	putF := func(f float64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
		buf = append(buf, b[:]...)
	}
	putS := func(s string) {
		putUv(uint64(len(s)))
		buf = append(buf, s...)
	}

	for _, m := range marks {
		putUv(kindMark)
		putS(m.Name)
		putF(float64(m.T))
	}

	paths := make(map[string]uint64)
	for _, e := range events {
		id, ok := paths[e.File]
		if !ok {
			id = uint64(len(paths))
			paths[e.File] = id
			putUv(kindPath)
			putUv(id)
			putS(e.File)
		}
		putUv(kindEvent)
		putUv(uint64(e.Rank))
		putUv(uint64(e.Op))
		putUv(uint64(e.FD))
		putUv(id)
		putIv(e.Offset)
		putIv(e.Bytes)
		putF(float64(e.Start))
		putF(float64(e.Dur))
	}
	_, err := w.Write(buf)
	return err
}

// ReadBinary decodes a binary trace.
func ReadBinary(r io.Reader) ([]ipmio.Event, []ipmio.PhaseMark, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, nil, fmt.Errorf("tracefmt: missing magic: %w", err)
	}
	if string(magic) != binMagic {
		return nil, nil, fmt.Errorf("tracefmt: bad magic %q", magic)
	}
	getF := func() (float64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
	}
	getS := func() (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		// A corrupt or adversarial trace can claim an absurd length;
		// bound the allocation before trusting it.
		if n > maxStringLen {
			return "", fmt.Errorf("tracefmt: string length %d exceeds limit %d", n, maxStringLen)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}

	var events []ipmio.Event
	var marks []ipmio.PhaseMark
	paths := make(map[uint64]string)
	for {
		kind, err := binary.ReadUvarint(br)
		if err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, err
		}
		switch kind {
		case kindMark:
			name, err := getS()
			if err != nil {
				return nil, nil, err
			}
			t, err := getF()
			if err != nil {
				return nil, nil, err
			}
			marks = append(marks, ipmio.PhaseMark{Name: name, T: sim.Time(t)})
		case kindPath:
			id, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, nil, err
			}
			s, err := getS()
			if err != nil {
				return nil, nil, err
			}
			paths[id] = s
		case kindEvent:
			var e ipmio.Event
			rank, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, nil, err
			}
			op, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, nil, err
			}
			fd, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, nil, err
			}
			pid, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, nil, err
			}
			off, err := binary.ReadVarint(br)
			if err != nil {
				return nil, nil, err
			}
			n, err := binary.ReadVarint(br)
			if err != nil {
				return nil, nil, err
			}
			start, err := getF()
			if err != nil {
				return nil, nil, err
			}
			dur, err := getF()
			if err != nil {
				return nil, nil, err
			}
			e.Rank = int(rank)
			e.Op = ipmio.Op(op)
			e.FD = int(fd)
			e.File = paths[pid]
			e.Offset = off
			e.Bytes = n
			e.Start = sim.Time(start)
			e.Dur = sim.Duration(dur)
			events = append(events, e)
		default:
			return nil, nil, fmt.Errorf("tracefmt: unknown record kind %d", kind)
		}
	}
	return events, marks, nil
}

// Merge combines per-rank (or per-run) event slices into one stream
// ordered by start time (stable for equal timestamps).
func Merge(traces ...[]ipmio.Event) []ipmio.Event {
	var out []ipmio.Event
	for _, tr := range traces {
		out = append(out, tr...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}
