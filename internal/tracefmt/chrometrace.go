package tracefmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"ensembleio/internal/telemetry"
)

// ---- Chrome trace-event export ----
//
// Spans render as Chrome trace-event JSON, loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing. Virtual time maps onto the
// format's microsecond timeline: a span over [Start, End) seconds of
// simulated time becomes a complete ("X") event at ts = Start*1e6.
//
// Track layout: run-scoped spans (Rank < 0 — workload phases, fault
// windows) land on pid 0 "run", one thread per category; per-rank
// spans land on pid 1 "ranks" with tid = rank, so Perfetto shows one
// lane per rank under a single process group.

// chromeEvent is one entry of the traceEvents array. Only the "X"
// (complete) and "M" (metadata) phases are emitted.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

const (
	chromePIDRun   = 0
	chromePIDRanks = 1
)

// runCats fixes the thread-lane order for run-scoped span categories
// on the "run" process; unknown categories share a catch-all lane
// after them. A slice, not a map, so export order is deterministic.
var runCats = []string{"phase", "fault"}

func runTID(cat string) int {
	for i, c := range runCats {
		if c == cat {
			return i
		}
	}
	return len(runCats)
}

// WriteChromeTrace renders spans as a Chrome trace-event JSON object.
func WriteChromeTrace(w io.Writer, spans []telemetry.Span) error {
	tr := chromeTrace{DisplayTimeUnit: "ms"}
	meta := func(name string, pid, tid int, args map[string]string) {
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: name, Ph: "M", PID: pid, TID: tid, Args: args,
		})
	}
	meta("process_name", chromePIDRun, 0, map[string]string{"name": "run"})
	meta("process_name", chromePIDRanks, 0, map[string]string{"name": "ranks"})
	for tid, cat := range runCats {
		meta("thread_name", chromePIDRun, tid, map[string]string{"name": cat})
	}
	for _, sp := range spans {
		if err := validateSpan(sp); err != nil {
			return err
		}
		ev := chromeEvent{
			Name: sp.Name, Cat: sp.Cat, Ph: "X",
			TS: sp.Start * 1e6, Dur: (sp.End - sp.Start) * 1e6,
		}
		if sp.Rank < 0 {
			ev.PID = chromePIDRun
			ev.TID = runTID(sp.Cat)
		} else {
			ev.PID = chromePIDRanks
			ev.TID = sp.Rank
		}
		tr.TraceEvents = append(tr.TraceEvents, ev)
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", " ")
	if err := enc.Encode(tr); err != nil {
		return err
	}
	return bw.Flush()
}

// ValidateChromeTrace parses a Chrome trace-event JSON stream and
// checks it against the subset of the format WriteChromeTrace emits:
// every event has a name, phase "X" or "M", and finite non-negative
// ts/dur. Returns the number of events validated. This is the schema
// check the Makefile trace-smoke target runs over exporter output.
func ValidateChromeTrace(r io.Reader) (int, error) {
	var tr chromeTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tr); err != nil {
		return 0, fmt.Errorf("tracefmt: bad chrome trace: %w", err)
	}
	for i, ev := range tr.TraceEvents {
		if ev.Name == "" || len(ev.Name) > maxStringLen {
			return 0, fmt.Errorf("tracefmt: chrome event %d has bad name", i)
		}
		if ev.Ph != "X" && ev.Ph != "M" {
			return 0, fmt.Errorf("tracefmt: chrome event %d has unsupported phase %q", i, ev.Ph)
		}
		if !finite(ev.TS) || ev.TS < 0 || !finite(ev.Dur) || ev.Dur < 0 {
			return 0, fmt.Errorf("tracefmt: chrome event %d has bad ts/dur (%v, %v)", i, ev.TS, ev.Dur)
		}
	}
	return len(tr.TraceEvents), nil
}
