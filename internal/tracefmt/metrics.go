package tracefmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"ensembleio/internal/telemetry"
)

// ---- Telemetry snapshot persistence ----
//
// A telemetry.Snapshot is already sorted by name, so the indented JSON
// written here is byte-deterministic for a given run. The reader
// validates what the simulator guarantees on output — finite values,
// non-negative counts, ordered bin edges — so downstream consumers
// (cmd/ensembletop) can trust loaded snapshots.

// WriteMetrics encodes a telemetry snapshot as indented JSON.
func WriteMetrics(w io.Writer, snap *telemetry.Snapshot) error {
	if snap == nil {
		return fmt.Errorf("tracefmt: nil telemetry snapshot")
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", " ")
	if err := enc.Encode(snap); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadMetrics decodes and validates a telemetry snapshot.
func ReadMetrics(r io.Reader) (*telemetry.Snapshot, error) {
	var snap telemetry.Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&snap); err != nil {
		return nil, fmt.Errorf("tracefmt: bad telemetry snapshot: %w", err)
	}
	for _, c := range snap.Counters {
		if err := checkMetricName(c.Name); err != nil {
			return nil, err
		}
		if !finite(c.Value) {
			return nil, fmt.Errorf("tracefmt: counter %q has non-finite value", c.Name)
		}
	}
	for _, g := range snap.Gauges {
		if err := checkMetricName(g.Name); err != nil {
			return nil, err
		}
		if !finite(g.Value) || !finite(g.Max) {
			return nil, fmt.Errorf("tracefmt: gauge %q has non-finite value", g.Name)
		}
	}
	for _, h := range snap.Hists {
		if err := checkMetricName(h.Name); err != nil {
			return nil, err
		}
		if h.Count < 0 || h.Under < 0 || h.Under > h.Count {
			return nil, fmt.Errorf("tracefmt: hist %q has bad counts (%d, %d)", h.Name, h.Count, h.Under)
		}
		if !finite(h.Sum) || !finite(h.Min) || !finite(h.Max) {
			return nil, fmt.Errorf("tracefmt: hist %q has non-finite summary", h.Name)
		}
		var binned int64
		prevHi := 0.0
		for _, b := range h.Bins {
			if !finite(b.Lo) || !finite(b.Hi) || b.Lo >= b.Hi || b.Lo < prevHi {
				return nil, fmt.Errorf("tracefmt: hist %q has bad bin [%v, %v)", h.Name, b.Lo, b.Hi)
			}
			if b.Count < 0 {
				return nil, fmt.Errorf("tracefmt: hist %q has negative bin count", h.Name)
			}
			prevHi = b.Hi
			binned += b.Count
		}
		if binned != h.Count-h.Under {
			return nil, fmt.Errorf("tracefmt: hist %q bins sum to %d, want %d", h.Name, binned, h.Count-h.Under)
		}
	}
	return &snap, nil
}

func checkMetricName(name string) error {
	if name == "" {
		return fmt.Errorf("tracefmt: metric with empty name")
	}
	if len(name) > maxStringLen {
		return fmt.Errorf("tracefmt: metric name exceeds %d bytes", maxStringLen)
	}
	return nil
}
