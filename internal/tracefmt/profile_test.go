package tracefmt

import (
	"bytes"
	"math"
	"testing"

	"ensembleio/internal/ensemble"
	"ensembleio/internal/ipmio"
	"ensembleio/internal/sim"
)

func profiledCollector() *ipmio.Collector {
	c := ipmio.NewCollector(ipmio.ProfileMode | ipmio.TraceMode)
	for i := 0; i < 500; i++ {
		c.Record(ipmio.Event{
			Rank: i % 16, Op: ipmio.OpWrite, FD: 3,
			Offset: int64(i) * 1e6, Bytes: 1e6,
			Start: sim.Time(i), Dur: sim.Duration(0.5 + float64(i%7)*0.3),
		})
	}
	for i := 0; i < 100; i++ {
		c.Record(ipmio.Event{
			Rank: i % 16, Op: ipmio.OpRead, FD: 3,
			Offset: int64(i) * 1e6, Bytes: 1e6,
			Start: sim.Time(500 + i), Dur: 2.0,
		})
	}
	c.Mark("phase1", 0)
	c.Mark("phase2", 250)
	return c
}

func TestProfileRoundTrip(t *testing.T) {
	c := profiledCollector()
	p, err := ProfileOf(c)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	p2, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}

	for _, op := range []ipmio.Op{ipmio.OpWrite, ipmio.OpRead} {
		orig, got := p.Duration(op), p2.Duration(op)
		if got == nil {
			t.Fatalf("%v histogram lost in round trip", op)
		}
		if got.Total() != orig.Total() {
			t.Errorf("%v total %v, want %v", op, got.Total(), orig.Total())
		}
		if math.Abs(got.Mean()-orig.Mean()) > 1e-9 {
			t.Errorf("%v mean %v, want %v", op, got.Mean(), orig.Mean())
		}
	}
	if len(p2.Marks) != 2 || p2.PhaseMarks()[1].Name != "phase2" {
		t.Errorf("marks lost: %+v", p2.Marks)
	}
	// Ops with no events are omitted entirely.
	if p2.Duration(ipmio.OpFsync) != nil {
		t.Error("empty op histogram serialized")
	}
}

func TestProfileCapturesTraceStatistics(t *testing.T) {
	c := profiledCollector()
	p, err := ProfileOf(c)
	if err != nil {
		t.Fatal(err)
	}
	trace := c.Dataset(func(e ipmio.Event) bool { return e.Op == ipmio.OpWrite })
	prof := p.Duration(ipmio.OpWrite)
	if math.Abs(prof.Mean()-trace.Mean())/trace.Mean() > 0.1 {
		t.Errorf("profile mean %v vs trace mean %v", prof.Mean(), trace.Mean())
	}
	if math.Abs(prof.Quantile(0.5)-trace.Quantile(0.5))/trace.Quantile(0.5) > 0.2 {
		t.Errorf("profile median %v vs trace median %v", prof.Quantile(0.5), trace.Quantile(0.5))
	}
}

func TestProfileMuchSmallerThanTrace(t *testing.T) {
	c := profiledCollector()
	p, _ := ProfileOf(c)
	var profBuf, traceBuf bytes.Buffer
	if err := WriteProfile(&profBuf, p); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&traceBuf, c.Events, c.Marks); err != nil {
		t.Fatal(err)
	}
	if profBuf.Len() >= traceBuf.Len() {
		t.Errorf("profile (%d B) not smaller than trace (%d B); it should be the size of the binning, not the event count",
			profBuf.Len(), traceBuf.Len())
	}
}

func TestProfileOfTraceOnlyCollectorFails(t *testing.T) {
	c := ipmio.NewCollector(ipmio.TraceMode)
	if _, err := ProfileOf(c); err == nil {
		t.Error("ProfileOf accepted a trace-only collector")
	}
}

func TestHistogramJSONValidation(t *testing.T) {
	cases := []string{
		`{"edges":[1],"counts":[]}`,        // too few edges
		`{"edges":[1,2,3],"counts":[1]}`,   // count/bin mismatch
		`{"edges":[1,3,2],"counts":[1,1]}`, // non-increasing edges
		`{"edges":"nope","counts":[1]}`,    // wrong type
	}
	for _, tc := range cases {
		var h ensemble.Histogram
		if err := h.UnmarshalJSON([]byte(tc)); err == nil {
			t.Errorf("accepted invalid histogram %s", tc)
		}
	}
}

func TestHistogramJSONPreservesLogBinning(t *testing.T) {
	h := ensemble.NewHistogram(ensemble.LogBins(0.1, 100, 3))
	h.Add(5)
	h.Add(0.01) // underflow
	data, err := h.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var h2 ensemble.Histogram
	if err := h2.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if !h2.Bins.Log {
		t.Error("log flag lost")
	}
	if h2.Underflow() != 1 || h2.Total() != 2 {
		t.Errorf("counts lost: under=%v total=%v", h2.Underflow(), h2.Total())
	}
}
