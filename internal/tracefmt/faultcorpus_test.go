package tracefmt_test

// The fuzz corpus under testdata/fuzz/FuzzTraceDecode is seeded with
// real traces from faulted simulations — one per fault type — so the
// fuzzer mutates from inputs that exercise the encoder paths a
// pathological run actually produces (stall-stretched durations,
// interleaved marks, per-process path tables) rather than only the
// tiny hand-written seeds in fuzz_test.go. Regenerate after a trace
// format change with
//
//	go test -run TestFaultCorpus ./internal/tracefmt -updatecorpus
//
// This lives in an external test package so it can drive the root
// facade (which itself depends on tracefmt) without an import cycle.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"ensembleio"
	"ensembleio/internal/tracefmt"
)

var updateCorpus = flag.Bool("updatecorpus", false, "regenerate the fault-scenario fuzz corpus under testdata/fuzz")

// faultCorpusCases: one small faulted IOR run per fault type. Sizes
// are deliberately tiny — the corpus wants structural variety, not
// statistical fidelity.
func faultCorpusCases() map[string]ensembleio.Fault {
	return map[string]ensembleio.Fault{
		"fault-slow-ost":    &ensembleio.SlowOST{OST: 3, Factor: 0.05},
		"fault-flaky-ost":   &ensembleio.FlakyOST{OST: 1, StartSec: 0.5, PeriodSec: 2, StallSec: 0.8},
		"fault-slow-node":   &ensembleio.SlowNodeLink{Node: 1, Factor: 0.1},
		"fault-brownout":    &ensembleio.MDSBrownout{Concurrency: 2, SlowProb: 0.3, SlowLoSec: 0.1, SlowHiSec: 0.5},
		"fault-bg-bursts":   &ensembleio.BackgroundBursts{MBps: 12000, OnSec: 1, OffSec: 1},
		"fault-combo-clean": nil, // a clean run of the same shape, for contrast
	}
}

func faultCorpusRun(f ensembleio.Fault) *ensembleio.Run {
	cfg := ensembleio.IORConfig{
		Machine:        ensembleio.Franklin(),
		Tasks:          8,
		BlockBytes:     8e6,
		TransferBytes:  4e6,
		Reps:           2,
		FilePerProcess: true,
		StripeCount:    1,
		Seed:           21,
	}
	if f != nil {
		cfg.Faults = &ensembleio.Scenario{Faults: []ensembleio.Fault{f}}
	}
	return ensembleio.RunIOR(cfg)
}

func corpusDir(target string) string {
	return filepath.Join("testdata", "fuzz", target)
}

// writeCorpusEntry writes data as a Go fuzz-corpus file ("go test
// fuzz v1" header plus a quoted []byte literal).
func writeCorpusEntry(t *testing.T, dir, name string, data []byte) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

// readCorpusEntry parses a corpus file back into the raw seed bytes.
func readCorpusEntry(t *testing.T, path string) []byte {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing corpus entry %s — run `go test -run TestFaultCorpus ./internal/tracefmt -updatecorpus` (%v)", path, err)
	}
	lines := strings.SplitN(string(raw), "\n", 3)
	if len(lines) < 2 || lines[0] != "go test fuzz v1" {
		t.Fatalf("%s: not a go fuzz v1 corpus file", path)
	}
	lit := strings.TrimSuffix(strings.TrimSpace(lines[1]), ")")
	lit = strings.TrimPrefix(lit, "[]byte(")
	s, err := strconv.Unquote(lit)
	if err != nil {
		t.Fatalf("%s: unquoting corpus literal: %v", path, err)
	}
	return []byte(s)
}

// TestFaultCorpus regenerates (with -updatecorpus) or validates the
// checked-in fault-trace corpus: every entry must decode as a binary
// (or JSONL) trace with events and phase marks present.
func TestFaultCorpus(t *testing.T) {
	binDir := corpusDir("FuzzTraceDecode")
	jsonlDir := corpusDir("FuzzTraceDecodeJSONL")

	if *updateCorpus {
		for name, f := range faultCorpusCases() {
			run := faultCorpusRun(f)
			var bin bytes.Buffer
			if err := tracefmt.WriteBinary(&bin, run.Collector.Events, run.Collector.Marks); err != nil {
				t.Fatal(err)
			}
			writeCorpusEntry(t, binDir, name, bin.Bytes())
			t.Logf("wrote %s (%d events, %d bytes)", filepath.Join(binDir, name), len(run.Collector.Events), bin.Len())
		}
		// One JSONL seed is enough for the text decoder: the slow-OST
		// trace, whose stretched durations exercise float formatting.
		run := faultCorpusRun(&ensembleio.SlowOST{OST: 3, Factor: 0.05})
		var jl bytes.Buffer
		if err := tracefmt.WriteJSONL(&jl, run.Collector.Events, run.Collector.Marks); err != nil {
			t.Fatal(err)
		}
		writeCorpusEntry(t, jsonlDir, "fault-slow-ost", jl.Bytes())
		return
	}

	for name := range faultCorpusCases() {
		data := readCorpusEntry(t, filepath.Join(binDir, name))
		events, marks, err := tracefmt.ReadBinary(bytes.NewReader(data))
		if err != nil {
			t.Errorf("%s: corpus trace no longer decodes: %v", name, err)
			continue
		}
		if len(events) == 0 || len(marks) == 0 {
			t.Errorf("%s: corpus trace decoded to %d events, %d marks — want both non-empty", name, len(events), len(marks))
		}
	}
	data := readCorpusEntry(t, filepath.Join(jsonlDir, "fault-slow-ost"))
	events, marks, err := tracefmt.ReadJSONL(bytes.NewReader(data))
	if err != nil {
		t.Errorf("JSONL corpus trace no longer decodes: %v", err)
	} else if len(events) == 0 || len(marks) == 0 {
		t.Errorf("JSONL corpus trace decoded to %d events, %d marks — want both non-empty", len(events), len(marks))
	}
}
