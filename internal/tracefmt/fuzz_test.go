package tracefmt

import (
	"bytes"
	"testing"

	"ensembleio/internal/ensemble"
	"ensembleio/internal/ipmio"
)

// Fuzz targets for the persistence layer: decoders must never panic
// on arbitrary input, and anything they accept must re-encode to a
// stable canonical form (decode∘encode is a fixpoint after one
// round). Both properties are what lets analysis tooling ingest
// traces from untrusted or half-written files.

// fuzzSeedEvents is a small trace exercising every field class:
// negative offsets, zero durations, repeated and fresh paths, marks.
func fuzzSeedEvents() ([]ipmio.Event, []ipmio.PhaseMark) {
	events := []ipmio.Event{
		{Rank: 0, Op: ipmio.OpOpen, FD: 3, File: "/scratch/a", Start: 0.5, Dur: 0.01},
		{Rank: 1, Op: ipmio.OpWrite, FD: 3, File: "/scratch/a", Offset: 1 << 20, Bytes: 4096, Start: 1.25, Dur: 2.5},
		{Rank: 1, Op: ipmio.OpSeek, FD: 3, File: "/scratch/a", Offset: -512, Start: 4.0},
		{Rank: 2, Op: ipmio.OpRead, FD: 4, File: "/scratch/b", Offset: 0, Bytes: 1 << 16, Start: 4.5, Dur: 0.125},
		{Rank: 0, Op: ipmio.OpClose, FD: 3, File: "/scratch/a", Start: 9.75, Dur: 0.001},
	}
	marks := []ipmio.PhaseMark{{Name: "phase-0", T: 0}, {Name: "phase-1", T: 5.5}}
	return events, marks
}

func FuzzTraceDecode(f *testing.F) {
	events, marks := fuzzSeedEvents()
	var full bytes.Buffer
	if err := WriteBinary(&full, events, marks); err != nil {
		f.Fatal(err)
	}
	f.Add(full.Bytes())
	var short bytes.Buffer
	if err := WriteBinary(&short, events[:1], nil); err != nil {
		f.Fatal(err)
	}
	f.Add(short.Bytes())
	f.Add([]byte(binMagic))                             // header only
	f.Add(full.Bytes()[:len(full.Bytes())-3])           // truncated tail
	f.Add(append(full.Bytes(), 0xff, 0xff, 0xff, 0x7f)) // trailing garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		events, marks, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return // rejecting bad input is fine; panicking is not
		}
		// Accepted input must re-encode, and the re-encoding must be
		// a canonical fixpoint: decode(encode(x)) encodes to the same
		// bytes again.
		var once bytes.Buffer
		if err := WriteBinary(&once, events, marks); err != nil {
			t.Fatalf("re-encoding accepted trace: %v", err)
		}
		ev2, mk2, err := ReadBinary(bytes.NewReader(once.Bytes()))
		if err != nil {
			t.Fatalf("decoding own encoding: %v", err)
		}
		var twice bytes.Buffer
		if err := WriteBinary(&twice, ev2, mk2); err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(once.Bytes(), twice.Bytes()) {
			t.Fatalf("encode∘decode is not a fixpoint: %d vs %d bytes", once.Len(), twice.Len())
		}
	})
}

func FuzzTraceDecodeJSONL(f *testing.F) {
	events, marks := fuzzSeedEvents()
	var jsonl bytes.Buffer
	if err := WriteJSONL(&jsonl, events, marks); err != nil {
		f.Fatal(err)
	}
	f.Add(jsonl.Bytes())
	f.Add([]byte(`{"type":"mark","name":"p","t":1}`))
	f.Add([]byte(`{"r":1,"op":"write","t":0.5}`))
	f.Add([]byte(`{"r":1,"op":"nosuch","t":0.5}`))
	f.Add([]byte("{"))

	f.Fuzz(func(t *testing.T, data []byte) {
		events, marks, err := ReadJSONL(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, events, marks); err != nil {
			t.Fatalf("re-encoding accepted JSONL trace: %v", err)
		}
	})
}

func FuzzProfileJSON(f *testing.F) {
	// A real profile as primary seed.
	h := ensemble.NewHistogram(ensemble.LinearBins(0, 10, 4))
	h.Add(0.5)
	h.Add(3)
	h.AddW(12, 2) // overflow mass
	p := &Profile{
		Durations: map[string]*ensemble.Histogram{"write": h},
		Rates:     map[string]*ensemble.Histogram{},
		Marks:     []profileMark{{Name: "phase-0", T: 1.5}},
	}
	var buf bytes.Buffer
	if err := WriteProfile(&buf, p); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"durations":{},"rates":{}}`))
	f.Add([]byte(`{"durations":{"write":{"edges":[0,1],"counts":[1]}}}`))
	f.Add([]byte(`{"durations":{"write":{"edges":["NaN",1],"counts":[1]}}}`))
	f.Add([]byte(`{"durations":{"write":{"edges":[0],"counts":[]}}}`))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadProfile(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever was accepted must survive use and re-encoding.
		for op := ipmio.OpOpen; op <= ipmio.OpFsync; op++ {
			if d := p.Duration(op); d != nil {
				_ = d.Total()
				_ = d.Quantile(0.5)
			}
			if r := p.Rate(op); r != nil {
				_ = r.Mean()
			}
		}
		_ = p.PhaseMarks()
		var out bytes.Buffer
		if err := WriteProfile(&out, p); err != nil {
			t.Fatalf("re-encoding accepted profile: %v", err)
		}
	})
}

// TestReadBinaryLengthBomb pins the allocation guard: a record
// claiming a multi-gigabyte path must be rejected, not allocated.
func TestReadBinaryLengthBomb(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(binMagic)
	buf.WriteByte(kindMark)
	// Uvarint for 2^40: far beyond maxStringLen.
	buf.Write([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02})
	if _, _, err := ReadBinary(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("expected error for absurd string length, got nil")
	}
}

// TestProfileRejectsNonFinite pins the histogram JSON hardening.
func TestProfileRejectsNonFinite(t *testing.T) {
	cases := []string{
		`{"durations":{"write":{"edges":[0,"NaN"],"counts":[1]}}}`,
		`{"durations":{"write":{"edges":[0,1],"counts":[-3]}}}`,
		`{"durations":{"write":{"edges":[0,1],"counts":["Infinity"]}}}`,
	}
	for _, c := range cases {
		if _, err := ReadProfile(bytes.NewReader([]byte(c))); err == nil {
			t.Errorf("profile %s accepted, want error", c)
		}
	}
}
