package tracefmt

import (
	"encoding/json"
	"fmt"
	"io"

	"ensembleio/internal/ensemble"
	"ensembleio/internal/ipmio"
	"ensembleio/internal/sim"
)

// Profile is the persistent form of a profile-mode collection: per-op
// duration and rate histograms plus phase marks — "just enough to
// define the distribution" (§VI), typically a few kilobytes regardless
// of how many million events the job issued.
type Profile struct {
	// Durations maps op name -> completion-time histogram (seconds).
	Durations map[string]*ensemble.Histogram `json:"durations"`
	// Rates maps op name -> size-normalized histogram (sec/MB).
	Rates map[string]*ensemble.Histogram `json:"rates"`
	// Marks are the phase boundaries.
	Marks []profileMark `json:"marks,omitempty"`
}

type profileMark struct {
	Name string  `json:"name"`
	T    float64 `json:"t"`
}

// ProfileOf extracts the persistent profile from a profile-mode
// collector. Empty histograms are omitted.
func ProfileOf(c *ipmio.Collector) (*Profile, error) {
	p := &Profile{
		Durations: make(map[string]*ensemble.Histogram),
		Rates:     make(map[string]*ensemble.Histogram),
	}
	for op := ipmio.OpOpen; op <= ipmio.OpFsync; op++ {
		d := c.DurProfile(op)
		if d == nil {
			return nil, fmt.Errorf("tracefmt: collector is not in profile mode")
		}
		if d.Total() > 0 {
			p.Durations[op.String()] = d
		}
		if r := c.RateProfile(op); r != nil && r.Total() > 0 {
			p.Rates[op.String()] = r
		}
	}
	for _, m := range c.Marks {
		p.Marks = append(p.Marks, profileMark{Name: m.Name, T: float64(m.T)})
	}
	return p, nil
}

// PhaseMarks returns the profile's marks in collector form.
func (p *Profile) PhaseMarks() []ipmio.PhaseMark {
	var out []ipmio.PhaseMark
	for _, m := range p.Marks {
		out = append(out, ipmio.PhaseMark{Name: m.Name, T: sim.Time(m.T)})
	}
	return out
}

// Duration returns the duration histogram for an op, or nil.
func (p *Profile) Duration(op ipmio.Op) *ensemble.Histogram {
	return p.Durations[op.String()]
}

// Rate returns the sec/MB histogram for an op, or nil.
func (p *Profile) Rate(op ipmio.Op) *ensemble.Histogram {
	return p.Rates[op.String()]
}

// WriteProfile serializes the profile as indented JSON.
func WriteProfile(w io.Writer, p *Profile) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(p)
}

// ReadProfile deserializes a profile.
func ReadProfile(r io.Reader) (*Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("tracefmt: bad profile: %w", err)
	}
	return &p, nil
}
