package tracefmt

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ensembleio/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testSpans is a fixed span set covering every track the exporter
// lays out: run-scoped phases and fault windows plus per-rank IO.
func testSpans() []telemetry.Span {
	return []telemetry.Span{
		{Cat: "phase", Name: "write-phase-0", Rank: -1, Start: 0, End: 30.5},
		{Cat: "phase", Name: "write-phase-1", Rank: -1, Start: 30.5, End: 62},
		{Cat: "fault", Name: "ost1-stall", Rank: -1, Start: 5, End: 13},
		{Cat: "fault", Name: "ost1-stall", Rank: -1, Start: 35, End: 43},
		{Cat: "io", Name: "write", Rank: 0, Start: 0.25, End: 28.75},
		{Cat: "io", Name: "write", Rank: 1, Start: 0.25, End: 30.5},
		{Cat: "io", Name: "open", Rank: 1, Start: 0, End: 0.25},
	}
}

func testSnapshot() *telemetry.Snapshot {
	sink := telemetry.New()
	c := sink.Counter("lustre.write_mb")
	c.Add(512)
	g := sink.Gauge("sim.heap_high_water")
	g.Set(40)
	g.Set(17)
	h := sink.Hist("lustre.stream_service_s")
	for _, v := range []float64{0.5, 1.5, 2.5, 30, 0} {
		h.Observe(v)
	}
	return sink.Snapshot()
}

func TestSpansRoundTrip(t *testing.T) {
	spans := testSpans()
	var buf bytes.Buffer
	if err := WriteSpans(&buf, spans); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(spans) {
		t.Fatalf("%d spans back, want %d", len(got), len(spans))
	}
	for i := range spans {
		if got[i] != spans[i] {
			t.Errorf("span %d: %+v round-tripped to %+v", i, spans[i], got[i])
		}
	}
}

func TestReadSpansRejects(t *testing.T) {
	cases := []string{
		`{"cat":"io","name":"","rank":0,"start":0,"end":1}`,                                   // empty name
		`{"cat":"io","name":"w","rank":0,"start":2,"end":1}`,                                  // ends before start
		`{"cat":"io","name":"w","rank":0,"start":"NaN","end":1}`,                              // non-numeric time
		`{"cat":"io","name":"` + strings.Repeat("x", 1<<21) + `","rank":0,"start":0,"end":1}`, // oversized
		`{`, // truncated
	}
	for _, c := range cases {
		if _, err := ReadSpans(strings.NewReader(c)); err == nil {
			t.Errorf("span record %.60q accepted, want error", c)
		}
	}
}

func TestMetricsRoundTrip(t *testing.T) {
	snap := testSnapshot()
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMetrics(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Counter("lustre.write_mb") != 512 {
		t.Errorf("counter lost: %v", got.Counter("lustre.write_mb"))
	}
	if len(got.Hists) != 1 || got.Hists[0].Count != 5 || got.Hists[0].Under != 1 {
		t.Errorf("hist summary lost: %+v", got.Hists)
	}
	// Serialization is canonical: re-encoding what we read must produce
	// the same bytes (the determinism tests diff these artifacts).
	var again bytes.Buffer
	if err := WriteMetrics(&again, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("metrics encoding is not a fixpoint")
	}
}

func TestWriteMetricsNilSnapshot(t *testing.T) {
	if err := WriteMetrics(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("nil snapshot accepted, want error")
	}
}

func TestReadMetricsRejects(t *testing.T) {
	cases := []string{
		`{"counters":[{"name":"a","value":"NaN"}]}`,
		`{"hists":[{"name":"h","count":-1,"sum":0,"min":0,"max":0}]}`,
		`{"hists":[{"name":"h","count":2,"sum":1,"min":0,"max":1,"bins":[{"lo":1,"hi":0.5,"count":2}]}]}`,
		`{"hists":[{"name":"h","count":2,"sum":1,"min":0,"max":1,"bins":[{"lo":0,"hi":1,"count":7}]}]}`,
		`{"counters":[{"name":"` + strings.Repeat("x", 1<<21) + `","value":1}]}`,
	}
	for _, c := range cases {
		if _, err := ReadMetrics(strings.NewReader(c)); err == nil {
			t.Errorf("metrics %.60q accepted, want error", c)
		}
	}
}

// TestChromeTraceGolden pins the exporter's exact bytes. The golden
// file is a Perfetto-loadable artifact; regenerate with -update after
// a deliberate format change.
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, testSpans()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace drifted from golden (rerun with -update if deliberate)\ngot:\n%s", buf.Bytes())
	}
	// The golden artifact must satisfy our own schema check.
	n, err := ValidateChromeTrace(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	// 4 metadata events (2 process names, 2 run lanes) + 7 spans.
	if n != 11 {
		t.Errorf("%d events in golden trace, want 11", n)
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	cases := []string{
		`{"traceEvents":[{"name":"","ph":"X","ts":0,"pid":0,"tid":0}]}`,
		`{"traceEvents":[{"name":"w","ph":"B","ts":0,"pid":0,"tid":0}]}`,
		`{"traceEvents":[{"name":"w","ph":"X","ts":-5,"pid":0,"tid":0}]}`,
		`not json`,
	}
	for _, c := range cases {
		if _, err := ValidateChromeTrace(strings.NewReader(c)); err == nil {
			t.Errorf("chrome trace %.60q accepted, want error", c)
		}
	}
}

func TestWriteChromeTraceRejectsBadSpan(t *testing.T) {
	bad := []telemetry.Span{{Cat: "io", Name: "", Rank: 0, Start: 0, End: 1}}
	if err := WriteChromeTrace(&bytes.Buffer{}, bad); err == nil {
		t.Fatal("unnamed span exported, want error")
	}
}

func FuzzSpanDecode(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteSpans(&seed, testSpans()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(`{"cat":"io","name":"w","rank":0,"start":0,"end":1}`))
	f.Add([]byte(`{"cat":"io","name":"w","rank":0,"start":1,"end":0}`))
	f.Add([]byte(`{"name":"w","start":0,"end":0}`))
	f.Add([]byte("{"))

	f.Fuzz(func(t *testing.T, data []byte) {
		spans, err := ReadSpans(bytes.NewReader(data))
		if err != nil {
			return // rejecting bad input is fine; panicking is not
		}
		// Accepted spans re-encode, and the encoding is a fixpoint.
		var once bytes.Buffer
		if err := WriteSpans(&once, spans); err != nil {
			t.Fatalf("re-encoding accepted spans: %v", err)
		}
		sp2, err := ReadSpans(bytes.NewReader(once.Bytes()))
		if err != nil {
			t.Fatalf("decoding own encoding: %v", err)
		}
		var twice bytes.Buffer
		if err := WriteSpans(&twice, sp2); err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(once.Bytes(), twice.Bytes()) {
			t.Fatalf("span encode∘decode is not a fixpoint")
		}
		// Everything ReadSpans accepts must also export cleanly.
		if err := WriteChromeTrace(&bytes.Buffer{}, spans); err != nil {
			t.Fatalf("accepted spans fail chrome export: %v", err)
		}
	})
}

func FuzzMetricsDecode(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteMetrics(&seed, testSnapshot()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"counters":[{"name":"a","value":1}]}`))
	f.Add([]byte(`{"hists":[{"name":"h","count":1,"sum":2,"min":2,"max":2,"bins":[{"lo":1,"hi":1.8,"count":1}]}]}`))
	f.Add([]byte(`null`))
	f.Add([]byte("{"))

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := ReadMetrics(bytes.NewReader(data))
		if err != nil {
			return
		}
		var once bytes.Buffer
		if err := WriteMetrics(&once, snap); err != nil {
			t.Fatalf("re-encoding accepted metrics: %v", err)
		}
		s2, err := ReadMetrics(bytes.NewReader(once.Bytes()))
		if err != nil {
			t.Fatalf("decoding own encoding: %v", err)
		}
		var twice bytes.Buffer
		if err := WriteMetrics(&twice, s2); err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(once.Bytes(), twice.Bytes()) {
			t.Fatalf("metrics encode∘decode is not a fixpoint")
		}
	})
}
