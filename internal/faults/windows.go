package faults

import "fmt"

// Window is one interval of virtual time during which a fault is
// actively degrading service. Telemetry renders windows as "fault"
// spans so a Perfetto timeline localizes exactly when (and on which
// OST) the injected pathology was biting. OST is -1 for faults not
// tied to a single OST.
type Window struct {
	Kind  string  // fault kind tag (KindSlowOST, ...)
	Label string  // human-readable span name, e.g. "ost5-stall"
	OST   int     // affected OST, or -1
	T0    float64 // window start, virtual seconds
	T1    float64 // window end, virtual seconds
}

// maxWindows bounds the number of periodic windows expanded per fault,
// so a pathological period against a long run cannot explode the span
// list. Later windows are simply dropped; the permanent-fault span
// still covers the whole run.
const maxWindows = 10_000

// Windows expands the scenario's faults into their active windows over
// [0, until]. It is a pure function of the fault parameters and the
// horizon — no machine state — so the same scenario always yields the
// same windows, and both telemetry span export and per-OST stall-time
// accounting derive from this single source.
//
// Permanent faults (slow-ost, slow-node-link, mds-brownout) yield one
// window spanning the whole run. Periodic faults (flaky-ost,
// background-bursts) yield one window per active period, clipped to
// the horizon.
func (s *Scenario) Windows(until float64) []Window {
	if s == nil || until <= 0 {
		return nil
	}
	var out []Window
	for _, f := range s.Faults {
		switch f := f.(type) {
		case *SlowOST:
			out = append(out, Window{
				Kind: KindSlowOST, Label: fmt.Sprintf("ost%d-slow", f.OST),
				OST: f.OST, T0: 0, T1: until,
			})
		case *FlakyOST:
			out = append(out, periodicWindows(
				KindFlakyOST, fmt.Sprintf("ost%d-stall", f.OST), f.OST,
				f.StartSec, f.PeriodSec, f.StallSec, until)...)
		case *SlowNodeLink:
			out = append(out, Window{
				Kind: KindSlowNodeLink, Label: fmt.Sprintf("node%d-slow-link", f.Node),
				OST: -1, T0: 0, T1: until,
			})
		case *MDSBrownout:
			out = append(out, Window{
				Kind: KindMDSBrownout, Label: "mds-brownout",
				OST: -1, T0: 0, T1: until,
			})
		case *BackgroundBursts:
			out = append(out, periodicWindows(
				KindBackgroundBursts, "bg-burst", -1,
				f.StartSec, f.OnSec+f.OffSec, f.OnSec, until)...)
		}
	}
	return out
}

// periodicWindows expands [start + k*period, +span) windows clipped to
// [0, until]. A zero-length clip at the horizon is dropped.
func periodicWindows(kind, label string, ost int, start, period, span, until float64) []Window {
	var out []Window
	if period <= 0 || span <= 0 {
		return nil
	}
	for t0 := start; t0 < until && len(out) < maxWindows; t0 += period {
		t1 := t0 + span
		if t1 > until {
			t1 = until
		}
		if t1 <= t0 {
			break
		}
		out = append(out, Window{Kind: kind, Label: label, OST: ost, T0: t0, T1: t1})
	}
	return out
}

// StallSeconds sums, per OST, the total windowed stall time over
// [0, until] contributed by OST-periodic faults (flaky-ost). Permanent
// slow-ost degradation is not a "stall" — it is reported through the
// per-OST rate statistics instead.
func (s *Scenario) StallSeconds(until float64, nOSTs int) []float64 {
	ws := s.Windows(until)
	if len(ws) == 0 || nOSTs <= 0 {
		return nil
	}
	sums := make([]float64, nOSTs)
	any := false
	for _, w := range ws {
		if w.Kind == KindFlakyOST && w.OST >= 0 && w.OST < nOSTs {
			sums[w.OST] += w.T1 - w.T0
			any = true
		}
	}
	if !any {
		return nil
	}
	return sums
}
