// Package faults is the deterministic fault-injection layer: it
// composes degradation scenarios — slow or flaky OSTs, degraded node
// links, MDS brownouts, background-load bursts — onto a freshly built
// machine and mounted file system before the workload launches.
//
// Every fault is deterministic in virtual time: stall windows and
// burst schedules are pure functions of the clock, and the only
// randomness (the brownout's stall draws) comes from the run's seeded
// RNG — so a faulted run is exactly as reproducible as a clean one.
// Each injected fault doubles as a labeled fixture for the ensemble
// statistics stack: internal/analysis recognizes its signature from
// the event distribution alone (the fault-to-signature table is
// DESIGN.md §9).
package faults

import (
	"fmt"

	"ensembleio/internal/cluster"
	"ensembleio/internal/lustre"
	"ensembleio/internal/sim"
)

// Fault is one injected degradation.
type Fault interface {
	// Kind is the stable type tag used in scenario JSON.
	Kind() string
	// Validate checks the machine-independent parameter rules.
	Validate() error
	// Apply installs the fault on an instantiated machine and mounted
	// file system. It must run before the workload launches.
	Apply(m *cluster.Machine, fs *lustre.FS) error
}

// Fault kind tags (the "type" field of scenario JSON entries).
const (
	KindSlowOST          = "slow-ost"
	KindFlakyOST         = "flaky-ost"
	KindSlowNodeLink     = "slow-node-link"
	KindMDSBrownout      = "mds-brownout"
	KindBackgroundBursts = "background-bursts"
)

// SlowOST permanently degrades one OST: streams touching it are
// ceilinged at Factor times the OST's service rate for the whole run.
type SlowOST struct {
	OST    int     `json:"ost"`
	Factor float64 `json:"factor"` // service-rate multiplier in (0,1)
}

// Kind implements Fault.
func (f *SlowOST) Kind() string { return KindSlowOST }

// Validate implements Fault.
func (f *SlowOST) Validate() error {
	if f.OST < 0 {
		return fmt.Errorf("ost must be non-negative, got %d", f.OST)
	}
	if f.Factor <= 0 || f.Factor >= 1 {
		return fmt.Errorf("factor must be in (0,1), got %g", f.Factor)
	}
	return nil
}

// Apply implements Fault.
func (f *SlowOST) Apply(m *cluster.Machine, fs *lustre.FS) error {
	if f.OST >= m.Prof.OSTs {
		return fmt.Errorf("ost %d out of range: machine has %d OSTs", f.OST, m.Prof.OSTs)
	}
	fs.ScaleOST(f.OST, f.Factor)
	return nil
}

// FlakyOST degrades one OST intermittently: from StartSec on, the OST
// serves at Factor times its rate for the first StallSec of every
// PeriodSec — a periodic stall window in virtual time.
type FlakyOST struct {
	OST       int     `json:"ost"`
	StartSec  float64 `json:"start_sec"`
	PeriodSec float64 `json:"period_sec"`
	StallSec  float64 `json:"stall_sec"`
	// Factor is the in-window service-rate multiplier (default 0.02,
	// a near-stall).
	Factor float64 `json:"factor,omitempty"`
}

// Kind implements Fault.
func (f *FlakyOST) Kind() string { return KindFlakyOST }

// Validate implements Fault.
func (f *FlakyOST) Validate() error {
	if f.OST < 0 {
		return fmt.Errorf("ost must be non-negative, got %d", f.OST)
	}
	if f.StartSec < 0 {
		return fmt.Errorf("start_sec must be non-negative, got %g", f.StartSec)
	}
	if f.PeriodSec <= 0 {
		return fmt.Errorf("period_sec must be positive, got %g", f.PeriodSec)
	}
	if f.StallSec <= 0 || f.StallSec > f.PeriodSec {
		return fmt.Errorf("stall_sec must be in (0, period_sec], got %g", f.StallSec)
	}
	if f.Factor < 0 || f.Factor >= 1 {
		return fmt.Errorf("factor must be in (0,1) or 0 for the default, got %g", f.Factor)
	}
	return nil
}

// Apply implements Fault.
func (f *FlakyOST) Apply(m *cluster.Machine, fs *lustre.FS) error {
	if f.OST >= m.Prof.OSTs {
		return fmt.Errorf("ost %d out of range: machine has %d OSTs", f.OST, m.Prof.OSTs)
	}
	factor := f.Factor
	if factor == 0 {
		factor = 0.02
	}
	fs.StallOST(f.OST, f.StartSec, f.PeriodSec, f.StallSec, factor)
	return nil
}

// SlowNodeLink degrades one compute node's fabric link to Factor times
// its provisioned bandwidth — a flaky HSN cable or a congested router.
type SlowNodeLink struct {
	Node   int     `json:"node"`
	Factor float64 `json:"factor"` // link-bandwidth multiplier in (0,1)
}

// Kind implements Fault.
func (f *SlowNodeLink) Kind() string { return KindSlowNodeLink }

// Validate implements Fault.
func (f *SlowNodeLink) Validate() error {
	if f.Node < 0 {
		return fmt.Errorf("node must be non-negative, got %d", f.Node)
	}
	if f.Factor <= 0 || f.Factor >= 1 {
		return fmt.Errorf("factor must be in (0,1), got %g", f.Factor)
	}
	return nil
}

// Apply implements Fault.
func (f *SlowNodeLink) Apply(m *cluster.Machine, _ *lustre.FS) error {
	if f.Node >= len(m.Nodes) {
		return fmt.Errorf("node %d out of range: machine has %d nodes", f.Node, len(m.Nodes))
	}
	m.Nodes[f.Node].Port.SetCapMBps(m.Prof.NodeLinkMBps * f.Factor)
	return nil
}

// MDSBrownout degrades the metadata service: Concurrency (when
// positive) replaces the MDS request parallelism, and SlowProb (when
// positive) makes every metadata op stall an extra
// Uniform(SlowLoSec, SlowHiSec) seconds with that probability while
// holding its service slot — an elevated lock-revocation tail.
type MDSBrownout struct {
	Concurrency int     `json:"concurrency,omitempty"`
	SlowProb    float64 `json:"slow_prob,omitempty"`
	SlowLoSec   float64 `json:"slow_lo_sec,omitempty"`
	SlowHiSec   float64 `json:"slow_hi_sec,omitempty"`
}

// Kind implements Fault.
func (f *MDSBrownout) Kind() string { return KindMDSBrownout }

// Validate implements Fault.
func (f *MDSBrownout) Validate() error {
	if f.Concurrency < 0 {
		return fmt.Errorf("concurrency must be non-negative, got %d", f.Concurrency)
	}
	if f.SlowProb < 0 || f.SlowProb > 1 {
		return fmt.Errorf("slow_prob must be in [0,1], got %g", f.SlowProb)
	}
	if f.SlowLoSec < 0 || f.SlowHiSec < f.SlowLoSec {
		return fmt.Errorf("need 0 <= slow_lo_sec <= slow_hi_sec, got [%g, %g]", f.SlowLoSec, f.SlowHiSec)
	}
	if f.Concurrency == 0 && f.SlowProb == 0 {
		return fmt.Errorf("a brownout needs concurrency and/or slow_prob set")
	}
	return nil
}

// Apply implements Fault.
func (f *MDSBrownout) Apply(_ *cluster.Machine, fs *lustre.FS) error {
	if f.Concurrency > 0 {
		fs.SetMDSConcurrency(f.Concurrency)
	}
	if f.SlowProb > 0 {
		fs.DegradeMDS(f.SlowProb, f.SlowLoSec, f.SlowHiSec)
	}
	return nil
}

// BackgroundBursts injects deterministic competing load: from StartSec
// on, bursts consuming up to MBps of the aggregate for OnSec seconds,
// separated by OffSec of silence — another job's checkpoint cycle.
//
// The bursts are a real competing tenant, not a synthetic fabric
// stream: Apply mounts a lustre client on an external injection node
// and drives each burst through the ordinary write path (write queue,
// flusher, per-OST attribution), so the contention the foreground
// application sees — and the server-side counters operators would
// read — both come from the same mechanism a co-scheduled neighbor
// (internal/tenancy) exercises.
type BackgroundBursts struct {
	MBps     float64 `json:"mbps"`
	OnSec    float64 `json:"on_sec"`
	OffSec   float64 `json:"off_sec"`
	StartSec float64 `json:"start_sec,omitempty"`
}

// Kind implements Fault.
func (f *BackgroundBursts) Kind() string { return KindBackgroundBursts }

// Validate implements Fault.
func (f *BackgroundBursts) Validate() error {
	if f.MBps <= 0 {
		return fmt.Errorf("mbps must be positive, got %g", f.MBps)
	}
	if f.OnSec <= 0 {
		return fmt.Errorf("on_sec must be positive, got %g", f.OnSec)
	}
	if f.OffSec < 0 {
		return fmt.Errorf("off_sec must be non-negative, got %g", f.OffSec)
	}
	if f.StartSec < 0 {
		return fmt.Errorf("start_sec must be non-negative, got %g", f.StartSec)
	}
	return nil
}

// Apply implements Fault. The competing tenant writes MBps*OnSec
// megabytes per burst through a real lustre client on an external
// injection node, pacing itself to the absolute burst schedule
// (StartSec + k*(OnSec+OffSec)) so the active windows match what
// Scenario.Windows derives from the parameters. The injector exits
// once the foreground workload finishes (BackgroundStopped), letting
// the event queue drain.
func (f *BackgroundBursts) Apply(m *cluster.Machine, fs *lustre.FS) error {
	mbps := f.MBps
	agg := m.Prof.EffectiveAggregateMBps()
	if mbps > 0.95*agg {
		mbps = 0.95 * agg
	}
	// Weight chosen like the stochastic background port's: heavy enough
	// that the tenant's stream claims ~mbps even when every application
	// node is pushing. The port is additionally rate-capped at mbps so
	// an idle fabric never lets a burst finish early.
	w := mbps / (agg - mbps) * float64(len(m.Nodes))
	node := m.NewExternalNode(mbps, w)
	client := fs.AddExternalClient(node)

	// The tenant's checkpoint file stripes over every OST regardless of
	// the foreground mount default — a neighbor's striping is its own.
	saved := fs.DefaultStripeCount
	fs.DefaultStripeCount = 0
	file := fs.Create("/scratch/.bg-burst-tenant")
	fs.DefaultStripeCount = saved

	// Stripe-aligned burst extents: whole megabytes, so each burst is
	// one aligned streaming write with no partial-RPC conflict term.
	burstBytes := int64(mbps*f.OnSec) * 1e6
	if burstBytes < 1e6 {
		burstBytes = 1e6
	}
	period := f.OnSec + f.OffSec
	m.Eng.Spawn("bg-burst-tenant", func(p *sim.Proc) {
		p.Sleep(sim.Duration(f.StartSec))
		var offset int64
		for k := 0; !m.BackgroundStopped(); k++ {
			client.Write(p, file, offset, burstBytes)
			offset += burstBytes
			next := sim.Time(f.StartSec + float64(k+1)*period)
			if now := p.Now(); next > now {
				p.Sleep(next - now)
			}
		}
	})
	return nil
}
