package faults

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"ensembleio/internal/cluster"
	"ensembleio/internal/lustre"
)

// Scenario is a named, JSON-decodable composition of faults. The CLIs
// accept one via -faults scenario.json:
//
//	{
//	  "name": "straggler hunt",
//	  "faults": [
//	    {"type": "slow-ost", "ost": 7, "factor": 0.01},
//	    {"type": "background-bursts", "mbps": 12000, "on_sec": 4, "off_sec": 6}
//	  ]
//	}
type Scenario struct {
	Name   string
	Faults []Fault
}

// Apply installs every fault of the scenario, in order, on a freshly
// built machine and mounted file system (before the workload launches).
func (s *Scenario) Apply(m *cluster.Machine, fs *lustre.FS) error {
	for i, f := range s.Faults {
		if err := f.Apply(m, fs); err != nil {
			return fmt.Errorf("faults: entry %d (%s): %w", i, f.Kind(), err)
		}
	}
	return nil
}

func (s *Scenario) String() string {
	kinds := make([]string, len(s.Faults))
	for i, f := range s.Faults {
		kinds[i] = f.Kind()
	}
	name := s.Name
	if name == "" {
		name = "scenario"
	}
	return fmt.Sprintf("%s[%s]", name, strings.Join(kinds, ","))
}

// newFault returns the zero value for a kind tag.
func newFault(kind string) (Fault, error) {
	switch kind {
	case KindSlowOST:
		return &SlowOST{}, nil
	case KindFlakyOST:
		return &FlakyOST{}, nil
	case KindSlowNodeLink:
		return &SlowNodeLink{}, nil
	case KindMDSBrownout:
		return &MDSBrownout{}, nil
	case KindBackgroundBursts:
		return &BackgroundBursts{}, nil
	case "":
		return nil, fmt.Errorf(`missing "type" tag`)
	}
	return nil, fmt.Errorf("unknown fault type %q", kind)
}

// UnmarshalJSON decodes and validates the scenario spec form.
func (s *Scenario) UnmarshalJSON(b []byte) error {
	var raw struct {
		Name   string            `json:"name"`
		Faults []json.RawMessage `json:"faults"`
	}
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	s.Name = raw.Name
	s.Faults = nil
	for i, msg := range raw.Faults {
		var tag struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(msg, &tag); err != nil {
			return fmt.Errorf("faults: entry %d: %w", i, err)
		}
		f, err := newFault(tag.Type)
		if err != nil {
			return fmt.Errorf("faults: entry %d: %w", i, err)
		}
		if err := json.Unmarshal(msg, f); err != nil {
			return fmt.Errorf("faults: entry %d (%s): %w", i, tag.Type, err)
		}
		if err := f.Validate(); err != nil {
			return fmt.Errorf("faults: entry %d (%s): %w", i, tag.Type, err)
		}
		s.Faults = append(s.Faults, f)
	}
	return nil
}

// MarshalJSON encodes the spec form (round-trips with UnmarshalJSON;
// map keys are emitted sorted, so the encoding is deterministic).
func (s Scenario) MarshalJSON() ([]byte, error) {
	entries := make([]map[string]any, 0, len(s.Faults))
	for i, f := range s.Faults {
		fields, err := json.Marshal(f)
		if err != nil {
			return nil, fmt.Errorf("faults: entry %d: %w", i, err)
		}
		m := map[string]any{}
		if err := json.Unmarshal(fields, &m); err != nil {
			return nil, fmt.Errorf("faults: entry %d: %w", i, err)
		}
		m["type"] = f.Kind()
		entries = append(entries, m)
	}
	return json.Marshal(struct {
		Name   string           `json:"name,omitempty"`
		Faults []map[string]any `json:"faults"`
	}{Name: s.Name, Faults: entries})
}

// Canonical returns the scenario's canonical bytes: the deterministic
// MarshalJSON encoding (sorted keys, compact), with a nil scenario
// mapping to the literal "none". This is the fault-scenario component
// of the content-addressed cache key (internal/cascache): two
// scenarios with the same canonical bytes inject the same faults.
func Canonical(s *Scenario) ([]byte, error) {
	if s == nil {
		return []byte("none"), nil
	}
	return json.Marshal(*s)
}

// Parse reads and validates a scenario spec.
func Parse(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("faults: decoding scenario: %w", err)
	}
	return &s, nil
}

// Load reads a scenario spec from a file.
func Load(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
