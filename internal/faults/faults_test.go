package faults

import (
	"strings"
	"testing"
)

const sampleSpec = `{
  "name": "everything at once",
  "faults": [
    {"type": "slow-ost", "ost": 7, "factor": 0.01},
    {"type": "flaky-ost", "ost": 3, "start_sec": 2, "period_sec": 5, "stall_sec": 1.5},
    {"type": "slow-node-link", "node": 2, "factor": 0.05},
    {"type": "mds-brownout", "concurrency": 2, "slow_prob": 0.3, "slow_lo_sec": 0.4, "slow_hi_sec": 1.6},
    {"type": "background-bursts", "mbps": 12000, "on_sec": 4, "off_sec": 6, "start_sec": 1}
  ]
}`

func TestParseAllKinds(t *testing.T) {
	s, err := Parse(strings.NewReader(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "everything at once" {
		t.Errorf("name = %q", s.Name)
	}
	wantKinds := []string{
		KindSlowOST, KindFlakyOST, KindSlowNodeLink, KindMDSBrownout, KindBackgroundBursts,
	}
	if len(s.Faults) != len(wantKinds) {
		t.Fatalf("got %d faults, want %d", len(s.Faults), len(wantKinds))
	}
	for i, k := range wantKinds {
		if got := s.Faults[i].Kind(); got != k {
			t.Errorf("fault %d kind = %q, want %q", i, got, k)
		}
	}
	if so, ok := s.Faults[0].(*SlowOST); !ok || so.OST != 7 || so.Factor != 0.01 {
		t.Errorf("slow-ost decoded as %+v", s.Faults[0])
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s, err := Parse(strings.NewReader(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(strings.NewReader(string(b)))
	if err != nil {
		t.Fatalf("re-parsing own encoding: %v\nencoding: %s", err, b)
	}
	b2, err := s2.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Errorf("encoding is not a fixed point:\n first: %s\nsecond: %s", b, b2)
	}
	if s2.String() != s.String() {
		t.Errorf("round trip changed the scenario: %s != %s", s2, s)
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct {
		name, spec, wantErr string
	}{
		{"unknown type", `{"faults":[{"type":"meteor-strike"}]}`, `unknown fault type "meteor-strike"`},
		{"missing type", `{"faults":[{"ost": 3}]}`, `missing "type" tag`},
		{"slow-ost factor 1", `{"faults":[{"type":"slow-ost","ost":0,"factor":1}]}`, "factor must be in (0,1)"},
		{"slow-ost factor 0", `{"faults":[{"type":"slow-ost","ost":0}]}`, "factor must be in (0,1)"},
		{"negative ost", `{"faults":[{"type":"slow-ost","ost":-1,"factor":0.5}]}`, "ost must be non-negative"},
		{"flaky stall > period", `{"faults":[{"type":"flaky-ost","ost":0,"period_sec":2,"stall_sec":3}]}`, "stall_sec must be in (0, period_sec]"},
		{"flaky no period", `{"faults":[{"type":"flaky-ost","ost":0,"stall_sec":1}]}`, "period_sec must be positive"},
		{"link factor high", `{"faults":[{"type":"slow-node-link","node":0,"factor":1.5}]}`, "factor must be in (0,1)"},
		{"empty brownout", `{"faults":[{"type":"mds-brownout"}]}`, "needs concurrency and/or slow_prob"},
		{"brownout bad window", `{"faults":[{"type":"mds-brownout","slow_prob":0.5,"slow_lo_sec":2,"slow_hi_sec":1}]}`, "slow_lo_sec <= slow_hi_sec"},
		{"bursts no rate", `{"faults":[{"type":"background-bursts","on_sec":1}]}`, "mbps must be positive"},
		{"bursts no window", `{"faults":[{"type":"background-bursts","mbps":100}]}`, "on_sec must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.spec))
			if err == nil {
				t.Fatalf("spec %s parsed without error", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestScenarioString(t *testing.T) {
	s := &Scenario{Faults: []Fault{&SlowOST{OST: 1, Factor: 0.5}, &MDSBrownout{Concurrency: 2}}}
	if got, want := s.String(), "scenario[slow-ost,mds-brownout]"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
