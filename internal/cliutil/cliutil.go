// Package cliutil holds the flags every ensembleio CLI shares:
// build-identity reporting (-version) and wall-clock profiling
// (-prof). Both are self-observability — they describe the binary and
// the host run, never the simulated system — so they live strictly on
// the CLI side and nothing here may leak into serialized artifacts.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
)

// OnOff registers name as an on/off flag and returns a pointer that
// tracks it. The canonical spellings are "on" and "off" (the CLIs
// document -analytic=off); the strconv.ParseBool spellings are
// accepted as aliases so -name=false keeps working in scripts.
func OnOff(name string, def bool, usage string) *bool {
	v := def
	flag.Func(name, usage, func(s string) error {
		switch s {
		case "on":
			v = true
		case "off":
			v = false
		default:
			b, err := strconv.ParseBool(s)
			if err != nil {
				return fmt.Errorf("want on or off")
			}
			v = b
		}
		return nil
	})
	return &v
}

// CacheFlags registers the content-addressed run-cache flags the run
// CLIs share: -cache DIR enables the cascache store (hits serve the
// memoized artifact set, byte-identical to a fresh run), and
// -cache-verify is the paranoid mode that recomputes every hit and
// fails the run on any byte difference.
func CacheFlags() (dir *string, verify *bool) {
	dir = flag.String("cache", "",
		"content-addressed run cache directory (hits are byte-identical to fresh runs)")
	verify = flag.Bool("cache-verify", false,
		"recompute every cache hit and fail on any byte difference (paranoid; implies the run cost of a miss)")
	return dir, verify
}

// Version renders the build's identity from the binary's embedded
// build info: module version plus VCS revision and dirty marker when
// the binary was built from a checkout. Telemetry snapshots and bench
// baselines are attributable to a build through this string.
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "ensembleio (no build info)"
	}
	v := bi.Main.Version
	if v == "" || v == "(devel)" {
		v = "devel"
	}
	rev, modified, vcsTime := "", false, ""
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value == "true"
		case "vcs.time":
			vcsTime = s.Value
		}
	}
	out := "ensembleio " + v
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		out += " " + rev
		if modified {
			out += "+dirty"
		}
	}
	if vcsTime != "" {
		out += " (" + vcsTime + ")"
	}
	return out + " " + runtime.Version()
}

// StartProfiles begins wall-clock profiling for a -prof run: a CPU
// profile streams to prefix.cpu.pprof and the returned stop function
// finishes it and writes a heap profile to prefix.heap.pprof. An empty
// prefix disables profiling (stop becomes a no-op). Callers defer stop
// and report its error.
func StartProfiles(prefix string) (stop func() error, err error) {
	if prefix == "" {
		return func() error { return nil }, nil
	}
	cpu, err := os.Create(prefix + ".cpu.pprof")
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		cpu.Close() //lint:allow(errclose) profile file abandoned on setup failure
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := cpu.Close(); err != nil {
			return fmt.Errorf("cpu profile: %w", err)
		}
		heap, err := os.Create(prefix + ".heap.pprof")
		if err != nil {
			return err
		}
		// An up-to-date heap profile wants a GC so the allocation
		// snapshot reflects live objects, not garbage.
		runtime.GC()
		if err := pprof.WriteHeapProfile(heap); err != nil {
			heap.Close() //lint:allow(errclose) profile file abandoned on write failure
			return fmt.Errorf("heap profile: %w", err)
		}
		if err := heap.Close(); err != nil {
			return fmt.Errorf("heap profile: %w", err)
		}
		return nil
	}, nil
}
