package cliutil

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestVersionNonEmpty(t *testing.T) {
	v := Version()
	if !strings.HasPrefix(v, "ensembleio ") {
		t.Fatalf("version %q lacks the module prefix", v)
	}
	if !strings.Contains(v, "go1") {
		t.Fatalf("version %q lacks the toolchain", v)
	}
}

func TestStartProfilesDisabled(t *testing.T) {
	stop, err := StartProfiles("")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartProfilesWritesFiles(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "prof")
	stop, err := StartProfiles(prefix)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{".cpu.pprof", ".heap.pprof"} {
		st, err := os.Stat(prefix + suffix)
		if err != nil {
			t.Fatalf("%s missing: %v", suffix, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", suffix)
		}
	}
}
