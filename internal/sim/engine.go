// Package sim provides a deterministic discrete-event simulation engine
// with a virtual clock and a lock-step process runtime.
//
// The engine executes events in (time, sequence) order on a single
// goroutine. Simulated processes run as goroutines but are scheduled in
// strict rendezvous with the engine: at most one process executes at a
// time, and control returns to the event loop whenever a process blocks
// on a simulated operation. This makes simulations fully deterministic
// for a given seed, regardless of GOMAXPROCS.
//
// All times are in seconds of virtual time (type Time).
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since the start of the
// simulation.
type Time float64

// Duration is a span of virtual time, in seconds.
type Duration = Time

// Infinity is a time later than any event the engine will execute.
const Infinity Time = math.MaxFloat64

type event struct {
	t   Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	ack     chan struct{}
	running bool
	procs   int // live (spawned, not finished) processes
}

// NewEngine returns an engine with the clock at time zero.
func NewEngine() *Engine {
	return &Engine{ack: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: events must never run backwards.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{t: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d seconds from now. Negative d panics.
func (e *Engine) After(d Duration, fn func()) { e.At(e.now+d, fn) }

// Run executes events until the event queue is empty. It returns the
// final virtual time. Run panics if any spawned process is still
// blocked when the queue drains (a deadlock in the simulated system).
func (e *Engine) Run() Time { return e.RunUntil(Infinity) }

// RunUntil executes events with time <= limit and returns the time of
// the last executed event (or the current time if none ran). Events
// beyond the limit remain queued.
func (e *Engine) RunUntil(limit Time) Time {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.events) > 0 {
		if e.events[0].t > limit {
			return e.now
		}
		ev := heap.Pop(&e.events).(event)
		e.now = ev.t
		ev.fn()
	}
	if e.procs > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) blocked with no pending events at t=%v", e.procs, e.now))
	}
	return e.now
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }
