// Package sim provides a deterministic discrete-event simulation engine
// with a virtual clock and a lock-step process runtime.
//
// The engine executes events in (time, sequence) order on a single
// goroutine. Simulated processes run as goroutines but are scheduled in
// strict rendezvous with the engine: at most one process executes at a
// time, and control returns to the event loop whenever a process blocks
// on a simulated operation. This makes simulations fully deterministic
// for a given seed, regardless of GOMAXPROCS.
//
// All times are in seconds of virtual time (type Time).
package sim

import (
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since the start of the
// simulation.
type Time float64

// Duration is a span of virtual time, in seconds.
type Duration = Time

// Infinity is a time later than any event the engine will execute.
const Infinity Time = math.MaxFloat64

// event is one scheduled action. Exactly one of the three payload
// variants is set: fn (a plain closure), afn+arg (a pre-allocated
// function taking a uint64 argument carried in the event itself), or
// proc (a direct process resume). The variants exist so the hot
// schedulers — process wakes, sleeps, and the flownet refresh tick —
// never allocate a closure per event.
type event struct {
	t    Time
	seq  uint64
	fn   func()
	afn  func(uint64)
	arg  uint64
	proc *Proc
}

// eventHeap is a hand-rolled binary min-heap ordered by (t, seq).
// The engine pushes and pops one event per simulated operation, so
// this is the hottest data structure in the repo; a typed heap avoids
// the interface{} boxing (one allocation per Push) and the dynamic
// dispatch of container/heap.
type eventHeap struct {
	a []event
}

func (h *eventHeap) len() int { return len(h.a) }

// less orders strictly by time, then by scheduling sequence — the
// determinism tie-break: two events at the same instant run in the
// order they were scheduled.
func (h *eventHeap) less(i, j int) bool {
	if h.a[i].t != h.a[j].t {
		return h.a[i].t < h.a[j].t
	}
	return h.a[i].seq < h.a[j].seq
}

func (h *eventHeap) push(e event) {
	h.a = append(h.a, e)
	// Sift up.
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.a[i], h.a[parent] = h.a[parent], h.a[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	top := h.a[0]
	n := len(h.a) - 1
	h.a[0] = h.a[n]
	// Clear the vacated slot so the popped event's closure — and
	// everything it captures — is collectable even while the backing
	// array lives on. Without this, long runs pin every completed
	// event's captured state until the heap slot is overwritten.
	h.a[n] = event{}
	h.a = h.a[:n]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		h.a[i], h.a[smallest] = h.a[smallest], h.a[i]
		i = smallest
	}
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	ack     chan struct{}
	running bool
	procs   int // live (spawned, not finished) processes

	// Scheduling statistics, kept unconditionally: one integer update
	// per push/pop, cheap enough that there is nothing to disable.
	// Telemetry folds them into the run snapshot via the accessors.
	popped  uint64
	maxHeap int

	// Fast-forward accounting: virtual seconds crossed in single
	// analytic jumps (stretches a quantum-ticking scheduler would have
	// woken through repeatedly), reported by the fluid layers via
	// NoteFastForward. Pure bookkeeping — it never influences
	// scheduling — and a pure function of the simulated run, so
	// telemetry may serialize it.
	ffSeconds float64
	ffJumps   uint64
}

// NewEngine returns an engine with the clock at time zero.
func NewEngine() *Engine {
	return &Engine{ack: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: events must never run backwards.
func (e *Engine) At(t Time, fn func()) {
	e.schedule(event{t: t, fn: fn})
}

// AtArg schedules fn(arg) at absolute virtual time t. The argument
// rides in the event itself, so a pre-allocated fn can be rescheduled
// forever without a per-event closure; the flownet refresh tick uses it
// to carry its generation counter.
func (e *Engine) AtArg(t Time, fn func(uint64), arg uint64) {
	e.schedule(event{t: t, afn: fn, arg: arg})
}

// atResume schedules a direct resume of p at time t — the closure-free
// path behind Spawn, Sleep, and Block wakes.
func (e *Engine) atResume(t Time, p *Proc) {
	e.schedule(event{t: t, proc: p})
}

func (e *Engine) schedule(ev event) {
	if ev.t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", ev.t, e.now))
	}
	e.seq++
	ev.seq = e.seq
	e.events.push(ev)
	if n := e.events.len(); n > e.maxHeap {
		e.maxHeap = n
	}
}

// After schedules fn to run d seconds from now. Negative d panics.
func (e *Engine) After(d Duration, fn func()) { e.At(e.now+d, fn) }

// Run executes events until the event queue is empty. It returns the
// final virtual time. Run panics if any spawned process is still
// blocked when the queue drains (a deadlock in the simulated system).
func (e *Engine) Run() Time { return e.RunUntil(Infinity) }

// RunUntil executes events with time <= limit and returns the time of
// the last executed event (or the current time if none ran). Events
// beyond the limit remain queued.
func (e *Engine) RunUntil(limit Time) Time {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.events.len() > 0 {
		if e.events.a[0].t > limit {
			return e.now
		}
		ev := e.events.pop()
		e.popped++
		e.now = ev.t
		switch {
		case ev.proc != nil:
			ev.proc.resume()
		case ev.afn != nil:
			ev.afn(ev.arg)
		default:
			ev.fn()
		}
	}
	if e.procs > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) blocked with no pending events at t=%v", e.procs, e.now))
	}
	return e.now
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return e.events.len() }

// EventsPopped reports how many events the engine has executed.
func (e *Engine) EventsPopped() uint64 { return e.popped }

// EventsScheduled reports how many events have ever been scheduled.
func (e *Engine) EventsScheduled() uint64 { return e.seq }

// HeapHighWater reports the maximum event-queue length observed.
func (e *Engine) HeapHighWater() int { return e.maxHeap }

// NoteFastForward records d virtual seconds traversed in one analytic
// jump: a stretch with no membership change that the simulator crossed
// with a single wake-up instead of ticking quanta through it. The
// fluid layers call it; workloads fold the totals into telemetry so
// the fast-forward win is observable per run (cmd/ensembletop prints
// the ratio against total virtual seconds).
func (e *Engine) NoteFastForward(d float64) {
	e.ffSeconds += d
	e.ffJumps++
}

// FastForwardSeconds reports the total virtual seconds crossed in
// analytic jumps.
func (e *Engine) FastForwardSeconds() float64 { return e.ffSeconds }

// FastForwardJumps reports how many analytic jumps were taken.
func (e *Engine) FastForwardJumps() uint64 { return e.ffJumps }
