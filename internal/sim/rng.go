package sim

import (
	"math"
	"math/rand"
)

// RNG is a seeded source of the random variates used by the simulator.
// It wraps math/rand with the distributions needed for service-time
// variability modelling. RNG is not safe for concurrent use; in the
// lock-step runtime only one process executes at a time, so a single
// RNG per simulation is safe.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent child generator. The child stream is a
// deterministic function of the parent seed stream and the label,
// letting subsystems draw variates without perturbing each other's
// sequences when call orders change.
func (g *RNG) Fork(label int64) *RNG {
	return NewRNG(g.r.Int63() ^ int64(uint64(label)*0x9e3779b97f4a7c15>>1))
}

// Float64 returns a uniform variate in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform int in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Uniform returns a uniform variate in [lo,hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Exp returns an exponential variate with the given mean.
func (g *RNG) Exp(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Normal returns a normal variate with the given mean and standard
// deviation.
func (g *RNG) Normal(mean, sd float64) float64 {
	return mean + sd*g.r.NormFloat64()
}

// Lognormal returns a lognormal variate with median exp(mu) and log
// standard deviation sigma. For service-time jitter, use mu=0 so the
// median multiplier is 1.
func (g *RNG) Lognormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.r.NormFloat64())
}

// Pareto returns a Pareto variate with minimum xm and shape alpha.
// Small alpha (e.g. 1.5) produces the heavy-tailed stragglers seen in
// shared production file systems.
func (g *RNG) Pareto(xm, alpha float64) float64 {
	u := g.r.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return xm / math.Pow(u, 1/alpha)
}

// Bernoulli reports true with probability p.
func (g *RNG) Bernoulli(p float64) bool { return g.r.Float64() < p }

// Choose returns an index in [0,len(weights)) with probability
// proportional to the weights. It panics on an empty or non-positive
// weight vector.
func (g *RNG) Choose(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("sim: negative weight")
		}
		total += w
	}
	if total <= 0 || len(weights) == 0 {
		panic("sim: Choose requires positive total weight")
	}
	x := g.r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
