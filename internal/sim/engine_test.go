package sim

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(2, func() { got = append(got, 2) })
	e.At(1, func() { got = append(got, 1) })
	e.At(3, func() { got = append(got, 3) })
	e.At(1, func() { got = append(got, 10) }) // same time: FIFO by seq
	end := e.Run()
	want := []int{1, 10, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d: got %d want %d", i, got[i], want[i])
		}
	}
	if end != 3 {
		t.Errorf("final time %v, want 3", end)
	}
}

func TestAfterAdvancesClock(t *testing.T) {
	e := NewEngine()
	var at Time
	e.After(5, func() {
		at = e.Now()
		e.After(2.5, func() { at = e.Now() })
	})
	e.Run()
	if at != 7.5 {
		t.Errorf("nested After time %v, want 7.5", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(1, func() { ran++ })
	e.At(10, func() { ran++ })
	e.RunUntil(5)
	if ran != 1 {
		t.Errorf("ran %d events by t=5, want 1", ran)
	}
	if e.Pending() != 1 {
		t.Errorf("pending %d, want 1", e.Pending())
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var marks []Time
	e.Spawn("sleeper", func(p *Proc) {
		marks = append(marks, p.Now())
		p.Sleep(3)
		marks = append(marks, p.Now())
		p.Sleep(0)
		marks = append(marks, p.Now())
	})
	e.Run()
	if len(marks) != 3 || marks[0] != 0 || marks[1] != 3 || marks[2] != 3 {
		t.Errorf("marks = %v, want [0 3 3]", marks)
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var order []string
		for i, d := range []Duration{3, 1, 2} {
			name := string(rune('a' + i))
			dd := d
			e.Spawn(name, func(p *Proc) {
				p.Sleep(dd)
				order = append(order, p.Name())
			})
		}
		e.Run()
		return order
	}
	first := run()
	if first[0] != "b" || first[1] != "c" || first[2] != "a" {
		t.Errorf("order = %v, want [b c a]", first)
	}
	for i := 0; i < 10; i++ {
		again := run()
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("nondeterministic order: %v vs %v", first, again)
			}
		}
	}
}

func TestWaitQueueFIFO(t *testing.T) {
	e := NewEngine()
	var q WaitQueue
	var order []string
	for _, name := range []string{"x", "y", "z"} {
		n := name
		e.Spawn(n, func(p *Proc) {
			q.Wait(p)
			order = append(order, n)
		})
	}
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(1)
		if q.Len() != 3 {
			t.Errorf("queue len %d, want 3", q.Len())
		}
		q.WakeOne()
		p.Sleep(1)
		q.WakeAll()
	})
	e.Run()
	if len(order) != 3 || order[0] != "x" || order[1] != "y" || order[2] != "z" {
		t.Errorf("wake order %v, want [x y z]", order)
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(2)
	active, peak := 0, 0
	for i := 0; i < 6; i++ {
		e.Spawn("w", func(p *Proc) {
			sem.Acquire(p)
			active++
			if active > peak {
				peak = active
			}
			p.Sleep(1)
			active--
			sem.Release()
		})
	}
	e.Run()
	if peak != 2 {
		t.Errorf("peak concurrency %d, want 2", peak)
	}
	if e.Now() != 3 {
		t.Errorf("makespan %v, want 3 (6 jobs, 2 wide, 1s each)", e.Now())
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected deadlock panic")
		}
	}()
	e := NewEngine()
	var q WaitQueue
	e.Spawn("stuck", func(p *Proc) { q.Wait(p) })
	e.Run()
}

func TestBlockWake(t *testing.T) {
	e := NewEngine()
	var wake func()
	var resumedAt Time
	e.Spawn("blocker", func(p *Proc) {
		wake = p.Block()
		p.Park()
		resumedAt = p.Now()
	})
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(4)
		wake()
	})
	e.Run()
	if resumedAt != 4 {
		t.Errorf("resumed at %v, want 4", resumedAt)
	}
}

func TestRunReturnsFinalTime(t *testing.T) {
	e := NewEngine()
	e.Spawn("s", func(p *Proc) { p.Sleep(7.5) })
	if end := e.Run(); end != 7.5 {
		t.Errorf("Run returned %v, want 7.5", end)
	}
	if e.Pending() != 0 {
		t.Errorf("%d events pending after Run", e.Pending())
	}
}

func TestNestedSpawn(t *testing.T) {
	e := NewEngine()
	var childAt Time
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(2)
		e.Spawn("child", func(c *Proc) {
			c.Sleep(3)
			childAt = c.Now()
		})
		p.Sleep(1)
	})
	e.Run()
	if childAt != 5 {
		t.Errorf("child finished at %v, want 5", childAt)
	}
}

func TestSemaphoreZeroCapacityDeadlocks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected deadlock panic with zero-permit semaphore")
		}
	}()
	e := NewEngine()
	sem := NewSemaphore(0)
	e.Spawn("w", func(p *Proc) { sem.Acquire(p) })
	e.Run()
}

func TestNegativeSleepPanics(t *testing.T) {
	e := NewEngine()
	e.Spawn("w", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for negative sleep")
			}
		}()
		p.Sleep(-1)
	})
	e.Run()
}
