package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestForkIndependence(t *testing.T) {
	g := NewRNG(1)
	c1 := g.Fork(1)
	c2 := g.Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Float64() == c2.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("forked streams coincide on %d/100 draws", same)
	}
}

func TestLognormalMedian(t *testing.T) {
	g := NewRNG(7)
	n := 20000
	above := 0
	for i := 0; i < n; i++ {
		if g.Lognormal(0, 0.3) > 1 {
			above++
		}
	}
	frac := float64(above) / float64(n)
	if frac < 0.47 || frac > 0.53 {
		t.Errorf("fraction above median = %.3f, want ~0.5", frac)
	}
}

func TestParetoMinimum(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := g.Pareto(2.0, 1.5)
		if v < 2.0 {
			t.Fatalf("Pareto variate %v below xm=2", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	g := NewRNG(11)
	sum := 0.0
	n := 50000
	for i := 0; i < n; i++ {
		sum += g.Exp(3.0)
	}
	mean := sum / float64(n)
	if math.Abs(mean-3.0) > 0.1 {
		t.Errorf("sample mean %.3f, want ~3.0", mean)
	}
}

func TestChooseRespectsWeights(t *testing.T) {
	g := NewRNG(5)
	counts := [3]int{}
	n := 30000
	for i := 0; i < n; i++ {
		counts[g.Choose([]float64{1, 2, 1})]++
	}
	mid := float64(counts[1]) / float64(n)
	if mid < 0.46 || mid > 0.54 {
		t.Errorf("middle weight chosen %.3f of the time, want ~0.5", mid)
	}
}

func TestChoosePanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRNG(1).Choose([]float64{0, 0})
}

func TestUniformInRange(t *testing.T) {
	g := NewRNG(9)
	f := func(a, b uint8) bool {
		lo, hi := float64(a), float64(a)+float64(b)+1
		v := g.Uniform(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the engine never executes events out of time order, no
// matter the insertion pattern.
func TestEventOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine()
		var prev Time = -1
		ok := true
		for _, tt := range times {
			at := Time(tt)
			e.At(at, func() {
				if e.Now() < prev {
					ok = false
				}
				prev = e.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
