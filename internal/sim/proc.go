package sim

import "fmt"

// Proc is a simulated process: a goroutine that advances only in
// lock-step with the engine. A Proc may call its blocking methods
// (Sleep, and the Wait methods of synchronization types built on
// park/unpark) only from its own goroutine.
type Proc struct {
	eng  *Engine
	wake chan struct{}
	name string
	done bool

	// wakeFn is the one wake function this process ever hands out (see
	// Block); wakeArmed guards it so a stray second call still panics
	// the way the per-call closures used to.
	wakeFn    func()
	wakeArmed bool
}

// Spawn starts fn as a simulated process at the current virtual time.
// The name is used in diagnostics only.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, wake: make(chan struct{}), name: name}
	p.wakeFn = p.fireWake
	e.procs++
	// This is the one sanctioned goroutine launch in the simulator:
	// the process advances only in strict rendezvous with the event
	// loop (wake/ack), so at most one goroutine runs at a time and the
	// interleaving is fixed by the event queue, not the Go scheduler.
	//lint:allow(simpurity) lock-step process runtime; rendezvous keeps runs deterministic
	go func() {
		<-p.wake // wait for first resume from the event loop
		fn(p)
		p.done = true
		p.eng.procs--
		p.eng.ack <- struct{}{}
	}()
	e.atResume(e.now, p)
	return p
}

// resume transfers control to the process goroutine and blocks until it
// parks again or finishes. It must only be called from the event loop
// (i.e. from inside an event function).
func (p *Proc) resume() {
	if p.done {
		panic(fmt.Sprintf("sim: resume of finished process %q", p.name))
	}
	p.wake <- struct{}{}
	<-p.eng.ack
}

// park yields control back to the event loop and blocks the process
// goroutine until the next resume.
func (p *Proc) park() {
	p.eng.ack <- struct{}{}
	<-p.wake
}

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Sleep blocks the process for d seconds of virtual time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	p.eng.atResume(p.eng.now+d, p)
	p.park()
}

// Block parks the process until some other event calls the returned
// wake function. The wake function is safe to call from event
// functions or from other processes (it schedules the resume rather
// than performing it inline) and must be called exactly once.
//
// The returned function is the process's single pre-allocated wake —
// Block never allocates. A process may therefore hold at most one
// un-fired wake at a time; obtaining a second one before the first
// fires panics, as does firing a wake twice.
func (p *Proc) Block() (wake func()) {
	if p.wakeArmed {
		panic(fmt.Sprintf("sim: Block on process %q with a wake already pending", p.name))
	}
	p.wakeArmed = true
	return p.wakeFn
}

// fireWake is the body of every wake function Block hands out: it
// disarms the guard and schedules a closure-free resume at the current
// instant.
func (p *Proc) fireWake() {
	if !p.wakeArmed {
		panic(fmt.Sprintf("sim: double wake of process %q", p.name))
	}
	p.wakeArmed = false
	p.eng.atResume(p.eng.now, p)
}

// blockNow parks immediately; used with Block:
//
//	wake := p.Block()
//	registerSomewhere(wake)
//	p.Park()
//
// Park parks the process goroutine; it resumes when a previously
// obtained wake function fires.
func (p *Proc) Park() { p.park() }

// WaitQueue is a FIFO queue of parked processes. The zero value is
// ready to use.
type WaitQueue struct {
	waiters []func()
}

// Wait parks p until it is woken by WakeOne or WakeAll. Processes are
// woken in FIFO order.
func (q *WaitQueue) Wait(p *Proc) {
	q.waiters = append(q.waiters, p.Block())
	p.Park()
}

// WakeOne wakes the oldest waiter, if any, and reports whether a
// process was woken.
func (q *WaitQueue) WakeOne() bool {
	if len(q.waiters) == 0 {
		return false
	}
	w := q.waiters[0]
	q.waiters = q.waiters[1:]
	w()
	return true
}

// WakeAll wakes every waiter in FIFO order.
func (q *WaitQueue) WakeAll() {
	ws := q.waiters
	q.waiters = nil
	for _, w := range ws {
		w()
	}
}

// Len reports the number of parked processes.
func (q *WaitQueue) Len() int { return len(q.waiters) }

// Semaphore is a counting semaphore for simulated processes. The zero
// value has zero capacity; use NewSemaphore.
type Semaphore struct {
	avail int
	queue WaitQueue
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(n int) *Semaphore { return &Semaphore{avail: n} }

// Acquire takes one permit, blocking the process until one is free.
func (s *Semaphore) Acquire(p *Proc) {
	for s.avail <= 0 {
		s.queue.Wait(p)
	}
	s.avail--
}

// Release returns one permit and wakes a waiter if any.
func (s *Semaphore) Release() {
	s.avail++
	s.queue.WakeOne()
}

// Available reports the number of free permits.
func (s *Semaphore) Available() int { return s.avail }
