package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestEventHeapOrderingProperty drains randomized heaps and checks the
// pop sequence against a reference sort by (t, seq).
func TestEventHeapOrderingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		var h eventHeap
		ref := make([]event, 0, n)
		for i := 0; i < n; i++ {
			// Coarse times force plenty of (t, seq) ties.
			e := event{t: Time(rng.Intn(20)), seq: uint64(i)}
			h.push(e)
			ref = append(ref, e)
		}
		sort.Slice(ref, func(i, j int) bool {
			if ref[i].t != ref[j].t {
				return ref[i].t < ref[j].t
			}
			return ref[i].seq < ref[j].seq
		})
		for i, want := range ref {
			got := h.pop()
			if got.t != want.t || got.seq != want.seq {
				t.Fatalf("trial %d: pop %d = (t=%v seq=%d), want (t=%v seq=%d)",
					trial, i, got.t, got.seq, want.t, want.seq)
			}
		}
		if h.len() != 0 {
			t.Fatalf("trial %d: %d events left after draining", trial, h.len())
		}
	}
}

// TestEventHeapInterleavedPushPop mixes pushes and pops, mirroring how
// the engine grows and drains the queue during a run.
func TestEventHeapInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var h eventHeap
	seq := uint64(0)
	last := event{t: -1}
	now := Time(0)
	for step := 0; step < 5000; step++ {
		if h.len() == 0 || rng.Intn(3) != 0 {
			seq++
			h.push(event{t: now + Time(rng.Intn(10)), seq: seq})
		} else {
			e := h.pop()
			if e.t < last.t || (e.t == last.t && e.seq < last.seq) {
				t.Fatalf("step %d: pop went backwards: (%v,%d) after (%v,%d)",
					step, e.t, e.seq, last.t, last.seq)
			}
			last = e
			now = e.t
		}
	}
}

// TestEventHeapPopClearsSlot pins the closure-retention fix: the
// vacated backing-array slot must not keep the popped event's fn (and
// everything its closure captures) reachable.
func TestEventHeapPopClearsSlot(t *testing.T) {
	var h eventHeap
	for i := 0; i < 32; i++ {
		h.push(event{t: Time(i), seq: uint64(i), fn: func() {}})
	}
	for h.len() > 0 {
		n := h.len()
		h.pop()
		if got := h.a[:n][n-1]; got.fn != nil || got.t != 0 || got.seq != 0 {
			t.Fatalf("backing slot %d not cleared after pop: %+v", n-1, got)
		}
	}
}

// BenchmarkEngineEventChurn measures the raw event-queue hot path:
// schedule-and-run chains of events the way simulated I/O operations
// do. The typed heap must not allocate per push/pop.
func BenchmarkEngineEventChurn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		// 64 concurrent timelines, each a chain of 256 events, so the
		// heap stays ~64 deep while 16384 events churn through it.
		for k := 0; k < 64; k++ {
			var step func()
			left := 256
			at := Time(k) * 0.001
			step = func() {
				left--
				at += 1
				if left > 0 {
					e.At(at, step)
				}
			}
			e.At(at, step)
		}
		e.Run()
	}
}

// BenchmarkEngineDeepHeap stresses sift depth: a large standing queue
// with steady push/pop traffic.
func BenchmarkEngineDeepHeap(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for k := 0; k < 10000; k++ {
			e.At(Time(k%97)+Time(k)*1e-6, func() {})
		}
		e.Run()
	}
}
