package h5lite

import (
	"testing"

	"ensembleio/internal/posixio"
	"ensembleio/internal/sim"
)

// recIO records Pwrite calls without any timing simulation.
type recIO struct {
	writes []struct{ off, n int64 }
	reads  []struct{ off, n int64 }
	opens  int
	closes int
}

func (m *recIO) Open(p *sim.Proc, path string, flags int) (int, error) {
	m.opens++
	return 3, nil
}
func (m *recIO) Close(p *sim.Proc, fd int) error {
	m.closes++
	return nil
}
func (m *recIO) Pwrite(p *sim.Proc, fd int, off, n int64) (int64, error) {
	m.writes = append(m.writes, struct{ off, n int64 }{off, n})
	return n, nil
}

func (m *recIO) Pread(p *sim.Proc, fd int, off, n int64) (int64, error) {
	m.reads = append(m.reads, struct{ off, n int64 }{off, n})
	return n, nil
}

var _ IO = (*recIO)(nil)
var _ IO = (*tracerShim)(nil)

// tracerShim proves posixio.Task satisfies the surface via adaptation.
type tracerShim struct{ t *posixio.Task }

func (s *tracerShim) Open(p *sim.Proc, path string, flags int) (int, error) {
	return s.t.Open(p, path, flags)
}
func (s *tracerShim) Close(p *sim.Proc, fd int) error { return s.t.Close(p, fd) }
func (s *tracerShim) Pwrite(p *sim.Proc, fd int, off, n int64) (int64, error) {
	return s.t.Pwrite(p, fd, off, n)
}

func (s *tracerShim) Pread(p *sim.Proc, fd int, off, n int64) (int64, error) {
	return s.t.Pread(p, fd, off, n)
}

func run(t *testing.T, body func(p *sim.Proc)) {
	t.Helper()
	eng := sim.NewEngine()
	eng.Spawn("t", body)
	eng.Run()
}

func TestPackedLayoutIsUnaligned(t *testing.T) {
	io := &recIO{}
	run(t, func(p *sim.Proc) {
		f, err := Create(p, io, "/scratch/g.h5", FileOpts{MetadataWriter: true})
		if err != nil {
			t.Fatal(err)
		}
		ds := f.CreateDataset("wind", 1600000, 4, 10)
		if ds.Stride != 1600000 {
			t.Errorf("packed stride %d, want 1600000", ds.Stride)
		}
		if ds.Base != 4096 {
			t.Errorf("first dataset base %d, want 4096 (after superblock)", ds.Base)
		}
		if off := ds.RecordOffset(2); off != 4096+2*1600000 {
			t.Errorf("record 2 offset %d", off)
		}
		// 1.6 MB records at these offsets cross 1 MB stripes unaligned.
		if ds.RecordOffset(1)%1e6 == 0 {
			t.Error("packed layout unexpectedly stripe aligned")
		}
		ds.WriteRecord(p, 0)
		f.Close(p)
	})
	// superblock + record + close
	if io.writes[1].n != 1600000 {
		t.Errorf("record write size %d, want 1600000", io.writes[1].n)
	}
}

func TestAlignedLayoutPadsStrides(t *testing.T) {
	io := &recIO{}
	run(t, func(p *sim.Proc) {
		f, _ := Create(p, io, "/scratch/g.h5", FileOpts{Alignment: 1e6, MetadataWriter: true})
		ds := f.CreateDataset("wind", 1600000, 8, 10)
		if ds.Stride != 2e6 {
			t.Errorf("aligned stride %d, want 2e6", ds.Stride)
		}
		for i := 0; i < 8; i++ {
			if off := ds.RecordOffset(i); off%1e6 != 0 {
				t.Errorf("record %d offset %d not 1MB aligned", i, off)
			}
		}
		ds.WriteRecord(p, 3)
		f.Close(p)
	})
	last := io.writes[len(io.writes)-1] // the record write
	if last.n != 2e6 || last.off%1e6 != 0 {
		t.Errorf("aligned record write off=%d n=%d, want aligned 2e6", last.off, last.n)
	}
}

func TestImmediateMetadataWritesSmallOps(t *testing.T) {
	io := &recIO{}
	run(t, func(p *sim.Proc) {
		f, _ := Create(p, io, "/x", FileOpts{MetadataWriter: true})
		ds := f.CreateDataset("v", 1600000, 2, 25)
		ds.FlushMetadata(p)
		f.Close(p)
	})
	small := 0
	for _, w := range io.writes {
		if w.n == 2048 {
			small++
		}
	}
	if small != 25 {
		t.Errorf("%d small metadata writes, want 25", small)
	}
}

func TestAggregatedMetadataDeferredToClose(t *testing.T) {
	io := &recIO{}
	run(t, func(p *sim.Proc) {
		f, _ := Create(p, io, "/x", FileOpts{MetadataWriter: true, AggregateMetadata: true, Alignment: 1e6})
		a := f.CreateDataset("a", 1600000, 2, 300)
		b := f.CreateDataset("b", 1600000, 2, 300)
		a.FlushMetadata(p)
		b.FlushMetadata(p)
		// No metadata written yet (only the superblock).
		if len(io.writes) != 1 {
			t.Fatalf("%d writes before close, want 1 (superblock)", len(io.writes))
		}
		f.Close(p)
	})
	// Aligned mode pads ops to 4096 B: 600 x 4096 B = 2.4576 MB ->
	// two 1 MB writes plus one tail padded up to 1 MB.
	var meta []int64
	for _, w := range io.writes[1:] {
		meta = append(meta, w.n)
	}
	if len(meta) != 3 {
		t.Fatalf("aggregated metadata writes %v, want 3 chunks", meta)
	}
	for i, n := range meta {
		if n != 1e6 {
			t.Errorf("chunk %d = %d bytes, want 1e6 (aligned)", i, n)
		}
	}
}

func TestNonMetadataWriterSkipsMetadata(t *testing.T) {
	io := &recIO{}
	run(t, func(p *sim.Proc) {
		f, _ := Create(p, io, "/x", FileOpts{MetadataWriter: false})
		ds := f.CreateDataset("v", 1600000, 2, 25)
		ds.FlushMetadata(p)
		f.Close(p)
	})
	if len(io.writes) != 0 {
		t.Errorf("non-writer rank issued %d metadata writes", len(io.writes))
	}
}

func TestLayoutAgreementAcrossRanks(t *testing.T) {
	layout := func(metaWriter bool) []int64 {
		io := &recIO{}
		var offs []int64
		run(t, func(p *sim.Proc) {
			f, _ := Create(p, io, "/x", FileOpts{MetadataWriter: metaWriter, Alignment: 1e6})
			a := f.CreateDataset("a", 1600000, 100, 50)
			b := f.CreateDataset("b", 1600000, 100, 50)
			offs = append(offs, a.Base, a.Stride, b.Base, b.Stride)
		})
		return offs
	}
	w, r := layout(true), layout(false)
	for i := range w {
		if w[i] != r[i] {
			t.Fatalf("layout disagrees between ranks: %v vs %v", w, r)
		}
	}
}

func TestWriteRecordOutOfRange(t *testing.T) {
	io := &recIO{}
	run(t, func(p *sim.Proc) {
		f, _ := Create(p, io, "/x", FileOpts{})
		ds := f.CreateDataset("v", 100, 2, 0)
		if err := ds.WriteRecord(p, 2); err == nil {
			t.Error("out-of-range record accepted")
		}
	})
}

func TestDoubleCloseFails(t *testing.T) {
	io := &recIO{}
	run(t, func(p *sim.Proc) {
		f, _ := Create(p, io, "/x", FileOpts{})
		if err := f.Close(p); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(p); err == nil {
			t.Error("double close accepted")
		}
	})
}

func TestDatasetsDoNotOverlap(t *testing.T) {
	io := &recIO{}
	run(t, func(p *sim.Proc) {
		f, _ := Create(p, io, "/x", FileOpts{MetadataWriter: true})
		a := f.CreateDataset("a", 1600000, 10, 30)
		b := f.CreateDataset("b", 1600000, 10, 30)
		endA := a.RecordOffset(9) + a.RecordBytes + int64(30)*2048
		if b.Base < endA {
			t.Errorf("dataset b base %d overlaps a's extent ending %d", b.Base, endA)
		}
	})
}

func TestReadRecord(t *testing.T) {
	io := &recIO{}
	run(t, func(p *sim.Proc) {
		f, _ := Create(p, io, "/x", FileOpts{})
		ds := f.CreateDataset("v", 1600000, 4, 0)
		if err := ds.ReadRecord(p, 2); err != nil {
			t.Fatal(err)
		}
		if err := ds.ReadRecord(p, 4); err == nil {
			t.Error("out-of-range read accepted")
		}
	})
	if len(io.reads) != 1 {
		t.Fatalf("%d reads, want 1", len(io.reads))
	}
	if io.reads[0].off != 4096+2*1600000 || io.reads[0].n != 1600000 {
		t.Errorf("read at %d/%d, want record 2", io.reads[0].off, io.reads[0].n)
	}
}
