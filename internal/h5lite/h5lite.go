// Package h5lite is a simplified hierarchical data-format library in
// the spirit of HDF5 + the H5Part veneer, reproducing the POSIX-level
// I/O pattern that matters to the GCRM study (§V):
//
//   - fixed-size records written by many tasks into shared datasets in
//     one file;
//   - a stream of small (~kB) metadata writes — object headers, chunk
//     index entries — issued serially by the metadata-writing rank
//     after each dataset flush (the red activity in Figure 6a);
//   - an optional alignment property that pads record strides to
//     stripe boundaries (the Figure 6g optimization);
//   - an optional aggregated-metadata mode that defers all metadata
//     into one large write at file close (the Figure 6j optimization).
//
// Offsets are computed deterministically from the creation schema so
// every rank independently agrees on the layout, as HDF5 collective
// mode guarantees.
package h5lite

import (
	"errors"
	"fmt"

	"ensembleio/internal/posixio"
	"ensembleio/internal/sim"
)

// IO is the POSIX surface h5lite drives; *ipmio.Tracer and
// *posixio.Task both satisfy it via thin adapters or directly.
type IO interface {
	Open(p *sim.Proc, path string, flags int) (int, error)
	Close(p *sim.Proc, fd int) error
	Pwrite(p *sim.Proc, fd int, offset, n int64) (int64, error)
	Pread(p *sim.Proc, fd int, offset, n int64) (int64, error)
}

// FileOpts configures a file.
type FileOpts struct {
	// Alignment pads dataset bases and record strides to this many
	// bytes (0 = packed layout, the GCRM baseline).
	Alignment int64
	// AggregateMetadata defers every metadata write into a single
	// buffer flushed as large write(s) at Close.
	AggregateMetadata bool
	// MetaOpBytes is the size of one metadata write (default 2048,
	// matching the paper's "<3 KB").
	MetaOpBytes int64
	// SuperblockBytes reserves the file header region (default 4096).
	SuperblockBytes int64
	// MetadataWriter marks the rank that issues metadata I/O (HDF5
	// funnels metadata through one writer; GCRM used task 0).
	MetadataWriter bool
}

func (o *FileOpts) defaults() {
	if o.MetaOpBytes == 0 {
		o.MetaOpBytes = 2048
	}
	if o.Alignment > 0 {
		// An alignment-tuned file also pads metadata blocks to whole
		// file-system pages at page offsets, which is what lets the
		// metadata path dodge partial-page lock bouncing (the paper's
		// "metadata operations benefited somewhat from alignment").
		const page = 4096
		o.MetaOpBytes = (o.MetaOpBytes + page - 1) / page * page
	}
	if o.SuperblockBytes == 0 {
		o.SuperblockBytes = 4096
	}
}

// File is an open h5lite file.
type File struct {
	io   IO
	fd   int
	opts FileOpts

	cursor      int64 // next free byte for layout allocation
	pendingMeta int64 // aggregated metadata bytes awaiting close
	metaFlushed bool
	datasets    []*Dataset
	closed      bool
}

// Dataset is one named record array within the file.
type Dataset struct {
	f           *File
	Name        string
	RecordBytes int64
	Stride      int64 // record allocation pitch (>= RecordBytes)
	Base        int64 // file offset of record 0
	NRecords    int
	metaOps     int   // small writes per metadata flush
	metaBase    int64 // reserved metadata region (immediate mode)
	metaCursor  int64
}

// Create creates (or, for non-creating ranks, opens) the file and
// writes the superblock if this rank is the metadata writer.
func Create(p *sim.Proc, io IO, path string, opts FileOpts) (*File, error) {
	opts.defaults()
	fd, err := io.Open(p, path, posixio.OCreat|posixio.ORdwr)
	if err != nil {
		return nil, fmt.Errorf("h5lite: create %s: %w", path, err)
	}
	f := &File{io: io, fd: fd, opts: opts, cursor: opts.SuperblockBytes}
	if opts.MetadataWriter {
		if err := f.metaWrite(p, 0, opts.SuperblockBytes); err != nil {
			return nil, err
		}
	}
	return f, nil
}

func (f *File) align(x int64) int64 {
	a := f.opts.Alignment
	if a <= 0 {
		return x
	}
	return (x + a - 1) / a * a
}

// CreateDataset declares a dataset of nRecords fixed-size records and
// allocates its extent. metaOps is the number of small metadata writes
// a FlushMetadata on this dataset costs (chunk index scale). Every
// rank must create datasets in the same order with the same arguments.
func (f *File) CreateDataset(name string, recordBytes int64, nRecords, metaOps int) *Dataset {
	if f.closed {
		panic("h5lite: CreateDataset on closed file")
	}
	stride := recordBytes
	if f.opts.Alignment > 0 {
		stride = f.align(recordBytes)
	}
	d := &Dataset{
		f:           f,
		Name:        name,
		RecordBytes: recordBytes,
		Stride:      stride,
		Base:        f.align(f.cursor),
		NRecords:    nRecords,
		metaOps:     metaOps,
	}
	f.cursor = d.Base + int64(nRecords)*stride
	if !f.opts.AggregateMetadata {
		// Reserve an immediate metadata region after the data. In
		// aligned mode the region starts on a page boundary so its
		// page-sized ops stay page-aligned (note that a decimal-MB
		// stripe boundary is not itself page-aligned).
		d.metaBase = f.cursor
		if f.opts.Alignment > 0 {
			const page = 4096
			d.metaBase = (d.metaBase + page - 1) / page * page
		}
		d.metaCursor = d.metaBase
		f.cursor = d.metaBase + int64(metaOps)*f.opts.MetaOpBytes
	}
	f.datasets = append(f.datasets, d)
	return d
}

// RecordOffset returns the file offset of record idx.
func (d *Dataset) RecordOffset(idx int) int64 {
	return d.Base + int64(idx)*d.Stride
}

// WriteRecord writes record idx. With alignment enabled the write is
// padded to the full stride so it lands as whole-stripe RPCs.
func (d *Dataset) WriteRecord(p *sim.Proc, idx int) error {
	if idx < 0 || idx >= d.NRecords {
		return fmt.Errorf("h5lite: record %d out of range [0,%d)", idx, d.NRecords)
	}
	n := d.RecordBytes
	if d.f.opts.Alignment > 0 {
		n = d.Stride
	}
	_, err := d.f.io.Pwrite(p, d.f.fd, d.RecordOffset(idx), n)
	return err
}

// ReadRecord reads record idx back (the analysis/visualization path
// of the GCRM pipeline). It returns an error for out-of-range indices
// or short reads.
func (d *Dataset) ReadRecord(p *sim.Proc, idx int) error {
	if idx < 0 || idx >= d.NRecords {
		return fmt.Errorf("h5lite: record %d out of range [0,%d)", idx, d.NRecords)
	}
	n, err := d.f.io.Pread(p, d.f.fd, d.RecordOffset(idx), d.RecordBytes)
	if err != nil {
		return err
	}
	if n != d.RecordBytes {
		return fmt.Errorf("h5lite: short read of record %d: %d of %d bytes", idx, n, d.RecordBytes)
	}
	return nil
}

// FlushMetadata emits the dataset's metadata. In immediate mode the
// metadata-writing rank issues metaOps small serialized writes; in
// aggregated mode the bytes are buffered for Close. Non-metadata-
// writer ranks return immediately.
func (d *Dataset) FlushMetadata(p *sim.Proc) error {
	f := d.f
	if !f.opts.MetadataWriter {
		return nil
	}
	total := int64(d.metaOps) * f.opts.MetaOpBytes
	if f.opts.AggregateMetadata {
		f.pendingMeta += total
		return nil
	}
	for i := 0; i < d.metaOps; i++ {
		if err := f.metaWrite(p, d.metaCursor, f.opts.MetaOpBytes); err != nil {
			return err
		}
		d.metaCursor += f.opts.MetaOpBytes
	}
	return nil
}

func (f *File) metaWrite(p *sim.Proc, off, n int64) error {
	_, err := f.io.Pwrite(p, f.fd, off, n)
	return err
}

// Close flushes aggregated metadata (as large aligned writes at the
// end of the file) and closes the descriptor.
func (f *File) Close(p *sim.Proc) error {
	if f.closed {
		return errors.New("h5lite: double close")
	}
	f.closed = true
	if f.opts.MetadataWriter && f.opts.AggregateMetadata && f.pendingMeta > 0 && !f.metaFlushed {
		f.metaFlushed = true
		const chunk = 1e6 // 1 MB aggregated metadata writes
		off := f.align(f.cursor)
		remaining := f.pendingMeta
		for remaining > 0 {
			n := int64(chunk)
			if remaining < n {
				n = remaining
				if f.opts.Alignment > 0 {
					n = f.align(n) // pad the final chunk too
				}
			}
			if err := f.metaWrite(p, off, n); err != nil {
				return err
			}
			off += n
			remaining -= int64(chunk)
			if remaining < 0 {
				remaining = 0
			}
		}
	}
	return f.io.Close(p, f.fd)
}

// Datasets returns the declared datasets in creation order.
func (f *File) Datasets() []*Dataset { return f.datasets }
