package cluster

import (
	"math"
	"testing"

	"ensembleio/internal/flownet"
	"ensembleio/internal/sim"
)

func TestEffectiveAggregateTakesOSTLimit(t *testing.T) {
	p := Franklin()
	p.AggregateMBps = 100000 // fabric far above OST capacity
	want := float64(p.OSTs) * p.OSTServiceMBps
	if got := p.EffectiveAggregateMBps(); got != want {
		t.Errorf("effective aggregate %v, want OST-limited %v", got, want)
	}
	p = Franklin()
	if got := p.EffectiveAggregateMBps(); got != p.AggregateMBps {
		t.Errorf("effective aggregate %v, want network-limited %v", got, p.AggregateMBps)
	}
}

func TestNodeForTaskBlockAssignment(t *testing.T) {
	eng := sim.NewEngine()
	p := Franklin()
	p.BackgroundMeanMBps = 0
	c := New(eng, p, 4, 1)
	cases := []struct{ rank, node int }{{0, 0}, {3, 0}, {4, 1}, {15, 3}}
	for _, tc := range cases {
		if got := c.NodeForTask(tc.rank).ID; got != tc.node {
			t.Errorf("rank %d -> node %d, want %d", tc.rank, got, tc.node)
		}
	}
}

func TestNodeForTaskOutOfRangePanics(t *testing.T) {
	eng := sim.NewEngine()
	p := Franklin()
	p.BackgroundMeanMBps = 0
	c := New(eng, p, 2, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for rank beyond cluster")
		}
	}()
	c.NodeForTask(8)
}

func TestMemoryPressure(t *testing.T) {
	eng := sim.NewEngine()
	p := Franklin()
	p.BackgroundMeanMBps = 0
	c := New(eng, p, 1, 1)
	n := c.Nodes[0]
	if n.MemoryPressure() != 0 {
		t.Errorf("fresh node pressure %v, want 0", n.MemoryPressure())
	}
	n.DirtyMB = p.DirtyLimitMB / 2
	if math.Abs(n.MemoryPressure()-0.5) > 1e-12 {
		t.Errorf("pressure %v, want 0.5", n.MemoryPressure())
	}
	n.DirtyMB = p.DirtyLimitMB * 2
	if n.MemoryPressure() != 2 {
		t.Errorf("pressure %v, want 2", n.MemoryPressure())
	}
	n.DirtyMB = p.DirtyLimitMB + 10
	if n.DirtyRoomMB() != 0 {
		t.Errorf("room %v, want 0 when over limit", n.DirtyRoomMB())
	}
}

func TestServiceNoiseDeterministicPerSeed(t *testing.T) {
	mk := func(seed int64) []float64 {
		eng := sim.NewEngine()
		p := Franklin()
		p.BackgroundMeanMBps = 0
		c := New(eng, p, 1, seed)
		out := make([]float64, 50)
		for i := range out {
			out[i] = c.ServiceNoise()
		}
		return out
	}
	a, b := mk(7), mk(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed gave different noise streams")
		}
	}
	cdiff := mk(8)
	same := 0
	for i := range a {
		if a[i] == cdiff[i] {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds coincide on %d/50 draws", same)
	}
}

func TestServiceNoiseCenteredNearOne(t *testing.T) {
	eng := sim.NewEngine()
	p := Franklin()
	p.BackgroundMeanMBps = 0
	p.StragglerProb = 0 // median test without tail
	c := New(eng, p, 1, 3)
	above := 0
	n := 10000
	for i := 0; i < n; i++ {
		if c.ServiceNoise() > 1 {
			above++
		}
	}
	frac := float64(above) / float64(n)
	if frac < 0.46 || frac > 0.54 {
		t.Errorf("fraction above 1 = %.3f, want ~0.5", frac)
	}
}

func TestBackgroundLoadConsumesBandwidthAndStops(t *testing.T) {
	eng := sim.NewEngine()
	p := Franklin()
	p.BackgroundMeanMBps = 8000 // half the fabric
	p.NodeLinkMBps = 0          // so the fabric, not the node link, binds
	c := New(eng, p, 1, 5)

	// A foreground transfer that would take 1 s alone should take
	// noticeably longer with a heavy background competitor.
	var dur sim.Duration
	eng.Spawn("fg", func(pr *sim.Proc) {
		dur = c.Nodes[0].Port.Transfer(pr, 16000, flownet.StreamOpts{})
		c.StopBackground()
	})
	eng.Run()
	if dur < 1.05 {
		t.Errorf("foreground transfer %v, want slowed beyond 1.05s by background load", dur)
	}
	if dur > 10 {
		t.Errorf("foreground transfer %v, implausibly slow", dur)
	}
}

func TestJaguarDiffersFromFranklin(t *testing.T) {
	f, j := Franklin(), Jaguar()
	if !j.PatchStridedReadahead {
		t.Error("Jaguar profile must not exhibit the strided read-ahead pathology")
	}
	if f.PatchStridedReadahead {
		t.Error("Franklin profile must exhibit the bug by default")
	}
	if j.EffectiveAggregateMBps() <= f.EffectiveAggregateMBps() {
		t.Error("Jaguar should have higher aggregate bandwidth")
	}
	if j.OSTs <= f.OSTs {
		t.Error("Jaguar should have more OSTs")
	}
}
