// Package cluster models the architectural platforms of the study: a
// Cray-XT-like machine with multicore compute nodes, per-node links
// into a shared I/O fabric, a Lustre-like object-storage back end, and
// the per-node page-cache memory that mediates write-back caching.
//
// The model captures the shared-resource structure that produces the
// paper's performance ensembles: the aggregate fabric capacity is
// divided among node clients, each node's share among its I/O streams,
// and stochastic service variability plus background load from other
// jobs make individual events erratic while leaving the ensemble
// distribution stable.
package cluster

import (
	"fmt"
	"math"

	"ensembleio/internal/flownet"
	"ensembleio/internal/sim"
	"ensembleio/internal/telemetry"
)

// Profile describes a machine and its file-system behaviour constants.
// Stock profiles Franklin and Jaguar correspond to the paper's two
// platforms (LBNL Franklin XT4, ORNL Jaguar XT4 partition).
type Profile struct {
	Name         string
	CoresPerNode int

	// NodeLinkMBps is the per-node injection bandwidth into the I/O
	// fabric (HyperTransport/SeaStar path; generous relative to the
	// node's fair share of the aggregate).
	NodeLinkMBps float64
	// AggregateMBps is the network-limited aggregate file-system
	// bandwidth (~16-18 GB/s on Franklin scratch).
	AggregateMBps float64

	// OSTs is the number of object storage targets; OSTServiceMBps the
	// per-OST streaming service rate. Effective aggregate capacity is
	// min(AggregateMBps, OSTs*OSTServiceMBps).
	OSTs           int
	OSTServiceMBps float64
	// StripeMB is the Lustre stripe (RPC) size, 1 MB on both systems.
	StripeMB float64

	// DirtyLimitMB is the per-node writable page-cache budget: writes
	// are absorbed instantly-ish into cache until this much dirty data
	// accumulates, then become synchronous with the flusher.
	DirtyLimitMB float64
	// AbsorbMBps is the per-task rate at which writes copy into the
	// page cache (grant-limited, well above the fabric fair share).
	AbsorbMBps float64

	// MDS small-operation model: a serialized metadata operation costs
	// MDSBaseLatency plus payload serialization at SmallIORateMBps.
	// Small *writes* additionally suffer a slow tail: with probability
	// MDSSlowProb the op stalls an extra Uniform(MDSSlowLoSec,
	// MDSSlowHiSec) seconds — lock revocation against thousands of
	// clients holding extents on a busy shared file system. Stripe-
	// aligned small writes see the tail damped by AlignedMetaRelief
	// (the paper notes metadata "benefited somewhat from alignment").
	MDSBaseLatency sim.Duration
	// MDSConcurrency is the metadata service's request parallelism:
	// independent clients' operations overlap up to this width (a
	// single rank's sequential stream gains nothing). Default 16.
	MDSConcurrency    int
	SmallIOBytes      int64   // ops at or below this size use the MDS path
	SmallIORateMBps   float64 // payload rate for small serialized I/O
	MDSSlowProb       float64
	MDSSlowLoSec      float64
	MDSSlowHiSec      float64
	AlignedMetaRelief float64 // multiplier (<1) on slow prob & span when aligned

	// Extent-lock contention: the per-stream rate cap for shared-file
	// writes is LockCapMBps / (writersPerOST ^ LockGamma); unaligned
	// writes additionally divide the cap by UnalignedPenalty because
	// partial-stripe RPCs bounce extent locks between clients.
	LockCapMBps      float64
	LockGamma        float64
	UnalignedPenalty float64

	// Read-ahead model. Normal streaming reads are limited by
	// ReadCapMBps per stream. When the strided-read-ahead defect is
	// active (see PatchStridedReadahead) and memory pressure is high,
	// reads degenerate to page-sized RPCs at PathologyMBps, further
	// divided by the per-phase severity growth.
	ReadCapMBps float64
	// ReadChunks is the number of segments a read is served in; the
	// strided defect can strike between segments (default 16).
	ReadChunks            int
	PathologyMBps         float64
	PathologySeverityGrow float64 // multiplicative per strided phase
	PathologyFloorMBps    float64 // severity growth never caps below this
	PatchStridedReadahead bool    // true = the Lustre fix is installed

	// Stochastic service variability: every transfer's demand is
	// multiplied by Lognormal(0, NoiseSigma); with probability
	// StragglerProb it is additionally multiplied by a Pareto(1,
	// StragglerAlpha) factor, producing the heavy right tails of
	// production file systems.
	NoiseSigma     float64
	StragglerProb  float64
	StragglerAlpha float64

	// OST luck: with probability SlowLuckProb a transfer lands on a
	// congested OST set and its rate is capped at an absolute
	// Uniform(SlowLuckLoMBps, SlowLuckHiMBps) for the whole call —
	// bandwidth freed elsewhere cannot help it. This non-work-
	// conserving tail is what makes splitting a block into k calls pay
	// off (Figure 2): each call redraws its luck, so per-task totals
	// regress to the mean by the Law of Large Numbers.
	SlowLuckProb   float64
	SlowLuckLoMBps float64
	SlowLuckHiMBps float64

	// Flusher stream scheduling: when a node's client flushes the
	// write queue it admits 1, 2, or all waiting streams for the
	// epoch, with these relative weights. This is the mechanism that
	// produces the R / 2R / 4R harmonic mode structure of Figure 1c.
	SlotWeights [3]float64

	// CacheBypassBelowMB: writes smaller than this are written through
	// synchronously rather than absorbed into the page cache. Shared-
	// file writes at fine interleaving defeat client caching because
	// conflicting extent locks force immediate flushes; large
	// contiguous regions (IOR blocks, MADbench matrices) cache
	// normally.
	CacheBypassBelowMB float64
	// SlotMinMB: only streaming writes at least this large compete for
	// flusher epoch slots; smaller writes are dispatched greedily
	// (they are latency/lock-bound, not streaming-bound).
	SlotMinMB float64
	// DrainChunkMB is the granularity at which an idle flusher writes
	// back dirty cache; DrainIdleDelaySec is how long the flusher must
	// be idle before write-back starts (the Lustre flush-timer lag
	// that keeps dirty pages resident across short barrier waits).
	DrainChunkMB      float64
	DrainIdleDelaySec float64

	// Extent-lock conflicts for unaligned shared-file writes: each
	// write suffers a conflict with probability
	// min(ConflictProbMax, ConflictProbPerWriterPerOST * writersPerOST^2)
	// — quadratic in writer density, because both the chance that a
	// neighbouring extent is being written and the chance its lock is
	// currently held elsewhere grow with density — and then stalls for
	// Uniform(ConflictDelayLoSec,
	// ConflictDelayHiSec) seconds per partial-stripe RPC while the
	// contended extent locks bounce between clients. For 1.6 MB GCRM
	// records (two partial RPCs) this produces the slow "bulge" of
	// Figure 6(f) that alignment removes; for a 300 MB matrix (one
	// trailing partial RPC) it is a minor perturbation.
	ConflictProbPerWriterPerOST float64
	ConflictProbMax             float64
	ConflictDelayLoSec          float64
	ConflictDelayHiSec          float64

	// Background load from other jobs: mean consumed bandwidth and
	// mean burst size of the injected competing streams. Zero disables.
	BackgroundMeanMBps float64
	BackgroundBurstMB  float64

	// Quantum is the fluid-rate recomputation interval.
	Quantum sim.Duration

	// AnalyticOff disables the fabric's analytic fast path (completion
	// calendar, epoch memoization), falling back to the pure event
	// path. Results are byte-identical either way; the flag is the
	// CLIs' -analytic=off escape hatch and the reference side of the
	// fastpath-ablation suite.
	AnalyticOff bool
}

// EffectiveAggregateMBps is the back-end capacity after the OST limit.
func (p Profile) EffectiveAggregateMBps() float64 {
	ost := float64(p.OSTs) * p.OSTServiceMBps
	if ost > 0 && ost < p.AggregateMBps {
		return ost
	}
	return p.AggregateMBps
}

// Franklin returns the profile of the LBNL Cray XT4 (quad-core nodes,
// 48-OST Lustre scratch, ~16 GB/s aggregate). Constants are calibrated
// so the paper's shape claims hold; see DESIGN.md §6.
func Franklin() Profile {
	return Profile{
		Name:                  "franklin",
		CoresPerNode:          4,
		NodeLinkMBps:          1600,
		AggregateMBps:         16000,
		OSTs:                  48,
		OSTServiceMBps:        360,
		StripeMB:              1,
		DirtyLimitMB:          256,
		AbsorbMBps:            120,
		MDSBaseLatency:        0.0012,
		MDSConcurrency:        16,
		SmallIOBytes:          64 << 10,
		SmallIORateMBps:       40,
		MDSSlowProb:           0.25,
		MDSSlowLoSec:          0.3,
		MDSSlowHiSec:          2.4,
		AlignedMetaRelief:     0.7,
		LockCapMBps:           110,
		LockGamma:             1.034,
		UnalignedPenalty:      1.15,
		ReadCapMBps:           220,
		ReadChunks:            16,
		PathologyMBps:         5,
		PathologySeverityGrow: 2.4,
		PathologyFloorMBps:    0.3,
		PatchStridedReadahead: false,
		NoiseSigma:            0.16,
		StragglerProb:         0,
		StragglerAlpha:        1.8,
		SlowLuckProb:          0.005,
		SlowLuckLoMBps:        10,
		SlowLuckHiMBps:        26,
		SlotWeights:           [3]float64{0.40, 0.30, 0.30},
		CacheBypassBelowMB:    8,
		SlotMinMB:             16,
		DrainChunkMB:          64,
		DrainIdleDelaySec:     30,

		ConflictProbPerWriterPerOST: 4e-5,
		ConflictProbMax:             0.50,
		ConflictDelayLoSec:          0.75,
		ConflictDelayHiSec:          10,

		BackgroundMeanMBps: 900,
		BackgroundBurstMB:  512,
		Quantum:            0.05,
	}
}

// Jaguar returns the profile of the ORNL XT4 partition used in §IV:
// 144 OSTs, roughly twice Franklin's aggregate bandwidth, a larger
// usable cache, and a read-ahead implementation that does not exhibit
// the strided-detection pathology in this workload regime.
func Jaguar() Profile {
	p := Franklin()
	p.Name = "jaguar"
	p.OSTs = 144
	p.OSTServiceMBps = 300
	p.AggregateMBps = 22000
	p.DirtyLimitMB = 512
	p.LockCapMBps = 220
	p.ReadCapMBps = 260
	p.PatchStridedReadahead = true // pathology not triggered on Jaguar
	p.NoiseSigma = 0.10
	p.SlowLuckProb = 0.003
	p.SlowLuckLoMBps = 15
	p.SlowLuckHiMBps = 40
	p.BackgroundMeanMBps = 1500
	p.BackgroundBurstMB = 512
	return p
}

// Node is one compute node: a fabric port plus page-cache state.
type Node struct {
	ID      int
	Port    *flownet.Port
	DirtyMB float64
	cl      *Cluster
}

// Cluster is an instantiated machine: engine, fabric, nodes, RNG and
// optional background load.
type Cluster struct {
	Eng    *sim.Engine
	Prof   Profile
	Fabric *flownet.Fabric
	Nodes  []*Node
	RNG    *sim.RNG

	// Tel is the run's telemetry sink; nil when telemetry is disabled
	// (every layer's handles then no-op). Set via Instrument so the
	// lustre and mpi layers built on top of the cluster can pick it up
	// at construction time.
	Tel *telemetry.Sink

	bgPort    *flownet.Port
	bgStopped bool

	telBursts  *telemetry.Counter
	telBurstMB *telemetry.Counter
}

// New builds a cluster of nNodes nodes for the profile. The seed
// drives all stochastic behaviour; two clusters with the same seed
// evolve identically, and different seeds model different runs of the
// same experiment (the paper's run-to-run variability).
func New(eng *sim.Engine, prof Profile, nNodes int, seed int64) *Cluster {
	if nNodes <= 0 {
		panic("cluster: need at least one node")
	}
	fab := flownet.New(eng, flownet.Config{
		AggregateMBps: prof.EffectiveAggregateMBps(),
		Quantum:       prof.Quantum,
		AnalyticOff:   prof.AnalyticOff,
	})
	c := &Cluster{Eng: eng, Prof: prof, Fabric: fab, RNG: sim.NewRNG(seed)}
	for i := 0; i < nNodes; i++ {
		c.Nodes = append(c.Nodes, &Node{ID: i, Port: fab.NewPort(prof.NodeLinkMBps), cl: c})
	}
	if prof.BackgroundMeanMBps > 0 {
		// The background port's weight makes competing jobs consume
		// roughly BackgroundMeanMBps of the aggregate when the fabric
		// is saturated.
		agg := prof.EffectiveAggregateMBps()
		w := prof.BackgroundMeanMBps / (agg - prof.BackgroundMeanMBps) * float64(nNodes)
		c.bgPort = fab.NewWeightedPort(0, w)
		c.scheduleBackground()
	}
	return c
}

// Instrument attaches a telemetry sink to the cluster and the fabric
// beneath it. Call it right after New, before building lustre/mpi
// layers on top — they cache their handles from Tel at construction.
// A nil sink is fine (and is the disabled default).
//
// The first background burst is started by New itself, before any
// Instrument call can run; burst telemetry therefore counts *completed*
// bursts, recorded in the stream-done callbacks, which only fire during
// the engine run — deterministically after instrumentation.
func (c *Cluster) Instrument(tel *telemetry.Sink) {
	c.Tel = tel
	c.telBursts = tel.Counter("cluster.bg_bursts")
	c.telBurstMB = tel.Counter("cluster.bg_burst_mb")
	c.Fabric.Instrument(tel)
}

// scheduleBackground keeps a competing-job stream alive on the
// background port: bursts of BackgroundBurstMB with exponentially
// distributed think gaps. It reschedules itself until StopBackground.
func (c *Cluster) scheduleBackground() {
	if c.bgStopped {
		return
	}
	rng := c.RNG
	burst := c.Prof.BackgroundBurstMB * rng.Lognormal(0, 0.5)
	c.bgPort.Start(burst, flownet.StreamOpts{Done: func() {
		c.telBursts.Inc()
		c.telBurstMB.Add(burst)
		if c.bgStopped {
			return
		}
		gap := sim.Duration(rng.Exp(0.2))
		c.Eng.After(gap, c.scheduleBackground)
	}})
}

// StopBackground halts the background-load injector so the event queue
// can drain at the end of a workload.
func (c *Cluster) StopBackground() { c.bgStopped = true }

// BackgroundStopped reports whether StopBackground has been called.
// Self-rescheduling load injectors (scheduleBackground, InjectBurstLoad)
// consult it so the event queue can drain once the workload finishes.
func (c *Cluster) BackgroundStopped() bool { return c.bgStopped }

// Machine is the name the fault-injection layer uses for an
// instantiated cluster (see internal/faults).
type Machine = Cluster

// InjectBurstLoad starts a deterministic competing-load injector: from
// startSec on, bursts that consume up to mbps MB/s of the aggregate
// for onSec seconds, separated by offSec of silence. Unlike the
// profile's stochastic background stream, the schedule is a fixed
// function of virtual time — fault injection wants phase-correlated,
// exactly reproducible contention. The injector honors StopBackground
// like the stochastic one.
func (c *Cluster) InjectBurstLoad(mbps, onSec, offSec, startSec float64) {
	if mbps <= 0 || onSec <= 0 {
		panic("cluster: burst load needs a positive rate and on-window")
	}
	agg := c.Prof.EffectiveAggregateMBps()
	if mbps > 0.95*agg {
		mbps = 0.95 * agg
	}
	// Weight chosen like the stochastic background port's: heavy enough
	// that the burst consumes ~mbps even when every node is pushing.
	w := mbps / (agg - mbps) * float64(len(c.Nodes))
	port := c.Fabric.NewWeightedPort(0, w)
	var burst func()
	burst = func() {
		if c.bgStopped {
			return
		}
		port.Start(mbps*onSec, flownet.StreamOpts{
			RateCap: mbps,
			Done: func() {
				c.telBursts.Inc()
				c.telBurstMB.Add(mbps * onSec)
				if c.bgStopped {
					return
				}
				c.Eng.After(sim.Duration(offSec), burst)
			},
		})
	}
	c.Eng.After(sim.Duration(startSec), burst)
}

// NewExternalNode appends a node that models another tenant's
// injection point into the shared fabric: a rate-capped weighted port
// with no compute placement (NodeForTask never maps ranks onto it).
// The weight is relative to the application ports' unit weight, so a
// heavy weight lets the external stream claim ~its cap even when every
// application node is pushing. Used by the background-bursts fault,
// which drives a real write workload through a lustre client mounted
// on the returned node (lustre.FS.AddExternalClient).
func (c *Cluster) NewExternalNode(capMBps, weight float64) *Node {
	n := &Node{ID: len(c.Nodes), Port: c.Fabric.NewWeightedPort(capMBps, weight), cl: c}
	c.Nodes = append(c.Nodes, n)
	return n
}

// MemoryPressure reports the node's dirty-page pressure in [0, 1+]:
// the ratio of dirty cache to the dirty limit.
func (n *Node) MemoryPressure() float64 {
	if n.cl.Prof.DirtyLimitMB <= 0 {
		return 1
	}
	return n.DirtyMB / n.cl.Prof.DirtyLimitMB
}

// DirtyRoomMB reports how much more data the node's cache can absorb.
func (n *Node) DirtyRoomMB() float64 {
	room := n.cl.Prof.DirtyLimitMB - n.DirtyMB
	if room < 0 {
		return 0
	}
	return room
}

// Cluster returns the owning cluster.
func (n *Node) Cluster() *Cluster { return n.cl }

// NodeForTask maps a task (MPI rank) to its node under block
// assignment with CoresPerNode tasks per node.
func (c *Cluster) NodeForTask(rank int) *Node {
	idx := rank / c.Prof.CoresPerNode
	if idx >= len(c.Nodes) {
		panic(fmt.Sprintf("cluster: rank %d needs node %d but cluster has %d nodes", rank, idx, len(c.Nodes)))
	}
	return c.Nodes[idx]
}

// ServiceNoise draws the multiplicative service-variability factor for
// one transfer: lognormal jitter with an occasional Pareto straggler.
func (c *Cluster) ServiceNoise() float64 {
	f := c.RNG.Lognormal(0, c.Prof.NoiseSigma)
	if c.RNG.Bernoulli(c.Prof.StragglerProb) {
		f *= c.RNG.Pareto(1, c.Prof.StragglerAlpha)
	}
	return f
}

// StreamLuck draws the OST-luck rate cap for one transfer: usually
// unbounded (+Inf), occasionally an absolute slow cap in MB/s.
func (c *Cluster) StreamLuck() float64 {
	if c.Prof.SlowLuckProb > 0 && c.RNG.Bernoulli(c.Prof.SlowLuckProb) {
		return c.RNG.Uniform(c.Prof.SlowLuckLoMBps, c.Prof.SlowLuckHiMBps)
	}
	return math.Inf(1)
}
