package lint

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// This file is the project's stand-in for
// golang.org/x/tools/go/analysis/analysistest: golden testdata
// packages annotated with `// want` comments, each holding a
// backquoted regexp that must match a finding reported on that line.
//
//	rand.Seed(1) // want `global math/rand`
//
// Lines without a want comment must produce no finding, so every
// testdata package doubles as a corpus of allowed constructs.

var wantRE = regexp.MustCompile("`([^`]+)`")

// RunAnalyzerTest loads the testdata package(s) at the given patterns
// (relative to the test's working directory, e.g.
// "./testdata/src/floateq"), runs one analyzer on them, and compares
// findings against `// want` comments. Match is bypassed — testdata
// packages live outside the import paths the analyzers are scoped to
// — but //lint:allow suppression stays active so testdata can
// exercise the escape hatch. Whole-program analyzers (RunAll) may be
// given several patterns to exercise cross-package propagation;
// per-package analyzers must match exactly one package.
func RunAnalyzerTest(t *testing.T, a *Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := Load(".", patterns...)
	if err != nil {
		t.Fatalf("loading %s: %v", strings.Join(patterns, " "), err)
	}
	if a.RunAll == nil && len(pkgs) != 1 {
		t.Fatalf("patterns %v matched %d packages, want 1", patterns, len(pkgs))
	}

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[string][]*want) // "file:line" -> expectations
	key := func(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, m := range wantRE.FindAllStringSubmatch(text, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
						}
						k := key(pos.Filename, pos.Line)
						wants[k] = append(wants[k], &want{re: re})
					}
				}
			}
		}
	}

	ix := buildAllowIndex(pkgs)
	var diags []Diagnostic
	if a.RunAll != nil {
		for _, d := range a.RunAll(pkgs) {
			if !ix.allowed(d.Pos.Filename, d.Pos.Line, d.Analyzer) {
				diags = append(diags, d)
			}
		}
	} else {
		diags = runOne(pkgs[0], a, ix)
	}
	for _, d := range diags {
		k := key(d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s", d)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected finding matching %q, got none", k, w.re)
			}
		}
	}
}
