package lint

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// This file is the project's stand-in for
// golang.org/x/tools/go/analysis/analysistest: golden testdata
// packages annotated with `// want` comments, each holding a
// backquoted regexp that must match a finding reported on that line.
//
//	rand.Seed(1) // want `global math/rand`
//
// Lines without a want comment must produce no finding, so every
// testdata package doubles as a corpus of allowed constructs.

var wantRE = regexp.MustCompile("`([^`]+)`")

// RunAnalyzerTest loads the testdata package at pattern (relative to
// the test's working directory, e.g. "./testdata/src/floateq"), runs
// one analyzer on it, and compares findings against `// want`
// comments. Match is bypassed — testdata packages live outside the
// import paths the analyzers are scoped to — but //lint:allow
// suppression stays active so testdata can exercise the escape hatch.
func RunAnalyzerTest(t *testing.T, a *Analyzer, pattern string) {
	t.Helper()
	pkgs, err := Load(".", pattern)
	if err != nil {
		t.Fatalf("loading %s: %v", pattern, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("pattern %s matched %d packages, want 1", pattern, len(pkgs))
	}
	pkg := pkgs[0]

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[string][]*want) // "file:line" -> expectations
	key := func(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
					}
					k := key(pos.Filename, pos.Line)
					wants[k] = append(wants[k], &want{re: re})
				}
			}
		}
	}

	for _, d := range runOne(pkg, a, allowedLines(pkg)) {
		k := key(d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s", d)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected finding matching %q, got none", k, w.re)
			}
		}
	}
}
