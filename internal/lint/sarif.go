package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 output, so CI can render findings as inline annotations
// (GitHub code scanning consumes exactly this shape). The structs
// model the subset of the schema the tool emits; ValidateSARIF checks
// the spec's structural requirements so tests can round-trip a log
// and prove it stays schema-shaped without a network fetch of the
// JSON schema.

// SARIFSchemaURI and SARIFVersion pin the emitted schema revision.
const (
	SARIFSchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
	SARIFVersion   = "2.1.0"
)

// SARIFLog is the top-level object of a SARIF 2.1.0 file.
type SARIFLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []SARIFRun `json:"runs"`
}

// SARIFRun is one tool invocation.
type SARIFRun struct {
	Tool    SARIFTool     `json:"tool"`
	Results []SARIFResult `json:"results"`
}

// SARIFTool describes the analyzer suite that produced the run.
type SARIFTool struct {
	Driver SARIFDriver `json:"driver"`
}

// SARIFDriver is the tool component with its rule metadata.
type SARIFDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Version        string      `json:"version,omitempty"`
	Rules          []SARIFRule `json:"rules"`
}

// SARIFRule is one analyzer's metadata entry.
type SARIFRule struct {
	ID               string       `json:"id"`
	ShortDescription SARIFMessage `json:"shortDescription"`
}

// SARIFMessage is a text-bearing message object.
type SARIFMessage struct {
	Text string `json:"text"`
}

// SARIFResult is one finding.
type SARIFResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   SARIFMessage    `json:"message"`
	Locations []SARIFLocation `json:"locations"`
	CodeFlows []SARIFCodeFlow `json:"codeFlows,omitempty"`
}

// SARIFLocation wraps a physical source location.
type SARIFLocation struct {
	PhysicalLocation SARIFPhysicalLocation `json:"physicalLocation"`
	Message          *SARIFMessage         `json:"message,omitempty"`
}

// SARIFPhysicalLocation is a file + region reference.
type SARIFPhysicalLocation struct {
	ArtifactLocation SARIFArtifactLocation `json:"artifactLocation"`
	Region           SARIFRegion           `json:"region"`
}

// SARIFArtifactLocation is a repo-relative file URI.
type SARIFArtifactLocation struct {
	URI string `json:"uri"`
}

// SARIFRegion is a line/column range.
type SARIFRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIFCodeFlow renders a detflow source→sink call chain.
type SARIFCodeFlow struct {
	ThreadFlows []SARIFThreadFlow `json:"threadFlows"`
}

// SARIFThreadFlow is the single-thread location sequence of a flow.
type SARIFThreadFlow struct {
	Locations []SARIFThreadFlowLocation `json:"locations"`
}

// SARIFThreadFlowLocation is one hop of a thread flow.
type SARIFThreadFlowLocation struct {
	Location SARIFLocation `json:"location"`
}

// relURI converts an absolute path to a forward-slash URI relative to
// baseDir; paths outside baseDir stay absolute.
func relURI(baseDir, path string) string {
	if baseDir != "" {
		if rel, err := filepath.Rel(baseDir, path); err == nil && !strings.HasPrefix(rel, "..") {
			path = rel
		}
	}
	return filepath.ToSlash(path)
}

// BuildSARIF assembles a SARIF 2.1.0 log from the findings. baseDir
// (usually the module root) relativizes file URIs; version stamps the
// driver. Every analyzer in the suite gets a rule entry whether or
// not it fired, so rule indexes are stable across runs.
func BuildSARIF(diags []Diagnostic, analyzers []*Analyzer, baseDir, version string) *SARIFLog {
	ruleIndex := make(map[string]int)
	var rules []SARIFRule
	addRule := func(name, doc string) {
		if _, ok := ruleIndex[name]; ok {
			return
		}
		ruleIndex[name] = len(rules)
		rules = append(rules, SARIFRule{
			ID:               name,
			ShortDescription: SARIFMessage{Text: strings.ReplaceAll(doc, "\n", " ")},
		})
	}
	for _, a := range analyzers {
		addRule(a.Name, a.Doc)
	}
	addRule(AllowCheckName, "reject reasonless, unknown-target, and stale //lint:allow directives")

	results := make([]SARIFResult, 0, len(diags))
	for _, d := range diags {
		// Findings from analyzers outside the passed suite still get
		// a (bare) rule entry rather than a dangling index.
		addRule(d.Analyzer, "")
		loc := func(file string, line, col int, msg string) SARIFLocation {
			l := SARIFLocation{
				PhysicalLocation: SARIFPhysicalLocation{
					ArtifactLocation: SARIFArtifactLocation{URI: relURI(baseDir, file)},
					Region:           SARIFRegion{StartLine: line, StartColumn: col},
				},
			}
			if msg != "" {
				l.Message = &SARIFMessage{Text: msg}
			}
			return l
		}
		r := SARIFResult{
			RuleID:    d.Analyzer,
			RuleIndex: ruleIndex[d.Analyzer],
			Level:     "error",
			Message:   SARIFMessage{Text: d.Message},
			Locations: []SARIFLocation{loc(d.Pos.Filename, d.Pos.Line, d.Pos.Column, "")},
		}
		if len(d.Chain) > 0 {
			tf := SARIFThreadFlow{}
			tf.Locations = append(tf.Locations, SARIFThreadFlowLocation{
				Location: loc(d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message),
			})
			for _, c := range d.Chain {
				tf.Locations = append(tf.Locations, SARIFThreadFlowLocation{
					Location: loc(c.Pos.Filename, c.Pos.Line, c.Pos.Column, c.Note),
				})
			}
			r.CodeFlows = []SARIFCodeFlow{{ThreadFlows: []SARIFThreadFlow{tf}}}
		}
		results = append(results, r)
	}

	return &SARIFLog{
		Schema:  SARIFSchemaURI,
		Version: SARIFVersion,
		Runs: []SARIFRun{{
			Tool: SARIFTool{Driver: SARIFDriver{
				Name:           "ensemblelint",
				InformationURI: "https://github.com/ensembleio",
				Version:        version,
				Rules:          rules,
			}},
			Results: results,
		}},
	}
}

// WriteSARIF encodes the log as indented JSON.
func WriteSARIF(w io.Writer, log *SARIFLog) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// ValidateSARIF checks the structural requirements the SARIF 2.1.0
// schema imposes on the subset ensemblelint emits: version and
// $schema, at least the required properties on every run, tool,
// driver, rule, result, and location, and in-range rule indexes. It
// is the test- and CI-side gate that emitted logs stay consumable by
// SARIF viewers.
func ValidateSARIF(log *SARIFLog) error {
	if log.Version != SARIFVersion {
		return fmt.Errorf("sarif: version must be %q, got %q", SARIFVersion, log.Version)
	}
	if log.Schema == "" {
		return fmt.Errorf("sarif: $schema is required")
	}
	if len(log.Runs) == 0 {
		return fmt.Errorf("sarif: at least one run is required")
	}
	for ri, run := range log.Runs {
		d := run.Tool.Driver
		if d.Name == "" {
			return fmt.Errorf("sarif: runs[%d].tool.driver.name is required", ri)
		}
		ids := make(map[string]bool, len(d.Rules))
		for i, rule := range d.Rules {
			if rule.ID == "" {
				return fmt.Errorf("sarif: runs[%d] rule %d has no id", ri, i)
			}
			if ids[rule.ID] {
				return fmt.Errorf("sarif: runs[%d] duplicate rule id %q", ri, rule.ID)
			}
			ids[rule.ID] = true
		}
		for i, res := range run.Results {
			if res.Message.Text == "" {
				return fmt.Errorf("sarif: runs[%d].results[%d] has no message text", ri, i)
			}
			if res.RuleID != "" && !ids[res.RuleID] {
				return fmt.Errorf("sarif: runs[%d].results[%d] cites unlisted rule %q", ri, i, res.RuleID)
			}
			if res.RuleIndex < 0 || res.RuleIndex >= len(d.Rules) || d.Rules[res.RuleIndex].ID != res.RuleID {
				return fmt.Errorf("sarif: runs[%d].results[%d] ruleIndex %d does not match rule %q", ri, i, res.RuleIndex, res.RuleID)
			}
			switch res.Level {
			case "none", "note", "warning", "error":
			default:
				return fmt.Errorf("sarif: runs[%d].results[%d] invalid level %q", ri, i, res.Level)
			}
			for j, l := range res.Locations {
				if err := validateLocation(l); err != nil {
					return fmt.Errorf("sarif: runs[%d].results[%d].locations[%d]: %v", ri, i, j, err)
				}
			}
			for _, cf := range res.CodeFlows {
				if len(cf.ThreadFlows) == 0 {
					return fmt.Errorf("sarif: runs[%d].results[%d] codeFlow needs at least one threadFlow", ri, i)
				}
				for _, tf := range cf.ThreadFlows {
					if len(tf.Locations) == 0 {
						return fmt.Errorf("sarif: runs[%d].results[%d] threadFlow needs at least one location", ri, i)
					}
					for _, tl := range tf.Locations {
						if err := validateLocation(tl.Location); err != nil {
							return fmt.Errorf("sarif: runs[%d].results[%d] threadFlow location: %v", ri, i, err)
						}
					}
				}
			}
		}
	}
	return nil
}

func validateLocation(l SARIFLocation) error {
	if l.PhysicalLocation.ArtifactLocation.URI == "" {
		return fmt.Errorf("artifactLocation.uri is required")
	}
	if strings.Contains(l.PhysicalLocation.ArtifactLocation.URI, "\\") {
		return fmt.Errorf("uri must use forward slashes")
	}
	if l.PhysicalLocation.Region.StartLine < 1 {
		return fmt.Errorf("region.startLine must be >= 1")
	}
	return nil
}

// jsonDiagnostic is the -json output shape of one finding.
type jsonDiagnostic struct {
	Analyzer string      `json:"analyzer"`
	File     string      `json:"file"`
	Line     int         `json:"line"`
	Column   int         `json:"column"`
	Message  string      `json:"message"`
	Chain    []jsonChain `json:"chain,omitempty"`
}

type jsonChain struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Note string `json:"note"`
}

// WriteJSON emits the findings as a JSON array (machine-readable
// counterpart of the default text output). baseDir relativizes
// paths.
func WriteJSON(w io.Writer, diags []Diagnostic, baseDir string) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		jd := jsonDiagnostic{
			Analyzer: d.Analyzer,
			File:     relURI(baseDir, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		}
		for _, c := range d.Chain {
			jd.Chain = append(jd.Chain, jsonChain{
				File: relURI(baseDir, c.Pos.Filename),
				Line: c.Pos.Line,
				Note: c.Note,
			})
		}
		out = append(out, jd)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
