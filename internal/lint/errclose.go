package lint

import (
	"go/ast"
	"go/types"
)

// ErrClose flags silently dropped errors from Close, Flush, Sync,
// Write and WriteString calls in the trace-persistence package and
// the CLIs. A trace or profile that hit ENOSPC at close is corrupt;
// an analysis pipeline that keeps going anyway "succeeds" with wrong
// statistics. Handle the error, or discard it visibly with `_ =`, or
// justify it with `//lint:allow errclose <why>` (the common case: a
// deferred Close of a file opened read-only).
var ErrClose = &Analyzer{
	Name: "errclose",
	Doc: `flag dropped errors from Close/Flush/Sync/Write in the
persistence layer and CLIs; handle the error, assign it to _
explicitly, or //lint:allow errclose with a justification`,
	Match: func(path string) bool {
		// tracefmt persists traces, the CLIs persist everything else,
		// and cliutil owns the shared profile/trace file plumbing the
		// CLIs delegate to.
		return path == "ensembleio/internal/tracefmt" ||
			path == "ensembleio/internal/cliutil" ||
			prefixMatcher("ensembleio/cmd")(path)
	},
	Run: runErrClose,
}

// droppableMethods return errors that callers habitually discard.
var droppableMethods = map[string]bool{
	"Close": true, "Flush": true, "Sync": true,
	"Write": true, "WriteString": true,
}

func runErrClose(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			var how string
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
				how = "call"
			case *ast.DeferStmt:
				call = st.Call
				how = "deferred call"
			case *ast.GoStmt:
				call = st.Call
				how = "go statement"
			default:
				return true
			}
			if call == nil {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !droppableMethods[sel.Sel.Name] {
				return true
			}
			if s := pass.Info.Selections[sel]; s == nil || s.Kind() != types.MethodVal {
				return true
			}
			if !returnsError(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(), "error from %s %s is dropped; handle it, assign to _, or //lint:allow errclose with a justification", how, exprString(sel))
			return true
		})
	}
}

// returnsError reports whether the call's results include an error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	check := func(t types.Type) bool {
		named, ok := t.(*types.Named)
		return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if check(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return check(t)
	}
}

// exprString renders a selector like "f.Close" for diagnostics.
func exprString(sel *ast.SelectorExpr) string {
	if x, ok := sel.X.(*ast.Ident); ok {
		return x.Name + "." + sel.Sel.Name
	}
	return "(...)." + sel.Sel.Name
}
