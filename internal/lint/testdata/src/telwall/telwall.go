// Package telwall is golden testdata: wall-clock and global-rand
// reads that would poison telemetry determinism, and their legal
// counterparts.
package telwall

import (
	"math/rand"
	"time"
)

type span struct {
	start, end float64
}

func flagged() {
	// Stamping a span or snapshot with host time is the canonical bug
	// this analyzer exists for.
	_ = span{start: float64(time.Now().UnixNano())} // want `wall-clock time.Now`
	_ = time.Since(time.Time{})                     // want `wall-clock time.Since`
	time.Sleep(time.Millisecond)                    // want `wall-clock time.Sleep`
	_ = rand.Float64()                              // want `global math/rand Float64`
	rand.Shuffle(0, func(i, j int) {})              // want `global math/rand Shuffle`
}

func allowed() {
	// Pure time values never read the clock.
	const flushEvery = 2 * time.Second
	_ = flushEvery
	// Seeded generators are deterministic (tests shuffling inputs).
	r := rand.New(rand.NewSource(7))
	_ = r.Int()
	// Type references are not draws from the global source.
	var src rand.Source = rand.NewSource(1)
	_ = src
	// Justified escape hatch.
	//lint:allow telwall debug-only latency probe, stripped from output
	_ = time.Now()
}
