// Package errclose is golden testdata: dropped persistence errors and
// the sanctioned ways to handle them.
package errclose

import (
	"bufio"
	"os"
)

func dropped(f *os.File, w *bufio.Writer) {
	f.Close()       // want `error from call f.Close is dropped`
	defer f.Close() // want `error from deferred call f.Close is dropped`
	w.Flush()       // want `error from call w.Flush is dropped`
	w.Write(nil)    // want `error from call w.Write is dropped`
	f.Sync()        // want `error from call f.Sync is dropped`
}

func handled(f *os.File, w *bufio.Writer) error {
	if err := w.Flush(); err != nil {
		return err
	}
	if _, err := w.Write(nil); err != nil {
		return err
	}
	_ = f.Close() // ok: visibly discarded
	//lint:allow errclose file was opened read-only
	defer f.Close()
	return nil
}

type notifier struct{}

func (notifier) Close() {}

func noErrorResult(n notifier) {
	n.Close() // ok: returns nothing to drop
}
