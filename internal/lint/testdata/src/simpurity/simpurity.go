// Package simpurity is golden testdata: simulator-purity violations
// and their legal counterparts.
package simpurity

import (
	"math/rand"
	"runtime"
	"sync"
	"time"

	_ "ensembleio/internal/runpool" // want `simulator package imports internal/runpool`
)

func flagged() {
	_ = time.Now()                     // want `wall-clock time.Now`
	_ = time.Since(time.Time{})        // want `wall-clock time.Since`
	time.Sleep(time.Second)            // want `wall-clock time.Sleep`
	_ = rand.Int()                     // want `global math/rand Int`
	_ = rand.Float64()                 // want `global math/rand Float64`
	rand.Shuffle(0, func(i, j int) {}) // want `global math/rand Shuffle`
	runtime.GOMAXPROCS(0)              // want `scheduler-sensitive runtime.GOMAXPROCS`
	_ = runtime.NumCPU()               // want `scheduler-sensitive runtime.NumCPU`
}

func pooled() {
	var p sync.Pool // want `sync.Pool in simulator code`
	p.Put(&struct{}{})
	q := &sync.Pool{New: func() any { return new(int) }} // want `sync.Pool in simulator code`
	_ = q.Get()
}

// A sync.Map-keyed memo cache is the other scheduler-shaped cache
// trap: simulator memoization must key on deterministic slices (the
// flownet epoch memo cache is the sanctioned shape).
func memoCached() {
	var cache sync.Map // want `sync.Map in simulator code`
	cache.Store("epoch", 1)
	_, _ = cache.Load("epoch")
}

func goroutines() {
	go func() {}() // want `goroutine launch in simulator code`
	done := make(chan struct{})
	go close(done) // want `goroutine launch in simulator code`
	<-done
}

func allowed() {
	// Seeded generators are the sanctioned source of variates.
	r := rand.New(rand.NewSource(42))
	_ = r.Float64()
	// Pure time values don't read the clock.
	const tick = 3 * time.Second
	_ = tick
	// Type references are not draws from the global source.
	var src rand.Source = rand.NewSource(1)
	_ = src
	// Justified escape hatch.
	//lint:allow simpurity timing instrumentation for a debug build
	_ = time.Now()
	// The engine's rendezvous launch is the one sanctioned goroutine.
	//lint:allow simpurity lock-step rendezvous keeps this deterministic
	go func() {}()
	_ = runtime.Version() // scheduler-insensitive runtime call
	// Other sync primitives are legal; only Pool's scheduler-ordered
	// recycling is banned.
	var mu sync.Mutex
	mu.Lock()
	mu.Unlock()
	var once sync.Once
	once.Do(func() {})
}
