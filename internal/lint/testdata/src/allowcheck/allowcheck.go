// Package allowcheck is golden testdata for directive hygiene: every
// way a //lint:allow comment can be wrong (reasonless, unknown
// analyzer, stale) plus both accepted syntaxes. The companion test
// runs floateq over it and asserts the exact allowcheck finding set.
package allowcheck

// Reasonless: suppresses the floateq finding below, but the directive
// itself is an allowcheck finding.
func reasonless(a, b float64) bool {
	//lint:allow(floateq)
	return a == b
}

// Structured form with a reason: suppressed, no findings at all.
func sanctioned(a, b float64) bool {
	//lint:allow(floateq) exact sentinel comparison is the intended semantics here
	return a == b
}

// Legacy space-separated form with a reason: still parsed, still
// suppresses, no findings.
func legacy(a, b float64) bool {
	//lint:allow floateq legacy one-line form must keep working
	return a == b
}

// Unknown analyzer: the directive is an allowcheck finding AND the
// floateq finding is not suppressed (the directive names the wrong
// check).
func unknown(a, b float64) bool {
	//lint:allow(nosuchcheck) citing a check that does not exist
	return a == b
}

// Stale: the directive names an analyzer that ran but has nothing to
// suppress on the covered lines.
func stale(a, b int) bool {
	//lint:allow(floateq) nothing here compares floats
	return a == b
}

// Multi-name directive: one used name keeps the directive fresh even
// though the other named analyzer did not run in this suite.
func multi(a, b float64) bool {
	//lint:allow(floateq,simpurity) comparator needs exact equality; simpurity does not run here
	return a == b
}
