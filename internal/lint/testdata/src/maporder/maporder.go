// Package maporder is golden testdata: map iterations whose order
// leaks into results, next to the sanctioned patterns.
package maporder

import (
	"fmt"
	"maps"
	"slices"
	"sort"
)

func appendNoSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out in map-iteration order`
	}
	return out
}

func appendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // ok: sorted before use
	}
	sort.Strings(keys)
	return keys
}

func printsDuringIteration(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt.Println feeds output in map-iteration order`
	}
}

func argmaxTieBreak(m map[string]int) string {
	best, bestN := "", -1
	for k, n := range m {
		if n > bestN {
			best, bestN = k, n // want `map key k escapes the loop`
		}
	}
	return best
}

func returnsKey(m map[string]bool) string {
	for k, ok := range m {
		if ok {
			return k // want `map key k returned from nondeterministic iteration`
		}
	}
	return ""
}

func floatAccumulation(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want `floating-point accumulation in map-iteration order`
	}
	return total
}

func orderInsensitive(m map[string]int) int {
	// Integer reductions and map-to-map writes don't depend on order.
	n := 0
	inverse := make(map[int]string)
	for k, v := range m {
		n += v
		inverse[v] = k
	}
	return n
}

func justifiedEscape(m map[string]struct{}) string {
	var only string
	for k := range m {
		only = k //lint:allow maporder the set holds exactly one element here
	}
	return only
}

// Named key and value types must not hide the map from the analyzer,
// and the maps.Keys/Values/All iterators visit in the same random
// order as a direct range.

type ostID int
type rate float64
type loadTable map[ostID]rate

func namedTypesStillFlagged(m loadTable) (ostID, rate) {
	var hottest ostID
	total := rate(0)
	for id, r := range m {
		total += r // want `floating-point accumulation in map-iteration order`
		if r > 0 {
			hottest = id // want `map key id escapes the loop`
		}
	}
	return hottest, total
}

func iteratorAppendNoSort(m map[string]int) []string {
	var out []string
	for k := range maps.Keys(m) {
		out = append(out, k) // want `append to out in map-iteration order`
	}
	return out
}

func iteratorValuesAccum(m map[string]float64) float64 {
	total := 0.0
	for v := range maps.Values(m) {
		total += v // want `floating-point accumulation in map-iteration order`
	}
	return total
}

func iteratorAllPrint(m map[string]int) {
	for k, v := range maps.All(m) {
		fmt.Println(k, v) // want `fmt.Println feeds output in map-iteration order`
	}
}

func iteratorSortedIsFine(m map[string]int) []string {
	keys := slices.Sorted(maps.Keys(m))
	for _, k := range keys {
		_ = k
	}
	return keys
}
