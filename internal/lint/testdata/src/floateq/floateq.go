// Package floateq is golden testdata: float equality comparisons and
// their sanctioned forms.
package floateq

import "math"

type seconds float64

func flagged(a, b float64) bool {
	if a == b { // want `floating-point == comparison`
		return true
	}
	return a != b+1 // want `floating-point != comparison`
}

func namedFloatType(a, b seconds) bool {
	return a == b // want `floating-point == comparison`
}

func nonzeroLiteral(x float64) bool {
	return x == 0.5 // want `floating-point == comparison`
}

func zeroSentinel(total float64) bool {
	// Exact-zero tests are the codebase's division guards; zero is
	// exactly representable, so this comparison is well-defined.
	return total == 0 || total != 0.0
}

func epsilon(a, b float64) bool {
	return math.Abs(a-b) < 1e-9 // the sanctioned comparison
}

func justified(xs []float64) bool {
	//lint:allow floateq sort comparators need exact ordering for determinism
	return xs[0] != xs[1]
}

func intsAreFine(a, b int) bool { return a == b }

// Composite types carrying floats compare their floats exactly; the
// named-type wrapping must not hide that from the analyzer.
type point struct{ X, Y float64 }
type nested struct{ P point }
type pair [2]float64
type fingerprint [4]seconds

func compositeEquality(a, b point, n1, n2 nested, p, q pair, f, g fingerprint) bool {
	if a == b { // want `composite values containing floats`
		return true
	}
	if n1 != n2 { // want `composite values containing floats`
		return true
	}
	if p == q { // want `composite values containing floats`
		return true
	}
	return f == g // want `composite values containing floats`
}

type intPair [2]int

func compositeOfIntsIsFine(a, b intPair) bool { return a == b }

func switchOnFloat(x float64, s seconds) int {
	switch x { // want `switch on a floating-point value`
	case 1.5:
		return 1
	}
	switch s { // want `switch on a floating-point value`
	case 2:
		return 2
	}
	// A zero-only case is the sentinel guard, same as == 0.
	switch x {
	case 0:
		return 0
	}
	return -1
}
