// Package floateq is golden testdata: float equality comparisons and
// their sanctioned forms.
package floateq

import "math"

type seconds float64

func flagged(a, b float64) bool {
	if a == b { // want `floating-point == comparison`
		return true
	}
	return a != b+1 // want `floating-point != comparison`
}

func namedFloatType(a, b seconds) bool {
	return a == b // want `floating-point == comparison`
}

func nonzeroLiteral(x float64) bool {
	return x == 0.5 // want `floating-point == comparison`
}

func zeroSentinel(total float64) bool {
	// Exact-zero tests are the codebase's division guards; zero is
	// exactly representable, so this comparison is well-defined.
	return total == 0 || total != 0.0
}

func epsilon(a, b float64) bool {
	return math.Abs(a-b) < 1e-9 // the sanctioned comparison
}

func justified(xs []float64) bool {
	//lint:allow floateq sort comparators need exact ordering for determinism
	return xs[0] != xs[1]
}

func intsAreFine(a, b int) bool { return a == b }
