package lint

import "testing"

// Each analyzer is exercised against a golden testdata package that
// contains at least one flagged and one allowed construct per rule
// (see testdata/src/*), in the style of analysistest.

func TestSimPurity(t *testing.T) {
	RunAnalyzerTest(t, SimPurity, "./testdata/src/simpurity")
}

func TestMapOrder(t *testing.T) {
	RunAnalyzerTest(t, MapOrder, "./testdata/src/maporder")
}

func TestFloatEq(t *testing.T) {
	RunAnalyzerTest(t, FloatEq, "./testdata/src/floateq")
}

func TestErrClose(t *testing.T) {
	RunAnalyzerTest(t, ErrClose, "./testdata/src/errclose")
}

// TestMatchScopes pins the package scoping of each analyzer: the
// determinism rules bind the simulator, the statistics rules bind the
// ensemble/analysis/report layers, and the persistence rules bind
// tracefmt and the CLIs.
func TestTelWall(t *testing.T) {
	RunAnalyzerTest(t, TelWall, "./testdata/src/telwall")
}

func TestMatchScopes(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		path     string
		want     bool
	}{
		{SimPurity, "ensembleio/internal/sim", true},
		{SimPurity, "ensembleio/internal/workloads", true},
		{SimPurity, "ensembleio/internal/flownet", true}, // engine-owned free lists, no sync.Pool
		{SimPurity, "ensembleio/internal/cluster", true},
		{SimPurity, "ensembleio/internal/ensemble", false},
		{SimPurity, "ensembleio/internal/simulator", false}, // prefix must respect path boundaries
		{MapOrder, "ensembleio/cmd/paperfig", true},         // maporder is global
		{FloatEq, "ensembleio/internal/ensemble", true},
		{FloatEq, "ensembleio/internal/sim", false},
		{ErrClose, "ensembleio/internal/tracefmt", true},
		{ErrClose, "ensembleio/cmd/tracestat", true},
		{ErrClose, "ensembleio/internal/report", false},
		{TelWall, "ensembleio/internal/telemetry", true},
		{TelWall, "ensembleio/internal/tracefmt", true},
		{TelWall, "ensembleio/internal/runpool", false}, // wall-clock progress meters are legal there
		{TelWall, "ensembleio/internal/cliutil", false},
	}
	for _, c := range cases {
		got := c.analyzer.Match == nil || c.analyzer.Match(c.path)
		if got != c.want {
			t.Errorf("%s.Match(%q) = %v, want %v", c.analyzer.Name, c.path, got, c.want)
		}
	}
}

// TestRepoIsClean runs the full suite over the whole module: the tree
// must stay free of findings (the same gate CI applies via
// `go run ./cmd/ensemblelint ./...`).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, d := range Run(pkgs, Analyzers()) {
		t.Errorf("finding: %s", d)
	}
}
