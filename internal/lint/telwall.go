package lint

import (
	"go/ast"
	"go/types"
)

// TelWall enforces the telemetry layer's virtual-time contract: every
// metric and span that internal/telemetry collects and
// internal/tracefmt serializes is stamped with simulated time, and the
// exported artifacts are byte-identical across repeats and worker
// counts. One wall-clock read — a time.Now() in a span, a timestamp
// in a snapshot — quietly breaks that for every downstream diff-based
// test. Wall-clock self-observability (progress meters, -prof) lives
// in internal/runpool and internal/cliutil, outside this analyzer's
// scope, which is exactly the point: the type system can't separate
// "time of the simulated system" from "time of the host run", so the
// package boundary does.
var TelWall = &Analyzer{
	Name: "telwall",
	Doc: `forbid wall-clock time reads and global math/rand in the telemetry
and trace-format packages; telemetry is stamped with virtual time
(sim.Time) only, so serialized metrics and traces stay byte-identical
across repeats and -j; host-side observability belongs in
internal/runpool or internal/cliutil`,
	Match: prefixMatcher(
		"ensembleio/internal/telemetry",
		"ensembleio/internal/tracefmt",
	),
	Run: runTelWall,
}

func runTelWall(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Info.Uses[ident].(*types.PkgName)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch pkgName.Imported().Path() {
			case "time":
				if WallClockFuncs[name] {
					pass.Reportf(sel.Pos(), "wall-clock time.%s in telemetry code; telemetry carries virtual time only — serialized artifacts must be byte-identical across repeats (host-side reporting belongs in internal/runpool or internal/cliutil)", name)
				}
			case "math/rand", "math/rand/v2":
				if _, isType := pass.Info.Uses[sel.Sel].(*types.TypeName); isType {
					return true
				}
				if !SeededRandCtors[name] {
					pass.Reportf(sel.Pos(), "global math/rand %s in telemetry code; anything that varies run-to-run poisons the byte-determinism of exported metrics and traces", name)
				}
			}
			return true
		})
	}
}
