package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"reflect"
	"strings"
	"testing"
)

func sampleDiags() []Diagnostic {
	return []Diagnostic{
		{
			Analyzer: "detflow",
			Pos:      token.Position{Filename: "/repo/internal/sim/engine.go", Line: 42, Column: 9},
			Message:  "call to util.Stamp launders a wall-clock read into simulator code",
			Chain: []ChainStep{
				{Pos: token.Position{Filename: "/repo/internal/util/util.go", Line: 7, Column: 2}, Note: "util.Stamp calls util.now"},
				{Pos: token.Position{Filename: "/repo/internal/util/util.go", Line: 12, Column: 9}, Note: "util.now: time.Now reads the wall clock"},
			},
		},
		{
			Analyzer: "floateq",
			Pos:      token.Position{Filename: "/repo/internal/ensemble/cdf.go", Line: 3, Column: 1},
			Message:  "floating-point == comparison on computed values",
		},
		{
			Analyzer: AllowCheckName,
			Pos:      token.Position{Filename: "/repo/internal/sim/proc.go", Line: 99, Column: 1},
			Message:  "stale allow: no simpurity finding is suppressed here",
		},
	}
}

// TestSARIFRoundTrip builds a log from findings (with a detflow call
// chain), validates it, and proves it survives a JSON encode/decode
// cycle byte-for-structure unchanged — the schema subset ensemblelint
// emits is self-consistent.
func TestSARIFRoundTrip(t *testing.T) {
	log := BuildSARIF(sampleDiags(), Analyzers(), "/repo", "test")
	if err := ValidateSARIF(log); err != nil {
		t.Fatalf("built log does not validate: %v", err)
	}

	var buf bytes.Buffer
	if err := WriteSARIF(&buf, log); err != nil {
		t.Fatalf("encoding: %v", err)
	}
	var back SARIFLog
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if !reflect.DeepEqual(log, &back) {
		t.Errorf("round trip changed the log:\nbefore: %+v\nafter:  %+v", log, &back)
	}
	if err := ValidateSARIF(&back); err != nil {
		t.Errorf("decoded log does not validate: %v", err)
	}
}

// TestSARIFShape pins the emitted structure: stable rule entries for
// the whole suite (fired or not), relativized forward-slash URIs, and
// a codeFlow whose locations are call-site + chain in order.
func TestSARIFShape(t *testing.T) {
	log := BuildSARIF(sampleDiags(), Analyzers(), "/repo", "test")
	run := log.Runs[0]

	// Every base analyzer plus allowcheck is listed whether or not it
	// fired; detflow fired without being in the suite and is appended.
	var ids []string
	for _, r := range run.Tool.Driver.Rules {
		ids = append(ids, r.ID)
	}
	for _, want := range []string{"simpurity", "maporder", "floateq", "errclose", "telwall", "allowcheck", "detflow"} {
		found := false
		for _, id := range ids {
			found = found || id == want
		}
		if !found {
			t.Errorf("rule %q missing from driver.rules %v", want, ids)
		}
	}

	for i, res := range run.Results {
		if run.Tool.Driver.Rules[res.RuleIndex].ID != res.RuleID {
			t.Errorf("results[%d] ruleIndex %d resolves to %q, want %q",
				i, res.RuleIndex, run.Tool.Driver.Rules[res.RuleIndex].ID, res.RuleID)
		}
	}

	det := run.Results[0]
	if got := det.Locations[0].PhysicalLocation.ArtifactLocation.URI; got != "internal/sim/engine.go" {
		t.Errorf("URI = %q, want repo-relative forward-slash path", got)
	}
	if len(det.CodeFlows) != 1 {
		t.Fatalf("detflow result has %d codeFlows, want 1", len(det.CodeFlows))
	}
	locs := det.CodeFlows[0].ThreadFlows[0].Locations
	if len(locs) != 3 { // call site + 2 chain steps
		t.Fatalf("threadFlow has %d locations, want 3", len(locs))
	}
	if locs[0].Location.Message == nil || !strings.Contains(locs[0].Location.Message.Text, "launders") {
		t.Errorf("threadFlow head should carry the finding message, got %+v", locs[0].Location.Message)
	}
	if !strings.Contains(locs[2].Location.Message.Text, "time.Now reads the wall clock") {
		t.Errorf("threadFlow tail should be the source note, got %q", locs[2].Location.Message.Text)
	}
	if run.Results[1].CodeFlows != nil {
		t.Errorf("chain-free finding must not emit codeFlows")
	}
}

// TestValidateSARIFRejects feeds the validator each structural
// violation it is supposed to catch.
func TestValidateSARIFRejects(t *testing.T) {
	fresh := func() *SARIFLog { return BuildSARIF(sampleDiags(), Analyzers(), "/repo", "test") }
	cases := []struct {
		name   string
		break_ func(*SARIFLog)
		frag   string
	}{
		{"wrong version", func(l *SARIFLog) { l.Version = "2.0.0" }, "version"},
		{"missing schema", func(l *SARIFLog) { l.Schema = "" }, "$schema"},
		{"no runs", func(l *SARIFLog) { l.Runs = nil }, "at least one run"},
		{"no driver name", func(l *SARIFLog) { l.Runs[0].Tool.Driver.Name = "" }, "driver.name"},
		{"duplicate rule", func(l *SARIFLog) {
			r := &l.Runs[0].Tool.Driver
			r.Rules = append(r.Rules, r.Rules[0])
		}, "duplicate rule"},
		{"empty message", func(l *SARIFLog) { l.Runs[0].Results[0].Message.Text = "" }, "no message"},
		{"unlisted rule", func(l *SARIFLog) { l.Runs[0].Results[0].RuleID = "ghost" }, "unlisted rule"},
		{"bad ruleIndex", func(l *SARIFLog) { l.Runs[0].Results[0].RuleIndex = 999 }, "ruleIndex"},
		{"bad level", func(l *SARIFLog) { l.Runs[0].Results[0].Level = "fatal" }, "invalid level"},
		{"backslash URI", func(l *SARIFLog) {
			l.Runs[0].Results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI = `internal\sim\engine.go`
		}, "forward slashes"},
		{"zero startLine", func(l *SARIFLog) {
			l.Runs[0].Results[0].Locations[0].PhysicalLocation.Region.StartLine = 0
		}, "startLine"},
		{"empty threadFlow", func(l *SARIFLog) {
			l.Runs[0].Results[0].CodeFlows[0].ThreadFlows[0].Locations = nil
		}, "at least one location"},
	}
	for _, c := range cases {
		l := fresh()
		c.break_(l)
		err := ValidateSARIF(l)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: ValidateSARIF = %v, want error containing %q", c.name, err, c.frag)
		}
	}
}

// TestWriteJSON pins the machine-readable output shape, including the
// chain and path relativization.
func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleDiags(), "/repo"); err != nil {
		t.Fatalf("encoding: %v", err)
	}
	var out []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Message  string `json:"message"`
		Chain    []struct {
			File string `json:"file"`
			Line int    `json:"line"`
			Note string `json:"note"`
		} `json:"chain"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d records, want 3", len(out))
	}
	if out[0].File != "internal/sim/engine.go" || out[0].Line != 42 {
		t.Errorf("record 0 at %s:%d, want internal/sim/engine.go:42", out[0].File, out[0].Line)
	}
	if len(out[0].Chain) != 2 || out[0].Chain[1].Note != "util.now: time.Now reads the wall clock" {
		t.Errorf("record 0 chain = %+v, want the 2-step detflow chain", out[0].Chain)
	}
	if len(out[1].Chain) != 0 {
		t.Errorf("chain-free finding must omit the chain field")
	}
}

// TestRelURI covers the path-relativization edge cases.
func TestRelURI(t *testing.T) {
	cases := []struct{ base, path, want string }{
		{"/repo", "/repo/internal/sim/engine.go", "internal/sim/engine.go"},
		{"/repo", "/elsewhere/x.go", "/elsewhere/x.go"},
		{"", "/repo/x.go", "/repo/x.go"},
	}
	for _, c := range cases {
		if got := relURI(c.base, c.path); got != c.want {
			t.Errorf("relURI(%q, %q) = %q, want %q", c.base, c.path, got, c.want)
		}
	}
}
