// Package lint is a small, dependency-free static-analysis framework
// plus the project-specific analyzers that enforce the simulator's
// determinism and statistical-correctness invariants.
//
// The paper's central claim — ensemble distributions are reproducible
// even when individual events are not — makes the repo's value hinge
// on the simulator being bit-deterministic for a given seed and on the
// statistics layer avoiding the classic floating-point and map-order
// traps. Those invariants are enforced mechanically here rather than
// by convention:
//
//   - simpurity: simulator packages must not read wall-clock time,
//     draw from the global math/rand, or depend on the Go scheduler.
//   - maporder: iteration over a map must not feed output or
//     statistics without an ordering step.
//   - floateq: float operands must not be compared with == / != in
//     the statistics packages (exact-zero sentinel tests excepted).
//   - errclose: errors from Close/Flush/Write must not be silently
//     dropped in the persistence layer and the CLIs.
//   - telwall: telemetry and trace-format packages must not read the
//     wall clock or the global math/rand; telemetry carries virtual
//     time only.
//
// The API mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic) so the analyzers could be ported to a standard
// multichecker, but it is implemented entirely on the standard
// library: packages are located and their dependencies' export data
// compiled via `go list -export`, parsed with go/parser, and
// type-checked with go/types.
//
// Beyond the per-package analyzers, an Analyzer may set RunAll to see
// every loaded package at once; internal/lint/detflow uses that hook
// for its interprocedural determinism dataflow.
//
// A finding can be suppressed with a structured justification
// directive on the same line or the line above:
//
//	//lint:allow(floateq) sort comparator needs exact ordering
//
// The directive names one or more analyzers (comma-separated) and
// must carry a reason. The legacy space-separated form
// (`//lint:allow floateq reason`) is still parsed. Every directive is
// itself checked: a reasonless allow, an allow naming an unknown
// analyzer, or a stale allow (one that suppresses no finding of an
// analyzer in the current run) is reported as an `allowcheck`
// finding, so sanctioned exceptions can never rot silently.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer
	// enforces and how to fix or suppress a finding.
	Doc string
	// Match restricts the analyzer to packages whose import path it
	// accepts. A nil Match applies the analyzer everywhere.
	Match func(pkgPath string) bool
	// Run reports findings on one type-checked package. Exactly one
	// of Run and RunAll must be set.
	Run func(*Pass)
	// RunAll, when set, marks a whole-program analyzer: it receives
	// every loaded package in one call (Match is ignored) and returns
	// raw findings; the framework applies //lint:allow suppression.
	RunAll func(pkgs []*Package) []Diagnostic
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Chain, when non-empty, is the call path from the reported
	// source position down to the nondeterminism source (detflow
	// findings). It renders as indented continuation lines and maps
	// to a SARIF codeFlow.
	Chain []ChainStep
}

// ChainStep is one hop of a source→sink call chain.
type ChainStep struct {
	Pos  token.Position
	Note string
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
	for _, c := range d.Chain {
		s += fmt.Sprintf("\n    %s: %s", c.Pos, c.Note)
	}
	return s
}

// Analyzers returns the per-package project suite in a deterministic
// order. The whole-program detflow analyzer lives in
// internal/lint/detflow (it depends on this package, so it cannot be
// registered here); cmd/ensemblelint composes the two.
func Analyzers() []*Analyzer {
	return []*Analyzer{SimPurity, MapOrder, FloatEq, ErrClose, TelWall}
}

// knownAllowTargets is every analyzer name an allow directive may
// legally cite — the per-package suite plus the whole-program detflow
// analyzer. An allow naming anything else is an allowcheck finding.
var knownAllowTargets = map[string]bool{
	"simpurity": true, "maporder": true, "floateq": true,
	"errclose": true, "telwall": true, "detflow": true,
}

// AllowCheckName is the analyzer name under which directive-hygiene
// findings (reasonless, unknown-target, or stale allows) are
// reported. It is not itself suppressible.
const AllowCheckName = "allowcheck"

// Run applies each applicable analyzer to each package (and each
// whole-program analyzer to the full set), drops findings suppressed
// by //lint:allow directives, appends allowcheck findings for
// directives that are reasonless, cite an unknown analyzer, or
// suppressed nothing, and returns everything sorted by file position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	ix := buildAllowIndex(pkgs)
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.RunAll != nil {
				continue
			}
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			out = append(out, runOne(pkg, a, ix)...)
		}
	}
	for _, a := range analyzers {
		if a.RunAll == nil {
			continue
		}
		for _, d := range a.RunAll(pkgs) {
			if !ix.allowed(d.Pos.Filename, d.Pos.Line, d.Analyzer) {
				out = append(out, d)
			}
		}
	}
	out = append(out, ix.check(analyzers)...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// runOne runs a single per-package analyzer, dropping findings
// suppressed by //lint:allow directives. Used by both Run and the
// test harness (which bypasses Match so testdata packages can
// exercise path-scoped analyzers).
func runOne(pkg *Package, a *Analyzer, ix *allowIndex) []Diagnostic {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
	}
	a.Run(pass)
	kept := pass.diags[:0]
	for _, d := range pass.diags {
		if ix.allowed(d.Pos.Filename, d.Pos.Line, d.Analyzer) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	pos       token.Position
	analyzers []string
	reason    string
	used      map[string]bool // analyzer name -> suppressed something
}

// allowIndex maps source lines to the directives that cover them and
// remembers which directives actually suppressed a finding.
type allowIndex struct {
	byLine map[allowKey][]*allowDirective
	all    []*allowDirective
}

// parseAllowDirective parses the text of one //lint:allow comment.
// Two forms are accepted:
//
//	//lint:allow(simpurity,detflow) reason text      (structured)
//	//lint:allow simpurity reason text               (legacy)
//
// ok is false when the comment is not an allow directive at all.
func parseAllowDirective(comment string) (names []string, reason string, ok bool) {
	text, ok := strings.CutPrefix(comment, "//lint:allow")
	if !ok {
		return nil, "", false
	}
	var nameList string
	if rest, structured := strings.CutPrefix(text, "("); structured {
		nameList, reason, _ = strings.Cut(rest, ")")
		if !strings.Contains(rest, ")") {
			// Unclosed parenthesis: treat everything as the name list
			// so the directive is still recognized (and flagged as
			// reasonless by allowcheck).
			reason = ""
		}
	} else {
		fields := strings.Fields(text)
		if len(fields) == 0 {
			return nil, "", true // bare //lint:allow: reasonless, nameless
		}
		nameList = fields[0]
		reason = strings.TrimPrefix(strings.TrimSpace(text), fields[0])
	}
	for _, n := range strings.Split(nameList, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, strings.TrimSpace(reason), true
}

// buildAllowIndex parses every //lint:allow directive in the loaded
// packages. A directive covers findings on its own line and on the
// line directly below it.
func buildAllowIndex(pkgs []*Package) *allowIndex {
	ix := &allowIndex{byLine: make(map[allowKey][]*allowDirective)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					names, reason, ok := parseAllowDirective(c.Text)
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					d := &allowDirective{
						pos:       pos,
						analyzers: names,
						reason:    reason,
						used:      make(map[string]bool),
					}
					ix.all = append(ix.all, d)
					for _, name := range names {
						for _, line := range []int{pos.Line, pos.Line + 1} {
							k := allowKey{pos.Filename, line, name}
							ix.byLine[k] = append(ix.byLine[k], d)
						}
					}
				}
			}
		}
	}
	return ix
}

// allowed reports whether a finding at (file, line) by analyzer is
// suppressed, marking the covering directive as used.
func (ix *allowIndex) allowed(file string, line int, analyzer string) bool {
	ds := ix.byLine[allowKey{file, line, analyzer}]
	for _, d := range ds {
		d.used[analyzer] = true
	}
	return len(ds) > 0
}

// check audits every directive after the analyzers have run:
// reasonless directives, directives citing an unknown analyzer, and
// stale directives (naming an analyzer that ran but suppressing none
// of its findings) each produce an allowcheck finding.
func (ix *allowIndex) check(analyzers []*Analyzer) []Diagnostic {
	ran := make(map[string]bool)
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var out []Diagnostic
	report := func(d *allowDirective, format string, args ...any) {
		out = append(out, Diagnostic{
			Analyzer: AllowCheckName,
			Pos:      d.pos,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, d := range ix.all {
		if len(d.analyzers) == 0 {
			report(d, "allow directive names no analyzer; write //lint:allow(<analyzer>) <reason>")
			continue
		}
		if d.reason == "" {
			report(d, "allow directive has no reason; every sanctioned exception must say why (//lint:allow(%s) <reason>)", strings.Join(d.analyzers, ","))
		}
		for _, name := range d.analyzers {
			if !knownAllowTargets[name] {
				report(d, "allow directive cites unknown analyzer %q", name)
				continue
			}
			if ran[name] && !d.used[name] {
				report(d, "stale allow: no %s finding is suppressed here — fix the code or delete the directive", name)
			}
		}
	}
	return out
}

// prefixMatcher builds a Match function accepting exactly the given
// import paths and their subpackages.
func prefixMatcher(prefixes ...string) func(string) bool {
	return func(path string) bool {
		for _, p := range prefixes {
			if path == p || strings.HasPrefix(path, p+"/") {
				return true
			}
		}
		return false
	}
}
