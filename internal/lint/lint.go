// Package lint is a small, dependency-free static-analysis framework
// plus the project-specific analyzers that enforce the simulator's
// determinism and statistical-correctness invariants.
//
// The paper's central claim — ensemble distributions are reproducible
// even when individual events are not — makes the repo's value hinge
// on the simulator being bit-deterministic for a given seed and on the
// statistics layer avoiding the classic floating-point and map-order
// traps. Those invariants are enforced mechanically here rather than
// by convention:
//
//   - simpurity: simulator packages must not read wall-clock time,
//     draw from the global math/rand, or depend on the Go scheduler.
//   - maporder: iteration over a map must not feed output or
//     statistics without an ordering step.
//   - floateq: float operands must not be compared with == / != in
//     the statistics packages (exact-zero sentinel tests excepted).
//   - errclose: errors from Close/Flush/Write must not be silently
//     dropped in the persistence layer and the CLIs.
//   - telwall: telemetry and trace-format packages must not read the
//     wall clock or the global math/rand; telemetry carries virtual
//     time only.
//
// The API mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic) so the analyzers could be ported to a standard
// multichecker, but it is implemented entirely on the standard
// library: packages are located and their dependencies' export data
// compiled via `go list -export`, parsed with go/parser, and
// type-checked with go/types.
//
// A finding can be suppressed with a justification comment on the
// same line or the line above:
//
//	//lint:allow floateq sort comparator needs exact ordering
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow comments.
	Name string
	// Doc is a one-paragraph description of what the analyzer
	// enforces and how to fix or suppress a finding.
	Doc string
	// Match restricts the analyzer to packages whose import path it
	// accepts. A nil Match applies the analyzer everywhere.
	Match func(pkgPath string) bool
	// Run reports findings on one type-checked package.
	Run func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Analyzers returns the full project suite in a deterministic order.
func Analyzers() []*Analyzer {
	return []*Analyzer{SimPurity, MapOrder, FloatEq, ErrClose, TelWall}
}

// Run applies each applicable analyzer to each package and returns
// the unsuppressed findings sorted by file position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		allowed := allowedLines(pkg)
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			out = append(out, runOne(pkg, a, allowed)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// runOne runs a single analyzer on a package, dropping findings
// suppressed by //lint:allow comments. Used by both Run and the test
// harness (which bypasses Match so testdata packages can exercise
// path-scoped analyzers).
func runOne(pkg *Package, a *Analyzer, allowed map[allowKey]bool) []Diagnostic {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
	}
	a.Run(pass)
	kept := pass.diags[:0]
	for _, d := range pass.diags {
		if allowed[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowedLines collects the (file, line, analyzer) triples suppressed
// by //lint:allow comments. A comment suppresses findings on its own
// line and, when it stands alone, on the line directly below it.
func allowedLines(pkg *Package) map[allowKey]bool {
	out := make(map[allowKey]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Split(fields[0], ",") {
					out[allowKey{pos.Filename, pos.Line, name}] = true
					out[allowKey{pos.Filename, pos.Line + 1, name}] = true
				}
			}
		}
	}
	return out
}

// prefixMatcher builds a Match function accepting exactly the given
// import paths and their subpackages.
func prefixMatcher(prefixes ...string) func(string) bool {
	return func(path string) bool {
		for _, p := range prefixes {
			if path == p || strings.HasPrefix(path, p+"/") {
				return true
			}
		}
		return false
	}
}
