package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves the given package patterns (e.g. "./...") from dir,
// parses the matched packages, and type-checks them from source.
//
// Import resolution needs no network and no third-party machinery:
// `go list -export -deps` has the toolchain compile every dependency
// (standard library included) into the build cache and report the
// export-data file of each, which the stdlib gc importer then reads.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Dir,GoFiles,Export,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list failed: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			q := p
			targets = append(targets, &q)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})

	var out []*Package
	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: %v", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
		}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %v", t.ImportPath, err)
		}
		out = append(out, &Package{
			Path:  t.ImportPath,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return out, nil
}
