package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
)

// FloatEq flags == and != between floating-point operands in the
// statistics packages. Accumulated rounding makes exact equality of
// computed floats meaningless (and a silent source of statistical
// bugs: a KS distance that is "equal" on one platform and not on
// another); compare against an epsilon instead.
//
// One comparison stays legal without annotation: testing against the
// exact-zero constant. Zero is a sentinel ("no weight yet", "empty
// variance"), is exactly representable, and the idiom `if total == 0`
// is how the codebase guards divisions. Anything else — two computed
// values, or a nonzero literal — needs an epsilon comparison or a
// `//lint:allow floateq <why>` justification (e.g. a sort comparator
// that must order exactly).
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: `flag ==/!= between float operands in statistics code; use an
epsilon comparison, or //lint:allow floateq with a justification
(comparisons against the exact-zero sentinel are permitted)`,
	Match: prefixMatcher(
		"ensembleio/internal/ensemble",
		"ensembleio/internal/analysis",
		"ensembleio/internal/report",
	),
	Run: runFloatEq,
}

func runFloatEq(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.typeOf(be.X)) || !isFloat(pass.typeOf(be.Y)) {
				return true
			}
			if isExactZero(pass, be.X) || isExactZero(pass, be.Y) {
				return true
			}
			pass.Reportf(be.Pos(), "floating-point %s comparison on computed values; use an epsilon (or //lint:allow floateq with a justification)", be.Op)
			return true
		})
	}
}

// isExactZero reports whether e is a compile-time constant equal to
// zero.
func isExactZero(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
