package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
)

// FloatEq flags == and != between floating-point operands in the
// statistics packages. Accumulated rounding makes exact equality of
// computed floats meaningless (and a silent source of statistical
// bugs: a KS distance that is "equal" on one platform and not on
// another); compare against an epsilon instead.
//
// One comparison stays legal without annotation: testing against the
// exact-zero constant. Zero is a sentinel ("no weight yet", "empty
// variance"), is exactly representable, and the idiom `if total == 0`
// is how the codebase guards divisions. Anything else — two computed
// values, or a nonzero literal — needs an epsilon comparison or a
// `//lint:allow floateq <why>` justification (e.g. a sort comparator
// that must order exactly).
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: `flag ==/!= between float operands in statistics code; use an
epsilon comparison, or //lint:allow floateq with a justification
(comparisons against the exact-zero sentinel are permitted)`,
	Match: prefixMatcher(
		"ensembleio/internal/ensemble",
		"ensembleio/internal/analysis",
		"ensembleio/internal/report",
	),
	Run: runFloatEq,
}

func runFloatEq(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if e.Op != token.EQL && e.Op != token.NEQ {
					return true
				}
				if isFloat(pass.typeOf(e.X)) && isFloat(pass.typeOf(e.Y)) {
					if isExactZero(pass, e.X) || isExactZero(pass, e.Y) {
						return true
					}
					pass.Reportf(e.Pos(), "floating-point %s comparison on computed values; use an epsilon (or //lint:allow floateq with a justification)", e.Op)
					return true
				}
				// Composite equality (arrays and structs carrying
				// floats, through any depth of defined types) compares
				// the floats exactly field-by-field — the same trap
				// with the comparison hidden by the type.
				if containsFloat(pass.typeOf(e.X)) && containsFloat(pass.typeOf(e.Y)) {
					pass.Reportf(e.Pos(), "%s on composite values containing floats compares them exactly; compare fields with an epsilon (or //lint:allow floateq with a justification)", e.Op)
				}
			case *ast.SwitchStmt:
				// switch on a float tag is an exact-equality chain in
				// disguise; a case guarding the exact-zero sentinel
				// alone stays legal, matching the == rule.
				if e.Tag == nil || !isFloat(pass.typeOf(e.Tag)) {
					return true
				}
				for _, cl := range e.Body.List {
					cc, ok := cl.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, v := range cc.List {
						if !isExactZero(pass, v) {
							pass.Reportf(e.Pos(), "switch on a floating-point value compares cases exactly; use epsilon comparisons in an if/else chain")
							return true
						}
					}
				}
			}
			return true
		})
	}
}

// isExactZero reports whether e is a compile-time constant equal to
// zero.
func isExactZero(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
