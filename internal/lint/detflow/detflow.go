// Package detflow is the project's interprocedural determinism
// dataflow analyzer. The syntax-level analyzers (simpurity, telwall,
// maporder, floateq) see one function at a time, so nondeterminism
// laundered through a helper call — a utility package that reads
// time.Now, a shared routine that lets map order leak into a slice —
// passes them silently. detflow closes that gap: it builds a
// repo-wide call graph over go/types, computes a bottom-up
// determinism summary per function (reads-wall-clock,
// uses-global-rand, scheduler-sensitive, spawns-goroutines,
// map-order-escapes, float-order-sensitive accumulation), and reports
// every call site in a determinism-critical package whose callee's
// summary carries a fact that package forbids — with the full call
// chain from the call site down to the original source.
//
// Division of labor with the per-package analyzers: a source used
// *directly* inside a critical package (time.Now in internal/sim) is
// simpurity/telwall/maporder's finding, not detflow's. detflow
// reports only laundered facts — those arriving through a call to a
// function that is itself outside the jurisdiction of the violated
// rule — so each leak is flagged exactly once, at the boundary where
// it enters the critical domain.
//
// A finding is suppressed like any other analyzer's, at the reported
// call site:
//
//	//lint:allow(detflow) runpool fans whole seeded runs; parallelism stays above the per-run sim layer
//
// Summaries are conservative in two documented ways: function
// *references* count as potential calls (a method value or callback
// handed onward may be invoked later), and facts inside a function
// literal are attributed to the enclosing function (the closure runs
// with the encloser's obligations). Dynamic dispatch through
// interfaces is not resolved.
package detflow

import (
	"go/types"
	"sort"
	"strings"
	"sync"

	"ensembleio/internal/lint"
)

// Analyzer is the whole-program determinism dataflow check,
// registered alongside the per-package suite by cmd/ensemblelint.
var Analyzer = &lint.Analyzer{
	Name: "detflow",
	Doc: `interprocedural determinism dataflow: summarize every function
bottom-up (wall clock, global math/rand, scheduler, goroutines, map
order, float accumulation order) and flag call sites in
determinism-critical packages whose callees launder a forbidden fact,
with the full source chain`,
	RunAll: run,
}

// fact is one bit of a function's determinism summary. The summary
// lattice is the powerset of these bits ordered by inclusion; the
// bottom-up transfer function is bitwise OR over callees plus the
// function's own direct facts, so the fixpoint is the least one.
type fact uint8

const (
	factWallClock fact = 1 << iota
	factGlobalRand
	factSched
	factGoroutine
	factMapOrder
	factFloatOrder

	numFacts = 6
)

// factLabels names each bit in diagnostics.
var factLabels = [numFacts]string{
	"a wall-clock read",
	"a global math/rand draw",
	"a scheduler-sensitive value",
	"a goroutine launch",
	"map-iteration-order dependence",
	"order-sensitive float accumulation over an unordered collection",
}

func (f fact) label() string {
	for i := 0; i < numFacts; i++ {
		if f&(1<<i) != 0 {
			return factLabels[i]
		}
	}
	return "nondeterminism"
}

// A domain is a determinism-critical region of the repo: packages
// whose outputs are pinned artifacts (simulation results, telemetry
// snapshots, trace encodings, report tables) and which therefore
// forbid a set of facts from reaching them.
type domain struct {
	name      string // rendered in messages: "simulator", ...
	forbidden fact
}

// simForbidden: the per-run simulation must be bit-reproducible for a
// seed at any GOMAXPROCS, so every fact is fatal there.
const simForbidden = factWallClock | factGlobalRand | factSched |
	factGoroutine | factMapOrder | factFloatOrder

// artifactForbidden: the telemetry/trace/HDF5 encoders may use
// goroutine-free host facilities, but their serialized bytes must be
// identical across repeats, so anything order- or clock-dependent is
// out.
const artifactForbidden = factWallClock | factGlobalRand |
	factMapOrder | factFloatOrder

// statsForbidden: the statistics and report layers define the
// figures; like the encoders they must be pure functions of their
// inputs.
const statsForbidden = factWallClock | factGlobalRand |
	factMapOrder | factFloatOrder

// domains maps import-path prefixes to their domain. Packages not
// listed (runpool, cliutil, the CLIs, examples) are host-side: they
// may observe the wall clock and spawn goroutines, which is exactly
// why calls INTO them from a critical package are the interesting
// frontier.
var domains = map[string]domain{
	"ensembleio/internal/sim":       {"simulator", simForbidden},
	"ensembleio/internal/mpi":       {"simulator", simForbidden},
	"ensembleio/internal/lustre":    {"simulator", simForbidden},
	"ensembleio/internal/posixio":   {"simulator", simForbidden},
	"ensembleio/internal/ipmio":     {"simulator", simForbidden},
	"ensembleio/internal/workloads": {"simulator", simForbidden},
	"ensembleio/internal/flownet":   {"simulator", simForbidden},
	"ensembleio/internal/cluster":   {"simulator", simForbidden},
	"ensembleio/internal/wldsl":     {"simulator", simForbidden},
	"ensembleio/internal/tenancy":   {"simulator", simForbidden},

	"ensembleio/internal/telemetry": {"artifact-encoding", artifactForbidden},
	"ensembleio/internal/tracefmt":  {"artifact-encoding", artifactForbidden},
	"ensembleio/internal/h5lite":    {"artifact-encoding", artifactForbidden},

	"ensembleio/internal/ensemble": {"statistics", statsForbidden},
	"ensembleio/internal/analysis": {"statistics", statsForbidden},
	"ensembleio/internal/report":   {"statistics", statsForbidden},
	"ensembleio":                   {"statistics", statsForbidden},
}

// domainDirectives lets golden testdata packages opt into a domain
// without living under the real import paths: a file comment
// `//detflow:domain sim` (or artifact / stats / none) overrides the
// path lookup.
var domainDirectives = map[string]domain{
	"sim":      {"simulator", simForbidden},
	"artifact": {"artifact-encoding", artifactForbidden},
	"stats":    {"statistics", statsForbidden},
	"none":     {"", 0},
}

// domainOf resolves a package's domain: an explicit //detflow:domain
// directive wins, then the longest matching import-path prefix.
func domainOf(pkg *lint.Package) domain {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//detflow:domain ")
				if !ok {
					continue
				}
				if d, ok := domainDirectives[strings.TrimSpace(rest)]; ok {
					return d
				}
			}
		}
	}
	if d, ok := domains[pkg.Path]; ok {
		return d
	}
	// Longest-prefix match for subpackages, over a sorted prefix list
	// so resolution is deterministic. The bare module path matches
	// exactly only — it must not sweep cmd/, examples/, and the
	// host-side packages into the statistics domain.
	for _, prefix := range domainPrefixes() {
		if strings.HasPrefix(pkg.Path, prefix+"/") {
			return domains[prefix]
		}
	}
	return domain{}
}

// domainPrefixes returns the subpackage-matchable domain prefixes,
// longest first (ties broken lexically), computed once.
var domainPrefixes = sync.OnceValue(func() []string {
	var out []string
	for prefix := range domains {
		if prefix != "ensembleio" {
			out = append(out, prefix)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i] < out[j]
	})
	return out
})

// intrinsicFact classifies a function outside the loaded packages: a
// standard-library entry point whose behavior is a nondeterminism
// source. The tables are shared with simpurity/telwall so the
// syntax-level and dataflow views agree on what a source is.
func intrinsicFact(fn *types.Func) (fact, string) {
	pkg := fn.Pkg()
	if pkg == nil || fn.Signature().Recv() != nil {
		return 0, ""
	}
	name := fn.Name()
	switch pkg.Path() {
	case "time":
		if lint.WallClockFuncs[name] {
			return factWallClock, "time." + name + " reads the wall clock"
		}
	case "math/rand", "math/rand/v2":
		if !lint.SeededRandCtors[name] {
			return factGlobalRand, "math/rand." + name + " draws from the global generator"
		}
	case "runtime":
		if lint.SchedulerFuncs[name] {
			return factSched, "runtime." + name + " depends on the Go scheduler"
		}
	}
	return 0, ""
}

func run(pkgs []*lint.Package) []lint.Diagnostic {
	g := buildGraph(pkgs)
	g.propagate()
	return g.report()
}
