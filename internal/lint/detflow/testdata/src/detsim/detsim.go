// Package detsim is golden testdata: a simulator-domain package (via
// the domain directive below) that calls into helper packages which
// launder nondeterminism. Every flagged line is a *laundering* call
// site — the sources live one to four hops away in helpers/hclock.
//
//detflow:domain sim
package detsim

import (
	"time"

	"ensembleio/internal/lint/detflow/testdata/src/helpers"
)

// Step launders a wall-clock read through a four-hop, cross-package
// chain (Level1 -> level2 -> level3 -> hclock.Read -> time.Now).
func Step() int64 {
	return helpers.Level1() // want `call to .*helpers\.Level1 launders a wall-clock read into simulator code`
}

// Shuffle launders a global math/rand draw.
func Shuffle(xs []int) []int {
	return helpers.Shuffled(xs) // want `call to .*helpers\.Shuffled launders a global math/rand draw into simulator code`
}

// Parity launders a wall-clock read through a mutually recursive pair.
func Parity(n int) bool {
	return helpers.Even(n) // want `call to .*helpers\.Even launders a wall-clock read into simulator code`
}

// MethodValue takes a method value without calling it; the reference
// alone is the laundering site (it may be invoked later).
func MethodValue() float64 {
	m := &helpers.Meter{}
	f := m.Sample // want `call to .*Meter\)\.Sample launders a global math/rand draw into simulator code`
	return f()
}

// Closure launders a wall-clock read hidden inside a returned closure
// (the fact is attributed to the function that builds the closure).
func Closure() int64 {
	tick := helpers.Timer() // want `call to .*helpers\.Timer launders a wall-clock read into simulator code`
	return tick()
}

// Keys launders map-iteration order into a slice.
func Keys(m map[string]int) []string {
	return helpers.KeysOf(m) // want `call to .*helpers\.KeysOf launders map-iteration-order dependence into simulator code`
}

// Sum launders an order-sensitive float accumulation.
func Sum(m map[string]float64) float64 {
	return helpers.Total(m) // want `call to .*helpers\.Total launders order-sensitive float accumulation .* into simulator code`
}

// Fanout launders a goroutine launch — fatal in the simulator domain.
func Fanout() {
	helpers.Fan(func() {}) // want `call to .*helpers\.Fan launders a goroutine launch into simulator code`
}

// Memo launders a sync.Map-backed cache into the simulator: memo
// caches on this side must be map-free (flownet's epoch memoization
// is the template).
func Memo() int {
	return helpers.Memoized("epoch", func() int { return 1 }) // want `call to .*helpers\.Memoized launders a scheduler-sensitive value into simulator code`
}

// Clean calls are never findings.
func Clean(a, b int) int {
	return helpers.Pure(a, b)
}

// Allowed shows the escape hatch: a structured allow directive with a
// reason suppresses the whole-program finding at the call site.
func Allowed() int64 {
	//lint:allow(detflow) golden testdata: proves suppression reaches whole-program findings
	return helpers.Level1()
}

// localTick reads the clock *directly*. That is simpurity's finding,
// not detflow's — detflow reports only laundered facts — so neither
// this line nor the call below it is flagged here.
func localTick() int64 {
	return time.Now().UnixNano()
}

// CallsLocal calls a same-domain function that carries the fact
// directly: the leak is already in simpurity's jurisdiction at its
// source, so detflow stays silent.
func CallsLocal() int64 {
	return localTick()
}
