// Package detspec is golden testdata: a declarative workload-spec
// interpreter in the simulator domain via the domain directive,
// modeled on internal/wldsl. Parsing and compiling a spec are pure
// functions of the input bytes and stay clean; the flagged lines show
// the ways an interpreter could launder host nondeterminism into the
// per-rank execution — stamping run metadata from the wall clock,
// shuffling phase order through global rand, or deriving op order
// from map iteration.
//
//detflow:domain sim
package detspec

import (
	"sort"

	"ensembleio/internal/lint/detflow/testdata/src/helpers"
)

// Spec is a toy workload description.
type Spec struct {
	Name   string
	Phases []string
	Params map[string]int
}

// Compile resolves a spec into an executable phase list — pure, so no
// findings: deterministic interpreters are built from code like this.
func Compile(s *Spec) []string {
	out := make([]string, 0, len(s.Phases))
	for _, ph := range s.Phases {
		out = append(out, s.Name+"/"+ph)
	}
	sort.Strings(out)
	return out
}

// Stamp launders a wall-clock read into the compiled program's
// metadata (a "compiled at" timestamp would break run reproducibility).
func Stamp(s *Spec) int64 {
	return helpers.Level1() // want `call to .*helpers\.Level1 launders a wall-clock read into simulator code`
}

// Jitter launders a global math/rand draw into phase order — workload
// randomization must come from the run's seeded RNG instead.
func Jitter(order []int) []int {
	return helpers.Shuffled(order) // want `call to .*helpers\.Shuffled launders a global math/rand draw into simulator code`
}

// ParamOrder launders map-iteration order into the op sequence: the
// compiled program would execute in a different order every run.
func ParamOrder(s *Spec) []string {
	return helpers.KeysOf(s.Params) // want `call to .*helpers\.KeysOf launders map-iteration-order dependence into simulator code`
}
