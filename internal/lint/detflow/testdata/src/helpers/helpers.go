// Package helpers is golden testdata: an out-of-domain utility
// package whose functions launder nondeterminism. None of these are
// findings here — the findings appear at the call sites in the
// domain-scoped packages (detsim, detstats).
package helpers

import (
	"math/rand"
	"sync"
	"time"

	"ensembleio/internal/lint/detflow/testdata/src/hclock"
)

// Level1 -> level2 -> level3 -> hclock.Read -> time.Now: a four-hop,
// cross-package wall-clock chain.
func Level1() int64 { return level2() }

func level2() int64 { return level3() }

func level3() int64 { return hclock.Read() }

// Shuffled draws from the global math/rand generator.
func Shuffled(xs []int) []int {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	return xs
}

// Even/Odd are mutually recursive; the wall-clock fact inside Odd
// must survive the cycle and reach both summaries.
func Even(n int) bool {
	if n == 0 {
		return true
	}
	return !Odd(n - 1)
}

func Odd(n int) bool {
	if n == 0 {
		_ = time.Now() // cycle-internal source
		return false
	}
	return !Even(n - 1)
}

// Meter.Sample draws global randomness; taking the method value is as
// good as calling it.
type Meter struct{}

func (m *Meter) Sample() float64 { return rand.Float64() }

// Timer returns a closure that reads the clock; the fact is
// attributed to Timer itself (the closure runs with its obligations).
func Timer() func() int64 {
	return func() int64 { return time.Now().UnixNano() }
}

// KeysOf lets map-iteration order escape into the returned slice.
func KeysOf(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Total accumulates floats in map-iteration order.
func Total(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

// Fan launches a goroutine. Fatal in the simulator domain, legal in
// the statistics domain.
func Fan(f func()) {
	done := make(chan struct{})
	go func() { f(); close(done) }()
	<-done
}

// Memoized caches f's result in a sync.Map — the scheduler-shaped
// cache a simulator must not adopt (its memo caches key on plain
// slices with deterministic eviction). The fact is scheduler
// sensitivity, carried by any use of the type.
func Memoized(k string, f func() int) int {
	var cache sync.Map
	if v, ok := cache.Load(k); ok {
		return v.(int)
	}
	v := f()
	cache.Store(k, v)
	return v
}

// Pure is determinism-clean; calls to it are never findings.
func Pure(a, b int) int {
	if a > b {
		return a
	}
	return b
}
