// Package hclock is golden testdata: the bottom of a cross-package
// laundering chain. It has no detflow domain of its own — it stands
// in for a host-side utility package.
package hclock

import "time"

// Read reads the wall clock; callers inherit the fact.
func Read() int64 {
	return time.Now().UnixNano()
}
