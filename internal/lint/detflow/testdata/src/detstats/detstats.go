// Package detstats is golden testdata: a statistics-domain package.
// Its forbidden set differs from the simulator's — wall clock, global
// rand, map order, and float accumulation order are out, but
// goroutines and scheduler use are host-side legal — so the same
// helpers produce a different finding set than in detsim.
//
//detflow:domain stats
package detstats

import (
	"ensembleio/internal/lint/detflow/testdata/src/helpers"
)

// Mean launders an order-sensitive float accumulation into the
// statistics layer.
func Mean(m map[string]float64) float64 {
	return helpers.Total(m) // want `call to .*helpers\.Total launders order-sensitive float accumulation .* into statistics code`
}

// Stamp launders a wall-clock read.
func Stamp() int64 {
	return helpers.Level1() // want `call to .*helpers\.Level1 launders a wall-clock read into statistics code`
}

// Par fans work across goroutines. Legal here: the statistics domain
// forbids value-affecting nondeterminism, not host-side parallelism.
func Par() {
	helpers.Fan(func() {})
}
