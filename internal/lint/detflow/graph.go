package detflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"ensembleio/internal/lint"
)

// node is one function (or method) from the loaded packages, with its
// determinism summary and outgoing call edges.
type node struct {
	key  string // stable identity (types.Func.FullName, see nodeKey)
	name string // short display name, e.g. "runpool.RunJ"
	pkg  *lint.Package
	pos  token.Position
	dom  domain

	direct  fact              // facts from this function's own body
	facts   fact              // fixpoint: direct | facts of callees
	origins [numFacts]*srcRef // direct origin per fact bit
	edges   []edge            // in source order
	depth   [numFacts]int     // hops to the nearest direct origin
}

// edge is one call (or function reference) from a node to another
// loaded function.
type edge struct {
	posn   token.Position
	callee *node
}

// srcRef is the syntactic origin of a direct fact.
type srcRef struct {
	posn token.Position
	desc string
}

type graph struct {
	nodes []*node
	index map[string]*node
}

// nodeKey is the cross-package-stable identity of a function. Object
// identity does not survive the source/export-data boundary (package
// A's view of B.F is an importer-created object, not the one from
// type-checking B), so the fully qualified name is the join key.
// Generic instances collapse onto their origin declaration. Multiple
// init functions share a name, so their position disambiguates.
func nodeKey(fn *types.Func, posn token.Position) string {
	fn = fn.Origin()
	if fn.Name() == "init" && fn.Signature().Recv() == nil {
		return fmt.Sprintf("%s#%s:%d", fn.FullName(), posn.Filename, posn.Line)
	}
	return fn.FullName()
}

// shortName compresses a FullName for diagnostics:
// "ensembleio/internal/runpool.RunJ" -> "runpool.RunJ".
func shortName(fn *types.Func) string {
	s := fn.Origin().FullName()
	s = strings.ReplaceAll(s, "ensembleio/internal/", "")
	return strings.ReplaceAll(s, "ensembleio/", "")
}

// buildGraph creates one node per function declaration in the loaded
// packages, then walks every body to collect direct facts and call
// edges. Function references (method values, callbacks) count as
// edges, and facts inside function literals are attributed to the
// enclosing declaration.
func buildGraph(pkgs []*lint.Package) *graph {
	g := &graph{index: make(map[string]*node)}

	type declWork struct {
		n    *node
		decl *ast.FuncDecl
	}
	var work []declWork

	for _, pkg := range pkgs {
		dom := domainOf(pkg)
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[decl.Name].(*types.Func)
				if !ok {
					continue
				}
				posn := pkg.Fset.Position(decl.Pos())
				n := &node{
					key:  nodeKey(fn, posn),
					name: shortName(fn),
					pkg:  pkg,
					pos:  posn,
					dom:  dom,
				}
				for i := range n.depth {
					n.depth[i] = -1 // unreached
				}
				g.index[n.key] = n
				g.nodes = append(g.nodes, n)
				work = append(work, declWork{n, decl})
			}
		}
	}

	for _, w := range work {
		g.scanDecl(w.n, w.decl)
	}

	sort.Slice(g.nodes, func(i, j int) bool {
		a, b := g.nodes[i], g.nodes[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		return a.pos.Line < b.pos.Line
	})
	return g
}

// addDirect records a direct fact with its first (source-order)
// origin.
func (n *node) addDirect(bit fact, posn token.Position, desc string) {
	n.direct |= bit
	i := bitIndex(bit)
	if n.origins[i] == nil {
		n.origins[i] = &srcRef{posn: posn, desc: desc}
	}
}

func bitIndex(bit fact) int {
	for i := 0; i < numFacts; i++ {
		if bit == 1<<i {
			return i
		}
	}
	return 0
}

// scanDecl collects the direct facts and outgoing edges of one
// function declaration, descending into nested function literals.
func (g *graph) scanDecl(n *node, decl *ast.FuncDecl) {
	info := n.pkg.Info
	fset := n.pkg.Fset

	// Map-order facts come from the same scan core the maporder
	// analyzer reports from, so the two views agree by construction.
	scanBody := func(body *ast.BlockStmt) {
		for _, f := range lint.MapOrderScan(info, body) {
			bit := factMapOrder
			if f.FloatAccum {
				bit = factFloatOrder
			}
			n.addDirect(bit, fset.Position(f.Pos), f.Message)
		}
	}
	scanBody(decl.Body)
	ast.Inspect(decl.Body, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok {
			scanBody(lit.Body)
		}
		return true
	})

	ast.Inspect(decl.Body, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.GoStmt:
			n.addDirect(factGoroutine, fset.Position(v.Pos()), "launches a goroutine (go statement)")
		case *ast.Ident:
			obj := info.Uses[v]
			switch o := obj.(type) {
			case *types.Func:
				posn := fset.Position(v.Pos())
				if callee, ok := g.index[nodeKey(o, posn)]; ok {
					n.edges = append(n.edges, edge{posn: posn, callee: callee})
					return true
				}
				if bit, desc := intrinsicFact(o); bit != 0 {
					n.addDirect(bit, posn, desc)
				}
			case *types.TypeName:
				// sync.Pool recycles in scheduler order, and sync.Map's
				// internals are contention-dependent; any use of either
				// type is the fact. (Simulator caches — flownet's epoch
				// memoization is the template — key on plain slices with
				// deterministic eviction instead.)
				if o.Pkg() != nil && o.Pkg().Path() == "sync" {
					switch o.Name() {
					case "Pool":
						n.addDirect(factSched, fset.Position(v.Pos()), "sync.Pool reuse order depends on the Go scheduler")
					case "Map":
						n.addDirect(factSched, fset.Position(v.Pos()), "sync.Map behavior is contention- and scheduler-dependent")
					}
				}
			}
		}
		return true
	})
	n.facts = n.direct
}

// propagate folds callee summaries into callers until the fixpoint:
// facts(f) = direct(f) | union of facts(g) over every edge f->g.
// Recursion (cycles) converges because the lattice is a finite
// powerset and the transfer function is monotone.
func (g *graph) propagate() {
	for changed := true; changed; {
		changed = false
		for _, n := range g.nodes {
			for _, e := range n.edges {
				if add := e.callee.facts &^ n.facts; add != 0 {
					n.facts |= add
					changed = true
				}
			}
		}
	}

	// Depth of each (function, fact): hops to the nearest direct
	// origin, Bellman-Ford style. Chains are reconstructed by walking
	// strictly decreasing depths, which also makes them cycle-safe.
	for _, n := range g.nodes {
		for i := 0; i < numFacts; i++ {
			if n.direct&(1<<i) != 0 {
				n.depth[i] = 0
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.nodes {
			for _, e := range n.edges {
				for i := 0; i < numFacts; i++ {
					d := e.callee.depth[i]
					if d < 0 {
						continue
					}
					if n.depth[i] < 0 || n.depth[i] > d+1 {
						n.depth[i] = d + 1
						changed = true
					}
				}
			}
		}
	}
}
