package detflow

import (
	"strings"
	"testing"

	"ensembleio/internal/lint"
)

// testdataPatterns loads the whole golden corpus in one go/list call:
// two out-of-domain helper packages (the laundering chain) and two
// domain-scoped sink packages with different forbidden sets.
var testdataPatterns = []string{
	"./testdata/src/hclock",
	"./testdata/src/helpers",
	"./testdata/src/detsim",
	"./testdata/src/detstats",
	"./testdata/src/detspec",
}

// TestDetflowGolden compares findings against the `// want` comments:
// multi-hop taint, cross-package propagation, recursion, method
// values, closures, per-domain forbidden sets, and //lint:allow
// suppression.
func TestDetflowGolden(t *testing.T) {
	lint.RunAnalyzerTest(t, Analyzer, testdataPatterns...)
}

func loadTestdata(t *testing.T) []*lint.Package {
	t.Helper()
	pkgs, err := lint.Load(".", testdataPatterns...)
	if err != nil {
		t.Fatalf("loading testdata: %v", err)
	}
	return pkgs
}

// findDiag returns the first raw finding whose file contains fileFrag
// and whose message contains msgFrag.
func findDiag(t *testing.T, diags []lint.Diagnostic, fileFrag, msgFrag string) lint.Diagnostic {
	t.Helper()
	for _, d := range diags {
		if strings.Contains(d.Pos.Filename, fileFrag) && strings.Contains(d.Message, msgFrag) {
			return d
		}
	}
	t.Fatalf("no finding in %q matching %q; got %d findings", fileFrag, msgFrag, len(diags))
	return lint.Diagnostic{}
}

// TestChainCrossPackage pins the full call path of the four-hop chain:
// the detsim call site -> Level1 -> level2 -> level3 -> hclock.Read,
// ending at the syntactic source (time.Now). The chain must cross the
// helpers/hclock package boundary and terminate at a source note.
func TestChainCrossPackage(t *testing.T) {
	diags := Analyzer.RunAll(loadTestdata(t))
	d := findDiag(t, diags, "detsim", "helpers.Level1 launders a wall-clock read")

	if len(d.Chain) != 4 {
		t.Fatalf("chain has %d steps, want 4:\n%s", len(d.Chain), d)
	}
	steps := []string{
		"helpers.Level1 calls",
		"helpers.level2 calls",
		"helpers.level3 calls",
		"hclock.Read: time.Now reads the wall clock",
	}
	for i, wantFrag := range steps {
		if !strings.Contains(d.Chain[i].Note, wantFrag) {
			t.Errorf("chain step %d = %q, want it to contain %q", i, d.Chain[i].Note, wantFrag)
		}
	}
	// The chain must actually descend into the second helper package.
	if !strings.Contains(d.Chain[3].Pos.Filename, "hclock") {
		t.Errorf("chain source resolved in %s, want the hclock package", d.Chain[3].Pos.Filename)
	}
}

// TestChainRecursion proves chain reconstruction terminates through a
// mutually recursive cycle and still lands on the source.
func TestChainRecursion(t *testing.T) {
	diags := Analyzer.RunAll(loadTestdata(t))
	d := findDiag(t, diags, "detsim", "helpers.Even launders a wall-clock read")

	if len(d.Chain) != 2 {
		t.Fatalf("chain has %d steps, want 2 (Even -> Odd -> source):\n%s", len(d.Chain), d)
	}
	last := d.Chain[len(d.Chain)-1].Note
	if !strings.Contains(last, "time.Now reads the wall clock") {
		t.Errorf("chain ends at %q, want the time.Now source", last)
	}
}

// TestDomainDifferences pins that the forbidden sets are per-domain:
// the goroutine fan-out helper is a finding in detsim and clean in
// detstats.
func TestDomainDifferences(t *testing.T) {
	diags := Analyzer.RunAll(loadTestdata(t))
	var simGo, statsGo int
	for _, d := range diags {
		if !strings.Contains(d.Message, "goroutine launch") {
			continue
		}
		switch {
		case strings.Contains(d.Pos.Filename, "detsim"):
			simGo++
		case strings.Contains(d.Pos.Filename, "detstats"):
			statsGo++
		}
	}
	if simGo != 1 || statsGo != 0 {
		t.Errorf("goroutine findings: detsim=%d detstats=%d, want 1 and 0", simGo, statsGo)
	}
}

// TestNoFindingsInHelpers pins the laundered-facts-only rule: the
// helper packages carry every fact, but having no domain they get no
// findings — the diagnostics all land at the domain boundary.
func TestNoFindingsInHelpers(t *testing.T) {
	for _, d := range Analyzer.RunAll(loadTestdata(t)) {
		if strings.Contains(d.Pos.Filename, "helpers") || strings.Contains(d.Pos.Filename, "hclock") {
			t.Errorf("finding outside any domain: %s", d)
		}
	}
}

// TestDetflowRepoIsClean runs detflow over the whole module: every
// laundering call site must be fixed or carry a reasoned
// //lint:allow(detflow), and none of those allows may be stale.
func TestDetflowRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	pkgs, err := lint.Load("../../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, d := range lint.Run(pkgs, []*lint.Analyzer{Analyzer}) {
		t.Errorf("finding: %s", d)
	}
}
