package detflow

import (
	"fmt"

	"ensembleio/internal/lint"
)

// report walks every call site in a determinism-critical package and
// flags the ones whose callee launders a forbidden fact — a callee
// that carries the fact but is itself outside the jurisdiction of the
// violated rule, so no per-package analyzer would ever surface it.
// Each finding carries the full call chain from the call site down to
// the syntactic source.
func (g *graph) report() []lint.Diagnostic {
	var out []lint.Diagnostic
	type dedupeKey struct {
		file   string
		line   int
		callee *node
		bit    fact
	}
	seen := make(map[dedupeKey]bool)
	for _, n := range g.nodes {
		if n.dom.forbidden == 0 {
			continue
		}
		for _, e := range n.edges {
			for i := 0; i < numFacts; i++ {
				bit := fact(1 << i)
				if n.dom.forbidden&bit == 0 {
					continue
				}
				if e.callee.facts&bit == 0 {
					continue
				}
				// The callee's own domain forbids this fact: the leak
				// is (or will be) reported there — at the callee's own
				// laundering call site by detflow, or at the source by
				// the syntax-level analyzers.
				if e.callee.dom.forbidden&bit != 0 {
					continue
				}
				k := dedupeKey{e.posn.Filename, e.posn.Line, e.callee, bit}
				if seen[k] {
					continue
				}
				seen[k] = true
				out = append(out, lint.Diagnostic{
					Analyzer: "detflow",
					Pos:      e.posn,
					Message: fmt.Sprintf(
						"call to %s launders %s into %s code; fix the helper, or //lint:allow(detflow) with a reason",
						e.callee.name, bit.label(), n.dom.name),
					Chain: g.chain(e.callee, bit),
				})
			}
		}
	}
	return out
}

// chain reconstructs the call path from fn down to the syntactic
// source of bit, following strictly decreasing (depth, position)
// order so the path is deterministic and cycle-free.
func (g *graph) chain(fn *node, bit fact) []lint.ChainStep {
	var steps []lint.ChainStep
	i := bitIndex(bit)
	cur := fn
	for hop := 0; hop < 64; hop++ { // bounded for safety; depths strictly decrease
		if cur.direct&bit != 0 {
			if o := cur.origins[i]; o != nil {
				steps = append(steps, lint.ChainStep{Pos: o.posn, Note: cur.name + ": " + o.desc})
			}
			return steps
		}
		var next *edge
		for j := range cur.edges {
			e := &cur.edges[j]
			if e.callee.facts&bit == 0 || e.callee.depth[i] < 0 {
				continue
			}
			if e.callee.depth[i] != cur.depth[i]-1 {
				continue
			}
			next = e
			break // edges are in source order; first match is canonical
		}
		if next == nil {
			return steps
		}
		steps = append(steps, lint.ChainStep{
			Pos:  next.posn,
			Note: cur.name + " calls " + next.callee.name,
		})
		cur = next.callee
	}
	return steps
}
