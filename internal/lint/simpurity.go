package lint

import (
	"go/ast"
	"go/types"
)

// SimPurity enforces the engine's determinism contract inside the
// simulator packages: internal/sim promises bit-identical runs for a
// given seed "regardless of GOMAXPROCS", which no code on the
// simulated side may undermine by consulting the wall clock, the
// global (process-wide, racily seeded) math/rand generator, the Go
// scheduler's configuration, or scheduler-ordered object recycling
// (sync.Pool hands objects back in an order that depends on which P
// freed them — pooled state must live on engine-owned free lists, see
// DESIGN.md §11 — and sync.Map's internals are contention-dependent,
// so simulator caches such as flownet's epoch memoization must key on
// plain deterministic structures instead, see DESIGN.md §13).
var SimPurity = &Analyzer{
	Name: "simpurity",
	Doc: `forbid wall-clock time, global math/rand, scheduler-sensitive
runtime calls, sync.Pool, sync.Map, goroutine launches, and
internal/runpool imports in simulator packages; use the sim.Engine
virtual clock (sim.Time) and the engine's seeded *sim.RNG, recycle
objects through engine-owned free lists, key caches on deterministic
slices (the flownet memo cache is the template), and fan only whole
independent runs in parallel — above the sim layer, via
internal/runpool`,
	Match: prefixMatcher(
		"ensembleio/internal/sim",
		"ensembleio/internal/mpi",
		"ensembleio/internal/lustre",
		"ensembleio/internal/posixio",
		"ensembleio/internal/ipmio",
		"ensembleio/internal/workloads",
		"ensembleio/internal/flownet",
		"ensembleio/internal/cluster",
		"ensembleio/internal/wldsl",
		"ensembleio/internal/tenancy",
	),
	Run: runSimPurity,
}

// WallClockFuncs are the "time" package entry points that read or
// depend on real time. Pure values (time.Duration, time.Second) stay
// legal: only observing the clock breaks determinism. The table is
// shared with internal/lint/detflow, whose interprocedural summaries
// must agree with the syntax-level analyzers on what a source is.
var WallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// SeededRandCtors are the only math/rand entry points a simulator
// package may touch: constructors for explicitly seeded generators.
// Everything else (rand.Float64, rand.Intn, rand.Seed, ...) drives
// the shared global source.
var SeededRandCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

// SchedulerFuncs are runtime calls whose results vary with core count
// or goroutine interleaving.
var SchedulerFuncs = map[string]bool{
	"GOMAXPROCS": true, "NumCPU": true, "NumGoroutine": true, "Gosched": true,
}

func runSimPurity(pass *Pass) {
	for _, file := range pass.Files {
		// Parallelism belongs strictly above the per-run simulation:
		// a simulator package that reaches for the run-fan-out
		// executor (or raw goroutines, below) is about to break the
		// lock-step schedule that makes a seed bit-reproducible.
		for _, imp := range file.Imports {
			if imp.Path.Value == `"ensembleio/internal/runpool"` {
				pass.Reportf(imp.Pos(), "simulator package imports internal/runpool; parallelism must stay above the sim layer (fan whole independent runs from the caller)")
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(), "goroutine launch in simulator code; a run must stay on the engine's lock-step schedule — fan whole independent runs via internal/runpool instead")
				return true
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Info.Uses[ident].(*types.PkgName)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch pkgName.Imported().Path() {
			case "time":
				if WallClockFuncs[name] {
					pass.Reportf(sel.Pos(), "wall-clock time.%s in simulator code; use the sim.Engine virtual clock (sim.Time) so runs are deterministic", name)
				}
			case "math/rand", "math/rand/v2":
				// Referencing a type (rand.Rand, rand.Source) is fine;
				// only package-level functions and variables reach the
				// global generator.
				if _, isType := pass.Info.Uses[sel.Sel].(*types.TypeName); isType {
					return true
				}
				if !SeededRandCtors[name] {
					pass.Reportf(sel.Pos(), "global math/rand %s in simulator code; draw variates from the engine's seeded *sim.RNG", name)
				}
			case "runtime":
				if SchedulerFuncs[name] {
					pass.Reportf(sel.Pos(), "scheduler-sensitive runtime.%s in simulator code; simulation results must not depend on GOMAXPROCS or goroutine scheduling", name)
				}
			case "sync":
				// sync.Pool recycles in whatever order the scheduler
				// freed objects, so reuse patterns (and any state that
				// rides along) vary run to run. Deterministic recycling
				// lives on engine-owned free lists instead.
				if name == "Pool" {
					pass.Reportf(sel.Pos(), "sync.Pool in simulator code; reuse order depends on the Go scheduler — recycle through an engine-owned free list (DESIGN.md §11)")
				}
				// sync.Map is likewise scheduler-shaped: its internals
				// are contention-dependent and Range order is
				// unspecified. Simulator-internal caches — flownet's
				// epoch memoization is the template — key on plain
				// slices with deterministic eviction instead.
				if name == "Map" {
					pass.Reportf(sel.Pos(), "sync.Map in simulator code; its behavior is contention- and scheduler-dependent — key simulator caches on deterministic slices (DESIGN.md §13)")
				}
			}
			return true
		})
	}
}
