package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `for ... range` over a map (or over the
// maps.Keys/Values/All iterators, which visit in the same random
// order) whose body lets the iteration order leak into results:
// appending to a slice that is never sorted afterwards, writing
// output or feeding a histogram/report mid-iteration, accumulating
// floating-point sums (float addition is not associative, so the
// rounding depends on visit order), or selecting a key into an outer
// variable (ties in argmax-style reductions resolve differently run
// to run).
//
// The fix is to iterate over sorted keys; a range whose appends are
// followed by a sort of the same slice in the enclosing function is
// accepted as already ordered.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: `flag map iteration whose order can reach output or statistics:
append-without-sort, mid-iteration writes, float accumulation, and
key selection into outer variables (maps.Keys/Values/All iterators
included)`,
	Run: runMapOrder,
}

// outputFmtFuncs are fmt functions that emit directly to a sink.
var outputFmtFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// statSinkMethods are methods that fold a value into an accumulator
// whose result depends on insertion order (histograms, datasets,
// encoders).
var statSinkMethods = map[string]bool{
	"Add": true, "AddW": true, "AddAll": true, "Observe": true,
	"Record": true, "Encode": true,
}

// MapOrderFinding is one map-iteration-order leak found by
// MapOrderScan. FloatAccum marks the floating-point-accumulation
// case, which detflow classifies as float-order sensitivity rather
// than plain order escape.
type MapOrderFinding struct {
	Pos        token.Pos
	Message    string
	FloatAccum bool
}

func runMapOrder(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				for _, f := range MapOrderScan(pass.Info, body) {
					pass.Reportf(f.Pos, "%s", f.Message)
				}
			}
			return true
		})
	}
}

// MapOrderScan reports the map-iteration-order leaks in one function
// body. It is the shared detection core: the maporder analyzer
// reports its findings directly, and detflow consumes them as direct
// facts when building interprocedural determinism summaries — so the
// syntax-level and dataflow views of "this function depends on map
// order" agree by construction. Nested function literals are skipped
// (they get their own scan).
func MapOrderScan(info *types.Info, body *ast.BlockStmt) []MapOrderFinding {
	var out []MapOrderFinding
	sorts := sortedSlices(info, body)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // nested closures get their own visit
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if !rangesOverMapOrder(info, rs) {
			return true
		}
		out = append(out, checkMapRange(info, rs, sorts)...)
		return true
	})
	return out
}

// rangesOverMapOrder reports whether rs visits elements in map
// iteration order: a range over a map (named and aliased map types
// included, via the underlying type) or over the iterator returned by
// maps.Keys, maps.Values, or maps.All, which inherit the same random
// order.
func rangesOverMapOrder(info *types.Info, rs *ast.RangeStmt) bool {
	if tv, ok := info.Types[rs.X]; ok {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			return true
		}
	}
	call, ok := rs.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgIdent, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := info.Uses[pkgIdent].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "maps" {
		return false
	}
	switch sel.Sel.Name {
	case "Keys", "Values", "All":
		return true
	}
	return false
}

// sortCall records one "sort this slice" call site.
type sortCall struct {
	obj types.Object
	pos token.Pos
}

// sortedSlices finds every sort.*/slices.Sort* call in the function
// whose argument is a plain identifier, possibly wrapped in a
// one-argument conversion (sort.Sort(byStart(out))).
func sortedSlices(info *types.Info, body *ast.BlockStmt) []sortCall {
	var out []sortCall
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgIdent, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := info.Uses[pkgIdent].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pkgName.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		arg := call.Args[0]
		if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 {
			arg = conv.Args[0]
		}
		if ident, ok := arg.(*ast.Ident); ok {
			if obj := info.Uses[ident]; obj != nil {
				out = append(out, sortCall{obj: obj, pos: call.Pos()})
			}
		}
		return true
	})
	return out
}

func checkMapRange(info *types.Info, rs *ast.RangeStmt, sorts []sortCall) []MapOrderFinding {
	var out []MapOrderFinding
	report := func(pos token.Pos, floatAccum bool, msg string) {
		out = append(out, MapOrderFinding{Pos: pos, Message: msg, FloatAccum: floatAccum})
	}
	keyObj := declaredObj(info, rs.Key)
	inRange := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End()
	}
	sortedAfter := func(obj types.Object) bool {
		for _, s := range sorts {
			if s.obj == obj && s.pos >= rs.End() {
				return true
			}
		}
		return false
	}
	usesKey := func(e ast.Expr) bool {
		if keyObj == nil {
			return false
		}
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == keyObj {
				found = true
			}
			return !found
		})
		return found
	}
	isMapIndex := func(e ast.Expr) bool {
		ix, ok := e.(*ast.IndexExpr)
		if !ok {
			return false
		}
		tv, ok := info.Types[ix.X]
		if !ok {
			return false
		}
		_, isMap := tv.Type.Underlying().(*types.Map)
		return isMap
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				// append into an outer slice: fine only if that slice
				// is sorted after the loop.
				if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(info, call) && i < len(st.Lhs) {
					if ident, ok := st.Lhs[i].(*ast.Ident); ok {
						obj := info.Uses[ident]
						if obj == nil {
							obj = info.Defs[ident]
						}
						if obj != nil && !sortedAfter(obj) {
							report(st.Pos(), false, "append to "+ident.Name+" in map-iteration order with no subsequent sort; iterate over sorted keys or sort "+ident.Name+" before use")
						}
					}
				}
			}
			if st.Tok == token.DEFINE {
				return true
			}
			// Key escaping to an outer variable: argmax-style
			// reductions resolve ties in random order. Compound
			// assignments are exempt — integer folds are
			// order-insensitive, and float folds are caught by the
			// accumulation rule below.
			if st.Tok == token.ASSIGN {
				for i, lhs := range st.Lhs {
					if isMapIndex(lhs) {
						continue
					}
					rhs := st.Rhs[0]
					if len(st.Rhs) == len(st.Lhs) {
						rhs = st.Rhs[i]
					}
					// Appends are judged by the sort-aware rule above.
					if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(info, call) {
						continue
					}
					if usesKey(rhs) {
						report(st.Pos(), false, "map key "+keyObj.Name()+" escapes the loop in nondeterministic iteration order; iterate over sorted keys")
						break
					}
				}
			}
			// Float accumulation: addition order changes the rounding.
			if st.Tok == token.ADD_ASSIGN || st.Tok == token.SUB_ASSIGN || st.Tok == token.MUL_ASSIGN || st.Tok == token.QUO_ASSIGN {
				lhs := st.Lhs[0]
				if !isMapIndex(lhs) && isFloat(typeOf(info, lhs)) {
					if ident, ok := lhs.(*ast.Ident); !ok || !inRange(info.Uses[ident]) {
						report(st.Pos(), true, "floating-point accumulation in map-iteration order is not bit-deterministic; iterate over sorted keys")
					}
				}
			}
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if name, kind := sinkCall(info, call); kind != "" {
					report(st.Pos(), false, name+" feeds "+kind+" in map-iteration order; iterate over sorted keys")
				}
			}
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				if usesKey(res) {
					report(st.Pos(), false, "map key "+keyObj.Name()+" returned from nondeterministic iteration order; iterate over sorted keys")
				}
			}
		}
		return true
	})
	return out
}

// sinkCall classifies a call as an output or statistics sink.
func sinkCall(info *types.Info, call *ast.CallExpr) (name, kind string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	if ident, ok := sel.X.(*ast.Ident); ok {
		if pkgName, ok := info.Uses[ident].(*types.PkgName); ok {
			if pkgName.Imported().Path() == "fmt" && outputFmtFuncs[sel.Sel.Name] {
				return "fmt." + sel.Sel.Name, "output"
			}
			return "", ""
		}
	}
	if s := info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
		if statSinkMethods[sel.Sel.Name] {
			return sel.Sel.Name, "a statistics accumulator"
		}
		if len(sel.Sel.Name) > 5 && sel.Sel.Name[:5] == "Write" || sel.Sel.Name == "Write" || sel.Sel.Name == "WriteString" {
			return sel.Sel.Name, "output"
		}
	}
	return "", ""
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	ident, ok := call.Fun.(*ast.Ident)
	if !ok || ident.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[ident].(*types.Builtin)
	return isBuiltin
}

// declaredObj returns the object bound by a range clause variable.
func declaredObj(info *types.Info, e ast.Expr) types.Object {
	ident, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Defs[ident]; obj != nil {
		return obj
	}
	return info.Uses[ident]
}

// typeOf resolves the static type of e, or nil when untracked.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (p *Pass) typeOf(e ast.Expr) types.Type {
	return typeOf(p.Info, e)
}

// isFloat reports whether t's underlying type is a floating-point
// basic type, so defined types (`type Rate float64`) count.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// containsFloat reports whether t is a float or a composite
// (array/struct, through any depth of named types) with a
// floating-point component — the types whose == compares floats
// field-by-field.
func containsFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsFloat|types.IsComplex) != 0
	case *types.Array:
		return containsFloat(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsFloat(u.Field(i).Type()) {
				return true
			}
		}
	}
	return false
}
